/**
 * @file
 * Quickstart: assemble a small program, distill it, run it under MSSP
 * and verify against the sequential oracle.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "core/mssp_api.hh"

using namespace mssp;

int
main()
{
    // A toy workload: checksum an array; a rare branch fires when an
    // element is divisible by 64, and a per-iteration bounds check
    // never fires (distillation fodder).
    const char *program = R"(
        la s2, data
        li s0, 0            ; i
        li s3, 0            ; checksum
    loop:
        li t5, 4096
        bltu s0, t5, ok     ; bounds assertion: never fails
        out zero, 99
    ok:
        add t0, s2, s0
        lw t1, 0(t0)
        add s3, s3, t1
        andi t2, t1, 63
        bnez t2, next       ; rare path below
        addi s3, s3, 7
    next:
        addi s0, s0, 1
        li t3, 600
        blt s0, t3, loop
        out s3, 1
        halt
    .org 0x8000
    data: .word 3, 17, 64, 9, 128, 41, 77, 5
        .space 592
    )";

    // 1. Assemble.
    Program prog = assemble(program);
    std::printf("assembled %zu words, entry 0x%x\n",
                prog.sizeWords(), prog.entry());

    // 2. Profile + distill (training on the same input here; real
    //    workloads use a separate training input, see src/workloads).
    PreparedWorkload prepared =
        prepare(program, "", DistillerOptions::paperPreset());
    std::printf("\n-- distiller report --\n%s",
                prepared.dist.report.toString().c_str());

    // 3. Run the sequential reference (the oracle and the baseline).
    SeqMachine seq(prog);
    seq.run(10000000);
    std::printf("\nSEQ: %llu instructions, %zu outputs\n",
                static_cast<unsigned long long>(seq.instCount()),
                seq.outputs().size());

    // 4. Run MSSP.
    MsspConfig cfg;
    cfg.numSlaves = 4;
    MsspMachine machine(prepared.orig, prepared.dist, cfg);
    MsspResult result = machine.run(10000000);

    std::printf("MSSP: %llu cycles, %llu committed insts, "
                "%zu outputs\n",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.committedInsts),
                result.outputs.size());

    // 5. Verify equivalence and report speedup.
    bool equivalent = result.halted &&
                      result.outputs == seq.outputs() &&
                      result.committedInsts == seq.instCount();
    std::printf("\noutput equivalent to SEQ: %s\n",
                equivalent ? "YES" : "NO");

    BaselineResult base = runBaseline(prog, cfg.slaveIpc, 10000000);
    std::printf("speedup over 1-cpu baseline: %.2f\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(result.cycles));

    std::printf("\n-- machine statistics --\n");
    machine.dumpStats(std::cout);
    return equivalent ? 0 : 1;
}

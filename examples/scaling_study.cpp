/**
 * @file
 * Scaling study: for one workload, sweep slave count x fork latency
 * and print a speedup matrix — a compact view of how MSSP hides
 * inter-core communication as long as the master stays ahead.
 *
 * Usage: scaling_study [workload]          (default: perlbmk)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/mssp_api.hh"
#include "eval/experiment.hh"
#include "workloads/workloads.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string name = argc > 1 ? argv[1] : "perlbmk";
    Workload wl = workloadByName(name);
    PreparedWorkload prepared = prepare(
        wl.refSource, wl.trainSource, DistillerOptions::paperPreset());

    const std::vector<unsigned> slave_counts = {1, 2, 4, 8};
    const std::vector<Cycle> latencies = {2, 8, 32, 128};

    std::printf("== %s: speedup over 1-cpu baseline ==\n",
                name.c_str());
    std::printf("%-12s", "slaves\\lat");
    for (Cycle lat : latencies)
        std::printf("%8llu", static_cast<unsigned long long>(lat));
    std::printf("\n");

    for (unsigned slaves : slave_counts) {
        std::printf("%-12u", slaves);
        for (Cycle lat : latencies) {
            MsspConfig cfg;
            cfg.numSlaves = slaves;
            cfg.maxInFlightTasks = std::max(2 * slaves, 8u);
            cfg.forkLatency = lat;
            cfg.commitLatency = lat;
            WorkloadRun run = runPrepared(name, prepared, cfg);
            if (run.ok)
                std::printf("%8.2f", run.speedup);
            else
                std::printf("%8s", "FAIL");
        }
        std::printf("\n");
    }

    std::printf("\nModerate latencies are fully hidden by in-flight "
                "tasks (the paper's decoupling\nargument). The last "
                "column shows the other regime: once per-task "
                "verify/commit\noccupancy exceeds the task length, "
                "the commit unit itself becomes the\nbottleneck and "
                "speedup collapses to taskSize/commitLatency "
                "regardless of width.\n");
    return 0;
}

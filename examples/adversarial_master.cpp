/**
 * @file
 * Adversarial master demo: the paper's central claim — correctness
 * cannot be influenced by the master or the distilled program — made
 * visible. We corrupt the distilled binary progressively and show
 * that output stays bit-identical while performance degrades.
 *
 * Usage: adversarial_master [seed]
 */

#include <cstdio>

#include "core/mssp_api.hh"
#include "sim/rng.hh"
#include "workloads/random_program.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    uint64_t seed = argc > 1
        ? static_cast<uint64_t>(std::atoll(argv[1]))
        : 42;

    std::string src = randomProgramSource(seed);
    Program prog = assemble(src);

    SeqMachine oracle(prog);
    oracle.run(50000000);
    std::printf("oracle: %llu insts, %zu outputs\n\n",
                static_cast<unsigned long long>(oracle.instCount()),
                oracle.outputs().size());

    PreparedWorkload prepared = prepare(prog, prog);
    MsspConfig cfg;
    cfg.watchdogCycles = 3000;
    cfg.maxTaskInsts = 3000;

    std::printf("%-18s %-10s %-10s %-9s %-8s %s\n", "corrupted words",
                "cycles", "commits", "squashes", "seqInsts",
                "output");
    Rng rng(seed * 31 + 7);
    for (unsigned n_corrupt : {0u, 1u, 2u, 4u, 8u, 16u, 64u}) {
        DistilledProgram dist = prepared.dist;
        std::vector<uint32_t> addrs;
        for (const auto &[addr, word] : dist.prog.image())
            addrs.push_back(addr);
        for (unsigned i = 0; i < n_corrupt; ++i) {
            uint32_t addr = addrs[rng.below(addrs.size())];
            dist.prog.setWord(addr, static_cast<uint32_t>(rng.next()));
        }

        MsspMachine machine(prog, dist, cfg);
        MsspResult r = machine.run(400000000ull);
        bool same = r.halted && r.outputs == oracle.outputs() &&
                    r.committedInsts == oracle.instCount();
        std::printf("%-18u %-10llu %-10llu %-9llu %-8llu %s\n",
                    n_corrupt,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        machine.counters().tasksCommitted),
                    static_cast<unsigned long long>(
                        machine.counters().squashEvents),
                    static_cast<unsigned long long>(
                        machine.counters().seqModeInsts),
                    same ? "IDENTICAL" : "*** DIFFERS ***");
        if (!same)
            return 1;
    }
    std::printf("\nEvery corruption level produced identical output: "
                "the fast path cannot break the correct path.\n");
    return 0;
}

/**
 * @file
 * Non-idempotent state demo — the companion formal paper's closing
 * future-work item, implemented: a program that polls a device whose
 * reads are non-idempotent (a read counter) and performs observable
 * device writes. Slaves abort before every device access; the machine
 * commits the verified prefix and serializes through the access, and
 * the output stream (including device write ordering and counter
 * values) is bit-identical to sequential execution.
 */

#include <cstdio>

#include "arch/mmio.hh"
#include "core/mssp_api.hh"

using namespace mssp;

int
main()
{
    setQuiet(true);
    // Poll the device every 8th iteration of a compute loop.
    const char *program = R"(
        li s0, 160          ; iterations
        li s1, 0            ; checksum
        lui s2, 0xffff      ; device base
    loop:
        add s1, s1, s0
        slli t0, s1, 3
        xor s1, s1, t0
        andi t1, s0, 7
        bnez t1, nodev
        lw t2, 0(s2)        ; non-idempotent counter read
        add s1, s1, t2
        sw s1, 4(s2)        ; observable device write
    nodev:
        addi s0, s0, -1
        bnez s0, loop
        out s1, 1
        halt
    )";

    Program prog = assemble(program);

    SeqMachine seq(prog);
    seq.run(1000000);
    std::printf("SEQ: %llu insts, %zu outputs, %llu device reads\n",
                static_cast<unsigned long long>(seq.instCount()),
                seq.outputs().size(),
                static_cast<unsigned long long>(
                    seq.device().readCount()));

    PreparedWorkload w = prepare(program, "",
                                 DistillerOptions::paperPreset());
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);

    std::printf("MSSP: %llu cycles, %llu committed insts, "
                "%llu device serializations, %llu seq-mode insts\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.committedInsts),
                static_cast<unsigned long long>(
                    machine.counters().mmioSerializations),
                static_cast<unsigned long long>(
                    machine.counters().seqModeInsts));

    bool same = r.halted && r.outputs == seq.outputs() &&
                r.committedInsts == seq.instCount();
    std::printf("\ndevice write stream + final checksum: %s\n",
                same ? "IDENTICAL to SEQ" : "*** DIFFERS ***");
    std::printf("(speculation was precluded on every device access; "
                "the machine imposed task\nboundaries and proceeded "
                "non-speculatively, exactly as the paper "
                "prescribes)\n");
    return same ? 0 : 1;
}

/**
 * @file
 * Distillation tour: walks a workload through the distillation
 * pipeline, showing the CFG, the profile, the chosen fork sites and a
 * side-by-side disassembly of original and distilled hot code.
 *
 * Usage: distillation_tour [workload]      (default: perlbmk)
 */

#include <cstdio>
#include <string>

#include "core/mssp_api.hh"
#include "workloads/workloads.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string name = argc > 1 ? argv[1] : "perlbmk";
    Workload wl = workloadByName(name, 0.3);

    Program orig = assemble(wl.refSource);
    std::printf("== %s: %s ==\n", wl.name.c_str(),
                wl.description.c_str());

    // The control-flow graph.
    Cfg cfg = Cfg::build(orig, orig.entry());
    std::printf("\n-- CFG (%zu blocks, %zu instructions) --\n%s",
                cfg.blocks().size(), cfg.numInsts(),
                cfg.toString().c_str());

    // The training profile.
    Program train = assemble(wl.trainSource);
    ProfileData profile = profileProgram(train, 50000000);
    std::printf("-- profile: %llu dynamic insts, %zu branch sites, "
                "%zu load sites --\n",
                static_cast<unsigned long long>(profile.totalInsts),
                profile.branches.size(), profile.loads.size());
    for (const auto &[pc, bp] : profile.branches) {
        std::printf("   branch 0x%-6x taken %6.2f%%  (%llu samples)\n",
                    pc, 100.0 * bp.bias(),
                    static_cast<unsigned long long>(bp.total));
    }

    // Fork-site selection.
    ForkSelectOptions fopts;
    ForkSelection sel = selectForkSites(cfg, profile, fopts);
    std::printf("\n-- fork sites (target task size %llu) --\n",
                static_cast<unsigned long long>(fopts.targetTaskSize));
    for (size_t i = 0; i < sel.sites.size(); ++i) {
        std::printf("   site 0x%-6x fork every %u-th visit\n",
                    sel.sites[i], sel.intervals[i]);
    }

    // Distill and compare.
    DistilledProgram dist =
        distill(orig, profile, DistillerOptions::paperPreset());
    std::printf("\n-- distiller report --\n%s",
                dist.report.toString().c_str());

    std::printf("\n-- original code --\n%s",
                orig.disassembleRange(orig.entry(),
                                      static_cast<uint32_t>(
                                          cfg.numInsts())).c_str());
    std::printf("\n-- distilled code --\n%s",
                dist.prog.disassembleRange(
                    dist.prog.entry(),
                    dist.report.distilledStaticInsts).c_str());

    // Show the dynamic effect.
    MsspMachine machine(orig, dist, MsspConfig{});
    MsspResult r = machine.run(100000000ull);
    std::printf("dynamic: master executed %llu of %llu original "
                "insts (%.1f%%)\n",
                static_cast<unsigned long long>(
                    machine.counters().masterInsts),
                static_cast<unsigned long long>(r.committedInsts),
                100.0 *
                    static_cast<double>(machine.counters().masterInsts) /
                    static_cast<double>(r.committedInsts));
    return 0;
}

#!/usr/bin/env bash
# Repo health check: formatting (advisory), a normal build + ctest, a
# tree-wide clang-tidy pass (gating when the binary is available), a
# lint-gate smoke test on a deliberately corrupted distilled object,
# a fault-injection campaign smoke (all fault types, determinism
# checked), a Release-build benchmark smoke run (regression gate), and
# a second build + ctest under ASan+UBSan (MSSP_SANITIZE).
#
#   tools/check.sh [--fast]     # --fast skips the sanitizer pass
#
# Every optional gate has a skip knob (set to 1 to skip):
#
#   MSSP_SKIP_TIDY        clang-tidy tree-wide pass
#   MSSP_SKIP_BACKENDS    backend tier smoke + differential fuzz
#   MSSP_SKIP_SPECSAFE    speculation-safety sweep (sharded vs serial)
#   MSSP_SKIP_SPECPLAN    speculation-plan sweep (sharded vs serial)
#   MSSP_SKIP_SPECULATE   value-speculation distill/adapt/lint gate
#   MSSP_SKIP_FAULTS      fault-injection campaign smoke
#   MSSP_SKIP_SUPERVISOR  budget-trip + host-chaos gate
#   MSSP_SKIP_BENCH       Release benchmark smoke (regression gate)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== format check (advisory)"
tools/format.sh --check || echo "check.sh: formatting differs (advisory only)"

echo "== build (default flags)"
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j"$JOBS"

echo "== ctest (default flags)"
ctest --test-dir build --output-on-failure -j"$JOBS"

# Tree-wide static analysis, driven by the committed .clang-tidy
# profile. A gate when the binary exists; skipped gracefully (with a
# note) when it doesn't, so minimal containers can still run check.sh.
if [[ "${MSSP_SKIP_TIDY:-0}" == "1" ]]; then
    echo "== skipping clang-tidy (MSSP_SKIP_TIDY=1)"
elif command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (tree-wide)"
    mapfile -t tidy_sources < <(find src tools -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p build "${tidy_sources[@]}"
    else
        clang-tidy -quiet -p build "${tidy_sources[@]}"
    fi
else
    echo "== clang-tidy not installed; skipping (set MSSP_SKIP_TIDY=1 to silence)"
fi

echo "== lint gate smoke test"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/prog.s" <<'EOF'
  addi t0, zero, 10
  addi t1, zero, 0
loop:
  add t1, t1, t0
  addi t0, t0, -1
  bne t0, zero, loop
  out t1, 0
  halt
EOF
build/tools/mssp-distill "$tmp/prog.s" -o "$tmp/prog.mdo" --verify
# Exit 0 = clean, 1 = warnings only (docs/LINT.md): both acceptable
# here, errors (2) and usage/read failures (3) are not.
lint_rc=0
build/tools/mssp-lint "$tmp/prog.s" --image "$tmp/prog.mdo" \
    || lint_rc=$?
if [[ $lint_rc -gt 1 ]]; then
    echo "check.sh: lint failed on a fresh image (exit $lint_rc)" >&2
    exit 1
fi
# Corrupt the restart map: the lint must reject the image (exit 2).
sed 's/^restart \(0x[0-9a-f]*\) 0x[0-9a-f]*/restart \1 0x999999/' \
    "$tmp/prog.mdo" > "$tmp/bad.mdo"
bad_rc=0
build/tools/mssp-lint "$tmp/prog.s" --image "$tmp/bad.mdo" \
    > /dev/null || bad_rc=$?
if [[ $bad_rc -ne 2 ]]; then
    echo "check.sh: lint did not reject a corrupted image with" \
         "exit 2 (got $bad_rc)" >&2
    exit 1
fi
echo "corrupted image rejected, as it should be"

# The JSON contract on error paths (docs/SCHEMAS.md): every
# --report=json invocation must emit a schema-bearing document on
# stdout, even for usage errors (exit 3) and unreadable input, so
# downstream jq pipelines never see an empty stream.
usage_rc=0
usage_out=$(build/tools/mssp-lint --report=json 2>/dev/null) \
    || usage_rc=$?
if [[ $usage_rc -ne 3 || "$usage_out" != *'"schema"'* ]]; then
    echo "check.sh: usage error did not emit a schema JSON document" \
         "with exit 3 (exit $usage_rc: $usage_out)" >&2
    exit 1
fi
noent_rc=0
noent_out=$(build/tools/mssp-lint --plan --report=json \
    "$tmp/does-not-exist.s" 2>/dev/null) || noent_rc=$?
if [[ $noent_rc -ne 3 || "$noent_out" != *'"mssp-specplan-v1"'* ]]; then
    echo "check.sh: unreadable input did not emit the mode's schema" \
         "JSON document with exit 3 (exit $noent_rc: $noent_out)" >&2
    exit 1
fi
echo "JSON error documents emitted on usage/read failures, as specified"

if [[ "${MSSP_SKIP_BACKENDS:-0}" == "1" ]]; then
    echo "== skipping backend smoke (MSSP_SKIP_BACKENDS=1)"
else
    # The three execution tiers must retire identical architectural
    # results (DESIGN.md §11): diff a smoke run across all of them,
    # then run the differential fuzz gate at its default seed range.
    echo "== backend smoke (ref vs threaded vs blockjit)"
    for be in ref threaded blockjit; do
        build/tools/mssp-run "$tmp/prog.s" --backend "$be" \
            > "$tmp/run-$be.out"
    done
    for be in threaded blockjit; do
        if ! cmp -s "$tmp/run-ref.out" "$tmp/run-$be.out"; then
            echo "check.sh: --backend $be output differs from ref:" >&2
            diff "$tmp/run-ref.out" "$tmp/run-$be.out" >&2 || true
            exit 1
        fi
    done
    build/tests/test_backend_fuzz
    echo "backend tiers agree (smoke + fuzz gate)"
fi

if [[ "${MSSP_SKIP_SPECSAFE:-0}" == "1" ]]; then
    echo "== skipping specsafe gate (MSSP_SKIP_SPECSAFE=1)"
else
    # Speculation-safety sweep over every registry workload: every
    # static load classified, persisted metadata re-validates, and
    # the aggregated JSON from a sharded run is byte-identical to the
    # serial one (the determinism contract, DESIGN.md §10).
    echo "== specsafe gate (all workloads, sharded vs serial)"
    spec_rc=0
    build/tools/mssp-lint --specsafe --workloads all --scale 0.05 \
        --jobs "$JOBS" --report=json > "$tmp/specsafe-par.json" \
        || spec_rc=$?
    if [[ $spec_rc -gt 1 ]]; then
        echo "check.sh: specsafe found errors (exit $spec_rc)" >&2
        exit 1
    fi
    build/tools/mssp-lint --specsafe --workloads all --scale 0.05 \
        --jobs 1 --report=json > "$tmp/specsafe-ser.json" || true
    if ! cmp -s "$tmp/specsafe-par.json" "$tmp/specsafe-ser.json"; then
        echo "check.sh: sharded specsafe report (--jobs $JOBS)" \
             "differs from the serial one" >&2
        exit 1
    fi
    echo "specsafe clean; --jobs $JOBS report byte-identical to --jobs 1"
fi

if [[ "${MSSP_SKIP_SPECPLAN:-0}" == "1" ]]; then
    echo "== skipping specplan gate (MSSP_SKIP_SPECPLAN=1)"
else
    # Speculation-plan sweep over every registry workload: the
    # persisted plans re-validate, and the aggregated JSON from a
    # sharded run is byte-identical to the serial one.
    echo "== specplan gate (all workloads, sharded vs serial)"
    plan_rc=0
    build/tools/mssp-lint --plan --workloads all --scale 0.05 \
        --jobs "$JOBS" --report=json > "$tmp/specplan-par.json" \
        || plan_rc=$?
    if [[ $plan_rc -gt 1 ]]; then
        echo "check.sh: specplan found errors (exit $plan_rc)" >&2
        exit 1
    fi
    build/tools/mssp-lint --plan --workloads all --scale 0.05 \
        --jobs 1 --report=json > "$tmp/specplan-ser.json" || true
    if ! cmp -s "$tmp/specplan-par.json" "$tmp/specplan-ser.json"; then
        echo "check.sh: sharded specplan report (--jobs $JOBS)" \
             "differs from the serial one" >&2
        exit 1
    fi
    echo "specplan clean; --jobs $JOBS report byte-identical to --jobs 1"
fi

if [[ "${MSSP_SKIP_SPECULATE:-0}" == "1" ]]; then
    echo "== skipping speculation gate (MSSP_SKIP_SPECULATE=1)"
else
    # Value-speculating distiller (DESIGN.md §13): distill one
    # workload with --speculate --adapt, require convergence and a
    # verified image (--verify replays every proven bake against the
    # SEQ oracle), then lint the image against the original program
    # and check the whole flow is deterministic (a second run must
    # produce the same bytes).
    echo "== speculation gate (distill --speculate --adapt + lint)"
    build/tools/mssp-distill --workload mcf --scale 0.05 \
        --speculate --adapt 4 --verify -o "$tmp/spec-mcf.mdo"
    spec_lint_rc=0
    build/tools/mssp-lint --workload mcf --scale 0.05 \
        --image "$tmp/spec-mcf.mdo" > /dev/null || spec_lint_rc=$?
    if [[ $spec_lint_rc -gt 1 ]]; then
        echo "check.sh: lint rejected the speculated image" \
             "(exit $spec_lint_rc)" >&2
        exit 1
    fi
    build/tools/mssp-distill --workload mcf --scale 0.05 \
        --speculate --adapt 4 -o "$tmp/spec-mcf2.mdo"
    if ! cmp -s "$tmp/spec-mcf.mdo" "$tmp/spec-mcf2.mdo"; then
        echo "check.sh: speculated image is not byte-deterministic" \
             "across re-distillation" >&2
        exit 1
    fi
    echo "speculated image verified, lint-clean, byte-deterministic"
fi

if [[ "${MSSP_SKIP_FAULTS:-0}" == "1" ]]; then
    echo "== skipping fault-campaign smoke (MSSP_SKIP_FAULTS=1)"
else
    # Quick sweep: every fault type on two workloads. The binary exits
    # nonzero if any invariant (output equivalence, forward progress,
    # clean architected state) fails or a fault type never fired. The
    # sweep runs twice — once sharded across every host core, once on
    # the exact serial path — and the two reports must be
    # byte-identical: that one diff checks both reproducibility and
    # the parallel driver's determinism contract (DESIGN.md §10)
    # without simulating a third time.
    echo "== fault-campaign smoke (all fault types, 2 workloads)"
    build/tools/mssp-faultcamp --workloads gzip,mcf --scale 0.05 \
        --seed 12345 --jobs "$JOBS" --quiet --json "$tmp/camp-par.json"
    build/tools/mssp-faultcamp --workloads gzip,mcf --scale 0.05 \
        --seed 12345 --jobs 1 --quiet --json "$tmp/camp-ser.json"
    if ! cmp -s "$tmp/camp-par.json" "$tmp/camp-ser.json"; then
        echo "check.sh: sharded campaign (--jobs $JOBS) differs from" \
             "the serial one" >&2
        exit 1
    fi
    echo "campaign passed; --jobs $JOBS report byte-identical to --jobs 1"
fi

if [[ "${MSSP_SKIP_SUPERVISOR:-0}" == "1" ]]; then
    echo "== skipping supervisor gate (MSSP_SKIP_SUPERVISOR=1)"
else
    # Budget trips and graceful degradation (DESIGN.md §12). First the
    # instruction cap: a capped run must stop with the documented
    # budget-trip exit code (4), not a hang or a generic failure.
    echo "== supervisor gate (budget trip + chaos mini-sweep)"
    cap_rc=0
    build/tools/mssp-run "$tmp/prog.s" --max-insts 10 \
        > /dev/null 2>&1 || cap_rc=$?
    if [[ $cap_rc -ne 4 ]]; then
        echo "check.sh: --max-insts 10 did not exit 4 (budget trip)," \
             "got $cap_rc" >&2
        exit 1
    fi
    # Then host chaos: a chaos-swept campaign must complete (exit 0 if
    # every victim recovered on retry, 5 if some cells quarantined),
    # and — because injections key on (seed, job, attempt), never on
    # scheduling — the sharded report must be byte-identical to the
    # serial one, quarantine block included.
    chaos_par_rc=0
    build/tools/mssp-faultcamp --workloads gzip,mcf --scale 0.05 \
        --seed 12345 --chaos 7 --jobs "$JOBS" --quiet \
        --json "$tmp/chaos-par.json" || chaos_par_rc=$?
    if [[ $chaos_par_rc -ne 0 && $chaos_par_rc -ne 5 ]]; then
        echo "check.sh: chaos campaign failed outright" \
             "(exit $chaos_par_rc, expected 0 or 5)" >&2
        exit 1
    fi
    chaos_ser_rc=0
    build/tools/mssp-faultcamp --workloads gzip,mcf --scale 0.05 \
        --seed 12345 --chaos 7 --jobs 1 --quiet \
        --json "$tmp/chaos-ser.json" || chaos_ser_rc=$?
    if [[ $chaos_ser_rc -ne $chaos_par_rc ]]; then
        echo "check.sh: chaos campaign exit differs sharded" \
             "($chaos_par_rc) vs serial ($chaos_ser_rc)" >&2
        exit 1
    fi
    if ! cmp -s "$tmp/chaos-par.json" "$tmp/chaos-ser.json"; then
        echo "check.sh: sharded chaos campaign (--jobs $JOBS) differs" \
             "from the serial one" >&2
        exit 1
    fi
    echo "budget trip exits 4; chaos sweep deterministic across shard counts"
fi

if [[ "${MSSP_SKIP_BENCH:-0}" == "1" ]]; then
    echo "== skipping benchmark smoke (MSSP_SKIP_BENCH=1)"
else
    # Quick run with a wide tolerance: this catches builds that fell
    # off a performance cliff, not few-percent drift (the machine is
    # shared; tools/bench.sh with the default tolerance is the real
    # comparison).
    echo "== benchmark smoke (Release, quick run)"
    MSSP_BENCH_MIN_TIME=0.05 tools/bench.sh --tolerance 0.5
fi

if [[ $fast == 1 ]]; then
    echo "== skipping sanitizer pass (--fast)"
    exit 0
fi

echo "== build (ASan+UBSan)"
cmake -B build-san -S . -DMSSP_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j"$JOBS"

echo "== ctest (ASan+UBSan)"
ctest --test-dir build-san --output-on-failure -j"$JOBS"

echo "== all checks passed"

#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against BENCH_simspeed.json.

The committed file has two sections:

  baseline  the recorded seed numbers (never auto-updated): speedups
            are always reported against these, so "how much faster is
            the simulator than when we started measuring" is one
            command away.
  current   the numbers committed with the most recent optimization
            work: the regression gate. A fresh run whose items/sec
            drops more than --tolerance below any committed current
            number fails the compare.

Usage:
  bench_compare.py BENCH_simspeed.json run.json [--tolerance 0.10]
  bench_compare.py BENCH_simspeed.json run.json --update [--label L]

--update rewrites the file's "current" section from run.json (the
baseline is preserved verbatim).
"""

import argparse
import json
import sys


def load_json(path, what):
    """Parse a JSON file, exiting cleanly (not with a traceback) when
    it is missing or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"bench_compare: cannot read {what} {path}: "
              f"{e.strerror}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(f"bench_compare: {what} {path} is not valid JSON: {e}",
              file=sys.stderr)
        sys.exit(1)


def load_run(path):
    """name -> items_per_second from a google-benchmark JSON file."""
    data = load_json(path, "benchmark run")
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if "items_per_second" not in b:
            continue
        out[b["name"]] = {
            "items_per_second": b["items_per_second"],
            "real_time_ns": b["real_time"],
            "iterations": b["iterations"],
        }
    return out


def fmt(ips):
    return f"{ips:14.4g}"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("reference", help="committed BENCH_simspeed.json")
    ap.add_argument("run", help="fresh google-benchmark JSON output")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop vs committed current "
                         "(default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the reference's 'current' section "
                         "from the run instead of comparing")
    ap.add_argument("--label", default="updated",
                    help="label recorded with --update")
    args = ap.parse_args()

    ref = load_json(args.reference, "reference")
    run = load_run(args.run)
    if not run:
        print("bench_compare: no benchmarks in run output", file=sys.stderr)
        return 1

    if args.update:
        ref["current"] = {"label": args.label, "benchmarks": run}
        with open(args.reference, "w") as f:
            json.dump(ref, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: updated 'current' "
              f"({len(run)} benchmarks) in {args.reference}")
        return 0

    baseline = ref.get("baseline", {}).get("benchmarks", {})
    current = ref.get("current", {}).get("benchmarks", {})
    if not current:
        print("bench_compare: reference has no 'current' section",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'benchmark':<20}{'baseline':>14}{'committed':>14}"
          f"{'this run':>14}{'vs base':>9}{'vs commit':>10}")
    for name, cur in sorted(current.items()):
        if name not in run:
            failures.append(f"{name}: missing from this run")
            continue
        now = run[name]["items_per_second"]
        committed = cur.get("items_per_second", 0)
        if not committed:
            failures.append(f"{name}: committed entry has no "
                            f"items_per_second")
            continue
        base = baseline.get(name, {}).get("items_per_second")
        vs_base = f"{now / base:7.2f}x" if base else "      --"
        ratio = now / committed
        print(f"{name:<20}{fmt(base) if base else '--':>14}"
              f"{fmt(committed)}{fmt(now)}{vs_base:>9}{ratio:9.2f}x")
        if now < committed * (1.0 - args.tolerance):
            failures.append(
                f"{name}: {now:.4g} items/s is "
                f"{(1 - ratio) * 100:.1f}% below committed "
                f"{committed:.4g} (tolerance "
                f"{args.tolerance * 100:.0f}%)")

    if failures:
        print("\nbench_compare: REGRESSION", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK (no benchmark more than "
          f"{args.tolerance * 100:.0f}% below committed numbers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against BENCH_simspeed.json.

The committed file has two sections:

  baseline  the recorded seed numbers (never auto-updated): speedups
            are always reported against these, so "how much faster is
            the simulator than when we started measuring" is one
            command away.
  current   the numbers committed with the most recent optimization
            work: the regression gate. A fresh run whose items/sec
            drops more than --tolerance below any committed current
            number fails the compare.

Each benchmark also exports deterministic `sim_*` counters (simulated
instructions, cycles, tasks, ...). Unlike items/sec those are pure
simulation outputs — identical on any host — so they are compared
EXACTLY, and --counters-only restricts the gate to them. That is what
CI's bench-smoke job runs: a counter mismatch means the simulation
changed behaviour, a throughput dip on a noisy shared runner does not
fail the build (the wall-clock numbers ride along as an artifact).

Usage:
  bench_compare.py BENCH_simspeed.json run.json [--tolerance 0.10]
  bench_compare.py BENCH_simspeed.json run.json --counters-only
  bench_compare.py BENCH_simspeed.json run.json --update [--label L]
  bench_compare.py BENCH_simspeed.json run.json --update-counters

--update rewrites the file's "current" section from run.json (the
baseline is preserved verbatim). --update-counters rewrites only the
"counters" of existing current entries, leaving the committed perf
numbers untouched (use after a legitimate simulation change, without
having to re-measure throughput on the reference machine).
"""

import argparse
import json
import sys


def load_json(path, what):
    """Parse a JSON file, exiting cleanly (not with a traceback) when
    it is missing or malformed."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"bench_compare: cannot read {what} {path}: "
              f"{e.strerror}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(f"bench_compare: {what} {path} is not valid JSON: {e}",
              file=sys.stderr)
        sys.exit(1)


def load_run(path):
    """name -> items_per_second from a google-benchmark JSON file."""
    data = load_json(path, "benchmark run")
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if "items_per_second" not in b:
            continue
        entry = {
            "items_per_second": b["items_per_second"],
            "real_time_ns": b["real_time"],
            "iterations": b["iterations"],
        }
        # google-benchmark flattens user counters into the benchmark
        # object; ours all start with "sim_" and are deterministic.
        counters = {k: v for k, v in b.items() if k.startswith("sim_")}
        if counters:
            entry["counters"] = counters
        out[b["name"]] = entry
    return out


def compare_counters(current, run):
    """Exact-match comparison of the deterministic sim_* counters.
    Returns (lines, failures)."""
    lines = []
    failures = []
    for name, cur in sorted(current.items()):
        committed = cur.get("counters", {})
        if not committed:
            continue
        got = run.get(name, {}).get("counters", {})
        for key, want in sorted(committed.items()):
            have = got.get(key)
            status = "ok" if have == want else "MISMATCH"
            have_s = "missing" if have is None else f"{have:.10g}"
            lines.append(f"{name + '.' + key:<34}{want:>16.10g}"
                         f"{have_s:>16} {status}")
            if have != want:
                failures.append(
                    f"{name}.{key}: run has {have_s}, committed "
                    f"{want:.10g} (sim counters must match exactly)")
    return lines, failures


def fmt(ips):
    return f"{ips:14.4g}"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("reference", help="committed BENCH_simspeed.json")
    ap.add_argument("run", help="fresh google-benchmark JSON output")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop vs committed current "
                         "(default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the reference's 'current' section "
                         "from the run instead of comparing")
    ap.add_argument("--update-counters", action="store_true",
                    help="rewrite only the sim_* counters of existing "
                         "'current' entries (perf numbers untouched)")
    ap.add_argument("--counters-only", action="store_true",
                    help="gate only on exact sim_* counter matches; "
                         "report throughput without failing on it")
    ap.add_argument("--label", default="updated",
                    help="label recorded with --update")
    args = ap.parse_args()

    ref = load_json(args.reference, "reference")
    run = load_run(args.run)
    if not run:
        print("bench_compare: no benchmarks in run output", file=sys.stderr)
        return 1

    if args.update:
        ref["current"] = {"label": args.label, "benchmarks": run}
        with open(args.reference, "w") as f:
            json.dump(ref, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: updated 'current' "
              f"({len(run)} benchmarks) in {args.reference}")
        return 0

    baseline = ref.get("baseline", {}).get("benchmarks", {})
    current = ref.get("current", {}).get("benchmarks", {})
    if not current:
        print("bench_compare: reference has no 'current' section",
              file=sys.stderr)
        return 1

    if args.update_counters:
        n = 0
        for name, entry in current.items():
            counters = run.get(name, {}).get("counters")
            if counters:
                entry["counters"] = counters
                n += 1
            else:
                entry.pop("counters", None)
        with open(args.reference, "w") as f:
            json.dump(ref, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: rewrote counters for {n} benchmarks "
              f"in {args.reference} (perf numbers untouched)")
        return 0

    counter_lines, counter_failures = compare_counters(current, run)
    failures = list(counter_failures)
    print(f"{'benchmark':<20}{'baseline':>14}{'committed':>14}"
          f"{'this run':>14}{'vs base':>9}{'vs commit':>10}")
    for name, cur in sorted(current.items()):
        if name not in run:
            failures.append(f"{name}: missing from this run")
            continue
        now = run[name]["items_per_second"]
        committed = cur.get("items_per_second", 0)
        if not committed:
            failures.append(f"{name}: committed entry has no "
                            f"items_per_second")
            continue
        base = baseline.get(name, {}).get("items_per_second")
        vs_base = f"{now / base:7.2f}x" if base else "      --"
        ratio = now / committed
        print(f"{name:<20}{fmt(base) if base else '--':>14}"
              f"{fmt(committed)}{fmt(now)}{vs_base:>9}{ratio:9.2f}x")
        if now < committed * (1.0 - args.tolerance):
            msg = (f"{name}: {now:.4g} items/s is "
                   f"{(1 - ratio) * 100:.1f}% below committed "
                   f"{committed:.4g} (tolerance "
                   f"{args.tolerance * 100:.0f}%)")
            if args.counters_only:
                print(f"bench_compare: (non-gating) {msg}")
            else:
                failures.append(msg)

    if counter_lines:
        print(f"\n{'deterministic counter':<34}{'committed':>16}"
              f"{'this run':>16}")
        for line in counter_lines:
            print(line)

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if args.counters_only:
        print("\nbench_compare: OK (all deterministic sim counters "
              "match; throughput is informational)")
    else:
        print(f"\nbench_compare: OK (counters match; no benchmark "
              f"more than {args.tolerance * 100:.0f}% below "
              f"committed numbers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

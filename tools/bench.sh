#!/usr/bin/env bash
# Simulator-throughput benchmark harness.
#
# Builds the Release bench binary, runs the micro_simspeed suite with
# JSON output, and compares items/sec against the committed
# BENCH_simspeed.json (fails on a >10% regression; always reports the
# speedup vs the recorded seed baseline).
#
#   tools/bench.sh                  # run + compare
#   tools/bench.sh --update "msg"   # run + rewrite 'current' section
#   tools/bench.sh --counters-only  # gate only on exact sim_* counter
#                                   # matches (CI: wall clock is noisy)
#   tools/bench.sh --update-counters  # rewrite committed counters only
#   MSSP_BENCH_MIN_TIME=0.05 tools/bench.sh --tolerance 0.5
#                                   # quick smoke (used by check.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
MIN_TIME=${MSSP_BENCH_MIN_TIME:-0.5}
update=0
label="updated"
compare_args=()
while [[ $# -gt 0 ]]; do
    case "$1" in
      --update)
        update=1
        [[ $# -gt 1 ]] && { label="$2"; shift; }
        ;;
      --tolerance)
        compare_args+=(--tolerance "$2"); shift
        ;;
      --counters-only|--update-counters)
        compare_args+=("$1")
        ;;
      *)
        echo "usage: tools/bench.sh [--update [label]] [--tolerance X]" \
             "[--counters-only] [--update-counters]" >&2
        exit 2
        ;;
    esac
    shift
done

echo "== build (Release, build-bench)"
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j"$JOBS" --target micro_simspeed

# MSSP_BENCH_OUT keeps the raw google-benchmark JSON at a caller-chosen
# path (CI uploads it as the non-gating wall-clock artifact).
if [[ -n "${MSSP_BENCH_OUT:-}" ]]; then
    out="$MSSP_BENCH_OUT"
else
    out=$(mktemp /tmp/mssp_bench.XXXXXX.json)
    trap 'rm -f "$out"' EXIT
fi

echo "== run micro_simspeed (min_time ${MIN_TIME}s per benchmark)"
build-bench/bench/micro_simspeed \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$out" --benchmark_out_format=json \
    --benchmark_format=console

if [[ $update == 1 ]]; then
    python3 tools/bench_compare.py BENCH_simspeed.json "$out" \
        --update --label "$label"
else
    python3 tools/bench_compare.py BENCH_simspeed.json "$out" \
        ${compare_args[@]+"${compare_args[@]}"}
fi

/**
 * @file
 * mssp-faultcamp: sweep fault types x rates across the workload suite
 * and verify the safety invariants on every run (docs/FAULTS.md).
 *
 *   mssp-faultcamp [--workloads gzip,mcf,...] [--types a,b,...]
 *                  [--intensities 1,10] [--scale F] [--seed N]
 *                  [--max-cycles N] [--json FILE] [--quiet]
 *                  [--list-types] [--timeout-ms N] [--max-insts N]
 *                  [--retries N] [--chaos SEED]
 *
 * Cells run supervised (sim/supervisor.hh): --timeout-ms /
 * --max-insts bound each attempt (env defaults MSSP_JOB_TIMEOUT_MS /
 * MSSP_JOB_MAX_INSTS), --retries sets the strikes before quarantine,
 * and --chaos enables the deterministic host-chaos preset
 * (fault/hostchaos.hh) with the given seed.
 *
 * Exit status (docs/LINT.md): 0 when every run satisfied all
 * invariants AND every swept fault type injected at least once;
 * 5 when the only blemish is quarantined cells (their structured
 * statuses are in the report); 1 otherwise. The JSON report is
 * byte-deterministic for fixed options (CI runs the sweep twice and
 * diffs) — except quarantines decided by the wall-clock deadline,
 * which are host-timing dependent by nature.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "util/string_utils.hh"

using namespace mssp;

namespace
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    for (std::string_view part : split(s, ',')) {
        if (!part.empty())
            out.emplace_back(part);
    }
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mssp-faultcamp [--workloads a,b,...] [--types a,b,...]\n"
        "                      [--intensities 1,10] [--scale F]\n"
        "                      [--seed N] [--max-cycles N] [--jobs N]\n"
        "                      [--json FILE] [--quiet] [--list-types]\n"
        "                      [--timeout-ms N] [--max-insts N]\n"
        "                      [--retries N] [--chaos SEED]\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CampaignOptions opts;
    opts.jobs = defaultJobs();
    opts.cellBudget = budgetFromEnv();
    std::string json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workloads" && i + 1 < argc) {
            opts.workloads = splitList(argv[++i]);
        } else if (arg == "--types" && i + 1 < argc) {
            opts.types.clear();
            for (const std::string &name : splitList(argv[++i])) {
                FaultType t = faultTypeFromString(name);
                if (t == FaultType::None) {
                    std::fprintf(stderr,
                                 "mssp-faultcamp: unknown fault type "
                                 "'%s' (try --list-types)\n",
                                 name.c_str());
                    return 2;
                }
                opts.types.push_back(t);
            }
        } else if (arg == "--intensities" && i + 1 < argc) {
            opts.intensities.clear();
            for (const std::string &v : splitList(argv[++i]))
                opts.intensities.push_back(std::atof(v.c_str()));
        } else if (arg == "--scale" && i + 1 < argc) {
            opts.scale = std::atof(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            opts.maxCycles =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            opts.cellBudget.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-insts" && i + 1 < argc) {
            opts.cellBudget.maxInsts =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--retries" && i + 1 < argc) {
            opts.retry.maxAttempts = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else if (arg == "--chaos" && i + 1 < argc) {
            opts.chaos = HostChaosPlan::preset(
                static_cast<uint64_t>(std::atoll(argv[++i])));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-types") {
            for (FaultType t : allFaultTypes()) {
                std::printf("%-19s base rate %g\n", toString(t),
                            faultBaseRate(t));
            }
            return 0;
        } else {
            return usage();
        }
    }

    try {
        CampaignReport report =
            runFaultCampaign(opts, quiet ? nullptr : &std::cerr);

        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr,
                             "mssp-faultcamp: cannot write %s\n",
                             json_path.c_str());
                return 1;
            }
            out << report.toJson();
        }
        if (!quiet || json_path.empty())
            std::fputs(report.summary().c_str(), stdout);

        if (report.failures() != 0) {
            std::fprintf(stderr,
                         "mssp-faultcamp: %zu run(s) violated an "
                         "invariant\n",
                         report.failures());
            return 1;
        }
        // A quarantined cell loses its injections, so unfired types
        // are only a hard failure when nothing was quarantined.
        if (!report.allTypesFired() && report.quarantined() == 0) {
            std::fprintf(stderr,
                         "mssp-faultcamp: some fault types never "
                         "injected (raise --intensities or the "
                         "cycle budget)\n");
            return 1;
        }
        if (report.quarantined() != 0) {
            std::fprintf(stderr,
                         "mssp-faultcamp: %zu cell(s) quarantined "
                         "(invariants held on every healthy cell)\n",
                         report.quarantined());
            return 5;
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-faultcamp: %s\n", e.what());
        return 1;
    }
}

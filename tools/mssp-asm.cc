/**
 * @file
 * mssp-asm: assemble μRISC source into an object file.
 *
 *   mssp-asm input.s [-o output.mo] [--disasm]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "isa/disasm.hh"
#include "sim/logging.hh"
#include "util/file.hh"

using namespace mssp;

int
main(int argc, char **argv)
{
    std::string input;
    std::string output;
    bool disasm = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            output = argv[++i];
        } else if (std::strcmp(argv[i], "--disasm") == 0) {
            disasm = true;
        } else if (argv[i][0] != '-' && input.empty()) {
            input = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: mssp-asm input.s [-o out.mo] "
                         "[--disasm]\n");
            return 2;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "mssp-asm: no input file\n");
        return 2;
    }
    if (output.empty()) {
        output = input;
        size_t dot = output.rfind('.');
        if (dot != std::string::npos)
            output.resize(dot);
        output += ".mo";
    }

    try {
        Program prog = assemble(readFile(input));
        writeFile(output, saveProgram(prog));
        std::printf("%s: %zu words, entry 0x%x -> %s\n",
                    input.c_str(), prog.sizeWords(), prog.entry(),
                    output.c_str());
        if (disasm) {
            for (const auto &[addr, word] : prog.image()) {
                std::printf("0x%06x:  %-10s %s\n", addr,
                            strfmt("0x%08x", word).c_str(),
                            disassembleWord(word, addr).c_str());
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-asm: %s: %s\n", input.c_str(),
                     e.what());
        return 1;
    }
    return 0;
}

/**
 * @file
 * mssp-lint: static verification of distilled programs.
 *
 *   mssp-lint ref.{s,mo} [--image img.mdo] [--train t]
 *             [--semantic | --specsafe | --plan]
 *             [--json | --report=json]
 *   mssp-lint --workload NAME [--semantic | --specsafe | --plan]
 *             [--json | --report=json]
 *   mssp-lint {--specsafe | --plan} --workloads NAME[,NAME...]|all
 *             [--jobs N] [--json | --report=json]
 *
 * With --image, verifies an existing distilled object against the
 * reference program. Otherwise (or with --workload) the reference is
 * profiled and distilled in-process first, so the tool doubles as a
 * one-shot distiller health check.
 *
 * --semantic additionally runs the abstract-interpretation
 * translation validator (analysis/semantic.cc): every recorded edit
 * is classified proven/risky/unknown, and with --report=json the
 * output carries a per-edit "edits" array alongside the findings.
 *
 * --specsafe runs the speculation-safety classifier
 * (analysis/specsafe.hh) instead: every static load in the distilled
 * image is classified provably-invariant / region-invariant / risky,
 * and the image's persisted `specload` metadata is validated against
 * the recomputation.
 *
 * --plan runs the value-flow analysis and speculation planner
 * (analysis/specplan.hh): every predictable load becomes a ranked
 * plan candidate (proven/likely, predicted value, benefit score),
 * and the image's persisted `specplan` metadata is validated against
 * the recomputation.
 *
 * --workloads sweeps many registry workloads in one invocation
 * (specsafe or plan mode), sharded over --jobs host threads; the
 * aggregated JSON document is byte-identical for any job count.
 *
 * Exit codes (all modes): 0 clean, 1 warnings only, 2 errors found,
 * 3 bad usage or unreadable input. With --report=json every exit
 * path — including usage errors and unreadable input — emits a JSON
 * document naming its schema on stdout, so downstream jq pipelines
 * never see an empty stream. Checks and the JSON schemas:
 * docs/LINT.md, docs/SCHEMAS.md.
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "util/file.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

using namespace mssp;

namespace
{

Program
loadAny(const std::string &path)
{
    std::string text = readFile(path);
    if (startsWith(trim(text), "mssp-object"))
        return loadProgram(text);
    return assemble(text);
}

std::string
jsonEscapeErr(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strfmt("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strfmt("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

/** Error document for --report=json early exits: names the schema
 *  the invocation would have produced, so piped jq still parses. */
void
emitJsonError(const char *schema, const std::string &message,
              bool usage_error)
{
    std::printf("{\"schema\": \"%s\", \"error\": \"%s\", \"usage\": "
                "%s}\n",
                schema, jsonEscapeErr(message).c_str(),
                usage_error ? "true" : "false");
}

int
usage(bool json, const char *schema)
{
    if (json)
        emitJsonError(schema, "bad usage", true);
    std::fprintf(
        stderr,
        "usage: mssp-lint ref.{s,mo} [--image img.mdo] "
        "[--train t.{s,mo}] [--semantic | --specsafe | --plan] "
        "[--json | --report=json]\n"
        "       mssp-lint --workload NAME [--scale X] "
        "[--image img.mdo] [--semantic | --specsafe "
        "| --plan] [--json | --report=json]\n"
        "       mssp-lint {--specsafe | --plan} --workloads "
        "NAME[,NAME...]|all [--jobs N] [--scale X] "
        "[--json | --report=json]\n");
    return 3;
}

/** The unified exit-code contract (docs/LINT.md): 0 clean, 1
 *  warnings only, 2 errors. */
int
exitCode(const analysis::LintReport &rep)
{
    if (rep.errors())
        return 2;
    return rep.warnings() ? 1 : 0;
}

/** One workload's analysis, for the --workloads sweep. */
struct SpecSweepRow
{
    std::string name;
    analysis::SpecSafeReport specsafe;
    analysis::SpecPlanReport plan;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string ref_path, image_path, train_path, workload;
    std::string workloads_arg;
    bool json = false;
    bool semantic = false;
    bool specsafe = false;
    bool plan = false;
    unsigned jobs = defaultJobs();
    double scale = 1.0;

    // The json flag must be known before any usage error can fire,
    // so the error document contract holds regardless of argument
    // order.
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" || arg == "--report=json")
            json = true;
        else if (arg == "--semantic")
            semantic = true;
        else if (arg == "--specsafe")
            specsafe = true;
        else if (arg == "--plan")
            plan = true;
    }
    const char *schema = plan       ? "mssp-specplan-v1"
                         : specsafe ? "mssp-specsafe-v1"
                                    : "mssp-lint-v1";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--image" && i + 1 < argc) {
            image_path = argv[++i];
        } else if (arg == "--train" && i + 1 < argc) {
            train_path = argv[++i];
        } else if (arg == "--workload" && i + 1 < argc) {
            workload = argv[++i];
        } else if (arg == "--workloads" && i + 1 < argc) {
            workloads_arg = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
            if (jobs == 0)
                jobs = 1;
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atof(argv[++i]);
            if (scale <= 0)
                return usage(json, schema);
        } else if (arg == "--json" || arg == "--report=json" ||
                   arg == "--semantic" || arg == "--specsafe" ||
                   arg == "--plan") {
            // consumed by the pre-scan
        } else if (arg[0] != '-' && ref_path.empty()) {
            ref_path = arg;
        } else {
            return usage(json, schema);
        }
    }
    if (semantic + specsafe + plan > 1)
        return usage(json, schema);
    if (!workloads_arg.empty()) {
        // The sweep form is specsafe/plan-only and takes no other
        // input.
        if ((!specsafe && !plan) || !ref_path.empty() ||
            !workload.empty() || !image_path.empty())
            return usage(json, schema);
    } else if (ref_path.empty() == workload.empty()) {
        return usage(json, schema);
    }

    try {
        // --workloads: sharded sweep, one aggregated document.
        if (!workloads_arg.empty()) {
            std::vector<std::string> names;
            if (workloads_arg == "all") {
                for (const Workload &wl : specAnalogues(scale))
                    names.push_back(wl.name);
            } else {
                for (const auto &n : split(workloads_arg, ','))
                    names.push_back(std::string(trim(n)));
            }

            std::vector<std::function<SpecSweepRow()>> work;
            work.reserve(names.size());
            for (const std::string &name : names) {
                work.push_back([&name, scale, plan] {
                    Workload w = workloadByName(name, scale);
                    PreparedWorkload p =
                        prepare(assemble(w.refSource),
                                assemble(w.trainSource),
                                DistillerOptions::paperPreset());
                    SpecSweepRow row;
                    row.name = name;
                    if (plan) {
                        row.plan = analysis::analyzeSpecPlan(p.orig,
                                                             p.dist);
                    } else {
                        row.specsafe =
                            analysis::analyzeSpecSafe(p.orig,
                                                      p.dist);
                    }
                    return row;
                });
            }
            std::vector<SpecSweepRow> rows =
                runSharded<SpecSweepRow>(jobs, std::move(work));

            if (plan) {
                size_t cands = 0, proven = 0, likely = 0,
                       considered = 0, errors = 0, warnings = 0;
                for (const SpecSweepRow &r : rows) {
                    cands += r.plan.candidates.size();
                    proven += r.plan.proven();
                    likely += r.plan.likely();
                    considered += r.plan.loadsConsidered;
                    errors += r.plan.lint.errors();
                    warnings += r.plan.lint.warnings();
                }
                if (json) {
                    std::string out =
                        "{\"schema\": \"mssp-specplan-v1\", "
                        "\"aggregate\": true, ";
                    out += strfmt(
                        "\"counts\": {\"workloads\": %zu, "
                        "\"candidates\": %zu, \"proven\": %zu, "
                        "\"likely\": %zu, \"considered\": %zu, "
                        "\"errors\": %zu}, ",
                        rows.size(), cands, proven, likely,
                        considered, errors);
                    out += "\"reports\": [\n";
                    for (size_t i = 0; i < rows.size(); ++i) {
                        std::string doc =
                            rows[i].plan.toJson(rows[i].name);
                        while (!doc.empty() && doc.back() == '\n')
                            doc.pop_back();
                        out += doc;
                        out += i + 1 < rows.size() ? ",\n" : "\n";
                    }
                    out += "]}\n";
                    std::fputs(out.c_str(), stdout);
                } else {
                    for (const SpecSweepRow &r : rows) {
                        std::printf("== %s ==\n", r.name.c_str());
                        std::fputs(r.plan.toText().c_str(), stdout);
                        std::fputs(r.plan.lint.toText().c_str(),
                                   stdout);
                    }
                    std::printf(
                        "total: %zu workload(s), %zu candidate(s): "
                        "%zu proven, %zu likely (of %zu eligible "
                        "load(s)); %zu error(s)\n",
                        rows.size(), cands, proven, likely,
                        considered, errors);
                }
                if (errors)
                    return 2;
                return warnings ? 1 : 0;
            }

            size_t loads = 0, pi = 0, ri = 0, risky = 0, errors = 0,
                   warnings = 0;
            for (const SpecSweepRow &r : rows) {
                loads += r.specsafe.loads.size();
                pi += r.specsafe.provablyInvariant();
                ri += r.specsafe.regionInvariant();
                risky += r.specsafe.risky();
                errors += r.specsafe.lint.errors();
                warnings += r.specsafe.lint.warnings();
            }

            if (json) {
                std::string out =
                    "{\"schema\": \"mssp-specsafe-v1\", "
                    "\"aggregate\": true, ";
                out += strfmt(
                    "\"counts\": {\"workloads\": %zu, \"loads\": "
                    "%zu, \"provablyInvariant\": %zu, "
                    "\"regionInvariant\": %zu, \"risky\": %zu, "
                    "\"errors\": %zu}, ",
                    rows.size(), loads, pi, ri, risky, errors);
                out += "\"reports\": [\n";
                for (size_t i = 0; i < rows.size(); ++i) {
                    std::string doc =
                        rows[i].specsafe.toJson(rows[i].name);
                    while (!doc.empty() && doc.back() == '\n')
                        doc.pop_back();
                    out += doc;
                    out += i + 1 < rows.size() ? ",\n" : "\n";
                }
                out += "]}\n";
                std::fputs(out.c_str(), stdout);
            } else {
                for (const SpecSweepRow &r : rows) {
                    std::printf("== %s ==\n", r.name.c_str());
                    std::fputs(r.specsafe.toText().c_str(), stdout);
                    std::fputs(r.specsafe.lint.toText().c_str(),
                               stdout);
                }
                std::printf(
                    "total: %zu workload(s), %zu load(s): %zu "
                    "provably-invariant, %zu region-invariant, %zu "
                    "risky; %zu error(s)\n",
                    rows.size(), loads, pi, ri, risky, errors);
            }
            if (errors)
                return 2;
            return warnings ? 1 : 0;
        }

        Program ref, train;
        if (!workload.empty()) {
            Workload w = workloadByName(workload, scale);
            ref = assemble(w.refSource);
            train = assemble(w.trainSource);
        } else {
            ref = loadAny(ref_path);
            train = train_path.empty() ? ref : loadAny(train_path);
        }

        DistilledProgram dist;
        if (!image_path.empty())
            dist = loadDistilled(readFile(image_path));
        else
            dist = prepare(ref, train,
                           DistillerOptions::paperPreset())
                       .dist;

        if (plan) {
            analysis::SpecPlanReport rep =
                analysis::analyzeSpecPlan(ref, dist);
            if (json) {
                std::fputs(rep.toJson(workload).c_str(), stdout);
            } else {
                std::fputs(rep.toText().c_str(), stdout);
                std::fputs(rep.lint.toText().c_str(), stdout);
            }
            return exitCode(rep.lint);
        }

        if (specsafe) {
            analysis::SpecSafeReport rep =
                analysis::analyzeSpecSafe(ref, dist);
            if (json) {
                std::fputs(rep.toJson(workload).c_str(), stdout);
            } else {
                std::fputs(rep.toText().c_str(), stdout);
                std::fputs(rep.lint.toText().c_str(), stdout);
            }
            return exitCode(rep.lint);
        }

        analysis::LintReport rep =
            analysis::verifyDistilled(ref, dist);
        if (!semantic) {
            std::fputs(json ? rep.toJson().c_str()
                            : rep.toText().c_str(),
                       stdout);
            return exitCode(rep);
        }

        analysis::SemanticResult sem =
            analysis::verifyDistilledSemantic(ref, dist);
        sem.lint.findings.insert(sem.lint.findings.begin(),
                                 rep.findings.begin(),
                                 rep.findings.end());
        if (json) {
            std::fputs(sem.toJson().c_str(), stdout);
        } else {
            std::fputs(sem.semantic.toText().c_str(), stdout);
            std::fputs(sem.lint.toText().c_str(), stdout);
        }
        return exitCode(sem.lint);
    } catch (const FatalError &e) {
        if (json)
            emitJsonError(schema, e.what(), false);
        std::fprintf(stderr, "mssp-lint: %s\n", e.what());
        return 3;
    }
}

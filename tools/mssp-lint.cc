/**
 * @file
 * mssp-lint: static verification of distilled programs.
 *
 *   mssp-lint ref.{s,mo} [--image img.mdo] [--train t]
 *             [--semantic] [--json | --report=json]
 *   mssp-lint --workload NAME [--semantic] [--json | --report=json]
 *
 * With --image, verifies an existing distilled object against the
 * reference program. Otherwise (or with --workload) the reference is
 * profiled and distilled in-process first, so the tool doubles as a
 * one-shot distiller health check.
 *
 * --semantic additionally runs the abstract-interpretation
 * translation validator (analysis/semantic.cc): every recorded edit
 * is classified proven/risky/unknown, and with --report=json the
 * output carries a per-edit "edits" array alongside the findings.
 *
 * Exit codes: 0 clean or warnings only, 1 errors found, 2 bad usage
 * or unreadable input. Checks and the JSON schema: docs/LINT.md.
 */

#include <cstdio>
#include <string>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "sim/logging.hh"
#include "util/file.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

using namespace mssp;

namespace
{

Program
loadAny(const std::string &path)
{
    std::string text = readFile(path);
    if (startsWith(trim(text), "mssp-object"))
        return loadProgram(text);
    return assemble(text);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: mssp-lint ref.{s,mo} [--image img.mdo] "
                 "[--train t.{s,mo}] [--semantic] "
                 "[--json | --report=json]\n"
                 "       mssp-lint --workload NAME [--semantic] "
                 "[--json | --report=json]\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string ref_path, image_path, train_path, workload;
    bool json = false;
    bool semantic = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--image" && i + 1 < argc) {
            image_path = argv[++i];
        } else if (arg == "--train" && i + 1 < argc) {
            train_path = argv[++i];
        } else if (arg == "--workload" && i + 1 < argc) {
            workload = argv[++i];
        } else if (arg == "--json" || arg == "--report=json") {
            json = true;
        } else if (arg == "--semantic") {
            semantic = true;
        } else if (arg[0] != '-' && ref_path.empty()) {
            ref_path = arg;
        } else {
            return usage();
        }
    }
    if (ref_path.empty() == workload.empty())
        return usage();

    try {
        Program ref, train;
        if (!workload.empty()) {
            Workload w = workloadByName(workload);
            ref = assemble(w.refSource);
            train = assemble(w.trainSource);
        } else {
            ref = loadAny(ref_path);
            train = train_path.empty() ? ref : loadAny(train_path);
        }

        DistilledProgram dist;
        if (!image_path.empty())
            dist = loadDistilled(readFile(image_path));
        else
            dist = prepare(ref, train,
                           DistillerOptions::paperPreset())
                       .dist;

        analysis::LintReport rep =
            analysis::verifyDistilled(ref, dist);
        if (!semantic) {
            std::fputs(json ? rep.toJson().c_str()
                            : rep.toText().c_str(),
                       stdout);
            return rep.errors() ? 1 : 0;
        }

        analysis::SemanticResult sem =
            analysis::verifyDistilledSemantic(ref, dist);
        sem.lint.findings.insert(sem.lint.findings.begin(),
                                 rep.findings.begin(),
                                 rep.findings.end());
        if (json) {
            std::fputs(sem.toJson().c_str(), stdout);
        } else {
            std::fputs(sem.semantic.toText().c_str(), stdout);
            std::fputs(sem.lint.toText().c_str(), stdout);
        }
        return sem.lint.errors() ? 1 : 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-lint: %s\n", e.what());
        return 2;
    }
}

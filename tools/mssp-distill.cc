/**
 * @file
 * mssp-distill: profile a training binary and distill a reference
 * binary into an MSSP distilled object.
 *
 *   mssp-distill ref.{s,mo} [--train train.{s,mo}] [-o out.mdo]
 *                [--workload NAME] [--scale S]
 *                [--theta T] [--no-valuespec] [--no-silentstores]
 *                [--task-size N] [--report] [--verify]
 *                [--speculate] [--adapt N]
 *                [--timeout-ms N] [--max-insts N]
 *
 * --workload NAME distills a registry analogue (workloads/
 * workloads.hh) instead of an input file; --scale sets its size.
 *
 * --speculate runs the value-speculating distiller (distill/
 * speculate.cc): every Proven speculation-plan candidate is baked
 * into the master's image as a load-immediate, recorded as a
 * specedit, and the object is written as .mdo v5. --adapt N
 * additionally closes the squash-feedback loop (eval/adapt.hh) for
 * up to N iterations, de-speculating loads policed by
 * high-squash-rate fork sites; a loop that fails to converge within
 * the bound writes nothing and exits 1.
 *
 * --verify runs the mssp-lint static checks — the structural
 * contract, the semantic translation validation of the edit log, the
 * speculation-safety classification of every load, and the persisted
 * speculation plan — on the freshly distilled image; on errors
 * nothing is written and the exit status is 1. On a speculated image
 * this includes the specedit record checks and a SEQ replay of the
 * original program comparing each baked constant against the values
 * the load actually reads (eval/crossval.hh).
 *
 * --timeout-ms / --max-insts arm a whole-invocation budget
 * (sim/supervisor.hh; env defaults MSSP_JOB_TIMEOUT_MS /
 * MSSP_JOB_MAX_INSTS) covering profiling and every dynamic
 * validation replay. A budget trip writes nothing and exits 4
 * (docs/LINT.md exit-code table).
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "eval/adapt.hh"
#include "eval/crossval.hh"
#include "sim/logging.hh"
#include "sim/supervisor.hh"
#include "util/file.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

using namespace mssp;

namespace
{

Program
loadAny(const std::string &path)
{
    std::string text = readFile(path);
    if (startsWith(trim(text), "mssp-object"))
        return loadProgram(text);
    return assemble(text);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string ref_path, train_path, out_path, workload_name;
    DistillerOptions opts = DistillerOptions::paperPreset();
    bool show_report = false;
    bool verify = false;
    bool speculate = false;
    unsigned adapt_iters = 0;
    double scale = 1.0;
    JobBudget budget = budgetFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--train" && i + 1 < argc) {
            train_path = argv[++i];
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--workload" && i + 1 < argc) {
            workload_name = argv[++i];
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (arg == "--speculate") {
            speculate = true;
        } else if (arg == "--adapt" && i + 1 < argc) {
            speculate = true;
            adapt_iters =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--theta" && i + 1 < argc) {
            opts.biasThreshold = std::atof(argv[++i]);
        } else if (arg == "--no-valuespec") {
            opts.enableValueSpec = false;
        } else if (arg == "--no-silentstores") {
            opts.enableSilentStoreElim = false;
        } else if (arg == "--task-size" && i + 1 < argc) {
            opts.forkSelect.targetTaskSize =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--report") {
            show_report = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            budget.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-insts" && i + 1 < argc) {
            budget.maxInsts =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg[0] != '-' && ref_path.empty()) {
            ref_path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: mssp-distill ref.{s,mo} [--train t] "
                         "[-o out.mdo] [--workload NAME] [--scale S] "
                         "[--theta T] [--no-valuespec] "
                         "[--no-silentstores] [--task-size N] "
                         "[--report] [--verify] "
                         "[--speculate] [--adapt N] "
                         "[--timeout-ms N] [--max-insts N]\n");
            return 2;
        }
    }
    if (ref_path.empty() && workload_name.empty()) {
        std::fprintf(stderr, "mssp-distill: no input file\n");
        return 2;
    }
    if (!ref_path.empty() && !workload_name.empty()) {
        std::fprintf(stderr, "mssp-distill: an input file and "
                             "--workload are mutually exclusive\n");
        return 2;
    }
    std::string input_name =
        ref_path.empty() ? workload_name : ref_path;
    if (out_path.empty()) {
        out_path = input_name;
        size_t dot = out_path.rfind('.');
        if (dot != std::string::npos)
            out_path.resize(dot);
        out_path += ".mdo";
    }

    try {
        // Whole-invocation budget: profiling and every dynamic
        // validation replay count against it.
        Supervision sup(budget);
        std::optional<SupervisionScope> scope;
        if (budget.active())
            scope.emplace(&sup);

        Program ref, train;
        if (!workload_name.empty()) {
            Workload wl = workloadByName(workload_name, scale);
            ref = assemble(wl.refSource);
            train = assemble(wl.trainSource);
        } else {
            ref = loadAny(ref_path);
            train = train_path.empty() ? ref : loadAny(train_path);
        }
        PreparedWorkload w = prepare(ref, train, opts);

        if (adapt_iters > 0) {
            AdaptOptions aopts;
            aopts.maxIters = adapt_iters;
            AdaptResult adapted =
                adaptSpeculation(ref, w.profile, opts, aopts);
            for (const AdaptIteration &it : adapted.iterations) {
                std::printf("adapt gen %u: %zu baked, %llu squash "
                            "events, de-speculated %zu\n",
                            it.generation, it.baked,
                            static_cast<unsigned long long>(
                                it.squashEvents),
                            it.despeculated.size());
            }
            if (!adapted.converged) {
                std::fprintf(stderr,
                             "mssp-distill: squash-feedback loop did "
                             "not converge in %u iteration(s); not "
                             "writing %s\n",
                             adapt_iters, out_path.c_str());
                return 1;
            }
            w.dist = std::move(adapted.dist);
        } else if (speculate) {
            w.dist = distillSpeculated(ref, w.profile, opts,
                                       SpeculateOptions{});
        }

        if (verify) {
            analysis::LintReport rep =
                analysis::verifyDistilled(ref, w.dist);
            analysis::SemanticResult sem =
                analysis::verifyDistilledSemantic(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                sem.lint.findings.begin(),
                                sem.lint.findings.end());
            analysis::SpecSafeReport spec =
                analysis::analyzeSpecSafe(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                spec.lint.findings.begin(),
                                spec.lint.findings.end());
            analysis::SpecPlanReport plan =
                analysis::analyzeSpecPlan(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                plan.lint.findings.begin(),
                                plan.lint.findings.end());
            if (!rep.clean())
                std::fputs(rep.toText().c_str(), stderr);
            if (rep.errors()) {
                std::fprintf(stderr,
                             "mssp-distill: verification failed; "
                             "not writing %s\n",
                             out_path.c_str());
                return 1;
            }
            if (!w.dist.specEdits.empty()) {
                SpecEditDynamicResult dyn =
                    validateSpecEditsDynamic(ref, w.dist);
                if (dyn.provenMismatches) {
                    std::fprintf(stderr,
                                 "mssp-distill: %llu baked-value "
                                 "mismatch(es) against the SEQ "
                                 "replay (%s); not writing %s\n",
                                 static_cast<unsigned long long>(
                                     dyn.provenMismatches),
                                 dyn.firstViolation.c_str(),
                                 out_path.c_str());
                    return 1;
                }
            }
        }
        writeFile(out_path, saveDistilled(w.dist));
        std::printf("%s: %zu -> %zu static insts, %zu fork sites "
                    "-> %s\n",
                    input_name.c_str(), w.dist.report.origStaticInsts,
                    w.dist.report.distilledStaticInsts,
                    w.dist.taskMap.size(), out_path.c_str());
        if (!w.dist.specEdits.empty() || !w.dist.specDropped.empty()) {
            size_t proven = 0;
            for (const SpecEdit &e : w.dist.specEdits)
                proven += e.proof == ValueProof::Proven ? 1 : 0;
            std::printf("speculation: %zu baked (%zu proven), "
                        "%zu de-speculated, generation %u\n",
                        w.dist.specEdits.size(), proven,
                        w.dist.specDropped.size(),
                        w.dist.specGeneration);
        }
        if (show_report)
            std::fputs(w.dist.report.toString().c_str(), stdout);
    } catch (const StatusError &e) {
        std::fprintf(stderr, "mssp-distill: %s\n", e.what());
        return isBudgetTrip(e.status().code()) ? 4 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-distill: %s\n", e.what());
        return 1;
    }
    return 0;
}

/**
 * @file
 * mssp-distill: profile a training binary and distill a reference
 * binary into an MSSP distilled object.
 *
 *   mssp-distill ref.{s,mo} [--train train.{s,mo}] [-o out.mdo]
 *                [--theta T] [--no-valuespec] [--no-silentstores]
 *                [--task-size N] [--report] [--verify]
 *                [--timeout-ms N] [--max-insts N]
 *
 * --verify runs the mssp-lint static checks — the structural
 * contract, the semantic translation validation of the edit log, the
 * speculation-safety classification of every load, and the persisted
 * speculation plan — on the freshly distilled image; on errors
 * nothing is written and the exit status is 1.
 *
 * --timeout-ms / --max-insts arm a whole-invocation budget
 * (sim/supervisor.hh; env defaults MSSP_JOB_TIMEOUT_MS /
 * MSSP_JOB_MAX_INSTS) covering profiling and every dynamic
 * validation replay. A budget trip writes nothing and exits 4
 * (docs/LINT.md exit-code table).
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "sim/logging.hh"
#include "sim/supervisor.hh"
#include "util/file.hh"
#include "util/string_utils.hh"

using namespace mssp;

namespace
{

Program
loadAny(const std::string &path)
{
    std::string text = readFile(path);
    if (startsWith(trim(text), "mssp-object"))
        return loadProgram(text);
    return assemble(text);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string ref_path, train_path, out_path;
    DistillerOptions opts = DistillerOptions::paperPreset();
    bool show_report = false;
    bool verify = false;
    JobBudget budget = budgetFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--train" && i + 1 < argc) {
            train_path = argv[++i];
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--theta" && i + 1 < argc) {
            opts.biasThreshold = std::atof(argv[++i]);
        } else if (arg == "--no-valuespec") {
            opts.enableValueSpec = false;
        } else if (arg == "--no-silentstores") {
            opts.enableSilentStoreElim = false;
        } else if (arg == "--task-size" && i + 1 < argc) {
            opts.forkSelect.targetTaskSize =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--report") {
            show_report = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            budget.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-insts" && i + 1 < argc) {
            budget.maxInsts =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg[0] != '-' && ref_path.empty()) {
            ref_path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: mssp-distill ref.{s,mo} [--train t] "
                         "[-o out.mdo] [--theta T] [--no-valuespec] "
                         "[--no-silentstores] [--task-size N] "
                         "[--report] [--verify] "
                         "[--timeout-ms N] [--max-insts N]\n");
            return 2;
        }
    }
    if (ref_path.empty()) {
        std::fprintf(stderr, "mssp-distill: no input file\n");
        return 2;
    }
    if (out_path.empty()) {
        out_path = ref_path;
        size_t dot = out_path.rfind('.');
        if (dot != std::string::npos)
            out_path.resize(dot);
        out_path += ".mdo";
    }

    try {
        // Whole-invocation budget: profiling and every dynamic
        // validation replay count against it.
        Supervision sup(budget);
        std::optional<SupervisionScope> scope;
        if (budget.active())
            scope.emplace(&sup);

        Program ref = loadAny(ref_path);
        Program train = train_path.empty() ? ref
                                           : loadAny(train_path);
        PreparedWorkload w = prepare(ref, train, opts);
        if (verify) {
            analysis::LintReport rep =
                analysis::verifyDistilled(ref, w.dist);
            analysis::SemanticResult sem =
                analysis::verifyDistilledSemantic(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                sem.lint.findings.begin(),
                                sem.lint.findings.end());
            analysis::SpecSafeReport spec =
                analysis::analyzeSpecSafe(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                spec.lint.findings.begin(),
                                spec.lint.findings.end());
            analysis::SpecPlanReport plan =
                analysis::analyzeSpecPlan(ref, w.dist);
            rep.findings.insert(rep.findings.end(),
                                plan.lint.findings.begin(),
                                plan.lint.findings.end());
            if (!rep.clean())
                std::fputs(rep.toText().c_str(), stderr);
            if (rep.errors()) {
                std::fprintf(stderr,
                             "mssp-distill: verification failed; "
                             "not writing %s\n",
                             out_path.c_str());
                return 1;
            }
        }
        writeFile(out_path, saveDistilled(w.dist));
        std::printf("%s: %zu -> %zu static insts, %zu fork sites "
                    "-> %s\n",
                    ref_path.c_str(), w.dist.report.origStaticInsts,
                    w.dist.report.distilledStaticInsts,
                    w.dist.taskMap.size(), out_path.c_str());
        if (show_report)
            std::fputs(w.dist.report.toString().c_str(), stdout);
    } catch (const StatusError &e) {
        std::fprintf(stderr, "mssp-distill: %s\n", e.what());
        return isBudgetTrip(e.status().code()) ? 4 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-distill: %s\n", e.what());
        return 1;
    }
    return 0;
}

/**
 * @file
 * mssp-suite: the full evaluation (distill -> lint -> semantic ->
 * specsafe -> specplan -> run -> speculate -> crossval -> fault
 * campaign) over the whole workload suite as one sharded job graph
 * (docs/CI.md). The speculate stage runs the value-speculating
 * distiller through its squash-feedback adaptation loop
 * (eval/adapt.hh) and gates the converged image statically,
 * dynamically and architecturally.
 *
 *   mssp-suite [--workloads gzip,mcf,...] [--scale F] [--seed N]
 *              [--jobs N] [--intensities 1,10] [--max-cycles N]
 *              [--run-max-cycles N] [--json FILE] [--quiet]
 *              [--backend ref|threaded|blockjit]
 *              [--timeout-ms N] [--max-insts N] [--retries N]
 *              [--chaos SEED]
 *
 * Every job runs supervised (sim/supervisor.hh): --timeout-ms /
 * --max-insts bound each attempt (env defaults MSSP_JOB_TIMEOUT_MS /
 * MSSP_JOB_MAX_INSTS), --retries sets the strikes before quarantine,
 * and --chaos enables the deterministic host-chaos preset
 * (fault/hostchaos.hh) with the given seed — the CI chaos job runs
 * the full suite under it.
 *
 * Exit status (docs/LINT.md): 0 when every workload passed every
 * evaluation gate AND the campaign held every invariant with every
 * fault type firing; 5 when the only blemish is quarantined jobs;
 * 1 otherwise. The JSON report (schema mssp-suite-v5) is
 * byte-deterministic for fixed options regardless of --jobs: CI runs
 * the suite sharded, reruns it with --jobs 1, and diffs the bytes
 * (wall-clock-deadline quarantines excepted — they are host-timing
 * dependent by nature).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/suite.hh"
#include "exec/backend.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "util/string_utils.hh"

using namespace mssp;

namespace
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    for (std::string_view part : split(s, ',')) {
        if (!part.empty())
            out.emplace_back(part);
    }
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mssp-suite [--workloads a,b,...] [--scale F]\n"
        "                  [--seed N] [--jobs N] [--intensities 1,10]\n"
        "                  [--max-cycles N] [--run-max-cycles N]\n"
        "                  [--json FILE] [--quiet]\n"
        "                  [--backend ref|threaded|blockjit]\n"
        "                  [--timeout-ms N] [--max-insts N]\n"
        "                  [--retries N] [--chaos SEED]\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SuiteOptions opts;
    opts.jobs = defaultJobs();
    opts.jobBudget = budgetFromEnv();
    std::string json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workloads" && i + 1 < argc) {
            opts.workloads = splitList(argv[++i]);
        } else if (arg == "--scale" && i + 1 < argc) {
            opts.scale = std::atof(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else if (arg == "--intensities" && i + 1 < argc) {
            opts.intensities.clear();
            for (const std::string &v : splitList(argv[++i]))
                opts.intensities.push_back(std::atof(v.c_str()));
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            opts.campaignMaxCycles =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--run-max-cycles" && i + 1 < argc) {
            opts.runMaxCycles =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--backend" && i + 1 < argc) {
            auto kind = backendFromName(argv[++i]);
            if (!kind) {
                std::fprintf(stderr,
                             "mssp-suite: unknown backend '%s' "
                             "(ref | threaded | blockjit)\n", argv[i]);
                return 2;
            }
            // Every machine the suite constructs (on any worker
            // thread) snapshots this process-wide default.
            setDefaultBackend(*kind);
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            opts.jobBudget.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-insts" && i + 1 < argc) {
            opts.jobBudget.maxInsts =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--retries" && i + 1 < argc) {
            opts.retry.maxAttempts = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++i])));
        } else if (arg == "--chaos" && i + 1 < argc) {
            opts.chaos = HostChaosPlan::preset(
                static_cast<uint64_t>(std::atoll(argv[++i])));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage();
        }
    }

    setQuiet(true);
    try {
        SuiteReport report =
            runSuite(opts, quiet ? nullptr : &std::cerr);

        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr, "mssp-suite: cannot write %s\n",
                             json_path.c_str());
                return 1;
            }
            out << report.toJson();
        }
        if (!quiet || json_path.empty())
            std::fputs(report.summary().c_str(), stdout);

        if (report.evalFailures() != 0) {
            std::fprintf(stderr,
                         "mssp-suite: %zu workload(s) failed an "
                         "evaluation gate\n",
                         report.evalFailures());
            return 1;
        }
        if (report.campaign.failures() != 0) {
            std::fprintf(stderr,
                         "mssp-suite: %zu campaign run(s) violated "
                         "an invariant\n",
                         report.campaign.failures());
            return 1;
        }
        // A quarantined job loses its injections, so unfired types
        // are only a hard failure when nothing was quarantined.
        if (!report.campaign.allTypesFired() &&
            report.quarantinedTotal() == 0) {
            std::fprintf(stderr,
                         "mssp-suite: some fault types never "
                         "injected (raise --intensities or the "
                         "cycle budget)\n");
            return 1;
        }
        if (report.quarantinedTotal() != 0) {
            std::fprintf(stderr,
                         "mssp-suite: %zu job(s) quarantined (every "
                         "gate held on every healthy job)\n",
                         report.quarantinedTotal());
            return 5;
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-suite: %s\n", e.what());
        return 1;
    }
}

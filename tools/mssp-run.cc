/**
 * @file
 * mssp-run: execute a program sequentially or on the MSSP machine.
 *
 *   mssp-run prog.{s,mo} [--mssp dist.mdo] [--slaves N]
 *            [--fork-latency N] [--commit-latency N] [--stats]
 *            [--site-stats] [--max-cycles N] [--compare]
 *            [--backend TIER] [--timeout-ms N] [--max-insts N]
 *
 * With --mssp, runs the MSSP machine using the given distilled
 * object; --compare additionally runs the sequential oracle and
 * verifies output equivalence (exit status reflects it).
 * --site-stats prints the per-fork-site squash/engage table
 * (MsspResult::siteStats) the adaptation loop feeds on — one row per
 * static fork site with forked/committed/squash counts split by
 * squash reason and the resulting squash rate.
 *
 * --backend selects the execution tier (ref | threaded | blockjit;
 * see src/exec/backend.hh) and overrides the MSSP_EXEC_BACKEND
 * environment default. Architectural results are tier-invariant.
 *
 * --timeout-ms / --max-insts arm a whole-invocation budget
 * (sim/supervisor.hh; env defaults MSSP_JOB_TIMEOUT_MS /
 * MSSP_JOB_MAX_INSTS). A budget trip exits 4 (docs/LINT.md exit-code
 * table): 0 = halted, 1 = fault/limit/mismatch, 2 = usage,
 * 4 = budget exceeded.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "exec/seq_machine.hh"
#include "mssp/machine.hh"
#include "sim/logging.hh"
#include "sim/supervisor.hh"
#include "util/file.hh"
#include "util/string_utils.hh"

using namespace mssp;

namespace
{

Program
loadAny(const std::string &path)
{
    std::string text = readFile(path);
    if (startsWith(trim(text), "mssp-object"))
        return loadProgram(text);
    return assemble(text);
}

void
printOutputs(const OutputStream &outs)
{
    for (const auto &o : outs)
        std::printf("out[%u] = %u (0x%x)\n", o.port, o.value, o.value);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string prog_path, dist_path;
    MsspConfig cfg;
    bool stats = false, site_stats = false, compare = false;
    uint64_t max_cycles = 1000000000ull;
    JobBudget budget = budgetFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--mssp" && i + 1 < argc) {
            dist_path = argv[++i];
        } else if (arg == "--slaves" && i + 1 < argc) {
            cfg.numSlaves = static_cast<unsigned>(
                std::atoi(argv[++i]));
        } else if (arg == "--fork-latency" && i + 1 < argc) {
            cfg.forkLatency = static_cast<Cycle>(
                std::atoll(argv[++i]));
        } else if (arg == "--commit-latency" && i + 1 < argc) {
            cfg.commitLatency = static_cast<Cycle>(
                std::atoll(argv[++i]));
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            max_cycles = static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            budget.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-insts" && i + 1 < argc) {
            budget.maxInsts =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--backend" && i + 1 < argc) {
            auto kind = backendFromName(argv[++i]);
            if (!kind) {
                std::fprintf(stderr,
                             "mssp-run: unknown backend '%s' "
                             "(ref | threaded | blockjit)\n", argv[i]);
                return 2;
            }
            setDefaultBackend(*kind);
            cfg.execBackend = *kind;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--site-stats") {
            site_stats = true;
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg[0] != '-' && prog_path.empty()) {
            prog_path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: mssp-run prog.{s,mo} "
                         "[--mssp dist.mdo] [--slaves N] "
                         "[--fork-latency N] [--commit-latency N] "
                         "[--max-cycles N] [--stats] [--site-stats] "
                         "[--compare] "
                         "[--backend ref|threaded|blockjit] "
                         "[--timeout-ms N] [--max-insts N]\n");
            return 2;
        }
    }
    if (prog_path.empty()) {
        std::fprintf(stderr, "mssp-run: no input file\n");
        return 2;
    }

    try {
        // Whole-invocation budget: the deadline arms here, so load +
        // run + compare all count against it.
        Supervision sup(budget);
        std::optional<SupervisionScope> scope;
        if (budget.active())
            scope.emplace(&sup);

        Program prog = loadAny(prog_path);

        if (dist_path.empty()) {
            SeqMachine machine(prog);
            machine.run(max_cycles);
            printOutputs(machine.outputs());
            std::printf("%s: %s after %llu instructions\n",
                        prog_path.c_str(),
                        machine.halted()   ? "halted"
                        : machine.faulted() ? "FAULTED"
                                            : "cycle limit",
                        static_cast<unsigned long long>(
                            machine.instCount()));
            return machine.halted() ? 0 : 1;
        }

        DistilledProgram dist = loadDistilled(readFile(dist_path));
        MsspMachine machine(prog, dist, cfg);
        MsspResult r = machine.run(max_cycles);
        printOutputs(r.outputs);
        std::printf("%s: %s after %llu cycles, %llu committed "
                    "instructions\n",
                    prog_path.c_str(), toString(r.stopReason),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        r.committedInsts));
        if (stats)
            machine.dumpStats(std::cout);
        if (site_stats) {
            std::printf("fork-site squash/engage table:\n");
            std::printf("  %-10s %8s %9s %8s %8s %8s %7s\n", "site",
                        "forked", "committed", "sq-livein",
                        "sq-pc", "sq-other", "rate");
            for (const auto &[pc, s] : r.siteStats) {
                std::printf("  0x%08x %8llu %9llu %8llu %8llu "
                            "%8llu %6.1f%%\n",
                            pc,
                            static_cast<unsigned long long>(s.forked),
                            static_cast<unsigned long long>(
                                s.committed),
                            static_cast<unsigned long long>(
                                s.squashedLiveIn),
                            static_cast<unsigned long long>(
                                s.squashedWrongPc),
                            static_cast<unsigned long long>(
                                s.squashedOther),
                            100.0 * s.squashRate());
            }
        }

        if (compare) {
            SeqMachine oracle(prog);
            oracle.run(100000000ull);
            bool same = r.halted && oracle.halted() &&
                        r.outputs == oracle.outputs() &&
                        r.committedInsts == oracle.instCount();
            std::printf("equivalence with SEQ: %s\n",
                        same ? "IDENTICAL" : "*** DIFFERS ***");
            return same ? 0 : 1;
        }
        return r.halted ? 0 : 1;
    } catch (const StatusError &e) {
        std::fprintf(stderr, "mssp-run: %s\n", e.what());
        return isBudgetTrip(e.status().code()) ? 4 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "mssp-run: %s\n", e.what());
        return 1;
    }
}

#!/usr/bin/env bash
# Format (or, with --check, verify the formatting of) the C++ tree
# with clang-format using the repo's .clang-format. Degrades to a
# no-op with a notice when clang-format is not installed, so CI
# environments without it still run the rest of tools/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=format
if [[ "${1:-}" == "--check" ]]; then
    mode=check
elif [[ $# -gt 0 ]]; then
    echo "usage: tools/format.sh [--check]" >&2
    exit 2
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format.sh: clang-format not found; skipping" >&2
    exit 0
fi

files=$(git ls-files '*.cc' '*.hh' '*.cpp')

if [[ $mode == check ]]; then
    # shellcheck disable=SC2086
    if ! clang-format --dry-run --Werror $files; then
        echo "format.sh: run tools/format.sh to fix" >&2
        exit 1
    fi
    echo "format.sh: all files clean"
else
    # shellcheck disable=SC2086
    clang-format -i $files
fi

/**
 * @file
 * Fuzz gate for the speculation-safety classifier: every random
 * program family seed is distilled at the paper preset, the
 * persisted load classes must re-validate with zero errors, and
 * every ProvablyInvariant verdict is checked differentially against
 * a bounded SEQ replay of the merged image — a provably-invariant
 * load that a real execution sees changing value is a soundness bug
 * in the alias analysis, never acceptable.
 *
 * Runs 25 seeds by default (fast enough for ctest); the full gate is
 *   MSSP_FUZZ_ITERS=500 ./test_specsafe_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/specsafe.hh"
#include "core/pipeline.hh"
#include "eval/crossval.hh"
#include "helpers.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 25;
}

} // anonymous namespace

TEST(SpecSafeFuzz, InvariantVerdictsSurviveLockstepExecution)
{
    unsigned iters = fuzzIters();
    size_t total_loads = 0;
    size_t total_invariant = 0;
    uint64_t total_observations = 0;

    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());

        // The classes distill() stamped must re-validate cleanly.
        analysis::SpecSafeReport rep =
            analysis::analyzeSpecSafe(w.orig, w.dist);
        EXPECT_EQ(rep.lint.errors(), 0u) << rep.lint.toText();
        total_loads += rep.loads.size();
        total_invariant += rep.provablyInvariant();

        // Differential check: no bounded replay of the merged image
        // may contradict a ProvablyInvariant claim (zero false
        // invariance, the fuzz gate's point).
        SpecSafeDynamicResult dyn =
            validateSpecSafeDynamic(w.orig, w.dist, rep.loads);
        EXPECT_EQ(dyn.valueChanges, 0u) << dyn.firstViolation;
        total_observations += dyn.observations;
    }

    // The gate must not pass vacuously: over the seed range the
    // classifier does prove loads invariant and execution does
    // exercise them.
    EXPECT_GT(total_loads, 0u);
    EXPECT_GT(total_invariant, 0u);
    EXPECT_GT(total_observations, 0u);
}

} // namespace mssp

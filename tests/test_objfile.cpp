/**
 * @file
 * Tests for object-file serialization: Program and DistilledProgram
 * round-trips, format validation, and an end-to-end check that a
 * deserialized distilled program drives the MSSP machine identically.
 */

#include <gtest/gtest.h>

#include "asm/objfile.hh"
#include "helpers.hh"

namespace mssp
{
namespace
{

TEST(ObjFile, ProgramRoundTrip)
{
    Program p = assemble(
        "    li t0, 42\n"
        "    out t0, 1\n"
        "lab:\n"
        "    halt\n"
        ".org 0x8000\n"
        "data: .word 1, 2, 0xdeadbeef\n");
    Program q = loadProgram(saveProgram(p));
    EXPECT_EQ(q.entry(), p.entry());
    EXPECT_EQ(q.image(), p.image());
    EXPECT_EQ(q.symbols(), p.symbols());
}

TEST(ObjFile, DistilledRoundTrip)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    DistilledProgram d2 = loadDistilled(saveDistilled(w.dist));
    EXPECT_EQ(d2.prog.image(), w.dist.prog.image());
    EXPECT_EQ(d2.prog.entry(), w.dist.prog.entry());
    EXPECT_EQ(d2.taskMap, w.dist.taskMap);
    EXPECT_EQ(d2.taskIntervals, w.dist.taskIntervals);
    EXPECT_EQ(d2.entryMap, w.dist.entryMap);
    EXPECT_EQ(d2.addrMap, w.dist.addrMap);
    EXPECT_EQ(d2.report.distilledStaticInsts,
              w.dist.report.distilledStaticInsts);
    EXPECT_EQ(d2.report.forkSites, w.dist.report.forkSites);
}

TEST(ObjFile, DeserializedDistilledDrivesTheMachine)
{
    setQuiet(true);
    std::string src = test::biasedSumSource(200, 5);
    PreparedWorkload w = prepare(src, test::biasedSumSource(128, 6),
                                 DistillerOptions::paperPreset());
    DistilledProgram d2 = loadDistilled(saveDistilled(w.dist));

    MsspConfig cfg;
    MsspMachine m1(w.orig, w.dist, cfg);
    MsspMachine m2(w.orig, d2, cfg);
    MsspResult r1 = m1.run(100000000ull);
    MsspResult r2 = m2.run(100000000ull);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.outputs, r2.outputs);
    EXPECT_EQ(r1.committedInsts, r2.committedInsts);
}

TEST(ObjFile, EditMetadataSurvivesRoundTrip)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    ASSERT_FALSE(w.dist.report.edits.empty());
    DistilledProgram d2 = loadDistilled(saveDistilled(w.dist));
    ASSERT_EQ(d2.report.edits.size(), w.dist.report.edits.size());
    for (size_t i = 0; i < d2.report.edits.size(); ++i) {
        const DistillEdit &a = w.dist.report.edits[i];
        const DistillEdit &b = d2.report.edits[i];
        EXPECT_EQ(b.pass, a.pass) << "edit " << i;
        EXPECT_EQ(b.origPc, a.origPc) << "edit " << i;
        EXPECT_EQ(b.reg, a.reg) << "edit " << i;
        EXPECT_EQ(b.hasValue, a.hasValue) << "edit " << i;
        EXPECT_EQ(b.value, a.value) << "edit " << i;
        EXPECT_EQ(b.regionStart, a.regionStart) << "edit " << i;
        EXPECT_EQ(b.liveOut, a.liveOut) << "edit " << i;
    }
}

TEST(ObjFile, StaleFormatVersionIsRejectedWithMessage)
{
    // Files from older builds must be rejected with a message that
    // names both versions, not silently misparsed (v2 carries no
    // specload lines, v3 no specplan lines, v4 no specedit lines;
    // accepting any would fail the coverage gates in confusing ways
    // instead).
    for (const char *header :
         {"mssp-distilled v2", "mssp-distilled v3",
          "mssp-distilled v4"}) {
        std::string stale =
            std::string(header) + "\nentry 0x400000\n";
        try {
            loadDistilled(stale);
            FAIL() << "stale format version was accepted: "
                   << header;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what())
                          .find("unsupported object format version"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(
                std::string(e.what()).find("mssp-distilled v5"),
                std::string::npos)
                << e.what();
        }
    }
}

TEST(ObjFile, LoadClassesSurviveRoundTrip)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    DistilledProgram d2 = loadDistilled(saveDistilled(w.dist));
    EXPECT_EQ(d2.loadClasses, w.dist.loadClasses);
}

TEST(ObjFile, SpecPlanSurvivesRoundTripInRankOrder)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    DistilledProgram d2 = loadDistilled(saveDistilled(w.dist));
    // operator== covers pc, proof, value, benefitMicro and the
    // feasible set; the vector comparison covers rank order.
    EXPECT_EQ(d2.specPlan, w.dist.specPlan);
}

TEST(ObjFile, UnknownProofClassAndBadBenefitAreFatal)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    std::string text = saveDistilled(w.dist);
    EXPECT_THROW(
        loadDistilled(text +
                      "specplan 0x400000 surely 0x5 1 0x5\n"),
        FatalError);
    EXPECT_THROW(
        loadDistilled(text +
                      "specplan 0x400000 proven 0x5 -3 0x5\n"),
        FatalError);
}

TEST(ObjFile, LargeBenefitSurvivesRoundTrip)
{
    // benefitMicro is 64-bit; a value past 2^32 must not truncate.
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    DistilledProgram big = w.dist;
    SpecPlanEntry e;
    e.pc = 0x400000;
    e.value = 5;
    e.benefitMicro = 0x123456789abcull;
    e.feasible = {5};
    big.specPlan.insert(big.specPlan.begin(), e);
    DistilledProgram d2 = loadDistilled(saveDistilled(big));
    ASSERT_FALSE(d2.specPlan.empty());
    EXPECT_EQ(d2.specPlan[0].benefitMicro, 0x123456789abcull);
}

TEST(ObjFile, UnknownLoadClassIsFatal)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(150, 3),
                                 test::biasedSumSource(100, 4),
                                 DistillerOptions::paperPreset());
    std::string text = saveDistilled(w.dist);
    text += "specload 0x400000 definitely-fine\n";
    EXPECT_THROW(loadDistilled(text), FatalError);
}

TEST(ObjFile, BadMagicIsFatal)
{
    EXPECT_THROW(loadProgram("garbage\n"), FatalError);
    EXPECT_THROW(loadDistilled(saveProgram(Program{})), FatalError);
}

TEST(ObjFile, MalformedLineIsFatal)
{
    std::string good = saveProgram(Program{});
    EXPECT_THROW(loadProgram(good + "word nonsense\n"), FatalError);
    EXPECT_THROW(loadProgram(good + "frobnicate 1 2\n"), FatalError);
}

TEST(ObjFile, CommentsAndBlankLinesIgnored)
{
    Program p;
    p.setWord(0x10, 7);
    p.setEntry(0x10);
    std::string text = saveProgram(p) + "\n; a comment\n\n";
    Program q = loadProgram(text);
    EXPECT_EQ(q.word(0x10), 7u);
}

} // anonymous namespace
} // namespace mssp

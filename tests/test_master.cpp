/**
 * @file
 * Unit tests for the MasterCore: restart semantics, write-delta
 * tracking, checkpoint snapshots, fork-interval policy, indirect-
 * target translation and the delta sweep.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "mssp/master.hh"
#include "profile/profiler.hh"

namespace mssp
{
namespace
{

/** Build a distilled program with explicit fork sites. */
DistilledProgram
distillWith(const Program &prog, std::vector<uint32_t> sites,
            DistillerOptions opts = {})
{
    ProfileData prof = profileProgram(prog, 1000000);
    opts.explicitForkSites = std::move(sites);
    return distill(prog, prof, opts);
}

const char *kLoop =
    "    li t0, 50\n"
    "    li s0, 0\n"
    "loop:\n"
    "    add s0, s0, t0\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    out s0, 1\n"
    "    halt\n";

TEST(Master, RestartOnlyAtEntryMapPcs)
{
    Program prog = assemble(kLoop);
    uint32_t loop_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("loop", loop_pc));
    DistilledProgram dist = distillWith(prog, {loop_pc});

    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);

    EXPECT_FALSE(master.running());
    EXPECT_TRUE(master.restart(prog.entry()));
    EXPECT_TRUE(master.running());
    EXPECT_TRUE(master.restart(loop_pc));
    EXPECT_FALSE(master.restart(loop_pc + 1));   // not a restart point
}

TEST(Master, RestartSeedsRegistersFromArch)
{
    Program prog = assemble(kLoop);
    DistilledProgram dist = distillWith(prog, {});
    ArchState arch;
    arch.loadProgram(prog);
    arch.writeReg(reg::S5, 777);
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));
    EXPECT_EQ(master.readReg(reg::S5), 777u);
    EXPECT_EQ(master.deltaSize(), 0u);
}

TEST(Master, FirstForkSpawnsAtRestartPc)
{
    Program prog = assemble(kLoop);
    uint32_t loop_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("loop", loop_pc));
    DistilledProgram dist = distillWith(prog, {loop_pc});

    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));

    // The restart point is the block's FORK; it must spawn at once.
    EXPECT_TRUE(master.nextForkWouldSpawn());
    MasterCore::ForkInfo fi;
    EXPECT_EQ(master.step(&fi), MasterStep::WantsFork);
    EXPECT_EQ(fi.origPc, prog.entry());
    ASSERT_NE(fi.checkpoint, nullptr);
    EXPECT_TRUE(fi.checkpoint->empty());   // no writes yet
}

TEST(Master, WritesAccumulateInDelta)
{
    Program prog = assemble(kLoop);
    DistilledProgram dist = distillWith(prog, {});
    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));

    MasterCore::ForkInfo fi;
    master.step(&fi);   // entry FORK
    // Execute a few instructions; registers t0/s0 get written.
    for (int i = 0; i < 5; ++i)
        master.step(&fi);
    EXPECT_GT(master.deltaSize(), 0u);
    EXPECT_TRUE(master.readMem(0x12345) == arch.readMem(0x12345))
        << "unwritten memory reads through to arch";
}

TEST(Master, CheckpointIsSnapshotNotAlias)
{
    Program prog = assemble(
        "    li t0, 3\n"
        "loop:\n"
        "    addi s0, s0, 5\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out s0, 1\n"      // keep s0 live so DCE preserves it
        "    halt\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("loop", loop_pc));
    DistilledProgram dist = distillWith(prog, {loop_pc});

    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));

    // Collect every checkpoint the master produces.
    std::vector<std::shared_ptr<const StateDelta>> checkpoints;
    MasterCore::ForkInfo fi;
    while (master.running()) {
        if (master.step(&fi) == MasterStep::WantsFork)
            checkpoints.push_back(fi.checkpoint);
    }
    // Entry fork + one fork per loop iteration.
    ASSERT_GE(checkpoints.size(), 3u);

    // Successive snapshots must hold *different* s0 values: each is a
    // copy taken at fork time, not an alias of the live delta.
    auto s0_a = checkpoints[checkpoints.size() - 2]->get(
        makeRegCell(reg::S0));
    auto s0_b = checkpoints.back()->get(makeRegCell(reg::S0));
    ASSERT_TRUE(s0_a.has_value());
    ASSERT_TRUE(s0_b.has_value());
    EXPECT_NE(*s0_a, *s0_b);
}

TEST(Master, ForkIntervalMergesTasks)
{
    Program prog = assemble(kLoop);
    uint32_t loop_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("loop", loop_pc));
    DistilledProgram dist = distillWith(prog, {loop_pc});

    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);
    master.setForkInterval(3);
    ASSERT_TRUE(master.restart(prog.entry()));

    // Count spawns until the master halts.
    unsigned spawns = 0;
    MasterCore::ForkInfo fi;
    std::vector<uint32_t> end_visits;
    while (master.running()) {
        if (master.step(&fi) == MasterStep::WantsFork) {
            ++spawns;
            end_visits.push_back(fi.endVisitsForPrev);
        }
    }
    EXPECT_TRUE(master.halted());
    // 50 loop-header visits at interval 3 plus the entry fork.
    EXPECT_NEAR(static_cast<double>(spawns), 1.0 + 50.0 / 3.0, 2.0);
    // Steady-state spawns report 3 end-visits for their predecessor.
    ASSERT_GT(end_visits.size(), 3u);
    EXPECT_EQ(end_visits[2], 3u);
}

TEST(Master, JalrThroughOriginalAddressTranslates)
{
    // A function whose return address is *seeded from architected
    // state* (restart inside the callee): ret must translate.
    Program prog = assemble(
        "    li s0, 5\n"
        "loop:\n"
        "    call fn\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, loop\n"
        "    out a0, 1\n"
        "    halt\n"
        "fn:\n"
        "    addi a0, a0, 1\n"
        "    ret\n");
    uint32_t fnloop_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("fn", fnloop_pc));
    DistilledProgram dist = distillWith(prog, {fnloop_pc});
    ASSERT_NE(dist.distilledPcFor(fnloop_pc), UINT32_MAX);

    ArchState arch;
    arch.loadProgram(prog);
    // Simulate a commit that left pc at fnloop with the *original*
    // return address in ra.
    uint32_t ret_pc = 0;
    ASSERT_TRUE(prog.lookupSymbol("loop", ret_pc));
    arch.writeReg(reg::Ra, ret_pc + 1);   // original return point
    arch.writeReg(reg::S0, 3);
    arch.setPc(fnloop_pc);

    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(fnloop_pc));
    // Run; the master must survive the ret (translated) and halt.
    MasterCore::ForkInfo fi;
    for (int i = 0; i < 200 && master.running(); ++i)
        master.step(&fi);
    EXPECT_TRUE(master.halted());
    EXPECT_FALSE(master.faulted());
}

TEST(Master, JalrToUnmappedAddressFaults)
{
    Program prog = assemble(kLoop);
    DistilledProgram dist = distillWith(prog, {});
    ArchState arch;
    arch.loadProgram(prog);
    arch.writeReg(reg::Ra, 0xdead);   // not a block leader
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));
    // Inject a ret at the master's pc by corrupting the image.
    DistilledProgram corrupt = dist;
    corrupt.prog.setWord(dist.prog.entry(),
                         encode(makeI(Opcode::Jalr, 0, reg::Ra, 0)));
    MasterCore master2(corrupt, arch);
    ASSERT_TRUE(master2.restart(prog.entry()));
    MasterCore::ForkInfo fi;
    EXPECT_EQ(master2.step(&fi), MasterStep::Faulted);
    EXPECT_TRUE(master2.faulted());
}

TEST(Master, SweepDropsArchEqualCells)
{
    Program prog = assemble(kLoop);
    DistilledProgram dist = distillWith(prog, {});
    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(dist, arch);
    ASSERT_TRUE(master.restart(prog.entry()));

    master.writeMem(0x9000, 42);
    master.writeMem(0x9001, 43);
    EXPECT_EQ(master.deltaSize(), 2u);

    // Arch catches up on one cell.
    arch.writeMem(0x9000, 42);
    master.sweepDeltaAgainstArch(0);   // force a sweep
    EXPECT_EQ(master.deltaSize(), 1u);
    EXPECT_EQ(master.readMem(0x9001), 43u);
}

TEST(Master, CorruptForkIndexFaults)
{
    Program prog = assemble(kLoop);
    DistilledProgram dist = distillWith(prog, {});
    DistilledProgram corrupt = dist;
    corrupt.prog.setWord(dist.prog.entry(),
                         encode(makeJ(Opcode::Fork, 0, 999)));
    ArchState arch;
    arch.loadProgram(prog);
    MasterCore master(corrupt, arch);
    ASSERT_TRUE(master.restart(prog.entry()));
    MasterCore::ForkInfo fi;
    EXPECT_EQ(master.step(&fi), MasterStep::Faulted);
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for the dataflow analysis framework (src/analysis/):
 * dominators, SCCs, the generic solver (including convergence on
 * looping and irreducible graphs), liveness and reaching definitions.
 */

#include <gtest/gtest.h>

#include "analysis/dataflow.hh"
#include "analysis/flow_graph.hh"
#include "analysis/liveness.hh"
#include "analysis/reaching_defs.hh"
#include "asm/assembler.hh"
#include "distill/ir.hh"

using namespace mssp;
using namespace mssp::analysis;

namespace
{

FlowGraph
diamond()
{
    // 0 -> 1 -> 3, 0 -> 2 -> 3
    FlowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    return g;
}

FlowGraph
loopGraph()
{
    // 0 -> 1 <-> 2, 2 -> 3
    FlowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    return g;
}

/** The classic irreducible shape: two loop entries. */
FlowGraph
irreducible()
{
    // 0 -> 1, 0 -> 2, 1 <-> 2, 1 -> 3
    FlowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(1, 3);
    return g;
}

} // anonymous namespace

TEST(Dominators, Diamond)
{
    FlowGraph g = diamond();
    std::vector<int> idom = computeIdom(g);
    EXPECT_EQ(idom[0], 0);
    EXPECT_EQ(idom[1], 0);
    EXPECT_EQ(idom[2], 0);
    EXPECT_EQ(idom[3], 0);   // neither arm dominates the join

    DomTree dt(g);
    EXPECT_TRUE(dt.dominates(0, 3));
    EXPECT_FALSE(dt.dominates(1, 3));
    EXPECT_FALSE(dt.dominates(2, 3));
    EXPECT_TRUE(dt.dominates(1, 1));
}

TEST(Dominators, Loop)
{
    FlowGraph g = loopGraph();
    std::vector<int> idom = computeIdom(g);
    EXPECT_EQ(idom[1], 0);
    EXPECT_EQ(idom[2], 1);
    EXPECT_EQ(idom[3], 2);

    DomTree dt(g);
    EXPECT_TRUE(dt.dominates(1, 3));
    EXPECT_TRUE(dt.dominates(2, 3));
    EXPECT_FALSE(dt.dominates(3, 2));
}

TEST(Dominators, IrreducibleJoinFallsToEntry)
{
    FlowGraph g = irreducible();
    std::vector<int> idom = computeIdom(g);
    // Both loop entries are reachable around each other: only the
    // graph entry dominates them.
    EXPECT_EQ(idom[1], 0);
    EXPECT_EQ(idom[2], 0);
    EXPECT_EQ(idom[3], 1);
}

TEST(Dominators, UnreachableNode)
{
    FlowGraph g(3);
    g.addEdge(0, 1);   // node 2 is disconnected
    DomTree dt(g);
    EXPECT_TRUE(dt.reachable(1));
    EXPECT_FALSE(dt.reachable(2));
    EXPECT_EQ(computeIdom(g)[2], -1);
}

TEST(Sccs, LoopsAndSelfEdges)
{
    FlowGraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);   // {1,2} cyclic
    g.addEdge(2, 3);
    g.addEdge(3, 3);   // {3} cyclic via self-edge
    g.addEdge(3, 4);   // {4} trivial

    SccResult scc = computeSccs(g);
    EXPECT_EQ(scc.comp[1], scc.comp[2]);
    EXPECT_NE(scc.comp[0], scc.comp[1]);
    EXPECT_TRUE(scc.cyclic[static_cast<size_t>(scc.comp[1])]);
    EXPECT_TRUE(scc.cyclic[static_cast<size_t>(scc.comp[3])]);
    EXPECT_FALSE(scc.cyclic[static_cast<size_t>(scc.comp[0])]);
    EXPECT_FALSE(scc.cyclic[static_cast<size_t>(scc.comp[4])]);
}

TEST(Solver, ForwardReachesFixpointOnLoop)
{
    FlowGraph g = loopGraph();
    // "Taint" analysis: node 0 generates bit 1, node 3 generates bit
    // 2; nothing kills. Everything downstream of 0 sees bit 1.
    MaskDomain dom(g.size());
    dom.gen[0] = 0b10;
    dom.gen[3] = 0b100;

    auto res = solveDataflow(g, dom, Direction::Forward);
    EXPECT_EQ(res.out[0], 0b10u);
    EXPECT_EQ(res.out[1], 0b10u);
    EXPECT_EQ(res.out[2], 0b10u);
    EXPECT_EQ(res.out[3], 0b110u);
    // RPO iteration converges fast on a reducible loop.
    EXPECT_LE(res.sweeps, 3u);
}

TEST(Solver, ConvergesOnIrreducibleGraph)
{
    FlowGraph g = irreducible();
    MaskDomain dom(g.size());
    dom.gen[2] = 0b1000;   // flows 2 -> 1 -> 3 and around the loop

    auto res = solveDataflow(g, dom, Direction::Forward);
    EXPECT_EQ(res.out[1], 0b1000u);
    EXPECT_EQ(res.out[3], 0b1000u);
    // Must terminate; irreducibility may cost extra sweeps but the
    // fixpoint is the same.
    EXPECT_GE(res.sweeps, 2u);
    EXPECT_LE(res.sweeps, 6u);
}

TEST(Solver, BackwardLivenessOrientation)
{
    // 0 -> 1 -> 2; a use in 2 must be live-in all the way up unless
    // killed.
    FlowGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    MaskDomain dom(g.size());
    dom.gen[2] = 1u << 5;    // block 2 reads r5
    dom.kill[1] = 1u << 5;   // block 1 writes r5

    auto res = solveRegLiveness(g, dom);
    // in = live-out, out = live-in.
    EXPECT_EQ(res.out[2], 1u << 5);
    EXPECT_EQ(res.in[1], 1u << 5);
    EXPECT_EQ(res.out[1], 0u);   // killed by the write
    EXPECT_EQ(res.out[0], 0u);
}

TEST(Solver, MultiRootRpoCoversExtraRoots)
{
    FlowGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);   // reachable only via the extra root
    g.entry = 0;
    g.roots = {0, 2};

    std::vector<int> order = g.rpo();
    EXPECT_EQ(order.size(), 4u);
}

TEST(Liveness, LoopProgram)
{
    Program p = assemble(
        "    li t0, 3\n"
        "    li t1, 0\n"
        "loop:\n"
        "    add t1, t1, t0\n"
        "    addi t0, t0, -1\n"
        "    bne t0, zero, loop\n"
        "    out t1, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    auto live = computeLiveness(cfg);

    uint32_t loop_pc = DefaultCodeBase + 2;
    ASSERT_TRUE(live.count(loop_pc));
    // The loop body reads both counters before writing them.
    EXPECT_EQ(live[loop_pc].liveIn,
              (1u << reg::T0) | (1u << reg::T1));
    // Nothing is read before being written at the entry.
    EXPECT_EQ(live[p.entry()].liveIn, 0u);
    EXPECT_EQ(live[p.entry()].liveOut,
              (1u << reg::T0) | (1u << reg::T1));
}

TEST(ReachingDefs, LoopDefsAndPseudoDefs)
{
    Program p = assemble(
        "    li t0, 3\n"
        "loop:\n"
        "    add t1, t1, t0\n"     // t1 read before any def!
        "    addi t0, t0, -1\n"
        "    bne t0, zero, loop\n"
        "    out t1, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    DistillIr ir = DistillIr::build(cfg, nullptr);
    ReachingDefs rd = ReachingDefs::compute(ir);

    int loop_blk = ir.blockOfOrigPc(DefaultCodeBase + 1);
    ASSERT_GE(loop_blk, 0);

    // Use of t0 at the loop head: reached by the entry `li` and the
    // in-loop decrement, but NOT by t0's pseudo-def (always written
    // before the loop).
    std::vector<int> t0_defs =
        rd.defsReachingUse(ir, loop_blk, 0, reg::T0);
    EXPECT_EQ(t0_defs.size(), 2u);
    for (int d : t0_defs)
        EXPECT_FALSE(rd.isPseudo(d));

    // Use of t1 at the loop head: its pseudo-def reaches (read
    // before ever written on the path around the entry).
    std::vector<int> t1_defs =
        rd.defsReachingUse(ir, loop_blk, 0, reg::T1);
    bool has_pseudo = false;
    for (int d : t1_defs)
        has_pseudo |= rd.isPseudo(d);
    EXPECT_TRUE(has_pseudo);

    EXPECT_GE(rd.solverSweeps(), 1u);
}

TEST(ReachingDefs, InBlockShadowing)
{
    Program p = assemble(
        "    li t0, 1\n"
        "    li t0, 2\n"
        "    add t1, t0, t0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    DistillIr ir = DistillIr::build(cfg, nullptr);
    ReachingDefs rd = ReachingDefs::compute(ir);

    int blk = ir.blockOfOrigPc(p.entry());
    ASSERT_GE(blk, 0);
    // The use at body index 2 sees only the second li.
    std::vector<int> defs = rd.defsReachingUse(ir, blk, 2, reg::T0);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(rd.defs()[static_cast<size_t>(defs[0])].origPc,
              p.entry() + 1);
}

TEST(ReachingDefs, CallClobbersEveryRegister)
{
    Program p = assemble(
        "    li s0, 7\n"
        "    call f\n"
        "    add t1, s0, s0\n"
        "    halt\n"
        "f:\n"
        "    li t2, 1\n"
        "    ret\n");
    Cfg cfg = Cfg::build(p, p.entry());
    DistillIr ir = DistillIr::build(cfg, nullptr);
    ReachingDefs rd = ReachingDefs::compute(ir);

    // The continuation block after the call: s0's reaching defs are
    // the modeled call clobber, not the entry `li` (conservative
    // jalr treatment — the callee may write anything).
    int cont = ir.blockOfOrigPc(DefaultCodeBase + 2);
    ASSERT_GE(cont, 0);
    std::vector<int> defs = rd.defsReachingUse(ir, cont, 0, reg::S0);
    ASSERT_FALSE(defs.empty());
    for (int d : defs) {
        const DefSite &site = rd.defs()[static_cast<size_t>(d)];
        EXPECT_FALSE(rd.isPseudo(d));
        EXPECT_EQ(site.inst, -1);   // terminator-modeled def
    }
}

TEST(Liveness, IrAndCfgAgreeOnStraightLine)
{
    Program p = assemble(
        "    li t0, 3\n"
        "    add t1, t0, t0\n"
        "    out t1, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    DistillIr ir = DistillIr::build(cfg, nullptr);

    auto cfg_live = computeLiveness(cfg);
    auto ir_live = computeIrLiveness(ir);

    int entry_blk = ir.blockOfOrigPc(p.entry());
    ASSERT_GE(entry_blk, 0);
    EXPECT_EQ(cfg_live[p.entry()].liveIn,
              ir_live[static_cast<size_t>(entry_blk)].liveIn);
    EXPECT_EQ(cfg_live[p.entry()].liveOut,
              ir_live[static_cast<size_t>(entry_blk)].liveOut);
}

/**
 * @file
 * Property tests for the formal MSSP model (the companion paper's
 * definitions, made executable):
 *
 *  - superimposition laws: associativity, containment, idempotency
 *    (Definition 8);
 *  - determinism of instruction execution: consistent states step to
 *    consistent states (Section 6.2);
 *  - task safety at every commit: seq(S, #t) == S <- live_out(t)
 *    whenever live_in(t) is consistent with S (Theorem 2);
 *  - jumping refinement: the architected-state trajectory sampled at
 *    commits is a subsequence of the SEQ trajectory (Definition 1).
 */

#include <gtest/gtest.h>

#include "core/mssp_api.hh"
#include "helpers.hh"
#include "sim/rng.hh"

namespace mssp
{
namespace
{

/** Build a random StateDelta over a small cell universe. */
StateDelta
randomDelta(Rng &rng, unsigned max_cells = 24)
{
    StateDelta d;
    unsigned n = static_cast<unsigned>(rng.below(max_cells));
    for (unsigned i = 0; i < n; ++i) {
        CellId cell;
        switch (rng.below(3)) {
          case 0:
            cell = makeRegCell(static_cast<unsigned>(
                rng.range(1, 31)));
            break;
          case 1:
            cell = makeMemCell(static_cast<uint32_t>(
                rng.below(16)) * 4);
            break;
          default:
            cell = PcCell;
            break;
        }
        d.set(cell, static_cast<uint32_t>(rng.below(8)));
    }
    return d;
}

/** Extend @p base with extra cells so the result contains it. */
StateDelta
randomSuperset(Rng &rng, const StateDelta &base)
{
    StateDelta big = randomDelta(rng);
    big.superimpose(base);   // base's bindings win: base ⊑ big
    return big;
}

class SuperimposeLaws : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SuperimposeLaws, Associativity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        StateDelta a = randomDelta(rng);
        StateDelta b = randomDelta(rng);
        StateDelta c = randomDelta(rng);
        StateDelta left = StateDelta::superimposed(
            StateDelta::superimposed(a, b), c);
        StateDelta right = StateDelta::superimposed(
            a, StateDelta::superimposed(b, c));
        EXPECT_EQ(left, right);
    }
}

TEST_P(SuperimposeLaws, Containment)
{
    // S1 ⊑ S2 implies (S1 <- S3) ⊑ (S2 <- S3).
    Rng rng(GetParam() ^ 0x1111);
    for (int i = 0; i < 50; ++i) {
        StateDelta s1 = randomDelta(rng);
        StateDelta s2 = randomSuperset(rng, s1);
        ASSERT_TRUE(s1.consistentWith(s2));
        StateDelta s3 = randomDelta(rng);
        StateDelta left = StateDelta::superimposed(s1, s3);
        StateDelta right = StateDelta::superimposed(s2, s3);
        EXPECT_TRUE(left.consistentWith(right));
    }
}

TEST_P(SuperimposeLaws, Idempotency)
{
    // S2 ⊑ S1 implies S1 <- S2 == S1.
    Rng rng(GetParam() ^ 0x2222);
    for (int i = 0; i < 50; ++i) {
        StateDelta s2 = randomDelta(rng);
        StateDelta s1 = randomSuperset(rng, s2);
        ASSERT_TRUE(s2.consistentWith(s1));
        EXPECT_EQ(StateDelta::superimposed(s1, s2), s1);
    }
}

TEST_P(SuperimposeLaws, EmptyIsRightIdentity)
{
    Rng rng(GetParam() ^ 0x3333);
    StateDelta a = randomDelta(rng);
    EXPECT_EQ(StateDelta::superimposed(a, StateDelta{}), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperimposeLaws,
                         ::testing::Values(1, 2, 3, 7, 42, 1234,
                                           0xdeadbeef));

/** A delta-backed ExecContext used for determinism checks. */
class DeltaContext final : public ExecContext
{
  public:
    explicit DeltaContext(StateDelta state) : state_(std::move(state))
    {}

    StateDelta state_;
    OutputStream outs;

    uint32_t
    readReg(unsigned r) override
    {
        return state_.get(makeRegCell(r)).value_or(0);
    }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        state_.set(makeRegCell(r), v);
    }
    uint32_t
    readMem(uint32_t a) override
    {
        return state_.get(makeMemCell(a)).value_or(0);
    }
    void
    writeMem(uint32_t a, uint32_t v) override
    {
        state_.set(makeMemCell(a), v);
    }
    uint32_t fetch(uint32_t) override { return 0; }
    void
    output(uint16_t p, uint32_t v) override
    {
        outs.push_back({p, v});
    }
};

class Determinism : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Determinism, ConsistentStatesStepConsistently)
{
    // For random ALU/memory instructions executed on a state S1 and a
    // superset S2 covering all cells the instruction touches, the
    // write sets are identical (delta(S1) == delta(S2)).
    Rng rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        // Draw a random non-control instruction.
        Opcode op;
        do {
            op = static_cast<Opcode>(
                rng.range(1,
                          static_cast<int64_t>(Opcode::NumOpcodes) -
                              1));
        } while (isControl(op) || op == Opcode::Halt ||
                 op == Opcode::Fork || op == Opcode::Illegal);
        Instruction inst;
        switch (formatOf(op)) {
          case Format::R:
            inst = makeR(op, static_cast<uint8_t>(rng.range(0, 31)),
                         static_cast<uint8_t>(rng.range(0, 7)),
                         static_cast<uint8_t>(rng.range(0, 7)));
            break;
          case Format::I:
            inst = makeI(op, static_cast<uint8_t>(rng.range(0, 31)),
                         static_cast<uint8_t>(rng.range(0, 7)),
                         static_cast<int32_t>(rng.range(-8, 8)));
            break;
          case Format::B:
            inst = makeB(op, static_cast<uint8_t>(rng.range(0, 7)),
                         static_cast<uint8_t>(rng.range(0, 7)),
                         static_cast<int32_t>(rng.range(-4, 4)));
            break;
          default:
            inst = makeN(op);
            break;
        }

        // S1: bind exactly the cells the instruction can read.
        StateDelta s1;
        for (unsigned r = 0; r < 8; ++r)
            s1.set(makeRegCell(r), static_cast<uint32_t>(rng.below(64)));
        for (uint32_t a = 0; a < 80; ++a)
            s1.set(makeMemCell(a), static_cast<uint32_t>(rng.below(64)));
        StateDelta s2 = randomSuperset(rng, s1);

        DeltaContext c1(s1), c2(s2);
        StepResult r1 = executeDecoded(100, inst, c1);
        StepResult r2 = executeDecoded(100, inst, c2);

        EXPECT_EQ(r1.status, r2.status);
        EXPECT_EQ(r1.nextPc, r2.nextPc);
        EXPECT_EQ(r1.branchTaken, r2.branchTaken);
        EXPECT_EQ(c1.outs, c2.outs);
        // delta(S1) == delta(S2): S2's result restricted to S1's
        // domain plus writes must contain S1's result.
        EXPECT_TRUE(c1.state_.consistentWith(c2.state_));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(TaskSafety, EveryCommitSatisfiesTheorem2)
{
    // At every commit, replay SEQ from a snapshot of the pre-commit
    // architected state for #t instructions; the result must equal
    // the snapshot superimposed with the task's live-outs — exactly
    // seq(S, #t) == S <- live_out(t).
    PreparedWorkload w = prepare(test::biasedSumSource(300, 77),
                                 test::biasedSumSource(200, 78));
    MsspConfig cfg;
    cfg.numSlaves = 4;
    MsspMachine machine(w.orig, w.dist, cfg);

    uint64_t commits_checked = 0;
    machine.setCommitHook([&](const Task &t, const ArchState &arch) {
        // Safety precondition (live-ins consistent with S).
        ASSERT_TRUE(arch.matches(t.liveIn));

        // Replay: S' = seq(S, #t).
        ArchState replay(arch);   // deep copy
        {
            struct Ctx : ExecContext
            {
                ArchState &s;
                explicit Ctx(ArchState &s) : s(s) {}
                uint32_t readReg(unsigned r) override
                {
                    return s.readReg(r);
                }
                void writeReg(unsigned r, uint32_t v) override
                {
                    s.writeReg(r, v);
                }
                uint32_t readMem(uint32_t a) override
                {
                    return s.readMem(a);
                }
                void writeMem(uint32_t a, uint32_t v) override
                {
                    s.writeMem(a, v);
                }
                uint32_t fetch(uint32_t pc) override
                {
                    return s.readMem(pc);
                }
                void output(uint16_t, uint32_t) override {}
            } ctx(replay);
            for (uint64_t i = 0; i < t.instCount; ++i) {
                StepResult res = stepAt(replay.pc(), ctx);
                ASSERT_NE(res.status, StepStatus::Illegal);
                if (res.status == StepStatus::Halted)
                    break;
                replay.setPc(res.nextPc);
            }
        }

        // S <- live_out(t).
        ArchState superimposed(arch);
        superimposed.apply(t.liveOut);

        // Compare: registers, and every cell in the live-out set (the
        // only memory cells the task may change).
        for (unsigned r = 0; r < NumRegs; ++r)
            EXPECT_EQ(superimposed.readReg(r), replay.readReg(r));
        for (const auto &[cell, value] : t.liveOut) {
            EXPECT_EQ(superimposed.readCell(cell),
                      replay.readCell(cell))
                << cellToString(cell);
        }
        ++commits_checked;
    });

    MsspResult r = machine.run(10000000);
    test::expectEquivalent(w.orig, r);
    EXPECT_GT(commits_checked, 5u);
}

TEST(JumpingRefinement, CommitTrajectoryIsSeqSubsequence)
{
    // Maintain a SEQ oracle; at each commit, advance it to the same
    // retired-instruction count and compare full architected state.
    PreparedWorkload w = prepare(test::biasedSumSource(250, 91),
                                 test::biasedSumSource(128, 92));
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);

    SeqMachine oracle(w.orig);
    uint64_t commits = 0;
    machine.setCommitHook([&](const Task &t, const ArchState &arch) {
        // Pre-commit state corresponds to instret() retired insts.
        ASSERT_EQ(oracle.instCount(), arch.instret())
            << "oracle out of sync";
        // Advance oracle across this task.
        oracle.run(t.instCount);
        // After commit the architected state must equal the oracle;
        // we verify the *pre*-commit part here: live-ins consistent.
        EXPECT_TRUE(arch.matches(t.liveIn));
        // And the task's live-outs must match the oracle's state.
        for (const auto &[cell, value] : t.liveOut) {
            if (cellKind(cell) == CellKind::Pc)
                continue;
            EXPECT_EQ(value, oracle.state().readCell(cell))
                << cellToString(cell);
        }
        ++commits;
    });

    MsspResult r = machine.run(10000000);
    test::expectEquivalent(w.orig, r);
    EXPECT_GT(commits, 5u);
    // Final states agree (ψ of the final MSSP state equals SEQ's).
    oracle.run(100000000);
    EXPECT_EQ(machine.arch().pc(), oracle.state().pc());
    for (unsigned reg = 0; reg < NumRegs; ++reg) {
        EXPECT_EQ(machine.arch().readReg(reg),
                  oracle.state().readReg(reg));
    }
    EXPECT_EQ(machine.arch().mem().nonzeroWords(),
              oracle.state().mem().nonzeroWords());
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Integration tests of the full MSSP machine: equivalence with SEQ
 * across configurations, misspeculation recovery, dual-mode fallback,
 * timing sanity and statistics plumbing.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "helpers.hh"

namespace mssp
{
namespace
{

using test::biasedSumSource;
using test::callLoopSource;
using test::expectEquivalent;
using test::runAndCheck;

TEST(MsspMachine, EquivalentOnBiasedLoop)
{
    MsspConfig cfg;
    auto r = runAndCheck(biasedSumSource(400, 11),
                         biasedSumSource(256, 99), cfg);
    EXPECT_GT(r.committedInsts, 3000u);
}

TEST(MsspMachine, EquivalentWithSingleSlave)
{
    MsspConfig cfg;
    cfg.numSlaves = 1;
    runAndCheck(biasedSumSource(200, 3), biasedSumSource(128, 4), cfg);
}

TEST(MsspMachine, EquivalentWithManySlaves)
{
    MsspConfig cfg;
    cfg.numSlaves = 16;
    cfg.maxInFlightTasks = 32;
    runAndCheck(biasedSumSource(300, 5), biasedSumSource(128, 6), cfg);
}

TEST(MsspMachine, EquivalentWithForkInterval)
{
    for (unsigned k : {2u, 4u, 8u}) {
        MsspConfig cfg;
        cfg.forkInterval = k;
        runAndCheck(biasedSumSource(300, 7), biasedSumSource(128, 8),
                    cfg);
    }
}

TEST(MsspMachine, EquivalentWithHighLatencies)
{
    MsspConfig cfg;
    cfg.forkLatency = 64;
    cfg.commitLatency = 64;
    cfg.squashPenalty = 128;
    cfg.archReadLatency = 16;
    runAndCheck(biasedSumSource(200, 9), biasedSumSource(128, 10),
                cfg);
}

TEST(MsspMachine, EquivalentOnCallLoop)
{
    MsspConfig cfg;
    runAndCheck(callLoopSource(300, 21), callLoopSource(200, 22), cfg);
}

TEST(MsspMachine, CommitsTasksAndMakesProgress)
{
    MsspConfig cfg;
    PreparedWorkload w = prepare(biasedSumSource(400, 31),
                                 biasedSumSource(256, 32));
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    expectEquivalent(w.orig, r);
    const MsspCounters &c = machine.counters();
    EXPECT_GT(c.tasksCommitted, 10u);
    EXPECT_GT(c.masterInsts, 0u);
    EXPECT_GT(c.slaveInsts, 0u);
    // This program has no distillable fat and its rare path fires in
    // training, so the default (never-taken-only) pruning leaves the
    // master path essentially the original length; it must not be
    // meaningfully longer. The strict shorter-path property is
    // covered by Distill.DistilledDynamicPathIsShorter.
    EXPECT_LE(c.masterInsts, r.committedInsts + 100);
}

TEST(MsspMachine, MisspeculationIsRecovered)
{
    // Train on data with *no* rare-path hits, so the distiller prunes
    // the rare branch; ref data hits the rare path, forcing live-in
    // (or wrong-path) squashes which recovery must absorb.
    std::string train = biasedSumSource(256, 201);
    std::string ref = strfmt(
        "    .equ N, 300\n"
        "    li s0, 0\n"
        "    la s2, data\n"
        "    li s3, 0\n"
        "loop:\n"
        "    add t0, s2, s0\n"
        "    lw t1, 0(t0)\n"
        "    add s3, s3, t1\n"
        "    andi t2, t1, 63\n"
        "    bnez t2, skip\n"
        "    addi s3, s3, 100\n"
        "    out s3, 7\n"
        "skip:\n"
        "    addi s0, s0, 1\n"
        "    li t3, 300\n"
        "    blt s0, t3, loop\n"
        "    out s3, 1\n"
        "    halt\n"
        ".org 0x8000\n"
        "data:\n");
    // Every 16th element is a multiple of 64 -> rare path fires.
    for (int i = 0; i < 300; ++i)
        ref += strfmt(".word %d\n", (i % 16 == 15) ? 128 : 3 + i);

    MsspConfig cfg;
    DistillerOptions dopts;
    dopts.biasThreshold = 0.95;
    PreparedWorkload w = prepare(ref, train, dopts);
    // The distiller must actually have pruned something for this test
    // to be meaningful.
    ASSERT_GT(w.dist.report.branchesToJump +
              w.dist.report.branchesToFall, 0u);
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    expectEquivalent(w.orig, r);
    EXPECT_GT(machine.counters().squashEvents, 0u);
    EXPECT_GT(machine.counters().tasksCommitted, 0u);
}

TEST(MsspMachine, StraightLineProgramFallsBackGracefully)
{
    // No loops: fork sites degenerate; whatever the distiller does,
    // output equivalence must hold.
    std::string src =
        "li t0, 1\n"
        "li t1, 2\n"
        "add t2, t0, t1\n"
        "out t2, 0\n"
        "halt\n";
    MsspConfig cfg;
    runAndCheck(src, src, cfg);
}

TEST(MsspMachine, ImmediateHalt)
{
    std::string src = "halt\n";
    MsspConfig cfg;
    auto r = runAndCheck(src, src, cfg);
    EXPECT_EQ(r.committedInsts, 1u);
}

TEST(MsspMachine, GenuineFaultIsReported)
{
    // Jump into unmapped memory: the program itself faults; MSSP must
    // report a fault, not hang or "fix" it.
    std::string src =
        "    li t0, 5\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    j nowhere\n"
        "nowhere:\n";
    PreparedWorkload w = prepare(src, src);
    MsspMachine machine(w.orig, w.dist, MsspConfig{});
    MsspResult r = machine.run(10000000);
    EXPECT_TRUE(r.faulted);
    EXPECT_FALSE(r.halted);

    SeqMachine seq(w.orig);
    seq.run(1000000);
    EXPECT_TRUE(seq.faulted());
}

TEST(MsspMachine, InstretMatchesSeqExactly)
{
    MsspConfig cfg;
    cfg.numSlaves = 4;
    PreparedWorkload w = prepare(biasedSumSource(350, 41),
                                 biasedSumSource(256, 42));
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    SeqMachine seq(w.orig);
    seq.run(100000000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.committedInsts, seq.instCount());
}

TEST(MsspMachine, StatsDumpIsWellFormed)
{
    MsspConfig cfg;
    PreparedWorkload w = prepare(biasedSumSource(100, 51),
                                 biasedSumSource(64, 52));
    MsspMachine machine(w.orig, w.dist, cfg);
    machine.run(10000000);
    std::ostringstream os;
    machine.dumpStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("mssp.tasksCommitted"), std::string::npos);
    EXPECT_NE(text.find("mssp.masterInsts"), std::string::npos);
    EXPECT_NE(text.find("taskSize"), std::string::npos);
}

TEST(MsspMachine, CommitHookObservesTaskSafety)
{
    // Every committed task must satisfy the formal task-safety check:
    // its live-ins are consistent with pre-commit architected state.
    MsspConfig cfg;
    PreparedWorkload w = prepare(biasedSumSource(200, 61),
                                 biasedSumSource(128, 62));
    MsspMachine machine(w.orig, w.dist, cfg);
    uint64_t checked = 0;
    machine.setCommitHook([&](const Task &t, const ArchState &arch) {
        ++checked;
        EXPECT_TRUE(arch.matches(t.liveIn));
        EXPECT_EQ(t.startPc, arch.pc());
    });
    MsspResult r = machine.run(10000000);
    expectEquivalent(w.orig, r);
    EXPECT_GT(checked, 0u);
}

TEST(MsspMachine, StopReasonReportsHowTheRunEnded)
{
    PreparedWorkload w = prepare(biasedSumSource(200, 61),
                                 biasedSumSource(128, 62));
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.stopReason, StopReason::Halted);
    EXPECT_STREQ(toString(r.stopReason), "halted");

    MsspMachine starved(w.orig, w.dist, cfg);
    MsspResult t = starved.run(10);   // nowhere near enough cycles
    EXPECT_FALSE(t.halted);
    EXPECT_EQ(t.stopReason, StopReason::TimedOut);
}

TEST(MsspMachine, DeadDistilledProgramStillCompletesViaSeq)
{
    // Zero every distilled-code word: the master faults on its first
    // fetch after every engagement (decode(0) is Illegal), forever.
    // The machine must notice the dead master without burning a full
    // watchdog interval per attempt, escalate into sequential
    // backoff, and finish the program output-equivalent to SEQ well
    // within a budget a livelock would blow through.
    PreparedWorkload w = prepare(biasedSumSource(400, 71),
                                 biasedSumSource(256, 72));
    for (const auto &[addr, word] : w.dist.prog.image()) {
        (void)word;
        if (addr >= DistilledCodeBase)
            w.dist.prog.setWord(addr, 0);
    }
    SeqMachine oracle(w.orig);
    oracle.run(100000000ull);
    ASSERT_TRUE(oracle.halted());

    MsspConfig cfg;
    cfg.watchdogCycles = 2000;
    // Budget: sequential execution plus generous recovery slack. A
    // restart/fault livelock would never halt at all.
    uint64_t budget = 20 * oracle.instCount() + 100000;
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(budget);
    ASSERT_TRUE(r.halted) << "livelocked on a dead master";
    EXPECT_EQ(r.outputs, oracle.outputs());
    EXPECT_EQ(r.committedInsts, oracle.instCount());

    const MsspCounters &c = machine.counters();
    EXPECT_GT(c.masterDeadRestarts, 0u);
    EXPECT_GT(c.seqBackoffEvents, 0u);
    EXPECT_GT(c.seqModeInsts, 0u);
}

TEST(MsspMachine, SeqBackoffFullyDecaysAfterRecovery)
{
    // Engage backoff early — drop the machine's first spawns so the
    // watchdog squashes — then run the long clean remainder. Commits
    // must decay the backoff all the way to zero (the old
    // seq_backoff_ /= 2 could never get below seqBackoffInsts once
    // the max(2x, floor) doubling engaged: re-speculation stayed
    // penalized forever after one bad patch).
    PreparedWorkload w = prepare(biasedSumSource(800, 41),
                                 biasedSumSource(512, 42));
    FaultPlan plan;
    plan.type = FaultType::SpawnDrop;
    plan.rate = 1.0;
    plan.maxInjections = 8;   // only the early forks are lost
    plan.seed = 23;
    FaultInjector injector(plan.seed, {plan});

    MsspConfig cfg;
    cfg.maxEngageFailures = 0;   // first squash engages backoff
    cfg.seqBackoffInsts = 64;
    cfg.watchdogCycles = 1500;
    MsspMachine machine(w.orig, w.dist, cfg);
    machine.setFaultInjector(&injector);
    MsspResult r = machine.run(50000000);
    expectEquivalent(w.orig, r);
    const MsspCounters &c = machine.counters();
    ASSERT_GT(c.seqBackoffEvents, 0u);
    EXPECT_GT(c.seqBackoffDecays, 0u);
    EXPECT_GT(c.tasksCommitted, 20u);
    EXPECT_EQ(machine.currentSeqBackoff(), 0u)
        << "backoff pinned above zero after successful recovery";
}

TEST(MsspMachine, WatchdogEscalationBoundsSquashStorms)
{
    // Dead master again, but with the fast-restart path effectively
    // disabled by a spawned-but-undeliverable window: drop every
    // spawn via an injector so the watchdog (not the master-dead
    // path) must do the recovering, and verify the escalation
    // counter advances and the storm ends in sequential mode.
    PreparedWorkload w = prepare(biasedSumSource(400, 81),
                                 biasedSumSource(256, 82));
    FaultPlan plan;
    plan.type = FaultType::SpawnDrop;
    plan.rate = 1.0;
    plan.seed = 17;
    FaultInjector injector(plan.seed, {plan});

    MsspConfig cfg;
    cfg.watchdogCycles = 1500;
    cfg.watchdogEscalateAfter = 2;
    MsspMachine machine(w.orig, w.dist, cfg);
    machine.setFaultInjector(&injector);
    MsspResult r = machine.run(50000000);
    expectEquivalent(w.orig, r);
    const MsspCounters &c = machine.counters();
    EXPECT_GT(c.watchdogSquashes, 2u);
    EXPECT_GT(c.watchdogEscalations, 0u);
    EXPECT_GT(c.seqModeInsts, 0u);
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Lockstep fuzz gate for the value-speculating distiller.
 *
 * Every random program family seed is profiled, speculatively
 * distilled (distill/speculate.cc) and run on the full MSSP machine;
 * the committed architectural results — halt flag, outputs, retired
 * instruction count — must be byte-identical to the SEQ oracle
 * running the original program. A wrong baked constant the machine
 * fails to police shows up here as an output or instret divergence.
 *
 * The speculated image itself must also be a pure function of its
 * inputs (byte-identical on re-distillation) and lint-clean: a fuzz
 * seed whose bakes fail the specedit checks is a distiller bug.
 *
 * Runs 25 seeds by default (fast enough for ctest); the full gate is
 *   MSSP_FUZZ_ITERS=500 ./test_speculate_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "eval/crossval.hh"
#include "exec/seq_machine.hh"
#include "mssp/machine.hh"
#include "sim/logging.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 25;
}

} // anonymous namespace

TEST(SpeculateFuzz, SpeculatedImagesCommitSeqIdenticalState)
{
    setQuiet(true);
    size_t baked_total = 0;
    for (uint64_t seed = 1; seed <= fuzzIters(); ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        SeqMachine oracle(prog);
        oracle.run(10000000ull);
        if (!oracle.halted())
            continue;   // fuzz family can fault; nothing to verify

        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());
        DistilledProgram spec = distillSpeculated(
            prog, w.profile, DistillerOptions::paperPreset(),
            SpeculateOptions{});
        baked_total += spec.specEdits.size();

        MsspMachine m(prog, spec, MsspConfig{});
        MsspResult r = m.run(10000000ull);
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(r.outputs, oracle.outputs());
        EXPECT_EQ(r.committedInsts, oracle.instCount());
    }
    // Non-vacuity: across the seed range the distiller must actually
    // bake something, or this gate tests nothing.
    EXPECT_GT(baked_total, 0u);
}

TEST(SpeculateFuzz, SpeculatedImagesAreDeterministicAndLintClean)
{
    setQuiet(true);
    unsigned iters = std::min(fuzzIters(), 10u);
    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());
        DistilledProgram a = distillSpeculated(
            prog, w.profile, DistillerOptions::paperPreset(),
            SpeculateOptions{});
        DistilledProgram b = distillSpeculated(
            prog, w.profile, DistillerOptions::paperPreset(),
            SpeculateOptions{});
        EXPECT_EQ(saveDistilled(a), saveDistilled(b));

        analysis::LintReport rep =
            analysis::verifyDistilled(prog, a);
        EXPECT_EQ(rep.errors(), 0u) << rep.toText();
        SpecEditDynamicResult dyn =
            validateSpecEditsDynamic(prog, a, 10000000ull);
        EXPECT_EQ(dyn.provenMismatches, 0u) << dyn.firstViolation;
    }
}

} // namespace mssp

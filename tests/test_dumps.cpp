/**
 * @file
 * Smoke tests for the human-readable dump/formatting paths: CFG and
 * IR dumps, program disassembly ranges, distill reports, state-delta
 * dumps and the machine-config table. These are debugging surfaces;
 * the tests pin their load-bearing content, not exact formatting.
 */

#include <gtest/gtest.h>

#include "core/mssp_api.hh"
#include "distill/ir.hh"
#include "helpers.hh"

namespace mssp
{
namespace
{

const char *kSrc =
    "    li t0, 9\n"
    "loop:\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    out t0, 1\n"
    "    halt\n";

TEST(Dumps, CfgToString)
{
    Program p = assemble(kSrc);
    Cfg cfg = Cfg::build(p, p.entry());
    std::string s = cfg.toString();
    EXPECT_NE(s.find("block 0x1000"), std::string::npos);
    EXPECT_NE(s.find("[loop header]"), std::string::npos);
    EXPECT_NE(s.find("condbranch"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}

TEST(Dumps, IrToString)
{
    Program p = assemble(kSrc);
    Cfg cfg = Cfg::build(p, p.entry());
    DistillIr ir = DistillIr::build(cfg, nullptr);
    std::string s = ir.toString();
    EXPECT_NE(s.find("B0"), std::string::npos);
    EXPECT_NE(s.find("term="), std::string::npos);
}

TEST(Dumps, ProgramDisassembleRange)
{
    Program p = assemble(kSrc);
    std::string s = p.disassembleRange(p.entry(), 5);
    EXPECT_NE(s.find("addi t0, zero, 9"), std::string::npos);
    EXPECT_NE(s.find("bne t0, zero"), std::string::npos);
    EXPECT_NE(s.find("halt"), std::string::npos);
}

TEST(Dumps, StateDeltaToString)
{
    StateDelta d;
    d.set(makeRegCell(5), 0x2a);
    d.set(makeMemCell(0x100), 7);
    std::string s = d.toString();
    EXPECT_NE(s.find("r5(a2)"), std::string::npos);
    EXPECT_NE(s.find("mem[0x100]"), std::string::npos);
    EXPECT_NE(s.find("0x2a"), std::string::npos);
}

TEST(Dumps, ConfigToString)
{
    MsspConfig cfg;
    cfg.numSlaves = 5;
    std::string s = cfg.toString();
    EXPECT_NE(s.find("numSlaves"), std::string::npos);
    EXPECT_NE(s.find("5"), std::string::npos);
    EXPECT_NE(s.find("forkLatency"), std::string::npos);
    EXPECT_NE(s.find("watchdogCycles"), std::string::npos);
}

TEST(Dumps, DistillReportMentionsAllPasses)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(100, 1),
                                 test::biasedSumSource(64, 2),
                                 DistillerOptions::paperPreset());
    std::string s = w.dist.report.toString();
    for (const char *needle :
         {"static insts", "branches pruned", "blocks removed",
          "const-folded", "dce-removed", "stores elided",
          "value-speculated", "fork sites"}) {
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
    }
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Tests for the job supervision runtime (sim/supervisor.hh): budget
 * trips on every execution tier, state-clean cancellation and resume,
 * exact instruction caps, deterministic retry backoff, quarantine
 * collection, and host-chaos determinism (fault/hostchaos.hh).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "exec/seq_machine.hh"
#include "fault/hostchaos.hh"
#include "helpers.hh"
#include "mssp/machine.hh"
#include "sim/supervisor.hh"

namespace mssp
{
namespace
{

/** A program that never halts (budget trips must stop it). */
const char *kSpinSource =
    "    li s0, 0\n"
    "loop:\n"
    "    addi s0, s0, 1\n"
    "    j loop\n";

constexpr BackendKind kTiers[] = {
    BackendKind::Ref, BackendKind::Threaded, BackendKind::BlockJit};

TEST(Supervision, DeadlineTripsMidRunOnEveryTier)
{
    Program prog = assemble(kSpinSource);
    for (BackendKind tier : kTiers) {
        SeqMachine machine(prog);
        machine.setBackend(tier);
        JobBudget budget;
        budget.timeoutMs = 30;
        Supervision sup(budget);
        SupervisionScope scope(&sup);
        try {
            machine.run(1ull << 40);
            FAIL() << "deadline never tripped on tier "
                   << static_cast<int>(tier);
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code(), StatusCode::DeadlineExceeded);
        }
        // The trip is between slices: the machine made progress but
        // is architecturally consistent (neither halted nor faulted).
        EXPECT_GT(sup.executed(), 0u);
        EXPECT_FALSE(machine.halted());
        EXPECT_FALSE(machine.faulted());
    }
}

TEST(Supervision, InstCapIsExactAndMachineResumes)
{
    std::string src = test::biasedSumSource(1000, 5);
    Program prog = assemble(src);

    // Unsupervised truth.
    SeqMachine truth(prog);
    SeqRunResult full = truth.run(100000000ull);
    ASSERT_TRUE(full.halted);
    ASSERT_GT(full.instCount, 1000u);

    // Capped run trips with exactly the budgeted instructions done
    // (the slice loop clamps to instsRemaining — never overshoots).
    SeqMachine machine(prog);
    JobBudget budget;
    budget.maxInsts = 1000;
    Supervision sup(budget);
    {
        SupervisionScope scope(&sup);
        EXPECT_THROW(machine.run(1ull << 40), StatusError);
    }
    EXPECT_EQ(sup.status().code(), StatusCode::InstLimitExceeded);
    EXPECT_EQ(sup.executed(), 1000u);
    EXPECT_FALSE(machine.halted());

    // The trip left the machine state-clean: resuming (unsupervised)
    // completes with identical architectural results.
    SeqRunResult rest = machine.run(100000000ull);
    EXPECT_TRUE(rest.halted);
    EXPECT_EQ(1000u + rest.instCount, full.instCount);
    EXPECT_EQ(machine.outputs(), truth.outputs());
    EXPECT_EQ(machine.state().regs(), truth.state().regs());
}

TEST(Supervision, PreCancelledTokenStopsBeforeAnyWork)
{
    Program prog = assemble(test::biasedSumSource(64, 7));
    SeqMachine machine(prog);
    CancelToken token;
    token.cancel();
    Supervision sup(JobBudget{}, &token);
    {
        SupervisionScope scope(&sup);
        try {
            machine.run(100000000ull);
            FAIL() << "cancel never observed";
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code(), StatusCode::Cancelled);
        }
    }
    EXPECT_EQ(sup.executed(), 0u);

    // reset() re-arms the token; a fresh supervision completes.
    token.reset();
    Supervision sup2(JobBudget{}, &token);
    SupervisionScope scope(&sup2);
    SeqRunResult r = machine.run(100000000ull);
    EXPECT_TRUE(r.halted);
}

TEST(Supervision, MsspMachineBudgetTripsAndResumes)
{
    PreparedWorkload w =
        prepare(test::biasedSumSource(2000, 3),
                test::biasedSumSource(2000, 4));
    SeqMachine oracle(w.orig);
    ASSERT_TRUE(oracle.run(100000000ull).halted);

    MsspMachine machine(w.orig, w.dist, MsspConfig{});
    JobBudget budget;
    budget.maxInsts = 2000;
    Supervision sup(budget);
    {
        SupervisionScope scope(&sup);
        try {
            machine.run(200000000ull);
            FAIL() << "inst cap never tripped";
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code(),
                      StatusCode::InstLimitExceeded);
        }
    }
    EXPECT_GT(sup.executed(), 2000u - 1);

    // Trips land between machine cycles: the run resumes and still
    // produces SEQ-equivalent results.
    MsspResult r = machine.run(200000000ull);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(machine.outputs(), oracle.outputs());
    EXPECT_EQ(machine.arch().instret(), oracle.instCount());
}

TEST(Supervision, RetryDelayIsDeterministicAndBounded)
{
    RetryPolicy policy;
    policy.backoffBaseUs = 500;
    policy.backoffMaxUs = 50000;
    for (unsigned attempt = 2; attempt <= 9; ++attempt) {
        uint64_t a = retryDelayUs(policy, 42, 3, attempt);
        uint64_t b = retryDelayUs(policy, 42, 3, attempt);
        EXPECT_EQ(a, b) << "jitter must be a pure function";
        uint64_t base = std::min<uint64_t>(
            policy.backoffMaxUs, policy.backoffBaseUs
                                     << std::min(attempt - 2, 20u));
        EXPECT_GE(a, base / 2);
        EXPECT_LT(a, base);
    }
    // Different (seed, job, attempt) keys draw different streams
    // (equality would mean the key is being ignored).
    EXPECT_NE(retryDelayUs(policy, 42, 3, 4),
              retryDelayUs(policy, 43, 3, 4));
}

std::vector<std::function<int(const JobContext &)>>
flakyBatch()
{
    // Job 1 always throws a plain exception; job 3 always throws a
    // structured one; job 2 fails only on its first attempt.
    std::vector<std::function<int(const JobContext &)>> work;
    for (size_t i = 0; i < 5; ++i) {
        work.push_back([i](const JobContext &ctx) -> int {
            if (i == 1)
                throw std::runtime_error("job one is broken");
            if (i == 3) {
                throw StatusError(Status(StatusCode::JobFailed,
                                         "job three is broken"));
            }
            if (i == 2 && ctx.attempt == 1)
                throw std::runtime_error("transient");
            return static_cast<int>(i * 10);
        });
    }
    return work;
}

TEST(Supervision, QuarantineCollectsEveryFailure)
{
    SupervisorOptions opts;
    opts.retry.maxAttempts = 2;
    opts.retry.backoffBaseUs = 1;   // keep the test fast
    opts.retry.backoffMaxUs = 2;
    std::vector<std::string> labels{"a", "b", "c", "d", "e"};

    SupervisedResult<int> sharded =
        runSupervised<int>(4, flakyBatch(), opts, labels);
    SupervisedResult<int> serial =
        runSupervised<int>(1, flakyBatch(), opts, labels);

    for (const SupervisedResult<int> *r : {&sharded, &serial}) {
        ASSERT_EQ(r->outcomes.size(), 5u);
        EXPECT_EQ(*r->outcomes[0].value, 0);
        EXPECT_FALSE(r->outcomes[1].ok());
        EXPECT_TRUE(r->outcomes[2].ok());   // recovered on retry
        EXPECT_EQ(r->outcomes[2].attempts, 2u);
        EXPECT_FALSE(r->outcomes[3].ok());
        EXPECT_EQ(*r->outcomes[4].value, 40);

        // ALL failures surface, not just the lowest-indexed one.
        ASSERT_EQ(r->quarantine.size(), 2u);
        EXPECT_EQ(r->quarantine.entries[0].label, "b");
        EXPECT_EQ(r->quarantine.entries[0].attempts, 2u);
        EXPECT_EQ(r->quarantine.entries[0].status.code(),
                  StatusCode::JobFailed);
        EXPECT_EQ(r->quarantine.entries[1].label, "d");
    }

    // The byte-determinism contract: --jobs N == --jobs 1.
    EXPECT_EQ(sharded.quarantine.toJson(), serial.quarantine.toJson());
}

TEST(Supervision, RethrowFirstFailureCompatMode)
{
    SupervisorOptions opts;
    opts.retry.backoffBaseUs = 1;
    opts.retry.backoffMaxUs = 2;
    opts.rethrowFirstFailure = true;
    try {
        runSupervised<int>(4, flakyBatch(), opts);
        FAIL() << "compat mode must rethrow";
    } catch (const StatusError &e) {
        // The lowest-indexed failure (job 1), like the historical
        // ThreadPool::run contract.
        EXPECT_NE(std::string(e.what()).find("job one"),
                  std::string::npos);
    }
}

TEST(HostChaos, DeterministicAcrossShardCounts)
{
    HostChaosPlan plan = HostChaosPlan::preset(9);
    SupervisorOptions opts;
    opts.retry.maxAttempts = 1;   // every injected failure quarantines
    opts.seed = 9;

    auto batch = [] {
        std::vector<std::function<int(const JobContext &)>> work;
        for (size_t i = 0; i < 24; ++i) {
            work.push_back([](const JobContext &ctx) -> int {
                // Poll once so injected cancellations are observed.
                ctx.supervision->checkOrThrow();
                return 1;
            });
        }
        return work;
    };

    HostChaos chaos4(plan), chaos1(plan);
    opts.chaos = &chaos4;
    SupervisedResult<int> sharded = runSupervised<int>(4, batch(), opts);
    opts.chaos = &chaos1;
    SupervisedResult<int> serial = runSupervised<int>(1, batch(), opts);

    // Injection draws key on (seed, job, attempt) only, so sharding
    // cannot change who gets hit or why.
    EXPECT_EQ(sharded.quarantine.toJson(), serial.quarantine.toJson());
    EXPECT_EQ(chaos4.throws(), chaos1.throws());
    EXPECT_EQ(chaos4.cancels(), chaos1.cancels());
    // The preset rates over 24 jobs make a zero-injection run
    // astronomically unlikely — and the draw is deterministic.
    EXPECT_GT(chaos4.throws() + chaos4.cancels(), 0u);

    // Retries redraw: with three strikes most victims recover.
    opts.retry.maxAttempts = 3;
    opts.retry.backoffBaseUs = 1;
    opts.retry.backoffMaxUs = 2;
    HostChaos chaosRetry(plan);
    opts.chaos = &chaosRetry;
    SupervisedResult<int> retried = runSupervised<int>(4, batch(), opts);
    EXPECT_LE(retried.quarantine.size(), serial.quarantine.size());
}

} // anonymous namespace
} // namespace mssp

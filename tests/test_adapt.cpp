/**
 * @file
 * The online squash-feedback adaptation loop (eval/adapt.hh).
 *
 * Under test: the loop converges within its bound on healthy
 * workloads (nothing worth de-speculating), is a deterministic pure
 * function of its inputs, and — in the fault-injection configuration
 * that makes verification tasks squash — de-speculates at least one
 * baked load while the final image stays SEQ-equivalent. The
 * generation counter it stamps must survive .mdo v5 persistence.
 */

#include <gtest/gtest.h>

#include <string>

#include "asm/objfile.hh"
#include "eval/adapt.hh"
#include "helpers.hh"
#include "sim/logging.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

PreparedWorkload
prepareWorkload(const std::string &name, double scale = 0.05)
{
    setQuiet(true);
    Workload wl = workloadByName(name, scale);
    return prepare(wl.refSource, wl.trainSource,
                   DistillerOptions::paperPreset());
}

} // anonymous namespace

TEST(Adapt, ConvergesWithoutFaultsAndKeepsEveryBake)
{
    PreparedWorkload w = prepareWorkload("mcf");
    AdaptOptions aopts;
    AdaptResult r = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations.size(), aopts.maxIters);
    // Proven bakes never mispredict, so nothing gets de-speculated.
    EXPECT_TRUE(r.despeculated.empty());
    ASSERT_FALSE(r.iterations.empty());
    EXPECT_GE(r.iterations.back().baked, 1u);
    EXPECT_TRUE(r.iterations.back().halted);
}

TEST(Adapt, LoopIsDeterministic)
{
    PreparedWorkload w = prepareWorkload("bzip2");
    AdaptOptions aopts;
    AdaptResult a = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    AdaptResult b = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.despeculated, b.despeculated);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].baked, b.iterations[i].baked);
        EXPECT_EQ(a.iterations[i].squashEvents,
                  b.iterations[i].squashEvents);
        EXPECT_EQ(a.iterations[i].despeculated,
                  b.iterations[i].despeculated);
    }
    EXPECT_EQ(saveDistilled(a.dist), saveDistilled(b.dist));
}

TEST(Adapt, FaultInjectionDrivesDespeculation)
{
    // Spurious squashes at every fork site push squash rates over the
    // threshold; the loop must react by de-speculating at least one
    // baked load, then converge once there is nothing left to drop —
    // and the de-speculated image must still run SEQ-equivalent in a
    // fault-free machine.
    PreparedWorkload w = prepareWorkload("mcf");
    AdaptOptions aopts;
    aopts.maxIters = 4;
    aopts.squashRateThreshold = 0.05;
    aopts.minEngagements = 1;
    FaultPlan plan;
    plan.type = FaultType::SpuriousSquash;
    plan.rate = 0.8;
    plan.seed = 7;
    aopts.faults.push_back(plan);

    AdaptResult r = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    EXPECT_TRUE(r.converged);
    EXPECT_GE(r.despeculated.size(), 1u);
    EXPECT_TRUE(r.dist.specEdits.empty());
    EXPECT_EQ(r.dist.specDropped, r.despeculated);

    MsspMachine m(w.orig, r.dist, MsspConfig{});
    MsspResult res = m.run(400000000ull);
    test::expectEquivalent(w.orig, res);
}

TEST(Adapt, GenerationCounterTracksIterationsAndPersists)
{
    PreparedWorkload w = prepareWorkload("mcf");
    AdaptOptions aopts;
    aopts.maxIters = 3;
    aopts.squashRateThreshold = 0.05;
    aopts.minEngagements = 1;
    FaultPlan plan;
    plan.type = FaultType::SpuriousSquash;
    plan.rate = 0.8;
    plan.seed = 7;
    aopts.faults.push_back(plan);

    AdaptResult r = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    ASSERT_FALSE(r.iterations.empty());
    // The final image carries the generation of the last iteration.
    EXPECT_EQ(r.dist.specGeneration, r.iterations.back().generation);
    EXPECT_EQ(r.iterations.back().generation,
              static_cast<uint32_t>(r.iterations.size() - 1));
    DistilledProgram back = loadDistilled(saveDistilled(r.dist));
    EXPECT_EQ(back.specGeneration, r.dist.specGeneration);
}

TEST(Adapt, IterationBoundIsHonored)
{
    PreparedWorkload w = prepareWorkload("gcc");
    AdaptOptions aopts;
    aopts.maxIters = 1;
    AdaptResult r = adaptSpeculation(
        w.orig, w.profile, DistillerOptions::paperPreset(), aopts);
    EXPECT_EQ(r.iterations.size(), 1u);
}

} // namespace mssp

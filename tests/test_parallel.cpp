/**
 * @file
 * Host-parallel execution tests (sim/parallel.hh): the work-stealing
 * pool runs every job exactly once across batches and pool sizes,
 * exceptions propagate deterministically (lowest job index wins),
 * runSharded merges in canonical order, and the repo's flagship
 * determinism contract holds in-process — a sharded fault campaign's
 * JSON report is byte-identical to the serial one. This is the test
 * the TSan build (MSSP_SANITIZE=thread) exercises for data races.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

using namespace mssp;

namespace
{

TEST(Parallel, DefaultJobsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Parallel, EmptyBatchReturnsImmediately)
{
    ThreadPool pool(4);
    pool.run({});

    std::vector<std::function<int()>> work;
    EXPECT_TRUE(runSharded<int>(8, std::move(work)).empty());
}

TEST(Parallel, PoolSizeClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);

    std::atomic<int> ran{0};
    pool.run({[&ran] { ++ran; }});
    EXPECT_EQ(ran.load(), 1);
}

TEST(Parallel, ManyMoreJobsThanThreads)
{
    // 500 jobs on 3 threads: every job runs exactly once (work
    // stealing loses or duplicates nothing) and results land in
    // canonical slots.
    const size_t n = 500;
    std::vector<std::function<uint64_t()>> work;
    work.reserve(n);
    for (size_t i = 0; i < n; ++i)
        work.push_back([i] { return Rng::mix(42, i); });

    std::vector<uint64_t> got = runSharded<uint64_t>(3, std::move(work));
    ASSERT_EQ(got.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(got[i], Rng::mix(42, i)) << "slot " << i;
}

TEST(Parallel, PoolReusedAcrossBatches)
{
    ThreadPool pool(4);
    for (int batch = 0; batch < 10; ++batch) {
        std::atomic<int> sum{0};
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 16; ++i)
            jobs.push_back([&sum, i] { sum += i; });
        pool.run(std::move(jobs));
        EXPECT_EQ(sum.load(), 120) << "batch " << batch;
    }
}

TEST(Parallel, JobsActuallyRunConcurrently)
{
    // Eight jobs rendezvous at a barrier: this only completes if the
    // pool really has eight jobs in flight at once (a serial or
    // lossy pool would time out at the wait below, not deadlock).
    const unsigned n = 8;
    std::mutex m;
    std::condition_variable cv;
    unsigned arrived = 0;
    bool all_arrived = false;

    ThreadPool pool(n);
    std::vector<std::function<void()>> jobs;
    for (unsigned i = 0; i < n; ++i) {
        jobs.push_back([&] {
            std::unique_lock<std::mutex> lock(m);
            if (++arrived == n) {
                all_arrived = true;
                cv.notify_all();
            } else {
                cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return all_arrived; });
            }
            EXPECT_TRUE(all_arrived);
        });
    }
    pool.run(std::move(jobs));
    EXPECT_EQ(arrived, n);
}

TEST(Parallel, ExceptionPropagates)
{
    ThreadPool pool(4);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back([] {});
    jobs.push_back([] { throw std::runtime_error("job failed"); });

    EXPECT_THROW(pool.run(std::move(jobs)), std::runtime_error);

    // The pool survives a throwing batch.
    std::atomic<int> ran{0};
    pool.run({[&ran] { ++ran; }, [&ran] { ++ran; }});
    EXPECT_EQ(ran.load(), 2);
}

TEST(Parallel, LowestIndexExceptionWins)
{
    // Every job throws; the rethrown message must always be job 0's,
    // no matter which failure completed first.
    for (int attempt = 0; attempt < 5; ++attempt) {
        ThreadPool pool(4);
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 12; ++i) {
            jobs.push_back([i] {
                throw std::runtime_error("job " + std::to_string(i));
            });
        }
        try {
            pool.run(std::move(jobs));
            FAIL() << "batch of throwing jobs did not throw";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 0");
        }
    }
}

TEST(Parallel, RunShardedExceptionFromWorkItem)
{
    std::vector<std::function<int()>> work;
    for (int i = 0; i < 6; ++i)
        work.push_back([i] { return i; });
    work.push_back([]() -> int {
        throw std::runtime_error("sharded failure");
    });
    EXPECT_THROW(runSharded<int>(4, std::move(work)),
                 std::runtime_error);
}

TEST(Parallel, MergeRunsInCanonicalOrder)
{
    std::vector<std::function<size_t()>> work;
    for (size_t i = 0; i < 64; ++i)
        work.push_back([i] { return i * i; });

    std::vector<size_t> order;
    runSharded<size_t>(4, std::move(work),
                       [&order](size_t i, size_t r) {
                           EXPECT_EQ(r, i * i);
                           order.push_back(i);
                       });
    ASSERT_EQ(order.size(), 64u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Parallel, ShardedMatchesSerial)
{
    auto sweep = [](unsigned jobs) {
        std::vector<std::function<uint64_t()>> work;
        for (size_t i = 0; i < 100; ++i) {
            work.push_back([i] {
                uint64_t h = Rng::mix(7, i);
                for (int k = 0; k < 50; ++k)
                    h = Rng::mix(h, k);
                return h;
            });
        }
        return runSharded<uint64_t>(jobs, std::move(work));
    };
    EXPECT_EQ(sweep(1), sweep(8));
}

// The flagship contract, in-process: a sharded fault campaign's JSON
// report is byte-identical to the serial one (what CI checks with
// `mssp-faultcamp --jobs N` / `--jobs 1` at full scale).
TEST(Parallel, FaultCampaignShardedByteIdentical)
{
    CampaignOptions opts;
    opts.workloads = {"gzip", "mcf"};
    opts.scale = 0.05;
    opts.seed = 12345;
    opts.intensities = {1.0, 10.0};

    opts.jobs = 1;
    std::string serial = runFaultCampaign(opts).toJson();

    opts.jobs = 8;
    std::string sharded = runFaultCampaign(opts).toJson();

    EXPECT_EQ(serial, sharded);
}

} // anonymous namespace

/**
 * @file
 * Unit tests for util helpers (bitfield, strings) and the sim kernel
 * (logging, RNG, event queue).
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "util/bitfield.hh"
#include "util/string_utils.hh"

namespace mssp
{
namespace
{

TEST(Bitfield, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xffffffff, 31, 0), 0xffffffffu);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 0, 0xbeef), 0xbeefu);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 31, 26, 0x3f), 0xfc000000u);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0x1fffff, 21), -1);
    EXPECT_EQ(sext(5, 16), 5);
}

TEST(Bitfield, Fits)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsUnsigned(65535, 16));
    EXPECT_FALSE(fitsUnsigned(65536, 16));
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a"), "a");
}

TEST(StringUtils, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, SplitWs)
{
    auto parts = splitWs("  add   t0,  t1 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "add");
    EXPECT_EQ(parts[1], "t0,");
    EXPECT_EQ(parts[2], "t1");
}

TEST(StringUtils, ParseInt)
{
    int64_t v;
    EXPECT_TRUE(parseInt("123", v));
    EXPECT_EQ(v, 123);
    EXPECT_TRUE(parseInt("-5", v));
    EXPECT_EQ(v, -5);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("0b101", v));
    EXPECT_EQ(v, 5);
    EXPECT_TRUE(parseInt("'A'", v));
    EXPECT_EQ(v, 65);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("abc", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("0x", v));
}

TEST(Logging, StrFmt)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strfmt("%08x", 0xbeef), "0000beef");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad thing %d", 7), FatalError);
    try {
        fatal("bad thing %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad thing 7");
    }
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.range(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(5, [&] { fired.push_back(5); });
    q.schedule(7, [&] { fired.push_back(7); });
    q.runUntil(6);
    ASSERT_EQ(fired, (std::vector<int>{5}));
    q.runUntil(20);
    ASSERT_EQ(fired, (std::vector<int>{5, 7, 10}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleInsertionOrder)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(3, [&fired, i] { fired.push_back(i); });
    q.runUntil(3);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlerSchedulesWithinWindow)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(1, [&] {
        fired.push_back(1);
        q.schedule(2, [&] { fired.push_back(2); });
    });
    q.runUntil(5);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_EQ(q.pending(), 2u);
    q.clear();
    q.runUntil(100);
    EXPECT_EQ(count, 0);
    EXPECT_EQ(q.pending(), 0u);
}

} // anonymous namespace
} // namespace mssp

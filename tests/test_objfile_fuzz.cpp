/**
 * @file
 * Seeded mutation fuzz gate for the untrusted-input parse paths
 * (asm/objfile.hh parseProgram/parseDistilled, asm/assembler.hh
 * parseAssembly).
 *
 * Starts from valid corpora — an assembled source file, a saved
 * Program object, a saved DistilledProgram object — and applies
 * seeded byte mutations (flips, overwrites, slice deletion and
 * duplication, truncation, insertion). Every mutant must produce a
 * structured outcome: either a parsed value or StatusCode::ParseError.
 * No crash, no unstructured exception escape, no unbounded
 * allocation (the fork-index cap is load-bearing here).
 *
 * Runs 300 seeds per corpus by default; the CI ASan leg and the
 * nightly deep gate raise it:
 *   MSSP_FUZZ_ITERS=5000 ./test_objfile_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "asm/assembler.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "helpers.hh"
#include "sim/rng.hh"

namespace mssp
{
namespace
{

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 300;
}

/** One seeded mutation of @p text (possibly several edits). */
std::string
mutate(const std::string &text, uint64_t seed)
{
    Rng rng(Rng::mix(0xf522ed, seed));
    std::string s = text;
    unsigned edits = 1 + rng.below(4);
    for (unsigned e = 0; e < edits && !s.empty(); ++e) {
        switch (rng.below(6)) {
          case 0: {   // flip one bit
            size_t i = rng.below(s.size());
            s[i] = static_cast<char>(s[i] ^ (1u << rng.below(8)));
            break;
          }
          case 1: {   // overwrite one byte with anything
            s[rng.below(s.size())] =
                static_cast<char>(rng.below(256));
            break;
          }
          case 2: {   // delete a slice
            size_t at = rng.below(s.size());
            size_t len = 1 + rng.below(64);
            s.erase(at, len);
            break;
          }
          case 3: {   // duplicate a slice (grows "fork 99999..."-like
                      // repetitions and doubled directives)
            size_t at = rng.below(s.size());
            size_t len = std::min<size_t>(1 + rng.below(64),
                                          s.size() - at);
            s.insert(at, s.substr(at, len));
            break;
          }
          case 4: {   // truncate
            s.resize(rng.below(s.size()));
            break;
          }
          default: {  // insert random bytes (incl. NUL and newlines)
            std::string junk;
            unsigned n = 1 + rng.below(16);
            for (unsigned i = 0; i < n; ++i)
                junk += static_cast<char>(rng.below(256));
            s.insert(rng.below(s.size() + 1), junk);
            break;
          }
        }
    }
    return s;
}

/** The shared corpus: one small prepared workload. */
struct Corpus
{
    std::string source;      ///< assembly text
    std::string object;      ///< saveProgram bytes
    std::string distilled;   ///< saveDistilled bytes
};

const Corpus &
corpus()
{
    static const Corpus c = [] {
        Corpus out;
        out.source = test::biasedSumSource(48, 11);
        PreparedWorkload w = prepare(out.source, out.source);
        out.object = saveProgram(w.orig);
        out.distilled = saveDistilled(w.dist);
        return out;
    }();
    return c;
}

TEST(ObjFileFuzz, ValidCorpusParses)
{
    EXPECT_TRUE(parseAssembly(corpus().source).ok());
    EXPECT_TRUE(parseProgram(corpus().object).ok());
    EXPECT_TRUE(parseDistilled(corpus().distilled).ok());
}

TEST(ObjFileFuzz, MutatedProgramObjectNeverEscapes)
{
    for (uint64_t seed = 0; seed < fuzzIters(); ++seed) {
        std::string mutant = mutate(corpus().object, seed);
        Result<Program> r = parseProgram(mutant);
        if (!r.ok()) {
            EXPECT_EQ(r.status().code(), StatusCode::ParseError)
                << "seed " << seed;
        }
    }
}

TEST(ObjFileFuzz, MutatedDistilledObjectNeverEscapes)
{
    for (uint64_t seed = 0; seed < fuzzIters(); ++seed) {
        std::string mutant = mutate(corpus().distilled, seed);
        Result<DistilledProgram> r = parseDistilled(mutant);
        if (!r.ok()) {
            EXPECT_EQ(r.status().code(), StatusCode::ParseError)
                << "seed " << seed;
        }
    }
}

TEST(ObjFileFuzz, MutatedAssemblyNeverEscapes)
{
    for (uint64_t seed = 0; seed < fuzzIters(); ++seed) {
        std::string mutant = mutate(corpus().source, seed);
        Result<Program> r = parseAssembly(mutant);
        if (!r.ok()) {
            EXPECT_EQ(r.status().code(), StatusCode::ParseError)
                << "seed " << seed;
        }
    }
}

TEST(ObjFileFuzz, HostileForkIndexIsBounded)
{
    // A handcrafted hostile header: without the cap this resize would
    // try to allocate tens of gigabytes of task map.
    std::string evil = "mssp-distilled v5\n"
                       "entry 0x1000\n"
                       "fork 4294967295 0x1000 1\n";
    Result<DistilledProgram> r = parseDistilled(evil);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::ParseError);
    EXPECT_NE(r.status().message().find("fork index"),
              std::string::npos);

    // At the cap itself the loader accepts (bounded, ~8 MiB worst
    // case) — the cap is a ceiling, not a tripwire.
    std::string edge = strfmt("mssp-distilled v5\n"
                              "entry 0x1000\n"
                              "fork %zu 0x1000 1\n",
                              kMaxForkIndex);
    EXPECT_TRUE(parseDistilled(edge).ok());
}

} // anonymous namespace
} // namespace mssp

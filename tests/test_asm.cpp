/**
 * @file
 * Unit tests for the two-pass assembler: syntax, directives, pseudo
 * instructions, labels, error reporting.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/program.hh"
#include "isa/isa.hh"
#include "sim/logging.hh"

namespace mssp
{
namespace
{

Instruction
instAt(const Program &p, uint32_t addr)
{
    return decode(p.word(addr));
}

TEST(Assembler, BasicRType)
{
    Program p = assemble("add a0, a1, a2\n");
    EXPECT_EQ(p.entry(), DefaultCodeBase);
    Instruction i = instAt(p, DefaultCodeBase);
    EXPECT_EQ(i.op, Opcode::Add);
    EXPECT_EQ(i.rd, reg::A0);
    EXPECT_EQ(i.rs1, reg::A1);
    EXPECT_EQ(i.rs2, reg::A2);
}

TEST(Assembler, NumericRegisterNames)
{
    Program p = assemble("add r5, r6, r7\n");
    Instruction i = instAt(p, DefaultCodeBase);
    EXPECT_EQ(i.rd, 5);
    EXPECT_EQ(i.rs1, 6);
    EXPECT_EQ(i.rs2, 7);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(
        "; leading comment\n"
        "\n"
        "  add a0, a0, a0  # trailing\n"
        "  sub a0, a0, a0  // c++ style\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).op, Opcode::Add);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Sub);
}

TEST(Assembler, LoadStoreSyntax)
{
    Program p = assemble(
        "lw a0, 8(sp)\n"
        "sw a0, -4(sp)\n"
        "lw a1, (sp)\n");
    Instruction lw = instAt(p, DefaultCodeBase);
    EXPECT_EQ(lw.op, Opcode::Lw);
    EXPECT_EQ(lw.rd, reg::A0);
    EXPECT_EQ(lw.rs1, reg::Sp);
    EXPECT_EQ(lw.imm, 8);
    Instruction sw = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(sw.op, Opcode::Sw);
    EXPECT_EQ(sw.rs1, reg::Sp);   // base
    EXPECT_EQ(sw.rs2, reg::A0);   // source
    EXPECT_EQ(sw.imm, -4);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 2).imm, 0);
}

TEST(Assembler, BranchToLabel)
{
    Program p = assemble(
        "loop:\n"
        "  addi t0, t0, -1\n"
        "  bne t0, zero, loop\n");
    Instruction b = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(b.op, Opcode::Bne);
    // Target = loop (base), branch at base+1: offset = base - (base+2)
    EXPECT_EQ(b.imm, -2);
}

TEST(Assembler, ForwardLabel)
{
    Program p = assemble(
        "  beq a0, a1, done\n"
        "  nop\n"
        "done:\n"
        "  halt\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).imm, 1);
}

TEST(Assembler, LabelSharesLine)
{
    Program p = assemble("start: add a0, a0, a0\n");
    uint32_t v = 0;
    ASSERT_TRUE(p.lookupSymbol("start", v));
    EXPECT_EQ(v, DefaultCodeBase);
}

TEST(Assembler, JumpAndCallPseudos)
{
    Program p = assemble(
        "  j fwd\n"
        "  call fwd\n"
        "fwd:\n"
        "  ret\n");
    Instruction j = instAt(p, DefaultCodeBase);
    EXPECT_EQ(j.op, Opcode::Jal);
    EXPECT_EQ(j.rd, reg::Zero);
    EXPECT_EQ(j.imm, 1);
    Instruction call = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(call.rd, reg::Ra);
    EXPECT_EQ(call.imm, 0);
    Instruction ret = instAt(p, DefaultCodeBase + 2);
    EXPECT_EQ(ret.op, Opcode::Jalr);
    EXPECT_EQ(ret.rd, reg::Zero);
    EXPECT_EQ(ret.rs1, reg::Ra);
}

TEST(Assembler, JalOneOperandDefaultsToRa)
{
    Program p = assemble(
        "  jal target\n"
        "target: halt\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).rd, reg::Ra);
}

TEST(Assembler, LiSmallExpandsToAddi)
{
    Program p = assemble("li t0, 42\nhalt\n");
    Instruction i = instAt(p, DefaultCodeBase);
    EXPECT_EQ(i.op, Opcode::Addi);
    EXPECT_EQ(i.rs1, reg::Zero);
    EXPECT_EQ(i.imm, 42);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Halt);
}

TEST(Assembler, LiNegativeOneWord)
{
    Program p = assemble("li t0, -42\nhalt\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).imm, -42);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Halt);
}

TEST(Assembler, LiLargeExpandsToLuiOri)
{
    Program p = assemble("li t0, 0x12345678\nhalt\n");
    Instruction lui = instAt(p, DefaultCodeBase);
    Instruction ori = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(lui.op, Opcode::Lui);
    EXPECT_EQ(static_cast<uint32_t>(lui.imm) & 0xffff, 0x1234u);
    EXPECT_EQ(ori.op, Opcode::Ori);
    EXPECT_EQ(static_cast<uint32_t>(ori.imm) & 0xffff, 0x5678u);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 2).op, Opcode::Halt);
}

TEST(Assembler, LiUpperOnlyIsOneWord)
{
    Program p = assemble("li t0, 0x40000\nhalt\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).op, Opcode::Lui);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Halt);
}

TEST(Assembler, LaAlwaysTwoWords)
{
    Program p = assemble(
        "  la a0, data\n"
        "  halt\n"
        ".org 0x2000\n"
        "data: .word 7\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).op, Opcode::Lui);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Ori);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 2).op, Opcode::Halt);
    EXPECT_EQ(p.word(0x2000), 7u);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(
        ".org 0x3000\n"
        "tab: .word 1, 2, 3\n"
        "buf: .space 4\n"
        "end: .word 0xffffffff\n");
    EXPECT_EQ(p.word(0x3000), 1u);
    EXPECT_EQ(p.word(0x3002), 3u);
    uint32_t v = 0;
    ASSERT_TRUE(p.lookupSymbol("buf", v));
    EXPECT_EQ(v, 0x3003u);
    ASSERT_TRUE(p.lookupSymbol("end", v));
    EXPECT_EQ(v, 0x3007u);
    EXPECT_EQ(p.word(0x3007), 0xffffffffu);
}

TEST(Assembler, WordWithSymbol)
{
    Program p = assemble(
        "start: halt\n"
        ".org 0x2000\n"
        "ptr: .word start\n");
    EXPECT_EQ(p.word(0x2000), DefaultCodeBase);
}

TEST(Assembler, EquConstants)
{
    Program p = assemble(
        ".equ N, 64\n"
        ".equ BASE, 0x2000\n"
        "addi t0, zero, N\n"
        "lw a0, N(sp)\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).imm, 64);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).imm, 64);
}

TEST(Assembler, EntryDirectiveAndStartLabel)
{
    Program p = assemble(
        "  nop\n"
        "main: halt\n"
        ".entry main\n");
    EXPECT_EQ(p.entry(), DefaultCodeBase + 1);

    Program q = assemble(
        "  nop\n"
        "_start: halt\n");
    EXPECT_EQ(q.entry(), DefaultCodeBase + 1);
}

TEST(Assembler, OutAndFork)
{
    Program p = assemble(
        "out a0, 3\n"
        "fork 5\n");
    Instruction o = instAt(p, DefaultCodeBase);
    EXPECT_EQ(o.op, Opcode::Out);
    EXPECT_EQ(o.rs1, reg::A0);
    EXPECT_EQ(o.imm, 3);
    Instruction f = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(f.op, Opcode::Fork);
    EXPECT_EQ(f.imm, 5);
}

TEST(Assembler, SwappedBranchPseudos)
{
    Program p = assemble(
        "x:\n"
        "  bgt a0, a1, x\n"
        "  ble a0, a1, x\n");
    Instruction bgt = instAt(p, DefaultCodeBase);
    EXPECT_EQ(bgt.op, Opcode::Blt);
    EXPECT_EQ(bgt.rs1, reg::A1);   // swapped
    EXPECT_EQ(bgt.rs2, reg::A0);
    Instruction ble = instAt(p, DefaultCodeBase + 1);
    EXPECT_EQ(ble.op, Opcode::Bge);
    EXPECT_EQ(ble.rs1, reg::A1);
}

TEST(Assembler, BeqzBnez)
{
    Program p = assemble(
        "x: beqz a0, x\n"
        "   bnez a1, x\n");
    EXPECT_EQ(instAt(p, DefaultCodeBase).op, Opcode::Beq);
    EXPECT_EQ(instAt(p, DefaultCodeBase).rs2, reg::Zero);
    EXPECT_EQ(instAt(p, DefaultCodeBase + 1).op, Opcode::Bne);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus a0, a1\n"), FatalError);
    EXPECT_THROW(assemble("add a0, a1\n"), FatalError);       // arity
    EXPECT_THROW(assemble("add a0, a1, qq\n"), FatalError);   // bad reg
    EXPECT_THROW(assemble("beq a0, a1, nowhere\n"), FatalError);
    EXPECT_THROW(assemble("lw a0, 99999999(sp)\n"), FatalError);
    EXPECT_THROW(assemble(".space -1\n"), FatalError);
    EXPECT_THROW(assemble(".bogus 1\n"), FatalError);
}

TEST(Assembler, ErrorMessageHasLineNumber)
{
    try {
        assemble("nop\nnop\nbogus x\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Semantic translation-validation tests: honest distilled images
 * classify cleanly over every registry workload, and a seeded
 * corruption suite — flipped branch directions, corrupted fold
 * constants, stale value-spec words, fake dead-code and
 * unreachable-block claims, broken region metadata, non-silent store
 * elisions, and direct image patches — is flagged Risky or rejected
 * in every case.
 */

#include <gtest/gtest.h>

#include "analysis/absint.hh"
#include "analysis/verifier.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "helpers.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

using analysis::EditRisk;
using analysis::LintCheck;
using analysis::SemanticResult;
using analysis::Severity;
using analysis::verifyDistilledSemantic;

constexpr double kTestScale = 0.15;

size_t
countOf(const analysis::LintReport &rep, LintCheck check)
{
    size_t n = 0;
    for (const auto &f : rep.findings)
        n += f.check == check;
    return n;
}

size_t
errorsOf(const analysis::LintReport &rep, LintCheck check)
{
    size_t n = 0;
    for (const auto &f : rep.findings) {
        n += f.check == check && f.severity == Severity::Error;
    }
    return n;
}

/** The verdict for the edit at log position @p index. */
const analysis::EditVerdict &
verdictAt(const SemanticResult &sem, size_t index)
{
    for (const auto &v : sem.semantic.verdicts) {
        if (v.index == index)
            return v;
    }
    ADD_FAILURE() << "no verdict for edit " << index;
    static analysis::EditVerdict none;
    return none;
}

/** A prepared micro workload the corruption tests mutate. */
PreparedWorkload
preparedLoop()
{
    return prepare(test::biasedSumSource(96, 1),
                   test::biasedSumSource(96, 2),
                   DistillerOptions::paperPreset());
}

/** Build a fake edit with *correct* region/live-out metadata, so only
 *  the semantic claim under test is at fault. */
DistillEdit
fakeEdit(const Program &orig, DistillEdit::Pass pass, uint32_t pc,
         uint8_t reg, bool has_value, uint32_t value)
{
    Cfg cfg = Cfg::build(orig, orig.entry());
    auto live = computeLiveness(cfg);
    const BasicBlock *bb = analysis::containingBlock(cfg, pc);
    EXPECT_NE(bb, nullptr) << "fake edit pc outside all blocks";
    DistillEdit e;
    e.pass = pass;
    e.origPc = pc;
    e.reg = reg;
    e.hasValue = has_value;
    e.value = value;
    if (bb) {
        e.regionStart = bb->start;
        e.liveOut = live.at(bb->start).liveOut;
    }
    return e;
}

/** Source with a never-written constant-address load and a provably
 *  non-silent constant store, for the fake-edit corruption tests. */
std::string
constAddrSource()
{
    return "    la t0, data\n"
           "theload:\n"
           "    lw s1, 0(t0)\n"
           "    li t1, 9\n"
           "    la t2, cell\n"
           "thestore:\n"
           "    sw t1, 0(t2)\n"
           "    li s0, 0\n"
           "loop:\n"
           "    add t3, s0, s1\n"
           "    addi s0, s0, 1\n"
           "    li t4, 20\n"
           "    blt s0, t4, loop\n"
           "    out t3, 1\n"
           "    halt\n"
           ".org 0x8000\n"
           "data: .word 1234\n"
           "cell: .word 0\n";
}

/** Source whose entry block const-folds `add` into a live-out loadimm
 *  (the fold constant crosses a block boundary, so the region
 *  comparison sees it). */
std::string
foldableSource()
{
    return "    li t0, 10\n"
           "    li t1, 3\n"
           "    add t2, t0, t1\n"
           "    jal zero, next\n"
           "next:\n"
           "    out t2, 1\n"
           "    halt\n";
}

} // anonymous namespace

// -- Honest images classify cleanly -------------------------------------

class SemanticWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SemanticWorkloads, EveryEditClassifiedNoErrors)
{
    Workload w = workloadByName(GetParam(), kTestScale);
    PreparedWorkload p = prepare(w.refSource, w.trainSource,
                                 DistillerOptions::paperPreset());
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);

    // One verdict per recorded edit, each with a justification.
    ASSERT_EQ(sem.semantic.verdicts.size(),
              p.dist.report.edits.size());
    EXPECT_EQ(sem.semantic.proven() + sem.semantic.risky() +
                  sem.semantic.unknown(),
              sem.semantic.verdicts.size());
    for (const auto &v : sem.semantic.verdicts)
        EXPECT_FALSE(v.detail.empty()) << "edit " << v.index;

    // An honest distillation never trips an error-severity semantic
    // finding (risky approximate edits only warn — MSSP recovers).
    EXPECT_EQ(sem.lint.errors(), 0u) << sem.lint.toText();
}

INSTANTIATE_TEST_SUITE_P(
    All, SemanticWorkloads,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const auto &info) { return info.param; });

TEST(Semantic, SurvivesObjfileRoundTrip)
{
    PreparedWorkload p = preparedLoop();
    DistilledProgram reloaded = loadDistilled(saveDistilled(p.dist));
    SemanticResult a = verifyDistilledSemantic(p.orig, p.dist);
    SemanticResult b = verifyDistilledSemantic(p.orig, reloaded);
    ASSERT_EQ(a.semantic.verdicts.size(), b.semantic.verdicts.size());
    for (size_t i = 0; i < a.semantic.verdicts.size(); ++i) {
        EXPECT_EQ(a.semantic.verdicts[i].risk,
                  b.semantic.verdicts[i].risk);
    }
    EXPECT_EQ(b.lint.errors(), 0u) << b.lint.toText();
}

TEST(Semantic, ProvenConstFoldAcrossBlocks)
{
    PreparedWorkload p = prepare(foldableSource(), foldableSource(),
                                 DistillerOptions::paperPreset());
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    EXPECT_EQ(sem.lint.errors(), 0u) << sem.lint.toText();

    bool found = false;
    for (const auto &v : sem.semantic.verdicts) {
        if (v.edit.pass == DistillEdit::Pass::ConstFold &&
            v.edit.reg == reg::T2) {
            found = true;
            EXPECT_EQ(v.risk, EditRisk::Proven) << v.detail;
            EXPECT_EQ(v.edit.value, 13u);
        }
    }
    EXPECT_TRUE(found) << "distiller recorded no const-fold of t2";
}

// -- Corruption class 1: flipped branch direction -----------------------

TEST(SemanticCorruption, FlippedBranchDirectionIsRejected)
{
    Workload w = workloadByName("gzip", kTestScale);
    PreparedWorkload p = prepare(w.refSource, w.trainSource,
                                 DistillerOptions::paperPreset());
    size_t idx = SIZE_MAX;
    for (size_t i = 0; i < p.dist.report.edits.size(); ++i) {
        const DistillEdit &e = p.dist.report.edits[i];
        if (e.pass == DistillEdit::Pass::BranchPrune ||
            (e.pass == DistillEdit::Pass::ConstFold && e.reg == 0)) {
            idx = i;
            break;
        }
    }
    ASSERT_NE(idx, SIZE_MAX) << "no branch edit to corrupt";

    p.dist.report.edits[idx].value ^= 1;
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    // The image transfers to the *original* direction's target, so
    // the flipped claim cannot survive the metadata cross-check.
    EXPECT_GT(sem.lint.errors(), 0u) << sem.lint.toText();
    EXPECT_GE(errorsOf(sem.lint, LintCheck::EditMetadata), 1u);
    EXPECT_NE(verdictAt(sem, idx).risk, EditRisk::Proven);
}

// -- Corruption class 2: corrupted fold constant ------------------------

TEST(SemanticCorruption, CorruptedConstFoldValueIsAnError)
{
    PreparedWorkload p = prepare(foldableSource(), foldableSource(),
                                 DistillerOptions::paperPreset());
    size_t idx = SIZE_MAX;
    for (size_t i = 0; i < p.dist.report.edits.size(); ++i) {
        const DistillEdit &e = p.dist.report.edits[i];
        if (e.pass == DistillEdit::Pass::ConstFold && e.reg != 0) {
            idx = i;
            break;
        }
    }
    ASSERT_NE(idx, SIZE_MAX) << "no register const-fold to corrupt";

    p.dist.report.edits[idx].value += 1;
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    const auto &v = verdictAt(sem, idx);
    EXPECT_EQ(v.risk, EditRisk::Risky) << v.detail;
    EXPECT_GE(errorsOf(sem.lint, LintCheck::SemanticConst), 1u)
        << sem.lint.toText();
}

// -- Corruption class 3: stale value-spec constant ----------------------

TEST(SemanticCorruption, StaleValueSpecConstantIsRisky)
{
    PreparedWorkload p =
        prepare(constAddrSource(), constAddrSource(),
                DistillerOptions::paperPreset());
    uint32_t pc = p.orig.symbols().at("theload");
    // Claim the load always yields 1235; the never-written image word
    // holds 1234, so the claim is provably stale.
    p.dist.report.edits.push_back(fakeEdit(
        p.orig, DistillEdit::Pass::ValueSpec, pc, reg::S1, true,
        1235));
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    const auto &v =
        verdictAt(sem, p.dist.report.edits.size() - 1);
    EXPECT_EQ(v.risk, EditRisk::Risky) << v.detail;
    EXPECT_NE(v.detail.find("stale"), std::string::npos) << v.detail;
    EXPECT_GE(countOf(sem.lint, LintCheck::SemanticLoad), 1u);
}

// -- Corruption class 4: fake dead-code claim ---------------------------

TEST(SemanticCorruption, FakeDceOfLiveRegisterIsAnError)
{
    PreparedWorkload p = preparedLoop();
    // loop+2 is `add s3, s3, t1`; s3 is demanded by the final `out`.
    uint32_t pc = p.orig.symbols().at("loop") + 2;
    p.dist.report.edits.push_back(fakeEdit(
        p.orig, DistillEdit::Pass::Dce, pc, reg::S3, false, 0));
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    const auto &v =
        verdictAt(sem, p.dist.report.edits.size() - 1);
    EXPECT_EQ(v.risk, EditRisk::Risky) << v.detail;
    EXPECT_GE(errorsOf(sem.lint, LintCheck::SemanticLiveOut), 1u)
        << sem.lint.toText();
}

// -- Corruption class 5: fake unreachable-block claim -------------------

TEST(SemanticCorruption, FakeUnreachableElimOfLiveBlockIsAnError)
{
    PreparedWorkload p = preparedLoop();
    uint32_t pc = p.orig.symbols().at("loop");
    p.dist.report.edits.push_back(
        fakeEdit(p.orig, DistillEdit::Pass::UnreachableElim, pc, 0,
                 false, 0));
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    const auto &v =
        verdictAt(sem, p.dist.report.edits.size() - 1);
    EXPECT_EQ(v.risk, EditRisk::Risky) << v.detail;
    // The finding carries a concrete counterexample path.
    EXPECT_NE(v.detail.find("reachable"), std::string::npos);
    EXPECT_GE(errorsOf(sem.lint, LintCheck::SemanticUnreachable), 1u)
        << sem.lint.toText();
}

// -- Corruption class 6: broken region metadata -------------------------

TEST(SemanticCorruption, WrongRegionStartIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.report.edits.empty());
    p.dist.report.edits[0].regionStart += 1;
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    EXPECT_GE(errorsOf(sem.lint, LintCheck::EditMetadata), 1u)
        << sem.lint.toText();
}

TEST(SemanticCorruption, WrongLiveOutMaskIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.report.edits.empty());
    p.dist.report.edits[0].liveOut ^= 1u << reg::S9;
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    EXPECT_GE(errorsOf(sem.lint, LintCheck::EditMetadata), 1u)
        << sem.lint.toText();
}

// -- Corruption class 7: fake silent-store claim ------------------------

TEST(SemanticCorruption, ProvablyNonSilentStoreElisionIsRisky)
{
    PreparedWorkload p =
        prepare(constAddrSource(), constAddrSource(),
                DistillerOptions::paperPreset());
    uint32_t pc = p.orig.symbols().at("thestore");
    // The store always writes 9 over an image word holding 0.
    p.dist.report.edits.push_back(
        fakeEdit(p.orig, DistillEdit::Pass::SilentStoreElim, pc, 0,
                 false, 0));
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    const auto &v =
        verdictAt(sem, p.dist.report.edits.size() - 1);
    EXPECT_EQ(v.risk, EditRisk::Risky) << v.detail;
    EXPECT_NE(v.detail.find("not silent"), std::string::npos)
        << v.detail;
    EXPECT_GE(countOf(sem.lint, LintCheck::SemanticStore), 1u);
}

// -- Corruption class 8: image patched behind the edit log --------------

TEST(SemanticCorruption, PatchedFoldConstantInImageIsAnError)
{
    PreparedWorkload p = prepare(foldableSource(), foldableSource(),
                                 DistillerOptions::paperPreset());
    // Locate the loadimm the proven t2 const-fold emitted and bake a
    // *different* constant into the distilled image, leaving the edit
    // log untouched — only the end-to-end region comparison can
    // catch this.
    uint32_t patched_pc = UINT32_MAX;
    for (const auto &[addr, word] : p.dist.prog.image()) {
        Instruction inst = decode(word);
        if (inst.op == Opcode::Addi && inst.rd == reg::T2 &&
            inst.rs1 == reg::Zero && inst.imm == 13) {
            patched_pc = addr;
            break;
        }
    }
    ASSERT_NE(patched_pc, UINT32_MAX)
        << "no loadimm for the folded constant in the image";
    p.dist.prog.setWord(
        patched_pc, encode(makeI(Opcode::Addi, reg::T2, reg::Zero,
                                 14)));

    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    EXPECT_GE(errorsOf(sem.lint, LintCheck::SemanticLiveOut), 1u)
        << sem.lint.toText();
}

// -- Reporting ----------------------------------------------------------

TEST(Semantic, JsonCarriesPerEditRisk)
{
    PreparedWorkload p = preparedLoop();
    SemanticResult sem = verifyDistilledSemantic(p.orig, p.dist);
    ASSERT_FALSE(sem.semantic.verdicts.empty());

    std::string json = sem.toJson();
    EXPECT_NE(json.find("\"edits\": ["), std::string::npos);
    EXPECT_NE(json.find("\"risk\": \""), std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);

    std::string text = sem.semantic.toText();
    EXPECT_NE(text.find("proven"), std::string::npos);
    EXPECT_NE(text.find(strfmt("%zu edit(s)",
                               sem.semantic.verdicts.size())),
              std::string::npos);
}

} // namespace mssp

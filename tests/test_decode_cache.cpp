/**
 * @file
 * DecodeCache correctness: unit tests for the page cache itself, and
 * the differential test required by the predecode design — the cached,
 * devirtualized execution path must be bit-identical to the reference
 * stepAt path (decode-on-every-fetch through virtual dispatch) on
 * every registry workload, step by step and in final state.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/arch_state.hh"
#include "asm/assembler.hh"
#include "exec/decode_cache.hh"
#include "exec/executor.hh"
#include "exec/seq_machine.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

TEST(DecodeCache, MatchesDecodeOfFetchedWords)
{
    Program prog = assemble(
        "    li t0, 5\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        ".org 0x300\n"          // second page (PageWords == 256)
        "far: .word 0x12345678\n");
    DecodeCache dc(prog);
    ArchState st;
    st.loadProgram(prog);
    for (uint32_t pc = 0; pc < 0x400; ++pc)
        EXPECT_TRUE(dc.at(pc) == decode(st.readMem(pc))) << "pc=" << pc;
    // Pages decode lazily: the sweep touched exactly four pages.
    EXPECT_EQ(dc.numPages(), 4u);
}

TEST(DecodeCache, UnmappedWordsDecodeIllegal)
{
    Program prog = assemble("halt\n");
    DecodeCache dc(prog);
    EXPECT_EQ(dc.at(0x12345).op, Opcode::Illegal);
    EXPECT_TRUE(dc.at(0x12345) == decode(0));
}

TEST(DecodeCache, MemorySourceAgreesWithProgramSource)
{
    Program prog = assemble(
        "    li t0, 1\n"
        "    add t1, t0, t0\n"
        "    halt\n"
        ".org 0x500\n"
        ".word 1, 2, 3\n");
    ArchState st;
    st.loadProgram(prog);
    DecodeCache from_prog(prog);
    DecodeCache from_mem(st.mem());
    for (uint32_t pc = 0; pc < 0x600; ++pc)
        EXPECT_TRUE(from_prog.at(pc) == from_mem.at(pc)) << "pc=" << pc;
}

/** Step-by-step equality of one StepResult pair. */
::testing::AssertionResult
sameStep(const StepResult &a, const StepResult &b)
{
    if (a.status != b.status)
        return ::testing::AssertionFailure() << "status differs";
    if (a.nextPc != b.nextPc)
        return ::testing::AssertionFailure()
               << "nextPc " << a.nextPc << " vs " << b.nextPc;
    if (!(a.inst == b.inst))
        return ::testing::AssertionFailure() << "decoded inst differs";
    if (a.branchTaken != b.branchTaken)
        return ::testing::AssertionFailure() << "branchTaken differs";
    return ::testing::AssertionSuccess();
}

/** Cached/devirtualized vs reference stepAt, over a whole program. */
class DecodeCacheDifferential
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(DecodeCacheDifferential, BitIdenticalToStepAt)
{
    Workload w = workloadByName(GetParam(), 0.1);
    Program prog = assemble(w.refSource);

    // Cached path: SeqMachine::step() goes through the predecode
    // cache and the devirtualized executeDecodedOn<SeqMachine>.
    SeqMachine cached(prog);
    // Reference path: the same machine type driven through stepAt
    // (decode(fetch(pc)) + virtual ExecContext dispatch).
    SeqMachine refm(prog);
    ExecContext &ref_ctx = refm;

    uint32_t ref_pc = refm.state().pc();
    constexpr uint64_t kCap = 5000000;
    uint64_t steps = 0;
    for (; steps < kCap; ++steps) {
        StepResult a = cached.step();
        StepResult b = stepAt(ref_pc, ref_ctx);
        ASSERT_TRUE(sameStep(a, b)) << w.name << " step " << steps
                                    << " pc " << ref_pc;
        if (b.status != StepStatus::Ok)
            break;
        ref_pc = b.nextPc;
        refm.state().setPc(ref_pc);
    }
    ASSERT_LT(steps, kCap) << w.name << " did not terminate";
    EXPECT_TRUE(cached.halted()) << w.name;

    // Final architected state and outputs are identical too.
    EXPECT_EQ(cached.state().regs(), refm.state().regs()) << w.name;
    EXPECT_EQ(cached.state().mem().nonzeroWords(),
              refm.state().mem().nonzeroWords()) << w.name;
    EXPECT_EQ(cached.outputs(), refm.outputs()) << w.name;
    EXPECT_EQ(cached.state().pc(), ref_pc) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DecodeCacheDifferential,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const auto &info) { return info.param; });

} // anonymous namespace
} // namespace mssp

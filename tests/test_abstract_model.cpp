/**
 * @file
 * Machine-checking the companion paper's lemmas on the executable
 * abstract model (src/formal): Lemma 2 (task evolution = seq),
 * Definition 6/Theorem 2 (consistency + completeness => safety),
 * Lemma 1/Theorem 1 (safe task sets commit to seq(S, #τ) in *any*
 * safe order; poor orders only lose work, never correctness), and the
 * jumping-refinement reading of commits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "asm/assembler.hh"
#include "exec/seq_machine.hh"
#include "formal/abstract_model.hh"
#include "sim/rng.hh"

namespace mssp::formal
{
namespace
{

/** Full machine state (all regs + nonzero memory + pc) of an arch. */
State
fullState(const ArchState &arch)
{
    State s;
    for (unsigned r = 1; r < NumRegs; ++r)
        s.set(makeRegCell(r), arch.readReg(r));
    for (const auto &[addr, value] : arch.mem().nonzeroWords())
        s.set(makeMemCell(addr), value);
    s.set(PcCell, arch.pc());
    return s;
}

/** Assemble + load, returning the initial full state. */
State
initialState(const std::string &src)
{
    Program p = assemble(src);
    ArchState arch;
    arch.loadProgram(p);
    return fullState(arch);
}

const char *kProgram =
    "    li t0, 12\n"
    "    li s0, 0\n"
    "loop:\n"
    "    add s0, s0, t0\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    out s0, 1\n"
    "    halt\n";

TEST(AbstractModel, SeqMatchesConcreteMachine)
{
    Program p = assemble(kProgram);
    State s0 = initialState(kProgram);

    auto s5 = seq(s0, 5);
    ASSERT_TRUE(s5.has_value());

    SeqMachine machine(p);
    machine.run(5);
    EXPECT_EQ(s5->get(PcCell).value(), machine.state().pc());
    EXPECT_EQ(s5->get(makeRegCell(reg::T0)).value(),
              machine.state().readReg(reg::T0));
    EXPECT_EQ(s5->get(makeRegCell(reg::S0)).value(),
              machine.state().readReg(reg::S0));
}

TEST(AbstractModel, SeqZeroIsIdentity)
{
    State s0 = initialState(kProgram);
    auto s = seq(s0, 0);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, s0);
}

TEST(AbstractModel, SeqComposes)
{
    // seq(seq(S, a), b) == seq(S, a+b).
    State s0 = initialState(kProgram);
    auto left = seq(*seq(s0, 7), 9);
    auto right = seq(s0, 16);
    ASSERT_TRUE(left && right);
    EXPECT_EQ(*left, *right);
}

TEST(AbstractModel, IncompleteStateIsDetected)
{
    // A state missing the PC's instruction cell is not 1-complete.
    State s;
    s.set(PcCell, 0x1000);
    EXPECT_FALSE(seq(s, 1).has_value());

    // Missing a source register is detected too.
    Program p = assemble("add t0, s5, s6\nhalt\n");
    State s2;
    s2.set(PcCell, p.entry());
    s2.set(makeMemCell(p.entry()), p.word(p.entry()));
    s2.set(makeMemCell(p.entry() + 1), p.word(p.entry() + 1));
    s2.set(makeRegCell(reg::S5), 1);
    // s6 unbound:
    EXPECT_FALSE(seq(s2, 1).has_value());
    s2.set(makeRegCell(reg::S6), 2);
    EXPECT_TRUE(seq(s2, 1).has_value());
}

TEST(AbstractModel, Lemma2_EvolutionEqualsSeq)
{
    State s0 = initialState(kProgram);
    AbstractTask t;
    t.in = s0;
    t.out = s0;     // newly created: <S_in, n, S_in, 0>
    t.n = 10;
    ASSERT_TRUE(evolveToCompletion(t));
    EXPECT_EQ(t.k, 10u);
    auto expected = seq(s0, 10);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(t.out, *expected);   // live_out = seq(live_in, #t)
}

TEST(AbstractModel, Theorem2_ConsistencyAndCompletenessImplySafety)
{
    // Build a task from a *partial* live-in set: the full state is a
    // superset (t.in ⊑ S), and t.in is n-complete by construction.
    State s_full = initialState(kProgram);
    AbstractTask t;
    t.in = s_full;   // (the paper allows S_in ⊆ S; equality is ⊑ too)
    t.out = t.in;
    t.n = 8;
    ASSERT_TRUE(evolveToCompletion(t));

    ASSERT_TRUE(consistentAndComplete(t, s_full));
    EXPECT_TRUE(isSafe(t, s_full));
}

TEST(AbstractModel, StaleLiveInsAreUnsafe)
{
    // Advance into the loop so t0 is live, then corrupt it: a task
    // evolved from the inconsistent state must be unsafe.
    State s_mid = *seq(initialState(kProgram), 3);
    State wrong = s_mid;
    wrong.set(makeRegCell(reg::T0), 999);
    AbstractTask t;
    t.in = wrong;
    t.out = wrong;
    t.n = 6;
    ASSERT_TRUE(evolveToCompletion(t));
    EXPECT_FALSE(t.in.consistentWith(s_mid));
    EXPECT_FALSE(isSafe(t, s_mid));
}

/** Build a chain of tasks covering [0, k*n) instructions. */
std::vector<AbstractTask>
taskChain(const State &s0, unsigned count, uint64_t n)
{
    std::vector<AbstractTask> tasks;
    State cur = s0;
    for (unsigned i = 0; i < count; ++i) {
        AbstractTask t;
        t.in = cur;
        t.out = cur;
        t.n = n;
        EXPECT_TRUE(evolveToCompletion(t));
        cur = t.out;
        tasks.push_back(std::move(t));
    }
    return tasks;
}

TEST(AbstractModel, Lemma1_SafeChainCommitsInOrder)
{
    State s0 = initialState(kProgram);
    auto tasks = taskChain(s0, 4, 6);
    std::vector<size_t> order = {0, 1, 2, 3};
    size_t committed = 0;
    State final_state = msspRun(s0, tasks, order, &committed);
    EXPECT_EQ(committed, 4u);
    auto expected = seq(s0, 24);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(final_state, *expected);
}

TEST(AbstractModel, Theorem1_AnyOrderIsCorrectButMayLoseWork)
{
    // Every permutation of the commit order yields a state on the
    // sequential trajectory; in-order commits everything, while a
    // poor order discards the tasks it orphaned.
    State s0 = initialState(kProgram);
    const unsigned count = 4;
    const uint64_t n = 5;
    auto tasks = taskChain(s0, count, n);

    // All sequential prefixes: seq(s0, 0), seq(s0, n), ...
    std::vector<State> prefixes;
    for (unsigned i = 0; i <= count; ++i)
        prefixes.push_back(*seq(s0, i * n));

    std::vector<size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    bool some_order_loses_work = false;
    do {
        size_t committed = 0;
        State final_state = msspRun(s0, tasks, order, &committed);
        // Correctness for *every* order: the result lies on the
        // sequential trajectory, exactly committed*n insts along.
        EXPECT_EQ(final_state, prefixes.at(committed));
        // In-order commits everything.
        if (std::is_sorted(order.begin(), order.end())) {
            EXPECT_EQ(committed, count);
        }
        if (committed < count)
            some_order_loses_work = true;
    } while (std::next_permutation(order.begin(), order.end()));
    // Efficiency, not correctness, depends on the order (Section 4.3).
    EXPECT_TRUE(some_order_loses_work);
}

TEST(AbstractModel, OutOfOrderCommitCountIsPrefixLength)
{
    // Make the prefix property exact: with commit order starting at
    // task j != 0, tasks 0..j-1 may still commit later iff they come
    // in relative order before state advances past them. For a chain,
    // the committed count equals the length of the longest prefix of
    // the *task* sequence that appears as a subsequence in commit
    // order before any later task... simplest exact oracle: replay.
    State s0 = initialState(kProgram);
    const unsigned count = 3;
    const uint64_t n = 4;
    auto tasks = taskChain(s0, count, n);

    std::vector<size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    do {
        size_t committed = 0;
        State final_state = msspRun(s0, tasks, order, &committed);

        // Oracle: simulate the same discipline directly.
        size_t expect = 0;
        {
            State s = s0;
            for (size_t idx : order) {
                if (tasks[idx].in.consistentWith(s) &&
                    isSafe(tasks[idx], s)) {
                    s = StateDelta::superimposed(s, tasks[idx].out);
                    ++expect;
                }
            }
            EXPECT_EQ(final_state, s);
        }
        EXPECT_EQ(committed, expect);
        // Correctness: the final state is always on the seq
        // trajectory.
        EXPECT_EQ(final_state, *seq(s0, committed * n));
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(AbstractModel, HaltIsAFixedPoint)
{
    State s0 = initialState("halt\n");
    auto s1 = seq(s0, 1);
    auto s9 = seq(s0, 9);
    ASSERT_TRUE(s1 && s9);
    EXPECT_EQ(*s1, *s9);
    EXPECT_EQ(*s1, s0);   // halt changes nothing
}

} // anonymous namespace
} // namespace mssp::formal

/**
 * @file
 * Unit tests for the speculation-safety classifier
 * (analysis/specsafe.hh): the three-way load lattice, interval
 * overlap corner cases, fork-region reasoning, 100% coverage of
 * static loads, the persisted-metadata validation checks, and the
 * dynamic ProvablyInvariant value-change gate
 * (eval/crossval.hh validateSpecSafeDynamic).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/specsafe.hh"
#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "eval/crossval.hh"
#include "helpers.hh"
#include "profile/profiler.hh"

namespace mssp
{
namespace
{

using analysis::LoadClassification;
using analysis::SpecSafeReport;
using analysis::analyzeSpecSafe;
using analysis::classifySpecLoads;

/** Distill with explicit fork sites and all approximating branch
 *  rewrites disabled (biasThreshold > 1 means no branch is ever
 *  biased enough), so the distilled code keeps the test's CFG. */
DistilledProgram
distillExact(const Program &prog, std::vector<uint32_t> sites = {})
{
    ProfileData prof = profileProgram(prog, 1000000);
    DistillerOptions opts;
    opts.biasThreshold = 2.0;
    opts.explicitForkSites = std::move(sites);
    return distill(prog, prof, opts);
}

/** The classification of the (unique) load whose abstract address is
 *  the constant @p addr. */
const LoadClassification *
loadAt(const std::vector<LoadClassification> &loads, uint32_t addr)
{
    for (const LoadClassification &c : loads) {
        if (c.addr.isConst() && c.addr.cval() == addr)
            return &c;
    }
    return nullptr;
}

} // anonymous namespace

TEST(SpecSafe, LoadWithNoAliasingStoreIsProvablyInvariant)
{
    Program prog = assemble("    la t0, cell\n"
                            "    lw t1, 0(t0)\n"
                            "    out t1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "cell: .word 7\n");
    DistilledProgram dist = distillExact(prog);
    auto loads = classifySpecLoads(prog, dist);
    const LoadClassification *c = loadAt(loads, 0x2000);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->cls, LoadSpecClass::ProvablyInvariant);
    EXPECT_EQ(c->storePc, UINT32_MAX);
}

TEST(SpecSafe, KnownAliasingStoreInSharedRegionIsRisky)
{
    // The store and load sit in the same fork region and the store's
    // abstract address equals the load's: the classifier must flag
    // the load and name the interfering store.
    Program prog = assemble("    la t0, cell\n"
                            "    li t2, 9\n"
                            "    sw t2, 0(t0)\n"
                            "    lw t1, 0(t0)\n"
                            "    out t1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "cell: .word 7\n");
    DistilledProgram dist = distillExact(prog);
    auto loads = classifySpecLoads(prog, dist);
    const LoadClassification *c = loadAt(loads, 0x2000);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->cls, LoadSpecClass::Risky);
    // The counterexample names the store and its address interval.
    ASSERT_NE(c->storePc, UINT32_MAX);
    EXPECT_GE(c->storePc, DistilledCodeBase);
    EXPECT_TRUE(c->storeAddr.contains(0x2000)) << c->detail;
}

TEST(SpecSafe, OffByOneIntervalOverlap)
{
    // The store's abstract address joins to the interval
    // [data+1, data+2] (a3 is unknown at entry, so both branch arms
    // survive). The load at data is one word below the interval —
    // provably disjoint; the load at data+1 touches its low edge —
    // risky. An off-by-one in the overlap test flips one of them.
    Program prog = assemble("    la s0, data\n"
                            "    li t0, 2\n"
                            "    bnez a3, store\n"
                            "    li t0, 1\n"
                            "store:\n"
                            "    add t1, s0, t0\n"
                            "    li t2, 5\n"
                            "    sw t2, 0(t1)\n"
                            "    lw t3, 0(s0)\n"
                            "    lw t4, 1(s0)\n"
                            "    out t3, 1\n"
                            "    out t4, 2\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "data: .word 11, 22, 33, 44\n");
    DistilledProgram dist = distillExact(prog);
    auto loads = classifySpecLoads(prog, dist);

    const LoadClassification *below = loadAt(loads, 0x2000);
    ASSERT_NE(below, nullptr);
    EXPECT_EQ(below->cls, LoadSpecClass::ProvablyInvariant)
        << below->detail;

    const LoadClassification *edge = loadAt(loads, 0x2001);
    ASSERT_NE(edge, nullptr);
    EXPECT_EQ(edge->cls, LoadSpecClass::Risky) << edge->detail;
    ASSERT_NE(edge->storePc, UINT32_MAX);
    EXPECT_TRUE(edge->storeAddr.contains(0x2001));
}

TEST(SpecSafe, CrossForkStoreIsRegionInvariant)
{
    // The load runs in the first fork region, the store in the
    // second; they alias statically but can never share a dynamic
    // inter-fork span, so the load is region-invariant, not risky.
    Program prog = assemble("    li s0, 0\n"
                            "    li s1, 0\n"
                            "    la s2, data\n"
                            "loopA:\n"
                            "    lw t1, 0(s2)\n"
                            "    add s1, s1, t1\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 50\n"
                            "    blt s0, t3, loopA\n"
                            "    li s0, 0\n"
                            "loopB:\n"
                            "    li t2, 7\n"
                            "    sw t2, 0(s2)\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 50\n"
                            "    blt s0, t3, loopB\n"
                            "    out s1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "data: .word 5\n");
    uint32_t loop_b = 0;
    ASSERT_TRUE(prog.lookupSymbol("loopB", loop_b));
    DistilledProgram dist = distillExact(prog, {loop_b});
    auto loads = classifySpecLoads(prog, dist);
    const LoadClassification *c = loadAt(loads, 0x2000);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->cls, LoadSpecClass::RegionInvariant) << c->detail;
    ASSERT_NE(c->storePc, UINT32_MAX);
    EXPECT_TRUE(c->storeAddr.contains(0x2000));
}

TEST(SpecSafe, EveryStaticLoadIsClassified)
{
    // 100% coverage by construction: every Lw word in the distilled
    // image carries exactly one classification.
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    auto loads = classifySpecLoads(w.orig, w.dist);
    size_t static_loads = 0;
    for (const auto &[addr, word] : w.dist.prog.image()) {
        if (!isLoad(decode(word).op))
            continue;
        ++static_loads;
        EXPECT_TRUE(std::any_of(loads.begin(), loads.end(),
                                [a = addr](const auto &c) {
                                    return c.pc == a;
                                }))
            << strfmt("load at 0x%x unclassified", addr);
    }
    EXPECT_EQ(loads.size(), static_loads);
    EXPECT_GT(static_loads, 0u);
}

TEST(SpecSafe, FreshDistillationValidatesClean)
{
    // distill() stamps the classes it computed; re-validation of an
    // untampered image finds nothing.
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    EXPECT_FALSE(w.dist.loadClasses.empty());
    SpecSafeReport rep = analyzeSpecSafe(w.orig, w.dist);
    EXPECT_EQ(rep.lint.errors(), 0u) << rep.lint.toText();
}

TEST(SpecSafe, TamperedClassIsAMismatchError)
{
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    ASSERT_FALSE(w.dist.loadClasses.empty());
    auto it = w.dist.loadClasses.begin();
    it->second = it->second == LoadSpecClass::Risky
                     ? LoadSpecClass::ProvablyInvariant
                     : LoadSpecClass::Risky;
    SpecSafeReport rep = analyzeSpecSafe(w.orig, w.dist);
    EXPECT_GT(rep.lint.errors(), 0u);
    EXPECT_TRUE(std::any_of(
        rep.lint.findings.begin(), rep.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check == analysis::LintCheck::SpecSafeMismatch;
        }))
        << rep.lint.toText();
}

TEST(SpecSafe, MissingAndStaleMetadataAreCoverageErrors)
{
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    ASSERT_FALSE(w.dist.loadClasses.empty());

    // A load whose classification was dropped from the image.
    DistilledProgram missing = w.dist;
    missing.loadClasses.erase(missing.loadClasses.begin());
    SpecSafeReport rep1 = analyzeSpecSafe(w.orig, missing);
    EXPECT_TRUE(std::any_of(
        rep1.lint.findings.begin(), rep1.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check == analysis::LintCheck::SpecSafeCoverage;
        }))
        << rep1.lint.toText();

    // A classification for a pc where no load exists.
    DistilledProgram stale = w.dist;
    stale.loadClasses[0x7ffffffc] = LoadSpecClass::Risky;
    SpecSafeReport rep2 = analyzeSpecSafe(w.orig, stale);
    EXPECT_TRUE(std::any_of(
        rep2.lint.findings.begin(), rep2.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check == analysis::LintCheck::SpecSafeCoverage &&
                   f.pc == 0x7ffffffc;
        }))
        << rep2.lint.toText();
}

TEST(SpecSafe, JsonReportIsDeterministicAndVersioned)
{
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    SpecSafeReport rep = analyzeSpecSafe(w.orig, w.dist);
    std::string a = rep.toJson("x");
    std::string b = analyzeSpecSafe(w.orig, w.dist).toJson("x");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"mssp-specsafe-v1\""),
              std::string::npos);
    EXPECT_NE(a.find("\"workload\": \"x\""), std::string::npos);
}

TEST(SpecSafeDynamic, ProvablyInvariantLoadsNeverChangeValue)
{
    Program prog = assemble(test::biasedSumSource(150, 3));
    PreparedWorkload w = prepare(prog, prog,
                                 DistillerOptions::paperPreset());
    auto loads = classifySpecLoads(w.orig, w.dist);
    SpecSafeDynamicResult dyn =
        validateSpecSafeDynamic(w.orig, w.dist, loads);
    EXPECT_EQ(dyn.valueChanges, 0u) << dyn.firstViolation;
}

TEST(SpecSafeDynamic, FalsePromotionIsCaughtAtRuntime)
{
    // A load that reads a counter its own loop increments is Risky;
    // hand-promote it to ProvablyInvariant and the dynamic gate must
    // observe the value changing.
    Program prog = assemble("    la s2, cell\n"
                            "    li s0, 0\n"
                            "loop:\n"
                            "    lw t1, 0(s2)\n"
                            "    addi t1, t1, 1\n"
                            "    sw t1, 0(s2)\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 10\n"
                            "    blt s0, t3, loop\n"
                            "    out t1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "cell: .word 0\n");
    DistilledProgram dist = distillExact(prog);
    auto loads = classifySpecLoads(prog, dist);
    LoadClassification *counter = nullptr;
    for (LoadClassification &c : loads) {
        if (c.addr.isConst() && c.addr.cval() == 0x2000)
            counter = &c;
    }
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->cls, LoadSpecClass::Risky);

    counter->cls = LoadSpecClass::ProvablyInvariant;  // the lie
    SpecSafeDynamicResult dyn =
        validateSpecSafeDynamic(prog, dist, loads);
    EXPECT_EQ(dyn.checkedLoads, 1u);
    EXPECT_GT(dyn.observations, 1u);
    EXPECT_GT(dyn.valueChanges, 0u);
    EXPECT_FALSE(dyn.firstViolation.empty());
}

} // namespace mssp

/**
 * @file
 * Fault-injection layer tests: every fault type fires and is survived
 * (output equivalence + forward progress + clean architected state),
 * injection is deterministic and capped, and campaigns reproduce
 * byte-identical reports. This is the executable form of the paper's
 * claim that the distilled program is only a performance hint.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "fault/campaign.hh"
#include "fault/fault.hh"
#include "helpers.hh"

using namespace mssp;
using namespace mssp::test;

namespace
{

/** Aggressive per-type rates (roughly campaign intensity 10). */
double
testRate(FaultType t)
{
    return std::min(1.0, faultBaseRate(t) * 10.0);
}

struct FaultRun
{
    MsspResult result;
    FaultCounters counters;
    RecoveryReport recovery;
    std::string stats;
};

/** Run the biased-sum workload with one fault plan armed. */
FaultRun
runWithPlan(const PreparedWorkload &w, const FaultPlan &plan,
            uint64_t max_cycles = 20000000ull)
{
    FaultInjector injector(plan.seed, {plan});
    MsspMachine machine(w.orig, w.dist, campaignConfig());
    machine.setFaultInjector(&injector);
    // Sharp invariant: every committed task's live-ins must match
    // architected state (verified from outside the machine).
    machine.setCommitHook([](const Task &t, const ArchState &arch) {
        ASSERT_EQ(arch.countMismatches(t.liveIn), 0u)
            << "commit with unverified live-ins";
    });
    FaultRun out;
    out.result = machine.run(max_cycles);
    out.counters = injector.counters();
    out.recovery = machine.recoveryReport();
    std::ostringstream os;
    machine.dumpStats(os);
    out.stats = os.str();
    return out;
}

class FaultInjectionTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new PreparedWorkload(
            prepare(biasedSumSource(3000, 1), biasedSumSource(3000, 2)));
        SeqMachine seq(workload_->orig);
        seq.run(100000000ull);
        ASSERT_TRUE(seq.halted());
        oracle_outputs_ = new OutputStream(seq.outputs());
        oracle_regs_ = new std::array<uint32_t, NumRegs>(
            seq.state().regs());
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete oracle_outputs_;
        delete oracle_regs_;
    }

    /** The three campaign invariants. */
    static void
    expectInvariants(const FaultRun &run)
    {
        ASSERT_TRUE(run.result.halted)
            << "no forward progress (cycles=" << run.result.cycles
            << ")";
        EXPECT_EQ(run.result.stopReason, StopReason::Halted);
        EXPECT_EQ(run.result.outputs, *oracle_outputs_);
    }

    static PreparedWorkload *workload_;
    static OutputStream *oracle_outputs_;
    static std::array<uint32_t, NumRegs> *oracle_regs_;
};

PreparedWorkload *FaultInjectionTest::workload_ = nullptr;
OutputStream *FaultInjectionTest::oracle_outputs_ = nullptr;
std::array<uint32_t, NumRegs> *FaultInjectionTest::oracle_regs_ =
    nullptr;

} // anonymous namespace

TEST_F(FaultInjectionTest, EveryTypeFiresAndIsSurvived)
{
    for (FaultType type : allFaultTypes()) {
        SCOPED_TRACE(toString(type));
        FaultPlan plan;
        plan.type = type;
        plan.rate = testRate(type);
        plan.seed = 7;
        FaultRun run = runWithPlan(*workload_, plan);
        expectInvariants(run);
        EXPECT_GT(run.counters.count(type), 0u)
            << "fault type never injected";
        EXPECT_EQ(run.recovery.faultsInjected,
                  run.counters.total());
    }
}

TEST_F(FaultInjectionTest, SameSeedSameRun)
{
    FaultPlan plan;
    plan.type = FaultType::CheckpointCorrupt;
    plan.rate = 0.3;
    plan.seed = 42;
    FaultRun a = runWithPlan(*workload_, plan);
    FaultRun b = runWithPlan(*workload_, plan);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.outputs, b.result.outputs);
    EXPECT_EQ(a.counters.injected, b.counters.injected);
    EXPECT_EQ(a.recovery.squashEvents, b.recovery.squashEvents);

    plan.seed = 43;
    FaultRun c = runWithPlan(*workload_, plan);
    // Different seed, different injection pattern (cycles may or may
    // not coincide; the counters are the reliable discriminator).
    EXPECT_TRUE(a.counters.injected != c.counters.injected ||
                a.result.cycles != c.result.cycles);
}

TEST_F(FaultInjectionTest, ZeroRateMatchesNoInjector)
{
    MsspMachine clean(workload_->orig, workload_->dist,
                      campaignConfig());
    MsspResult clean_result = clean.run(20000000ull);

    FaultPlan plan;
    plan.type = FaultType::LiveInFlip;
    plan.rate = 0.0;
    FaultRun zero = runWithPlan(*workload_, plan);

    EXPECT_EQ(zero.counters.total(), 0u);
    // A zero-rate injector never draws, so timing is bit-identical
    // to the detached machine.
    EXPECT_EQ(zero.result.cycles, clean_result.cycles);
    EXPECT_EQ(zero.result.outputs, clean_result.outputs);
}

TEST_F(FaultInjectionTest, MaxInjectionsCapsTheCampaign)
{
    FaultPlan plan;
    plan.type = FaultType::SpuriousSquash;
    plan.rate = 1.0;   // every commit attempt...
    plan.maxInjections = 3;   // ...but only thrice
    plan.seed = 5;
    FaultRun run = runWithPlan(*workload_, plan);
    expectInvariants(run);
    EXPECT_EQ(run.counters.count(FaultType::SpuriousSquash), 3u);
    EXPECT_EQ(run.recovery.spuriousSquashes, 3u);
}

TEST_F(FaultInjectionTest, DroppingEverySpawnStillCompletes)
{
    // The hardest livelock probe: every forked task is lost in
    // transit, so speculation can never commit anything. The watchdog
    // plus backoff escalation must push the machine into sequential
    // mode and the program must still finish, output-identical.
    FaultPlan plan;
    plan.type = FaultType::SpawnDrop;
    plan.rate = 1.0;
    plan.seed = 3;
    FaultRun run = runWithPlan(*workload_, plan);
    expectInvariants(run);
    EXPECT_GT(run.recovery.watchdogSquashes, 0u);
    EXPECT_GT(run.recovery.seqBackoffEvents, 0u);
    EXPECT_GT(run.recovery.seqModeInsts, 0u);
}

TEST_F(FaultInjectionTest, SlaveTargetRestrictsInjection)
{
    // Kill only slave 0; the others keep executing. The run must
    // still complete (watchdog recovers the killed tasks).
    FaultPlan plan;
    plan.type = FaultType::SlaveKill;
    plan.rate = 0.01;
    plan.target = 0;
    plan.seed = 11;
    FaultRun run = runWithPlan(*workload_, plan);
    expectInvariants(run);
    EXPECT_GT(run.counters.count(FaultType::SlaveKill), 0u);
}

TEST_F(FaultInjectionTest, StatsContainFaultAndRecoveryRows)
{
    FaultPlan plan;
    plan.type = FaultType::MasterRegFlip;
    plan.rate = 0.01;
    plan.seed = 9;
    FaultRun run = runWithPlan(*workload_, plan);
    expectInvariants(run);
    EXPECT_NE(run.stats.find("fault.master-reg-flip"),
              std::string::npos);
    EXPECT_NE(run.stats.find("masterDeadRestarts"),
              std::string::npos);
    EXPECT_NE(run.stats.find("watchdogEscalations"),
              std::string::npos);
    EXPECT_FALSE(run.recovery.toString().empty());
}

TEST(FaultPlanTest, NamesRoundTrip)
{
    for (FaultType t : allFaultTypes()) {
        EXPECT_EQ(faultTypeFromString(toString(t)), t);
        EXPECT_GT(faultBaseRate(t), 0.0);
    }
    EXPECT_EQ(faultTypeFromString("no-such-fault"), FaultType::None);
    FaultPlan plan;
    plan.type = FaultType::SpawnDelay;
    plan.rate = 0.25;
    EXPECT_FALSE(plan.toString().empty());
}

TEST(FaultCampaignTest, SmokeSweepPassesAndReproduces)
{
    CampaignOptions opts;
    opts.workloads = {"gzip"};
    opts.types = {FaultType::CheckpointCorrupt, FaultType::SpawnDrop,
                  FaultType::SpuriousSquash};
    opts.intensities = {10.0};
    opts.scale = 0.02;
    opts.seed = 12345;
    CampaignReport a = runFaultCampaign(opts);
    EXPECT_EQ(a.runs.size(), 3u);
    EXPECT_EQ(a.failures(), 0u);
    EXPECT_TRUE(a.allTypesFired());
    for (const CampaignRun &r : a.runs) {
        EXPECT_TRUE(r.ok()) << r.workload << " / " << toString(r.type);
        EXPECT_GT(r.injections, 0u);
    }

    CampaignReport b = runFaultCampaign(opts);
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_FALSE(a.summary().empty());
}

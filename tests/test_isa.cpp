/**
 * @file
 * Unit tests for the μRISC ISA: encodings, decodings, classification
 * helpers, register naming and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/isa.hh"
#include "sim/logging.hh"

namespace mssp
{
namespace
{

TEST(IsaEncoding, RoundTripRType)
{
    Instruction inst = makeR(Opcode::Add, 5, 6, 7);
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(IsaEncoding, RoundTripITypePositiveImm)
{
    Instruction inst = makeI(Opcode::Addi, 1, 2, 1234);
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(IsaEncoding, RoundTripITypeNegativeImm)
{
    Instruction inst = makeI(Opcode::Addi, 1, 2, -1234);
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(IsaEncoding, RoundTripBType)
{
    Instruction inst = makeB(Opcode::Beq, 3, 4, -200);
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(IsaEncoding, RoundTripJTypeExtremes)
{
    Instruction far_fwd = makeJ(Opcode::Jal, 1, (1 << 20) - 1);
    Instruction far_bwd = makeJ(Opcode::Jal, 1, -(1 << 20));
    EXPECT_EQ(decode(encode(far_fwd)), far_fwd);
    EXPECT_EQ(decode(encode(far_bwd)), far_bwd);
}

TEST(IsaEncoding, RoundTripAllOpcodes)
{
    for (unsigned i = 1;
         i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        Instruction inst;
        switch (formatOf(op)) {
          case Format::R: inst = makeR(op, 1, 2, 3); break;
          case Format::I: inst = makeI(op, 4, 5, -7); break;
          case Format::B: inst = makeB(op, 6, 7, 9); break;
          case Format::J: inst = makeJ(op, 8, -12); break;
          case Format::N: inst = makeN(op); break;
        }
        EXPECT_EQ(decode(encode(inst)), inst)
            << "opcode " << opcodeName(op);
    }
}

TEST(IsaEncoding, ZeroWordDecodesIllegal)
{
    EXPECT_EQ(decode(0).op, Opcode::Illegal);
}

TEST(IsaEncoding, GarbageOpcodeDecodesIllegal)
{
    EXPECT_EQ(decode(0xffffffffu).op, Opcode::Illegal);
}

TEST(IsaEncoding, ImmediateTooLargeIsFatal)
{
    EXPECT_THROW(encode(makeI(Opcode::Addi, 1, 2, 1 << 20)),
                 FatalError);
    EXPECT_THROW(encode(makeB(Opcode::Beq, 1, 2, 1 << 17)),
                 FatalError);
    EXPECT_THROW(encode(makeJ(Opcode::Jal, 1, 1 << 22)), FatalError);
}

TEST(IsaNames, OpcodeNamesRoundTrip)
{
    for (unsigned i = 1;
         i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::Illegal);
}

TEST(IsaNames, RegisterNamesRoundTrip)
{
    for (unsigned r = 0; r < NumRegs; ++r) {
        EXPECT_EQ(regFromName(regName(r)), static_cast<int>(r));
        std::string rn = "r";
        rn += std::to_string(r);
        EXPECT_EQ(regFromName(rn), static_cast<int>(r));
    }
    EXPECT_EQ(regFromName("bogus"), -1);
}

TEST(IsaClassify, Branches)
{
    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_TRUE(isCondBranch(Opcode::Bgeu));
    EXPECT_FALSE(isCondBranch(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jalr));
    EXPECT_FALSE(isControl(Opcode::Add));
}

TEST(IsaClassify, WritesReg)
{
    EXPECT_TRUE(writesReg(makeR(Opcode::Add, 1, 2, 3)));
    EXPECT_TRUE(writesReg(makeI(Opcode::Lw, 1, 2, 0)));
    EXPECT_TRUE(writesReg(makeJ(Opcode::Jal, 1, 4)));
    EXPECT_FALSE(writesReg(makeB(Opcode::Sw, 1, 2, 0)));
    EXPECT_FALSE(writesReg(makeB(Opcode::Beq, 1, 2, 0)));
    EXPECT_FALSE(writesReg(makeI(Opcode::Out, 0, 1, 0)));
    EXPECT_FALSE(writesReg(makeJ(Opcode::Fork, 0, 0)));
}

TEST(IsaClassify, SourceRegs)
{
    uint8_t srcs[2];
    EXPECT_EQ(sourceRegs(makeR(Opcode::Add, 1, 2, 3), srcs), 2u);
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(srcs[1], 3);
    EXPECT_EQ(sourceRegs(makeI(Opcode::Addi, 1, 2, 5), srcs), 1u);
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(sourceRegs(makeB(Opcode::Sw, 0, 4, 8), srcs), 2u);
    EXPECT_EQ(sourceRegs(makeI(Opcode::Lui, 1, 0, 5), srcs), 0u);
    EXPECT_EQ(sourceRegs(makeI(Opcode::Out, 0, 9, 1), srcs), 1u);
    EXPECT_EQ(srcs[0], 9);
    EXPECT_EQ(sourceRegs(makeJ(Opcode::Jal, 1, 0), srcs), 0u);
}

TEST(IsaDisasm, BasicFormats)
{
    EXPECT_EQ(disassemble(makeR(Opcode::Add, 3, 4, 5)),
              "add a0, a1, a2");
    EXPECT_EQ(disassemble(makeI(Opcode::Addi, 11, 0, -3)),
              "addi t0, zero, -3");
    EXPECT_EQ(disassemble(makeI(Opcode::Lw, 3, 2, 8)), "lw a0, 8(sp)");
    EXPECT_EQ(disassemble(makeB(Opcode::Sw, 2, 3, 8)), "sw a0, 8(sp)");
    EXPECT_EQ(disassemble(makeN(Opcode::Halt)), "halt");
    EXPECT_EQ(disassemble(makeI(Opcode::Out, 0, 3, 1)), "out a0, 1");
    // Branch targets render absolute when a pc is supplied.
    EXPECT_EQ(disassemble(makeB(Opcode::Beq, 3, 4, -2), 0x100),
              "beq a0, a1, 0xff");
    EXPECT_EQ(disassemble(makeJ(Opcode::Jal, 1, 10), 0x100),
              "jal ra, 0x10b");
}

TEST(IsaDisasm, WordForm)
{
    uint32_t w = encode(makeR(Opcode::Xor, 1, 2, 3));
    EXPECT_EQ(disassembleWord(w), "xor ra, sp, a0");
    EXPECT_EQ(disassembleWord(0), "illegal");
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for the value-flow analysis (analysis/valueflow.hh) and
 * the speculation planner (analysis/specplan.hh): the forwarding
 * fact rules (invariant image word, flow-sensitive store-to-load
 * forwarding, feasible-set Likely demotion), plan ranking, the
 * persisted-metadata validation checks, JSON determinism, and the
 * dynamic Proven prediction gate (eval/crossval.hh
 * validateSpecPlanDynamic).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/specplan.hh"
#include "analysis/valueflow.hh"
#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "eval/crossval.hh"
#include "helpers.hh"
#include "profile/profiler.hh"

namespace mssp
{
namespace
{

using analysis::LoadValueFact;
using analysis::SpecPlanCandidate;
using analysis::SpecPlanReport;
using analysis::ValueFlowResult;
using analysis::analyzeSpecPlan;
using analysis::analyzeValueFlow;
using analysis::classifySpecLoads;
using analysis::planSpeculation;

/** Distill with explicit fork sites and all approximating branch
 *  rewrites disabled, keeping the test's CFG (see test_specsafe). */
DistilledProgram
distillExact(const Program &prog, std::vector<uint32_t> sites = {})
{
    ProfileData prof = profileProgram(prog, 1000000);
    DistillerOptions opts;
    opts.biasThreshold = 2.0;
    opts.explicitForkSites = std::move(sites);
    return distill(prog, prof, opts);
}

ValueFlowResult
valueFlowOf(const Program &prog, const DistilledProgram &dist)
{
    return analyzeValueFlow(prog, dist,
                            classifySpecLoads(prog, dist));
}

/** The fact for the (unique) load reading constant @p addr. */
const LoadValueFact *
factForAddr(const ValueFlowResult &vf, uint32_t addr)
{
    for (const LoadValueFact &f : vf.facts) {
        if (f.addr == addr)
            return &f;
    }
    return nullptr;
}

/** A one-store-then-loop program: the entry region rewrites the cell
 *  from its image word 5 to 7 before the fork region's load ever
 *  runs, so flow-sensitive forwarding must predict 7, not 5. */
Program
forwardedCellProgram()
{
    return assemble("    la s2, data\n"
                    "    li t2, 7\n"
                    "    sw t2, 0(s2)\n"
                    "    li s0, 0\n"
                    "    li s1, 0\n"
                    "loopB:\n"
                    "    lw t1, 0(s2)\n"
                    "    add s1, s1, t1\n"
                    "    addi s0, s0, 1\n"
                    "    li t3, 50\n"
                    "    blt s0, t3, loopB\n"
                    "    out s1, 1\n"
                    "    halt\n"
                    ".org 0x2000\n"
                    "data: .word 5\n");
}

DistilledProgram
distillAtLoopB(const Program &prog)
{
    uint32_t loop_b = 0;
    EXPECT_TRUE(prog.lookupSymbol("loopB", loop_b));
    return distillExact(prog, {loop_b});
}

} // anonymous namespace

TEST(ValueFlow, UntouchedWordForwardsTheImageConstant)
{
    // No store anywhere: the load must be a Proven fact predicting
    // the image word.
    Program prog = assemble("    la t0, cell\n"
                            "    lw t1, 0(t0)\n"
                            "    out t1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "cell: .word 7\n");
    DistilledProgram dist = distillExact(prog);
    ValueFlowResult vf = valueFlowOf(prog, dist);
    const LoadValueFact *f = factForAddr(vf, 0x2000);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->proof, ValueProof::Proven);
    EXPECT_EQ(f->value, 7u);
    EXPECT_EQ(f->feasible, std::vector<uint32_t>{7u});
    EXPECT_EQ(f->storePc, UINT32_MAX);
}

TEST(ValueFlow, StoreToLoadForwardingBeatsTheImageWord)
{
    // The entry-region store rewrites the cell before the fork
    // region's load: a flow-insensitive analysis would predict the
    // image word 5; the flow-sensitive fact must say 7.
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);

    auto classes = classifySpecLoads(prog, dist);
    ValueFlowResult vf = analyzeValueFlow(prog, dist, classes);
    const LoadValueFact *f = factForAddr(vf, 0x2000);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->cls, LoadSpecClass::RegionInvariant);
    EXPECT_EQ(f->proof, ValueProof::Proven) << f->detail;
    EXPECT_EQ(f->value, 7u) << f->detail;
}

TEST(ValueFlow, ConditionalStoreDemotesToLikelyWithFeasibleSet)
{
    // The store only runs on one arm of a branch the analysis cannot
    // decide (a3 is unknown at entry): the cell holds 5 or 7 at the
    // load, so the fact demotes to Likely, carries both feasible
    // constants, predicts the image word, and names the store.
    Program prog = assemble("    la s2, data\n"
                            "    li t2, 7\n"
                            "    beqz a3, skip\n"
                            "    sw t2, 0(s2)\n"
                            "skip:\n"
                            "    li s0, 0\n"
                            "    li s1, 0\n"
                            "loopB:\n"
                            "    lw t1, 0(s2)\n"
                            "    add s1, s1, t1\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 50\n"
                            "    blt s0, t3, loopB\n"
                            "    out s1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "data: .word 5\n");
    DistilledProgram dist = distillAtLoopB(prog);
    ValueFlowResult vf = valueFlowOf(prog, dist);
    const LoadValueFact *f = factForAddr(vf, 0x2000);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->proof, ValueProof::Likely) << f->detail;
    EXPECT_EQ(f->value, 5u);
    EXPECT_EQ(f->feasible, (std::vector<uint32_t>{5u, 7u}));
    EXPECT_NE(f->storePc, UINT32_MAX);
}

TEST(SpecPlan, ProvenOutranksLikelyAndOrderIsByBenefit)
{
    // Same program as the Likely test plus an untouched second cell:
    // the Proven candidate (certainty 1) must outrank the Likely one
    // (certainty 1/2), and the list must be benefit-descending.
    Program prog = assemble("    la s2, data\n"
                            "    la s3, other\n"
                            "    li t2, 7\n"
                            "    beqz a3, skip\n"
                            "    sw t2, 0(s2)\n"
                            "skip:\n"
                            "    li s0, 0\n"
                            "    li s1, 0\n"
                            "loopB:\n"
                            "    lw t1, 0(s2)\n"
                            "    lw t4, 0(s3)\n"
                            "    add s1, s1, t1\n"
                            "    add s1, s1, t4\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 50\n"
                            "    blt s0, t3, loopB\n"
                            "    out s1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "data: .word 5\n"
                            ".org 0x2100\n"
                            "other: .word 9\n");
    DistilledProgram dist = distillAtLoopB(prog);
    std::vector<SpecPlanCandidate> plan = planSpeculation(prog, dist);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].proof, ValueProof::Proven);
    EXPECT_EQ(plan[0].addr, 0x2100u);
    EXPECT_EQ(plan[1].proof, ValueProof::Likely);
    EXPECT_EQ(plan[1].addr, 0x2000u);
    EXPECT_GT(plan[0].benefitMicro, plan[1].benefitMicro);
}

TEST(SpecPlan, FreshDistillationValidatesClean)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    ASSERT_FALSE(dist.specPlan.empty());
    SpecPlanReport rep = analyzeSpecPlan(prog, dist);
    EXPECT_EQ(rep.lint.errors(), 0u) << rep.lint.toText();
    EXPECT_GE(rep.proven(), 1u);
}

TEST(SpecPlan, TamperedValueIsAMismatchError)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    ASSERT_FALSE(dist.specPlan.empty());
    dist.specPlan[0].value ^= 1;
    SpecPlanReport rep = analyzeSpecPlan(prog, dist);
    EXPECT_GT(rep.lint.errors(), 0u);
    EXPECT_TRUE(std::any_of(
        rep.lint.findings.begin(), rep.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check == analysis::LintCheck::SpecPlanMismatch;
        }))
        << rep.lint.toText();
}

TEST(SpecPlan, MissingAndStaleEntriesAreCoverageErrors)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    ASSERT_FALSE(dist.specPlan.empty());

    DistilledProgram missing = dist;
    missing.specPlan.clear();
    SpecPlanReport rep1 = analyzeSpecPlan(prog, missing);
    EXPECT_TRUE(std::any_of(
        rep1.lint.findings.begin(), rep1.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check == analysis::LintCheck::SpecPlanCoverage;
        }))
        << rep1.lint.toText();

    DistilledProgram stale = dist;
    SpecPlanEntry bogus;
    bogus.pc = 0x7ffffffc;
    bogus.value = 1;
    bogus.feasible = {1};
    stale.specPlan.push_back(bogus);
    SpecPlanReport rep2 = analyzeSpecPlan(prog, stale);
    EXPECT_TRUE(std::any_of(
        rep2.lint.findings.begin(), rep2.lint.findings.end(),
        [](const analysis::Finding &f) {
            return f.check ==
                       analysis::LintCheck::SpecPlanCoverage &&
                   f.pc == 0x7ffffffc;
        }))
        << rep2.lint.toText();
}

TEST(SpecPlan, JsonReportIsDeterministicAndVersioned)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    SpecPlanReport rep = analyzeSpecPlan(prog, dist);
    std::string a = rep.toJson("x");
    std::string b = analyzeSpecPlan(prog, dist).toJson("x");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"mssp-specplan-v1\""),
              std::string::npos);
    EXPECT_NE(a.find("\"workload\": \"x\""), std::string::npos);
    // The embedded lint object names its own schema (docs/SCHEMAS.md).
    EXPECT_NE(a.find("\"schema\": \"mssp-lint-v1\""),
              std::string::npos);
}

TEST(SpecPlanDynamic, ProvenPredictionsMatchTheReplay)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    std::vector<SpecPlanCandidate> plan = planSpeculation(prog, dist);
    ASSERT_FALSE(plan.empty());
    SpecPlanDynamicResult dyn =
        validateSpecPlanDynamic(prog, dist, plan);
    EXPECT_EQ(dyn.provenMismatches, 0u) << dyn.firstViolation;
    uint64_t observations = 0;
    for (const SpecPlanCandidateDyn &c : dyn.candidates)
        observations += c.observations;
    EXPECT_GT(observations, 0u);
}

TEST(SpecPlanDynamic, FalsePredictionIsCaughtAtRuntime)
{
    Program prog = forwardedCellProgram();
    DistilledProgram dist = distillAtLoopB(prog);
    std::vector<SpecPlanCandidate> plan = planSpeculation(prog, dist);
    ASSERT_FALSE(plan.empty());
    ASSERT_EQ(plan[0].proof, ValueProof::Proven);
    plan[0].value ^= 1;  // the lie
    SpecPlanDynamicResult dyn =
        validateSpecPlanDynamic(prog, dist, plan);
    EXPECT_GT(dyn.provenMismatches, 0u);
    EXPECT_FALSE(dyn.firstViolation.empty());
}

TEST(SpecPlanDynamic, LikelyCandidatesAccumulateHitRates)
{
    // At runtime a3 is 0, the conditional store never runs, and the
    // Likely candidate's image-word prediction hits every time.
    Program prog = assemble("    la s2, data\n"
                            "    li t2, 7\n"
                            "    beqz a3, skip\n"
                            "    sw t2, 0(s2)\n"
                            "skip:\n"
                            "    li s0, 0\n"
                            "    li s1, 0\n"
                            "loopB:\n"
                            "    lw t1, 0(s2)\n"
                            "    add s1, s1, t1\n"
                            "    addi s0, s0, 1\n"
                            "    li t3, 50\n"
                            "    blt s0, t3, loopB\n"
                            "    out s1, 1\n"
                            "    halt\n"
                            ".org 0x2000\n"
                            "data: .word 5\n");
    DistilledProgram dist = distillAtLoopB(prog);
    std::vector<SpecPlanCandidate> plan = planSpeculation(prog, dist);
    ASSERT_FALSE(plan.empty());
    ASSERT_EQ(plan[0].proof, ValueProof::Likely);
    SpecPlanDynamicResult dyn =
        validateSpecPlanDynamic(prog, dist, plan);
    EXPECT_GT(dyn.likelyObservations, 0u);
    EXPECT_EQ(dyn.likelyHits, dyn.likelyObservations);
    EXPECT_EQ(dyn.provenMismatches, 0u);
}

} // namespace mssp

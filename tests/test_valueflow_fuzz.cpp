/**
 * @file
 * Fuzz gate for the value-flow analysis and speculation planner:
 * every random program family seed is distilled at the paper preset,
 * the persisted plan must re-validate with zero errors, and every
 * Proven candidate's predicted value is checked differentially
 * against a bounded SEQ replay of the merged image — a Proven
 * prediction that a real execution contradicts is a soundness bug in
 * the value-flow analysis, never acceptable. Likely candidates only
 * accumulate hit rates; they are allowed to miss.
 *
 * Runs 25 seeds by default (fast enough for ctest); the full gate is
 *   MSSP_FUZZ_ITERS=500 ./test_valueflow_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/specplan.hh"
#include "core/pipeline.hh"
#include "eval/crossval.hh"
#include "helpers.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 25;
}

} // anonymous namespace

TEST(ValueFlowFuzz, ProvenPredictionsSurviveLockstepExecution)
{
    unsigned iters = fuzzIters();
    size_t total_candidates = 0;
    size_t total_proven = 0;
    uint64_t total_observations = 0;

    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());

        // The plan distill() stamped must re-validate cleanly.
        analysis::SpecPlanReport rep =
            analysis::analyzeSpecPlan(w.orig, w.dist);
        EXPECT_EQ(rep.lint.errors(), 0u) << rep.lint.toText();
        total_candidates += rep.candidates.size();
        total_proven += rep.proven();

        // Differential check: no bounded replay of the merged image
        // may contradict a Proven predicted value (zero false
        // predictions, the fuzz gate's point).
        SpecPlanDynamicResult dyn = validateSpecPlanDynamic(
            w.orig, w.dist, rep.candidates);
        EXPECT_EQ(dyn.provenMismatches, 0u) << dyn.firstViolation;
        for (const SpecPlanCandidateDyn &c : dyn.candidates) {
            if (c.proof == ValueProof::Proven)
                total_observations += c.observations;
        }
    }

    // The gate must not pass vacuously: over the seed range the
    // planner does prove candidates and execution does exercise
    // them.
    EXPECT_GT(total_candidates, 0u);
    EXPECT_GT(total_proven, 0u);
    EXPECT_GT(total_observations, 0u);
}

} // namespace mssp

/**
 * @file
 * Tests for the tracing facilities: ring-buffer bounds, instruction
 * trace contents, and the MSSP task-event trace.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "trace/trace.hh"

namespace mssp
{
namespace
{

TEST(TraceLog, AppendsAndDumps)
{
    TraceLog log(10);
    log.append("one");
    log.append("two");
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.text(), "one\ntwo\n");
    log.clear();
    EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLog, RingBufferDropsOldest)
{
    TraceLog log(3);
    for (int i = 0; i < 5; ++i)
        log.append(std::to_string(i));
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 2u);
    EXPECT_EQ(log.lines().front(), "2");
    EXPECT_EQ(log.lines().back(), "4");
}

TEST(ExecTracer, DisassemblesEveryStep)
{
    Program p = assemble(
        "    li t0, 2\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    TraceLog log;
    ExecTracer tracer(log);
    SeqMachine m(p);
    m.setObserver(&tracer);
    m.run(100);
    EXPECT_EQ(log.size(), m.instCount());
    std::string text = log.text();
    EXPECT_NE(text.find("addi t0, t0, -1"), std::string::npos);
    EXPECT_NE(text.find("[taken]"), std::string::npos);
    EXPECT_NE(text.find("[not taken]"), std::string::npos);
    EXPECT_NE(text.find("<halt>"), std::string::npos);
}

TEST(TaskTracer, RecordsCommitsAndSquashes)
{
    setQuiet(true);
    PreparedWorkload w = prepare(test::biasedSumSource(200, 31),
                                 test::biasedSumSource(128, 32),
                                 DistillerOptions::paperPreset());
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);
    TraceLog log(100000);
    TaskTracer tracer(machine, log);
    MsspResult r = machine.run(100000000ull);
    test::expectEquivalent(w.orig, r);

    EXPECT_EQ(tracer.commits(), machine.counters().tasksCommitted);
    EXPECT_EQ(tracer.squashes(), machine.counters().squashEvents);
    std::string text = log.text();
    EXPECT_NE(text.find("commit  task"), std::string::npos);
    EXPECT_NE(text.find("live-ins"), std::string::npos);
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Tests for the micro-workload suite: functional correctness of each
 * kernel (known answers where computable), and MSSP output
 * equivalence — quicksort in particular stresses recursion, so task
 * live-ins include return addresses and spilled stack frames.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/micro.hh"

namespace mssp
{
namespace
{

OutputStream
runSeqOutputs(const std::string &src)
{
    SeqMachine m(assemble(src));
    m.run(50000000ull);
    EXPECT_TRUE(m.halted());
    EXPECT_FALSE(m.faulted());
    return m.outputs();
}

TEST(MicroWorkloads, FibKnownValues)
{
    // fib: out = fib(steps) computed iteratively (fib(0)=0, fib(1)=1,
    // after k loop steps t0 = fib(k)).
    Workload w = microFib(10);
    auto outs = runSeqOutputs(w.refSource);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].value, 55u);   // fib(10)
}

TEST(MicroWorkloads, SieveCountsPrimes)
{
    Workload w = microSieve(100);
    auto outs = runSeqOutputs(w.refSource);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].value, 25u);   // primes below 100
}

TEST(MicroWorkloads, SieveLargerKnownCount)
{
    Workload w = microSieve(1000);
    auto outs = runSeqOutputs(w.refSource);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].value, 168u);  // primes below 1000
}

TEST(MicroWorkloads, QsortProducesSortedOutput)
{
    // Port 9 marks a sorted-order violation; its absence is the
    // in-program verification passing.
    Workload w = microQsort(120);
    auto outs = runSeqOutputs(w.refSource);
    for (const auto &o : outs)
        EXPECT_NE(o.port, 9) << "array not sorted";
    ASSERT_FALSE(outs.empty());
}

TEST(MicroWorkloads, CrcIsDeterministicAndSeedSensitive)
{
    auto a = runSeqOutputs(microCrc(100).refSource);
    auto b = runSeqOutputs(microCrc(100).refSource);
    EXPECT_EQ(a, b);
    auto c = runSeqOutputs(microCrc(100).trainSource);
    EXPECT_NE(a, c);   // different data
}

TEST(MicroWorkloads, BsearchProbesAreLogarithmic)
{
    Workload w = microBsearch(200);
    auto outs = runSeqOutputs(w.refSource);
    ASSERT_EQ(outs.size(), 2u);
    uint32_t hits = outs[0].value;
    uint32_t probes = outs[1].value;
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, 200u);            // some misses planted
    // 512-entry table: <= 10 probes per query on average.
    EXPECT_LE(probes, 200u * 10u);
    EXPECT_GE(probes, 200u * 5u);
}

class MicroMsspEquivalence
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(MicroMsspEquivalence, OutputMatchesSeq)
{
    setQuiet(true);
    auto all = microWorkloads();
    const Workload &w = all.at(GetParam());
    SCOPED_TRACE(w.name);
    MsspConfig cfg;
    test::runAndCheck(w.refSource, w.trainSource, cfg,
                      DistillerOptions::paperPreset());
}

INSTANTIATE_TEST_SUITE_P(All, MicroMsspEquivalence,
                         ::testing::Range<size_t>(0, 6),
                         [](const auto &info) {
                             return microWorkloads()[info.param].name;
                         });

TEST(MicroWorkloads, RegistryHasSix)
{
    auto all = microWorkloads();
    ASSERT_EQ(all.size(), 6u);
    for (const auto &w : all) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_NE(w.refSource, w.trainSource);
    }
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Workload-suite tests: every SPECint analogue assembles, terminates
 * under SEQ, runs output-equivalently under MSSP (ref and train), and
 * the full pipeline produces a usable distilled program for it.
 */

#include <gtest/gtest.h>

#include "core/mssp_api.hh"
#include "helpers.hh"
#include "workloads/random_program.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

constexpr double kTestScale = 0.15;

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    Workload
    load() const
    {
        return workloadByName(GetParam(), kTestScale);
    }
};

TEST_P(WorkloadSuite, AssemblesAndTerminates)
{
    Workload w = load();
    for (const std::string *src : {&w.refSource, &w.trainSource}) {
        Program p = assemble(*src);
        SeqMachine m(p);
        auto r = m.run(20000000);
        EXPECT_TRUE(r.halted) << w.name;
        EXPECT_FALSE(r.faulted) << w.name;
        EXPECT_GT(m.outputs().size(), 0u) << w.name;
        EXPECT_GT(m.instCount(), 1000u) << w.name << " too small";
    }
}

TEST_P(WorkloadSuite, RefAndTrainProduceDifferentOutputs)
{
    // train/ref must actually be different inputs, or the profile
    // would be an oracle rather than a prediction.
    Workload w = load();
    SeqMachine ref(assemble(w.refSource));
    ref.run(20000000);
    SeqMachine train(assemble(w.trainSource));
    train.run(20000000);
    EXPECT_NE(ref.outputs(), train.outputs()) << w.name;
}

TEST_P(WorkloadSuite, MsspIsOutputEquivalent)
{
    Workload w = load();
    PreparedWorkload prepared = prepare(w.refSource, w.trainSource);
    MsspConfig cfg;
    MsspMachine machine(prepared.orig, prepared.dist, cfg);
    MsspResult r = machine.run(200000000ull);
    test::expectEquivalent(prepared.orig, r);
}

TEST_P(WorkloadSuite, DistillerFindsForkSites)
{
    Workload w = load();
    PreparedWorkload prepared = prepare(w.refSource, w.trainSource);
    EXPECT_GE(prepared.dist.taskMap.size(), 1u) << w.name;
    EXPECT_GT(prepared.dist.report.distilledStaticInsts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Analogues, WorkloadSuite,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, TwelveAnalogues)
{
    auto all = specAnalogues(kTestScale);
    EXPECT_EQ(all.size(), 12u);
    for (const auto &w : all) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_FALSE(w.description.empty());
    }
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadByName("specfp"), FatalError);
}

TEST(RandomProgram, DeterministicPerSeed)
{
    EXPECT_EQ(randomProgramSource(42), randomProgramSource(42));
    EXPECT_NE(randomProgramSource(42), randomProgramSource(43));
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Tests for the non-idempotent (MMIO) region extension — the formal
 * companion paper's closing future-work item: speculation must be
 * precluded on device state; the machine imposes task boundaries and
 * proceeds non-speculatively, as per SEQ.
 */

#include <gtest/gtest.h>

#include "arch/mmio.hh"
#include "helpers.hh"

namespace mssp
{
namespace
{

TEST(MmioDevice, CounterIsNonIdempotent)
{
    MmioDevice dev;
    EXPECT_EQ(dev.read(MmioCounterAddr), 0u);
    EXPECT_EQ(dev.read(MmioCounterAddr), 1u);
    EXPECT_EQ(dev.read(MmioCounterAddr), 2u);
    EXPECT_EQ(dev.readCount(), 3u);
}

TEST(MmioDevice, StatusIsConstant)
{
    MmioDevice dev;
    EXPECT_EQ(dev.read(MmioStatusAddr), MmioStatusValue);
    EXPECT_EQ(dev.read(MmioStatusAddr), MmioStatusValue);
    EXPECT_EQ(dev.readCount(), 0u);   // status reads don't count
}

TEST(MmioDevice, WritesEmitOutputsAndLatch)
{
    MmioDevice dev;
    OutputStream out;
    dev.write(MmioBase + 8, 42, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, 0x8008);
    EXPECT_EQ(out[0].value, 42u);
    EXPECT_EQ(dev.read(MmioBase + 8), 42u);
}

TEST(MmioDevice, RangePredicate)
{
    EXPECT_FALSE(isMmio(0));
    EXPECT_FALSE(isMmio(MmioBase - 1));
    EXPECT_TRUE(isMmio(MmioBase));
    EXPECT_TRUE(isMmio(0xffffffffu));
}

/** A program whose loop reads the device counter and writes a device
 *  register each iteration, interleaved with normal computation. */
std::string
mmioLoopSource(unsigned iters)
{
    return strfmt(
        "    li s0, %u\n"
        "    li s1, 0\n"
        "    lui s2, 0xffff\n"      // MMIO base
        "loop:\n"
        "    add s1, s1, s0\n"
        "    andi t0, s0, 3\n"
        "    bnez t0, nodev\n"
        "    lw t1, 0(s2)\n"        // non-idempotent counter read
        "    add s1, s1, t1\n"
        "    sw s1, 8(s2)\n"        // device write (observable)
        "nodev:\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, loop\n"
        "    out s1, 1\n"
        "    halt\n",
        iters);
}

TEST(MmioSeq, SequentialSemantics)
{
    Program p = assemble(mmioLoopSource(16));
    SeqMachine m(p);
    m.run(100000);
    ASSERT_TRUE(m.halted());
    // 4 device reads (s0 = 16, 12, 8, 4) and 4 device writes.
    EXPECT_EQ(m.device().readCount(), 4u);
    unsigned dev_writes = 0;
    for (const auto &o : m.outputs())
        dev_writes += (o.port & 0x8000) ? 1 : 0;
    EXPECT_EQ(dev_writes, 4u);
    // Final OUT carries the checksum that depends on counter values.
    EXPECT_EQ(m.outputs().back().port, 1);
}

TEST(MmioMssp, OutputEquivalentToSeq)
{
    std::string src = mmioLoopSource(64);
    MsspConfig cfg;
    auto r = test::runAndCheck(src, mmioLoopSource(32), cfg);
    EXPECT_TRUE(r.halted);
}

TEST(MmioMssp, SerializationsAreCountedAndTasksStopEarly)
{
    std::string src = mmioLoopSource(64);
    PreparedWorkload w = prepare(src, mmioLoopSource(32));
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    test::expectEquivalent(w.orig, r);
    // 16 device-read iterations -> at least one serialization each
    // (reads and writes may share one serialized seq stretch).
    EXPECT_GE(machine.counters().mmioSerializations, 1u);
    EXPECT_GT(machine.counters().seqModeInsts, 0u);
}

TEST(MmioMssp, DeviceUntouchedBySquashedSpeculation)
{
    // The device read count must equal SEQ's exactly: squashed or
    // aborted speculative work must never have touched the device.
    std::string src = mmioLoopSource(64);
    SeqMachine oracle(assemble(src));
    oracle.run(1000000);

    PreparedWorkload w = prepare(src, mmioLoopSource(32));
    MsspConfig cfg;
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(10000000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.outputs, oracle.outputs());
}

TEST(MmioMssp, AdversarialDistilledProgramStillSafe)
{
    // Corrupt the distilled binary: even a garbage master must not
    // reach the device (its MMIO accesses are dropped/zero) and the
    // output must stay identical.
    std::string src = mmioLoopSource(48);
    SeqMachine oracle(assemble(src));
    oracle.run(1000000);

    PreparedWorkload w = prepare(src, src);
    Rng rng(1234);
    DistilledProgram corrupt = w.dist;
    std::vector<uint32_t> addrs;
    for (const auto &[addr, word] : corrupt.prog.image())
        addrs.push_back(addr);
    for (int i = 0; i < 5; ++i) {
        corrupt.prog.setWord(addrs[rng.below(addrs.size())],
                             static_cast<uint32_t>(rng.next()));
    }

    MsspConfig cfg;
    cfg.watchdogCycles = 3000;
    cfg.maxTaskInsts = 3000;
    MsspMachine machine(w.orig, corrupt, cfg);
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.outputs, oracle.outputs());
}

TEST(MmioMssp, DeviceAccessAtForkSiteDoesNotLivelock)
{
    // The device access is the *first* instruction of the hot loop
    // header (a natural fork site): the machine must still make
    // progress via forced sequential steps.
    std::string src = strfmt(
        "    li s0, 32\n"
        "    lui s2, 0xffff\n"
        "loop:\n"
        "    lw t1, 0(s2)\n"        // device read at the header
        "    add s1, s1, t1\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, loop\n"
        "    out s1, 1\n"
        "    halt\n");
    MsspConfig cfg;
    test::runAndCheck(src, src, cfg, {}, 10000000);
}

TEST(MmioMssp, BaselineSeesTheDeviceToo)
{
    Program p = assemble(mmioLoopSource(16));
    BaselineResult base = runBaseline(p, 1.0, 100000);
    SeqMachine seq(p);
    seq.run(100000);
    EXPECT_EQ(base.outputs, seq.outputs());
}

} // anonymous namespace
} // namespace mssp

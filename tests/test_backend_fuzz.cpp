/**
 * @file
 * Differential fuzz gate for the tiered execution backends.
 *
 * Every random program family seed runs in lockstep on all three
 * tiers (ref / threaded / blockjit); the final architectural state —
 * halt/fault flags, retire counts, outputs, pc, every register,
 * instret and the full nonzero memory image — must be byte-identical.
 * T0 is the semantic oracle (exec/backend.hh); any divergence is a
 * bug in the faster tier, never acceptable.
 *
 * The same gate runs the full MSSP machine and the profiler per tier:
 * the backend is a pure execution-speed knob, so speedup results and
 * distillation profiles must not depend on it.
 *
 * Runs 25 seeds by default (fast enough for ctest); the full gate is
 *   MSSP_FUZZ_ITERS=500 ./test_backend_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "exec/seq_machine.hh"
#include "mssp/machine.hh"
#include "profile/profiler.hh"
#include "sim/logging.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

constexpr BackendKind kTiers[] = {
    BackendKind::Ref, BackendKind::Threaded, BackendKind::BlockJit};

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 25;
}

/** Everything a SEQ run architecturally produced. */
struct SeqFingerprint
{
    bool halted = false;
    bool faulted = false;
    uint64_t instCount = 0;
    uint64_t instret = 0;
    uint32_t pc = 0;
    std::vector<uint32_t> regs;
    OutputStream outputs;
    std::vector<std::pair<uint32_t, uint32_t>> mem;
};

SeqFingerprint
runSeqOn(const Program &prog, BackendKind tier, uint64_t max_insts)
{
    SeqMachine m(prog);
    m.setBackend(tier);
    m.run(max_insts);
    SeqFingerprint fp;
    fp.halted = m.halted();
    fp.faulted = m.faulted();
    fp.instCount = m.instCount();
    fp.instret = m.state().instret();
    fp.pc = m.state().pc();
    for (unsigned r = 0; r < NumRegs; ++r)
        fp.regs.push_back(m.state().readReg(r));
    fp.outputs = m.outputs();
    fp.mem = m.state().mem().nonzeroWords();
    return fp;
}

void
expectIdentical(const SeqFingerprint &ref, const SeqFingerprint &got,
                BackendKind tier)
{
    SCOPED_TRACE(strfmt("tier %s", backendName(tier)));
    EXPECT_EQ(ref.halted, got.halted);
    EXPECT_EQ(ref.faulted, got.faulted);
    EXPECT_EQ(ref.instCount, got.instCount);
    EXPECT_EQ(ref.instret, got.instret);
    EXPECT_EQ(ref.pc, got.pc);
    EXPECT_EQ(ref.regs, got.regs);
    EXPECT_EQ(ref.outputs, got.outputs);
    EXPECT_EQ(ref.mem, got.mem);
}

void
lockstepSeeds(const RandomProgramOptions &opts, uint64_t seed_base,
              unsigned iters)
{
    for (uint64_t seed = seed_base; seed < seed_base + iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed, opts));
        SeqFingerprint ref =
            runSeqOn(prog, BackendKind::Ref, 10000000);
        EXPECT_TRUE(ref.halted || ref.faulted);
        expectIdentical(
            ref, runSeqOn(prog, BackendKind::Threaded, 10000000),
            BackendKind::Threaded);
        expectIdentical(
            ref, runSeqOn(prog, BackendKind::BlockJit, 10000000),
            BackendKind::BlockJit);
    }
}

} // anonymous namespace

TEST(BackendFuzz, TiersRetireIdenticalArchitecturalState)
{
    lockstepSeeds({}, 1, fuzzIters());
}

TEST(BackendFuzz, TiersAgreeOnMmioPrograms)
{
    // Non-idempotent device reads and MMIO-port writes: the blockjit
    // tier must not fuse, reorder or replay device accesses.
    RandomProgramOptions opts;
    opts.allowMmio = true;
    lockstepSeeds(opts, 1000, fuzzIters());
}

TEST(BackendFuzz, TiersAgreeUnderTightBudgets)
{
    // Re-running a machine in small budget slices forces the blockjit
    // tier through its deopt path (block longer than the remaining
    // budget) at every slice boundary; the retire counts must still
    // line up exactly with the oracle's.
    unsigned iters = std::min(fuzzIters(), 10u);
    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        for (BackendKind tier : kTiers) {
            SCOPED_TRACE(backendName(tier));
            SeqMachine oracle(prog);
            oracle.run(1000000);
            SeqMachine sliced(prog);
            sliced.setBackend(tier);
            uint64_t total = 0;
            while (!sliced.halted() && !sliced.faulted() &&
                   total < 1000000) {
                auto r = sliced.run(7);
                total += r.instCount;
            }
            EXPECT_EQ(oracle.halted(), sliced.halted());
            EXPECT_EQ(oracle.instCount(), sliced.instCount());
            EXPECT_EQ(oracle.outputs(), sliced.outputs());
            EXPECT_EQ(oracle.state().pc(), sliced.state().pc());
        }
    }
}

TEST(BackendFuzz, MsspMachineIsBackendInvariant)
{
    // The full machine (master + slaves + SEQ fallback) must produce
    // the same committed results and the same *timing* on every tier:
    // the backend changes host speed, never simulated behavior.
    unsigned iters = std::min(fuzzIters(), 10u);
    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());

        MsspConfig cfg;
        cfg.execBackend = BackendKind::Ref;
        MsspMachine refm(w.orig, w.dist, cfg);
        MsspResult ref = refm.run(10000000ull);

        for (BackendKind tier :
             {BackendKind::Threaded, BackendKind::BlockJit}) {
            SCOPED_TRACE(backendName(tier));
            MsspConfig tcfg;
            tcfg.execBackend = tier;
            MsspMachine m(w.orig, w.dist, tcfg);
            MsspResult got = m.run(10000000ull);
            EXPECT_EQ(ref.halted, got.halted);
            EXPECT_EQ(ref.faulted, got.faulted);
            EXPECT_EQ(ref.stopReason, got.stopReason);
            EXPECT_EQ(ref.cycles, got.cycles);
            EXPECT_EQ(ref.committedInsts, got.committedInsts);
            EXPECT_EQ(ref.outputs, got.outputs);
        }
    }
}

TEST(BackendFuzz, ProfilerIsBackendInvariant)
{
    unsigned iters = std::min(fuzzIters(), 10u);
    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        ProfileData ref =
            profileProgram(prog, 10000000, BackendKind::Ref);
        for (BackendKind tier :
             {BackendKind::Threaded, BackendKind::BlockJit}) {
            SCOPED_TRACE(backendName(tier));
            ProfileData got = profileProgram(prog, 10000000, tier);
            EXPECT_EQ(ref.totalInsts, got.totalInsts);
            EXPECT_EQ(ref.ranToCompletion, got.ranToCompletion);
            EXPECT_EQ(ref.pcCount, got.pcCount);
            EXPECT_EQ(ref.writtenAddrs, got.writtenAddrs);
            ASSERT_EQ(ref.branches.size(), got.branches.size());
            for (const auto &[pc, bp] : ref.branches) {
                auto it = got.branches.find(pc);
                ASSERT_NE(it, got.branches.end());
                EXPECT_EQ(bp.taken, it->second.taken);
                EXPECT_EQ(bp.total, it->second.total);
            }
            ASSERT_EQ(ref.loads.size(), got.loads.size());
            for (const auto &[pc, lp] : ref.loads) {
                auto it = got.loads.find(pc);
                ASSERT_NE(it, got.loads.end());
                EXPECT_EQ(lp.count, it->second.count);
                EXPECT_EQ(lp.sameAsFirst, it->second.sameAsFirst);
                EXPECT_EQ(lp.sameAddr, it->second.sameAddr);
            }
            ASSERT_EQ(ref.stores.size(), got.stores.size());
            for (const auto &[pc, sp] : ref.stores) {
                auto it = got.stores.find(pc);
                ASSERT_NE(it, got.stores.end());
                EXPECT_EQ(sp.count, it->second.count);
                EXPECT_EQ(sp.silent, it->second.silent);
            }
        }
    }
}

} // namespace mssp

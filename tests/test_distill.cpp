/**
 * @file
 * Unit tests for the distiller: individual passes, layout/relink
 * correctness, and semantic properties of distilled programs.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "distill/distiller.hh"
#include "exec/seq_machine.hh"
#include "mssp/machine.hh"
#include "profile/profiler.hh"

namespace mssp
{
namespace
{

/** Distill with given options, profiling on the same program. */
DistilledProgram
distillSource(const std::string &src, DistillerOptions opts = {},
              ProfileData *profile_out = nullptr)
{
    Program p = assemble(src);
    ProfileData prof = profileProgram(p, 10000000);
    if (profile_out)
        *profile_out = prof;
    return distill(p, prof, opts);
}

/** Run a program on SEQ and return its outputs. */
OutputStream
seqOutputs(const Program &p, uint64_t max_insts = 10000000)
{
    SeqMachine m(p);
    m.run(max_insts);
    EXPECT_TRUE(m.halted());
    return m.outputs();
}

const char *kLoopProgram =
    "    li t0, 200\n"
    "    li s0, 0\n"
    "loop:\n"
    "    add s0, s0, t0\n"
    "    addi t0, t0, -1\n"
    "    bnez t0, loop\n"
    "    out s0, 1\n"
    "    halt\n";

TEST(Distill, ProducesForkSitesAndMaps)
{
    DistilledProgram d = distillSource(kLoopProgram);
    EXPECT_GE(d.taskMap.size(), 1u);
    EXPECT_EQ(d.taskMap.size(), d.entryMap.size());
    // Entry must be a restart point.
    Program p = assemble(kLoopProgram);
    EXPECT_NE(d.distilledPcFor(p.entry()), UINT32_MAX);
    // Distilled code lives at the distilled base.
    EXPECT_GE(d.prog.entry(), DistilledCodeBase);
}

TEST(Distill, SafePassesPreserveSemantics)
{
    // With approximation passes disabled (branch prune off), the
    // distilled program run standalone must produce identical output
    // (FORK executes as NOP outside the master).
    DistillerOptions opts;
    opts.enableBranchPrune = false;
    opts.enableSilentStoreElim = false;
    opts.enableValueSpec = false;

    for (const char *src : {kLoopProgram}) {
        Program orig = assemble(src);
        ProfileData prof = profileProgram(orig, 10000000);
        DistilledProgram d = distill(orig, prof, opts);

        // Execute the distilled program: image = orig data + distilled
        // code (distilled code addresses are disjoint from data).
        Program merged = d.prog;
        for (const auto &[addr, w] : orig.image()) {
            if (!merged.hasWord(addr))
                merged.setWord(addr, w);
        }
        merged.setEntry(d.prog.entry());
        EXPECT_EQ(seqOutputs(merged), seqOutputs(orig));
    }
}

TEST(Distill, BranchPruneShortensHotPath)
{
    // The rare branch fires every 50 iterations; bias ~0.98.
    std::string src =
        "    li t0, 500\n"
        "    li s0, 0\n"
        "loop:\n"
        "    rem t1, t0, s2\n"
        "    addi t2, t0, 0\n"
        "    li t3, 50\n"
        "    rem t1, t0, t3\n"
        "    beqz t1, rare\n"
        "back:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out s0, 1\n"
        "    halt\n"
        "rare:\n"
        "    addi s0, s0, 1\n"
        "    j back\n";
    DistillerOptions aggressive;
    aggressive.biasThreshold = 0.9;
    DistilledProgram d = distillSource(src, aggressive);
    EXPECT_GT(d.report.branchesToFall + d.report.branchesToJump, 0u);

    DistillerOptions safe;
    safe.enableBranchPrune = false;
    DistilledProgram d2 = distillSource(src, safe);
    EXPECT_EQ(d2.report.branchesToFall + d2.report.branchesToJump, 0u);
    // Pruning must shrink the static program.
    EXPECT_LT(d.report.distilledStaticInsts,
              d2.report.distilledStaticInsts);
}

TEST(Distill, UnreachableCodeRemoved)
{
    // 'errpath' is guarded by a branch that never fires in training,
    // so pruning makes it unreachable and it is deleted.
    std::string src =
        "    li t0, 1000\n"
        "loop:\n"
        "    bnez s9, errpath\n"    // s9 is always 0
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t0, 1\n"
        "    halt\n"
        "errpath:\n"
        "    addi s9, s9, 1\n"
        "    j loop\n";
    DistilledProgram d = distillSource(src);
    EXPECT_GT(d.report.blocksRemoved, 0u);
    EXPECT_GT(d.report.branchesToFall, 0u);
}

TEST(Distill, DceRemovesDeadCode)
{
    std::string src =
        "    li t0, 100\n"
        "loop:\n"
        "    add s5, t0, t0\n"     // dead: s5 never read
        "    mul s6, t0, t0\n"     // dead
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n";
    DistillerOptions opts;
    DistilledProgram d = distillSource(src, opts);
    EXPECT_GE(d.report.dceRemoved, 2u);

    DistillerOptions no_dce;
    no_dce.enableDce = false;
    DistilledProgram d2 = distillSource(src, no_dce);
    EXPECT_EQ(d2.report.dceRemoved, 0u);
}

TEST(Distill, ConstFoldCollapsesChains)
{
    std::string src =
        "    li t0, 6\n"
        "    li t1, 7\n"
        "    mul t2, t0, t1\n"     // 42, foldable
        "    out t2, 0\n"
        "    halt\n";
    DistilledProgram d = distillSource(src);
    EXPECT_GE(d.report.constFolded, 1u);
}

TEST(Distill, ValueSpecReplacesInvariantLoad)
{
    std::string src =
        "    li t0, 100\n"
        "    la t1, konst\n"
        "loop:\n"
        "    lw t2, 0(t1)\n"
        "    add s0, s0, t2\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out s0, 0\n"
        "    halt\n"
        ".org 0x2000\n"
        "konst: .word 37\n";
    DistillerOptions opts;
    opts.enableValueSpec = true;
    opts.minMemSamples = 8;
    DistilledProgram d = distillSource(src, opts);
    EXPECT_EQ(d.report.loadsValueSpeced, 1u);

    DistillerOptions off;
    off.enableValueSpec = false;
    DistilledProgram d2 = distillSource(src, off);
    EXPECT_EQ(d2.report.loadsValueSpeced, 0u);
}

TEST(Distill, SilentStoreElimination)
{
    std::string src =
        "    li t0, 100\n"
        "    la t1, cell\n"
        "    li t2, 5\n"
        "loop:\n"
        "    sw t2, 0(t1)\n"       // silent after first iteration
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        ".org 0x2000\n"
        "cell: .word 5\n";         // pre-initialized: always silent
    DistillerOptions opts;
    opts.enableSilentStoreElim = true;
    opts.minMemSamples = 8;
    DistilledProgram d = distillSource(src, opts);
    EXPECT_EQ(d.report.storesElided, 1u);
}

TEST(Distill, ExplicitForkSites)
{
    Program p = assemble(kLoopProgram);
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));
    ProfileData prof = profileProgram(p, 1000000);
    DistillerOptions opts;
    opts.explicitForkSites = {loop_pc};
    DistilledProgram d = distill(p, prof, opts);
    // Entry + the explicit site.
    EXPECT_EQ(d.taskMap.size(), 2u);
    EXPECT_TRUE(d.entryMap.count(loop_pc));
    EXPECT_TRUE(d.entryMap.count(p.entry()));
}

TEST(Distill, TaskMapAndEntryMapAgree)
{
    DistilledProgram d = distillSource(kLoopProgram);
    for (size_t i = 0; i < d.taskMap.size(); ++i) {
        uint32_t orig_pc = d.taskMap[i];
        ASSERT_TRUE(d.entryMap.count(orig_pc));
        uint32_t dist_pc = d.entryMap.at(orig_pc);
        // The distilled word at a restart point must be FORK with the
        // matching task-map index.
        Instruction inst = decode(d.prog.word(dist_pc));
        EXPECT_EQ(inst.op, Opcode::Fork);
        EXPECT_EQ(static_cast<size_t>(inst.imm), i);
    }
}

TEST(Distill, ReportToStringMentionsEverything)
{
    DistilledProgram d = distillSource(kLoopProgram);
    std::string s = d.report.toString();
    EXPECT_NE(s.find("static insts"), std::string::npos);
    EXPECT_NE(s.find("fork sites"), std::string::npos);
}

TEST(Distill, DistilledDynamicPathIsShorter)
{
    // The acid test of E1: the master executes fewer instructions
    // than the program commits. (Note: a distilled program run
    // *standalone* may diverge — loop-exit branches are maximally
    // biased and get pruned — so the comparison must go through the
    // MSSP machine, whose verify/squash path handles exactly this.)
    std::string src =
        "    li t0, 300\n"
        "    li s0, 0\n"
        "loop:\n"
        "    add s0, s0, t0\n"
        "    slli t4, t0, 2\n"       // dead
        "    xor t5, t4, s0\n"       // dead
        "    li t3, 97\n"
        "    rem t1, t0, t3\n"
        "    beqz t1, rare\n"
        "back:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out s0, 1\n"
        "    halt\n"
        "rare:\n"
        "    addi s0, s0, 7\n"
        "    j back\n";
    Program orig = assemble(src);
    ProfileData prof = profileProgram(orig, 10000000);
    DistillerOptions opts;
    opts.biasThreshold = 0.9;
    DistilledProgram d = distill(orig, prof, opts);

    MsspMachine machine(orig, d, MsspConfig{});
    MsspResult r = machine.run(100000000);
    ASSERT_TRUE(r.halted);
    SeqMachine orig_m(orig);
    orig_m.run(10000000);
    ASSERT_TRUE(orig_m.halted());
    EXPECT_EQ(r.outputs, orig_m.outputs());
    // The master's dynamic path must be meaningfully shorter than the
    // committed (original) path.
    EXPECT_LT(machine.counters().masterInsts,
              (r.committedInsts * 9) / 10);
}

} // anonymous namespace
} // namespace mssp

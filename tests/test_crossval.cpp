/**
 * @file
 * Static-risk vs. dynamic-misspeculation cross-validation gate: over
 * every registry workload, a distillation whose edits are all Proven
 * must produce zero divergence squashes on the full MSSP machine
 * (src/eval/crossval.hh). This is the falsifiable end-to-end claim
 * of the abstract interpreter.
 */

#include <gtest/gtest.h>

#include "eval/crossval.hh"
#include "helpers.hh"

namespace mssp
{

TEST(CrossVal, StaticRiskConsistentWithDynamicSquashes)
{
    setQuiet(true);
    MsspConfig cfg;
    CrossValReport rep = crossValidate(0.15, cfg, 80000000ull);

    ASSERT_EQ(rep.rows.size(), 12u);
    size_t rows_with_proven = 0;
    for (const CrossValRow &r : rep.rows) {
        EXPECT_TRUE(r.ok) << r.name << " did not run to completion";
        EXPECT_EQ(r.semanticErrors, 0u) << r.name;
        EXPECT_EQ(r.proven + r.risky + r.unknown, r.edits) << r.name;
        // Every static load carries a class, the persisted metadata
        // re-validates, and no ProvablyInvariant load ever changed
        // value during the SEQ replay — a nonzero count falsifies
        // the alias analysis and is a test failure, not a warning.
        EXPECT_GT(r.specLoads, 0u) << r.name;
        EXPECT_EQ(r.specProvablyInvariant + r.specRegionInvariant +
                      r.specRisky,
                  r.specLoads)
            << r.name;
        EXPECT_EQ(r.specErrors, 0u) << r.name;
        EXPECT_EQ(r.provInvariantValueChanges, 0u)
            << r.name
            << ": a provably-invariant load changed value at runtime";
        // The speculation plan re-validates and no Proven candidate
        // ever read a value other than its prediction during the SEQ
        // replay — one mismatch falsifies the value-flow analysis.
        EXPECT_EQ(r.planErrors, 0u) << r.name;
        EXPECT_EQ(r.planProvenMismatches, 0u)
            << r.name
            << ": a Proven plan candidate read an unpredicted value";
        EXPECT_EQ(r.planProven + r.planLikely, r.planCandidates)
            << r.name;
        rows_with_proven += r.planProven > 0 ? 1 : 0;
        EXPECT_TRUE(r.consistent)
            << r.name << ": all-proven workload squashed "
            << r.divergenceSquashes << " tasks on divergence";
    }
    // Non-vacuity: the planner proves candidates on most of the
    // registry, not just one lucky workload (gzip legitimately has
    // none — all its loads are risky).
    EXPECT_GE(rows_with_proven, 8u) << rep.toText();
    EXPECT_TRUE(rep.allConsistent()) << rep.toText();

    std::string text = rep.toText();
    EXPECT_NE(text.find("gzip"), std::string::npos);
    EXPECT_NE(text.find("consistent"), std::string::npos);
}

} // namespace mssp

/**
 * @file
 * The value-speculating distiller (distill/speculate.cc) and its
 * .mdo v5 persistence.
 *
 * The contract under test, per DESIGN.md §13: baking a Proven
 * speculation-plan candidate into the master's image must never
 * change architected results (the machine polices every prediction
 * through the fork/verify/squash protocol), the speculated image
 * must persist byte-deterministically with full specedit provenance,
 * and every corruption class — tampered record, tampered image word,
 * dropped provenance — must be caught by mssp-lint statically or the
 * crossval SEQ replay dynamically.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/verifier.hh"
#include "asm/objfile.hh"
#include "eval/crossval.hh"
#include "eval/experiment.hh"
#include "helpers.hh"
#include "sim/logging.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

/** Prepare one registry workload and speculate it. */
struct Speculated
{
    PreparedWorkload w;
    DistilledProgram spec;
};

Speculated
speculateWorkload(const std::string &name, double scale = 0.05)
{
    setQuiet(true);
    Workload wl = workloadByName(name, scale);
    Speculated s;
    s.w = prepare(wl.refSource, wl.trainSource,
                  DistillerOptions::paperPreset());
    s.spec = distillSpeculated(s.w.orig, s.w.profile,
                               DistillerOptions::paperPreset(),
                               SpeculateOptions{});
    return s;
}

/** Rewrite the first line starting with @p key via @p edit. */
std::string
tamperLine(const std::string &text, const std::string &key,
           const std::function<std::string(const std::string &)> &edit)
{
    std::string out;
    bool done = false;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        if (!done && line.rfind(key, 0) == 0) {
            line = edit(line);
            done = true;
        }
        if (!line.empty() || nl < text.size())
            out += line + "\n";
        pos = nl + 1;
    }
    EXPECT_TRUE(done) << "no '" << key << "' line to tamper with";
    return out;
}

} // anonymous namespace

TEST(Speculate, BakedImageStaysEquivalentToSeqOracle)
{
    // mcf: pointer chasing with one Proven plan candidate. The baked
    // image must commit byte-identical architected state.
    Speculated s = speculateWorkload("mcf");
    ASSERT_GE(s.spec.specEdits.size(), 1u);
    MsspMachine m(s.w.orig, s.spec, MsspConfig{});
    MsspResult r = m.run(400000000ull);
    test::expectEquivalent(s.w.orig, r);
}

TEST(Speculate, SpeculatedDistillationIsByteDeterministic)
{
    Speculated a = speculateWorkload("bzip2");
    Speculated b = speculateWorkload("bzip2");
    EXPECT_EQ(saveDistilled(a.spec), saveDistilled(b.spec));
}

TEST(Speculate, V5RoundTripPreservesEverySpecField)
{
    Speculated s = speculateWorkload("gcc");
    ASSERT_FALSE(s.spec.specEdits.empty());
    std::string text = saveDistilled(s.spec);
    DistilledProgram back = loadDistilled(text);
    EXPECT_EQ(back.specEdits, s.spec.specEdits);
    EXPECT_EQ(back.specDropped, s.spec.specDropped);
    EXPECT_EQ(back.specGeneration, s.spec.specGeneration);
    // Second save must reproduce the bytes exactly.
    EXPECT_EQ(saveDistilled(back), text);
}

TEST(Speculate, SpeculatedImagePassesEveryStaticValidator)
{
    Speculated s = speculateWorkload("vortex");
    analysis::LintReport rep =
        analysis::verifyDistilled(s.w.orig, s.spec);
    EXPECT_EQ(rep.errors(), 0u) << rep.toText();
    analysis::SemanticResult sem =
        analysis::verifyDistilledSemantic(s.w.orig, s.spec);
    EXPECT_EQ(sem.lint.errors(), 0u) << sem.lint.toText();
}

TEST(Speculate, TamperedSpecEditValueIsCaughtStaticallyAndAtRuntime)
{
    Speculated s = speculateWorkload("mcf");
    ASSERT_FALSE(s.spec.specEdits.empty());
    // Flip the recorded baked value (token 6 of the specedit line).
    std::string bad = tamperLine(
        saveDistilled(s.spec), "specedit", [](const std::string &l) {
            std::vector<std::string> toks;
            for (std::string_view t : split(l, ' '))
                toks.emplace_back(t);
            toks[6] = "0xdeadbeef";
            std::string out;
            for (size_t i = 0; i < toks.size(); ++i)
                out += (i ? " " : "") + toks[i];
            return out;
        });
    DistilledProgram tampered = loadDistilled(bad);

    // Statically: the record no longer matches the image's baked
    // constant.
    analysis::LintReport rep =
        analysis::verifyDistilled(s.w.orig, tampered);
    EXPECT_GT(rep.errors(), 0u);
    EXPECT_NE(rep.toText().find("specedit-mismatch"),
              std::string::npos)
        << rep.toText();

    // Dynamically: the SEQ replay of the original program observes
    // values the corrupted record never predicts.
    SpecEditDynamicResult dyn =
        validateSpecEditsDynamic(s.w.orig, tampered);
    EXPECT_GE(dyn.checkedEdits, 1u);
    EXPECT_GT(dyn.provenMismatches, 0u) << dyn.firstViolation;
}

TEST(Speculate, TamperedBakedImageWordIsCaughtByLint)
{
    Speculated s = speculateWorkload("mcf");
    ASSERT_FALSE(s.spec.specEdits.empty());
    // Overwrite the LoadImm word the edit points at with a nop-like
    // unrelated instruction; the record and image now disagree.
    uint32_t dist_pc = s.spec.specEdits.front().distPc;
    std::string key = strfmt("word 0x%x ", dist_pc);
    std::string bad = tamperLine(
        saveDistilled(s.spec), key, [&](const std::string &) {
            return strfmt("word 0x%x 0x0", dist_pc);
        });
    DistilledProgram tampered = loadDistilled(bad);
    analysis::LintReport rep =
        analysis::verifyDistilled(s.w.orig, tampered);
    EXPECT_GT(rep.errors(), 0u);
    EXPECT_NE(rep.toText().find("specedit-mismatch"),
              std::string::npos)
        << rep.toText();
}

TEST(Speculate, DroppedProvenanceIsCaughtAsCoverageError)
{
    Speculated s = speculateWorkload("mcf");
    ASSERT_FALSE(s.spec.specEdits.empty());
    // Remove the ValueSpec edit-log line backing the first specedit:
    // a speculated image without provenance for a bake must not lint
    // clean.
    const SpecEdit &e = s.spec.specEdits.front();
    std::string key = strfmt("edit value-spec 0x%x", e.origPc);
    std::string text = saveDistilled(s.spec);
    ASSERT_NE(text.find(key), std::string::npos);
    std::string bad =
        tamperLine(text, key, [](const std::string &) {
            return std::string();
        });
    DistilledProgram tampered = loadDistilled(bad);
    analysis::LintReport rep =
        analysis::verifyDistilled(s.w.orig, tampered);
    EXPECT_GT(rep.errors(), 0u);
    EXPECT_NE(rep.toText().find("specedit-coverage"),
              std::string::npos)
        << rep.toText();
}

TEST(Speculate, DespeculatedLoadsAreExcludedAndRecorded)
{
    Speculated s = speculateWorkload("mcf");
    ASSERT_FALSE(s.spec.specEdits.empty());
    SpeculateOptions sopts;
    sopts.despeculated.push_back(s.spec.specEdits.front().origPc);
    sopts.generation = 3;
    DistilledProgram dropped = distillSpeculated(
        s.w.orig, s.w.profile, DistillerOptions::paperPreset(),
        sopts);
    EXPECT_EQ(dropped.specEdits.size(), s.spec.specEdits.size() - 1);
    EXPECT_EQ(dropped.specDropped, sopts.despeculated);
    EXPECT_EQ(dropped.specGeneration, 3u);
    for (const SpecEdit &e : dropped.specEdits)
        EXPECT_NE(e.origPc, sopts.despeculated.front());
    // And the exclusion set round-trips through the object format.
    DistilledProgram back = loadDistilled(saveDistilled(dropped));
    EXPECT_EQ(back.specDropped, sopts.despeculated);
    EXPECT_EQ(back.specGeneration, 3u);
}

TEST(Speculate, SweepBakesProvenLoadsAndShortensMasterPath)
{
    // The paper's payoff across the whole registry: every speculated
    // image stays SEQ-equivalent, never lengthens the master's
    // retired path, and at least 8 of the 12 workloads bake >=1
    // Proven load while retiring strictly fewer master instructions.
    setQuiet(true);
    size_t proven_and_fewer = 0;
    for (const Workload &wl : specAnalogues(0.05)) {
        SCOPED_TRACE(wl.name);
        PreparedWorkload w =
            prepare(wl.refSource, wl.trainSource,
                    DistillerOptions::paperPreset());
        DistilledProgram spec = distillSpeculated(
            w.orig, w.profile, DistillerOptions::paperPreset(),
            SpeculateOptions{});
        size_t proven = 0;
        for (const SpecEdit &e : spec.specEdits)
            proven += e.proof == ValueProof::Proven ? 1 : 0;

        WorkloadRun base =
            runPrepared(wl.name, w, MsspConfig{}, 400000000ull);
        ASSERT_TRUE(base.ok);
        PreparedWorkload sw{w.orig, w.profile, spec};
        WorkloadRun srun =
            runPrepared(wl.name, sw, MsspConfig{}, 400000000ull);
        EXPECT_TRUE(srun.ok);
        EXPECT_LE(srun.masterInsts, base.masterInsts);
        if (proven >= 1 && srun.masterInsts < base.masterInsts)
            ++proven_and_fewer;
    }
    EXPECT_GE(proven_and_fewer, 8u);
}

} // namespace mssp

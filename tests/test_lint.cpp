/**
 * @file
 * mssp-lint verifier tests: honest distilled programs are clean
 * (every registry workload at default options), and each corruption
 * class an adversary (or a distiller bug) could introduce is flagged
 * with the right severity — bad control-flow targets, fork/task-map
 * damage, checkpoint under-approximation, use-before-def, unsafe
 * approximate edits, and inescapable loops.
 */

#include <gtest/gtest.h>

#include "analysis/verifier.hh"
#include "asm/objfile.hh"
#include "core/pipeline.hh"
#include "helpers.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

using analysis::LintCheck;
using analysis::LintReport;
using analysis::Severity;
using analysis::verifyDistilled;

constexpr double kTestScale = 0.15;

/** Count findings of one check. */
size_t
countOf(const LintReport &rep, LintCheck check)
{
    size_t n = 0;
    for (const auto &f : rep.findings)
        n += f.check == check;
    return n;
}

/** First finding of a check (must exist). */
const analysis::Finding &
findingOf(const LintReport &rep, LintCheck check)
{
    for (const auto &f : rep.findings) {
        if (f.check == check)
            return f;
    }
    ADD_FAILURE() << "no finding of check "
                  << analysis::lintCheckName(check);
    static analysis::Finding none;
    return none;
}

/** A prepared micro workload the corruption tests mutate. */
PreparedWorkload
preparedLoop()
{
    return prepare(test::biasedSumSource(96, 1),
                   test::biasedSumSource(96, 2),
                   DistillerOptions::paperPreset());
}

} // anonymous namespace

// -- Honest images are clean --------------------------------------------

class LintWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LintWorkloads, NoFindingsAtDefaultOptions)
{
    Workload w = workloadByName(GetParam(), kTestScale);
    PreparedWorkload p =
        prepare(w.refSource, w.trainSource, DistillerOptions{});
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_TRUE(rep.clean()) << rep.toText();
}

TEST_P(LintWorkloads, NoErrorsAtPaperPreset)
{
    Workload w = workloadByName(GetParam(), kTestScale);
    PreparedWorkload p = prepare(w.refSource, w.trainSource,
                                 DistillerOptions::paperPreset());
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(rep.errors(), 0u) << rep.toText();
}

INSTANTIATE_TEST_SUITE_P(
    All, LintWorkloads,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const auto &info) { return info.param; });

TEST(Lint, HonestMicroWorkloadsAreClean)
{
    for (uint64_t seed : {1, 2, 3}) {
        PreparedWorkload p =
            prepare(test::biasedSumSource(128, seed),
                    test::biasedSumSource(128, seed + 10),
                    DistillerOptions::paperPreset());
        EXPECT_TRUE(verifyDistilled(p.orig, p.dist).clean());

        PreparedWorkload c =
            prepare(test::callLoopSource(64, seed),
                    test::callLoopSource(64, seed + 10),
                    DistillerOptions::paperPreset());
        EXPECT_TRUE(verifyDistilled(c.orig, c.dist).clean());
    }
}

TEST(Lint, SurvivesObjfileRoundTrip)
{
    PreparedWorkload p = preparedLoop();
    DistilledProgram reloaded =
        loadDistilled(saveDistilled(p.dist));
    EXPECT_EQ(reloaded.checkpointRegs, p.dist.checkpointRegs);
    EXPECT_EQ(reloaded.report.edits.size(),
              p.dist.report.edits.size());
    EXPECT_TRUE(verifyDistilled(p.orig, reloaded).clean());
}

// -- Corruption class 1: bad control-flow target ------------------------

TEST(LintCorruption, BranchIntoUnmappedMemoryIsAnError)
{
    PreparedWorkload p = preparedLoop();
    // Redirect the entry's first control transfer off the image by
    // planting an unconditional jump far away.
    uint32_t pc = p.dist.prog.entry() + 1;
    p.dist.prog.setWord(pc, encode(makeJ(Opcode::Jal, reg::Zero,
                                         0x80000)));
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_GT(rep.errors(), 0u);
    const auto &f = findingOf(rep, LintCheck::DecodeFault);
    EXPECT_EQ(f.severity, Severity::Error);
}

TEST(LintCorruption, UndecodableReachableWordIsAnError)
{
    PreparedWorkload p = preparedLoop();
    p.dist.prog.setWord(p.dist.prog.entry() + 2, 0);   // opcode 0
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_GE(countOf(rep, LintCheck::DecodeFault), 1u);
    EXPECT_GT(rep.errors(), 0u);
}

// -- Corruption class 2: fork / task-map damage -------------------------

TEST(LintCorruption, ForkIndexOutOfRangeIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.entryMap.empty());
    uint32_t fork_pc = p.dist.entryMap.begin()->second;
    p.dist.prog.setWord(fork_pc,
                        encode(makeJ(Opcode::Fork, 0, 999)));
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(findingOf(rep, LintCheck::ForkIndex).severity,
              Severity::Error);
}

TEST(LintCorruption, ForkTargetOffOriginalProgramIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.taskMap.empty());
    uint32_t orig_pc = p.dist.taskMap.back();
    p.dist.taskMap.back() = 0xdead00;   // not original code
    // Keep the restart map keyed consistently so only the task map
    // is at fault.
    auto node = p.dist.entryMap.extract(orig_pc);
    node.key() = 0xdead00;
    p.dist.entryMap.insert(std::move(node));
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(findingOf(rep, LintCheck::ForkTarget).severity,
              Severity::Error);
}

TEST(LintCorruption, RestartMapMismatchIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.entryMap.empty());
    p.dist.entryMap.begin()->second += 1;   // no longer at the FORK
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(findingOf(rep, LintCheck::RestartMap).severity,
              Severity::Error);
}

// -- Corruption class 3: checkpoint soundness ---------------------------

TEST(LintCorruption, CheckpointUnderApproximationIsAnError)
{
    PreparedWorkload p = preparedLoop();
    // Find a fork site with a nonempty claimed mask and drop one
    // register from it.
    auto it = p.dist.checkpointRegs.begin();
    while (it != p.dist.checkpointRegs.end() && it->second == 0)
        ++it;
    ASSERT_NE(it, p.dist.checkpointRegs.end())
        << "no fork site with live-in registers";
    RegMask bit = it->second & ~(it->second - 1);   // lowest set bit
    it->second &= ~bit;

    LintReport rep = verifyDistilled(p.orig, p.dist);
    const auto &f =
        findingOf(rep, LintCheck::CheckpointUnderApprox);
    EXPECT_EQ(f.severity, Severity::Error);
    EXPECT_EQ(f.pc, it->first);
}

TEST(LintCorruption, CheckpointOverApproximationIsAWarning)
{
    PreparedWorkload p = preparedLoop();
    // Claim a register no task ever reads before writing.
    auto it = p.dist.checkpointRegs.begin();
    ASSERT_NE(it, p.dist.checkpointRegs.end());
    it->second |= 1u << reg::S10;

    LintReport rep = verifyDistilled(p.orig, p.dist);
    const auto &f =
        findingOf(rep, LintCheck::CheckpointOverApprox);
    EXPECT_EQ(f.severity, Severity::Warning);
    EXPECT_EQ(rep.errors(), 0u);   // waste is not a contract breach
    EXPECT_NE(f.message.find("s10"), std::string::npos);
}

TEST(LintCorruption, MissingCheckpointMaskIsAnError)
{
    PreparedWorkload p = preparedLoop();
    ASSERT_FALSE(p.dist.checkpointRegs.empty());
    p.dist.checkpointRegs.erase(p.dist.checkpointRegs.begin());
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(findingOf(rep, LintCheck::CheckpointMissing).severity,
              Severity::Error);
}

// -- Corruption class 4: use-before-def ---------------------------------

TEST(LintCorruption, UseBeforeDefOfUncheckpointedRegIsAWarning)
{
    PreparedWorkload p = preparedLoop();
    // Drop a register that IS read by the task from the claim: the
    // garbage analysis must find a read of it on some path from the
    // restart before any write.
    bool corrupted = false;
    for (auto &[orig_pc, mask] : p.dist.checkpointRegs) {
        if (mask) {
            mask = 0;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    LintReport rep = verifyDistilled(p.orig, p.dist);
    const auto &f = findingOf(rep, LintCheck::UseBeforeDef);
    EXPECT_EQ(f.severity, Severity::Warning);
    // The accompanying under-approximation is the error.
    EXPECT_GE(countOf(rep, LintCheck::CheckpointUnderApprox), 1u);
}

// -- Corruption class 5: unsafe approximate edits -----------------------

TEST(LintCorruption, ApproximateEditOnWrongInstructionIsAnError)
{
    PreparedWorkload p = preparedLoop();
    // Claim a branch was pruned at a PC that holds no branch.
    DistillEdit e;
    e.pass = DistillEdit::Pass::BranchPrune;
    e.origPc = p.orig.entry();   // `li`, not a branch
    p.dist.report.edits.push_back(e);
    LintReport rep = verifyDistilled(p.orig, p.dist);
    const auto &f = findingOf(rep, LintCheck::EditTarget);
    EXPECT_EQ(f.severity, Severity::Error);
    EXPECT_TRUE(f.hasPass);
    EXPECT_EQ(f.pass, DistillEdit::Pass::BranchPrune);
}

TEST(LintCorruption, SilentStoreEditOnNonStoreIsAnError)
{
    PreparedWorkload p = preparedLoop();
    DistillEdit e;
    e.pass = DistillEdit::Pass::SilentStoreElim;
    e.origPc = p.orig.entry();
    p.dist.report.edits.push_back(e);
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_GE(countOf(rep, LintCheck::EditTarget), 1u);
}

TEST(LintCorruption, EditOutsideReachableCodeIsAnError)
{
    PreparedWorkload p = preparedLoop();
    DistillEdit e;
    e.pass = DistillEdit::Pass::Dce;
    e.origPc = 0x7fff0000;
    e.reg = reg::T0;
    p.dist.report.edits.push_back(e);
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_EQ(
        findingOf(rep, LintCheck::EditOutsideProgram).severity,
        Severity::Error);
}

// -- Corruption class 6: inescapable loop -------------------------------

TEST(LintCorruption, InescapableLoopWithoutForkIsAnError)
{
    PreparedWorkload p = preparedLoop();
    // Plant `j self` somewhere reachable: the entry block's second
    // word becomes a tight self-loop with no fork inside.
    uint32_t pc = p.dist.prog.entry() + 1;
    p.dist.prog.setWord(pc, encode(makeJ(Opcode::Jal, reg::Zero,
                                         -1)));
    LintReport rep = verifyDistilled(p.orig, p.dist);
    const auto &f = findingOf(rep, LintCheck::InescapableLoop);
    EXPECT_EQ(f.severity, Severity::Error);
    EXPECT_EQ(f.pc, pc);
}

// -- Reporting ----------------------------------------------------------

TEST(LintReport, JsonAndTextCarryTheFindings)
{
    PreparedWorkload p = preparedLoop();
    auto it = p.dist.checkpointRegs.begin();
    while (it != p.dist.checkpointRegs.end() && it->second == 0)
        ++it;
    ASSERT_NE(it, p.dist.checkpointRegs.end());
    it->second = 0;

    LintReport rep = verifyDistilled(p.orig, p.dist);
    ASSERT_FALSE(rep.clean());

    std::string text = rep.toText();
    EXPECT_NE(text.find("checkpoint-under-approx"),
              std::string::npos);
    EXPECT_NE(text.find("error["), std::string::npos);

    std::string json = rep.toJson();
    EXPECT_NE(json.find("\"severity\": \"error\""),
              std::string::npos);
    EXPECT_NE(json.find("\"check\": \"checkpoint-under-approx\""),
              std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
    // The counts match the findings list.
    EXPECT_NE(json.find(strfmt("\"errors\": %zu", rep.errors())),
              std::string::npos);
}

TEST(LintReport, CleanRunIsEmpty)
{
    PreparedWorkload p = preparedLoop();
    LintReport rep = verifyDistilled(p.orig, p.dist);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.errors(), 0u);
    EXPECT_EQ(rep.warnings(), 0u);
    EXPECT_EQ(rep.toJson(),
              "{\"schema\": \"mssp-lint-v1\", \"errors\": 0, "
              "\"warnings\": 0, \"findings\": []}\n");
}

} // namespace mssp

/**
 * @file
 * Unit tests for instruction semantics (the executor) and the SEQ
 * reference machine.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "exec/executor.hh"
#include "exec/seq_machine.hh"

namespace mssp
{
namespace
{

/** Run a source program on SEQ and return the machine. */
SeqMachine
runSeq(const std::string &src, uint64_t max_insts = 100000)
{
    Program prog = assemble(src);
    SeqMachine m(prog);   // copies the image; prog may die
    m.run(max_insts);
    return m;
}

TEST(Exec, ArithmeticBasics)
{
    auto m = runSeq(
        "li t0, 7\n"
        "li t1, 3\n"
        "add t2, t0, t1\n"
        "sub t3, t0, t1\n"
        "mul t4, t0, t1\n"
        "div t5, t0, t1\n"
        "rem t6, t0, t1\n"
        "out t2, 0\nout t3, 0\nout t4, 0\nout t5, 0\nout t6, 0\n"
        "halt\n");
    ASSERT_TRUE(m.halted());
    ASSERT_EQ(m.outputs().size(), 5u);
    EXPECT_EQ(m.outputs()[0].value, 10u);
    EXPECT_EQ(m.outputs()[1].value, 4u);
    EXPECT_EQ(m.outputs()[2].value, 21u);
    EXPECT_EQ(m.outputs()[3].value, 2u);
    EXPECT_EQ(m.outputs()[4].value, 1u);
}

TEST(Exec, SignedDivisionEdgeCases)
{
    auto m = runSeq(
        "li t0, -7\n"
        "li t1, 3\n"
        "div t2, t0, t1\n"       // -2 (trunc toward zero)
        "rem t3, t0, t1\n"       // -1
        "li t4, 5\n"
        "div t5, t4, zero\n"     // div by zero -> all ones
        "rem t6, t4, zero\n"     // rem by zero -> dividend
        "li s0, 0x80000000\n"
        "li s1, -1\n"
        "div s2, s0, s1\n"       // INT_MIN / -1 -> INT_MIN
        "rem s3, s0, s1\n"       // INT_MIN % -1 -> 0
        "out t2, 0\nout t3, 0\nout t5, 0\nout t6, 0\n"
        "out s2, 0\nout s3, 0\n"
        "halt\n");
    ASSERT_EQ(m.outputs().size(), 6u);
    EXPECT_EQ(m.outputs()[0].value, static_cast<uint32_t>(-2));
    EXPECT_EQ(m.outputs()[1].value, static_cast<uint32_t>(-1));
    EXPECT_EQ(m.outputs()[2].value, 0xffffffffu);
    EXPECT_EQ(m.outputs()[3].value, 5u);
    EXPECT_EQ(m.outputs()[4].value, 0x80000000u);
    EXPECT_EQ(m.outputs()[5].value, 0u);
}

TEST(Exec, LogicalImmediatesZeroExtend)
{
    auto m = runSeq(
        "li t0, 0xf0f0\n"
        "ori t1, zero, 0xffff\n"   // 0x0000ffff, NOT sign-extended
        "andi t2, t0, 0xff00\n"
        "xori t3, t0, 0xffff\n"
        "out t1, 0\nout t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0xffffu);
    EXPECT_EQ(m.outputs()[1].value, 0xf000u);
    EXPECT_EQ(m.outputs()[2].value, 0x0f0fu);
}

TEST(Exec, ArithImmediatesSignExtend)
{
    auto m = runSeq(
        "addi t0, zero, -1\n"
        "slti t1, t0, 0\n"        // -1 < 0 signed -> 1
        "sltiu t2, t0, 0\n"       // 0xffffffff < 0 unsigned -> 0
        "sltiu t3, zero, -1\n"    // 0 < 0xffffffff -> 1
        "out t0, 0\nout t1, 0\nout t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0xffffffffu);
    EXPECT_EQ(m.outputs()[1].value, 1u);
    EXPECT_EQ(m.outputs()[2].value, 0u);
    EXPECT_EQ(m.outputs()[3].value, 1u);
}

TEST(Exec, Shifts)
{
    auto m = runSeq(
        "li t0, 0x80000000\n"
        "srl t1, t0, zero\n"      // shift by 0
        "li t2, 4\n"
        "srl t3, t0, t2\n"
        "sra t4, t0, t2\n"
        "li t5, 1\n"
        "sll t6, t5, t2\n"
        "li s0, 36\n"             // shift amounts mask to 5 bits
        "sll s1, t5, s0\n"        // 1 << (36 & 31) = 16
        "out t1, 0\nout t3, 0\nout t4, 0\nout t6, 0\nout s1, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0x80000000u);
    EXPECT_EQ(m.outputs()[1].value, 0x08000000u);
    EXPECT_EQ(m.outputs()[2].value, 0xf8000000u);
    EXPECT_EQ(m.outputs()[3].value, 16u);
    EXPECT_EQ(m.outputs()[4].value, 16u);
}

TEST(Exec, MemoryRoundTrip)
{
    auto m = runSeq(
        "li t0, 0x2000\n"
        "li t1, 1234\n"
        "sw t1, 4(t0)\n"
        "lw t2, 4(t0)\n"
        "lw t3, 8(t0)\n"        // never written -> 0
        "out t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 1234u);
    EXPECT_EQ(m.outputs()[1].value, 0u);
}

TEST(Exec, BranchesAndLoop)
{
    auto m = runSeq(
        "    li t0, 5\n"
        "    li t1, 0\n"
        "loop:\n"
        "    add t1, t1, t0\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t1, 0\n"
        "    halt\n");
    EXPECT_EQ(m.outputs()[0].value, 15u);   // 5+4+3+2+1
}

TEST(Exec, CallAndReturn)
{
    auto m = runSeq(
        "    li a0, 10\n"
        "    call double_it\n"
        "    out a0, 0\n"
        "    halt\n"
        "double_it:\n"
        "    add a0, a0, a0\n"
        "    ret\n");
    EXPECT_EQ(m.outputs()[0].value, 20u);
}

TEST(Exec, JalrComputedTarget)
{
    auto m = runSeq(
        "    la t0, tgt\n"
        "    jalr ra, t0, 0\n"
        "    halt\n"
        "tgt:\n"
        "    out t0, 0\n"
        "    halt\n");
    ASSERT_EQ(m.outputs().size(), 1u);
}

TEST(Exec, RegisterZeroStaysZero)
{
    auto m = runSeq(
        "addi zero, zero, 5\n"
        "out zero, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0u);
}

TEST(Exec, ForkIsNopOutsideMaster)
{
    auto m = runSeq(
        "fork 3\n"
        "li t0, 1\n"
        "out t0, 0\n"
        "halt\n");
    ASSERT_TRUE(m.halted());
    EXPECT_EQ(m.outputs()[0].value, 1u);
}

TEST(Exec, IllegalInstructionFaults)
{
    // Jump into unmapped memory: fetch returns 0, which is illegal.
    Program p = assemble("j nowhere\nnowhere:\n");
    // Overwrite target with a zero word by jumping past end of code.
    SeqMachine m(p);
    m.run(10);
    EXPECT_TRUE(m.faulted());
    EXPECT_FALSE(m.halted());
}

TEST(Exec, HaltCountsAsInstruction)
{
    auto m = runSeq("halt\n");
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(m.instCount(), 1u);
    EXPECT_EQ(m.state().instret(), 1u);
}

TEST(Exec, RunRespectsMaxInsts)
{
    Program p = assemble(
        "loop: j loop\n");
    SeqMachine m(p);
    auto r = m.run(100);
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.instCount, 100u);
    // Continuing works.
    auto r2 = m.run(50);
    EXPECT_EQ(r2.instCount, 50u);
    EXPECT_EQ(m.instCount(), 150u);
}

TEST(Exec, ObserverSeesEveryStep)
{
    struct Counter : SeqMachine::Observer
    {
        uint64_t steps = 0;
        uint64_t branches_taken = 0;
        void
        onStep(uint32_t, const StepResult &res) override
        {
            ++steps;
            if (isCondBranch(res.inst.op) && res.branchTaken)
                ++branches_taken;
        }
    };
    Program p = assemble(
        "    li t0, 3\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    SeqMachine m(p);
    Counter c;
    m.setObserver(&c);
    m.run(1000);
    EXPECT_EQ(c.steps, m.instCount());
    EXPECT_EQ(c.branches_taken, 2u);
}

TEST(Exec, EvalAluHelper)
{
    uint32_t out = 0;
    EXPECT_TRUE(evalAlu(Opcode::Add, 2, 3, out));
    EXPECT_EQ(out, 5u);
    EXPECT_TRUE(evalAlu(Opcode::Lui, 0, 0x12, out));
    EXPECT_EQ(out, 0x120000u);
    EXPECT_FALSE(evalAlu(Opcode::Lw, 0, 0, out));
    EXPECT_FALSE(evalAlu(Opcode::Beq, 0, 0, out));
    EXPECT_FALSE(evalAlu(Opcode::Jal, 0, 0, out));
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for instruction semantics (the executor) and the SEQ
 * reference machine.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "exec/blockjit.hh"
#include "exec/executor.hh"
#include "exec/seq_machine.hh"

namespace mssp
{
namespace
{

/** Run a source program on SEQ and return the machine. */
SeqMachine
runSeq(const std::string &src, uint64_t max_insts = 100000)
{
    Program prog = assemble(src);
    SeqMachine m(prog);   // copies the image; prog may die
    m.run(max_insts);
    return m;
}

TEST(Exec, ArithmeticBasics)
{
    auto m = runSeq(
        "li t0, 7\n"
        "li t1, 3\n"
        "add t2, t0, t1\n"
        "sub t3, t0, t1\n"
        "mul t4, t0, t1\n"
        "div t5, t0, t1\n"
        "rem t6, t0, t1\n"
        "out t2, 0\nout t3, 0\nout t4, 0\nout t5, 0\nout t6, 0\n"
        "halt\n");
    ASSERT_TRUE(m.halted());
    ASSERT_EQ(m.outputs().size(), 5u);
    EXPECT_EQ(m.outputs()[0].value, 10u);
    EXPECT_EQ(m.outputs()[1].value, 4u);
    EXPECT_EQ(m.outputs()[2].value, 21u);
    EXPECT_EQ(m.outputs()[3].value, 2u);
    EXPECT_EQ(m.outputs()[4].value, 1u);
}

TEST(Exec, SignedDivisionEdgeCases)
{
    auto m = runSeq(
        "li t0, -7\n"
        "li t1, 3\n"
        "div t2, t0, t1\n"       // -2 (trunc toward zero)
        "rem t3, t0, t1\n"       // -1
        "li t4, 5\n"
        "div t5, t4, zero\n"     // div by zero -> all ones
        "rem t6, t4, zero\n"     // rem by zero -> dividend
        "li s0, 0x80000000\n"
        "li s1, -1\n"
        "div s2, s0, s1\n"       // INT_MIN / -1 -> INT_MIN
        "rem s3, s0, s1\n"       // INT_MIN % -1 -> 0
        "out t2, 0\nout t3, 0\nout t5, 0\nout t6, 0\n"
        "out s2, 0\nout s3, 0\n"
        "halt\n");
    ASSERT_EQ(m.outputs().size(), 6u);
    EXPECT_EQ(m.outputs()[0].value, static_cast<uint32_t>(-2));
    EXPECT_EQ(m.outputs()[1].value, static_cast<uint32_t>(-1));
    EXPECT_EQ(m.outputs()[2].value, 0xffffffffu);
    EXPECT_EQ(m.outputs()[3].value, 5u);
    EXPECT_EQ(m.outputs()[4].value, 0x80000000u);
    EXPECT_EQ(m.outputs()[5].value, 0u);
}

TEST(Exec, LogicalImmediatesZeroExtend)
{
    auto m = runSeq(
        "li t0, 0xf0f0\n"
        "ori t1, zero, 0xffff\n"   // 0x0000ffff, NOT sign-extended
        "andi t2, t0, 0xff00\n"
        "xori t3, t0, 0xffff\n"
        "out t1, 0\nout t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0xffffu);
    EXPECT_EQ(m.outputs()[1].value, 0xf000u);
    EXPECT_EQ(m.outputs()[2].value, 0x0f0fu);
}

TEST(Exec, ArithImmediatesSignExtend)
{
    auto m = runSeq(
        "addi t0, zero, -1\n"
        "slti t1, t0, 0\n"        // -1 < 0 signed -> 1
        "sltiu t2, t0, 0\n"       // 0xffffffff < 0 unsigned -> 0
        "sltiu t3, zero, -1\n"    // 0 < 0xffffffff -> 1
        "out t0, 0\nout t1, 0\nout t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0xffffffffu);
    EXPECT_EQ(m.outputs()[1].value, 1u);
    EXPECT_EQ(m.outputs()[2].value, 0u);
    EXPECT_EQ(m.outputs()[3].value, 1u);
}

TEST(Exec, Shifts)
{
    auto m = runSeq(
        "li t0, 0x80000000\n"
        "srl t1, t0, zero\n"      // shift by 0
        "li t2, 4\n"
        "srl t3, t0, t2\n"
        "sra t4, t0, t2\n"
        "li t5, 1\n"
        "sll t6, t5, t2\n"
        "li s0, 36\n"             // shift amounts mask to 5 bits
        "sll s1, t5, s0\n"        // 1 << (36 & 31) = 16
        "out t1, 0\nout t3, 0\nout t4, 0\nout t6, 0\nout s1, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0x80000000u);
    EXPECT_EQ(m.outputs()[1].value, 0x08000000u);
    EXPECT_EQ(m.outputs()[2].value, 0xf8000000u);
    EXPECT_EQ(m.outputs()[3].value, 16u);
    EXPECT_EQ(m.outputs()[4].value, 16u);
}

TEST(Exec, MemoryRoundTrip)
{
    auto m = runSeq(
        "li t0, 0x2000\n"
        "li t1, 1234\n"
        "sw t1, 4(t0)\n"
        "lw t2, 4(t0)\n"
        "lw t3, 8(t0)\n"        // never written -> 0
        "out t2, 0\nout t3, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 1234u);
    EXPECT_EQ(m.outputs()[1].value, 0u);
}

TEST(Exec, BranchesAndLoop)
{
    auto m = runSeq(
        "    li t0, 5\n"
        "    li t1, 0\n"
        "loop:\n"
        "    add t1, t1, t0\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t1, 0\n"
        "    halt\n");
    EXPECT_EQ(m.outputs()[0].value, 15u);   // 5+4+3+2+1
}

TEST(Exec, CallAndReturn)
{
    auto m = runSeq(
        "    li a0, 10\n"
        "    call double_it\n"
        "    out a0, 0\n"
        "    halt\n"
        "double_it:\n"
        "    add a0, a0, a0\n"
        "    ret\n");
    EXPECT_EQ(m.outputs()[0].value, 20u);
}

TEST(Exec, JalrComputedTarget)
{
    auto m = runSeq(
        "    la t0, tgt\n"
        "    jalr ra, t0, 0\n"
        "    halt\n"
        "tgt:\n"
        "    out t0, 0\n"
        "    halt\n");
    ASSERT_EQ(m.outputs().size(), 1u);
}

TEST(Exec, RegisterZeroStaysZero)
{
    auto m = runSeq(
        "addi zero, zero, 5\n"
        "out zero, 0\n"
        "halt\n");
    EXPECT_EQ(m.outputs()[0].value, 0u);
}

TEST(Exec, ForkIsNopOutsideMaster)
{
    auto m = runSeq(
        "fork 3\n"
        "li t0, 1\n"
        "out t0, 0\n"
        "halt\n");
    ASSERT_TRUE(m.halted());
    EXPECT_EQ(m.outputs()[0].value, 1u);
}

TEST(Exec, IllegalInstructionFaults)
{
    // Jump into unmapped memory: fetch returns 0, which is illegal.
    Program p = assemble("j nowhere\nnowhere:\n");
    // Overwrite target with a zero word by jumping past end of code.
    SeqMachine m(p);
    m.run(10);
    EXPECT_TRUE(m.faulted());
    EXPECT_FALSE(m.halted());
}

TEST(Exec, HaltCountsAsInstruction)
{
    auto m = runSeq("halt\n");
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(m.instCount(), 1u);
    EXPECT_EQ(m.state().instret(), 1u);
}

TEST(Exec, RunRespectsMaxInsts)
{
    Program p = assemble(
        "loop: j loop\n");
    SeqMachine m(p);
    auto r = m.run(100);
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.instCount, 100u);
    // Continuing works.
    auto r2 = m.run(50);
    EXPECT_EQ(r2.instCount, 50u);
    EXPECT_EQ(m.instCount(), 150u);
}

TEST(Exec, ObserverSeesEveryStep)
{
    struct Counter : SeqMachine::Observer
    {
        uint64_t steps = 0;
        uint64_t branches_taken = 0;
        void
        onStep(uint32_t, const StepResult &res) override
        {
            ++steps;
            if (isCondBranch(res.inst.op) && res.branchTaken)
                ++branches_taken;
        }
    };
    Program p = assemble(
        "    li t0, 3\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    SeqMachine m(p);
    Counter c;
    m.setObserver(&c);
    m.run(1000);
    EXPECT_EQ(c.steps, m.instCount());
    EXPECT_EQ(c.branches_taken, 2u);
}

TEST(Exec, EvalAluHelper)
{
    uint32_t out = 0;
    EXPECT_TRUE(evalAlu(Opcode::Add, 2, 3, out));
    EXPECT_EQ(out, 5u);
    EXPECT_TRUE(evalAlu(Opcode::Lui, 0, 0x12, out));
    EXPECT_EQ(out, 0x120000u);
    EXPECT_FALSE(evalAlu(Opcode::Lw, 0, 0, out));
    EXPECT_FALSE(evalAlu(Opcode::Beq, 0, 0, out));
    EXPECT_FALSE(evalAlu(Opcode::Jal, 0, 0, out));
}

// ---------------------------------------------------------------------
// Tiered execution backends (exec/backend.hh)
// ---------------------------------------------------------------------

constexpr BackendKind kAllTiers[] = {
    BackendKind::Ref, BackendKind::Threaded, BackendKind::BlockJit};

TEST(Backend, NamesRoundTrip)
{
    for (BackendKind kind : kAllTiers) {
        auto parsed = backendFromName(backendName(kind));
        ASSERT_TRUE(parsed.has_value()) << backendName(kind);
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(backendFromName("jit").has_value());
    EXPECT_FALSE(backendFromName("").has_value());
    EXPECT_FALSE(backendFromName("REF").has_value());
}

TEST(Backend, AvailabilityFallback)
{
    // The injected-availability seam: a build without computed goto
    // degrades threaded -> ref and leaves the other tiers alone.
    EXPECT_EQ(resolveBackendFor(BackendKind::Threaded, false),
              BackendKind::Ref);
    EXPECT_EQ(resolveBackendFor(BackendKind::Threaded, true),
              BackendKind::Threaded);
    EXPECT_EQ(resolveBackendFor(BackendKind::Ref, false),
              BackendKind::Ref);
    EXPECT_EQ(resolveBackendFor(BackendKind::BlockJit, false),
              BackendKind::BlockJit);

    // This build's actual availability.
    EXPECT_TRUE(backendAvailable(BackendKind::Ref));
    EXPECT_TRUE(backendAvailable(BackendKind::BlockJit));
    EXPECT_EQ(backendAvailable(BackendKind::Threaded),
              MSSP_HAS_COMPUTED_GOTO == 1);
}

TEST(Backend, HookedConsumersNeverGetBlockJit)
{
    // Per-step obligations are a capability T2 does not have: hooked
    // consumers resolve blockjit down to the threaded tier.
    BackendKind k = resolveHookedBackend(BackendKind::BlockJit);
    EXPECT_NE(k, BackendKind::BlockJit);
    if (backendAvailable(BackendKind::Threaded)) {
        EXPECT_EQ(k, BackendKind::Threaded);
    } else {
        EXPECT_EQ(k, BackendKind::Ref);
    }
    EXPECT_EQ(resolveHookedBackend(BackendKind::Ref), BackendKind::Ref);
}

TEST(Backend, RegistryExposesAllTiers)
{
    for (BackendKind kind : kAllTiers) {
        const ExecBackend &b = backend(kind);
        EXPECT_EQ(b.kind(), kind);
        EXPECT_STREQ(b.name(), backendName(kind));
    }
    EXPECT_TRUE(backend(BackendKind::Ref).capabilities() &
                CapPerStepHook);
    EXPECT_TRUE(backend(BackendKind::BlockJit).capabilities() &
                CapBlockCompile);
    EXPECT_FALSE(backend(BackendKind::BlockJit).capabilities() &
                 CapPerStepHook);
}

TEST(Backend, RunRespectsMaxInstsOnEveryTier)
{
    Program p = assemble("loop: j loop\n");
    for (BackendKind kind : kAllTiers) {
        SCOPED_TRACE(backendName(kind));
        SeqMachine m(p);
        m.setBackend(kind);
        auto r = m.run(100);
        EXPECT_FALSE(r.halted);
        EXPECT_FALSE(r.faulted);
        EXPECT_EQ(r.instCount, 100u);
        auto r2 = m.run(50);
        EXPECT_EQ(r2.instCount, 50u);
        EXPECT_EQ(m.instCount(), 150u);
    }
}

TEST(Backend, TiersAgreeOnFaultingProgram)
{
    // The fault pc and retire count must be pinned identically; the
    // blockjit tier must deopt rather than retire past the fault.
    const std::string src =
        "    li t0, 20\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    j nowhere\n"       // falls into unmapped zero words
        "nowhere:\n";
    Program p = assemble(src);
    SeqMachine ref(p);
    ref.run(100000);
    ASSERT_TRUE(ref.faulted());
    for (BackendKind kind :
         {BackendKind::Threaded, BackendKind::BlockJit}) {
        SCOPED_TRACE(backendName(kind));
        SeqMachine m(p);
        m.setBackend(kind);
        m.run(100000);
        EXPECT_TRUE(m.faulted());
        EXPECT_EQ(m.state().pc(), ref.state().pc());
        EXPECT_EQ(m.instCount(), ref.instCount());
        EXPECT_EQ(m.state().instret(), ref.state().instret());
    }
}

TEST(Backend, TiersAgreeOnMmio)
{
    // The MMIO counter is non-idempotent and MMIO writes emit
    // outputs: any replayed or skipped device access diverges.
    const std::string src =
        "    li t0, 0xffff0000\n"
        "    li t2, 5\n"
        "loop:\n"
        "    lw t1, 0(t0)\n"      // counter: 0,1,2,...
        "    sw t1, 4(t0)\n"      // MMIO write -> output
        "    addi t2, t2, -1\n"
        "    bnez t2, loop\n"
        "    halt\n";
    Program p = assemble(src);
    SeqMachine ref(p);
    ref.run(100000);
    ASSERT_TRUE(ref.halted());
    ASSERT_EQ(ref.outputs().size(), 5u);
    for (BackendKind kind :
         {BackendKind::Threaded, BackendKind::BlockJit}) {
        SCOPED_TRACE(backendName(kind));
        SeqMachine m(p);
        m.setBackend(kind);
        m.run(100000);
        EXPECT_TRUE(m.halted());
        EXPECT_EQ(m.outputs(), ref.outputs());
        EXPECT_EQ(m.instCount(), ref.instCount());
    }
}

TEST(Backend, BlockJitCompilesHotLoops)
{
    // 200 iterations of a 3-instruction loop is far past the heat
    // threshold: the tier must actually enter compiled blocks (the
    // whole point of T2), not silently single-step everything.
    Program p = assemble(
        "    li t0, 200\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    SeqMachine m(p);
    m.setBackend(BackendKind::BlockJit);
    m.run(100000);
    ASSERT_TRUE(m.halted());
    ASSERT_NE(m.blockJit(), nullptr);
    EXPECT_GT(m.blockJit()->numBlocks(), 0u);
    EXPECT_GT(m.blockJit()->blocksEntered(), 0u);
    EXPECT_GT(m.blockJit()->instsInBlocks(), 0u);
}

/** Bare ExecContext for engine-level tests: registers + RAM + ports. */
class FlatCtx final : public ExecContext
{
  public:
    explicit FlatCtx(const Program &prog) { state_.loadProgram(prog); }

    uint32_t readReg(unsigned r) override { return state_.readReg(r); }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        state_.writeReg(r, v);
    }
    uint32_t readMem(uint32_t a) override { return state_.readMem(a); }
    void
    writeMem(uint32_t a, uint32_t v) override
    {
        state_.writeMem(a, v);
    }
    uint32_t fetch(uint32_t pc) override { return state_.readMem(pc); }
    void
    output(uint16_t port, uint32_t value) override
    {
        outputs.push_back({port, value});
    }

    OutputStream outputs;

  private:
    ArchState state_;
};

TEST(Backend, InvalidateFlushesCompiledBlocksOnEveryTier)
{
    // Runtime patching (the fault-injection surface): after
    // DecodeCache::invalidate, *every* tier must execute the patched
    // instruction — the blockjit tier through its version flush, not
    // a stale superop block. 100 iterations at +1, patch the body to
    // +2 mid-run, 100 more iterations: t0 must end at exactly 300.
    const std::string src_a =
        "    li t0, 0\n"          // entry+0
        "    li t1, 200\n"        // entry+1
        "loop:\n"
        "    addi t0, t0, 1\n"    // entry+2  <- patched to +2
        "    addi t1, t1, -1\n"   // entry+3
        "    bnez t1, loop\n"     // entry+4
        "    out t0, 0\n"         // entry+5
        "    halt\n";             // entry+6
    const std::string src_b =
        "    li t0, 0\n"
        "    li t1, 200\n"
        "loop:\n"
        "    addi t0, t0, 2\n"
        "    addi t1, t1, -1\n"
        "    bnez t1, loop\n"
        "    out t0, 0\n"
        "    halt\n";
    Program patched_word_src = assemble(src_b);

    for (BackendKind kind : kAllTiers) {
        SCOPED_TRACE(backendName(kind));
        Program prog = assemble(src_a);
        const uint32_t entry = prog.entry();
        DecodeCache dc(prog);
        FlatCtx ctx(prog);
        BlockJit jit(dc);
        BlockJit *jitp =
            kind == BackendKind::BlockJit ? &jit : nullptr;

        // First half: exactly 100 iterations (2 setup + 3 per iter),
        // ending with the loop hot and (on T2) compiled.
        EngineResult er =
            runOnBackend(kind, dc, entry, 2 + 3 * 100, ctx, jitp);
        ASSERT_EQ(er.status, StepStatus::Ok);
        ASSERT_EQ(er.retired, 2u + 3u * 100u);
        ASSERT_EQ(er.pc, entry + 2);   // back at the loop head
        if (kind == BackendKind::BlockJit) {
            ASSERT_GT(jit.blocksEntered(), 0u);
        }

        // Patch the loop body and invalidate its page.
        prog.setWord(entry + 2, patched_word_src.word(entry + 2));
        dc.invalidate(entry + 2);

        // Second half runs the *patched* semantics.
        er = runOnBackend(kind, dc, er.pc, 1000000, ctx, jitp);
        EXPECT_EQ(er.status, StepStatus::Halted);
        ASSERT_EQ(ctx.outputs.size(), 1u);
        EXPECT_EQ(ctx.outputs[0].value, 100u + 2u * 100u);
    }
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Fuzz gate for the semantic translation validator: every random
 * program family seed is distilled at the paper preset and must pass
 * semantic lint with zero error-severity findings, and every PROVEN
 * verdict is checked *differentially* against a lockstep sequential
 * execution of the original program — a Proven constant that a real
 * execution contradicts is a soundness bug in the abstract
 * interpreter, never acceptable.
 *
 * Runs 25 seeds by default (fast enough for ctest); the full gate is
 *   MSSP_FUZZ_ITERS=500 ./test_absint_fuzz
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "analysis/verifier.hh"
#include "core/pipeline.hh"
#include "helpers.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

using analysis::EditRisk;
using analysis::SemanticResult;
using analysis::verifyDistilledSemantic;

unsigned
fuzzIters()
{
    const char *env = std::getenv("MSSP_FUZZ_ITERS");
    if (env && *env) {
        int n = std::atoi(env);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    return 25;
}

/** Checks every statically Proven claim against the running SEQ
 *  machine; onStep fires after each executed instruction, so the
 *  machine's registers hold the post-instruction state. */
struct ProvenChecker final : SeqMachine::Observer
{
    SeqMachine *machine = nullptr;
    /** Proven ConstFold/ValueSpec: pc -> (dest reg, constant). */
    std::map<uint32_t, std::pair<uint8_t, uint32_t>> regClaims;
    /** Proven hard-wired branches: pc -> direction (1 = taken). */
    std::map<uint32_t, uint32_t> brClaims;

    uint64_t checked = 0;
    uint64_t mismatches = 0;
    std::string firstMismatch;

    void
    onStep(uint32_t pc, const StepResult &res) override
    {
        auto rc = regClaims.find(pc);
        if (rc != regClaims.end()) {
            ++checked;
            uint32_t got = machine->readReg(rc->second.first);
            if (got != rc->second.second && !mismatches++) {
                firstMismatch = strfmt(
                    "pc=0x%x: proven %s == 0x%x, execution has 0x%x",
                    pc, regName(rc->second.first), rc->second.second,
                    got);
            }
        }
        auto bc = brClaims.find(pc);
        if (bc != brClaims.end()) {
            ++checked;
            uint32_t got = res.branchTaken ? 1u : 0u;
            if (got != bc->second && !mismatches++) {
                firstMismatch = strfmt(
                    "pc=0x%x: proven direction %u, execution went %u",
                    pc, bc->second, got);
            }
        }
    }
};

} // anonymous namespace

TEST(AbsintFuzz, ProvenVerdictsSurviveLockstepExecution)
{
    unsigned iters = fuzzIters();
    size_t total_proven = 0;
    uint64_t total_checked = 0;

    for (uint64_t seed = 1; seed <= iters; ++seed) {
        SCOPED_TRACE(strfmt("seed %llu",
                            static_cast<unsigned long long>(seed)));
        Program prog = assemble(randomProgramSource(seed));
        PreparedWorkload w =
            prepare(prog, prog, DistillerOptions::paperPreset());
        SemanticResult sem = verifyDistilledSemantic(w.orig, w.dist);

        // An honest distillation never produces an error-severity
        // semantic finding.
        EXPECT_EQ(sem.lint.errors(), 0u) << sem.lint.toText();
        ASSERT_EQ(sem.semantic.verdicts.size(),
                  w.dist.report.edits.size());
        total_proven += sem.semantic.proven();

        // Differential check: no real execution may contradict a
        // Proven claim (zero false positives, the fuzz gate's point).
        ProvenChecker checker;
        for (const auto &v : sem.semantic.verdicts) {
            if (v.risk != EditRisk::Proven)
                continue;
            const DistillEdit &e = v.edit;
            bool is_branch =
                e.pass == DistillEdit::Pass::BranchPrune ||
                (e.pass == DistillEdit::Pass::ConstFold &&
                 e.reg == 0);
            if (is_branch && e.hasValue)
                checker.brClaims[e.origPc] = e.value;
            else if (e.hasValue && e.reg != 0)
                checker.regClaims[e.origPc] = {e.reg, e.value};
        }

        SeqMachine seq(w.orig);
        checker.machine = &seq;
        seq.setObserver(&checker);
        seq.run(50000000ull);
        ASSERT_TRUE(seq.halted()) << "oracle did not halt";
        EXPECT_EQ(checker.mismatches, 0u) << checker.firstMismatch;
        total_checked += checker.checked;
    }

    // The gate must not pass vacuously: over the seed range the
    // distiller does produce proven edits that execution exercises.
    EXPECT_GT(total_proven, 0u);
    EXPECT_GT(total_checked, 0u);
}

} // namespace mssp

/**
 * @file
 * Unit tests for machine-state containers: cells, StateDelta, paged
 * memory and ArchState. (The algebraic laws of superimposition get
 * their own randomized suite in test_formal_properties.cpp.)
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "arch/arch_state.hh"
#include "arch/cell.hh"
#include "arch/paged_mem.hh"
#include "arch/state_delta.hh"
#include "asm/program.hh"
#include "sim/rng.hh"

namespace mssp
{
namespace
{

TEST(Cell, PackUnpack)
{
    CellId r = makeRegCell(7);
    EXPECT_EQ(cellKind(r), CellKind::Reg);
    EXPECT_EQ(cellIndex(r), 7u);

    CellId m = makeMemCell(0xdeadbeef);
    EXPECT_EQ(cellKind(m), CellKind::Mem);
    EXPECT_EQ(cellIndex(m), 0xdeadbeefu);

    EXPECT_EQ(cellKind(PcCell), CellKind::Pc);
    EXPECT_NE(makeRegCell(0), makeMemCell(0));
}

TEST(Cell, ToString)
{
    EXPECT_EQ(cellToString(makeRegCell(3)), "r3(a0)");
    EXPECT_EQ(cellToString(makeMemCell(0x10)), "mem[0x10]");
    EXPECT_EQ(cellToString(PcCell), "pc");
}

TEST(StateDelta, SetGetContains)
{
    StateDelta d;
    EXPECT_TRUE(d.empty());
    d.set(makeRegCell(1), 42);
    EXPECT_TRUE(d.contains(makeRegCell(1)));
    EXPECT_EQ(d.get(makeRegCell(1)).value(), 42u);
    EXPECT_FALSE(d.get(makeRegCell(2)).has_value());
    d.set(makeRegCell(1), 43);
    EXPECT_EQ(d.get(makeRegCell(1)).value(), 43u);
    EXPECT_EQ(d.size(), 1u);
}

TEST(StateDelta, SetIfAbsentKeepsFirstBinding)
{
    StateDelta d;
    d.setIfAbsent(makeMemCell(8), 1);
    d.setIfAbsent(makeMemCell(8), 2);
    EXPECT_EQ(d.get(makeMemCell(8)).value(), 1u);
}

TEST(StateDelta, SuperimposeOverwrites)
{
    StateDelta a, b;
    a.set(makeRegCell(1), 10);
    a.set(makeRegCell(2), 20);
    b.set(makeRegCell(2), 99);
    b.set(makeRegCell(3), 30);
    StateDelta c = StateDelta::superimposed(a, b);
    EXPECT_EQ(c.get(makeRegCell(1)).value(), 10u);
    EXPECT_EQ(c.get(makeRegCell(2)).value(), 99u);
    EXPECT_EQ(c.get(makeRegCell(3)).value(), 30u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(StateDelta, ConsistentWithSubset)
{
    StateDelta small, big;
    small.set(makeRegCell(1), 1);
    big.set(makeRegCell(1), 1);
    big.set(makeRegCell(2), 2);
    EXPECT_TRUE(small.consistentWith(big));
    EXPECT_FALSE(big.consistentWith(small));  // r2 missing from small
    small.set(makeRegCell(2), 3);
    EXPECT_FALSE(small.consistentWith(big));  // value mismatch
}

TEST(StateDelta, SortedDeterministic)
{
    StateDelta d;
    d.set(makeMemCell(5), 50);
    d.set(makeRegCell(9), 90);
    d.set(makeMemCell(1), 10);
    auto v = d.sorted();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0].first, makeRegCell(9));
    EXPECT_EQ(v[1].first, makeMemCell(1));
    EXPECT_EQ(v[2].first, makeMemCell(5));
}

/** A random CellId drawn from a small universe (forces collisions). */
CellId
randomCell(Rng &rng)
{
    switch (rng.below(3)) {
      case 0:
        return makeRegCell(static_cast<unsigned>(rng.below(32)));
      case 1:
        return makeMemCell(static_cast<uint32_t>(rng.below(64)));
      default:
        return PcCell;
    }
}

// Model-based property test of the open-addressing flat map: a long
// random op sequence (set / setIfAbsent / erase / clear / grow) must
// agree with std::unordered_map at every point, across rehashes and
// tombstone reuse.
TEST(StateDeltaFlatMap, AgreesWithReferenceModel)
{
    Rng rng(0xfeedu);
    StateDelta d;
    std::unordered_map<CellId, uint32_t> model;

    for (int step = 0; step < 20000; ++step) {
        CellId cell = randomCell(rng);
        auto value = static_cast<uint32_t>(rng.next());
        switch (rng.below(6)) {
          case 0:
          case 1:
            d.set(cell, value);
            model[cell] = value;
            break;
          case 2: {
            bool inserted = d.setIfAbsent(cell, value);
            bool model_inserted = model.emplace(cell, value).second;
            ASSERT_EQ(inserted, model_inserted);
            break;
          }
          case 3:
            d.erase(cell);
            model.erase(cell);
            break;
          case 4: {
            auto got = d.get(cell);
            auto it = model.find(cell);
            ASSERT_EQ(got.has_value(), it != model.end());
            if (got) {
                ASSERT_EQ(*got, it->second);
            }
            break;
          }
          default:
            if (rng.chance(0.01)) {
                d.clear();
                model.clear();
            }
            break;
        }
        ASSERT_EQ(d.size(), model.size());
    }

    // Iteration visits exactly the live entries.
    size_t seen = 0;
    for (const auto &[cell, value] : d) {
        auto it = model.find(cell);
        ASSERT_NE(it, model.end());
        ASSERT_EQ(value, it->second);
        ++seen;
    }
    ASSERT_EQ(seen, model.size());
}

// The algebraic laws the commit unit relies on (the randomized law
// suite lives in test_formal_properties.cpp; this instance targets
// flat-map internals: collisions, growth, tombstones).
TEST(StateDeltaFlatMap, LawsSurviveCollisionsAndTombstones)
{
    Rng rng(0x5eedu);
    for (int trial = 0; trial < 200; ++trial) {
        StateDelta a, b;
        std::map<CellId, uint32_t> ma, mb;
        for (int i = 0; i < 50; ++i) {
            CellId ca = randomCell(rng);
            CellId cb = randomCell(rng);
            auto va = static_cast<uint32_t>(rng.next());
            auto vb = static_cast<uint32_t>(rng.next());
            a.set(ca, va);
            ma[ca] = va;
            b.set(cb, vb);
            mb[cb] = vb;
        }
        // Churn: erase some of a's cells again (leaves tombstones).
        for (int i = 0; i < 20; ++i) {
            CellId c = randomCell(rng);
            a.erase(c);
            ma.erase(c);
        }

        // superimposed(a, b): b's bindings win, a's fill the rest.
        StateDelta c = StateDelta::superimposed(a, b);
        for (const auto &[cell, value] : mb)
            ASSERT_EQ(c.get(cell).value(), value);
        for (const auto &[cell, value] : ma) {
            if (!mb.count(cell)) {
                ASSERT_EQ(c.get(cell).value(), value);
            }
        }
        ASSERT_EQ(c.size(), StateDelta::superimposed(b, a).size());

        // a and b are each consistent with the superimposition where
        // it retained their bindings; c covers b entirely.
        ASSERT_TRUE(b.consistentWith(c));
        ASSERT_EQ(a == b, ma == mb);
    }
}

TEST(PagedMem, DefaultZeroAndWriteAllocates)
{
    PagedMem mem;
    EXPECT_EQ(mem.read(0x12345), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
    mem.write(0x12345, 7);
    EXPECT_EQ(mem.read(0x12345), 7u);
    EXPECT_EQ(mem.numPages(), 1u);
    // Same page: no new allocation.
    mem.write(0x12346, 8);
    EXPECT_EQ(mem.numPages(), 1u);
    // Different page.
    mem.write(0x92345, 9);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMem, PageBoundary)
{
    PagedMem mem;
    uint32_t last = PagedMem::PageWords - 1;
    mem.write(last, 1);
    mem.write(last + 1, 2);
    EXPECT_EQ(mem.read(last), 1u);
    EXPECT_EQ(mem.read(last + 1), 2u);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMem, NonzeroWordsSorted)
{
    PagedMem mem;
    mem.write(100, 1);
    mem.write(5, 2);
    mem.write(0x50000, 3);
    mem.write(7, 0);    // zero value: not reported
    auto words = mem.nonzeroWords();
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[0], (std::pair<uint32_t, uint32_t>{5, 2}));
    EXPECT_EQ(words[1], (std::pair<uint32_t, uint32_t>{100, 1}));
    EXPECT_EQ(words[2], (std::pair<uint32_t, uint32_t>{0x50000, 3}));
}

TEST(PagedMem, CopyAssignReusesPagesAndDeepCopies)
{
    PagedMem a;
    a.write(10, 1);
    a.write(0x10000, 2);
    PagedMem b;
    b.write(10, 99);         // page to be reused
    b.write(0x90000, 42);    // page absent from a: must go away
    b = a;
    EXPECT_EQ(b.read(10), 1u);
    EXPECT_EQ(b.read(0x10000), 2u);
    EXPECT_EQ(b.read(0x90000), 0u);
    EXPECT_EQ(b.numPages(), a.numPages());
    // Deep copy: mutating one is invisible to the other (the MRU
    // fast path must not alias across objects).
    b.write(10, 7);
    EXPECT_EQ(a.read(10), 1u);
    a.write(0x10000, 5);
    EXPECT_EQ(b.read(0x10000), 2u);
}

TEST(ArchState, RegisterZeroHardwired)
{
    ArchState s;
    s.writeReg(0, 99);
    EXPECT_EQ(s.readReg(0), 0u);
    s.writeCell(makeRegCell(0), 99);
    EXPECT_EQ(s.readCell(makeRegCell(0)), 0u);
}

TEST(ArchState, CellRoundTrip)
{
    ArchState s;
    s.writeCell(makeRegCell(4), 44);
    s.writeCell(makeMemCell(0x200), 55);
    s.writeCell(PcCell, 0x1000);
    EXPECT_EQ(s.readReg(4), 44u);
    EXPECT_EQ(s.readMem(0x200), 55u);
    EXPECT_EQ(s.pc(), 0x1000u);
    EXPECT_EQ(s.readCell(makeRegCell(4)), 44u);
    EXPECT_EQ(s.readCell(makeMemCell(0x200)), 55u);
    EXPECT_EQ(s.readCell(PcCell), 0x1000u);
}

TEST(ArchState, MatchesAndApply)
{
    ArchState s;
    s.writeReg(1, 10);
    s.writeMem(0x100, 20);

    StateDelta live_in;
    live_in.set(makeRegCell(1), 10);
    live_in.set(makeMemCell(0x100), 20);
    EXPECT_TRUE(s.matches(live_in));
    EXPECT_EQ(s.countMismatches(live_in), 0u);

    live_in.set(makeMemCell(0x104), 5);   // arch holds 0 there
    EXPECT_FALSE(s.matches(live_in));
    EXPECT_EQ(s.countMismatches(live_in), 1u);

    StateDelta live_out;
    live_out.set(makeRegCell(2), 222);
    live_out.set(makeMemCell(0x104), 5);
    s.apply(live_out);
    EXPECT_EQ(s.readReg(2), 222u);
    EXPECT_TRUE(s.matches(live_in));
}

TEST(ArchState, LoadProgramSetsImageAndEntry)
{
    Program prog;
    prog.setWord(0x1000, 0xabcd);
    prog.setWord(0x2000, 0x1234);
    prog.setEntry(0x1000);
    ArchState s;
    s.loadProgram(prog);
    EXPECT_EQ(s.readMem(0x1000), 0xabcdu);
    EXPECT_EQ(s.readMem(0x2000), 0x1234u);
    EXPECT_EQ(s.pc(), 0x1000u);
}

} // anonymous namespace
} // namespace mssp

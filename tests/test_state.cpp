/**
 * @file
 * Unit tests for machine-state containers: cells, StateDelta, paged
 * memory and ArchState. (The algebraic laws of superimposition get
 * their own randomized suite in test_formal_properties.cpp.)
 */

#include <gtest/gtest.h>

#include "arch/arch_state.hh"
#include "arch/cell.hh"
#include "arch/paged_mem.hh"
#include "arch/state_delta.hh"
#include "asm/program.hh"

namespace mssp
{
namespace
{

TEST(Cell, PackUnpack)
{
    CellId r = makeRegCell(7);
    EXPECT_EQ(cellKind(r), CellKind::Reg);
    EXPECT_EQ(cellIndex(r), 7u);

    CellId m = makeMemCell(0xdeadbeef);
    EXPECT_EQ(cellKind(m), CellKind::Mem);
    EXPECT_EQ(cellIndex(m), 0xdeadbeefu);

    EXPECT_EQ(cellKind(PcCell), CellKind::Pc);
    EXPECT_NE(makeRegCell(0), makeMemCell(0));
}

TEST(Cell, ToString)
{
    EXPECT_EQ(cellToString(makeRegCell(3)), "r3(a0)");
    EXPECT_EQ(cellToString(makeMemCell(0x10)), "mem[0x10]");
    EXPECT_EQ(cellToString(PcCell), "pc");
}

TEST(StateDelta, SetGetContains)
{
    StateDelta d;
    EXPECT_TRUE(d.empty());
    d.set(makeRegCell(1), 42);
    EXPECT_TRUE(d.contains(makeRegCell(1)));
    EXPECT_EQ(d.get(makeRegCell(1)).value(), 42u);
    EXPECT_FALSE(d.get(makeRegCell(2)).has_value());
    d.set(makeRegCell(1), 43);
    EXPECT_EQ(d.get(makeRegCell(1)).value(), 43u);
    EXPECT_EQ(d.size(), 1u);
}

TEST(StateDelta, SetIfAbsentKeepsFirstBinding)
{
    StateDelta d;
    d.setIfAbsent(makeMemCell(8), 1);
    d.setIfAbsent(makeMemCell(8), 2);
    EXPECT_EQ(d.get(makeMemCell(8)).value(), 1u);
}

TEST(StateDelta, SuperimposeOverwrites)
{
    StateDelta a, b;
    a.set(makeRegCell(1), 10);
    a.set(makeRegCell(2), 20);
    b.set(makeRegCell(2), 99);
    b.set(makeRegCell(3), 30);
    StateDelta c = StateDelta::superimposed(a, b);
    EXPECT_EQ(c.get(makeRegCell(1)).value(), 10u);
    EXPECT_EQ(c.get(makeRegCell(2)).value(), 99u);
    EXPECT_EQ(c.get(makeRegCell(3)).value(), 30u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(StateDelta, ConsistentWithSubset)
{
    StateDelta small, big;
    small.set(makeRegCell(1), 1);
    big.set(makeRegCell(1), 1);
    big.set(makeRegCell(2), 2);
    EXPECT_TRUE(small.consistentWith(big));
    EXPECT_FALSE(big.consistentWith(small));  // r2 missing from small
    small.set(makeRegCell(2), 3);
    EXPECT_FALSE(small.consistentWith(big));  // value mismatch
}

TEST(StateDelta, SortedDeterministic)
{
    StateDelta d;
    d.set(makeMemCell(5), 50);
    d.set(makeRegCell(9), 90);
    d.set(makeMemCell(1), 10);
    auto v = d.sorted();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0].first, makeRegCell(9));
    EXPECT_EQ(v[1].first, makeMemCell(1));
    EXPECT_EQ(v[2].first, makeMemCell(5));
}

TEST(PagedMem, DefaultZeroAndWriteAllocates)
{
    PagedMem mem;
    EXPECT_EQ(mem.read(0x12345), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
    mem.write(0x12345, 7);
    EXPECT_EQ(mem.read(0x12345), 7u);
    EXPECT_EQ(mem.numPages(), 1u);
    // Same page: no new allocation.
    mem.write(0x12346, 8);
    EXPECT_EQ(mem.numPages(), 1u);
    // Different page.
    mem.write(0x92345, 9);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMem, PageBoundary)
{
    PagedMem mem;
    uint32_t last = PagedMem::PageWords - 1;
    mem.write(last, 1);
    mem.write(last + 1, 2);
    EXPECT_EQ(mem.read(last), 1u);
    EXPECT_EQ(mem.read(last + 1), 2u);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMem, NonzeroWordsSorted)
{
    PagedMem mem;
    mem.write(100, 1);
    mem.write(5, 2);
    mem.write(0x50000, 3);
    mem.write(7, 0);    // zero value: not reported
    auto words = mem.nonzeroWords();
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[0], (std::pair<uint32_t, uint32_t>{5, 2}));
    EXPECT_EQ(words[1], (std::pair<uint32_t, uint32_t>{100, 1}));
    EXPECT_EQ(words[2], (std::pair<uint32_t, uint32_t>{0x50000, 3}));
}

TEST(ArchState, RegisterZeroHardwired)
{
    ArchState s;
    s.writeReg(0, 99);
    EXPECT_EQ(s.readReg(0), 0u);
    s.writeCell(makeRegCell(0), 99);
    EXPECT_EQ(s.readCell(makeRegCell(0)), 0u);
}

TEST(ArchState, CellRoundTrip)
{
    ArchState s;
    s.writeCell(makeRegCell(4), 44);
    s.writeCell(makeMemCell(0x200), 55);
    s.writeCell(PcCell, 0x1000);
    EXPECT_EQ(s.readReg(4), 44u);
    EXPECT_EQ(s.readMem(0x200), 55u);
    EXPECT_EQ(s.pc(), 0x1000u);
    EXPECT_EQ(s.readCell(makeRegCell(4)), 44u);
    EXPECT_EQ(s.readCell(makeMemCell(0x200)), 55u);
    EXPECT_EQ(s.readCell(PcCell), 0x1000u);
}

TEST(ArchState, MatchesAndApply)
{
    ArchState s;
    s.writeReg(1, 10);
    s.writeMem(0x100, 20);

    StateDelta live_in;
    live_in.set(makeRegCell(1), 10);
    live_in.set(makeMemCell(0x100), 20);
    EXPECT_TRUE(s.matches(live_in));
    EXPECT_EQ(s.countMismatches(live_in), 0u);

    live_in.set(makeMemCell(0x104), 5);   // arch holds 0 there
    EXPECT_FALSE(s.matches(live_in));
    EXPECT_EQ(s.countMismatches(live_in), 1u);

    StateDelta live_out;
    live_out.set(makeRegCell(2), 222);
    live_out.set(makeMemCell(0x104), 5);
    s.apply(live_out);
    EXPECT_EQ(s.readReg(2), 222u);
    EXPECT_TRUE(s.matches(live_in));
}

TEST(ArchState, LoadProgramSetsImageAndEntry)
{
    Program prog;
    prog.setWord(0x1000, 0xabcd);
    prog.setWord(0x2000, 0x1234);
    prog.setEntry(0x1000);
    ArchState s;
    s.loadProgram(prog);
    EXPECT_EQ(s.readMem(0x1000), 0xabcdu);
    EXPECT_EQ(s.readMem(0x2000), 0x1234u);
    EXPECT_EQ(s.pc(), 0x1000u);
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for the profiler and fork-site selection.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cfg/cfg.hh"
#include "profile/fork_select.hh"
#include "profile/profiler.hh"

namespace mssp
{
namespace
{

TEST(Profiler, CountsAndBranchBias)
{
    Program p = assemble(
        "    li t0, 10\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));

    ProfileData prof = profileProgram(p, 1000000);
    EXPECT_TRUE(prof.ranToCompletion);
    EXPECT_EQ(prof.totalInsts, 1 + 10 * 2 + 1u);
    EXPECT_EQ(prof.countAt(loop_pc), 10u);

    const BranchProfile *bp = prof.branchAt(loop_pc + 1);
    ASSERT_NE(bp, nullptr);
    EXPECT_EQ(bp->total, 10u);
    EXPECT_EQ(bp->taken, 9u);
    EXPECT_NEAR(bp->bias(), 0.9, 1e-9);
}

TEST(Profiler, LoadInvariance)
{
    Program p = assemble(
        "    li t0, 10\n"
        "    la t1, konst\n"
        "loop:\n"
        "    lw t2, 0(t1)\n"       // always loads 42
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        ".org 0x2000\n"
        "konst: .word 42\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));

    ProfileData prof = profileProgram(p, 1000000);
    const LoadProfile *lp = prof.loadAt(loop_pc);
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->count, 10u);
    EXPECT_EQ(lp->firstValue, 42u);
    EXPECT_DOUBLE_EQ(lp->invariance(), 1.0);
}

TEST(Profiler, VaryingLoadIsNotInvariant)
{
    Program p = assemble(
        "    li t0, 8\n"
        "    la t1, cell\n"
        "loop:\n"
        "    lw t2, 0(t1)\n"
        "    addi t2, t2, 1\n"
        "    sw t2, 0(t1)\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        ".org 0x2000\n"
        "cell: .word 0\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));
    ProfileData prof = profileProgram(p, 1000000);
    const LoadProfile *lp = prof.loadAt(loop_pc);
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->count, 8u);
    EXPECT_EQ(lp->sameAsFirst, 1u);   // only the first iteration
}

TEST(Profiler, SilentStores)
{
    Program p = assemble(
        "    li t0, 6\n"
        "    la t1, cell\n"
        "    li t2, 7\n"
        "loop:\n"
        "    sw t2, 0(t1)\n"        // silent after the first store
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        ".org 0x2000\n"
        "cell: .word 0\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));
    ProfileData prof = profileProgram(p, 1000000);
    const StoreProfile *sp = prof.storeAt(loop_pc);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->count, 6u);
    EXPECT_EQ(sp->silent, 5u);
}

TEST(Profiler, RespectsInstructionCap)
{
    Program p = assemble("loop: j loop\n");
    ProfileData prof = profileProgram(p, 1000);
    EXPECT_EQ(prof.totalInsts, 1000u);
    EXPECT_FALSE(prof.ranToCompletion);
}

TEST(ForkSelect, PicksHotLoopHeader)
{
    Program p = assemble(
        "    li t0, 1000\n"
        "loop:\n"
        "    addi t1, t1, 3\n"
        "    addi t2, t2, 5\n"
        "    add t3, t1, t2\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t3, 0\n"
        "    halt\n");
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));

    Cfg cfg = Cfg::build(p, p.entry());
    ProfileData prof = profileProgram(p, 1000000);
    ForkSelectOptions opts;
    opts.targetTaskSize = 5;
    ForkSelection sel = selectForkSites(cfg, prof, opts);
    ASSERT_EQ(sel.sites.size(), 1u);
    EXPECT_EQ(sel.sites[0], loop_pc);
    EXPECT_NEAR(sel.expectedTaskSize, 5.0, 1.0);
}

TEST(ForkSelect, NestedLoopsPickByTarget)
{
    // Outer loop 100 iterations, inner loop 100 each: inner header
    // visited ~10000 times, outer ~100 times.
    Program p = assemble(
        "    li s0, 100\n"
        "outer:\n"
        "    li s1, 100\n"
        "inner:\n"
        "    addi t0, t0, 1\n"
        "    addi s1, s1, -1\n"
        "    bnez s1, inner\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, outer\n"
        "    halt\n");
    uint32_t outer_pc = 0, inner_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("outer", outer_pc));
    ASSERT_TRUE(p.lookupSymbol("inner", inner_pc));

    Cfg cfg = Cfg::build(p, p.entry());
    ProfileData prof = profileProgram(p, 10000000);

    // Both headers are selected; the fork *interval* adapts to the
    // target task size: inner iterations are ~4 insts, so a target of
    // 40 means the inner site forks every ~10th visit while the outer
    // site forks every visit.
    ForkSelectOptions opts;
    opts.targetTaskSize = 40;
    auto sel = selectForkSites(cfg, prof, opts);
    ASSERT_EQ(sel.sites.size(), 2u);
    size_t inner_i = sel.sites[0] == inner_pc ? 0 : 1;
    size_t outer_i = 1 - inner_i;
    EXPECT_EQ(sel.sites[inner_i], inner_pc);
    EXPECT_EQ(sel.sites[outer_i], outer_pc);
    EXPECT_GT(sel.intervals[inner_i], 5u);
    EXPECT_LT(sel.intervals[inner_i], 20u);
    EXPECT_EQ(sel.intervals[outer_i], 1u);

    // A tiny target drives the inner interval to 1.
    ForkSelectOptions tiny;
    tiny.targetTaskSize = 4;
    auto sel_tiny = selectForkSites(cfg, prof, tiny);
    ASSERT_EQ(sel_tiny.sites.size(), 2u);
    EXPECT_EQ(sel_tiny.intervals[inner_i], 1u);
}

TEST(ForkSelect, StraightLineFallsBackToHotBlocks)
{
    Program p = assemble(
        "    li t0, 50\n"
        "loop:\n"
        "    call fn\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n"
        "fn:\n"
        "    addi t1, t1, 1\n"
        "    ret\n");
    Cfg cfg = Cfg::build(p, p.entry());
    ProfileData prof = profileProgram(p, 1000000);
    ForkSelectOptions opts;
    opts.targetTaskSize = 4;
    auto sel = selectForkSites(cfg, prof, opts);
    EXPECT_FALSE(sel.sites.empty());
}

TEST(ForkSelect, EmptyProfileYieldsNoSites)
{
    Program p = assemble("halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    ProfileData empty;
    auto sel = selectForkSites(cfg, empty, ForkSelectOptions{});
    EXPECT_TRUE(sel.sites.empty());
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Jumping-refinement tests under adversity — the paper's headline
 * claim made executable: *nothing* the master or the distilled
 * program does can affect program output. We fuzz random structured
 * programs and run MSSP with (a) an honest distiller, (b) randomly
 * corrupted distilled binaries, (c) corrupted task maps, and (d) a
 * pathologically lying distiller. Every run must produce output
 * identical to the SEQ oracle.
 */

#include <gtest/gtest.h>

#include "core/mssp_api.hh"
#include "helpers.hh"
#include "sim/rng.hh"
#include "workloads/random_program.hh"

namespace mssp
{
namespace
{

/** Fast-converging config for adversarial runs. */
MsspConfig
adversarialConfig()
{
    MsspConfig cfg;
    cfg.watchdogCycles = 3000;
    cfg.maxTaskInsts = 3000;
    cfg.maxEngageFailures = 4;
    return cfg;
}

/** SEQ oracle outputs for a program (must halt). */
OutputStream
oracleOutputs(const Program &p, uint64_t *insts = nullptr)
{
    SeqMachine m(p);
    m.run(50000000ull);
    EXPECT_TRUE(m.halted()) << "oracle did not halt";
    if (insts)
        *insts = m.instCount();
    return m.outputs();
}

class HonestFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(HonestFuzz, RandomProgramsAreEquivalent)
{
    uint64_t seed = GetParam();
    std::string src = randomProgramSource(seed);
    Program prog = assemble(src);

    uint64_t oracle_insts = 0;
    OutputStream expected = oracleOutputs(prog, &oracle_insts);

    // Vary the machine shape with the seed.
    MsspConfig cfg;
    cfg.numSlaves = 1 + static_cast<unsigned>(seed % 8);
    cfg.forkInterval = 1 + static_cast<unsigned>(seed % 3);
    cfg.forkLatency = 1 + (seed % 16);
    cfg.commitLatency = 1 + (seed % 8);

    PreparedWorkload w = prepare(prog, prog);
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult r = machine.run(100000000ull);

    ASSERT_TRUE(r.halted) << "MSSP timed out, seed " << seed;
    EXPECT_EQ(r.outputs, expected) << "seed " << seed;
    EXPECT_EQ(r.committedInsts, oracle_insts) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestFuzz,
                         ::testing::Range<uint64_t>(1, 25));

class CorruptedBinary : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CorruptedBinary, OutputUnaffectedByDistilledCorruption)
{
    uint64_t seed = GetParam();
    std::string src = randomProgramSource(seed,
                                          RandomProgramOptions{});
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    Rng rng(seed * 7919 + 13);

    // Corrupt a handful of distilled code words with random garbage.
    DistilledProgram corrupt = w.dist;
    std::vector<uint32_t> code_addrs;
    for (const auto &[addr, word] : corrupt.prog.image())
        code_addrs.push_back(addr);
    ASSERT_FALSE(code_addrs.empty());
    unsigned n_corrupt = 1 + static_cast<unsigned>(rng.below(6));
    for (unsigned i = 0; i < n_corrupt; ++i) {
        uint32_t addr = code_addrs[rng.below(code_addrs.size())];
        corrupt.prog.setWord(addr,
                             static_cast<uint32_t>(rng.next()));
    }

    MsspMachine machine(prog, corrupt, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted) << "MSSP timed out, seed " << seed;
    EXPECT_EQ(r.outputs, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptedBinary,
                         ::testing::Range<uint64_t>(1, 25));

class CorruptedTaskMap : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CorruptedTaskMap, OutputUnaffectedByBogusForkTargets)
{
    uint64_t seed = GetParam();
    std::string src = randomProgramSource(seed);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    Rng rng(seed * 104729 + 7);

    DistilledProgram corrupt = w.dist;
    // Point some fork sites at garbage original PCs (data, unmapped
    // memory, mid-block code).
    for (auto &orig_pc : corrupt.taskMap) {
        if (rng.chance(0.5))
            orig_pc = static_cast<uint32_t>(rng.below(0x10000));
    }

    MsspMachine machine(prog, corrupt, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted) << "MSSP timed out, seed " << seed;
    EXPECT_EQ(r.outputs, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptedTaskMap,
                         ::testing::Range<uint64_t>(1, 13));

class LyingDistiller : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LyingDistiller, ValueSpeculateEverything)
{
    // Replace every profiled load with its first-seen value and prune
    // every branch with the slightest bias: a maximally dishonest (but
    // structurally valid) distilled program.
    uint64_t seed = GetParam();
    std::string src = randomProgramSource(seed);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    DistillerOptions lying;
    lying.enableValueSpec = true;
    lying.valueSpecFromProfile = true;
    lying.valueSpecThreshold = 0.0;
    lying.minMemSamples = 1;
    lying.enableSilentStoreElim = true;
    lying.silentStoreThreshold = 0.0;
    lying.biasThreshold = 0.55;
    lying.minBranchSamples = 1;

    PreparedWorkload w = prepare(prog, prog, lying);
    MsspMachine machine(prog, w.dist, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted) << "MSSP timed out, seed " << seed;
    EXPECT_EQ(r.outputs, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LyingDistiller,
                         ::testing::Range<uint64_t>(1, 13));

class MmioFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MmioFuzz, DeviceProgramsAreEquivalent)
{
    // Random programs with sprinkled non-idempotent device accesses:
    // MSSP must serialize through each access and reproduce the exact
    // output stream, including device write ordering and counter
    // values.
    uint64_t seed = GetParam();
    RandomProgramOptions opts;
    opts.allowMmio = true;
    std::string src = randomProgramSource(seed, opts);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    MsspMachine machine(prog, w.dist, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted) << "MSSP timed out, seed " << seed;
    EXPECT_EQ(r.outputs, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmioFuzz,
                         ::testing::Range<uint64_t>(1, 17));

TEST(Adversarial, AllZeroDistilledProgram)
{
    // The master faults on its first fetch; the machine must fall
    // back to sequential execution and still finish correctly.
    std::string src = randomProgramSource(3);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    DistilledProgram zeroed = w.dist;
    for (const auto &[addr, word] : w.dist.prog.image())
        zeroed.prog.setWord(addr, 0);

    MsspMachine machine(prog, zeroed, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.outputs, expected);
    EXPECT_GT(machine.counters().seqModeInsts, 0u);
}

TEST(Adversarial, MasterLoopsWithoutForking)
{
    // Distilled program = infinite loop with no forks: the watchdog
    // must fire and sequential mode must complete the program.
    std::string src = randomProgramSource(5);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    DistilledProgram looping = w.dist;
    // Overwrite the entry with a self-jump (offset -1).
    uint32_t entry = looping.prog.entry();
    looping.prog.setWord(entry,
                         encode(makeJ(Opcode::Jal, 0, -1)));

    MsspMachine machine(prog, looping, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.outputs, expected);
    EXPECT_GT(machine.counters().watchdogSquashes, 0u);
}

TEST(Adversarial, ForkStormIsContained)
{
    // Distilled program that forks in a tight loop: the task window
    // cap must throttle it, and output must stay correct.
    std::string src = randomProgramSource(7);
    Program prog = assemble(src);
    OutputStream expected = oracleOutputs(prog);

    PreparedWorkload w = prepare(prog, prog);
    DistilledProgram storm = w.dist;
    uint32_t entry = storm.prog.entry();
    // entry: fork 0; jal -2 (back to the fork).
    storm.prog.setWord(entry, encode(makeJ(Opcode::Fork, 0, 0)));
    storm.prog.setWord(entry + 1,
                       encode(makeJ(Opcode::Jal, 0, -2)));

    MsspMachine machine(prog, storm, adversarialConfig());
    MsspResult r = machine.run(100000000ull);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.outputs, expected);
}

} // anonymous namespace
} // namespace mssp

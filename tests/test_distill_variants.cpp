/**
 * @file
 * Distiller-variant equivalence sweep (the test-suite analogue of
 * bench E8): every workload analogue must be output-equivalent under
 * MSSP for every distiller pass combination — from "fork markers
 * only" to the fully aggressive preset with risky profile-value
 * speculation and a low prune threshold.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

constexpr double kScale = 0.08;

struct Variant
{
    const char *name;
    DistillerOptions opts;
};

std::vector<Variant>
variants()
{
    DistillerOptions none;
    none.enableBranchPrune = false;
    none.enableConstFold = false;
    none.enableDce = false;

    DistillerOptions safe;   // defaults: prune(θ=1) + fold + dce

    DistillerOptions paper = DistillerOptions::paperPreset();

    DistillerOptions hot = paper;
    hot.biasThreshold = 0.85;

    DistillerOptions reckless = paper;
    reckless.biasThreshold = 0.6;
    reckless.valueSpecFromProfile = true;
    reckless.valueSpecThreshold = 0.5;
    reckless.silentStoreThreshold = 0.5;
    reckless.minMemSamples = 4;
    reckless.minBranchSamples = 4;

    return {{"none", none},
            {"safe", safe},
            {"paper", paper},
            {"hot", hot},
            {"reckless", reckless}};
}

using Param = std::tuple<std::string, size_t>;

class DistillVariants : public ::testing::TestWithParam<Param>
{};

TEST_P(DistillVariants, OutputEquivalent)
{
    setQuiet(true);
    const auto &[wl_name, variant_idx] = GetParam();
    const Variant variant = variants().at(variant_idx);
    SCOPED_TRACE(variant.name);

    Workload wl = workloadByName(wl_name, kScale);
    MsspConfig cfg;
    cfg.watchdogCycles = 5000;   // reckless variants squash a lot
    cfg.maxTaskInsts = 3000;
    test::runAndCheck(wl.refSource, wl.trainSource, cfg, variant.opts);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, DistillVariants,
    ::testing::Combine(
        ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty",
                          "parser", "eon", "perlbmk", "gap", "vortex",
                          "bzip2", "twolf"),
        ::testing::Range<size_t>(0, 5)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               variants()[std::get<1>(info.param)].name;
    });

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for the set-associative cache timing model and its
 * integration as the slaves' speculative L1.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "mem/cache.hh"

namespace mssp
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    Cache c;
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SpatialLocalityWithinLine)
{
    CacheConfig cfg;
    cfg.lineWords = 8;
    Cache c(cfg);
    EXPECT_FALSE(c.access(0x1000));
    for (uint32_t off = 1; off < 8; ++off)
        EXPECT_TRUE(c.access(0x1000 + off)) << off;
    EXPECT_FALSE(c.access(0x1008));   // next line
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c;
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.hits(), 0u);   // probe counts nothing
}

TEST(Cache, ConflictEvictionLru)
{
    // Direct-ish mapping: 2 ways; three lines mapping to one set.
    CacheConfig cfg;
    cfg.sets = 4;
    cfg.ways = 2;
    cfg.lineWords = 4;
    Cache c(cfg);
    // Set index = (addr >> 2) & 3. Lines A, B, C all map to set 0.
    uint32_t a = 0 << 4, b = 1 << 4, d = 2 << 4;
    EXPECT_FALSE(c.access(a));
    EXPECT_FALSE(c.access(b));
    EXPECT_TRUE(c.access(a));    // A is now MRU
    EXPECT_FALSE(c.access(d));   // evicts LRU = B
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_TRUE(c.access(a));
    EXPECT_FALSE(c.access(b));   // B was the victim
}

TEST(Cache, InvalidateAllDropsEverything)
{
    Cache c;
    c.access(0x10);
    c.access(0x20);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x10));
    EXPECT_FALSE(c.access(0x20));
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheConfig cfg;
    cfg.sets = 3;   // not a power of two
    EXPECT_THROW(Cache c(cfg), FatalError);
    cfg.sets = 4;
    cfg.ways = 0;
    EXPECT_THROW(Cache c2(cfg), FatalError);
}

TEST(Cache, FullSweepTouchesAllLinesWithoutEviction)
{
    CacheConfig cfg;
    Cache c(cfg);
    uint32_t words = cfg.sizeWords();
    for (uint32_t addr = 0; addr < words; addr += cfg.lineWords)
        EXPECT_FALSE(c.access(addr));
    EXPECT_EQ(c.evictions(), 0u);
    for (uint32_t addr = 0; addr < words; addr += cfg.lineWords)
        EXPECT_TRUE(c.access(addr));
}

TEST(SlaveL1, ReducesArchStallsAndPreservesEquivalence)
{
    setQuiet(true);
    std::string src = test::biasedSumSource(400, 7);
    std::string train = test::biasedSumSource(256, 8);
    PreparedWorkload w = prepare(src, train);

    MsspConfig with_l1;
    with_l1.archReadLatency = 8;
    with_l1.useSlaveL1 = true;
    MsspMachine m1(w.orig, w.dist, with_l1);
    MsspResult r1 = m1.run(100000000ull);
    test::expectEquivalent(w.orig, r1);
    EXPECT_GT(m1.counters().l1Hits, 0u);

    MsspConfig no_l1 = with_l1;
    no_l1.useSlaveL1 = false;
    MsspMachine m2(w.orig, w.dist, no_l1);
    MsspResult r2 = m2.run(100000000ull);
    test::expectEquivalent(w.orig, r2);
    EXPECT_EQ(m2.counters().l1Hits, 0u);

    // The L1 can only help (same work, fewer charged read-throughs).
    EXPECT_LE(r1.cycles, r2.cycles);
}

TEST(SlaveL1, TimingOnlyNeverChangesValues)
{
    // Whatever the cache does, outputs and retired counts match SEQ
    // across geometries.
    setQuiet(true);
    std::string src = test::callLoopSource(200, 9);
    for (uint32_t sets : {4u, 16u, 256u}) {
        MsspConfig cfg;
        cfg.slaveL1.sets = sets;
        cfg.slaveL1.ways = 2;
        test::runAndCheck(src, src, cfg);
    }
}

} // anonymous namespace
} // namespace mssp

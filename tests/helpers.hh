/**
 * @file
 * Shared helpers for the test suite: tiny workload programs and
 * SEQ-vs-MSSP equivalence checking.
 */

#ifndef MSSP_TESTS_HELPERS_HH
#define MSSP_TESTS_HELPERS_HH

#include <gtest/gtest.h>

#include <string>

#include "core/mssp_api.hh"
#include "sim/rng.hh"

namespace mssp::test
{

/**
 * A loop-heavy test program: sums an array with a heavily biased rare
 * branch (taken when element % 64 == 0) and a nested re-scan every
 * 16 elements. Data is seeded so that train/ref differ.
 */
inline std::string
biasedSumSource(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::string data;
    for (unsigned i = 0; i < n; ++i) {
        if (i > 0)
            data += (i % 8 == 0) ? "\n.word " : ", ";
        data += std::to_string(rng.range(1, 1 << 20));
    }
    return strfmt(
        "    .equ N, %u\n"
        "    li s0, 0\n"
        "    la s2, data\n"
        "    li s3, 0\n"
        "loop:\n"
        "    add t0, s2, s0\n"
        "    lw t1, 0(t0)\n"
        "    add s3, s3, t1\n"
        "    andi t2, t1, 63\n"
        "    bnez t2, skip\n"
        "    addi s3, s3, 100\n"     // rare path
        "    out s3, 7\n"
        "skip:\n"
        "    addi s0, s0, 1\n"
        "    li t3, N\n"
        "    blt s0, t3, loop\n"
        "    out s3, 1\n"
        "    halt\n"
        ".org 0x8000\n"
        "data: .word %s\n",
        n, data.c_str());
}

/** A program with a function call in the hot loop. */
inline std::string
callLoopSource(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    std::string data;
    for (unsigned i = 0; i < n; ++i) {
        data += std::to_string(rng.range(0, 255));
        if (i + 1 < n)
            data += ", ";
    }
    return strfmt(
        "    .equ N, %u\n"
        "    li s0, 0\n"
        "    li s1, 0\n"
        "loop:\n"
        "    la t0, data\n"
        "    add t0, t0, s0\n"
        "    lw a0, 0(t0)\n"
        "    call hashstep\n"
        "    add s1, s1, a0\n"
        "    addi s0, s0, 1\n"
        "    li t1, N\n"
        "    blt s0, t1, loop\n"
        "    out s1, 2\n"
        "    halt\n"
        "hashstep:\n"
        "    slli t2, a0, 3\n"
        "    xor a0, a0, t2\n"
        "    srli t2, a0, 5\n"
        "    add a0, a0, t2\n"
        "    andi a0, a0, 0xffff\n"
        "    ret\n"
        ".org 0x9000\n"
        "data: .word %s\n",
        n, data.c_str());
}

/** Assert an MSSP run is output- and instret-equivalent to SEQ. */
inline void
expectEquivalent(const Program &orig, const MsspResult &mssp_result)
{
    SeqMachine seq(orig);
    seq.run(100000000ull);
    ASSERT_TRUE(seq.halted()) << "SEQ oracle did not halt";
    ASSERT_TRUE(mssp_result.halted)
        << "MSSP did not halt (cycles=" << mssp_result.cycles << ")";
    EXPECT_EQ(mssp_result.outputs, seq.outputs());
    EXPECT_EQ(mssp_result.committedInsts, seq.instCount());
}

/** Prepare + run MSSP + check equivalence; returns the result. */
inline MsspResult
runAndCheck(const std::string &ref_src, const std::string &train_src,
            const MsspConfig &cfg, const DistillerOptions &dopts = {},
            uint64_t max_cycles = 200000000ull)
{
    PreparedWorkload w = prepare(ref_src, train_src, dopts);
    MsspMachine machine(w.orig, w.dist, cfg);
    MsspResult result = machine.run(max_cycles);
    expectEquivalent(w.orig, result);
    return result;
}

} // namespace mssp::test

#endif // MSSP_TESTS_HELPERS_HH

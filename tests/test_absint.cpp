/**
 * @file
 * Abstract-interpretation engine tests: the AbsVal interval lattice,
 * agreement of the abstract ALU with the concrete executor on
 * constants, tri-state branch evaluation, and whole-program fixpoints
 * (constant propagation, load refinement, store summaries, decided
 * branches, and abstract reachability) on small assembled programs.
 */

#include <gtest/gtest.h>

#include "analysis/absint.hh"
#include "asm/assembler.hh"
#include "exec/executor.hh"
#include "helpers.hh"

namespace mssp
{
namespace
{

using analysis::AbsintResult;
using analysis::AbsState;
using analysis::AbsVal;
using analysis::TriState;
using analysis::absBranch;
using analysis::absStep;
using analysis::analyzeProgram;
using analysis::stateBefore;

// -- Lattice ------------------------------------------------------------

TEST(AbsVal, LatticeBasics)
{
    EXPECT_TRUE(AbsVal::top().isTop());
    EXPECT_TRUE(AbsVal::bottom().isBottom());
    EXPECT_FALSE(AbsVal::bottom().contains(0));

    AbsVal c = AbsVal::constant(42);
    EXPECT_TRUE(c.isConst());
    EXPECT_EQ(c.cval(), 42u);
    EXPECT_TRUE(c.contains(42));
    EXPECT_FALSE(c.contains(43));

    // Negative constants survive the int32 <-> uint32 convention.
    AbsVal m = AbsVal::constant(static_cast<uint32_t>(-7));
    EXPECT_TRUE(m.isConst());
    EXPECT_EQ(m.cval(), static_cast<uint32_t>(-7));
}

TEST(AbsVal, JoinIsLeastUpperBound)
{
    AbsVal a = AbsVal::range(1, 5);
    AbsVal b = AbsVal::range(3, 9);
    AbsVal j = a.join(b);
    EXPECT_EQ(j, AbsVal::range(1, 9));

    // Bottom is the identity.
    EXPECT_EQ(AbsVal::bottom().join(a), a);
    EXPECT_EQ(a.join(AbsVal::bottom()), a);
    // Top absorbs.
    EXPECT_TRUE(a.join(AbsVal::top()).isTop());
}

TEST(AbsVal, WidenJumpsMovingBoundsToExtremes)
{
    AbsVal a = AbsVal::range(0, 10);
    AbsVal grown = AbsVal::range(0, 11);
    AbsVal w = a.widen(grown);
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, AbsVal::kMax);

    AbsVal shrunk_lo = AbsVal::range(-3, 10);
    AbsVal w2 = a.widen(shrunk_lo);
    EXPECT_EQ(w2.lo, AbsVal::kMin);
    EXPECT_EQ(w2.hi, 10);

    // A stable value is not widened.
    EXPECT_EQ(a.widen(a), a);
}

TEST(AbsVal, RangeClampsToInt32)
{
    EXPECT_TRUE(AbsVal::range(5, 4).isBottom());
    EXPECT_TRUE(
        AbsVal::range(AbsVal::kMin - 1, 0).isTop());
    EXPECT_TRUE(
        AbsVal::range(0, AbsVal::kMax + 1).isTop());
}

// -- Abstract ALU vs. concrete executor ---------------------------------

TEST(AbsInt, ConstantAluAgreesWithExecutor)
{
    const std::pair<Opcode, std::pair<uint32_t, uint32_t>> cases[] = {
        {Opcode::Add, {5, 7}},
        {Opcode::Sub, {5, 7}},
        {Opcode::And, {0xf0f0, 0x1234}},
        {Opcode::Or, {0xf0f0, 0x1234}},
        {Opcode::Xor, {0xf0f0, 0x1234}},
        {Opcode::Sll, {1, 31}},
        {Opcode::Srl, {0x80000000u, 4}},
        {Opcode::Sra, {0x80000000u, 4}},
        {Opcode::Slt, {static_cast<uint32_t>(-1), 1}},
        {Opcode::Sltu, {static_cast<uint32_t>(-1), 1}},
        {Opcode::Mul, {12345, 6789}},
    };
    for (const auto &[op, ab] : cases) {
        AbsState st = AbsState::entry();
        st.setReg(reg::T0, AbsVal::constant(ab.first));
        st.setReg(reg::T1, AbsVal::constant(ab.second));
        Instruction inst = makeR(op, reg::T2, reg::T0, reg::T1);
        absStep(0x1000, inst, st, nullptr, nullptr);

        uint32_t expect = 0;
        ASSERT_TRUE(evalAlu(op, ab.first, ab.second, expect));
        ASSERT_TRUE(st.reg(reg::T2).isConst())
            << "op " << static_cast<int>(op);
        EXPECT_EQ(st.reg(reg::T2).cval(), expect)
            << "op " << static_cast<int>(op);
    }
}

TEST(AbsInt, IntervalAddIsSoundNotConstant)
{
    AbsState st = AbsState::entry();
    st.setReg(reg::T0, AbsVal::range(1, 10));
    absStep(0x1000, makeI(Opcode::Addi, reg::T1, reg::T0, 5), st,
            nullptr, nullptr);
    EXPECT_FALSE(st.reg(reg::T1).isConst());
    EXPECT_TRUE(st.reg(reg::T1).contains(6));
    EXPECT_TRUE(st.reg(reg::T1).contains(15));
    EXPECT_FALSE(st.reg(reg::T1).contains(16));
}

TEST(AbsInt, WritesToR0AreDiscarded)
{
    AbsState st = AbsState::entry();
    absStep(0x1000, makeI(Opcode::Addi, reg::Zero, reg::Zero, 9), st,
            nullptr, nullptr);
    ASSERT_TRUE(st.reg(reg::Zero).isConst());
    EXPECT_EQ(st.reg(reg::Zero).cval(), 0u);
}

// -- Tri-state branches -------------------------------------------------

TEST(AbsInt, BranchTriState)
{
    AbsVal five = AbsVal::constant(5);
    AbsVal seven = AbsVal::constant(7);
    EXPECT_EQ(absBranch(Opcode::Blt, five, seven), TriState::True);
    EXPECT_EQ(absBranch(Opcode::Blt, seven, five), TriState::False);
    EXPECT_EQ(absBranch(Opcode::Beq, five, five), TriState::True);
    EXPECT_EQ(absBranch(Opcode::Bne, five, seven), TriState::True);

    // Disjoint ranges decide relational branches.
    AbsVal lo = AbsVal::range(0, 10);
    AbsVal hi = AbsVal::range(20, 30);
    EXPECT_EQ(absBranch(Opcode::Blt, lo, hi), TriState::True);
    EXPECT_EQ(absBranch(Opcode::Beq, lo, hi), TriState::False);

    // Overlapping ranges cannot be decided.
    AbsVal mid = AbsVal::range(5, 25);
    EXPECT_EQ(absBranch(Opcode::Blt, lo, mid), TriState::Unknown);
    EXPECT_EQ(absBranch(Opcode::Beq, lo, lo), TriState::Unknown);
}

// -- Whole-program fixpoints --------------------------------------------

TEST(AbsInt, ConstantsPropagateAndDecideBranches)
{
    Program p = assemble(
        "    li t0, 5\n"
        "    li t1, 7\n"
        "    add t2, t0, t1\n"
        "    blt t0, t1, tgt\n"
        "    addi t2, t2, 1\n"     // statically dead
        "tgt:\n"
        "    out t2, 1\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    AbsintResult ai = analyzeProgram(p, cfg);

    // The one conditional branch is decided taken.
    ASSERT_EQ(ai.branchDecision.size(), 1u);
    EXPECT_EQ(ai.branchDecision.begin()->second, TriState::True);

    // The fall-through block is proven unreachable...
    uint32_t dead_pc = ai.branchDecision.begin()->first + 1;
    EXPECT_EQ(ai.reachable.count(dead_pc), 0u);
    // ...and t2 is the constant 12 at the join.
    AbsState at_out =
        stateBefore(ai, cfg, p, p.symbols().at("tgt"));
    ASSERT_TRUE(at_out.reachable);
    ASSERT_TRUE(at_out.reg(reg::T2).isConst());
    EXPECT_EQ(at_out.reg(reg::T2).cval(), 12u);
}

TEST(AbsInt, LoadFromNeverWrittenAddressRefinesToImageValue)
{
    Program p = assemble(
        "    la t0, data\n"
        "    lw t1, 0(t0)\n"
        "done:\n"
        "    out t1, 1\n"
        "    halt\n"
        ".org 0x8000\n"
        "data: .word 42\n");
    Cfg cfg = Cfg::build(p, p.entry());
    AbsintResult ai = analyzeProgram(p, cfg);

    AbsState at_out =
        stateBefore(ai, cfg, p, p.symbols().at("done"));
    ASSERT_TRUE(at_out.reachable);
    ASSERT_TRUE(at_out.reg(reg::T1).isConst());
    EXPECT_EQ(at_out.reg(reg::T1).cval(), 42u);
    EXPECT_FALSE(ai.stores.mayWrite(p.symbols().at("data")));
}

TEST(AbsInt, StoreKillsLoadRefinement)
{
    Program p = assemble(
        "    la t0, data\n"
        "    li t2, 9\n"
        "    sw t2, 0(t0)\n"
        "    lw t1, 0(t0)\n"
        "done:\n"
        "    out t1, 1\n"
        "    halt\n"
        ".org 0x8000\n"
        "data: .word 42\n");
    Cfg cfg = Cfg::build(p, p.entry());
    AbsintResult ai = analyzeProgram(p, cfg);

    uint32_t data = p.symbols().at("data");
    EXPECT_TRUE(ai.stores.mayWrite(data));
    EXPECT_FALSE(ai.stores.mayWrite(data + 64));
    const analysis::StoreSite *site = ai.stores.interferer(data);
    ASSERT_NE(site, nullptr);
    ASSERT_TRUE(site->value.isConst());
    EXPECT_EQ(site->value.cval(), 9u);

    // The load after the store must NOT be refined to the image 42.
    AbsState at_out =
        stateBefore(ai, cfg, p, p.symbols().at("done"));
    ASSERT_TRUE(at_out.reachable);
    EXPECT_FALSE(at_out.reg(reg::T1).isConst());
}

TEST(AbsInt, LoopInductionVariableWidensAndConverges)
{
    Program p = assemble(
        "    li s0, 0\n"
        "    li t1, 100\n"
        "loop:\n"
        "    addi s0, s0, 1\n"
        "    blt s0, t1, loop\n"
        "    out s0, 1\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    AbsintResult ai = analyzeProgram(p, cfg);

    // The back edge cannot be decided, and the loop body's in-state
    // is a widened but sound interval for s0.
    ASSERT_EQ(ai.branchDecision.size(), 1u);
    EXPECT_EQ(ai.branchDecision.begin()->second, TriState::Unknown);

    AbsState header =
        stateBefore(ai, cfg, p, p.symbols().at("loop"));
    ASSERT_TRUE(header.reachable);
    EXPECT_FALSE(header.reg(reg::S0).isBottom());
    EXPECT_TRUE(header.reg(reg::S0).contains(0));
    EXPECT_TRUE(header.reg(reg::S0).contains(99));
    // Fixpoint terminated in a bounded number of sweeps.
    EXPECT_LT(ai.sweepsRound1, 50u);
    EXPECT_LT(ai.sweepsRound2, 50u);
}

TEST(AbsInt, StateBeforeOutsideAnyBlockIsUnreachable)
{
    Program p = assemble("    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    AbsintResult ai = analyzeProgram(p, cfg);
    EXPECT_FALSE(stateBefore(ai, cfg, p, 0x7777777).reachable);
}

} // anonymous namespace
} // namespace mssp

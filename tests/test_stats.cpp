/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace mssp::stats
{
namespace
{

TEST(Stats, ScalarCounts)
{
    Group root("root");
    Scalar s(&root, "events", "number of events");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageTracksMoments)
{
    Group root("root");
    Average a(&root, "lat", "latency");
    a.sample(10);
    a.sample(20);
    a.sample(0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(Stats, DistributionBuckets)
{
    Group root("root");
    Distribution d(&root, "size", "task size", 0, 100, 10);
    d.sample(5);      // bucket 0
    d.sample(15);     // bucket 1
    d.sample(15);     // bucket 1
    d.sample(-1);     // underflow
    d.sample(100);    // overflow (hi is exclusive)
    d.sample(99.5);   // bucket 9
    EXPECT_EQ(d.count(), 6u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(9), 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
}

TEST(Stats, FormulaEvaluatesAtDump)
{
    Group root("root");
    Scalar hits(&root, "hits", "");
    Scalar total(&root, "total", "");
    Formula rate(&root, "rate", "hit rate", [&] {
        return total.value()
                   ? static_cast<double>(hits.value()) /
                         static_cast<double>(total.value())
                   : 0.0;
    });
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, GroupDumpContainsDottedPaths)
{
    Group root("machine");
    Group sub("master", &root);
    Scalar insts(&sub, "insts", "instructions executed");
    insts += 7;
    std::ostringstream os;
    root.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("machine.master.insts"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("instructions executed"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    Group root("root");
    Group sub("sub", &root);
    Scalar a(&root, "a", "");
    Scalar b(&sub, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

} // anonymous namespace
} // namespace mssp::stats

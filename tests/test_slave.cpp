/**
 * @file
 * Unit tests for SlaveCore and TaskContext: live-in recording
 * priority, checkpoint consumption, fork-site pauses, end-visit
 * counting, runaway caps, output buffering and timing stalls.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "asm/assembler.hh"
#include "exec/decode_cache.hh"
#include "mssp/slave.hh"

namespace mssp
{
namespace
{

struct SlaveFixture : public ::testing::Test
{
    ArchState arch;
    MsspConfig cfg;
    std::vector<uint32_t> fork_sites;

    void
    loadSource(const std::string &src)
    {
        prog = assemble(src);
        arch.loadProgram(prog);
    }

    /** Build a slave over the loaded program; the fork-site set and
     *  decode cache it references live in the fixture (deques keep
     *  earlier slaves' references valid). */
    SlaveCore
    makeSlave(ArchState &a, const MsspConfig &c)
    {
        sites_.emplace_back(fork_sites);
        decodes_.emplace_back(prog);
        return SlaveCore(0, a, c, sites_.back(), decodes_.back());
    }

    Task
    makeTask(uint32_t start_pc)
    {
        Task t;
        t.startPc = start_pc;
        t.checkpoint = std::make_shared<const StateDelta>();
        return t;
    }

    /** Tick @p slave until the task is done or @p max ticks. */
    void
    runSlave(SlaveCore &slave, Task &task, unsigned max = 100000)
    {
        slave.assign(&task);
        for (unsigned i = 0; i < max && !task.done(); ++i)
            slave.tick();
    }

    Program prog;
    std::deque<ForkSiteSet> sites_;
    std::deque<DecodeCache> decodes_;
};

TEST_F(SlaveFixture, ReadPriorityLocalThenCheckpointThenArch)
{
    loadSource("halt\n");
    arch.writeMem(0x100, 1);

    Task t = makeTask(0);
    auto ckpt = std::make_shared<StateDelta>();
    ckpt->set(makeMemCell(0x100), 2);
    t.checkpoint = ckpt;

    TaskContext ctx(t, arch);
    // Checkpoint wins over arch.
    EXPECT_EQ(ctx.readMem(0x100), 2u);
    // First read was recorded as a live-in with the checkpoint value.
    EXPECT_EQ(t.liveIn.get(makeMemCell(0x100)).value(), 2u);
    // A local write wins over everything afterwards.
    ctx.writeMem(0x100, 3);
    EXPECT_EQ(ctx.readMem(0x100), 3u);
    // The live-in stays at the first-read value.
    EXPECT_EQ(t.liveIn.get(makeMemCell(0x100)).value(), 2u);
    // Reads not covered by the checkpoint go to arch and count.
    EXPECT_EQ(ctx.readMem(0x101), 0u);
    EXPECT_EQ(t.archReads, 1u);
}

TEST_F(SlaveFixture, LiveInRecordsFirstValueOnly)
{
    loadSource("halt\n");
    arch.writeMem(0x200, 7);
    Task t = makeTask(0);
    TaskContext ctx(t, arch);
    EXPECT_EQ(ctx.readMem(0x200), 7u);
    // Arch changes afterwards (an older task committed): the task
    // keeps its recorded value — verification will compare later.
    arch.writeMem(0x200, 8);
    EXPECT_EQ(ctx.readMem(0x200), 7u);
    EXPECT_EQ(t.liveIn.get(makeMemCell(0x200)).value(), 7u);
}

TEST_F(SlaveFixture, FetchIsNotALiveIn)
{
    loadSource("addi t0, zero, 4\nhalt\n");
    Task t = makeTask(prog.entry());
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::Halted);
    for (const auto &[cell, value] : t.liveIn)
        EXPECT_NE(cellKind(cell), CellKind::Mem)
            << "instruction fetches must not be recorded";
}

TEST_F(SlaveFixture, RunsToHaltAndCountsInstructions)
{
    loadSource(
        "    li t0, 10\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t0, 5\n"
        "    halt\n");
    Task t = makeTask(prog.entry());
    t.runToHalt = true;
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::Halted);
    EXPECT_EQ(t.instCount, 1 + 20 + 1 + 1u);
    ASSERT_EQ(t.outputs.size(), 1u);
    EXPECT_EQ(t.outputs[0].port, 5);
    EXPECT_TRUE(t.liveOut.contains(makeRegCell(reg::T0)));
}

TEST_F(SlaveFixture, PausesAtForkSiteUntilEndKnown)
{
    loadSource(
        "head:\n"
        "    addi t0, t0, 1\n"
        "    j head\n");
    uint32_t head = 0;
    ASSERT_TRUE(prog.lookupSymbol("head", head));
    fork_sites.push_back(head);

    Task t = makeTask(head);
    SlaveCore slave = makeSlave(arch, cfg);
    slave.assign(&t);
    for (int i = 0; i < 50; ++i)
        slave.tick();
    // Looped back to head once, then paused awaiting its end info.
    EXPECT_TRUE(t.pausedAtForkSite);
    EXPECT_EQ(t.instCount, 2u);
    EXPECT_GT(slave.pauseCycles(), 0u);

    // End condition arrives: end at 'head' on the 2nd arrival.
    t.endKnown = true;
    t.endPc = head;
    t.endVisits = 2;
    for (int i = 0; i < 50 && !t.done(); ++i)
        slave.tick();
    EXPECT_EQ(t.end, TaskEnd::ReachedEnd);
    EXPECT_EQ(t.visits, 2u);
    EXPECT_EQ(t.instCount, 4u);
    EXPECT_EQ(t.pc, head);
}

TEST_F(SlaveFixture, EndVisitCountingWithKnownEnd)
{
    loadSource(
        "head:\n"
        "    addi t0, t0, 1\n"
        "    j head\n");
    uint32_t head = 0;
    ASSERT_TRUE(prog.lookupSymbol("head", head));
    fork_sites.push_back(head);

    Task t = makeTask(head);
    t.endKnown = true;
    t.endPc = head;
    t.endVisits = 3;
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::ReachedEnd);
    EXPECT_EQ(t.instCount, 6u);   // 3 iterations of 2 insts
}

TEST_F(SlaveFixture, RunToHaltIgnoresForkSites)
{
    loadSource(
        "head:\n"
        "    addi t0, t0, 1\n"
        "    li t1, 3\n"
        "    blt t0, t1, head\n"
        "    halt\n");
    uint32_t head = 0;
    ASSERT_TRUE(prog.lookupSymbol("head", head));
    fork_sites.push_back(head);

    Task t = makeTask(head);
    t.runToHalt = true;
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::Halted);
}

TEST_F(SlaveFixture, OverrunCapFires)
{
    loadSource("spin: j spin\n");
    cfg.maxTaskInsts = 100;
    Task t = makeTask(prog.entry());
    t.runToHalt = true;
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::Overrun);
    EXPECT_EQ(t.instCount, 100u);
}

TEST_F(SlaveFixture, IllegalInstructionFaultsTask)
{
    loadSource("j nowhere\nnowhere:\n");
    Task t = makeTask(prog.entry());
    t.runToHalt = true;
    SlaveCore slave = makeSlave(arch, cfg);
    runSlave(slave, t);
    EXPECT_EQ(t.end, TaskEnd::Faulted);
    EXPECT_EQ(t.instCount, 1u);   // the jump executed; the fault not
}

TEST_F(SlaveFixture, ArchReadsStallTheSlave)
{
    // Ten loads from arch with latency 4: the slave must take
    // noticeably longer than the instruction count.
    loadSource(
        "    li t0, 0\n"
        "    la t1, data\n"
        "loop:\n"
        "    add t2, t1, t0\n"
        "    lw t3, 0(t2)\n"
        "    addi t0, t0, 1\n"
        "    li t4, 10\n"
        "    blt t0, t4, loop\n"
        "    halt\n"
        ".org 0x4000\n"
        "data: .word 1,2,3,4,5,6,7,8,9,10\n");
    cfg.archReadLatency = 4;
    cfg.useSlaveL1 = false;   // measure raw read-through charging
    Task t = makeTask(prog.entry());
    t.runToHalt = true;
    SlaveCore slave = makeSlave(arch, cfg);
    slave.assign(&t);
    unsigned ticks = 0;
    while (!t.done() && ticks < 10000) {
        slave.tick();
        ++ticks;
    }
    EXPECT_EQ(t.end, TaskEnd::Halted);
    EXPECT_GE(ticks, t.instCount + 10 * 4);
    EXPECT_GT(slave.archStallCycles(), 0u);

    // With the L1 enabled, the ten sequential loads share lines and
    // the run takes strictly fewer cycles.
    MsspConfig cached = cfg;
    cached.useSlaveL1 = true;
    ArchState arch2;
    arch2.loadProgram(prog);
    Task t2 = makeTask(prog.entry());
    t2.runToHalt = true;
    SlaveCore slave2 = makeSlave(arch2, cached);
    slave2.assign(&t2);
    unsigned ticks2 = 0;
    while (!t2.done() && ticks2 < 10000) {
        slave2.tick();
        ++ticks2;
    }
    EXPECT_EQ(t2.end, TaskEnd::Halted);
    EXPECT_LT(ticks2, ticks);
    ASSERT_NE(slave2.l1(), nullptr);
    EXPECT_GT(slave2.l1()->hits(), 0u);
}

TEST_F(SlaveFixture, IdleSlaveCountsIdleCycles)
{
    loadSource("halt\n");
    SlaveCore slave = makeSlave(arch, cfg);
    EXPECT_TRUE(slave.idle());
    slave.tick();
    slave.tick();
    EXPECT_EQ(slave.idleCycles(), 2u);
}

} // anonymous namespace
} // namespace mssp

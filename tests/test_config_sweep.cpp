/**
 * @file
 * Parameterized machine-configuration sweep: output equivalence must
 * hold at every corner of the configuration space (slave counts,
 * window sizes, latencies, IPCs, L1 on/off, fork intervals, tiny
 * runaway caps). This is the coarse-grained counterpart of the
 * adversarial suite: instead of attacking the distilled program, it
 * attacks the machine's timing envelope.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "workloads/micro.hh"

namespace mssp
{
namespace
{

struct SweepPoint
{
    const char *name;
    MsspConfig cfg;
};

std::vector<SweepPoint>
sweepPoints()
{
    std::vector<SweepPoint> pts;
    {
        MsspConfig c;
        c.numSlaves = 1;
        c.maxInFlightTasks = 2;
        pts.push_back({"one_slave_tiny_window", c});
    }
    {
        MsspConfig c;
        c.numSlaves = 32;
        c.maxInFlightTasks = 64;
        pts.push_back({"many_slaves", c});
    }
    {
        MsspConfig c;
        c.forkLatency = 0;
        c.commitLatency = 0;
        c.squashPenalty = 0;
        c.archReadLatency = 0;
        pts.push_back({"zero_latency", c});
    }
    {
        MsspConfig c;
        c.forkLatency = 200;
        c.commitLatency = 150;
        c.squashPenalty = 500;
        c.archReadLatency = 40;
        pts.push_back({"huge_latency", c});
    }
    {
        MsspConfig c;
        c.masterIpc = 4.0;
        c.slaveIpc = 0.5;
        pts.push_back({"fast_master_slow_slaves", c});
    }
    {
        MsspConfig c;
        c.masterIpc = 0.25;
        c.slaveIpc = 2.0;
        pts.push_back({"slow_master_fast_slaves", c});
    }
    {
        MsspConfig c;
        c.maxTaskInsts = 64;   // constant overruns
        c.watchdogCycles = 2000;
        pts.push_back({"tiny_runaway_cap", c});
    }
    {
        MsspConfig c;
        c.useSlaveL1 = false;
        c.archReadLatency = 10;
        pts.push_back({"no_l1_slow_l2", c});
    }
    {
        MsspConfig c;
        c.slaveL1.sets = 2;
        c.slaveL1.ways = 1;
        c.slaveL1.lineWords = 2;
        pts.push_back({"degenerate_l1", c});
    }
    {
        MsspConfig c;
        c.forkInterval = 7;
        pts.push_back({"fork_interval_7", c});
    }
    {
        MsspConfig c;
        c.maxEngageFailures = 0;   // back off on every squash
        c.seqBackoffInsts = 16;
        pts.push_back({"hair_trigger_backoff", c});
    }
    return pts;
}

class ConfigSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(ConfigSweep, BiasedLoopEquivalent)
{
    setQuiet(true);
    const SweepPoint pt = sweepPoints().at(GetParam());
    SCOPED_TRACE(pt.name);
    test::runAndCheck(test::biasedSumSource(250, 71),
                      test::biasedSumSource(150, 72), pt.cfg,
                      DistillerOptions::paperPreset());
}

TEST_P(ConfigSweep, RecursiveQsortEquivalent)
{
    setQuiet(true);
    const SweepPoint pt = sweepPoints().at(GetParam());
    SCOPED_TRACE(pt.name);
    Workload w = microQsort(80);
    test::runAndCheck(w.refSource, w.trainSource, pt.cfg,
                      DistillerOptions::paperPreset());
}

INSTANTIATE_TEST_SUITE_P(Points, ConfigSweep,
                         ::testing::Range<size_t>(0, 11),
                         [](const auto &info) {
                             return sweepPoints()[info.param].name;
                         });

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for the evaluation harness (runWorkload/runPrepared,
 * Table, geomean), the baseline machine and the pipeline helpers.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "eval/experiment.hh"
#include "mssp/baseline.hh"
#include "workloads/workloads.hh"

namespace mssp
{
namespace
{

TEST(Baseline, CyclesFollowIpc)
{
    Program p = assemble(
        "    li t0, 100\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t0, 0\n"
        "    halt\n");
    BaselineResult r1 = runBaseline(p, 1.0, 10000000);
    EXPECT_TRUE(r1.halted);
    EXPECT_EQ(r1.insts, 1 + 200 + 1 + 1u);
    EXPECT_EQ(r1.cycles, r1.insts);

    BaselineResult r2 = runBaseline(p, 2.0, 10000000);
    EXPECT_EQ(r2.insts, r1.insts);
    EXPECT_EQ(r2.cycles, (r1.insts + 1) / 2);
    EXPECT_EQ(r2.outputs, r1.outputs);
}

TEST(Baseline, RespectsInstructionCap)
{
    Program p = assemble("loop: j loop\n");
    BaselineResult r = runBaseline(p, 1.0, 500);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.insts, 500u);
}

TEST(Harness, RunWorkloadProducesConsistentMetrics)
{
    setQuiet(true);
    Workload wl = workloadByName("parser", 0.1);
    MsspConfig cfg;
    WorkloadRun run = runWorkload(wl, cfg,
                                  DistillerOptions::paperPreset());
    EXPECT_TRUE(run.ok);
    EXPECT_GT(run.seqInsts, 1000u);
    EXPECT_GT(run.baselineCycles, 0u);
    EXPECT_GT(run.msspCycles, 0u);
    EXPECT_NEAR(run.speedup,
                static_cast<double>(run.baselineCycles) /
                    static_cast<double>(run.msspCycles),
                1e-9);
    EXPECT_NEAR(run.distillRatio,
                static_cast<double>(run.masterInsts) /
                    static_cast<double>(run.seqInsts),
                1e-9);
    EXPECT_GT(run.meanTaskSize, 1.0);
    EXPECT_GT(run.counters.tasksCommitted, 0u);
}

TEST(Harness, RunPreparedMatchesRunWorkload)
{
    setQuiet(true);
    Workload wl = workloadByName("vpr", 0.1);
    MsspConfig cfg;
    DistillerOptions dopts = DistillerOptions::paperPreset();
    WorkloadRun a = runWorkload(wl, cfg, dopts);
    PreparedWorkload prepared = prepare(wl.refSource, wl.trainSource,
                                        dopts);
    WorkloadRun b = runPrepared(wl.name, prepared, cfg);
    EXPECT_EQ(a.msspCycles, b.msspCycles);
    EXPECT_EQ(a.masterInsts, b.masterInsts);
    EXPECT_EQ(a.ok, b.ok);
}

TEST(Harness, TimedOutRunReportsNotOk)
{
    setQuiet(true);
    Workload wl = workloadByName("mcf", 0.1);
    MsspConfig cfg;
    WorkloadRun run = runWorkload(wl, cfg, {}, /*max_cycles=*/100);
    EXPECT_FALSE(run.ok);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string s = t.render("demo");
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, Formatters)
{
    EXPECT_EQ(fmt2(1.234), "1.23");
    EXPECT_EQ(fmtPct(0.5), "50.00%");
}

TEST(Pipeline, TrainFallsBackToRef)
{
    setQuiet(true);
    std::string src =
        "    li t0, 20\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out t0, 0\n"
        "    halt\n";
    PreparedWorkload w = prepare(src);   // no train source
    EXPECT_GT(w.profile.totalInsts, 0u);
    EXPECT_GE(w.dist.taskMap.size(), 1u);
}

} // anonymous namespace
} // namespace mssp

/**
 * @file
 * Unit tests for CFG construction, loop-header detection and register
 * liveness.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cfg/cfg.hh"

namespace mssp
{
namespace
{

TEST(Cfg, SingleBlock)
{
    Program p = assemble(
        "add t0, t1, t2\n"
        "sub t3, t0, t1\n"
        "halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    ASSERT_EQ(cfg.blocks().size(), 1u);
    const BasicBlock &bb = cfg.blockAt(p.entry());
    EXPECT_EQ(bb.insts.size(), 3u);
    EXPECT_EQ(bb.term, TermKind::Halt);
    EXPECT_TRUE(bb.succs.empty());
    EXPECT_TRUE(cfg.loopHeaders().empty());
}

TEST(Cfg, LoopStructure)
{
    Program p = assemble(
        "    li t0, 5\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    uint32_t loop_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("loop", loop_pc));
    ASSERT_EQ(cfg.blocks().size(), 3u);
    // Loop block: two insts, condbranch, succs = {loop, after}.
    const BasicBlock &loop = cfg.blockAt(loop_pc);
    EXPECT_EQ(loop.term, TermKind::CondBranch);
    EXPECT_EQ(loop.takenTarget, loop_pc);
    ASSERT_EQ(loop.succs.size(), 2u);
    // Header detection.
    EXPECT_EQ(cfg.loopHeaders().size(), 1u);
    EXPECT_TRUE(cfg.loopHeaders().count(loop_pc));
    // Preds: entry block and itself.
    EXPECT_EQ(cfg.preds(loop_pc).size(), 2u);
}

TEST(Cfg, DiamondBothArmsDiscovered)
{
    Program p = assemble(
        "    beqz a0, left\n"
        "    addi t0, zero, 1\n"
        "    j join\n"
        "left:\n"
        "    addi t0, zero, 2\n"
        "join:\n"
        "    out t0, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    EXPECT_EQ(cfg.blocks().size(), 4u);
    uint32_t join_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("join", join_pc));
    EXPECT_EQ(cfg.preds(join_pc).size(), 2u);
    EXPECT_TRUE(cfg.loopHeaders().empty());
}

TEST(Cfg, CallReturnDiscovery)
{
    Program p = assemble(
        "    call fn\n"
        "    out a0, 0\n"
        "    halt\n"
        "fn:\n"
        "    addi a0, zero, 9\n"
        "    ret\n");
    Cfg cfg = Cfg::build(p, p.entry());
    // Blocks: entry(call), return-point, fn.
    ASSERT_EQ(cfg.blocks().size(), 3u);
    const BasicBlock &entry = cfg.blockAt(p.entry());
    EXPECT_EQ(entry.term, TermKind::Jump);
    EXPECT_TRUE(entry.isCall);
    uint32_t fn_pc = 0;
    ASSERT_TRUE(p.lookupSymbol("fn", fn_pc));
    const BasicBlock &fn = cfg.blockAt(fn_pc);
    EXPECT_EQ(fn.term, TermKind::IndirectJump);
    // The return point (entry+1) must have been discovered.
    EXPECT_TRUE(cfg.hasBlock(p.entry() + 1));
}

TEST(Cfg, FallthroughIntoLabel)
{
    Program p = assemble(
        "    addi t0, zero, 1\n"
        "tgt:\n"
        "    addi t0, t0, 1\n"
        "    beqz t0, tgt\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    const BasicBlock &first = cfg.blockAt(p.entry());
    EXPECT_EQ(first.term, TermKind::FallThrough);
    EXPECT_EQ(first.insts.size(), 1u);
}

TEST(Cfg, NumInstsCountsEverything)
{
    Program p = assemble(
        "    li t0, 5\n"
        "loop:\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    EXPECT_EQ(cfg.numInsts(), 4u);
}

TEST(Liveness, DefKillsUse)
{
    Program p = assemble(
        "    add t0, a0, a1\n"    // uses a0,a1
        "    add t1, t0, t0\n"
        "    out t1, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    auto live = computeLiveness(cfg);
    RegMask in = live.at(p.entry()).liveIn;
    EXPECT_TRUE(in & (1u << reg::A0));
    EXPECT_TRUE(in & (1u << reg::A1));
    EXPECT_FALSE(in & (1u << reg::T0));   // defined before use
    EXPECT_FALSE(in & (1u << reg::T1));
}

TEST(Liveness, LoopCarriedValueStaysLive)
{
    Program p = assemble(
        "loop:\n"
        "    add s0, s0, s1\n"
        "    addi t0, t0, -1\n"
        "    bnez t0, loop\n"
        "    out s0, 0\n"
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    auto live = computeLiveness(cfg);
    RegMask in = live.at(p.entry()).liveIn;
    EXPECT_TRUE(in & (1u << reg::S0));
    EXPECT_TRUE(in & (1u << reg::S1));
    EXPECT_TRUE(in & (1u << reg::T0));
}

TEST(Liveness, HaltKillsEverything)
{
    Program p = assemble(
        "    add t0, a0, a1\n"    // dead: never observed
        "    halt\n");
    Cfg cfg = Cfg::build(p, p.entry());
    auto live = computeLiveness(cfg);
    EXPECT_EQ(live.at(p.entry()).liveOut, 0u);
}

TEST(Liveness, IndirectJumpKeepsAllLive)
{
    Program p = assemble(
        "    add t0, a0, a1\n"
        "    jalr zero, ra, 0\n");
    Cfg cfg = Cfg::build(p, p.entry());
    auto live = computeLiveness(cfg);
    EXPECT_EQ(live.at(p.entry()).liveOut, 0xfffffffeu);
}

TEST(Liveness, TransferFunction)
{
    RegMask after = (1u << reg::T0) | (1u << reg::A0);
    // t0 = a1 + a2 : kills t0, gens a1,a2
    RegMask before = liveBeforeInst(
        makeR(Opcode::Add, reg::T0, reg::A1, reg::A2), after);
    EXPECT_FALSE(before & (1u << reg::T0));
    EXPECT_TRUE(before & (1u << reg::A1));
    EXPECT_TRUE(before & (1u << reg::A2));
    EXPECT_TRUE(before & (1u << reg::A0));
}

} // anonymous namespace
} // namespace mssp

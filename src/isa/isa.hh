/**
 * @file
 * The μRISC instruction set.
 *
 * μRISC is a 32-bit, word-addressed RISC ISA defined for this project
 * (the paper used Alpha; see DESIGN.md §2 for the substitution
 * argument). Key properties:
 *
 *  - 32 general-purpose 32-bit registers; r0 is hard-wired to zero.
 *  - Memory is an array of 32-bit words addressed by 32-bit word
 *    addresses; there are no sub-word accesses.
 *  - The PC is a word address; sequential execution advances it by 1.
 *  - Fixed 32-bit instruction encodings in four formats (R/I/B/J).
 *  - OUT writes a register to an output port; program output is the
 *    ordered stream of (port, value) pairs, which is the primary
 *    observable for equivalence checking.
 *  - FORK marks an MSSP task boundary. It executes as a NOP on every
 *    machine except the MSSP master, which interprets it as a task
 *    spawn point. Only distilled programs contain FORKs.
 */

#ifndef MSSP_ISA_ISA_HH
#define MSSP_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace mssp
{

/** Number of architected general-purpose registers. */
constexpr unsigned NumRegs = 32;

/** Opcode space. Opcode 0 is deliberately illegal so that unmapped
 *  (zero) memory does not decode to a runnable instruction. */
enum class Opcode : uint8_t
{
    Illegal = 0,

    // R-type: rd, rs1, rs2
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,

    // I-type ALU: rd, rs1, imm16
    Addi, Andi, Ori, Xori, Slti, Sltiu, Slli, Srli, Srai,

    /// rd = imm16 << 16
    Lui,

    /// rd = mem[rs1 + imm16]
    Lw,
    /// mem[rs1 + imm16] = rs2   (B format)
    Sw,

    // B-type: rs1, rs2, imm16 (signed word offset from pc+1)
    Beq, Bne, Blt, Bge, Bltu, Bgeu,

    /// rd = pc+1; pc += 1 + imm21 (signed)
    Jal,
    /// rd = pc+1; pc = rs1 + imm16
    Jalr,

    /// emit value of rs1 on output port imm16
    Out,

    /// no operation
    Nop,
    /// stop the machine
    Halt,
    /// MSSP task boundary; imm21 is an index into the task map
    Fork,

    NumOpcodes
};

/** Encoding formats. */
enum class Format : uint8_t
{
    R,   ///< op rd, rs1, rs2
    I,   ///< op rd, rs1, imm16
    B,   ///< op rs1, rs2, imm16
    J,   ///< op rd, imm21
    N,   ///< no operands (nop, halt)
};

/** A decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;

    bool operator==(const Instruction &) const = default;
};

/** @return the encoding format of @p op. */
Format formatOf(Opcode op);

/** @return the lower-case mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** @return the opcode for a mnemonic, or Illegal if unknown. */
Opcode opcodeFromName(const std::string &name);

/** @return true for conditional branches (Beq..Bgeu). */
constexpr bool
isCondBranch(Opcode op)
{
    return op >= Opcode::Beq && op <= Opcode::Bgeu;
}

/** @return true for register-register ALU ops (Add..Sltu). */
constexpr bool
isRegRegAlu(Opcode op)
{
    return op >= Opcode::Add && op <= Opcode::Sltu;
}

/** @return true for any control transfer (branches, jal, jalr). */
bool isControl(Opcode op);

/** @return true for Lw. */
bool isLoad(Opcode op);

/** @return true for Sw. */
bool isStore(Opcode op);

/** @return true when the instruction writes register inst.rd. */
bool writesReg(const Instruction &inst);

/**
 * Collect source registers of @p inst into @p srcs (size >= 2).
 * @return the number of sources (0..2).
 */
unsigned sourceRegs(const Instruction &inst, uint8_t srcs[2]);

// -- Encoding -----------------------------------------------------------

/**
 * Encode an instruction into its 32-bit representation.
 * Immediates out of field range cause a fatal() error.
 */
uint32_t encode(const Instruction &inst);

/**
 * Decode a 32-bit word. Unknown opcodes yield an Instruction with
 * op == Opcode::Illegal (execution then faults).
 */
Instruction decode(uint32_t word);

// -- Register names -----------------------------------------------------

/**
 * ABI register names:
 *   r0  zero   hard-wired zero
 *   r1  ra     return address
 *   r2  sp     stack pointer
 *   r3..r10  a0..a7   arguments / return values
 *   r11..r20 t0..t9   caller-saved temporaries
 *   r21..r31 s0..s10  callee-saved
 */
const char *regName(unsigned reg);

/** @return register index for a name ("r5", "a2", "sp"), or -1. */
int regFromName(const std::string &name);

/** Named constants for commonly used registers. */
namespace reg
{
constexpr uint8_t Zero = 0;
constexpr uint8_t Ra = 1;
constexpr uint8_t Sp = 2;
constexpr uint8_t A0 = 3;
constexpr uint8_t A1 = 4;
constexpr uint8_t A2 = 5;
constexpr uint8_t A3 = 6;
constexpr uint8_t A4 = 7;
constexpr uint8_t A5 = 8;
constexpr uint8_t A6 = 9;
constexpr uint8_t A7 = 10;
constexpr uint8_t T0 = 11;
constexpr uint8_t T1 = 12;
constexpr uint8_t T2 = 13;
constexpr uint8_t T3 = 14;
constexpr uint8_t T4 = 15;
constexpr uint8_t T5 = 16;
constexpr uint8_t T6 = 17;
constexpr uint8_t T7 = 18;
constexpr uint8_t T8 = 19;
constexpr uint8_t T9 = 20;
constexpr uint8_t S0 = 21;
constexpr uint8_t S1 = 22;
constexpr uint8_t S2 = 23;
constexpr uint8_t S3 = 24;
constexpr uint8_t S4 = 25;
constexpr uint8_t S5 = 26;
constexpr uint8_t S6 = 27;
constexpr uint8_t S7 = 28;
constexpr uint8_t S8 = 29;
constexpr uint8_t S9 = 30;
constexpr uint8_t S10 = 31;
} // namespace reg

// -- Construction helpers (used by codegen and tests) --------------------

inline Instruction
makeR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    return Instruction{op, rd, rs1, rs2, 0};
}

inline Instruction
makeI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm)
{
    return Instruction{op, rd, rs1, 0, imm};
}

inline Instruction
makeB(Opcode op, uint8_t rs1, uint8_t rs2, int32_t imm)
{
    return Instruction{op, 0, rs1, rs2, imm};
}

inline Instruction
makeJ(Opcode op, uint8_t rd, int32_t imm)
{
    return Instruction{op, rd, 0, 0, imm};
}

inline Instruction
makeN(Opcode op)
{
    return Instruction{op, 0, 0, 0, 0};
}

} // namespace mssp

#endif // MSSP_ISA_ISA_HH

#include "isa/disasm.hh"

#include "sim/logging.hh"

namespace mssp
{

std::string
disassemble(const Instruction &inst, uint32_t pc)
{
    const char *name = opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Illegal:
        return name;
      case Opcode::Lui:
        return strfmt("%s %s, 0x%x", name, regName(inst.rd),
                      static_cast<uint32_t>(inst.imm) & 0xffff);
      case Opcode::Lw:
        return strfmt("%s %s, %d(%s)", name, regName(inst.rd),
                      inst.imm, regName(inst.rs1));
      case Opcode::Sw:
        return strfmt("%s %s, %d(%s)", name, regName(inst.rs2),
                      inst.imm, regName(inst.rs1));
      case Opcode::Out:
        return strfmt("%s %s, %d", name, regName(inst.rs1), inst.imm);
      case Opcode::Jal:
        if (pc != UINT32_MAX) {
            return strfmt("%s %s, 0x%x", name, regName(inst.rd),
                          pc + 1 + inst.imm);
        }
        return strfmt("%s %s, %d", name, regName(inst.rd), inst.imm);
      case Opcode::Jalr:
        return strfmt("%s %s, %s, %d", name, regName(inst.rd),
                      regName(inst.rs1), inst.imm);
      case Opcode::Fork:
        return strfmt("%s %d", name, inst.imm);
      default:
        break;
    }
    switch (formatOf(inst.op)) {
      case Format::R:
        return strfmt("%s %s, %s, %s", name, regName(inst.rd),
                      regName(inst.rs1), regName(inst.rs2));
      case Format::I:
        return strfmt("%s %s, %s, %d", name, regName(inst.rd),
                      regName(inst.rs1), inst.imm);
      case Format::B:
        if (pc != UINT32_MAX) {
            return strfmt("%s %s, %s, 0x%x", name, regName(inst.rs1),
                          regName(inst.rs2), pc + 1 + inst.imm);
        }
        return strfmt("%s %s, %s, %d", name, regName(inst.rs1),
                      regName(inst.rs2), inst.imm);
      default:
        return name;
    }
}

std::string
disassembleWord(uint32_t word, uint32_t pc)
{
    return disassemble(decode(word), pc);
}

} // namespace mssp

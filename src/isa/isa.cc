#include "isa/isa.hh"

#include <unordered_map>

#include "sim/logging.hh"
#include "util/bitfield.hh"

namespace mssp
{

namespace
{

struct OpInfo
{
    const char *name;
    Format format;
};

const OpInfo &
opInfo(Opcode op)
{
    static const OpInfo table[] = {
        {"illegal", Format::N},  // Illegal
        {"add", Format::R},
        {"sub", Format::R},
        {"mul", Format::R},
        {"div", Format::R},
        {"rem", Format::R},
        {"and", Format::R},
        {"or", Format::R},
        {"xor", Format::R},
        {"sll", Format::R},
        {"srl", Format::R},
        {"sra", Format::R},
        {"slt", Format::R},
        {"sltu", Format::R},
        {"addi", Format::I},
        {"andi", Format::I},
        {"ori", Format::I},
        {"xori", Format::I},
        {"slti", Format::I},
        {"sltiu", Format::I},
        {"slli", Format::I},
        {"srli", Format::I},
        {"srai", Format::I},
        {"lui", Format::I},
        {"lw", Format::I},
        {"sw", Format::B},
        {"beq", Format::B},
        {"bne", Format::B},
        {"blt", Format::B},
        {"bge", Format::B},
        {"bltu", Format::B},
        {"bgeu", Format::B},
        {"jal", Format::J},
        {"jalr", Format::I},
        {"out", Format::I},
        {"nop", Format::N},
        {"halt", Format::N},
        {"fork", Format::J},
    };
    static_assert(sizeof(table) / sizeof(table[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
                  "opcode table out of sync");
    auto idx = static_cast<size_t>(op);
    MSSP_ASSERT(idx < static_cast<size_t>(Opcode::NumOpcodes));
    return table[idx];
}

} // anonymous namespace

Format
formatOf(Opcode op)
{
    return opInfo(op).format;
}

const char *
opcodeName(Opcode op)
{
    return opInfo(op).name;
}

Opcode
opcodeFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (unsigned i = 1;
             i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
            auto op = static_cast<Opcode>(i);
            m.emplace(opcodeName(op), op);
        }
        return m;
    }();
    auto it = map.find(name);
    return it == map.end() ? Opcode::Illegal : it->second;
}

bool
isControl(Opcode op)
{
    return isCondBranch(op) || op == Opcode::Jal || op == Opcode::Jalr;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Lw;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Sw;
}

bool
writesReg(const Instruction &inst)
{
    switch (formatOf(inst.op)) {
      case Format::R:
        return true;
      case Format::I:
        return inst.op != Opcode::Out;
      case Format::J:
        return inst.op == Opcode::Jal;
      case Format::B:
      case Format::N:
        return false;
    }
    return false;
}

unsigned
sourceRegs(const Instruction &inst, uint8_t srcs[2])
{
    switch (inst.op) {
      case Opcode::Lui:
      case Opcode::Jal:
      case Opcode::Fork:
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Illegal:
        return 0;
      case Opcode::Out:
        srcs[0] = inst.rs1;
        return 1;
      default:
        break;
    }
    switch (formatOf(inst.op)) {
      case Format::R:
      case Format::B:
        srcs[0] = inst.rs1;
        srcs[1] = inst.rs2;
        return 2;
      case Format::I:
        srcs[0] = inst.rs1;
        return 1;
      default:
        return 0;
    }
}

// Encoding layout:
//   [31:26] opcode
//   R: [25:21] rd,  [20:16] rs1, [15:11] rs2
//   I: [25:21] rd,  [20:16] rs1, [15:0] imm16
//   B: [25:21] rs1, [20:16] rs2, [15:0] imm16
//   J: [25:21] rd,  [20:0] imm21
//   N: all zero

uint32_t
encode(const Instruction &inst)
{
    uint32_t w = 0;
    w = insertBits(w, 31, 26, static_cast<uint32_t>(inst.op));
    switch (formatOf(inst.op)) {
      case Format::R:
        w = insertBits(w, 25, 21, inst.rd);
        w = insertBits(w, 20, 16, inst.rs1);
        w = insertBits(w, 15, 11, inst.rs2);
        break;
      case Format::I:
        if (!fitsSigned(inst.imm, 16) &&
            !fitsUnsigned(static_cast<uint32_t>(inst.imm), 16)) {
            fatal("immediate %d out of 16-bit range for %s", inst.imm,
                  opcodeName(inst.op));
        }
        w = insertBits(w, 25, 21, inst.rd);
        w = insertBits(w, 20, 16, inst.rs1);
        w = insertBits(w, 15, 0, static_cast<uint32_t>(inst.imm));
        break;
      case Format::B:
        if (!fitsSigned(inst.imm, 16)) {
            fatal("branch offset %d out of 16-bit range for %s",
                  inst.imm, opcodeName(inst.op));
        }
        w = insertBits(w, 25, 21, inst.rs1);
        w = insertBits(w, 20, 16, inst.rs2);
        w = insertBits(w, 15, 0, static_cast<uint32_t>(inst.imm));
        break;
      case Format::J:
        if (!fitsSigned(inst.imm, 21)) {
            fatal("jump offset %d out of 21-bit range for %s",
                  inst.imm, opcodeName(inst.op));
        }
        w = insertBits(w, 25, 21, inst.rd);
        w = insertBits(w, 20, 0, static_cast<uint32_t>(inst.imm));
        break;
      case Format::N:
        break;
    }
    return w;
}

Instruction
decode(uint32_t word)
{
    auto op_num = bits(word, 31, 26);
    if (op_num == 0 ||
        op_num >= static_cast<uint32_t>(Opcode::NumOpcodes)) {
        return Instruction{};
    }
    Instruction inst;
    inst.op = static_cast<Opcode>(op_num);
    switch (formatOf(inst.op)) {
      case Format::R:
        inst.rd = static_cast<uint8_t>(bits(word, 25, 21));
        inst.rs1 = static_cast<uint8_t>(bits(word, 20, 16));
        inst.rs2 = static_cast<uint8_t>(bits(word, 15, 11));
        break;
      case Format::I:
        inst.rd = static_cast<uint8_t>(bits(word, 25, 21));
        inst.rs1 = static_cast<uint8_t>(bits(word, 20, 16));
        inst.imm = sext(bits(word, 15, 0), 16);
        break;
      case Format::B:
        inst.rs1 = static_cast<uint8_t>(bits(word, 25, 21));
        inst.rs2 = static_cast<uint8_t>(bits(word, 20, 16));
        inst.imm = sext(bits(word, 15, 0), 16);
        break;
      case Format::J:
        inst.rd = static_cast<uint8_t>(bits(word, 25, 21));
        inst.imm = sext(bits(word, 20, 0), 21);
        break;
      case Format::N:
        break;
    }
    return inst;
}

const char *
regName(unsigned r)
{
    static const char *names[NumRegs] = {
        "zero", "ra", "sp",
        "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
        "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
        "s10",
    };
    MSSP_ASSERT(r < NumRegs);
    return names[r];
}

int
regFromName(const std::string &name)
{
    static const std::unordered_map<std::string, int> map = [] {
        std::unordered_map<std::string, int> m;
        for (unsigned i = 0; i < NumRegs; ++i) {
            m.emplace(regName(i), static_cast<int>(i));
            std::string rn = "r";
            rn += std::to_string(i);
            m.emplace(std::move(rn), static_cast<int>(i));
        }
        return m;
    }();
    auto it = map.find(name);
    return it == map.end() ? -1 : it->second;
}

} // namespace mssp

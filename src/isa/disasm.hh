/**
 * @file
 * μRISC disassembler.
 */

#ifndef MSSP_ISA_DISASM_HH
#define MSSP_ISA_DISASM_HH

#include <cstdint>
#include <string>

#include "isa/isa.hh"

namespace mssp
{

/**
 * Disassemble a decoded instruction.
 *
 * @param inst the instruction
 * @param pc   the instruction's own address; branch/jal targets are
 *             rendered as absolute addresses when provided (pass
 *             UINT32_MAX to render raw offsets)
 */
std::string disassemble(const Instruction &inst,
                        uint32_t pc = UINT32_MAX);

/** Disassemble an encoded word. */
std::string disassembleWord(uint32_t word, uint32_t pc = UINT32_MAX);

} // namespace mssp

#endif // MSSP_ISA_DISASM_HH

#include "fault/hostchaos.hh"

#include <chrono>
#include <thread>

#include "sim/rng.hh"

namespace mssp
{

namespace
{

/** The attempt's private draw stream. The multiplier keeps job and
 *  attempt from aliasing (job 1 attempt 258 != job 2 attempt 1). */
Rng
attemptRng(uint64_t seed, size_t job, unsigned attempt)
{
    return Rng(Rng::mix(seed, job * 1048573ull + attempt));
}

} // anonymous namespace

std::string
HostChaosPlan::toString() const
{
    if (!enabled())
        return "off";
    return strfmt("seed=%llu stall=%g throw=%g cancel=%g",
                  static_cast<unsigned long long>(seed), stallRate,
                  throwRate, cancelRate);
}

std::string
HostChaosPlan::toJson() const
{
    if (!enabled())
        return "\"off\"";
    return strfmt("{\"seed\": %llu, \"stallRate\": %g, "
                  "\"throwRate\": %g, \"cancelRate\": %g, "
                  "\"stallUs\": %llu}",
                  static_cast<unsigned long long>(seed), stallRate,
                  throwRate, cancelRate,
                  static_cast<unsigned long long>(stallUs));
}

void
HostChaos::onAttemptStart(size_t job, unsigned attempt,
                          CancelToken &cancel)
{
    if (!plan_.enabled())
        return;
    // Fixed draw order (stall, cancel, throw) — part of the
    // determinism contract; onAttemptBody replays the first two draws
    // to stay aligned with the same stream.
    Rng rng = attemptRng(plan_.seed, job, attempt);
    if (rng.chance(plan_.stallRate)) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        // Latency only: results must be identical with stalls off.
        std::this_thread::sleep_for(
            std::chrono::microseconds(plan_.stallUs));
    }
    if (rng.chance(plan_.cancelRate)) {
        cancels_.fetch_add(1, std::memory_order_relaxed);
        cancel.cancel();
    }
}

void
HostChaos::onAttemptBody(size_t job, unsigned attempt)
{
    if (!plan_.enabled())
        return;
    Rng rng = attemptRng(plan_.seed, job, attempt);
    rng.next();   // skip the stall draw
    rng.next();   // skip the cancel draw
    if (rng.chance(plan_.throwRate)) {
        throws_.fetch_add(1, std::memory_order_relaxed);
        throw StatusError(Status(
            StatusCode::JobFailed,
            strfmt("host-chaos: injected exception (job %zu "
                   "attempt %u)",
                   job, attempt)));
    }
}

} // namespace mssp

/**
 * @file
 * Fault-injection campaigns: sweep fault types x rates across the
 * workload suite and check the paper's safety invariants on each run.
 *
 * A campaign run executes one (workload, fault type, rate) triple on
 * the full MSSP machine with a seeded FaultInjector attached, then
 * checks three invariants against the sequential oracle:
 *
 *  (a) output equivalence — the OUT stream matches SEQ exactly;
 *  (b) forward progress — the program halts within a cycle budget
 *      derived from the oracle's dynamic instruction count (no
 *      livelock, however hard the recovery machinery is hammered);
 *  (c) architected cleanliness — the final register file matches the
 *      oracle, and every committed task's live-ins matched
 *      architected state at commit time (squashed work leaked
 *      nothing).
 *
 * Everything is deterministic: per-run seeds derive from the campaign
 * seed via Rng::mix, and the JSON report contains no timestamps, so
 * identical options reproduce identical bytes (CI diffs them).
 * tools/mssp-faultcamp is the CLI; docs/FAULTS.md the guide.
 */

#ifndef MSSP_FAULT_CAMPAIGN_HH
#define MSSP_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "fault/fault.hh"
#include "fault/hostchaos.hh"
#include "mssp/machine.hh"
#include "sim/supervisor.hh"
#include "sim/thread_annotations.hh"
#include "workloads/workloads.hh"

namespace mssp
{

/** What to sweep (defaults give the CI smoke campaign a sane shape). */
struct CampaignOptions
{
    /** Workload names; empty = all registry analogues. */
    std::vector<std::string> workloads;
    /** Fault types; empty = all ten real types. */
    std::vector<FaultType> types;
    /**
     * Rate multipliers on each type's base rate (see
     * faultBaseRate()). The per-opportunity grains differ by ~100x
     * between per-fork and per-cycle faults, so campaigns sweep a
     * dimensionless intensity, not an absolute rate. Effective rates
     * clamp at 1.0.
     */
    std::vector<double> intensities{1.0, 10.0};
    double scale = 0.05;     ///< workload scale (see specAnalogues)
    uint64_t seed = 1;       ///< campaign seed (per-run seeds derive)
    /** Forward-progress budget: max(minCycles, cyclesPerInst x oracle
     *  insts) unless maxCycles overrides it outright. */
    uint64_t maxCycles = 0;
    uint64_t cyclesPerInst = 40;
    uint64_t minCycles = 200000;
    /**
     * Host threads for the sweep (sim/parallel.hh). 1 (the library
     * default — CLIs default to defaultJobs()) is the exact serial
     * path; any value produces byte-identical reports because every
     * run's seed derives from its canonical index, not scheduling.
     */
    unsigned jobs = 1;
    /** Per-cell supervision (sim/supervisor.hh): N-strikes retry
     *  with deterministic backoff; a cell that exhausts its attempts
     *  is quarantined, not fatal. */
    RetryPolicy retry{/*maxAttempts=*/3};
    /** Per-attempt budget for each cell (0s = unbounded). The
     *  instruction caps quarantine deterministically; a wall-clock
     *  cap is host-timing dependent (see JobBudget). */
    JobBudget cellBudget;
    /** Host-chaos injection over the cell sweep (seed 0 = off). */
    HostChaosPlan chaos;
};

/** Default per-opportunity Bernoulli rate for @p t at intensity 1. */
double faultBaseRate(FaultType t);

/** One (workload, type, rate) execution and its invariant verdicts. */
struct CampaignRun
{
    std::string workload;
    FaultType type = FaultType::None;
    double rate = 0.0;
    uint64_t seed = 0;

    uint64_t injections = 0;     ///< of this run's type
    uint64_t cycles = 0;
    uint64_t budgetCycles = 0;
    StopReason stopReason = StopReason::TimedOut;

    bool outputOk = false;         ///< invariant (a)
    bool forwardProgress = false;  ///< invariant (b)
    bool archClean = false;        ///< invariant (c): final registers
    bool commitInvariantOk = true; ///< invariant (c): per-commit check

    RecoveryReport recovery;

    bool
    ok() const
    {
        return outputOk && forwardProgress && archClean &&
               commitInvariantOk;
    }
};

/** The whole sweep. */
struct CampaignReport
{
    CampaignOptions options;         ///< as resolved (lists filled in)
    /** Healthy cells only, canonical order (quarantined cells are in
     *  the quarantine report instead). */
    std::vector<CampaignRun> runs;
    /** Cells whose job failed every attempt (canonical order). */
    QuarantineReport quarantine;

    size_t failures() const;
    size_t quarantined() const { return quarantine.size(); }

    /** Total injections per fault type across all runs. */
    std::array<uint64_t, NumFaultTypes> injectionsByType() const;

    /** True when every swept type injected at least once somewhere
     *  (the "counters prove it" acceptance criterion). */
    bool allTypesFired() const;

    /** Deterministic JSON document (schema mssp-faultcamp-v2; v1
     *  plus the quarantine block and supervision/chaos options). */
    std::string toJson() const;

    /** Human-readable result table. */
    std::string summary() const;
};

/** The machine configuration campaigns run under: default timing with
 *  a tight watchdog and early escalation, so recovery (not timeout)
 *  dominates even at small workload scales. */
MsspConfig campaignConfig();

/** The sequential truth for one workload (computed once per workload,
 *  reused by every fault type x rate cell). */
struct SeqOracle
{
    PreparedWorkload prepared;
    OutputStream outputs;
    std::array<uint32_t, NumRegs> regs{};
    uint64_t insts = 0;
};

/** Compute the oracle from an already-prepared pipeline. */
SeqOracle makeSeqOracle(PreparedWorkload prepared);

/** Prepare @p wl and compute its oracle. */
SeqOracle makeSeqOracle(const Workload &wl);

/**
 * Thread-safe per-workload oracle cache. The first shard to ask for a
 * workload computes its oracle under a per-workload once-init; every
 * later shard (on any thread) reuses it. mssp-suite pre-seeds the
 * cache via put() so its campaign stage reuses the pipeline its
 * earlier stages already prepared.
 */
class SeqOracleCache
{
  public:
    explicit SeqOracleCache(double scale) : scale_(scale) {}

    /** The oracle for registry workload @p name (compute-once). */
    const SeqOracle &get(const std::string &name);

    /** Pre-seed @p name from an existing pipeline. Must happen before
     *  any get(name); later puts for the same name are ignored. */
    void put(const std::string &name, PreparedWorkload prepared);

  private:
    struct Entry
    {
        /** Guards oracle: readers go through call_once, which gives
         *  the release/acquire pairing the analysis cannot see. */
        std::once_flag once;
        SeqOracle oracle;
    };

    Entry &entry(const std::string &name);

    double scale_;
    Mutex m_;
    /** The map itself is guarded by m_; each Entry, once handed out,
     *  is immutable except through its own once_flag. */
    std::map<std::string, std::unique_ptr<Entry>> entries_
        MSSP_GUARDED_BY(m_);
};

/** Execute one (workload, fault type, rate) campaign cell. Pure
 *  function of its arguments — safe to run on any shard. */
CampaignRun runCampaignCell(const std::string &workload,
                            const SeqOracle &oracle, FaultType type,
                            double rate, uint64_t seed,
                            uint64_t budget);

/** Forward-progress budget for one workload under @p opts. */
uint64_t campaignBudget(const CampaignOptions &opts,
                        uint64_t oracle_insts);

/**
 * Run the sweep, sharded across opts.jobs host threads. @p log
 * (optional) receives one line per run (completion order); the
 * returned report is byte-deterministic for fixed options. @p cache
 * (optional) supplies pre-seeded oracles — mssp-suite passes the
 * cache its evaluation stages already filled so the campaign does
 * not re-prepare any workload.
 */
CampaignReport runFaultCampaign(const CampaignOptions &opts,
                                std::ostream *log = nullptr,
                                SeqOracleCache *cache = nullptr);

} // namespace mssp

#endif // MSSP_FAULT_CAMPAIGN_HH

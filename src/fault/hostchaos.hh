/**
 * @file
 * Host-level chaos: deterministic fault injection on the *host*
 * surface of the runtime (the PR 4 fault layer covers the simulated
 * machine; this covers the machinery that runs it).
 *
 * Three perturbations, injected through the sim/supervisor.hh
 * JobChaosHook seam around every pool-executed job attempt:
 *
 *  - worker stalls: the worker thread sleeps before the job body, as
 *    if preempted or paging — latency only, results untouched;
 *  - job exceptions: the attempt throws a deterministic StatusError
 *    before any work happens, as a crashing dependency would;
 *  - spurious cancellations: the attempt's CancelToken is cancelled
 *    up front, so the first machine supervision poll inside the job
 *    stops it cooperatively.
 *
 * Every draw is a pure function of (plan seed, job index, attempt
 * number) via Rng::mix — never of time, thread identity, or
 * scheduling — so a chaos-swept sharded sweep quarantines the exact
 * same jobs with the exact same report bytes as a serial one, which
 * is what the chaos CI job diffs (docs/FAULTS.md). An injected
 * failure fires per *attempt*: retries redraw, so most chaos victims
 * recover within the N-strikes budget and only persistent draws
 * quarantine.
 */

#ifndef MSSP_FAULT_HOSTCHAOS_HH
#define MSSP_FAULT_HOSTCHAOS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/supervisor.hh"

namespace mssp
{

/** What to inject, at what rate. seed == 0 disables everything. */
struct HostChaosPlan
{
    uint64_t seed = 0;        ///< 0 = chaos off
    double stallRate = 0.0;   ///< P(worker stall) per attempt
    double throwRate = 0.0;   ///< P(injected exception) per attempt
    double cancelRate = 0.0;  ///< P(spurious cancel) per attempt
    uint64_t stallUs = 2000;  ///< stall length (latency only)

    bool
    enabled() const
    {
        return seed != 0 &&
               (stallRate > 0 || throwRate > 0 || cancelRate > 0);
    }

    /** The CI chaos preset: frequent enough that every sweep sees
     *  stalls, exceptions and cancels; rare enough that three
     *  attempts recover most victims. */
    static HostChaosPlan
    preset(uint64_t seed)
    {
        HostChaosPlan plan;
        plan.seed = seed;
        plan.stallRate = 0.10;
        plan.throwRate = 0.15;
        plan.cancelRate = 0.10;
        return plan;
    }

    std::string toString() const;

    /** Deterministic JSON value: "off" or an object echoing the plan
     *  (embedded by campaign/suite reports for reproducibility). */
    std::string toJson() const;
};

/** The injector (thread-safe; counters are atomic). */
class HostChaos : public JobChaosHook
{
  public:
    explicit HostChaos(const HostChaosPlan &plan) : plan_(plan) {}

    void onAttemptStart(size_t job, unsigned attempt,
                        CancelToken &cancel) override;
    void onAttemptBody(size_t job, unsigned attempt) override;

    const HostChaosPlan &plan() const { return plan_; }

    /** Injection counters (proof the chaos actually fired). */
    uint64_t
    stalls() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }
    uint64_t
    throws() const
    {
        return throws_.load(std::memory_order_relaxed);
    }
    uint64_t
    cancels() const
    {
        return cancels_.load(std::memory_order_relaxed);
    }

  private:
    HostChaosPlan plan_;
    std::atomic<uint64_t> stalls_{0};
    std::atomic<uint64_t> throws_{0};
    std::atomic<uint64_t> cancels_{0};
};

} // namespace mssp

#endif // MSSP_FAULT_HOSTCHAOS_HH

#include "fault/campaign.hh"

#include <algorithm>
#include <functional>

#include "exec/seq_machine.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

namespace mssp
{

double
faultBaseRate(FaultType t)
{
    // Per-opportunity grains differ wildly: a fork happens once per
    // ~100 instructions, a machine cycle every cycle. These bases are
    // tuned so intensity 1 perturbs a few percent of opportunities
    // and intensity 10 is a sustained assault that still recovers.
    switch (t) {
      case FaultType::CheckpointCorrupt: return 0.05;     // per fork
      case FaultType::LiveInFlip:        return 0.05;     // per fork
      case FaultType::MasterRegFlip:     return 0.001;    // per cycle
      case FaultType::MasterPcCorrupt:   return 0.0002;   // per cycle
      case FaultType::SpawnDelay:        return 0.1;      // per fork
      case FaultType::SpawnDrop:         return 0.02;     // per fork
      case FaultType::SlaveStall:        return 0.001;    // per busy cyc
      case FaultType::SlaveKill:         return 0.0005;   // per busy cyc
      case FaultType::SpuriousSquash:    return 0.01;     // per commit
      case FaultType::ImagePatch:        return 0.0001;   // per cycle
      case FaultType::None:              break;
    }
    return 0.0;
}

MsspConfig
campaignConfig()
{
    MsspConfig cfg;
    // Campaigns run small workloads under sustained assault; the
    // default 20k-cycle watchdog would spend the whole budget
    // waiting. Tighten it and escalate early so recovery dominates.
    cfg.watchdogCycles = 2500;
    cfg.watchdogEscalateAfter = 2;
    cfg.masterRunawayInsts = 20000;
    return cfg;
}

SeqOracle
makeSeqOracle(PreparedWorkload prepared)
{
    SeqOracle o;
    o.prepared = std::move(prepared);
    SeqMachine seq(o.prepared.orig);
    SeqRunResult r = seq.run(500000000ull);
    MSSP_ASSERT(r.halted);   // registry workloads all terminate
    o.outputs = seq.outputs();
    o.regs = seq.state().regs();
    o.insts = r.instCount;
    return o;
}

SeqOracle
makeSeqOracle(const Workload &wl)
{
    return makeSeqOracle(prepare(wl.refSource, wl.trainSource));
}

SeqOracleCache::Entry &
SeqOracleCache::entry(const std::string &name)
{
    MutexLock lock(m_);
    std::unique_ptr<Entry> &e = entries_[name];
    if (!e)
        e = std::make_unique<Entry>();
    return *e;
}

const SeqOracle &
SeqOracleCache::get(const std::string &name)
{
    Entry &e = entry(name);
    std::call_once(e.once, [this, &e, &name] {
        e.oracle = makeSeqOracle(workloadByName(name, scale_));
    });
    return e.oracle;
}

void
SeqOracleCache::put(const std::string &name, PreparedWorkload prepared)
{
    Entry &e = entry(name);
    std::call_once(e.once, [&e, &prepared] {
        e.oracle = makeSeqOracle(std::move(prepared));
    });
}

uint64_t
campaignBudget(const CampaignOptions &opts, uint64_t oracle_insts)
{
    return opts.maxCycles
               ? opts.maxCycles
               : std::max<uint64_t>(opts.minCycles,
                                    opts.cyclesPerInst * oracle_insts);
}

CampaignRun
runCampaignCell(const std::string &name, const SeqOracle &oracle,
                FaultType type, double rate, uint64_t seed,
                uint64_t budget)
{
    CampaignRun run;
    run.workload = name;
    run.type = type;
    run.rate = rate;
    run.seed = seed;
    run.budgetCycles = budget;

    FaultPlan plan;
    plan.type = type;
    plan.rate = rate;
    plan.seed = seed;
    FaultInjector injector(seed, {plan});

    MsspMachine machine(oracle.prepared.orig, oracle.prepared.dist,
                        campaignConfig());
    machine.setFaultInjector(&injector);
    // Invariant (c), sharp form: the machine must only ever commit a
    // task whose live-ins match architected state (this is its own
    // verification re-checked from outside — a bug in the commit
    // path shows up here before it corrupts the final state).
    machine.setCommitHook([&run](const Task &t, const ArchState &arch) {
        if (arch.countMismatches(t.liveIn) != 0)
            run.commitInvariantOk = false;
    });

    MsspResult res = machine.run(budget);
    run.cycles = res.cycles;
    run.stopReason = res.stopReason;
    run.injections = injector.counters().count(type);
    run.recovery = machine.recoveryReport();

    run.forwardProgress = res.halted;
    run.outputOk = res.halted && res.outputs == oracle.outputs;
    run.archClean = res.halted && machine.arch().regs() == oracle.regs;
    return run;
}

namespace
{

std::string
fmtRate(double r)
{
    return strfmt("%g", r);
}

} // anonymous namespace

size_t
CampaignReport::failures() const
{
    size_t n = 0;
    for (const CampaignRun &r : runs)
        n += r.ok() ? 0 : 1;
    return n;
}

std::array<uint64_t, NumFaultTypes>
CampaignReport::injectionsByType() const
{
    std::array<uint64_t, NumFaultTypes> by{};
    for (const CampaignRun &r : runs)
        by[static_cast<size_t>(r.type)] += r.injections;
    return by;
}

bool
CampaignReport::allTypesFired() const
{
    auto by = injectionsByType();
    for (FaultType t : options.types) {
        if (by[static_cast<size_t>(t)] == 0)
            return false;
    }
    return !options.types.empty();
}

std::string
CampaignReport::toJson() const
{
    std::string out = "{\"schema\": \"mssp-faultcamp-v2\",\n";
    out += strfmt(" \"seed\": %llu, \"scale\": %s,\n",
                  static_cast<unsigned long long>(options.seed),
                  fmtRate(options.scale).c_str());
    out += strfmt(" \"retries\": %u, \"cellBudget\": "
                  "{\"timeoutMs\": %llu, \"maxInsts\": %llu, "
                  "\"maxCommits\": %llu},\n \"chaos\": %s,\n",
                  options.retry.maxAttempts,
                  static_cast<unsigned long long>(
                      options.cellBudget.timeoutMs),
                  static_cast<unsigned long long>(
                      options.cellBudget.maxInsts),
                  static_cast<unsigned long long>(
                      options.cellBudget.maxCommits),
                  options.chaos.toJson().c_str());
    out += " \"workloads\": [";
    for (size_t i = 0; i < options.workloads.size(); ++i) {
        out += strfmt("%s\"%s\"", i ? ", " : "",
                      options.workloads[i].c_str());
    }
    out += "],\n \"types\": [";
    for (size_t i = 0; i < options.types.size(); ++i) {
        out += strfmt("%s\"%s\"", i ? ", " : "",
                      toString(options.types[i]));
    }
    out += "],\n \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const CampaignRun &r = runs[i];
        const RecoveryReport &rec = r.recovery;
        out += strfmt(
            "  {\"workload\": \"%s\", \"type\": \"%s\", "
            "\"rate\": %s, \"seed\": %llu, "
            "\"injections\": %llu, \"cycles\": %llu, "
            "\"budgetCycles\": %llu, \"stopReason\": \"%s\", "
            "\"outputOk\": %s, \"forwardProgress\": %s, "
            "\"archClean\": %s, \"commitInvariantOk\": %s, "
            "\"ok\": %s, \"recovery\": {"
            "\"squashEvents\": %llu, \"watchdogSquashes\": %llu, "
            "\"watchdogEscalations\": %llu, "
            "\"masterRunawayKills\": %llu, "
            "\"masterDeadRestarts\": %llu, "
            "\"spuriousSquashes\": %llu, "
            "\"seqBackoffEvents\": %llu, \"seqBackoffDecays\": %llu, "
            "\"currentSeqBackoff\": %llu, \"seqModeInsts\": %llu}}%s\n",
            r.workload.c_str(), toString(r.type),
            fmtRate(r.rate).c_str(),
            static_cast<unsigned long long>(r.seed),
            static_cast<unsigned long long>(r.injections),
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.budgetCycles),
            toString(r.stopReason),
            r.outputOk ? "true" : "false",
            r.forwardProgress ? "true" : "false",
            r.archClean ? "true" : "false",
            r.commitInvariantOk ? "true" : "false",
            r.ok() ? "true" : "false",
            static_cast<unsigned long long>(rec.squashEvents),
            static_cast<unsigned long long>(rec.watchdogSquashes),
            static_cast<unsigned long long>(rec.watchdogEscalations),
            static_cast<unsigned long long>(rec.masterRunawayKills),
            static_cast<unsigned long long>(rec.masterDeadRestarts),
            static_cast<unsigned long long>(rec.spuriousSquashes),
            static_cast<unsigned long long>(rec.seqBackoffEvents),
            static_cast<unsigned long long>(rec.seqBackoffDecays),
            static_cast<unsigned long long>(rec.currentSeqBackoff),
            static_cast<unsigned long long>(rec.seqModeInsts),
            i + 1 < runs.size() ? "," : "");
    }
    auto by = injectionsByType();
    out += " ],\n \"injectionsByType\": {";
    bool first = true;
    for (FaultType t : allFaultTypes()) {
        out += strfmt("%s\"%s\": %llu", first ? "" : ", ",
                      toString(t),
                      static_cast<unsigned long long>(
                          by[static_cast<size_t>(t)]));
        first = false;
    }
    out += strfmt("},\n \"quarantine\": %s,\n",
                  quarantine.toJson().c_str());
    out += strfmt(" \"runsTotal\": %zu, \"failures\": %zu, "
                  "\"quarantined\": %zu, \"allTypesFired\": %s}\n",
                  runs.size(), failures(), quarantined(),
                  allTypesFired() ? "true" : "false");
    return out;
}

std::string
CampaignReport::summary() const
{
    std::string s = strfmt(
        "fault campaign: %zu runs, %zu failures, %zu quarantined%s\n"
        "%-10s %-19s %9s %6s %9s %8s %8s  %s\n",
        runs.size(), failures(), quarantined(),
        allTypesFired() ? "" : "  [WARNING: some types never fired]",
        "workload", "fault", "rate", "inj", "cycles", "squash",
        "seqInst", "verdict");
    for (const CampaignRun &r : runs) {
        s += strfmt(
            "%-10s %-19s %9s %6llu %9llu %8llu %8llu  %s\n",
            r.workload.c_str(), toString(r.type),
            fmtRate(r.rate).c_str(),
            static_cast<unsigned long long>(r.injections),
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.recovery.squashEvents),
            static_cast<unsigned long long>(r.recovery.seqModeInsts),
            r.ok() ? "ok"
                   : strfmt("FAIL(%s%s%s%s)",
                            r.outputOk ? "" : " output",
                            r.forwardProgress ? "" : " progress",
                            r.archClean ? "" : " arch",
                            r.commitInvariantOk ? "" : " commit")
                         .c_str());
    }
    s += quarantine.summary();
    return s;
}

CampaignReport
runFaultCampaign(const CampaignOptions &opts, std::ostream *log,
                 SeqOracleCache *cache)
{
    CampaignReport report;
    report.options = opts;
    if (report.options.workloads.empty()) {
        for (const Workload &wl : specAnalogues(opts.scale))
            report.options.workloads.push_back(wl.name);
    }
    if (report.options.types.empty())
        report.options.types = allFaultTypes();
    if (report.options.intensities.empty())
        report.options.intensities = {1.0};

    // Enumerate every (workload, type, intensity) cell in canonical
    // order and preassign its seed from that order, so scheduling can
    // never leak into a run (DESIGN.md §10 determinism contract).
    struct Cell
    {
        std::string workload;
        FaultType type;
        double rate;
        uint64_t seed;
        uint64_t index;
    };
    std::vector<Cell> cells;
    uint64_t run_index = 0;
    for (const std::string &name : report.options.workloads) {
        for (FaultType type : report.options.types) {
            for (double intensity : report.options.intensities) {
                double rate = std::min(
                    1.0, faultBaseRate(type) * intensity);
                cells.push_back({name, type, rate,
                                 Rng::mix(opts.seed, run_index),
                                 ++run_index});
            }
        }
    }

    // Warm the oracle cache with one sharded job per workload first:
    // oracle construction (prepare + SEQ run) dominates small-scale
    // campaigns, and cells pulled lazily would make every shard block
    // on the same workload's once-init in lockstep.
    SeqOracleCache own_cache(opts.scale);
    SeqOracleCache &oracles = cache ? *cache : own_cache;
    unsigned jobs = opts.jobs ? opts.jobs : 1;
    {
        std::vector<std::function<bool()>> warm;
        warm.reserve(report.options.workloads.size());
        for (const std::string &name : report.options.workloads) {
            warm.push_back([&oracles, &name] {
                oracles.get(name);
                return true;
            });
        }
        runSharded<bool>(jobs, std::move(warm));
    }
    Mutex log_m;
    std::vector<std::function<CampaignRun(const JobContext &)>> work;
    std::vector<std::string> labels;
    work.reserve(cells.size());
    labels.reserve(cells.size());
    for (const Cell &cell : cells) {
        labels.push_back(strfmt("%s/%s/%s", cell.workload.c_str(),
                                toString(cell.type),
                                fmtRate(cell.rate).c_str()));
        work.push_back([&opts, &oracles, &log_m, log,
                        cell](const JobContext &) {
            const SeqOracle &oracle = oracles.get(cell.workload);
            CampaignRun run = runCampaignCell(
                cell.workload, oracle, cell.type, cell.rate,
                cell.seed, campaignBudget(opts, oracle.insts));
            if (log) {
                // Progress lines stream as cells finish (completion
                // order under --jobs > 1); the JSON report is the
                // deterministic artifact.
                MutexLock lock(log_m);
                *log << strfmt(
                    "  [%3llu] %-10s %-19s rate=%-9s inj=%-5llu "
                    "%s\n",
                    static_cast<unsigned long long>(cell.index),
                    cell.workload.c_str(), toString(cell.type),
                    fmtRate(cell.rate).c_str(),
                    static_cast<unsigned long long>(run.injections),
                    run.ok() ? "ok" : "FAIL");
                log->flush();
            }
            return run;
        });
    }
    // The cell sweep runs supervised: per-cell budgets and retries,
    // with failures quarantined instead of aborting the sweep. The
    // warm phase above stays *unsupervised* on purpose — oracles are
    // trusted shared state, and a chaos-perturbed oracle fill would
    // poison every cell that reuses it.
    SupervisorOptions sopts;
    sopts.retry = opts.retry;
    sopts.budget = opts.cellBudget;
    sopts.seed = opts.seed;
    HostChaos chaos(opts.chaos);
    if (opts.chaos.enabled())
        sopts.chaos = &chaos;
    SupervisedResult<CampaignRun> swept = runSupervised<CampaignRun>(
        jobs, std::move(work), sopts, std::move(labels));
    report.runs.reserve(swept.outcomes.size());
    for (JobOutcome<CampaignRun> &out : swept.outcomes) {
        if (out.ok())
            report.runs.push_back(std::move(*out.value));
    }
    report.quarantine = std::move(swept.quarantine);
    if (log && !report.quarantine.empty()) {
        *log << report.quarantine.summary();
        log->flush();
    }
    return report;
}

} // namespace mssp

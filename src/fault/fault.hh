/**
 * @file
 * Deterministic, seeded fault injection for the MSSP machine.
 *
 * The paper's central robustness claim is that the distilled program
 * is *only a performance hint*: arbitrary corruption of the master,
 * its checkpoints, or the task-delivery fabric must be caught by the
 * verify/commit unit, with the sequential fallback guaranteeing
 * forward progress. This layer makes that claim executable. A
 * FaultInjector holds a set of FaultPlans (type x rate x seed x
 * target); the MsspMachine consults it at well-defined hook points
 * (fork, spawn delivery, master tick, slave tick, commit) and applies
 * exactly the corruption the injector grants. All randomness flows
 * through sim/rng.hh, so a (plan, workload, config) triple replays
 * bit-identically.
 *
 * Every hook in the machine is guarded by a single null-pointer check
 * (no injector attached => no work, no virtual dispatch), so the
 * injection layer is zero-cost on the fault-free hot path — see
 * BM_MsspMachine A/B in EXPERIMENTS.md.
 *
 * The fault menu deliberately stays inside the paper's protected
 * surface: predictions (checkpoints, master state, distilled image)
 * and plumbing (delivery, slave liveness, commit pacing). Slave
 * *results* are never corrupted — the machine trusts task execution,
 * exactly as the paper's hardware does; the verify/commit unit
 * protects against wrong predictions, not broken ALUs.
 */

#ifndef MSSP_FAULT_FAULT_HH
#define MSSP_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "arch/state_delta.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace mssp
{

/** One injectable fault class (DESIGN.md §6 maps each to the paper
 *  claim it stresses). */
enum class FaultType : uint8_t
{
    None = 0,
    CheckpointCorrupt,   ///< insert/drop a cell in the fork checkpoint
    LiveInFlip,          ///< flip one bit of a predicted live-in value
    MasterRegFlip,       ///< flip one bit of a master register mid-run
    MasterPcCorrupt,     ///< redirect the master PC to a random word
    SpawnDelay,          ///< delay a task delivery by extra cycles
    SpawnDrop,           ///< drop a task delivery entirely
    SlaveStall,          ///< freeze a busy slave for stallCycles
    SlaveKill,           ///< kill a slave's task mid-flight
    SpuriousSquash,      ///< squash a head task that would verify
    ImagePatch,          ///< overwrite a distilled-image word at runtime
};

constexpr size_t NumFaultTypes = 11;   // including None

/** Kebab-case name ("checkpoint-corrupt", ...). */
const char *toString(FaultType t);

/** Parse a kebab-case name; FaultType::None when unknown. */
FaultType faultTypeFromString(const std::string &name);

/** The ten real fault types, in enum order. */
const std::vector<FaultType> &allFaultTypes();

/** One armed fault: what to inject, how often, from which seed. */
struct FaultPlan
{
    FaultType type = FaultType::None;
    /** Bernoulli probability per opportunity. The opportunity grain
     *  is per fork (checkpoint/live-in/spawn faults), per commit
     *  attempt (spurious squash), per machine cycle (master faults,
     *  image patch) or per busy-slave cycle (stall/kill). */
    double rate = 0.0;
    uint64_t seed = 1;
    /** Restrict to one target (slave id for slave faults, register
     *  for reg flips); -1 = any, chosen at random per injection. */
    int target = -1;
    Cycle delayCycles = 512;    ///< SpawnDelay: extra transit time
    Cycle stallCycles = 256;    ///< SlaveStall: freeze length
    uint64_t maxInjections = 0; ///< stop after this many (0 = unbounded)

    std::string toString() const;
};

/** Per-type injection counts (proof that a fault actually fired). */
struct FaultCounters
{
    std::array<uint64_t, NumFaultTypes> injected{};

    uint64_t
    count(FaultType t) const
    {
        return injected[static_cast<size_t>(t)];
    }

    uint64_t total() const;
};

/**
 * The injector the machine consults. Decision + corruption content
 * are both drawn here so a plan replays deterministically; the
 * machine only supplies the state to corrupt.
 */
class FaultInjector
{
  public:
    FaultInjector(uint64_t seed, std::vector<FaultPlan> plans);

    /** Single-plan convenience (seeded from the plan's own seed). */
    explicit FaultInjector(const FaultPlan &plan)
        : FaultInjector(plan.seed, {plan})
    {}

    /** True when any plan of type @p t is armed and under budget. */
    bool
    armed(FaultType t) const
    {
        const FaultPlan &p = plans_[static_cast<size_t>(t)];
        if (p.rate <= 0.0)
            return false;
        return p.maxInjections == 0 ||
               counters_.count(t) < p.maxInjections;
    }

    /**
     * Bernoulli draw for one opportunity of type @p t. Counts the
     * injection — callers must apply the granted corruption.
     */
    bool
    fire(FaultType t)
    {
        if (!armed(t))
            return false;
        if (!rng_.chance(plans_[static_cast<size_t>(t)].rate))
            return false;
        ++counters_.injected[static_cast<size_t>(t)];
        return true;
    }

    // -- Fork hook --------------------------------------------------------

    /**
     * Checkpoint faults (CheckpointCorrupt + LiveInFlip) for a task
     * being forked with checkpoint @p ckpt.
     *
     * @return a corrupted replacement, or nullptr when untouched.
     */
    std::shared_ptr<const StateDelta>
    corruptCheckpoint(const StateDelta &ckpt);

    // -- Spawn-delivery hook ----------------------------------------------

    /** SpawnDrop draw for one delivery. */
    bool dropSpawn() { return fire(FaultType::SpawnDrop); }

    /** SpawnDelay draw: extra transit cycles (0 = on time). */
    Cycle
    spawnDelay()
    {
        if (!fire(FaultType::SpawnDelay))
            return 0;
        return plans_[static_cast<size_t>(FaultType::SpawnDelay)]
            .delayCycles;
    }

    // -- Slave hook -------------------------------------------------------

    /**
     * Per-busy-slave-cycle draw. @p kill_task is set when the slave
     * must drop its task mid-flight (the task then never completes
     * and the watchdog recovers it).
     *
     * @return stall cycles to add (0 = none)
     */
    Cycle onSlaveTick(int slave_id, bool *kill_task);

    // -- Draw primitives for machine-applied faults -----------------------
    // (MasterRegFlip / MasterPcCorrupt / ImagePatch corrupt state the
    // injector cannot see; the machine calls fire() then shapes the
    // corruption with these.)

    /** Uniform value below @p bound (bound >= 1). */
    uint64_t pick(uint64_t bound) { return rng_.below(bound); }

    /** Random 32-bit word. */
    uint32_t word() { return static_cast<uint32_t>(rng_.next()); }

    /** Single random bit mask. */
    uint32_t bit32() { return 1u << (rng_.next() & 31); }

    /** The plan armed for @p t (zero-rate default when absent). */
    const FaultPlan &
    plan(FaultType t) const
    {
        return plans_[static_cast<size_t>(t)];
    }

    const FaultCounters &counters() const { return counters_; }

    /** One line per armed type with its injection count. */
    void dump(std::ostream &os) const;

  private:
    /** One plan slot per type (the last plan of a type wins). */
    std::array<FaultPlan, NumFaultTypes> plans_;
    FaultCounters counters_;
    Rng rng_;
};

} // namespace mssp

#endif // MSSP_FAULT_FAULT_HH

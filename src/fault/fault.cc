#include "fault/fault.hh"

#include <algorithm>

#include "arch/cell.hh"
#include "sim/logging.hh"

namespace mssp
{

const char *
toString(FaultType t)
{
    switch (t) {
      case FaultType::None:              return "none";
      case FaultType::CheckpointCorrupt: return "checkpoint-corrupt";
      case FaultType::LiveInFlip:        return "livein-flip";
      case FaultType::MasterRegFlip:     return "master-reg-flip";
      case FaultType::MasterPcCorrupt:   return "master-pc";
      case FaultType::SpawnDelay:        return "spawn-delay";
      case FaultType::SpawnDrop:         return "spawn-drop";
      case FaultType::SlaveStall:        return "slave-stall";
      case FaultType::SlaveKill:         return "slave-kill";
      case FaultType::SpuriousSquash:    return "spurious-squash";
      case FaultType::ImagePatch:        return "image-patch";
    }
    return "?";
}

FaultType
faultTypeFromString(const std::string &name)
{
    for (FaultType t : allFaultTypes()) {
        if (name == toString(t))
            return t;
    }
    return FaultType::None;
}

const std::vector<FaultType> &
allFaultTypes()
{
    static const std::vector<FaultType> types = {
        FaultType::CheckpointCorrupt, FaultType::LiveInFlip,
        FaultType::MasterRegFlip,     FaultType::MasterPcCorrupt,
        FaultType::SpawnDelay,        FaultType::SpawnDrop,
        FaultType::SlaveStall,        FaultType::SlaveKill,
        FaultType::SpuriousSquash,    FaultType::ImagePatch,
    };
    return types;
}

std::string
FaultPlan::toString() const
{
    return strfmt("%s rate=%g seed=%llu target=%d",
                  mssp::toString(type), rate,
                  static_cast<unsigned long long>(seed), target);
}

uint64_t
FaultCounters::total() const
{
    uint64_t n = 0;
    for (uint64_t v : injected)
        n += v;
    return n;
}

FaultInjector::FaultInjector(uint64_t seed, std::vector<FaultPlan> plans)
    : rng_(seed)
{
    for (const FaultPlan &p : plans) {
        if (p.type == FaultType::None)
            continue;
        plans_[static_cast<size_t>(p.type)] = p;
    }
}

std::shared_ptr<const StateDelta>
FaultInjector::corruptCheckpoint(const StateDelta &ckpt)
{
    // Draw both checkpoint fault classes up front; bail cheaply when
    // neither fires. LiveInFlip needs an existing binding to flip, so
    // its draw is gated on a non-empty checkpoint (an injection that
    // could not corrupt anything must not count as fired).
    bool corrupt = fire(FaultType::CheckpointCorrupt);
    bool flip = !ckpt.empty() && fire(FaultType::LiveInFlip);
    if (!corrupt && !flip)
        return nullptr;

    auto bad = std::make_shared<StateDelta>(ckpt);
    if (corrupt) {
        // 50/50: insert a bogus prediction, or drop a real one. A
        // dropped cell degrades to an architected read-through (the
        // prediction is *missing*, not wrong); an inserted cell is a
        // wrong prediction the verify unit must catch if consumed.
        if (bad->empty() || (rng_.next() & 1)) {
            CellId cell = (rng_.next() & 1)
                ? makeRegCell(1 + static_cast<unsigned>(
                      rng_.below(NumRegs - 1)))
                : makeMemCell(word() & ~0x3u);
            bad->set(cell, word());
        } else {
            std::vector<StateDelta::value_type> cells = bad->sorted();
            bad->erase(cells[rng_.below(cells.size())].first);
        }
    }
    if (flip) {
        std::vector<StateDelta::value_type> cells = bad->sorted();
        if (cells.empty()) {
            // CheckpointCorrupt just dropped the last cell: nothing
            // left to flip; un-count the granted flip.
            --counters_.injected[static_cast<size_t>(
                FaultType::LiveInFlip)];
        } else {
            const auto &[cell, value] = cells[rng_.below(cells.size())];
            bad->set(cell, value ^ bit32());
        }
    }
    return bad;
}

Cycle
FaultInjector::onSlaveTick(int slave_id, bool *kill_task)
{
    *kill_task = false;
    const FaultPlan &kill = plans_[static_cast<size_t>(
        FaultType::SlaveKill)];
    if ((kill.target < 0 || kill.target == slave_id) &&
        fire(FaultType::SlaveKill)) {
        *kill_task = true;
        return 0;
    }
    const FaultPlan &stall = plans_[static_cast<size_t>(
        FaultType::SlaveStall)];
    if ((stall.target < 0 || stall.target == slave_id) &&
        fire(FaultType::SlaveStall)) {
        return stall.stallCycles;
    }
    return 0;
}

void
FaultInjector::dump(std::ostream &os) const
{
    for (FaultType t : allFaultTypes()) {
        const FaultPlan &p = plans_[static_cast<size_t>(t)];
        if (p.rate <= 0.0)
            continue;
        os << strfmt("fault.%-22s %12llu  # injections (%s)\n",
                     toString(t),
                     static_cast<unsigned long long>(
                         counters_.count(t)),
                     p.toString().c_str());
    }
}

} // namespace mssp

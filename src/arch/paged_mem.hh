/**
 * @file
 * Sparse paged word memory.
 *
 * The architected memory is a 2^32-word address space backed lazily by
 * 4K-word pages. Reads of unmapped words return zero; writes allocate.
 * A one-entry MRU page cache short-circuits the hash lookup for the
 * (overwhelmingly common) case of consecutive accesses to the same
 * page, and copy assignment reuses already-allocated pages so
 * snapshot-replay loops don't churn the allocator.
 */

#ifndef MSSP_ARCH_PAGED_MEM_HH
#define MSSP_ARCH_PAGED_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace mssp
{

/** Lazily allocated word-addressed memory. */
class PagedMem
{
  public:
    PagedMem() = default;

    PagedMem(PagedMem &&other) noexcept
        : pages(std::move(other.pages))
    {
        other.resetMru();
    }

    PagedMem &
    operator=(PagedMem &&other) noexcept
    {
        if (this != &other) {
            pages = std::move(other.pages);
            resetMru();
            other.resetMru();
        }
        return *this;
    }

    /** Deep copy (snapshotting for oracles and replay tests). */
    PagedMem(const PagedMem &other)
    {
        for (const auto &[num, page] : other.pages)
            pages.emplace(num, std::make_unique<Page>(*page));
    }

    /** Deep copy that reuses this memory's existing page
     *  allocations (snapshot-restore loops stay allocation-free once
     *  warm). */
    PagedMem &
    operator=(const PagedMem &other)
    {
        if (this == &other)
            return *this;
        // Drop pages the source doesn't have...
        for (auto it = pages.begin(); it != pages.end();) {
            if (other.pages.count(it->first) == 0)
                it = pages.erase(it);
            else
                ++it;
        }
        // ...and copy contents into reused (or fresh) allocations.
        for (const auto &[num, page] : other.pages) {
            auto &mine = pages[num];
            if (!mine)
                mine = std::make_unique<Page>(*page);
            else
                *mine = *page;
        }
        resetMru();
        return *this;
    }

    static constexpr unsigned PageBits = 12;
    static constexpr uint32_t PageWords = 1u << PageBits;
    static constexpr uint32_t OffsetMask = PageWords - 1;

    /** Read the word at @p addr (0 if never written). */
    uint32_t
    read(uint32_t addr) const
    {
        uint32_t num = addr >> PageBits;
        if (num != mru_num_ || mru_ == nullptr) {
            auto it = pages.find(num);
            if (it == pages.end())
                return 0;
            mru_num_ = num;
            mru_ = it->second.get();
        }
        return (*mru_)[addr & OffsetMask];
    }

    /** Write @p value at @p addr, allocating the page if needed. */
    void
    write(uint32_t addr, uint32_t value)
    {
        uint32_t num = addr >> PageBits;
        if (num != mru_num_ || mru_ == nullptr) {
            auto &page = pages[num];
            if (!page)
                page = std::make_unique<Page>();
            mru_num_ = num;
            mru_ = page.get();
        }
        (*mru_)[addr & OffsetMask] = value;
    }

    /** Number of resident pages. */
    size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        resetMru();
    }

    /**
     * Enumerate all nonzero words (deterministic order), used by
     * state-comparison tests.
     */
    std::vector<std::pair<uint32_t, uint32_t>> nonzeroWords() const;

  private:
    using Page = std::array<uint32_t, PageWords>;

    void
    resetMru() const
    {
        mru_num_ = 0;
        mru_ = nullptr;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
    // One-entry MRU over `pages` (a pure cache: mutable so const
    // reads can refresh it; never dangles because pages are only
    // removed by clear()/assignment, which reset it).
    mutable uint32_t mru_num_ = 0;
    mutable Page *mru_ = nullptr;
};

} // namespace mssp

#endif // MSSP_ARCH_PAGED_MEM_HH

/**
 * @file
 * Sparse paged word memory.
 *
 * The architected memory is a 2^32-word address space backed lazily by
 * 4K-word pages. Reads of unmapped words return zero; writes allocate.
 */

#ifndef MSSP_ARCH_PAGED_MEM_HH
#define MSSP_ARCH_PAGED_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace mssp
{

/** Lazily allocated word-addressed memory. */
class PagedMem
{
  public:
    PagedMem() = default;
    PagedMem(PagedMem &&) = default;
    PagedMem &operator=(PagedMem &&) = default;

    /** Deep copy (snapshotting for oracles and replay tests). */
    PagedMem(const PagedMem &other)
    {
        for (const auto &[num, page] : other.pages)
            pages.emplace(num, std::make_unique<Page>(*page));
    }

    PagedMem &
    operator=(const PagedMem &other)
    {
        if (this != &other) {
            pages.clear();
            for (const auto &[num, page] : other.pages)
                pages.emplace(num, std::make_unique<Page>(*page));
        }
        return *this;
    }

    static constexpr unsigned PageBits = 12;
    static constexpr uint32_t PageWords = 1u << PageBits;
    static constexpr uint32_t OffsetMask = PageWords - 1;

    /** Read the word at @p addr (0 if never written). */
    uint32_t
    read(uint32_t addr) const
    {
        auto it = pages.find(addr >> PageBits);
        if (it == pages.end())
            return 0;
        return (*it->second)[addr & OffsetMask];
    }

    /** Write @p value at @p addr, allocating the page if needed. */
    void
    write(uint32_t addr, uint32_t value)
    {
        auto &page = pages[addr >> PageBits];
        if (!page)
            page = std::make_unique<Page>();
        (*page)[addr & OffsetMask] = value;
    }

    /** Number of resident pages. */
    size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void clear() { pages.clear(); }

    /**
     * Enumerate all nonzero words (deterministic order), used by
     * state-comparison tests.
     */
    std::vector<std::pair<uint32_t, uint32_t>> nonzeroWords() const;

  private:
    using Page = std::array<uint32_t, PageWords>;
    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
};

} // namespace mssp

#endif // MSSP_ARCH_PAGED_MEM_HH

/**
 * @file
 * Sparse paged word memory.
 *
 * The architected memory is a 2^32-word address space backed lazily by
 * 4K-word pages. Reads of unmapped words return zero; writes allocate.
 * A one-entry MRU page cache short-circuits the hash lookup for the
 * (overwhelmingly common) case of consecutive accesses to the same
 * page, and copy assignment reuses already-allocated pages so
 * snapshot-replay loops don't churn the allocator.
 */

#ifndef MSSP_ARCH_PAGED_MEM_HH
#define MSSP_ARCH_PAGED_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace mssp
{

/** Lazily allocated word-addressed memory. */
class PagedMem
{
  public:
    PagedMem() = default;

    PagedMem(PagedMem &&other) noexcept
        : pages(std::move(other.pages))
    {
        other.resetMru();
    }

    PagedMem &
    operator=(PagedMem &&other) noexcept
    {
        if (this != &other) {
            pages = std::move(other.pages);
            resetMru();
            other.resetMru();
        }
        return *this;
    }

    /** Deep copy (snapshotting for oracles and replay tests). */
    PagedMem(const PagedMem &other)
    {
        for (const auto &[num, page] : other.pages)
            pages.emplace(num, std::make_unique<Page>(*page));
    }

    /** Deep copy that reuses this memory's existing page
     *  allocations (snapshot-restore loops stay allocation-free once
     *  warm). */
    PagedMem &
    operator=(const PagedMem &other)
    {
        if (this == &other)
            return *this;
        // Drop pages the source doesn't have...
        for (auto it = pages.begin(); it != pages.end();) {
            if (other.pages.count(it->first) == 0)
                it = pages.erase(it);
            else
                ++it;
        }
        // ...and copy contents into reused (or fresh) allocations.
        for (const auto &[num, page] : other.pages) {
            auto &mine = pages[num];
            if (!mine)
                mine = std::make_unique<Page>(*page);
            else
                *mine = *page;
        }
        resetMru();
        return *this;
    }

    static constexpr unsigned PageBits = 12;
    static constexpr uint32_t PageWords = 1u << PageBits;
    static constexpr uint32_t OffsetMask = PageWords - 1;

    /** Read the word at @p addr (0 if never written). */
    uint32_t
    read(uint32_t addr) const
    {
        uint32_t num = addr >> PageBits;
        PageSlot &s = pcache_[num & PcacheMask];
        if (num != s.num) {
            auto it = pages.find(num);
            if (it == pages.end())
                return 0;  // absence is not cached: a write allocates
            s.num = num;
            s.page = it->second.get();
        }
        return (*s.page)[addr & OffsetMask];
    }

    /** Write @p value at @p addr, allocating the page if needed. */
    void
    write(uint32_t addr, uint32_t value)
    {
        uint32_t num = addr >> PageBits;
        PageSlot &s = pcache_[num & PcacheMask];
        if (num != s.num) {
            auto &page = pages[num];
            if (!page)
                page = std::make_unique<Page>();
            s.num = num;
            s.page = page.get();
        }
        (*s.page)[addr & OffsetMask] = value;
    }

    /** Number of resident pages. */
    size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        resetMru();
    }

    /**
     * Enumerate all nonzero words (deterministic order), used by
     * state-comparison tests.
     */
    std::vector<std::pair<uint32_t, uint32_t>> nonzeroWords() const;

  private:
    using Page = std::array<uint32_t, PageWords>;

    void
    resetMru() const
    {
        pcache_.fill(PageSlot{});
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages;
    // Small direct-mapped page-pointer cache over `pages` (a pure
    // cache: mutable so const reads can refresh it; never dangles
    // because pages are only removed by clear()/assignment, which
    // reset it). Multiple slots matter: hot loops interleave accesses
    // to a few distinct pages (code constants vs. data arrays), which
    // a one-entry MRU ping-pongs on.
    static constexpr unsigned PcacheSlots = 32;
    static constexpr uint32_t PcacheMask = PcacheSlots - 1;
    struct PageSlot
    {
        uint32_t num = 0xffffffffu;  ///< no page has this number
        Page *page = nullptr;
    };
    mutable std::array<PageSlot, PcacheSlots> pcache_{};
};

} // namespace mssp

#endif // MSSP_ARCH_PAGED_MEM_HH

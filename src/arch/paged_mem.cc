#include "arch/paged_mem.hh"

#include <algorithm>

namespace mssp
{

std::vector<std::pair<uint32_t, uint32_t>>
PagedMem::nonzeroWords() const
{
    std::vector<std::pair<uint32_t, uint32_t>> out;
    std::vector<uint32_t> page_nums;
    page_nums.reserve(pages.size());
    for (const auto &[num, page] : pages)
        page_nums.push_back(num);
    std::sort(page_nums.begin(), page_nums.end());
    for (uint32_t num : page_nums) {
        const auto &page = *pages.at(num);
        for (uint32_t off = 0; off < PageWords; ++off) {
            if (page[off] != 0)
                out.emplace_back((num << PageBits) | off, page[off]);
        }
    }
    return out;
}

} // namespace mssp

/**
 * @file
 * The architected (non-speculative) machine state.
 *
 * This is the state the formal model calls S: every ISA-visible cell.
 * In an MSSP machine it is the contents of the shared L2/DRAM plus the
 * architected register file; it is only ever modified by the
 * verify/commit unit (task commit) or by non-speculative sequential
 * execution.
 */

#ifndef MSSP_ARCH_ARCH_STATE_HH
#define MSSP_ARCH_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "arch/cell.hh"
#include "arch/paged_mem.hh"
#include "arch/state_delta.hh"
#include "asm/program.hh"

namespace mssp
{

/** Full architected state: registers, PC and memory. */
class ArchState
{
  public:
    ArchState() { regs_.fill(0); }

    // -- Register / memory / pc accessors --------------------------------

    uint32_t
    readReg(unsigned r) const
    {
        return r == 0 ? 0 : regs_[r];
    }

    void
    writeReg(unsigned r, uint32_t v)
    {
        if (r != 0)
            regs_[r] = v;
    }

    /**
     * Raw register storage for trusted hot loops (the T2 chain
     * executor). Slot 0 is pinned to zero — zero-filled at
     * construction and never written by writeReg — so reads may index
     * it unguarded; callers must never store through index 0.
     */
    uint32_t *rawRegs() { return regs_.data(); }

    uint32_t readMem(uint32_t addr) const { return mem_.read(addr); }
    void writeMem(uint32_t addr, uint32_t v) { mem_.write(addr, v); }

    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; }

    // -- Cell-granular interface (used by verify/commit) -----------------

    /** Read any cell by id. */
    uint32_t
    readCell(CellId cell) const
    {
        switch (cellKind(cell)) {
          case CellKind::Reg:
            return readReg(cellIndex(cell));
          case CellKind::Mem:
            return readMem(cellIndex(cell));
          case CellKind::Pc:
            return pc_;
        }
        return 0;
    }

    /** Write any cell by id. */
    void
    writeCell(CellId cell, uint32_t v)
    {
        switch (cellKind(cell)) {
          case CellKind::Reg:
            writeReg(cellIndex(cell), v);
            break;
          case CellKind::Mem:
            writeMem(cellIndex(cell), v);
            break;
          case CellKind::Pc:
            pc_ = v;
            break;
        }
    }

    /**
     * The live-in verification check: true iff every binding of
     * @p delta matches this state (delta ⊑ this, in the formal
     * model's terms).
     */
    bool
    matches(const StateDelta &delta) const
    {
        for (const auto &[cell, value] : delta) {
            if (readCell(cell) != value)
                return false;
        }
        return true;
    }

    /** Count the bindings of @p delta that disagree with this state. */
    uint64_t
    countMismatches(const StateDelta &delta) const
    {
        uint64_t n = 0;
        for (const auto &[cell, value] : delta) {
            if (readCell(cell) != value)
                ++n;
        }
        return n;
    }

    /** Commit: superimpose @p delta onto this state (this ← delta). */
    void
    apply(const StateDelta &delta)
    {
        for (const auto &[cell, value] : delta)
            writeCell(cell, value);
    }

    // -- Program loading --------------------------------------------------

    /** Load a program image and set the PC to its entry. */
    void loadProgram(const Program &prog);

    /** Retired (committed) instruction count. */
    uint64_t instret() const { return instret_; }
    void addInstret(uint64_t n) { instret_ += n; }

    const PagedMem &mem() const { return mem_; }
    const std::array<uint32_t, NumRegs> &regs() const { return regs_; }

  private:
    std::array<uint32_t, NumRegs> regs_;
    uint32_t pc_ = 0;
    uint64_t instret_ = 0;
    PagedMem mem_;
};

} // namespace mssp

#endif // MSSP_ARCH_ARCH_STATE_HH

/**
 * @file
 * Storage-cell identifiers.
 *
 * The formal MSSP model treats machine state as a partial map from
 * storage cells to values. A cell is a register, a memory word, or the
 * program counter. CellId packs the kind and index into a single
 * 64-bit key for use in hash maps.
 */

#ifndef MSSP_ARCH_CELL_HH
#define MSSP_ARCH_CELL_HH

#include <cstdint>
#include <string>

#include "isa/isa.hh"
#include "sim/logging.hh"

namespace mssp
{

/** The kind of a storage cell. */
enum class CellKind : uint8_t
{
    Reg = 0,   ///< general-purpose register (index 0..31)
    Mem = 1,   ///< memory word (32-bit word address)
    Pc = 2,    ///< the program counter
};

/** Packed cell identifier: [33:32] kind, [31:0] index. */
using CellId = uint64_t;

constexpr CellId
makeRegCell(unsigned reg)
{
    return (uint64_t{0} << 32) | reg;
}

constexpr CellId
makeMemCell(uint32_t addr)
{
    return (uint64_t{1} << 32) | addr;
}

constexpr CellId PcCell = (uint64_t{2} << 32);

constexpr CellKind
cellKind(CellId id)
{
    return static_cast<CellKind>(id >> 32);
}

constexpr uint32_t
cellIndex(CellId id)
{
    return static_cast<uint32_t>(id);
}

/** Human-readable rendering, e.g. "r5(a2)", "mem[0x1000]", "pc". */
inline std::string
cellToString(CellId id)
{
    switch (cellKind(id)) {
      case CellKind::Reg:
        return strfmt("r%u(%s)", cellIndex(id), regName(cellIndex(id)));
      case CellKind::Mem:
        return strfmt("mem[0x%x]", cellIndex(id));
      case CellKind::Pc:
        return "pc";
    }
    return "?";
}

} // namespace mssp

#endif // MSSP_ARCH_CELL_HH

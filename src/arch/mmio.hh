/**
 * @file
 * Memory-mapped I/O: non-idempotent machine state.
 *
 * The companion formal paper closes by noting that MSSP must preclude
 * speculation on state "such as memory-mapped I/O addresses, where we
 * cannot rely on accesses being idempotent... demanding that we
 * impose task boundaries and proceed, non-speculatively, as per SEQ."
 * This module implements exactly that extension:
 *
 *  - Addresses at or above MmioBase are device space.
 *  - Reads can be non-idempotent (the COUNTER register increments on
 *    every read); writes are externally visible (they append to the
 *    program's output stream).
 *  - The sequential machine and the profiler access the device
 *    directly. MSSP slaves *abort their task* immediately before any
 *    device access (TaskEnd::MmioStop); the machine commits the
 *    verified prefix and executes the device access sequentially
 *    before re-engaging speculation. The master never touches the
 *    device: its MMIO reads predict 0 and its MMIO writes are
 *    dropped — wrong predictions are, as always, merely slow.
 */

#ifndef MSSP_ARCH_MMIO_HH
#define MSSP_ARCH_MMIO_HH

#include <cstdint>
#include <map>

#include "exec/context.hh"

namespace mssp
{

/** Start of device space (word addresses). */
constexpr uint32_t MmioBase = 0xffff0000u;

/** The non-idempotent read counter register. */
constexpr uint32_t MmioCounterAddr = MmioBase;
/** A constant status register (idempotent read). */
constexpr uint32_t MmioStatusAddr = MmioBase + 1;
/** Value returned by the status register. */
constexpr uint32_t MmioStatusValue = 0x600du;

/** @return true when @p addr lies in device space. */
constexpr bool
isMmio(uint32_t addr)
{
    return addr >= MmioBase;
}

/** Deterministic device model shared by all machine types. */
class MmioDevice
{
  public:
    /**
     * Device read. Reading the counter register returns the number of
     * *previous* reads of it and increments — non-idempotent by
     * construction. Other registers return the last written value
     * (status returns its constant).
     */
    uint32_t
    read(uint32_t addr)
    {
        if (addr == MmioCounterAddr)
            return static_cast<uint32_t>(read_counter_++);
        if (addr == MmioStatusAddr)
            return MmioStatusValue;
        auto it = regs_.find(addr);
        return it == regs_.end() ? 0 : it->second;
    }

    /**
     * Device write: latches the value and emits an observable output
     * on port 0x8000 | (addr & 0x7fff).
     */
    void
    write(uint32_t addr, uint32_t value, OutputStream &out)
    {
        regs_[addr] = value;
        out.push_back({static_cast<uint16_t>(0x8000u | (addr & 0x7fffu)),
                       value});
    }

    uint64_t readCount() const { return read_counter_; }

    void
    reset()
    {
        read_counter_ = 0;
        regs_.clear();
    }

  private:
    uint64_t read_counter_ = 0;
    std::map<uint32_t, uint32_t> regs_;
};

} // namespace mssp

#endif // MSSP_ARCH_MMIO_HH

/**
 * @file
 * Sparse machine-state fragments.
 *
 * A StateDelta is a partial machine state: a finite map from storage
 * cells to values. It implements the formal model's state algebra:
 *
 *  - superimposition S0 ← S1 ("overwrite S0 with S1"), which is
 *    associative;
 *  - consistency S1 ⊑ S2 ("every cell of S1 exists in S2 with the
 *    same value");
 *  - idempotency: S2 ⊑ S1 implies S1 ← S2 = S1.
 *
 * These laws are property-tested in tests/test_formal_properties.cpp,
 * and the map implementation is model-checked against a reference
 * std::unordered_map in tests/test_state.cpp.
 * StateDeltas serve as task live-in sets, live-out sets and master
 * checkpoints — every slave memory access probes one, so the storage
 * is an open-addressing flat hash map (power-of-two capacity, linear
 * probing, tombstone deletion): one contiguous allocation, no
 * per-node indirection, and a find-then-insert cursor that lets
 * live-in capture probe once instead of twice.
 */

#ifndef MSSP_ARCH_STATE_DELTA_HH
#define MSSP_ARCH_STATE_DELTA_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/cell.hh"

namespace mssp
{

/** A sparse, partial machine state (finite map cell -> value). */
class StateDelta
{
  public:
    using value_type = std::pair<CellId, uint32_t>;

    StateDelta() = default;

    /**
     * Result of a single hash probe, usable as an insert position.
     * Valid until the next mutation of this delta.
     */
    struct Cursor
    {
        size_t index = SIZE_MAX;
        bool found = false;
    };

    /**
     * Probe for @p cell: one scan that serves both lookup and a
     * subsequent insertAt (the slave's live-in capture does
     * lookup -> read-through -> insertAt, one probe total).
     */
    Cursor
    lookup(CellId cell) const
    {
        if (slots_.empty())
            return Cursor{};
        size_t mask = slots_.size() - 1;
        size_t i = hashCell(cell) & mask;
        size_t insert_at = SIZE_MAX;
        for (;; i = (i + 1) & mask) {
            CellId k = slots_[i].first;
            if (k == cell)
                return Cursor{i, true};
            if (k == EmptyKey) {
                return Cursor{insert_at == SIZE_MAX ? i : insert_at,
                              false};
            }
            if (k == TombKey && insert_at == SIZE_MAX)
                insert_at = i;
        }
    }

    /** Value at a found cursor. */
    uint32_t valueAt(Cursor c) const { return slots_[c.index].second; }

    /**
     * Bind @p cell at a cursor obtained from lookup(cell) with no
     * intervening mutation: overwrites when found, inserts otherwise
     * without re-probing (unless the table must grow).
     */
    void
    insertAt(Cursor c, CellId cell, uint32_t value)
    {
        if (c.found) {
            slots_[c.index].second = value;
            return;
        }
        if (c.index == SIZE_MAX || mustGrow()) {
            growAndInsert(cell, value);
            return;
        }
        if (slots_[c.index].first == TombKey)
            --tombstones_;
        slots_[c.index] = {cell, value};
        ++size_;
    }

    /** Bind @p cell to @p value, overwriting any previous binding. */
    void set(CellId cell, uint32_t value)
    {
        insertAt(lookup(cell), cell, value);
    }

    /**
     * Bind @p cell only if it has no binding yet (live-in capture).
     * @retval true when the binding was inserted.
     */
    bool
    setIfAbsent(CellId cell, uint32_t value)
    {
        Cursor c = lookup(cell);
        if (c.found)
            return false;
        insertAt(c, cell, value);
        return true;
    }

    /** @return the bound value, if any. */
    std::optional<uint32_t>
    get(CellId cell) const
    {
        Cursor c = lookup(cell);
        if (!c.found)
            return std::nullopt;
        return slots_[c.index].second;
    }

    bool contains(CellId cell) const { return lookup(cell).found; }

    /** Remove a binding if present. */
    void
    erase(CellId cell)
    {
        Cursor c = lookup(cell);
        if (!c.found)
            return;
        slots_[c.index].first = TombKey;
        ++tombstones_;
        --size_;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop all bindings (capacity is kept for reuse). */
    void
    clear()
    {
        for (auto &slot : slots_)
            slot.first = EmptyKey;
        size_ = 0;
        tombstones_ = 0;
    }

    /** Pre-size for @p n bindings. */
    void
    reserve(size_t n)
    {
        size_t needed = capacityFor(n);
        if (needed > slots_.size())
            rehash(needed);
    }

    /** Forward iterator over live (cell, value) bindings. */
    class const_iterator
    {
      public:
        using value_type = StateDelta::value_type;
        using reference = const value_type &;
        using pointer = const value_type *;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        const_iterator() = default;

        const_iterator(const value_type *p, const value_type *end)
            : p_(p), end_(end)
        {
            skipDead();
        }

        const value_type &operator*() const { return *p_; }
        const value_type *operator->() const { return p_; }

        const_iterator &
        operator++()
        {
            ++p_;
            skipDead();
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++*this;
            return old;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return p_ == o.p_;
        }

      private:
        void
        skipDead()
        {
            while (p_ != end_ &&
                   (p_->first == EmptyKey || p_->first == TombKey))
                ++p_;
        }

        const value_type *p_ = nullptr;
        const value_type *end_ = nullptr;
    };

    const_iterator
    begin() const
    {
        const value_type *data = slots_.data();
        return {data, data + slots_.size()};
    }
    const_iterator
    end() const
    {
        const value_type *data = slots_.data();
        return {data + slots_.size(), data + slots_.size()};
    }

    /**
     * Superimpose @p other onto this state: this ← other.
     * Cells of @p other overwrite; cells only in this survive.
     */
    void
    superimpose(const StateDelta &other)
    {
        for (const auto &[cell, value] : other)
            set(cell, value);
    }

    /** Functional form of superimposition: returns a ← b. */
    static StateDelta
    superimposed(const StateDelta &a, const StateDelta &b)
    {
        StateDelta out = a;
        out.superimpose(b);
        return out;
    }

    /**
     * Consistency test (the formal model's ⊑): true iff every binding
     * of this state exists, with equal value, in @p other.
     */
    bool
    consistentWith(const StateDelta &other) const
    {
        for (const auto &[cell, value] : *this) {
            Cursor c = other.lookup(cell);
            if (!c.found || other.valueAt(c) != value)
                return false;
        }
        return true;
    }

    bool
    operator==(const StateDelta &other) const
    {
        return size_ == other.size_ && consistentWith(other);
    }

    /** Deterministically ordered (cell, value) list, for tests/dumps. */
    std::vector<value_type> sorted() const;

    /** Multi-line human-readable dump. */
    std::string toString() const;

  private:
    // Sentinels outside the CellId value space (kinds stop at bit 33).
    static constexpr CellId EmptyKey = ~CellId{0};
    static constexpr CellId TombKey = ~CellId{0} - 1;
    static constexpr size_t MinCapacity = 16;

    static size_t
    hashCell(CellId k)
    {
        // Fibonacci-style multiplicative mix; CellIds differ in low
        // bits (index) and bits 32+ (kind), both of which diffuse.
        uint64_t x = (k + 1) * 0x9E3779B97F4A7C15ull;
        return static_cast<size_t>(x ^ (x >> 32));
    }

    /** Smallest power-of-two capacity holding @p n below 2/3 load. */
    static size_t
    capacityFor(size_t n)
    {
        size_t cap = MinCapacity;
        while (n + (n >> 1) >= cap)
            cap <<= 1;
        return cap;
    }

    bool
    mustGrow() const
    {
        // Count tombstones against the load so probe chains stay
        // short; rehashing drops them.
        return slots_.empty() ||
               (size_ + tombstones_ + 1) * 4 > slots_.size() * 3;
    }

    void rehash(size_t new_cap);
    void growAndInsert(CellId cell, uint32_t value);

    std::vector<value_type> slots_;   ///< pow-2 sized; EmptyKey = free
    size_t size_ = 0;        ///< live bindings
    size_t tombstones_ = 0;  ///< deleted slots awaiting rehash
};

} // namespace mssp

#endif // MSSP_ARCH_STATE_DELTA_HH

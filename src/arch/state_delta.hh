/**
 * @file
 * Sparse machine-state fragments.
 *
 * A StateDelta is a partial machine state: a finite map from storage
 * cells to values. It implements the formal model's state algebra:
 *
 *  - superimposition S0 ← S1 ("overwrite S0 with S1"), which is
 *    associative;
 *  - consistency S1 ⊑ S2 ("every cell of S1 exists in S2 with the
 *    same value");
 *  - idempotency: S2 ⊑ S1 implies S1 ← S2 = S1.
 *
 * These laws are property-tested in tests/test_formal_properties.cpp.
 * StateDeltas serve as task live-in sets, live-out sets and master
 * checkpoints.
 */

#ifndef MSSP_ARCH_STATE_DELTA_HH
#define MSSP_ARCH_STATE_DELTA_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/cell.hh"

namespace mssp
{

/** A sparse, partial machine state (finite map cell -> value). */
class StateDelta
{
  public:
    using Map = std::unordered_map<CellId, uint32_t>;

    StateDelta() = default;

    /** Bind @p cell to @p value, overwriting any previous binding. */
    void set(CellId cell, uint32_t value) { map_[cell] = value; }

    /** Bind @p cell only if it has no binding yet (live-in capture). */
    void
    setIfAbsent(CellId cell, uint32_t value)
    {
        map_.emplace(cell, value);
    }

    /** @return the bound value, if any. */
    std::optional<uint32_t>
    get(CellId cell) const
    {
        auto it = map_.find(cell);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    bool contains(CellId cell) const { return map_.count(cell) != 0; }

    /** Remove a binding if present. */
    void erase(CellId cell) { map_.erase(cell); }

    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }

    Map::const_iterator begin() const { return map_.begin(); }
    Map::const_iterator end() const { return map_.end(); }

    /**
     * Superimpose @p other onto this state: this ← other.
     * Cells of @p other overwrite; cells only in this survive.
     */
    void
    superimpose(const StateDelta &other)
    {
        for (const auto &[cell, value] : other.map_)
            map_[cell] = value;
    }

    /** Functional form of superimposition: returns a ← b. */
    static StateDelta
    superimposed(const StateDelta &a, const StateDelta &b)
    {
        StateDelta out = a;
        out.superimpose(b);
        return out;
    }

    /**
     * Consistency test (the formal model's ⊑): true iff every binding
     * of this state exists, with equal value, in @p other.
     */
    bool
    consistentWith(const StateDelta &other) const
    {
        for (const auto &[cell, value] : map_) {
            auto it = other.map_.find(cell);
            if (it == other.map_.end() || it->second != value)
                return false;
        }
        return true;
    }

    bool
    operator==(const StateDelta &other) const
    {
        return map_ == other.map_;
    }

    /** Deterministically ordered (cell, value) list, for tests/dumps. */
    std::vector<std::pair<CellId, uint32_t>> sorted() const;

    /** Multi-line human-readable dump. */
    std::string toString() const;

    void reserve(size_t n) { map_.reserve(n); }

  private:
    Map map_;
};

} // namespace mssp

#endif // MSSP_ARCH_STATE_DELTA_HH

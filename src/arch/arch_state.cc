#include "arch/arch_state.hh"

namespace mssp
{

void
ArchState::loadProgram(const Program &prog)
{
    for (const auto &[addr, value] : prog.image())
        mem_.write(addr, value);
    pc_ = prog.entry();
}

} // namespace mssp

#include "arch/state_delta.hh"

#include <algorithm>

namespace mssp
{

void
StateDelta::rehash(size_t new_cap)
{
    std::vector<value_type> old = std::move(slots_);
    slots_.assign(new_cap, {EmptyKey, 0});
    tombstones_ = 0;
    size_t mask = new_cap - 1;
    for (const auto &[cell, value] : old) {
        if (cell == EmptyKey || cell == TombKey)
            continue;
        size_t i = hashCell(cell) & mask;
        while (slots_[i].first != EmptyKey)
            i = (i + 1) & mask;
        slots_[i] = {cell, value};
    }
}

void
StateDelta::growAndInsert(CellId cell, uint32_t value)
{
    rehash(capacityFor(size_ + 1));
    // The key was absent (callers only grow on the insert path), the
    // fresh table has no tombstones and cannot need another grow.
    Cursor c = lookup(cell);
    slots_[c.index] = {cell, value};
    ++size_;
}

std::vector<StateDelta::value_type>
StateDelta::sorted() const
{
    std::vector<value_type> out(begin(), end());
    std::sort(out.begin(), out.end());
    return out;
}

std::string
StateDelta::toString() const
{
    std::string s;
    for (const auto &[cell, value] : sorted())
        s += strfmt("  %s = 0x%x\n", cellToString(cell).c_str(), value);
    return s;
}

} // namespace mssp

#include "arch/state_delta.hh"

#include <algorithm>

namespace mssp
{

std::vector<std::pair<CellId, uint32_t>>
StateDelta::sorted() const
{
    std::vector<std::pair<CellId, uint32_t>> out(map_.begin(),
                                                 map_.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::string
StateDelta::toString() const
{
    std::string s;
    for (const auto &[cell, value] : sorted())
        s += strfmt("  %s = 0x%x\n", cellToString(cell).c_str(), value);
    return s;
}

} // namespace mssp

#include "distill/ir.hh"

#include "profile/profile_data.hh"
#include "sim/logging.hh"

namespace mssp
{

DistillIr
DistillIr::build(const Cfg &cfg, const ProfileData *profile)
{
    DistillIr ir;

    // Assign ids in address order.
    for (const auto &[start, bb] : cfg.blocks()) {
        int id = static_cast<int>(ir.blocks_.size());
        ir.by_orig_pc_[start] = id;
        IrBlock blk;
        blk.id = id;
        blk.origStart = start;
        if (profile)
            blk.execCount = profile->countAt(start);
        ir.blocks_.push_back(std::move(blk));
    }

    auto id_of = [&](uint32_t pc) {
        auto it = ir.by_orig_pc_.find(pc);
        return it == ir.by_orig_pc_.end() ? -1 : it->second;
    };

    for (const auto &[start, bb] : cfg.blocks()) {
        IrBlock &blk = ir.blocks_[static_cast<size_t>(
            ir.by_orig_pc_.at(start))];
        blk.term = bb.term;
        blk.isCall = bb.isCall;

        // The CFG keeps the terminator instruction (if it is one) as
        // the last element of insts; split it off.
        size_t n_body = bb.insts.size();
        bool has_term_inst =
            bb.term == TermKind::CondBranch ||
            bb.term == TermKind::Jump ||
            bb.term == TermKind::IndirectJump ||
            bb.term == TermKind::Halt ||
            (bb.term == TermKind::Fault && !bb.insts.empty() &&
             bb.insts.back().op == Opcode::Illegal);
        if (has_term_inst) {
            MSSP_ASSERT(n_body > 0);
            --n_body;
            blk.termInst = bb.insts[n_body];
            blk.termOrigPc = bb.pcOf(n_body);
        }
        for (size_t i = 0; i < n_body; ++i)
            blk.body.push_back(IrInst::normal(bb.insts[i], bb.pcOf(i)));

        switch (bb.term) {
          case TermKind::FallThrough:
            blk.fallthrough = id_of(bb.fallthrough);
            if (blk.fallthrough < 0)
                blk.term = TermKind::Fault;
            break;
          case TermKind::CondBranch:
            blk.takenTarget = id_of(bb.takenTarget);
            blk.fallthrough = id_of(bb.fallthrough);
            if (blk.takenTarget < 0 || blk.fallthrough < 0)
                blk.term = TermKind::Fault;
            break;
          case TermKind::Jump:
            blk.takenTarget = id_of(bb.takenTarget);
            blk.fallthrough = id_of(bb.fallthrough);  // call return pt
            if (blk.takenTarget < 0)
                blk.term = TermKind::Fault;
            break;
          default:
            break;
        }
    }

    ir.entry_block_ = ir.blockOfOrigPc(cfg.entry());
    MSSP_ASSERT(ir.entry_block_ >= 0);
    return ir;
}

size_t
DistillIr::numAliveInsts() const
{
    size_t n = 0;
    for (const auto &blk : blocks_) {
        if (!blk.alive)
            continue;
        n += blk.body.size();
        if (blk.term == TermKind::CondBranch ||
            blk.term == TermKind::Jump ||
            blk.term == TermKind::IndirectJump ||
            blk.term == TermKind::Halt) {
            ++n;
        }
    }
    return n;
}

std::string
DistillIr::toString() const
{
    static const char *term_names[] = {
        "fallthrough", "condbranch", "jump", "indirect", "halt",
        "fault",
    };
    std::string out;
    for (const auto &blk : blocks_) {
        if (!blk.alive)
            continue;
        out += strfmt("B%d (orig 0x%x, count %llu)%s%s: %zu insts, "
                      "term=%s taken=B%d fall=B%d\n",
                      blk.id, blk.origStart,
                      static_cast<unsigned long long>(blk.execCount),
                      blk.forkSite ? " [fork]" : "",
                      blk.isCall ? " [call]" : "",
                      blk.body.size(),
                      term_names[static_cast<int>(blk.term)],
                      blk.takenTarget, blk.fallthrough);
    }
    return out;
}

void
irInstDefUse(const IrInst &iinst, RegMask &def, RegMask &use)
{
    if (iinst.kind == IrInst::Kind::LoadImm) {
        use = 0;
        def = iinst.rd ? (1u << iinst.rd) : 0;
        return;
    }
    instDefUse(iinst.inst, def, use);
}

// computeIrLiveness lives in src/analysis/liveness.cc, on the shared
// dataflow solver (the same implementation serves the binary-level
// Cfg liveness and the mssp-lint verifier).

} // namespace mssp

/**
 * @file
 * The program distiller.
 *
 * Produces the *distilled program* the MSSP master executes: a
 * profile-guided, speculatively optimized translation of the original
 * binary. Passes in pipeline order:
 *
 *   1. branch pruning        (approximate: hard-wires biased branches)
 *   2. unreachable-code elimination
 *   3. constant folding       (semantics-preserving, block-local)
 *   4. dead-code elimination  (semantics-preserving, global liveness)
 *   5. silent-store elimination (approximate, optional)
 *   6. load-value speculation   (approximate, optional)
 *   7. fork insertion + layout/relink
 *
 * "Approximate" passes may change program behaviour — MSSP's
 * verify/commit unit makes that safe, and the adversarial test suite
 * (tests/test_refinement.cpp) checks that even a *corrupted* distilled
 * program cannot affect program output.
 */

#ifndef MSSP_DISTILL_DISTILLER_HH
#define MSSP_DISTILL_DISTILLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "distill/ir.hh"
#include "profile/fork_select.hh"
#include "profile/profile_data.hh"

namespace mssp
{

/** Distiller tuning knobs (E8/E9 ablate these). */
struct DistillerOptions
{
    /** Branch-prune bias threshold θ. A branch direction is pruned
     *  when it was *never* observed in training, or when its rareness
     *  clears θ (taken-bias >= θ hard-wires taken; <= 1-θ hard-wires
     *  not-taken). The default θ = 1.0 prunes never-observed
     *  directions only — lower values are more aggressive and are
     *  what experiment E9 sweeps. */
    double biasThreshold = 1.0;
    /** Branches sampled fewer times than this are never pruned. */
    uint64_t minBranchSamples = 16;

    bool enableBranchPrune = true;
    bool enableConstFold = true;
    bool enableDce = true;

    bool enableSilentStoreElim = false;
    double silentStoreThreshold = 0.999;

    /**
     * Load-value speculation. The safe form replaces a load whose
     * *address* is invariant and was never stored to in training with
     * the value from the program image being distilled (link-time
     * constant propagation — immune to train/ref data differences).
     */
    bool enableValueSpec = false;
    double valueSpecThreshold = 0.999;

    /** Risky form: additionally replace loads whose *profiled value*
     *  is invariant with the training value — this can bake training
     *  data into the distilled binary (experiment E9 sweeps it). */
    bool valueSpecFromProfile = false;

    /** Loads/stores sampled fewer times than this are left alone. */
    uint64_t minMemSamples = 32;

    ForkSelectOptions forkSelect;

    /** When nonempty, use exactly these original PCs as fork sites
     *  (plus the entry) instead of running selection. */
    std::vector<uint32_t> explicitForkSites;

    /**
     * The configuration the evaluation uses (the paper's distiller):
     * all passes on, including the speculative memory optimizations
     * (silent-store elimination and load-value speculation).
     */
    static DistillerOptions
    paperPreset()
    {
        DistillerOptions opts;
        opts.enableSilentStoreElim = true;
        opts.silentStoreThreshold = 0.995;
        opts.enableValueSpec = true;
        opts.valueSpecThreshold = 0.999;
        return opts;
    }
};

/**
 * One recorded program edit, for pass provenance.
 *
 * The distiller logs every instruction-level change it makes:
 * *approximate* edits deliberately change behaviour (MSSP's
 * verify/commit unit makes that safe), *semantics-preserving* edits
 * must not change any architected live-out. mssp-lint replays the
 * log against the original binary to check each claim
 * (analysis/verifier.hh; docs/LINT.md).
 */
struct DistillEdit
{
    enum class Pass : uint8_t
    {
        BranchPrune,        ///< approximate
        UnreachableElim,    ///< semantics-preserving
        ConstFold,          ///< semantics-preserving
        Dce,                ///< semantics-preserving
        SilentStoreElim,    ///< approximate
        ValueSpec,          ///< approximate
    };

    Pass pass = Pass::ConstFold;
    /** Original-program PC of the edited instruction (block leader
     *  for UnreachableElim). */
    uint32_t origPc = UINT32_MAX;
    /** Destination register of the edited instruction, when it has
     *  one (ConstFold/Dce/ValueSpec); 0 otherwise. */
    uint8_t reg = 0;

    // -- Semantic metadata (consumed by the translation validator) --
    /** True when @c value below is meaningful for this pass. */
    bool hasValue = false;
    /** ConstFold/ValueSpec: the constant baked into the image.
     *  BranchPrune and branch ConstFolds: the hard-wired direction
     *  (1 = taken, 0 = fall-through). */
    uint32_t value = 0;
    /** Leader of the original-CFG block containing origPc (stamped
     *  once by distill(); validated against a recomputation). */
    uint32_t regionStart = UINT32_MAX;
    /** Register live-out mask of that original block. */
    RegMask liveOut = 0;
};

/**
 * Speculation-safety class of one static load in a distilled image
 * (analysis/specsafe.hh, DESIGN.md §5.3). The future value-
 * speculating distiller may only bake in loads the classifier proved
 * invariant; the runtime recovers from the rest.
 */
enum class LoadSpecClass : uint8_t
{
    /** No store in the analyzed image may alias the load: its value
     *  can never change, on any execution. */
    ProvablyInvariant,
    /** Aliasing stores exist, but none shares a fork region with the
     *  load — invariant between fork boundaries, not across them. */
    RegionInvariant,
    /** An aliasing store may execute in the load's own region (or
     *  the address could not be proven at all). */
    Risky,
};

/** Stable lower-case class name ("provably-invariant", ...). */
const char *loadSpecClassName(LoadSpecClass cls);

/** Parse a class name; @retval false when unknown. */
bool loadSpecClassFromName(const std::string &name,
                           LoadSpecClass &cls);

/**
 * Proof strength of a predicted load value in a speculation plan
 * (analysis/valueflow.hh, DESIGN.md §5.4). Proven candidates may
 * observe exactly one value on any execution of the merged image —
 * a dynamic counterexample fails the crossval gate outright; Likely
 * candidates have a small non-singleton feasible constant set.
 */
enum class ValueProof : uint8_t
{
    Proven,
    Likely,
};

/** Stable lower-case proof name ("proven" / "likely"). */
const char *valueProofName(ValueProof proof);

/** Parse a proof name; @retval false when unknown. */
bool valueProofFromName(const std::string &name, ValueProof &proof);

/**
 * One persisted speculation-plan candidate: a load the planner ranked
 * worth speculating, with its predicted value and proof strength
 * (.mdo format v4 `specplan` lines; the full derivation lives in
 * analysis/specplan.hh and is revalidated by mssp-lint --plan).
 */
struct SpecPlanEntry
{
    uint32_t pc = 0;         ///< distilled PC of the load
    ValueProof proof = ValueProof::Proven;
    uint32_t value = 0;      ///< predicted value
    /** Expected benefit score in micro-units (integer so the .mdo
     *  round-trips byte-exactly; analysis/specplan.hh). */
    uint64_t benefitMicro = 0;
    /** Feasible constant set, ascending (singleton for Proven). */
    std::vector<uint32_t> feasible;

    bool operator==(const SpecPlanEntry &) const = default;
};

/**
 * One *speculated* edit: a load the value-speculating pass
 * (distill/speculate.cc, DESIGN.md §13) rewrote into a baked
 * constant, with enough provenance to police it statically
 * (mssp-lint decodes the image word at @c distPc and checks it
 * materializes @c value) and dynamically (the adaptation loop maps
 * per-fork-site squash rates back onto edits through @c policedBy).
 * Persisted as `specedit` lines in the .mdo (format v5).
 */
struct SpecEdit
{
    /** Original-program PC of the replaced load. */
    uint32_t origPc = UINT32_MAX;
    /** Distilled PC of the first word of the baked constant. */
    uint32_t distPc = UINT32_MAX;
    /** Destination register of the load. */
    uint8_t reg = 0;
    /** Constant address the load read. */
    uint32_t addr = 0;
    /** Proof strength of the plan candidate this edit came from. */
    ValueProof proof = ValueProof::Proven;
    /** The baked value. */
    uint32_t value = 0;
    /** Planner benefit score (micro-units, from the plan entry). */
    uint64_t benefitMicro = 0;
    /** Original fork-site PCs whose tasks verify the regions this
     *  load executes in — the sites whose squash rate the adaptation
     *  loop attributes to this edit (ascending). */
    std::vector<uint32_t> policedBy;

    bool operator==(const SpecEdit &) const = default;
};

/** Knobs of the value-speculating distiller pass. */
struct SpeculateOptions
{
    /** Bake Likely candidates too (Proven are always baked). */
    bool bakeLikely = false;
    /** Minimum benefitMicro a Likely candidate must clear. */
    uint64_t minLikelyBenefitMicro = 50000000;
    /** Original load PCs the adaptation loop de-speculated: never
     *  bake these again (ascending; .mdo `specdrop` lines). */
    std::vector<uint32_t> despeculated;
    /** Feedback generation counter (0 = no feedback yet; .mdo
     *  `specgen` line). */
    uint32_t generation = 0;
};

/** Lower-case pass name ("branch-prune", "dce", ...). */
const char *distillPassName(DistillEdit::Pass pass);

/** Parse a pass name; @retval false when unknown. */
bool distillPassFromName(const std::string &name,
                         DistillEdit::Pass &pass);

/** @return true for passes that may change program behaviour. */
bool distillPassIsApproximate(DistillEdit::Pass pass);

/** What the distiller did (one row of the E1/E8 tables). */
struct DistillReport
{
    size_t origStaticInsts = 0;
    size_t distilledStaticInsts = 0;
    uint64_t branchesToJump = 0;     ///< pruned to unconditional
    uint64_t branchesToFall = 0;     ///< pruned to fallthrough
    uint64_t blocksRemoved = 0;
    uint64_t constFolded = 0;
    uint64_t dceRemoved = 0;
    uint64_t storesElided = 0;
    uint64_t loadsValueSpeced = 0;
    size_t forkSites = 0;

    /** Every instruction-level edit, in pass order (provenance for
     *  mssp-lint). */
    std::vector<DistillEdit> edits;

    std::string toString() const;
};

/** The distiller's output. */
struct DistilledProgram
{
    /** Distilled code image; entry() is the distilled entry point.
     *  Code lives at DistilledCodeBase and shares the data address
     *  space with the original program. */
    Program prog;

    /** taskMap[i] = original-program PC of fork site i. */
    std::vector<uint32_t> taskMap;

    /** taskIntervals[i] = fork every k-th visit of site i (per-site
     *  task merging so expected task size is uniform across program
     *  phases). */
    std::vector<uint32_t> taskIntervals;

    /** Original fork-site PC -> distilled PC of that block's FORK
     *  (master restart points; includes the program entry). */
    std::map<uint32_t, uint32_t> entryMap;

    /**
     * Indirect-branch translation map: original block-leader PC ->
     * distilled PC, for every surviving block. The master uses it to
     * translate jalr targets that hold *original* code addresses —
     * e.g. a return address seeded from architected state after a
     * restart inside a function, or one reloaded from a committed
     * stack slot. (Standard dynamic-binary-translation machinery.)
     */
    std::map<uint32_t, uint32_t> addrMap;

    /**
     * Checkpoint map: original fork-site PC -> register live-in mask
     * of the task starting there, computed from the original
     * program's CFG liveness. This is the distiller's static claim
     * of task completeness (formal spec, Definition 9): every
     * register a task may read before writing is in the mask.
     * mssp-lint recomputes the live-in sets independently and flags
     * under-approximations as errors (they would guarantee
     * misspeculation if the checkpoint were trusted) and
     * over-approximations as wasted checkpoint bandwidth.
     */
    std::map<uint32_t, RegMask> checkpointRegs;

    /**
     * Speculation-safety metadata: distilled PC of every static load
     * in the image -> its invariance class, stamped by distill() from
     * the store-set analysis (analysis/specsafe.hh) and persisted in
     * the .mdo format (format v3). mssp-lint --specsafe recomputes
     * the classification and rejects images whose persisted classes
     * disagree (docs/LINT.md).
     */
    std::map<uint32_t, LoadSpecClass> loadClasses;

    /**
     * Speculation plan: the candidates the static planner ranked
     * worth value-speculating, in rank order (highest benefit
     * first), stamped by distill() from the value-flow analysis
     * (analysis/specplan.hh) and persisted in the .mdo (format v4).
     * mssp-lint --plan recomputes the plan and rejects images whose
     * persisted candidates disagree (docs/LINT.md).
     */
    std::vector<SpecPlanEntry> specPlan;

    /**
     * Speculated edits: the plan candidates distillSpeculated() baked
     * into the image, in bake order (plan rank order). Empty for
     * images the speculation pass never touched. Persisted as
     * `specedit` lines (.mdo v5) and re-validated by mssp-lint.
     */
    std::vector<SpecEdit> specEdits;

    /** Original load PCs the squash-feedback loop de-speculated
     *  (ascending; .mdo `specdrop` lines). */
    std::vector<uint32_t> specDropped;

    /** Feedback generation that produced this image (0 = one-shot;
     *  .mdo `specgen` line). */
    uint32_t specGeneration = 0;

    /**
     * Distilled PC -> original PC for every emitted body instruction
     * (first word of multi-word expansions). In-memory provenance for
     * the speculation pass; not persisted in the .mdo.
     */
    std::map<uint32_t, uint32_t> pcOrigin;

    DistillReport report;

    /** Distilled PC for restarting the master at original @p pc
     *  (UINT32_MAX when @p pc is not a restart point). */
    uint32_t
    distilledPcFor(uint32_t orig_pc) const
    {
        auto it = entryMap.find(orig_pc);
        return it == entryMap.end() ? UINT32_MAX : it->second;
    }
};

/**
 * Distill @p orig using @p profile.
 *
 * @param orig    the original program (entry at orig.entry())
 * @param profile training-run profile
 * @param opts    tuning knobs
 */
DistilledProgram distill(const Program &orig,
                         const ProfileData &profile,
                         const DistillerOptions &opts);

/**
 * Distill @p orig, then *value-speculate* the result
 * (distill/speculate.cc, DESIGN.md §13): bake every Proven (and,
 * optionally, high-benefit Likely) candidate of the image's
 * speculation plan into a load-immediate, re-run constant folding and
 * DCE over the shortened code, re-place fork boundaries, and stamp
 * fresh metadata. The returned image carries one SpecEdit per baked
 * load. Deterministic: same inputs produce byte-identical images.
 */
DistilledProgram distillSpeculated(const Program &orig,
                                   const ProfileData &profile,
                                   const DistillerOptions &opts,
                                   const SpeculateOptions &sopts);

// Individual passes, exposed for unit testing and ablation ------------

/** Pass 1: hard-wire heavily biased branches. */
void passBranchPrune(DistillIr &ir, const ProfileData &profile,
                     const DistillerOptions &opts,
                     DistillReport &report);

/** Pass 2: kill blocks unreachable from the entry. */
void passUnreachableElim(DistillIr &ir, DistillReport &report);

/** Pass 3: block-local constant propagation and folding. */
void passConstFold(DistillIr &ir, DistillReport &report);

/** Pass 4: remove dead pure instructions (global liveness). */
void passDce(DistillIr &ir, DistillReport &report);

/** Pass 5: drop stores that are almost always silent. */
void passSilentStoreElim(DistillIr &ir, const ProfileData &profile,
                         const DistillerOptions &opts,
                         DistillReport &report);

/** Pass 6: replace invariant loads with constants (see
 *  DistillerOptions::enableValueSpec). @p orig supplies the image for
 *  the safe (link-time) form. */
void passValueSpec(DistillIr &ir, const ProfileData &profile,
                   const DistillerOptions &opts, const Program &orig,
                   DistillReport &report);

/** Pass 7a: mark fork sites (entry is always included).
 *  @p intervals is parallel to @p sites (empty = all ones). */
void passMarkForkSites(DistillIr &ir,
                       const std::vector<uint32_t> &sites,
                       const std::vector<uint32_t> &intervals,
                       DistillReport &report);

/** Pass 7b: lay out the IR as a binary and build the maps. */
DistilledProgram layout(const DistillIr &ir, DistillReport report);

// Shared pipeline stages (distill() and distillSpeculated()) ----------

/** Passes 1–6 in pipeline order on @p ir, honouring @p opts.
 *  @p orig supplies the image for the safe value-spec form. */
void runDistillPasses(DistillIr &ir, const ProfileData &profile,
                      const DistillerOptions &opts,
                      const Program &orig, DistillReport &report);

/** The metadata tail of distill(): stamp checkpoint masks, per-edit
 *  region/live-out metadata, load classes and the speculation plan
 *  onto the laid-out @p out. @p cfg is the original program's CFG. */
void finalizeDistilled(DistilledProgram &out, const Program &orig,
                       const Cfg &cfg);

} // namespace mssp

#endif // MSSP_DISTILL_DISTILLER_HH

/**
 * @file
 * The distiller's intermediate representation.
 *
 * Distillation is a binary-to-binary translation: the original CFG is
 * lifted into an IR of blocks with symbolic successors, transformed by
 * profile-guided passes (some semantics-preserving, some deliberately
 * approximate — that is the point of MSSP), and laid out as a new
 * binary at DistilledCodeBase with a task map and an entry map.
 */

#ifndef MSSP_DISTILL_IR_HH
#define MSSP_DISTILL_IR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cfg/cfg.hh"
#include "isa/isa.hh"

namespace mssp
{

/** A body instruction in the IR. */
struct IrInst
{
    enum class Kind : uint8_t
    {
        Normal,    ///< a real instruction (inst field)
        LoadImm,   ///< rd = immValue (expands to 1-2 words at layout)
    };

    Kind kind = Kind::Normal;
    Instruction inst;          ///< valid for Normal
    uint8_t rd = 0;            ///< valid for LoadImm
    uint32_t immValue = 0;     ///< valid for LoadImm
    uint32_t origPc = UINT32_MAX;  ///< original PC, if any

    static IrInst
    normal(const Instruction &inst, uint32_t orig_pc)
    {
        IrInst i;
        i.inst = inst;
        i.origPc = orig_pc;
        return i;
    }

    static IrInst
    loadImm(uint8_t rd, uint32_t value, uint32_t orig_pc)
    {
        IrInst i;
        i.kind = Kind::LoadImm;
        i.rd = rd;
        i.immValue = value;
        i.origPc = orig_pc;
        return i;
    }

    /** Destination register (0 when none). */
    uint8_t
    destReg() const
    {
        if (kind == Kind::LoadImm)
            return rd;
        return writesReg(inst) ? inst.rd : 0;
    }

    /** Number of encoded words at layout time. */
    uint32_t
    sizeWords() const
    {
        if (kind != Kind::LoadImm)
            return 1;
        auto v = static_cast<int32_t>(immValue);
        if (v >= -32768 && v <= 32767)
            return 1;
        if ((immValue & 0xffffu) == 0)
            return 1;
        return 2;
    }
};

/** An IR basic block. */
struct IrBlock
{
    int id = -1;
    uint32_t origStart = 0;
    std::vector<IrInst> body;       ///< straight-line, non-control

    TermKind term = TermKind::FallThrough;
    Instruction termInst;           ///< branch/jal/jalr/halt instruction
    uint32_t termOrigPc = UINT32_MAX;
    int takenTarget = -1;           ///< block id (CondBranch/Jump)
    int fallthrough = -1;           ///< block id
    bool isCall = false;            ///< jal with rd != 0

    bool forkSite = false;
    int taskMapIndex = -1;
    uint32_t forkSiteInterval = 1;

    uint64_t execCount = 0;         ///< profile visits of origStart
    bool alive = true;

    /** Successor block ids for dataflow (calls include the callee). */
    std::vector<int>
    succIds() const
    {
        std::vector<int> out;
        switch (term) {
          case TermKind::FallThrough:
            if (fallthrough >= 0)
                out.push_back(fallthrough);
            break;
          case TermKind::CondBranch:
            if (takenTarget >= 0)
                out.push_back(takenTarget);
            if (fallthrough >= 0 && fallthrough != takenTarget)
                out.push_back(fallthrough);
            break;
          case TermKind::Jump:
            if (takenTarget >= 0)
                out.push_back(takenTarget);
            // Call-return edge (see Cfg::build).
            if (isCall && fallthrough >= 0)
                out.push_back(fallthrough);
            break;
          default:
            break;
        }
        return out;
    }
};

/** The whole-program IR. */
class DistillIr
{
  public:
    /** Lift a CFG (plus profile block counts) into IR form. */
    static DistillIr build(const Cfg &cfg,
                           const class ProfileData *profile);

    std::vector<IrBlock> &blocks() { return blocks_; }
    const std::vector<IrBlock> &blocks() const { return blocks_; }

    IrBlock &block(int id) { return blocks_[static_cast<size_t>(id)]; }
    const IrBlock &
    block(int id) const
    {
        return blocks_[static_cast<size_t>(id)];
    }

    int entryBlock() const { return entry_block_; }

    /** Block id whose origStart == @p pc, or -1. */
    int
    blockOfOrigPc(uint32_t pc) const
    {
        auto it = by_orig_pc_.find(pc);
        return it == by_orig_pc_.end() ? -1 : it->second;
    }

    /** Count of alive body+terminator instructions. */
    size_t numAliveInsts() const;

    std::string toString() const;

  private:
    std::vector<IrBlock> blocks_;
    std::map<uint32_t, int> by_orig_pc_;
    int entry_block_ = -1;
};

/** IR-level global register liveness (same rules as the CFG pass). */
std::vector<BlockLiveness> computeIrLiveness(const DistillIr &ir);

/** def/use of an IrInst. */
void irInstDefUse(const IrInst &inst, RegMask &def, RegMask &use);

} // namespace mssp

#endif // MSSP_DISTILL_IR_HH

/**
 * @file
 * Distiller transformation passes (see distiller.hh for the pipeline).
 */

#include <deque>
#include <optional>

#include "distill/distiller.hh"
#include "exec/executor.hh"
#include "sim/logging.hh"

namespace mssp
{

void
passBranchPrune(DistillIr &ir, const ProfileData &profile,
                const DistillerOptions &opts, DistillReport &report)
{
    for (IrBlock &blk : ir.blocks()) {
        if (!blk.alive || blk.term != TermKind::CondBranch)
            continue;
        const BranchProfile *bp = profile.branchAt(blk.termOrigPc);
        if (!bp || bp->total < opts.minBranchSamples)
            continue;
        double bias = bp->bias();
        uint64_t taken = bp->taken;
        uint64_t not_taken = bp->total - bp->taken;

        // A direction is prunable when it was never observed in
        // training, or when the θ knob admits its rareness (the
        // default θ = 1.0 reduces to never-observed-only, which
        // cannot remove loop exits that training exercised).
        bool prune_fall = not_taken == 0 ||
                          bias >= opts.biasThreshold;
        bool prune_taken = taken == 0 ||
                           bias <= 1.0 - opts.biasThreshold;

        if (prune_fall) {
            // Never emit a backward unconditional jump: hard-wiring a
            // loop-continue branch would trap the master in the loop
            // with no exit, guaranteeing divergence at loop end for a
            // one-instruction saving.
            const IrBlock &target = ir.block(blk.takenTarget);
            if (target.origStart <= blk.origStart)
                continue;
            blk.term = TermKind::Jump;
            blk.termInst = makeJ(Opcode::Jal, reg::Zero, 0);
            blk.fallthrough = -1;
            ++report.branchesToJump;
            report.edits.push_back({DistillEdit::Pass::BranchPrune,
                                    blk.termOrigPc, 0, true, 1});
        } else if (prune_taken) {
            // Hard-wire not-taken: branch disappears entirely.
            blk.term = TermKind::FallThrough;
            blk.termInst = Instruction{};
            blk.takenTarget = -1;
            ++report.branchesToFall;
            report.edits.push_back({DistillEdit::Pass::BranchPrune,
                                    blk.termOrigPc, 0, true, 0});
        }
    }
}

void
passUnreachableElim(DistillIr &ir, DistillReport &report)
{
    std::vector<bool> reachable(ir.blocks().size(), false);
    std::deque<int> work{ir.entryBlock()};
    reachable[static_cast<size_t>(ir.entryBlock())] = true;
    while (!work.empty()) {
        int id = work.front();
        work.pop_front();
        const IrBlock &blk = ir.block(id);
        // succIds() includes call-return edges, keeping callers'
        // continuations reachable.
        for (int s : blk.succIds()) {
            if (!reachable[static_cast<size_t>(s)]) {
                reachable[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
    for (IrBlock &blk : ir.blocks()) {
        if (blk.alive && !reachable[static_cast<size_t>(blk.id)]) {
            blk.alive = false;
            ++report.blocksRemoved;
            report.edits.push_back(
                {DistillEdit::Pass::UnreachableElim, blk.origStart,
                 0});
        }
    }
}

namespace
{

/** ExecContext view over a constant lattice for in-block folding. */
class ConstEvalContext final : public ExecContext
{
  public:
    std::optional<uint32_t> regs[NumRegs];

    bool
    known(unsigned r) const
    {
        return r == 0 || regs[r].has_value();
    }

    uint32_t readReg(unsigned r) override { return *regs[r]; }
    void writeReg(unsigned r, uint32_t v) override { regs[r] = v; }
    uint32_t readMem(uint32_t) override
    {
        panic("const folder must not read memory");
    }
    void writeMem(uint32_t, uint32_t) override
    {
        panic("const folder must not write memory");
    }
    uint32_t fetch(uint32_t) override
    {
        panic("const folder must not fetch");
    }
    void output(uint16_t, uint32_t) override {}
};

/** @return true when @p op is a pure ALU computation. */
bool
isPureAlu(Opcode op)
{
    uint32_t dummy;
    return evalAlu(op, 0, 1, dummy);
}

} // anonymous namespace

void
passConstFold(DistillIr &ir, DistillReport &report)
{
    for (IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        ConstEvalContext lattice;

        for (IrInst &iinst : blk.body) {
            if (iinst.kind == IrInst::Kind::LoadImm) {
                lattice.regs[iinst.rd] = iinst.immValue;
                continue;
            }
            const Instruction &inst = iinst.inst;
            uint8_t dest = iinst.destReg();

            if (isPureAlu(inst.op) && dest != 0) {
                uint8_t srcs[2];
                unsigned n = sourceRegs(inst, srcs);
                bool all_known = true;
                for (unsigned i = 0; i < n; ++i)
                    all_known &= lattice.known(srcs[i]);
                if (all_known) {
                    // Evaluate with the shared semantics.
                    ConstEvalContext eval = lattice;
                    for (unsigned i = 0; i < n; ++i) {
                        if (srcs[i] && !eval.regs[srcs[i]])
                            eval.regs[srcs[i]] = 0;
                    }
                    if (!eval.regs[0])
                        eval.regs[0] = 0;   // r0 reads as zero
                    StepResult res = executeDecoded(0, inst, eval);
                    MSSP_ASSERT(res.status == StepStatus::Ok);
                    uint32_t value = *eval.regs[dest];
                    bool was_trivial =
                        iinst.kind == IrInst::Kind::Normal &&
                        ((inst.op == Opcode::Addi &&
                          inst.rs1 == 0) ||
                         inst.op == Opcode::Lui);
                    iinst = IrInst::loadImm(dest, value, iinst.origPc);
                    lattice.regs[dest] = value;
                    if (!was_trivial) {
                        ++report.constFolded;
                        report.edits.push_back(
                            {DistillEdit::Pass::ConstFold,
                             iinst.origPc, dest, true, value});
                    }
                    continue;
                }
            }

            // Not foldable: update the lattice conservatively.
            if (dest != 0)
                lattice.regs[dest] = std::nullopt;
        }

        // Fold a conditional branch whose operands are block-local
        // constants (this is semantics-preserving, unlike pruning).
        if (blk.term == TermKind::CondBranch &&
            lattice.known(blk.termInst.rs1) &&
            lattice.known(blk.termInst.rs2)) {
            ConstEvalContext eval = lattice;
            if (!eval.regs[0])
                eval.regs[0] = 0;
            StepResult res = executeDecoded(0, blk.termInst, eval);
            report.edits.push_back({DistillEdit::Pass::ConstFold,
                                    blk.termOrigPc, 0, true,
                                    res.branchTaken ? 1u : 0u});
            if (res.branchTaken) {
                blk.term = TermKind::Jump;
                blk.termInst = makeJ(Opcode::Jal, reg::Zero, 0);
                blk.fallthrough = -1;
            } else {
                blk.term = TermKind::FallThrough;
                blk.termInst = Instruction{};
                blk.takenTarget = -1;
            }
            ++report.constFolded;
        }
    }
}

void
passDce(DistillIr &ir, DistillReport &report)
{
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<BlockLiveness> live = computeIrLiveness(ir);
        for (IrBlock &blk : ir.blocks()) {
            if (!blk.alive)
                continue;
            RegMask after = live[static_cast<size_t>(blk.id)].liveOut;
            // Terminator consumes registers first (walking backward).
            if (blk.term == TermKind::CondBranch ||
                blk.term == TermKind::IndirectJump) {
                RegMask def, use;
                instDefUse(blk.termInst, def, use);
                after = (after & ~def) | use;
            } else if (blk.term == TermKind::Jump &&
                       blk.termInst.rd != 0) {
                after &= ~(1u << blk.termInst.rd);
            }

            // Backward in-block sweep; mark dead pure instructions.
            std::vector<bool> dead(blk.body.size(), false);
            for (size_t i = blk.body.size(); i-- > 0;) {
                const IrInst &iinst = blk.body[i];
                RegMask def, use;
                irInstDefUse(iinst, def, use);
                bool pure =
                    iinst.kind == IrInst::Kind::LoadImm ||
                    isPureAlu(iinst.inst.op) ||
                    iinst.inst.op == Opcode::Lw ||
                    iinst.inst.op == Opcode::Nop;
                uint8_t dest = iinst.destReg();
                if (pure && (dest == 0 ||
                             (after & (1u << dest)) == 0)) {
                    dead[i] = true;
                    report.edits.push_back(
                        {DistillEdit::Pass::Dce, iinst.origPc, dest});
                    continue;   // does not affect liveness
                }
                after = (after & ~def) | use;
            }

            size_t w = 0;
            for (size_t i = 0; i < blk.body.size(); ++i) {
                if (!dead[i])
                    blk.body[w++] = blk.body[i];
            }
            if (w != blk.body.size()) {
                report.dceRemoved += blk.body.size() - w;
                blk.body.resize(w);
                changed = true;
            }
        }
    }
}

void
passSilentStoreElim(DistillIr &ir, const ProfileData &profile,
                    const DistillerOptions &opts, DistillReport &report)
{
    for (IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        size_t w = 0;
        for (size_t i = 0; i < blk.body.size(); ++i) {
            const IrInst &iinst = blk.body[i];
            bool drop = false;
            if (iinst.kind == IrInst::Kind::Normal &&
                iinst.inst.op == Opcode::Sw) {
                const StoreProfile *sp = profile.storeAt(iinst.origPc);
                if (sp && sp->count >= opts.minMemSamples &&
                    sp->silentRatio() >= opts.silentStoreThreshold) {
                    drop = true;
                    ++report.storesElided;
                    report.edits.push_back(
                        {DistillEdit::Pass::SilentStoreElim,
                         iinst.origPc, 0});
                }
            }
            if (!drop)
                blk.body[w++] = blk.body[i];
        }
        blk.body.resize(w);
    }
}

void
passValueSpec(DistillIr &ir, const ProfileData &profile,
              const DistillerOptions &opts, const Program &orig,
              DistillReport &report)
{
    for (IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        for (IrInst &iinst : blk.body) {
            if (iinst.kind != IrInst::Kind::Normal ||
                iinst.inst.op != Opcode::Lw || iinst.inst.rd == 0) {
                continue;
            }
            const LoadProfile *lp = profile.loadAt(iinst.origPc);
            if (!lp || lp->count < opts.minMemSamples)
                continue;

            // Safe form: address-invariant load from a never-written
            // location — take the value from the image being
            // distilled (not the training run).
            if (lp->addrInvariance() >= opts.valueSpecThreshold &&
                !profile.wasWritten(lp->firstAddr)) {
                uint8_t rd = iinst.inst.rd;
                uint32_t value = orig.word(lp->firstAddr);
                iinst = IrInst::loadImm(rd, value, iinst.origPc);
                ++report.loadsValueSpeced;
                report.edits.push_back({DistillEdit::Pass::ValueSpec,
                                        iinst.origPc, rd, true,
                                        value});
                continue;
            }

            // Risky form: bake in the training-run value.
            if (opts.valueSpecFromProfile &&
                lp->invariance() >= opts.valueSpecThreshold) {
                uint8_t rd = iinst.inst.rd;
                iinst = IrInst::loadImm(rd, lp->firstValue,
                                        iinst.origPc);
                ++report.loadsValueSpeced;
                report.edits.push_back({DistillEdit::Pass::ValueSpec,
                                        iinst.origPc, rd, true,
                                        lp->firstValue});
            }
        }
    }
}

void
passMarkForkSites(DistillIr &ir, const std::vector<uint32_t> &sites,
                  const std::vector<uint32_t> &intervals,
                  DistillReport &report)
{
    int next_index = 0;
    auto mark = [&](int id, uint32_t interval) {
        IrBlock &blk = ir.block(id);
        if (!blk.alive || blk.forkSite)
            return;
        blk.forkSite = true;
        blk.forkSiteInterval = interval ? interval : 1;
        blk.taskMapIndex = next_index++;
    };

    // The entry is always a fork site: the first task a restarted (or
    // freshly started) master spawns must begin exactly at the
    // architected PC, and program start is architected PC zero-time.
    mark(ir.entryBlock(), 1);
    for (size_t i = 0; i < sites.size(); ++i) {
        int id = ir.blockOfOrigPc(sites[i]);
        if (id >= 0)
            mark(id, i < intervals.size() ? intervals[i] : 1);
    }
    report.forkSites = static_cast<size_t>(next_index);
}

const char *
distillPassName(DistillEdit::Pass pass)
{
    switch (pass) {
      case DistillEdit::Pass::BranchPrune: return "branch-prune";
      case DistillEdit::Pass::UnreachableElim: return "unreachable";
      case DistillEdit::Pass::ConstFold: return "const-fold";
      case DistillEdit::Pass::Dce: return "dce";
      case DistillEdit::Pass::SilentStoreElim: return "silent-store";
      case DistillEdit::Pass::ValueSpec: return "value-spec";
    }
    return "?";
}

bool
distillPassFromName(const std::string &name, DistillEdit::Pass &pass)
{
    static constexpr DistillEdit::Pass kAll[] = {
        DistillEdit::Pass::BranchPrune,
        DistillEdit::Pass::UnreachableElim,
        DistillEdit::Pass::ConstFold,
        DistillEdit::Pass::Dce,
        DistillEdit::Pass::SilentStoreElim,
        DistillEdit::Pass::ValueSpec,
    };
    for (DistillEdit::Pass p : kAll) {
        if (name == distillPassName(p)) {
            pass = p;
            return true;
        }
    }
    return false;
}

const char *
loadSpecClassName(LoadSpecClass cls)
{
    switch (cls) {
      case LoadSpecClass::ProvablyInvariant:
        return "provably-invariant";
      case LoadSpecClass::RegionInvariant:
        return "region-invariant";
      case LoadSpecClass::Risky:
        return "risky";
    }
    return "?";
}

bool
loadSpecClassFromName(const std::string &name, LoadSpecClass &cls)
{
    static constexpr LoadSpecClass kAll[] = {
        LoadSpecClass::ProvablyInvariant,
        LoadSpecClass::RegionInvariant,
        LoadSpecClass::Risky,
    };
    for (LoadSpecClass c : kAll) {
        if (name == loadSpecClassName(c)) {
            cls = c;
            return true;
        }
    }
    return false;
}

const char *
valueProofName(ValueProof proof)
{
    switch (proof) {
      case ValueProof::Proven: return "proven";
      case ValueProof::Likely: return "likely";
    }
    return "?";
}

bool
valueProofFromName(const std::string &name, ValueProof &proof)
{
    static constexpr ValueProof kAll[] = {
        ValueProof::Proven,
        ValueProof::Likely,
    };
    for (ValueProof p : kAll) {
        if (name == valueProofName(p)) {
            proof = p;
            return true;
        }
    }
    return false;
}

bool
distillPassIsApproximate(DistillEdit::Pass pass)
{
    switch (pass) {
      case DistillEdit::Pass::BranchPrune:
      case DistillEdit::Pass::SilentStoreElim:
      case DistillEdit::Pass::ValueSpec:
        return true;
      case DistillEdit::Pass::UnreachableElim:
      case DistillEdit::Pass::ConstFold:
      case DistillEdit::Pass::Dce:
        return false;
    }
    return false;
}

std::string
DistillReport::toString() const
{
    return strfmt(
        "static insts: %zu -> %zu (%.1f%%)\n"
        "branches pruned: %llu to-jump, %llu to-fallthrough\n"
        "blocks removed: %llu\n"
        "const-folded: %llu, dce-removed: %llu\n"
        "stores elided: %llu, loads value-speculated: %llu\n"
        "fork sites: %zu\n",
        origStaticInsts, distilledStaticInsts,
        origStaticInsts
            ? 100.0 * static_cast<double>(distilledStaticInsts) /
                  static_cast<double>(origStaticInsts)
            : 0.0,
        static_cast<unsigned long long>(branchesToJump),
        static_cast<unsigned long long>(branchesToFall),
        static_cast<unsigned long long>(blocksRemoved),
        static_cast<unsigned long long>(constFolded),
        static_cast<unsigned long long>(dceRemoved),
        static_cast<unsigned long long>(storesElided),
        static_cast<unsigned long long>(loadsValueSpeced),
        forkSites);
}

} // namespace mssp

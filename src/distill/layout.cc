/**
 * @file
 * Distilled-code layout and relinking.
 *
 * Orders the surviving IR blocks, decides jump elisions, assigns
 * addresses at DistilledCodeBase, emits encoded words with relocated
 * branch/jump targets, and builds the task map (fork index -> original
 * PC) and entry map (original fork-site PC -> distilled PC).
 */

#include "analysis/liveness.hh"
#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "distill/distiller.hh"
#include "sim/logging.hh"

namespace mssp
{

namespace
{

/** Per-block layout decisions. */
struct BlockLayout
{
    uint32_t addr = 0;
    uint32_t size = 0;
    bool elideTermJump = false;   ///< fallthrough/jump to next block
};

/** Words needed to materialize a 32-bit constant (addi/lui[+ori]). */
uint32_t
loadImmSize(uint32_t value)
{
    auto v = static_cast<int32_t>(value);
    if (v >= -32768 && v <= 32767)
        return 1;
    if ((value & 0xffffu) == 0)
        return 1;
    return 2;
}

uint32_t
termSize(const IrBlock &blk, bool elide)
{
    switch (blk.term) {
      case TermKind::FallThrough:
        return elide ? 0 : 1;
      case TermKind::Jump:
        // Calls materialize the *original* return address into the
        // link register so that master register state stays
        // consistent with architected state (returns go through the
        // indirect-target address map).
        if (blk.isCall && blk.termInst.rd != 0)
            return loadImmSize(blk.termOrigPc + 1) + 1;
        return elide ? 0 : 1;
      case TermKind::CondBranch:
        return elide ? 1 : 2;   // branch [+ jump to fallthrough]
      case TermKind::IndirectJump:
      case TermKind::Halt:
        return 1;
      case TermKind::Fault:
        return 1;   // one illegal word
    }
    return 1;
}

} // anonymous namespace

DistilledProgram
layout(const DistillIr &ir, DistillReport report)
{
    DistilledProgram out;

    // Order: entry block first, then remaining alive blocks in
    // original address order (keeps natural fallthrough chains).
    std::vector<int> order;
    order.push_back(ir.entryBlock());
    for (const IrBlock &blk : ir.blocks()) {
        if (blk.alive && blk.id != ir.entryBlock())
            order.push_back(blk.id);
    }

    // Decide elisions and sizes, then assign addresses.
    std::vector<BlockLayout> bl(ir.blocks().size());
    for (size_t i = 0; i < order.size(); ++i) {
        const IrBlock &blk = ir.block(order[i]);
        BlockLayout &l = bl[static_cast<size_t>(blk.id)];
        int next = i + 1 < order.size() ? order[i + 1] : -1;
        switch (blk.term) {
          case TermKind::FallThrough:
            l.elideTermJump = blk.fallthrough == next;
            break;
          case TermKind::Jump:
            l.elideTermJump = !blk.isCall && blk.takenTarget == next &&
                              blk.termInst.rd == 0;
            break;
          case TermKind::CondBranch:
            l.elideTermJump = blk.fallthrough == next;
            break;
          default:
            break;
        }
        l.size = (blk.forkSite ? 1 : 0) + termSize(blk, l.elideTermJump);
        for (const IrInst &iinst : blk.body)
            l.size += iinst.sizeWords();
    }
    uint32_t addr = DistilledCodeBase;
    for (int id : order) {
        bl[static_cast<size_t>(id)].addr = addr;
        addr += bl[static_cast<size_t>(id)].size;
    }

    auto addr_of = [&](int id) {
        MSSP_ASSERT(id >= 0 && ir.block(id).alive);
        return bl[static_cast<size_t>(id)].addr;
    };

    // Emission.
    uint32_t emitted_words = 0;
    for (int id : order) {
        const IrBlock &blk = ir.block(id);
        const BlockLayout &l = bl[static_cast<size_t>(id)];
        uint32_t pc = l.addr;

        auto emit = [&](const Instruction &inst) {
            out.prog.setWord(pc++, encode(inst));
            ++emitted_words;
        };

        out.addrMap[blk.origStart] = l.addr;
        if (blk.forkSite) {
            emit(makeJ(Opcode::Fork, 0, blk.taskMapIndex));
            if (static_cast<size_t>(blk.taskMapIndex) >=
                out.taskMap.size()) {
                out.taskMap.resize(
                    static_cast<size_t>(blk.taskMapIndex) + 1);
                out.taskIntervals.resize(
                    static_cast<size_t>(blk.taskMapIndex) + 1, 1);
            }
            out.taskMap[static_cast<size_t>(blk.taskMapIndex)] =
                blk.origStart;
            out.taskIntervals[static_cast<size_t>(blk.taskMapIndex)] =
                blk.forkSiteInterval;
            out.entryMap[blk.origStart] = l.addr;
        }

        for (const IrInst &iinst : blk.body) {
            out.pcOrigin[pc] = iinst.origPc;
            if (iinst.kind == IrInst::Kind::Normal) {
                emit(iinst.inst);
                continue;
            }
            // LoadImm expansion, mirroring IrInst::sizeWords().
            auto v = static_cast<int32_t>(iinst.immValue);
            if (v >= -32768 && v <= 32767) {
                emit(makeI(Opcode::Addi, iinst.rd, reg::Zero, v));
            } else if ((iinst.immValue & 0xffffu) == 0) {
                emit(makeI(Opcode::Lui, iinst.rd, 0,
                           static_cast<int32_t>(iinst.immValue >> 16)));
            } else {
                emit(makeI(Opcode::Lui, iinst.rd, 0,
                           static_cast<int32_t>(iinst.immValue >> 16)));
                emit(makeI(Opcode::Ori, iinst.rd, iinst.rd,
                           static_cast<int32_t>(iinst.immValue &
                                                0xffffu)));
            }
        }

        switch (blk.term) {
          case TermKind::FallThrough:
            if (!l.elideTermJump) {
                int32_t off = static_cast<int32_t>(
                    addr_of(blk.fallthrough) - (pc + 1));
                emit(makeJ(Opcode::Jal, reg::Zero, off));
            }
            break;
          case TermKind::Jump: {
            if (blk.isCall && blk.termInst.rd != 0) {
                uint32_t ret_addr = blk.termOrigPc + 1;
                auto v = static_cast<int32_t>(ret_addr);
                if (v >= -32768 && v <= 32767) {
                    emit(makeI(Opcode::Addi, blk.termInst.rd,
                               reg::Zero, v));
                } else if ((ret_addr & 0xffffu) == 0) {
                    emit(makeI(Opcode::Lui, blk.termInst.rd, 0,
                               static_cast<int32_t>(ret_addr >> 16)));
                } else {
                    emit(makeI(Opcode::Lui, blk.termInst.rd, 0,
                               static_cast<int32_t>(ret_addr >> 16)));
                    emit(makeI(Opcode::Ori, blk.termInst.rd,
                               blk.termInst.rd,
                               static_cast<int32_t>(ret_addr &
                                                    0xffffu)));
                }
                int32_t off = static_cast<int32_t>(
                    addr_of(blk.takenTarget) - (pc + 1));
                emit(makeJ(Opcode::Jal, reg::Zero, off));
                break;
            }
            if (!l.elideTermJump) {
                int32_t off = static_cast<int32_t>(
                    addr_of(blk.takenTarget) - (pc + 1));
                emit(makeJ(Opcode::Jal, blk.termInst.rd, off));
            }
            break;
          }
          case TermKind::CondBranch: {
            Instruction br = blk.termInst;
            br.imm = static_cast<int32_t>(addr_of(blk.takenTarget) -
                                          (pc + 1));
            emit(br);
            if (!l.elideTermJump) {
                int32_t off = static_cast<int32_t>(
                    addr_of(blk.fallthrough) - (pc + 1));
                emit(makeJ(Opcode::Jal, reg::Zero, off));
            }
            break;
          }
          case TermKind::IndirectJump:
            emit(blk.termInst);
            break;
          case TermKind::Halt:
            emit(makeN(Opcode::Halt));
            break;
          case TermKind::Fault:
            out.prog.setWord(pc++, 0);   // illegal word
            ++emitted_words;
            break;
        }
        MSSP_ASSERT(pc == l.addr + l.size);
    }

    out.prog.setEntry(addr_of(ir.entryBlock()));
    report.distilledStaticInsts = emitted_words;
    out.report = report;
    return out;
}

void
runDistillPasses(DistillIr &ir, const ProfileData &profile,
                 const DistillerOptions &opts, const Program &orig,
                 DistillReport &report)
{
    if (opts.enableBranchPrune)
        passBranchPrune(ir, profile, opts, report);
    passUnreachableElim(ir, report);
    if (opts.enableConstFold)
        passConstFold(ir, report);
    if (opts.enableDce)
        passDce(ir, report);
    if (opts.enableSilentStoreElim)
        passSilentStoreElim(ir, profile, opts, report);
    if (opts.enableValueSpec) {
        passValueSpec(ir, profile, opts, orig, report);
        // Value speculation exposes new constants and dead code.
        if (opts.enableConstFold)
            passConstFold(ir, report);
        if (opts.enableDce)
            passDce(ir, report);
    }
}

void
finalizeDistilled(DistilledProgram &out, const Program &orig,
                  const Cfg &cfg)
{
    // Checkpoint map: the register live-in mask of every task, from
    // the *original* program's liveness (the task runs original
    // code). This is the distiller's static completeness claim; see
    // DistilledProgram::checkpointRegs and mssp-lint's checks.
    std::map<uint32_t, BlockLiveness> live = computeLiveness(cfg);
    for (uint32_t orig_pc : out.taskMap) {
        auto it = live.find(orig_pc);
        out.checkpointRegs[orig_pc] = it != live.end()
                                          ? it->second.liveIn
                                          : analysis::AllRegsMask;
    }

    // Stamp every edit with its original region (containing block
    // leader) and that block's live-out mask, the anchor the semantic
    // translation validator proves live-out consistency against.
    for (DistillEdit &e : out.report.edits) {
        auto blk_it = cfg.blocks().upper_bound(e.origPc);
        if (blk_it == cfg.blocks().begin())
            continue;
        --blk_it;
        if (e.origPc >= blk_it->second.endPc())
            continue;
        e.regionStart = blk_it->second.start;
        auto live_it = live.find(e.regionStart);
        e.liveOut = live_it != live.end() ? live_it->second.liveOut
                                          : analysis::AllRegsMask;
    }

    // Speculation-safety metadata: classify every static load of the
    // finished image (analysis/specsafe.hh) so consumers — the value
    // speculation planner, mssp-lint --specsafe, the crossval dynamic
    // gate — agree on one persisted classification.
    for (const analysis::LoadClassification &c :
         analysis::classifySpecLoads(orig, out)) {
        out.loadClasses[c.pc] = c.cls;
    }

    // Speculation plan: the ranked value-speculation candidates from
    // the value-flow analysis (analysis/specplan.hh), persisted in
    // rank order. mssp-lint --plan revalidates them and crossval
    // falsifies the Proven predictions dynamically.
    out.specPlan.clear();
    for (const analysis::SpecPlanCandidate &c :
         analysis::planSpeculation(orig, out)) {
        out.specPlan.push_back(c.toEntry());
    }
}

DistilledProgram
distill(const Program &orig, const ProfileData &profile,
        const DistillerOptions &opts)
{
    Cfg cfg = Cfg::build(orig, orig.entry());
    DistillIr ir = DistillIr::build(cfg, &profile);

    DistillReport report;
    report.origStaticInsts = cfg.numInsts();

    runDistillPasses(ir, profile, opts, orig, report);

    std::vector<uint32_t> sites = opts.explicitForkSites;
    std::vector<uint32_t> intervals;
    if (sites.empty()) {
        ForkSelection sel =
            selectForkSites(cfg, profile, opts.forkSelect);
        sites = sel.sites;
        intervals = sel.intervals;
    }
    passMarkForkSites(ir, sites, intervals, report);

    DistilledProgram out = layout(ir, report);
    finalizeDistilled(out, orig, cfg);
    return out;
}

} // namespace mssp

/**
 * @file
 * The value-speculating distiller pass (DESIGN.md §13).
 *
 * distill() stamps every image with a ranked speculation plan
 * (analysis/specplan.hh) but leaves the candidate loads in place;
 * distillSpeculated() consumes that plan and *bakes* the predicted
 * values in: each selected candidate's load becomes a load-immediate
 * of the predicted constant, constant folding and DCE re-run over the
 * now-shorter code (the address-computation chains feeding the baked
 * loads usually die, which is where the master's retired-instruction
 * win comes from), and the image is laid out and finalized afresh.
 *
 * Every baked load is recorded as a SpecEdit carrying the distilled
 * PC of the baked constant (so mssp-lint can decode the image word
 * and catch tampering), the predicted value and proof strength (so
 * eval/crossval can falsify it against a SEQ replay of the original
 * program), and the policing fork sites — the sites whose verify
 * tasks would squash if the prediction is wrong, which is what the
 * online adaptation loop (eval/adapt.hh) keys de-speculation on.
 *
 * Determinism: the pass is a pure function of (orig, profile, opts,
 * sopts); repeated runs produce byte-identical images and .mdo files.
 */

#include <algorithm>

#include "analysis/specplan.hh"
#include "analysis/specsafe.hh"
#include "analysis/valueflow.hh"
#include "distill/distiller.hh"
#include "sim/logging.hh"

namespace mssp
{

namespace
{

/** The still-intact load instruction with original PC @p orig_pc,
 *  or null when no alive block carries it. */
IrInst *
findLoad(DistillIr &ir, uint32_t orig_pc)
{
    for (IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        for (IrInst &iinst : blk.body) {
            if (iinst.kind == IrInst::Kind::Normal &&
                iinst.inst.op == Opcode::Lw &&
                iinst.origPc == orig_pc) {
                return &iinst;
            }
        }
    }
    return nullptr;
}

} // anonymous namespace

DistilledProgram
distillSpeculated(const Program &orig, const ProfileData &profile,
                  const DistillerOptions &opts,
                  const SpeculateOptions &sopts)
{
    Cfg cfg = Cfg::build(orig, orig.entry());
    DistillIr ir = DistillIr::build(cfg, &profile);

    DistillReport report;
    report.origStaticInsts = cfg.numInsts();

    runDistillPasses(ir, profile, opts, orig, report);

    std::vector<uint32_t> sites = opts.explicitForkSites;
    std::vector<uint32_t> intervals;
    if (sites.empty()) {
        ForkSelection sel =
            selectForkSites(cfg, profile, opts.forkSelect);
        sites = sel.sites;
        intervals = sel.intervals;
    }
    passMarkForkSites(ir, sites, intervals, report);

    // The un-speculated baseline: its plan picks the candidates, its
    // pcOrigin maps them back to original loads, its region masks
    // decide which fork sites police each bake.
    DistilledProgram base = layout(ir, report);
    finalizeDistilled(base, orig, cfg);

    std::vector<analysis::SpecPlanCandidate> cands =
        analysis::planSpeculation(orig, base);

    std::vector<uint32_t> dropped = sopts.despeculated;
    std::sort(dropped.begin(), dropped.end());
    dropped.erase(std::unique(dropped.begin(), dropped.end()),
                  dropped.end());

    // Fork-region in-state at every fork site's distilled block: a
    // site polices a bake when the regions the load executes in can
    // flow into the site's FORK, i.e. when the site's verify task is
    // the one that squashes on a wrong prediction.
    analysis::ValueFlowResult vf = analysis::analyzeValueFlow(
        orig, base, analysis::classifySpecLoads(orig, base));

    std::vector<SpecEdit> edits;
    for (const analysis::SpecPlanCandidate &c : cands) {
        if (c.proof == ValueProof::Likely &&
            (!sopts.bakeLikely ||
             c.benefitMicro < sopts.minLikelyBenefitMicro)) {
            continue;
        }
        auto oit = base.pcOrigin.find(c.pc);
        if (oit == base.pcOrigin.end())
            continue;
        uint32_t orig_pc = oit->second;
        if (std::binary_search(dropped.begin(), dropped.end(),
                               orig_pc)) {
            continue;
        }
        IrInst *load = findLoad(ir, orig_pc);
        if (!load)
            continue;
        uint8_t rd = load->inst.rd;
        *load = IrInst::loadImm(rd, c.value, orig_pc);
        ++report.loadsValueSpeced;
        report.edits.push_back({DistillEdit::Pass::ValueSpec, orig_pc,
                                rd, true, c.value});

        SpecEdit e;
        e.origPc = orig_pc;
        e.reg = rd;
        e.addr = c.addr;
        e.proof = c.proof;
        e.value = c.value;
        e.benefitMicro = c.benefitMicro;
        for (uint32_t site : base.taskMap) {
            auto ep = base.entryMap.find(site);
            if (ep == base.entryMap.end())
                continue;
            auto rit = vf.blockRegions.find(ep->second);
            if (rit != vf.blockRegions.end() &&
                analysis::regionsIntersect(rit->second, c.regions)) {
                e.policedBy.push_back(site);
            }
        }
        if (e.policedBy.empty())
            e.policedBy = base.taskMap;   // conservative: all sites
        std::sort(e.policedBy.begin(), e.policedBy.end());
        edits.push_back(std::move(e));
    }

    if (!edits.empty()) {
        // The baked constants expose new folds and dead address
        // computations; unreachable-code elimination deliberately
        // does NOT re-run — a block only a *speculative* constant
        // proves dead is still abstractly reachable, and removing it
        // would (correctly) fail the semantic validator.
        if (opts.enableConstFold)
            passConstFold(ir, report);
        if (opts.enableDce)
            passDce(ir, report);
    }

    DistilledProgram out = layout(ir, report);
    finalizeDistilled(out, orig, cfg);

    // Locate each baked constant in the final image; an edit whose
    // load-immediate was itself folded away (its register became
    // dead after downstream folding) leaves no image word to police
    // and is not recorded.
    std::map<uint32_t, uint32_t> orig_to_dist;
    for (const auto &[dist_pc, orig_pc] : out.pcOrigin)
        orig_to_dist[orig_pc] = dist_pc;
    for (SpecEdit &e : edits) {
        auto it = orig_to_dist.find(e.origPc);
        if (it == orig_to_dist.end())
            continue;
        e.distPc = it->second;
        out.specEdits.push_back(std::move(e));
    }

    out.specDropped = std::move(dropped);
    out.specGeneration = sopts.generation;
    return out;
}

} // namespace mssp

/**
 * @file
 * Umbrella header: the MSSP library's public API.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   #include "core/mssp_api.hh"
 *
 *   auto prepared = mssp::prepare(asm_source);      // profile+distill
 *   mssp::MsspConfig cfg;
 *   mssp::MsspMachine machine(prepared.orig, prepared.dist, cfg);
 *   auto result = machine.run(100'000'000);
 */

#ifndef MSSP_CORE_MSSP_API_HH
#define MSSP_CORE_MSSP_API_HH

#include "arch/arch_state.hh"
#include "arch/state_delta.hh"
#include "asm/assembler.hh"
#include "asm/program.hh"
#include "cfg/cfg.hh"
#include "core/pipeline.hh"
#include "distill/distiller.hh"
#include "exec/seq_machine.hh"
#include "isa/disasm.hh"
#include "isa/isa.hh"
#include "mssp/baseline.hh"
#include "mssp/config.hh"
#include "mssp/machine.hh"
#include "profile/fork_select.hh"
#include "profile/profiler.hh"
#include "stats/stats.hh"

#endif // MSSP_CORE_MSSP_API_HH

/**
 * @file
 * Convenience pipeline: assemble -> profile -> distill.
 */

#ifndef MSSP_CORE_PIPELINE_HH
#define MSSP_CORE_PIPELINE_HH

#include <cstdint>
#include <string>

#include "asm/program.hh"
#include "distill/distiller.hh"
#include "profile/profile_data.hh"

namespace mssp
{

/** The artifacts the MSSP machine needs for one workload. */
struct PreparedWorkload
{
    Program orig;
    ProfileData profile;
    DistilledProgram dist;
};

/**
 * Assemble @p ref_source, profile @p train_source (or ref when train
 * is empty), and distill.
 *
 * The training program must be link-compatible with the reference
 * program: same code addresses, different data (the usual SPEC
 * train/ref arrangement). Our workload generators guarantee this by
 * emitting identical code with different embedded data.
 */
PreparedWorkload prepare(const std::string &ref_source,
                         const std::string &train_source = "",
                         const DistillerOptions &opts = {},
                         uint64_t profile_max_insts = 50000000);

/** Prepare from already-assembled programs. */
PreparedWorkload prepare(const Program &ref, const Program &train,
                         const DistillerOptions &opts = {},
                         uint64_t profile_max_insts = 50000000);

} // namespace mssp

#endif // MSSP_CORE_PIPELINE_HH

#include "core/pipeline.hh"

#include "asm/assembler.hh"
#include "profile/profiler.hh"

namespace mssp
{

PreparedWorkload
prepare(const Program &ref, const Program &train,
        const DistillerOptions &opts, uint64_t profile_max_insts)
{
    PreparedWorkload out;
    out.orig = ref;
    out.profile = profileProgram(train, profile_max_insts);
    out.dist = distill(out.orig, out.profile, opts);
    return out;
}

PreparedWorkload
prepare(const std::string &ref_source,
        const std::string &train_source, const DistillerOptions &opts,
        uint64_t profile_max_insts)
{
    Program ref = assemble(ref_source);
    Program train = train_source.empty() ? ref
                                         : assemble(train_source);
    return prepare(ref, train, opts, profile_max_insts);
}

} // namespace mssp

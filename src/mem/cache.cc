#include "mem/cache.hh"

namespace mssp
{

namespace
{

bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2u(uint32_t v)
{
    uint32_t n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // anonymous namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPowerOfTwo(cfg_.sets) || !isPowerOfTwo(cfg_.lineWords) ||
        cfg_.ways == 0) {
        fatal("cache geometry must use power-of-two sets/lineWords "
              "and nonzero ways");
    }
    set_shift_ = log2u(cfg_.lineWords);
    set_mask_ = cfg_.sets - 1;
    lines_.resize(static_cast<size_t>(cfg_.sets) * cfg_.ways);
}

uint32_t
Cache::setOf(uint32_t addr) const
{
    return (addr >> set_shift_) & set_mask_;
}

uint32_t
Cache::tagOf(uint32_t addr) const
{
    return addr >> set_shift_ >> log2u(cfg_.sets);
}

bool
Cache::probe(uint32_t addr) const
{
    uint32_t set = setOf(addr);
    uint32_t tag = tagOf(addr);
    const Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::access(uint32_t addr)
{
    ++tick_;
    uint32_t set = setOf(addr);
    uint32_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) * cfg_.ways];

    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = tick_;
            ++hits_;
            return true;
        }
    }

    ++misses_;
    // Fill: pick an invalid way, else the LRU way.
    Line *victim = &base[0];
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace mssp

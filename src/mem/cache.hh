/**
 * @file
 * A small set-associative cache timing model.
 *
 * Used by the MSSP slaves as a private L1 over architected (L2)
 * state: the first touch of a line pays the read-through latency,
 * subsequent touches hit locally. It is a *timing* model only — data
 * always comes from the task context's value hierarchy — which is how
 * the paper's slaves behave (their L1s hold speculative lines that
 * are flash-invalidated on squash).
 */

#ifndef MSSP_MEM_CACHE_HH
#define MSSP_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace mssp
{

/** Cache geometry. */
struct CacheConfig
{
    uint32_t sets = 64;        ///< power of two
    uint32_t ways = 4;
    uint32_t lineWords = 8;    ///< power of two

    uint32_t
    sizeWords() const
    {
        return sets * ways * lineWords;
    }
};

/** Set-associative cache with true-LRU replacement (timing only). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg = CacheConfig{});

    /**
     * Access the word at @p addr.
     * @retval true on hit; on miss the line is filled (allocating on
     *         both reads and writes) and an LRU victim is evicted
     */
    bool access(uint32_t addr);

    /** @return true iff the line holding @p addr is resident. */
    bool probe(uint32_t addr) const;

    /** Drop every line (squash / task switch flash-invalidate). */
    void invalidateAll();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
    };

    uint32_t setOf(uint32_t addr) const;
    uint32_t tagOf(uint32_t addr) const;

    CacheConfig cfg_;
    uint32_t set_shift_;       ///< log2(lineWords)
    uint32_t set_mask_;        ///< sets - 1
    std::vector<Line> lines_;  ///< sets * ways, set-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace mssp

#endif // MSSP_MEM_CACHE_HH

/**
 * @file
 * Tracing facilities.
 *
 * - TraceLog: a bounded ring of formatted trace lines (so tracing a
 *   long run cannot exhaust memory) with text dump.
 * - ExecTracer: a SeqMachine observer producing one disassembled line
 *   per executed instruction.
 * - TaskTracer: attaches to an MsspMachine's commit/squash hooks and
 *   records the task-level event stream (the machine-level analogue
 *   of gem5's Exec trace).
 */

#ifndef MSSP_TRACE_TRACE_HH
#define MSSP_TRACE_TRACE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "exec/seq_machine.hh"
#include "mssp/machine.hh"

namespace mssp
{

/** Bounded ring buffer of trace lines. */
class TraceLog
{
  public:
    explicit TraceLog(size_t capacity = 10000)
        : capacity_(capacity)
    {}

    void
    append(std::string line)
    {
        if (lines_.size() == capacity_) {
            lines_.pop_front();
            ++dropped_;
        }
        lines_.push_back(std::move(line));
    }

    size_t size() const { return lines_.size(); }
    uint64_t dropped() const { return dropped_; }
    const std::deque<std::string> &lines() const { return lines_; }

    /** All retained lines joined with newlines. */
    std::string text() const;

    void
    clear()
    {
        lines_.clear();
        dropped_ = 0;
    }

  private:
    size_t capacity_;
    std::deque<std::string> lines_;
    uint64_t dropped_ = 0;
};

/** Instruction-level tracer for the sequential machine. */
class ExecTracer : public SeqMachine::Observer
{
  public:
    explicit ExecTracer(TraceLog &log) : log_(log) {}

    void onStep(uint32_t pc, const StepResult &res) override;

  private:
    TraceLog &log_;
    uint64_t seq_ = 0;
};

/** Task-level tracer for the MSSP machine. Attach *before* run(). */
class TaskTracer
{
  public:
    TaskTracer(MsspMachine &machine, TraceLog &log);

    uint64_t commits() const { return commits_; }
    uint64_t squashes() const { return squashes_; }

  private:
    TraceLog &log_;
    uint64_t commits_ = 0;
    uint64_t squashes_ = 0;
};

} // namespace mssp

#endif // MSSP_TRACE_TRACE_HH

#include "trace/trace.hh"

#include "isa/disasm.hh"
#include "sim/logging.hh"

namespace mssp
{

std::string
TraceLog::text() const
{
    std::string out;
    for (const auto &line : lines_) {
        out += line;
        out += '\n';
    }
    return out;
}

void
ExecTracer::onStep(uint32_t pc, const StepResult &res)
{
    const char *suffix = "";
    switch (res.status) {
      case StepStatus::Halted:
        suffix = "  <halt>";
        break;
      case StepStatus::Illegal:
        suffix = "  <fault>";
        break;
      case StepStatus::Ok:
        if (isCondBranch(res.inst.op))
            suffix = res.branchTaken ? "  [taken]" : "  [not taken]";
        break;
    }
    log_.append(strfmt("%8llu  0x%06x:  %s%s",
                       static_cast<unsigned long long>(seq_++), pc,
                       disassemble(res.inst, pc).c_str(), suffix));
}

TaskTracer::TaskTracer(MsspMachine &machine, TraceLog &log)
    : log_(log)
{
    machine.setCommitHook([this, &machine](const Task &t,
                                           const ArchState &) {
        ++commits_;
        log_.append(strfmt(
            "%10llu  commit  task %llu  [0x%x..0x%x]  %llu insts  "
            "%zu live-ins  %zu live-outs",
            static_cast<unsigned long long>(machine.now()),
            static_cast<unsigned long long>(t.id), t.startPc,
            t.endKnown ? t.endPc : t.pc,
            static_cast<unsigned long long>(t.instCount),
            t.liveIn.size(), t.liveOut.size()));
    });
    machine.setSquashHook([this, &machine](const Task &t,
                                           TaskOutcome reason) {
        ++squashes_;
        static const char *names[] = {
            "committed", "livein-mismatch", "wrong-pc", "overrun",
            "cascade",
        };
        log_.append(strfmt(
            "%10llu  squash  task %llu  start 0x%x  %llu insts  "
            "(%s)",
            static_cast<unsigned long long>(machine.now()),
            static_cast<unsigned long long>(t.id), t.startPc,
            static_cast<unsigned long long>(t.instCount),
            names[static_cast<int>(reason)]));
    });
}

} // namespace mssp

/**
 * @file
 * Abstract interpretation of μRISC programs.
 *
 * Three composable domains over the shared dataflow solver
 * (DESIGN.md §5.2):
 *
 *  - Constants: a register provably holds one value (a degenerate
 *    interval). Constant-constant transfers delegate to evalAlu(),
 *    so the abstract semantics can never disagree with the executor.
 *  - Intervals: signed [lo, hi] ranges with widening at repeatedly
 *    visited nodes (the solver's refineMeet hook), which is what
 *    makes loop-carried induction variables converge.
 *  - Store interference: every reachable store's abstract address
 *    range, queried to decide whether a memory word the distiller
 *    baked into the image can ever be overwritten (the alias
 *    question behind value speculation and silent-store elision).
 *
 * The program-level fixpoint runs twice: round one treats every load
 * as unknown and yields a sound store summary; round two uses that
 * summary to refine loads from provably never-written addresses to
 * the image value. Since the round-one summary over-approximates the
 * final one, the refinement is sound.
 *
 * The entry state leaves every register unknown (r0 excepted), so
 * block in-states over-approximate every sequentially reachable
 * state at that point — in particular every architected state a
 * master restart can occur in, which is what the semantic
 * translation validator (verifier.hh) needs.
 */

#ifndef MSSP_ANALYSIS_ABSINT_HH
#define MSSP_ANALYSIS_ABSINT_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg/cfg.hh"

namespace mssp::analysis
{

/** Three-valued truth for abstract branch decisions. */
enum class TriState : uint8_t
{
    False,
    True,
    Unknown,
};

/** Negation that keeps Unknown. */
constexpr TriState
triNot(TriState t)
{
    switch (t) {
      case TriState::False: return TriState::True;
      case TriState::True: return TriState::False;
      case TriState::Unknown: break;
    }
    return TriState::Unknown;
}

/**
 * One abstract 32-bit value: a signed interval [lo, hi] over the
 * int32 range, kept in int64 so arithmetic cannot wrap before the
 * overflow check. lo > hi encodes bottom (no concrete value);
 * constants are degenerate intervals.
 */
struct AbsVal
{
    static constexpr int64_t kMin = INT32_MIN;
    static constexpr int64_t kMax = INT32_MAX;

    int64_t lo = kMin;
    int64_t hi = kMax;

    bool operator==(const AbsVal &) const = default;

    static AbsVal top() { return {}; }
    static AbsVal bottom() { return {0, -1}; }

    static AbsVal
    constant(uint32_t v)
    {
        auto s = static_cast<int64_t>(static_cast<int32_t>(v));
        return {s, s};
    }

    /** [lo, hi], clamped to the int32 range. */
    static AbsVal
    range(int64_t lo, int64_t hi)
    {
        if (lo > hi)
            return bottom();
        if (lo < kMin || hi > kMax)
            return top();
        return {lo, hi};
    }

    bool isBottom() const { return lo > hi; }
    bool isTop() const { return lo == kMin && hi == kMax; }
    bool isConst() const { return lo == hi; }

    /** The constant, as the executor's uint32 representation. */
    uint32_t cval() const { return static_cast<uint32_t>(lo); }

    bool
    contains(uint32_t v) const
    {
        auto s = static_cast<int64_t>(static_cast<int32_t>(v));
        return lo <= s && s <= hi;
    }

    /** Least upper bound. */
    AbsVal
    join(const AbsVal &o) const
    {
        if (isBottom())
            return o;
        if (o.isBottom())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    /** Standard interval widening: bounds still moving after the
     *  widening delay jump straight to the int32 extreme. */
    AbsVal
    widen(const AbsVal &next) const
    {
        if (isBottom())
            return next;
        if (next.isBottom())
            return *this;
        return {next.lo < lo ? kMin : lo, next.hi > hi ? kMax : hi};
    }

    /** "[12, 40]" / "0x2a" / "unknown" / "none". */
    std::string toString() const;
};

/** Abstract machine state: one interval per register, plus a
 *  reachability bit (an unreachable state is the join identity). */
struct AbsState
{
    bool reachable = false;
    std::array<AbsVal, NumRegs> regs{};

    bool operator==(const AbsState &) const = default;

    /** Reachable state with every register unknown (r0 = 0). */
    static AbsState
    entry()
    {
        AbsState st;
        st.reachable = true;
        for (AbsVal &v : st.regs)
            v = AbsVal::top();
        st.regs[0] = AbsVal::constant(0);
        return st;
    }

    const AbsVal &
    reg(unsigned r) const
    {
        return regs[r];
    }

    void
    setReg(unsigned r, const AbsVal &v)
    {
        if (r != 0)
            regs[r] = v;
    }
};

/** One reachable store site with its abstract address and value. */
struct StoreSite
{
    uint32_t pc = 0;
    AbsVal addr;
    AbsVal value;
};

/** The store-interference domain: may any store write @p addr? */
struct StoreSummary
{
    std::vector<StoreSite> sites;

    /** Store that may write @p addr (excluding @p ignore_pc), or
     *  null when the address is provably never written. */
    const StoreSite *
    interferer(uint32_t addr, uint32_t ignore_pc = UINT32_MAX) const
    {
        for (const StoreSite &s : sites) {
            if (s.pc != ignore_pc && s.addr.contains(addr))
                return &s;
        }
        return nullptr;
    }

    bool
    mayWrite(uint32_t addr, uint32_t ignore_pc = UINT32_MAX) const
    {
        return interferer(addr, ignore_pc) != nullptr;
    }
};

/** Everything absint can say about one original program. */
struct AbsintResult
{
    /** In-state at each block leader (bottom when unreachable). */
    std::map<uint32_t, AbsState> blockIn;

    StoreSummary stores;

    /** Abstract outcome of each conditional branch, keyed by the
     *  branch PC (the block's last instruction). */
    std::map<uint32_t, TriState> branchDecision;

    /** Block leaders reachable from the entry when every *decided*
     *  branch edge is pruned (proven-unreachable = not in here). */
    std::set<uint32_t> reachable;

    unsigned sweepsRound1 = 0;
    unsigned sweepsRound2 = 0;
};

/**
 * Abstractly execute one instruction's register effects on @p st.
 * Control flow is ignored (the caller owns it); loads are refined
 * through @p stores and @p image when both are non-null.
 */
void absStep(uint32_t pc, const Instruction &inst, AbsState &st,
             const Program *image, const StoreSummary *stores);

/** Abstract branch outcome from its two operand values. */
TriState absBranch(Opcode op, const AbsVal &a, const AbsVal &b);

/** Abstract address of a load/store: rs1 + sign-extended imm. */
AbsVal absMemAddr(const AbsState &st, const Instruction &inst);

/** The block containing @p pc (not just leading at it), or null. */
const BasicBlock *containingBlock(const Cfg &cfg, uint32_t pc);

/**
 * Two-round global fixpoint over @p cfg (see file comment).
 * @p prog supplies the initial memory image for load refinement.
 *
 * @p rootBoundary optionally seeds specific roots (keyed by block
 * pc) with a tighter boundary state than the default all-unknown
 * AbsState::entry(). The speculation-safety analysis uses this to
 * bound master restart points by the sequential original program's
 * in-state at the corresponding pc (specsafe.hh); callers own the
 * soundness argument for any state they seed.
 */
AbsintResult
analyzeProgram(const Program &prog, const Cfg &cfg,
               const std::map<uint32_t, AbsState> *rootBoundary =
                   nullptr);

/**
 * Abstract state just *before* the instruction at @p pc: the
 * containing block's in-state pushed forward through the block.
 * Returns an unreachable state when @p pc is in no block.
 */
AbsState stateBefore(const AbsintResult &res, const Cfg &cfg,
                     const Program &prog, uint32_t pc);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_ABSINT_HH

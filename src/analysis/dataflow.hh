/**
 * @file
 * Generalized iterative dataflow solver.
 *
 * One fixed-point engine serves every flow problem in the repo —
 * liveness (backward/may), defined-registers (forward/may-uninit),
 * reaching definitions (forward/may) — replacing the hand-rolled
 * `while (changed)` loops that used to live in cfg.cc and ir.cc.
 *
 * A problem is a *domain* type D providing:
 *
 *   using Value = ...;                 // with operator==, cheap copy
 *   Value top() const;                 // identity of meet()
 *   Value boundary(int node) const;    // per-node seed, met into IN
 *   void meet(Value &into, const Value &from) const;
 *   Value transfer(int node, const Value &in) const;
 *
 * A domain may additionally provide
 *
 *   void refineMeet(int node, Value &in, const Value &prev) const;
 *
 * called after the meet over flow predecessors with the node's
 * previous IN value. Domains with unbounded ascending chains (the
 * interval domain in absint.hh) use it to apply widening; finite
 * domains simply omit it. A second optional hook
 *
 *   Value edgeOut(int from, int to, const Value &out) const;
 *
 * filters the value flowing along one graph edge before the meet
 * (from/to are flow-order nodes: the CFG edge from→to for a forward
 * problem). The interval domain uses it to kill the untaken side of
 * an abstractly decided branch, which is what lets constants survive
 * a join with a statically dead path.
 *
 * Orientation is uniform for both directions: IN[n] is the value at
 * the node's dataflow *input* — met over predecessors' OUT for a
 * forward problem, over successors' OUT for a backward one — and
 * OUT[n] = transfer(n, IN[n]). For liveness (backward) that means
 * IN = live-out and OUT = live-in; callers rename as they see fit.
 *
 * The solver iterates in reverse post-order (forward) or post-order
 * (backward), the orders under which reducible graphs converge in a
 * couple of sweeps; irreducible graphs just take more sweeps (see
 * tests/test_analysis.cpp). Nodes unreachable from the entry keep
 * top().
 */

#ifndef MSSP_ANALYSIS_DATAFLOW_HH
#define MSSP_ANALYSIS_DATAFLOW_HH

#include <algorithm>
#include <vector>

#include "analysis/flow_graph.hh"

namespace mssp::analysis
{

enum class Direction : uint8_t
{
    Forward,
    Backward,
};

template <typename D>
struct DataflowResult
{
    std::vector<typename D::Value> in;    ///< value entering transfer
    std::vector<typename D::Value> out;   ///< value after transfer
    unsigned sweeps = 0;                  ///< full passes to converge
};

template <typename D>
DataflowResult<D>
solveDataflow(const FlowGraph &g, const D &dom, Direction dir)
{
    DataflowResult<D> res;
    res.in.assign(g.size(), dom.top());
    res.out.assign(g.size(), dom.top());

    std::vector<int> order = g.rpo();
    if (dir == Direction::Backward)
        std::reverse(order.begin(), order.end());

    const auto &flow_preds =
        dir == Direction::Forward ? g.preds : g.succs;

    bool changed = true;
    while (changed) {
        changed = false;
        ++res.sweeps;
        for (int id : order) {
            auto n = static_cast<size_t>(id);
            typename D::Value in = dom.boundary(id);
            for (int p : flow_preds[n]) {
                const auto &out = res.out[static_cast<size_t>(p)];
                if constexpr (requires { dom.edgeOut(p, id, out); })
                    dom.meet(in, dom.edgeOut(p, id, out));
                else
                    dom.meet(in, out);
            }
            if constexpr (requires { dom.refineMeet(id, in,
                                                    res.in[n]); })
                dom.refineMeet(id, in, res.in[n]);
            typename D::Value out = dom.transfer(id, in);
            if (!(in == res.in[n]) || !(out == res.out[n])) {
                res.in[n] = std::move(in);
                res.out[n] = std::move(out);
                changed = true;
            }
        }
    }
    return res;
}

/**
 * Convenience domain for RegMask problems: union meet, empty top,
 * per-node boundary and gen/kill transfer supplied as vectors.
 * OUT = (IN & ~kill) | gen.
 */
struct MaskDomain
{
    using Value = uint32_t;

    std::vector<uint32_t> boundaries;
    std::vector<uint32_t> gen;
    std::vector<uint32_t> kill;

    explicit MaskDomain(size_t n)
        : boundaries(n, 0), gen(n, 0), kill(n, 0)
    {}

    Value top() const { return 0; }
    Value boundary(int n) const
    {
        return boundaries[static_cast<size_t>(n)];
    }
    void meet(Value &into, const Value &from) const { into |= from; }
    Value
    transfer(int n, const Value &in) const
    {
        auto i = static_cast<size_t>(n);
        return (in & ~kill[i]) | gen[i];
    }
};

/**
 * Domain over arbitrary-width bitsets (vectors of uint64_t words),
 * union meet, empty top. OUT = (IN & ~kill) | gen. All vectors must
 * be @p words long (use the helpers to size/set them).
 */
struct BitsetDomain
{
    using Value = std::vector<uint64_t>;

    size_t words;
    std::vector<Value> boundaries;
    std::vector<Value> gen;
    std::vector<Value> kill;

    BitsetDomain(size_t n, size_t nbits)
        : words((nbits + 63) / 64),
          boundaries(n, Value(words, 0)),
          gen(n, Value(words, 0)),
          kill(n, Value(words, 0))
    {}

    static void
    setBit(Value &v, size_t bit)
    {
        v[bit / 64] |= uint64_t{1} << (bit % 64);
    }

    static bool
    testBit(const Value &v, size_t bit)
    {
        return (v[bit / 64] >> (bit % 64)) & 1;
    }

    Value top() const { return Value(words, 0); }
    Value boundary(int n) const
    {
        return boundaries[static_cast<size_t>(n)];
    }
    void
    meet(Value &into, const Value &from) const
    {
        for (size_t w = 0; w < words; ++w)
            into[w] |= from[w];
    }
    Value
    transfer(int n, const Value &in) const
    {
        auto i = static_cast<size_t>(n);
        Value out(words);
        for (size_t w = 0; w < words; ++w)
            out[w] = (in[w] & ~kill[i][w]) | gen[i][w];
        return out;
    }
};

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_DATAFLOW_HH

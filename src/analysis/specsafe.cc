#include "analysis/specsafe.hh"

#include <algorithm>
#include <map>

#include "arch/mmio.hh"
#include "sim/logging.hh"

namespace mssp::analysis
{

namespace
{

std::string
jsonEscapeSpec(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strfmt("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strfmt("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

/** Classify one reachable load against the merged store set. */
LoadClassification
classifyLoad(const MemAccess &ld, const Program &merged,
             const AliasResult &al)
{
    LoadClassification c;
    c.pc = ld.pc;
    c.addr = ld.addr;

    if (!ld.addr.isConst()) {
        c.cls = LoadSpecClass::Risky;
        c.detail = strfmt("load address unproven: %s",
                          ld.addr.toString().c_str());
        for (const MemAccess &s : al.stores) {
            if (s.overlaps(ld.addr)) {
                c.storePc = s.pc;
                c.storeAddr = s.addr;
                c.detail += strfmt("; store at 0x%x (addr %s) "
                                   "overlaps the range",
                                   s.pc, s.addr.toString().c_str());
                break;
            }
        }
        return c;
    }

    uint32_t a = c.addr.cval();
    if (isMmio(a)) {
        c.cls = LoadSpecClass::Risky;
        c.detail = strfmt("device load from 0x%x (never invariant)",
                          a);
        return c;
    }

    // Region sharing is decided against *distilled* stores only: the
    // master never executes original code, so an aliasing original
    // store merely blocks the ProvablyInvariant proof (the merged
    // image — which the dynamic gate runs raw on SEQ — can write the
    // word), not region invariance.
    const MemAccess *shared = nullptr;
    const MemAccess *cross = nullptr;
    const MemAccess *origOnly = nullptr;
    for (const MemAccess &s : al.stores) {
        if (!s.mayTouch(a))
            continue;
        if (s.pc < DistilledCodeBase) {
            if (!origOnly)
                origOnly = &s;
            continue;
        }
        if (regionsIntersect(s.regions, ld.regions)) {
            shared = &s;
            break;
        }
        if (!cross)
            cross = &s;
    }

    if (shared) {
        c.cls = LoadSpecClass::Risky;
        c.storePc = shared->pc;
        c.storeAddr = shared->addr;
        c.detail = strfmt("store at 0x%x may write %s, overlapping "
                          "[0x%x] in a fork region the load shares",
                          shared->pc,
                          shared->addr.toString().c_str(), a);
    } else if (cross) {
        c.cls = LoadSpecClass::RegionInvariant;
        c.storePc = cross->pc;
        c.storeAddr = cross->addr;
        c.detail = strfmt("store at 0x%x may write %s, but only in "
                          "fork regions the load never executes in",
                          cross->pc, cross->addr.toString().c_str());
    } else if (origOnly) {
        c.cls = LoadSpecClass::RegionInvariant;
        c.storePc = origOnly->pc;
        c.storeAddr = origOnly->addr;
        c.detail = strfmt("only original code writes [0x%x] (store "
                          "at 0x%x); the distilled program never "
                          "does",
                          a, origOnly->pc);
    } else {
        c.cls = LoadSpecClass::ProvablyInvariant;
        c.detail = strfmt("no store in the merged image may write "
                          "[0x%x] = 0x%x",
                          a, merged.word(a));
    }
    return c;
}

} // anonymous namespace

Program
mergedImage(const Program &orig, const DistilledProgram &dist)
{
    Program merged = orig;
    for (const auto &[addr, word] : dist.prog.image())
        merged.setWord(addr, word);
    merged.setEntry(dist.prog.entry());
    return merged;
}

std::vector<LoadClassification>
classifySpecLoads(const Program &orig, const DistilledProgram &dist)
{
    Program merged = mergedImage(orig, dist);

    // Pass 1: the sequential original program on its own. Its block
    // in-states over-approximate every architected state a master
    // restart can occur in (absint.hh), which is exactly the bound a
    // restart point needs.
    Cfg origCfg = Cfg::build(orig, orig.entry());
    AbsintResult origAi = analyzeProgram(orig, origCfg);

    // Pass 2 roots: the original entry (the merged image keeps all
    // original code live for the store summary — a raw SEQ run of
    // the merged program can fall back into it through an
    // untranslated return), plus every restart point of the
    // distilled code, each seeded with the original program's
    // abstract state at the pc it restarts from rather than the
    // all-unknown default (which would flush the address facts out
    // of every loop a fork site sits in). The addrMap targets are
    // deliberately NOT roots: every surviving block is an addrMap
    // value, so rooting them would join unknown state into the whole
    // distilled image. They are reached through ordinary edges
    // instead — calls carry their return point as a successor
    // (cfg.hh), the same §3.9 control-flow assumption the rest of
    // the toolchain builds on — and any load the discovery still
    // misses falls out Risky below.
    std::vector<uint32_t> roots;
    std::map<uint32_t, AbsState> rootBoundary;
    roots.push_back(orig.entry());
    for (const auto &[o, dpc] : dist.entryMap) {
        roots.push_back(dpc);
        AbsState st = stateBefore(origAi, origCfg, orig, o);
        if (st.reachable)
            rootBoundary[dpc] = st;
    }
    Cfg cfg = Cfg::build(merged, merged.entry(), roots);
    AbsintResult ai = analyzeProgram(merged, cfg, &rootBoundary);
    AliasResult al = analyzeAliases(merged, cfg, ai);

    std::vector<LoadClassification> out;
    std::map<uint32_t, size_t> byPc;
    for (const MemAccess &ld : al.loads) {
        if (ld.pc < DistilledCodeBase)
            continue;   // original-code loads are not classified
        byPc[ld.pc] = out.size();
        out.push_back(classifyLoad(ld, merged, al));
    }

    // Coverage: every static load in the distilled image gets a
    // class. A load outside the discovered (or abstractly reachable)
    // code has no abstract address state — conservatively Risky.
    for (const auto &[addr, word] : dist.prog.image()) {
        Instruction inst = decode(word);
        if (!isLoad(inst.op) || byPc.count(addr))
            continue;
        LoadClassification c;
        c.pc = addr;
        c.addr = AbsVal::top();
        c.cls = LoadSpecClass::Risky;
        c.detail = "load is not abstractly reachable in the "
                   "distilled control flow; address state unknown";
        byPc[addr] = out.size();
        out.push_back(std::move(c));
    }

    std::sort(out.begin(), out.end(),
              [](const LoadClassification &x,
                 const LoadClassification &y) { return x.pc < y.pc; });
    return out;
}

SpecSafeReport
analyzeSpecSafe(const Program &orig, const DistilledProgram &dist)
{
    SpecSafeReport rep;
    rep.loads = classifySpecLoads(orig, dist);

    auto addFinding = [&rep](LintCheck check, uint32_t pc,
                             std::string message) {
        Finding f;
        f.severity = Severity::Error;
        f.check = check;
        f.pc = pc;
        f.message = std::move(message);
        rep.lint.findings.push_back(std::move(f));
    };

    std::map<uint32_t, LoadSpecClass> recomputed;
    for (const LoadClassification &c : rep.loads)
        recomputed[c.pc] = c.cls;

    for (const auto &[pc, cls] : dist.loadClasses) {
        auto it = recomputed.find(pc);
        if (it == recomputed.end()) {
            addFinding(LintCheck::SpecSafeCoverage, pc,
                       strfmt("image classifies 0x%x as %s, but no "
                              "static load exists there (stale "
                              "metadata)",
                              pc, loadSpecClassName(cls)));
        } else if (it->second != cls) {
            addFinding(LintCheck::SpecSafeMismatch, pc,
                       strfmt("image claims %s for the load at 0x%x, "
                              "recomputation yields %s",
                              loadSpecClassName(cls), pc,
                              loadSpecClassName(it->second)));
        }
    }
    for (const LoadClassification &c : rep.loads) {
        if (!dist.loadClasses.count(c.pc)) {
            addFinding(LintCheck::SpecSafeCoverage, c.pc,
                       strfmt("static load at 0x%x carries no "
                              "persisted classification",
                              c.pc));
        }
    }
    return rep;
}

size_t
SpecSafeReport::provablyInvariant() const
{
    size_t n = 0;
    for (const LoadClassification &c : loads)
        n += c.cls == LoadSpecClass::ProvablyInvariant;
    return n;
}

size_t
SpecSafeReport::regionInvariant() const
{
    size_t n = 0;
    for (const LoadClassification &c : loads)
        n += c.cls == LoadSpecClass::RegionInvariant;
    return n;
}

size_t
SpecSafeReport::risky() const
{
    size_t n = 0;
    for (const LoadClassification &c : loads)
        n += c.cls == LoadSpecClass::Risky;
    return n;
}

std::string
SpecSafeReport::toText() const
{
    std::string out;
    for (const LoadClassification &c : loads) {
        out += strfmt("load pc=0x%x [%s] addr=%s: %s\n", c.pc,
                      loadSpecClassName(c.cls),
                      c.addr.toString().c_str(), c.detail.c_str());
    }
    out += strfmt("%zu load(s): %zu provably-invariant, %zu "
                  "region-invariant, %zu risky\n",
                  loads.size(), provablyInvariant(),
                  regionInvariant(), risky());
    return out;
}

std::string
SpecSafeReport::toJson(const std::string &workload) const
{
    std::string out = "{\"schema\": \"mssp-specsafe-v1\", ";
    if (workload.empty())
        out += "\"workload\": null, ";
    else
        out += strfmt("\"workload\": \"%s\", ", workload.c_str());
    out += strfmt("\"counts\": {\"loads\": %zu, "
                  "\"provablyInvariant\": %zu, "
                  "\"regionInvariant\": %zu, \"risky\": %zu}, ",
                  loads.size(), provablyInvariant(),
                  regionInvariant(), risky());
    out += "\"loads\": [";
    for (size_t i = 0; i < loads.size(); ++i) {
        const LoadClassification &c = loads[i];
        if (i)
            out += ", ";
        out += strfmt("{\"pc\": \"0x%x\", \"class\": \"%s\", "
                      "\"addr\": \"%s\", ",
                      c.pc, loadSpecClassName(c.cls),
                      jsonEscapeSpec(c.addr.toString()).c_str());
        if (c.storePc != UINT32_MAX) {
            out += strfmt("\"storePc\": \"0x%x\", \"storeAddr\": "
                          "\"%s\", ",
                          c.storePc,
                          jsonEscapeSpec(c.storeAddr.toString())
                              .c_str());
        } else {
            out += "\"storePc\": null, \"storeAddr\": null, ";
        }
        out += strfmt("\"detail\": \"%s\"}",
                      jsonEscapeSpec(c.detail).c_str());
    }
    // Embed the metadata-validation findings as the report's "lint"
    // object (its trailing newline dropped).
    std::string lj = lint.toJson();
    while (!lj.empty() && lj.back() == '\n')
        lj.pop_back();
    out += "], \"lint\": " + lj + "}\n";
    return out;
}

} // namespace mssp::analysis

#include "analysis/reaching_defs.hh"

#include "distill/ir.hh"
#include "sim/logging.hh"

namespace mssp::analysis
{

namespace
{

/** Destination register a block terminator writes (0 when none). */
uint8_t
termDestReg(const IrBlock &blk)
{
    if (blk.term == TermKind::Jump && blk.termInst.rd != 0)
        return blk.termInst.rd;
    return 0;
}

} // anonymous namespace

ReachingDefs
ReachingDefs::compute(const DistillIr &ir)
{
    ReachingDefs rd;
    rd.by_reg_.resize(NumRegs);

    // Entry pseudo-definitions first: index r-1 defines register r.
    for (unsigned r = 1; r < NumRegs; ++r) {
        rd.defs_.push_back(
            DefSite{-1, -1, static_cast<uint8_t>(r), UINT32_MAX});
        rd.by_reg_[r].push_back(static_cast<int>(r - 1));
    }

    // Real definition sites, in block/instruction order.
    for (const IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        for (size_t i = 0; i < blk.body.size(); ++i) {
            uint8_t dest = blk.body[i].destReg();
            if (dest == 0)
                continue;
            rd.by_reg_[dest].push_back(
                static_cast<int>(rd.defs_.size()));
            rd.defs_.push_back(DefSite{blk.id, static_cast<int>(i),
                                       dest, blk.body[i].origPc});
        }
        if (blk.isCall) {
            // Conservative call clobber: the callee may define any
            // register (see the header comment).
            for (unsigned r = 1; r < NumRegs; ++r) {
                rd.by_reg_[r].push_back(
                    static_cast<int>(rd.defs_.size()));
                rd.defs_.push_back(
                    DefSite{blk.id, -1, static_cast<uint8_t>(r),
                            UINT32_MAX});
            }
        } else if (uint8_t dest = termDestReg(blk)) {
            rd.by_reg_[dest].push_back(
                static_cast<int>(rd.defs_.size()));
            rd.defs_.push_back(
                DefSite{blk.id, -1, dest, blk.termOrigPc});
        }
    }

    FlowGraph g = graphOfIr(ir);
    BitsetDomain dom(g.size(), rd.defs_.size());

    // Entry boundary: the pseudo-defs.
    for (unsigned r = 1; r < NumRegs; ++r)
        BitsetDomain::setBit(dom.boundaries[static_cast<size_t>(
                                 g.entry)],
                             static_cast<size_t>(r - 1));

    // gen = downward-exposed defs; kill = all other defs (including
    // pseudo-defs) of every register the block defines.
    for (const IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        auto n = static_cast<size_t>(blk.id);
        // Last def per register in this block wins.
        int last_def[NumRegs] = {};
        for (unsigned r = 0; r < NumRegs; ++r)
            last_def[r] = -1;
        for (size_t d = 0; d < rd.defs_.size(); ++d) {
            if (rd.defs_[d].block == blk.id)
                last_def[rd.defs_[d].reg] = static_cast<int>(d);
        }
        // A call clobber is ordered after body defs (it is the
        // terminator), which the scan above already guarantees since
        // terminator sites were appended last.
        for (unsigned r = 1; r < NumRegs; ++r) {
            if (last_def[r] < 0)
                continue;
            BitsetDomain::setBit(dom.gen[n],
                                 static_cast<size_t>(last_def[r]));
            for (int d : rd.by_reg_[r]) {
                if (d != last_def[r])
                    BitsetDomain::setBit(dom.kill[n],
                                         static_cast<size_t>(d));
            }
        }
    }

    auto solved = solveDataflow(g, dom, Direction::Forward);
    rd.in_ = std::move(solved.in);
    rd.sweeps_ = solved.sweeps;
    return rd;
}

bool
ReachingDefs::reachesBlockEntry(int def_index, int block) const
{
    return BitsetDomain::testBit(in_[static_cast<size_t>(block)],
                                 static_cast<size_t>(def_index));
}

std::vector<int>
ReachingDefs::defsReachingUse(const DistillIr &ir, int block,
                              int inst_index, uint8_t reg) const
{
    const IrBlock &blk = ir.block(block);
    MSSP_ASSERT(inst_index >= 0 &&
                static_cast<size_t>(inst_index) <= blk.body.size());

    // The youngest in-block def of @p reg before the use shadows
    // everything flowing in from the block entry.
    int shadow = -1;
    for (int i = 0; i < inst_index; ++i) {
        if (blk.body[static_cast<size_t>(i)].destReg() == reg)
            shadow = i;
    }
    std::vector<int> result;
    if (shadow >= 0) {
        for (int d : by_reg_[reg]) {
            const DefSite &site = defs_[static_cast<size_t>(d)];
            if (site.block == block && site.inst == shadow)
                result.push_back(d);
        }
        return result;
    }
    for (int d : by_reg_[reg]) {
        if (reachesBlockEntry(d, block))
            result.push_back(d);
    }
    return result;
}

} // namespace mssp::analysis

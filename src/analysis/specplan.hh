/**
 * @file
 * Static speculation planner: value facts -> a ranked SpecPlan.
 *
 * The value-flow pass (analysis/valueflow.hh) says which loads have
 * a predictable value; this planner decides which of them are *worth*
 * speculating and in what order, combining three signals per
 * candidate (DESIGN.md §5.4):
 *
 *  - proof strength: a Proven fact predicts with certainty, a Likely
 *    fact with odds 1/|feasible set|;
 *  - distillation leverage: the whole-image original/distilled
 *    static-instruction ratio — the shorter the distilled path, the
 *    more a removed load is worth;
 *  - fork-region risk: the Risky-load density and pruned-branch
 *    guard count of the regions the load executes in — a region
 *    already likely to squash devalues any speculation inside it.
 *
 * The score is computed in IEEE doubles from small integers and
 * persisted as a micro-unit integer (benefitMicro), so reports and
 * `.mdo` files are byte-deterministic. Candidates rank by descending
 * benefit, PC ascending on ties.
 *
 * The plan ships four ways: this library API (the ROADMAP-3 value-
 * speculating distiller consumes it directly), per-candidate
 * `specplan` lines in the .mdo (format v4), `mssp-lint --plan`
 * (text + versioned `mssp-specplan-v1` JSON), and dynamic
 * falsification in eval/crossval (SEQ replay counts per-candidate
 * mismatches; a Proven mismatch fails the gate). analyzeSpecPlan()
 * additionally validates persisted plan metadata against the
 * recomputation, mirroring analyzeSpecSafe().
 */

#ifndef MSSP_ANALYSIS_SPECPLAN_HH
#define MSSP_ANALYSIS_SPECPLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/valueflow.hh"

namespace mssp::analysis
{

/** One ranked speculation candidate. */
struct SpecPlanCandidate
{
    uint32_t pc = 0;       ///< distilled PC of the load
    uint32_t addr = 0;     ///< constant address it reads
    LoadSpecClass cls = LoadSpecClass::ProvablyInvariant;
    ValueProof proof = ValueProof::Proven;
    uint32_t value = 0;    ///< predicted value
    /** Feasible constant set, ascending (singleton for Proven). */
    std::vector<uint32_t> feasible;
    /** Demoting store for Likely candidates (UINT32_MAX otherwise). */
    uint32_t storePc = UINT32_MAX;
    /** Expected benefit in micro-units (higher = speculate first). */
    uint64_t benefitMicro = 0;
    /** Fork regions the load executes in (analysis/alias.hh). */
    RegionMask regions = RegionEntry;
    std::string detail;    ///< proof sketch / counterexample

    /** The persisted form of this candidate. */
    SpecPlanEntry toEntry() const;
};

/** The full planning result for one workload/image. */
struct SpecPlanReport
{
    /** Candidates in rank order: benefit descending, PC ascending. */
    std::vector<SpecPlanCandidate> candidates;

    /** Loads the value-flow pass considered (coverage denominator). */
    size_t loadsConsidered = 0;

    /** Metadata-validation findings (specplan-mismatch /
     *  specplan-coverage; empty when the image agrees). */
    LintReport lint;

    size_t proven() const;
    size_t likely() const;

    /** One line per candidate plus a summary line. */
    std::string toText() const;

    /** Deterministic JSON document, schema mssp-specplan-v1. With a
     *  non-empty @p workload the document names it. */
    std::string toJson(const std::string &workload = "") const;
};

/**
 * Compute the ranked plan for @p dist (pure recomputation; ignores
 * dist.specPlan). This is what distill() uses to stamp the image.
 * @p loadsConsidered, when non-null, receives the value-flow pass's
 * eligible-load count (the coverage denominator).
 */
std::vector<SpecPlanCandidate>
planSpeculation(const Program &orig, const DistilledProgram &dist,
                size_t *loadsConsidered = nullptr);

/**
 * Plan and validate: recompute the plan and check the image's
 * persisted specPlan entries against it. Missing, stale and
 * mismatching candidates are error findings.
 */
SpecPlanReport analyzeSpecPlan(const Program &orig,
                               const DistilledProgram &dist);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_SPECPLAN_HH

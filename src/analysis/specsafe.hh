/**
 * @file
 * Speculation-safety classification of distilled-image loads.
 *
 * The paper's headline distillation knob replaces near-invariant
 * loads with constants; before the distiller may speculate a load it
 * needs a *static* oracle proving which loads are safe. This pass is
 * that oracle (DESIGN.md §5.3): it superimposes the distilled code
 * onto the original image (they share the data address space), runs
 * the interval abstract interpreter and the store-set analysis
 * (analysis/alias.hh) over the merged program, and labels every
 * static load in the distilled code:
 *
 *  - ProvablyInvariant: the address is exactly known, is not device
 *    space, and *no* store anywhere in the merged program may alias
 *    it. Such a load returns the image word on every execution —
 *    safe to bake in as a constant, and the dynamic cross-validation
 *    gate (eval/crossval.hh) asserts it never observes a change.
 *  - RegionInvariant: aliasing stores exist, but no distilled store
 *    can execute in any fork region the load executes in — the value
 *    is invariant between fork boundaries, not across them.
 *  - Risky: an aliasing distilled store shares a region with the
 *    load (the counterexample names the store and its overlapping
 *    interval), the address could not be pinned, or the load reads
 *    device space.
 *
 * The classification ships three ways: this library API (the future
 * value-speculating distiller's oracle), `mssp-lint --specsafe`
 * (human text + versioned `mssp-specsafe-v1` JSON), and per-load
 * `.mdo` metadata (DistilledProgram::loadClasses, format v3).
 * analyzeSpecSafe() additionally validates persisted metadata
 * against the recomputation: a missing, stale or mismatching class
 * is an error-severity lint finding.
 */

#ifndef MSSP_ANALYSIS_SPECSAFE_HH
#define MSSP_ANALYSIS_SPECSAFE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/alias.hh"
#include "analysis/verifier.hh"

namespace mssp::analysis
{

/** One classified static load in the distilled image. */
struct LoadClassification
{
    uint32_t pc = 0;               ///< distilled PC of the load
    LoadSpecClass cls = LoadSpecClass::Risky;
    AbsVal addr;                   ///< abstract address of the load
    /** Proof sketch (invariant classes) or counterexample (Risky). */
    std::string detail;
    /** Counterexample store PC (UINT32_MAX when not applicable). */
    uint32_t storePc = UINT32_MAX;
    /** Counterexample store's address interval. */
    AbsVal storeAddr = AbsVal::bottom();
};

/** The full specsafe result for one workload/image. */
struct SpecSafeReport
{
    /** Every static load in the distilled image, ascending by PC. */
    std::vector<LoadClassification> loads;

    /** Metadata-validation findings (specsafe-mismatch /
     *  specsafe-coverage; empty when the image agrees). */
    LintReport lint;

    size_t provablyInvariant() const;
    size_t regionInvariant() const;
    size_t risky() const;

    /** One line per load plus a summary line. */
    std::string toText() const;

    /** Deterministic JSON document, schema mssp-specsafe-v1. With a
     *  non-empty @p workload the document names it. */
    std::string toJson(const std::string &workload = "") const;
};

/**
 * The original image with the distilled code superimposed: distilled
 * code words overlay @p orig (they live at DistilledCodeBase, far
 * from original code and data) and the entry moves to the distilled
 * entry. This is the address space the master executes in, and the
 * program the dynamic validation gate runs on SEQ.
 */
Program mergedImage(const Program &orig,
                    const DistilledProgram &dist);

/**
 * Classify every static load in @p dist (pure recomputation; ignores
 * dist.loadClasses). This is what distill() uses to stamp the image.
 */
std::vector<LoadClassification>
classifySpecLoads(const Program &orig, const DistilledProgram &dist);

/**
 * Classify and validate: recompute the classification and check the
 * image's persisted loadClasses against it. Unclassified loads,
 * stale entries and class mismatches are error findings.
 */
SpecSafeReport analyzeSpecSafe(const Program &orig,
                               const DistilledProgram &dist);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_SPECSAFE_HH

/**
 * @file
 * Global register liveness on the generic dataflow solver.
 *
 * This is the one implementation behind both computeLiveness(Cfg)
 * (declared in cfg/cfg.hh) and computeIrLiveness(DistillIr) (declared
 * in distill/ir.hh); the distiller's DCE pass and the mssp-lint
 * verifier therefore share a single analysis. Blocks ending in an
 * indirect jump or a fault get an all-live boundary, halt blocks an
 * empty one — the conservative rules documented in cfg/cfg.hh.
 */

#ifndef MSSP_ANALYSIS_LIVENESS_HH
#define MSSP_ANALYSIS_LIVENESS_HH

#include "analysis/dataflow.hh"
#include "cfg/cfg.hh"

namespace mssp::analysis
{

/** Every register except the hard-wired r0. */
constexpr RegMask AllRegsMask = 0xfffffffeu;

/**
 * Solve backward register liveness over @p g given a MaskDomain whose
 * gen masks hold each node's upward-exposed uses, kill masks its
 * definitions, and boundaries any forced live-out (exits, indirect
 * jumps). Result: in[n] = live-out, out[n] = live-in.
 */
inline DataflowResult<MaskDomain>
solveRegLiveness(const FlowGraph &g, const MaskDomain &dom)
{
    return solveDataflow(g, dom, Direction::Backward);
}

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_LIVENESS_HH

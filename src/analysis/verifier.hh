/**
 * @file
 * mssp-lint: static verifier for distilled programs.
 *
 * The distiller is allowed to be *approximately* wrong — MSSP's
 * verify/commit unit recovers from bad predictions — but a distilled
 * image can still be structurally broken in ways that make the master
 * useless (it faults, spins, or predicts garbage on every task). The
 * verifier checks the static contract between distiller and runtime
 * (DESIGN.md "The distilled-program contract"):
 *
 *  1. Control-flow integrity: every branch/jump/fallthrough in the
 *     image lands on decodable code, every FORK names a task-map
 *     entry whose PC is an original-program block leader, and the
 *     restart/addr maps are mutually consistent with the image.
 *  2. Checkpoint soundness: the checkpoint register mask claimed for
 *     each fork site covers the statically computed live-in set of
 *     the original task (under-approximation is an error — a trusted
 *     checkpoint would guarantee misspeculation; over-approximation
 *     is wasted bandwidth, a warning with a waste metric).
 *  3. Superimposition safety: the recorded edit log is replayed
 *     against the original binary — approximate passes may only
 *     touch the instruction kinds they claim (a branch, a store, a
 *     load), semantics-preserving passes may only rewrite pure
 *     register-writing instructions, and every edit must lie inside
 *     the reachable original program.
 *  4. Use-before-def: a register read on some path from a restart
 *     point before any write, yet absent from that task's checkpoint
 *     set, makes the master's output depend on unchecked state.
 *     Indirect jumps (jalr) are graph exits and call continuations
 *     are analysis roots with an empty garbage set — the documented
 *     conservative treatment (no false positives, may miss paths
 *     through calls).
 *
 * Findings carry severity, PC, block, pass provenance and a message,
 * and render as human text or JSON (schema in docs/LINT.md). The
 * same checks back `tools/mssp-lint.cc` and `mssp-distill --verify`.
 */

#ifndef MSSP_ANALYSIS_VERIFIER_HH
#define MSSP_ANALYSIS_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "distill/distiller.hh"

namespace mssp::analysis
{

enum class Severity : uint8_t
{
    Warning,   ///< suspicious or wasteful, master still usable
    Error,     ///< contract violation; reject the image
};

/** Check identifiers (stable names in lintCheckName / the JSON). */
enum class LintCheck : uint8_t
{
    DecodeFault,            ///< reachable undecodable word / off-image
    BranchTarget,           ///< control transfer to a non-block
    ForkIndex,              ///< FORK imm outside the task map
    ForkTarget,             ///< task-map PC not an original leader
    RestartMap,             ///< entryMap vs. image FORKs inconsistent
    AddrMap,                ///< addrMap entry names a non-block
    InescapableLoop,        ///< cyclic region with no exit
    CheckpointMissing,      ///< fork site without a checkpoint mask
    CheckpointUnderApprox,  ///< live-in register not checkpointed
    CheckpointOverApprox,   ///< checkpointed register never read
    UseBeforeDef,           ///< read of an unchecked restart value
    EditTarget,             ///< pass edited a disallowed instruction
    EditOutsideProgram,     ///< edit PC outside reachable orig code

    // Semantic translation-validation checks (verifyDistilledSemantic;
    // DESIGN.md §5.2). Abstract interpretation of the original
    // program decides whether each recorded edit preserves the
    // superimposition relation "<-" (DESIGN.md §5.1).
    SemanticBranch,         ///< hard-wired branch can go the other way
    SemanticConst,          ///< folded constant contradicts absint
    SemanticLoad,           ///< value-spec'd load has an interferer
    SemanticStore,          ///< elided store is provably not silent
    SemanticLiveOut,        ///< live-out diverges between O and D
    SemanticUnreachable,    ///< removed block is abstractly reachable
    EditMetadata,           ///< region/live-out/value metadata broken

    // Speculation-safety metadata checks (analysis/specsafe.hh).
    SpecSafeMismatch,       ///< persisted load class != recomputed
    SpecSafeCoverage,       ///< load unclassified / stale class entry

    // Speculation-plan metadata checks (analysis/specplan.hh).
    SpecPlanMismatch,       ///< persisted candidate != recomputed
    SpecPlanCoverage,       ///< candidate missing / stale plan entry

    // Speculated-edit record checks (distill/speculate.cc, .mdo v5).
    SpecEditMismatch,       ///< baked word / load / site disagrees
    SpecEditCoverage,       ///< specedit without edit-log provenance
};

const char *severityName(Severity sev);
const char *lintCheckName(LintCheck check);

/** One verifier finding. */
struct Finding
{
    Severity severity = Severity::Error;
    LintCheck check = LintCheck::DecodeFault;
    /** PC the finding anchors to (distilled or original, per check;
     *  UINT32_MAX when not applicable). */
    uint32_t pc = UINT32_MAX;
    /** Start PC of the containing block (UINT32_MAX when n/a). */
    uint32_t block = UINT32_MAX;
    /** Pass provenance for edit-log findings. */
    bool hasPass = false;
    DistillEdit::Pass pass = DistillEdit::Pass::ConstFold;
    std::string message;
};

/** All findings of one verification run. */
struct LintReport
{
    std::vector<Finding> findings;

    size_t errors() const;
    size_t warnings() const;
    bool clean() const { return findings.empty(); }

    /** One line per finding plus a summary line. */
    std::string toText() const;

    /** JSON object {"errors":N,"warnings":N,"findings":[...]} (see
     *  docs/LINT.md for the schema). */
    std::string toJson() const;
};

/**
 * Verify @p dist against the original program @p orig it was
 * distilled from. Pure static analysis; neither program is executed.
 */
LintReport verifyDistilled(const Program &orig,
                           const DistilledProgram &dist);

// -- Semantic translation validation (analysis/semantic.cc) -----------

/** Risk class of one distiller edit under abstract interpretation. */
enum class EditRisk : uint8_t
{
    /** The edit provably preserves the superimposition relation: no
     *  reachable original execution can diverge at it. */
    Proven,
    /** A counterexample exists in the abstraction: some abstract
     *  path reaches the edit in a state where it changes a live-out
     *  (may still be dynamically rare — MSSP recovers). */
    Risky,
    /** The abstraction is too coarse to decide either way. */
    Unknown,
};

const char *editRiskName(EditRisk risk);

/** Per-edit verdict of the translation validator. */
struct EditVerdict
{
    size_t index = 0;       ///< position in report.edits
    DistillEdit edit;
    EditRisk risk = EditRisk::Unknown;
    /** Human-readable justification: the proof sketch for Proven,
     *  the counterexample path / interfering store / unproven range
     *  for Risky and Unknown. */
    std::string detail;
};

/** All edit verdicts of one semantic validation run. */
struct SemanticReport
{
    std::vector<EditVerdict> verdicts;

    size_t proven() const;
    size_t risky() const;
    size_t unknown() const;

    /** One line per verdict plus a summary line. */
    std::string toText() const;
};

/** Combined structural + semantic verification result. */
struct SemanticResult
{
    LintReport lint;            ///< semantic findings only
    SemanticReport semantic;    ///< one verdict per edit

    /** The LintReport JSON object extended with an "edits" array of
     *  per-edit risk verdicts (schema in docs/LINT.md). */
    std::string toJson() const;
};

/**
 * Translation validation of the distiller's edit log: abstractly
 * execute the original program (analysis/absint.hh), classify every
 * recorded edit as Proven/Risky/Unknown, and prove live-out
 * consistency of each edited region against its distilled
 * counterpart under the superimposition relation. Risky edits of
 * *approximate* passes are warnings (MSSP recovers at runtime);
 * risky edits of semantics-preserving passes and metadata
 * inconsistencies are errors.
 */
SemanticResult verifyDistilledSemantic(const Program &orig,
                                       const DistilledProgram &dist);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_VERIFIER_HH

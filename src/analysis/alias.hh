/**
 * @file
 * Flow-sensitive store-set / alias analysis over μRISC images.
 *
 * Built on the absint interval domain (analysis/absint.hh): every
 * reachable load and store is resolved to an abstract address
 * interval by pushing the block in-states through the block, giving
 * per-site may-sets (the interval) and must-sets (a degenerate
 * interval). On top of the address sets the analysis computes a
 * *fork-region* membership mask per access: a forward dataflow that
 * tracks which FORK instruction started the region an instruction
 * executes in, so clients can ask whether a load and a store can ever
 * share a dynamic inter-fork span. The speculation-safety classifier
 * (analysis/specsafe.hh) is the primary consumer: a load with no
 * aliasing store at all is provably invariant; one whose aliasing
 * stores all live in *other* regions is invariant between fork
 * boundaries (DESIGN.md §5.3).
 *
 * Region soundness: every dynamic instruction is labelled by the fork
 * site that most recently executed (bit 0 = no fork yet, bit i+1 =
 * fork site i; indices past the mask width saturate into a shared
 * overflow bit). The static mask of an instruction joins the labels
 * of every abstract path reaching it, so two accesses whose masks are
 * disjoint can never execute in the same dynamic region. Blocks that
 * are discovery roots without any CFG predecessor (indirect-jump
 * landing pads: call continuations, restart points) conservatively
 * start in *every* region.
 */

#ifndef MSSP_ANALYSIS_ALIAS_HH
#define MSSP_ANALYSIS_ALIAS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/absint.hh"

namespace mssp::analysis
{

/** Fork-region membership mask: bit 0 = the pre-fork entry region,
 *  bit i+1 = the region started by fork site i, top bit = overflow
 *  (fork indices too large to track individually). */
using RegionMask = uint64_t;

constexpr RegionMask RegionEntry = 1ull << 0;
constexpr RegionMask RegionOverflow = 1ull << 63;
constexpr RegionMask RegionAll = ~0ull;

/** The region bit of fork site @p index (saturating). */
constexpr RegionMask
regionBitOf(uint32_t index)
{
    return index + 1 >= 63 ? RegionOverflow : 1ull << (index + 1);
}

/** True when two accesses can execute in the same dynamic region. */
constexpr bool
regionsIntersect(RegionMask a, RegionMask b)
{
    return (a & b) != 0;
}

/** One reachable memory access with its abstract address sets. */
struct MemAccess
{
    uint32_t pc = 0;
    bool isStore = false;
    /** May-set: every address the access can touch. A degenerate
     *  (constant) interval is also the must-set. */
    AbsVal addr;
    /** Stored value (stores only). */
    AbsVal value;
    /** Leader of the containing basic block. */
    uint32_t block = 0;
    /** Fork regions this access can execute in. */
    RegionMask regions = RegionEntry;

    /** True when the address is exactly known (must-access). */
    bool isMust() const { return addr.isConst(); }

    /** May this access touch @p a? */
    bool mayTouch(uint32_t a) const { return addr.contains(a); }

    /** May this access overlap @p other's address set? */
    bool
    overlaps(const AbsVal &other) const
    {
        if (addr.isBottom() || other.isBottom())
            return false;
        return addr.lo <= other.hi && other.lo <= addr.hi;
    }
};

/** Joined write effect of one fork region. */
struct RegionWriteSummary
{
    /** Join of every member store's address interval (bottom when the
     *  region stores nothing). */
    AbsVal span = AbsVal::bottom();
    size_t storeCount = 0;
    std::vector<uint32_t> storePcs;
};

/** Everything the alias analysis can say about one program. */
struct AliasResult
{
    /** All reachable loads / stores, ascending by PC. */
    std::vector<MemAccess> loads;
    std::vector<MemAccess> stores;

    /** forkPcs[i] = PC of the FORK instruction naming task-map index
     *  i (region bit i+1); UINT32_MAX when not in the analyzed code. */
    std::vector<uint32_t> forkPcs;

    /** True when fork indices saturated into the overflow bit. */
    bool regionOverflow = false;

    /** Region-mask in-state per block leader (diagnostics). */
    std::map<uint32_t, RegionMask> blockRegions;

    /** Memory-dependence summary per region bit (index = bit). */
    std::map<unsigned, RegionWriteSummary> regionWrites;

    /**
     * First store whose may-set contains the constant address @p a
     * (excluding @p ignore_pc), or null when no store can write it.
     */
    const MemAccess *
    interferingStore(uint32_t a, uint32_t ignore_pc = UINT32_MAX) const
    {
        for (const MemAccess &s : stores) {
            if (s.pc != ignore_pc && s.mayTouch(a))
                return &s;
        }
        return nullptr;
    }

    /** All stores whose may-set contains @p a. */
    std::vector<const MemAccess *>
    interferingStores(uint32_t a) const
    {
        std::vector<const MemAccess *> out;
        for (const MemAccess &s : stores) {
            if (s.mayTouch(a))
                out.push_back(&s);
        }
        return out;
    }
};

/**
 * Run the alias analysis over @p prog restricted to @p cfg, reusing
 * an existing abstract-interpretation result @p ai for address
 * resolution (the caller already paid for the fixpoint).
 */
AliasResult analyzeAliases(const Program &prog, const Cfg &cfg,
                           const AbsintResult &ai);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_ALIAS_HH

#include "analysis/alias.hh"

#include <deque>

namespace mssp::analysis
{

namespace
{

/** Push @p mask through one instruction: a FORK starts the region
 *  named by its task-map index; everything else passes through. */
RegionMask
regionStep(const Instruction &inst, RegionMask mask)
{
    if (inst.op == Opcode::Fork)
        return regionBitOf(static_cast<uint32_t>(inst.imm));
    return mask;
}

/** Forward fixpoint of the fork-region masks over @p cfg. */
void
solveRegions(const Cfg &cfg, AliasResult &out)
{
    std::map<uint32_t, RegionMask> &in = out.blockRegions;
    std::deque<uint32_t> work;
    auto inject = [&](uint32_t start, RegionMask mask) {
        RegionMask &slot = in[start];
        if ((slot | mask) != slot) {
            slot |= mask;
            work.push_back(start);
        }
    };

    // The entry starts before any fork; a root that no explicit edge
    // reaches is an indirect-jump landing pad (call continuation,
    // restart point) and can be entered from any region.
    inject(cfg.entry(), RegionEntry);
    for (uint32_t r : cfg.roots()) {
        if (r != cfg.entry() && cfg.preds(r).empty())
            inject(r, RegionAll);
    }

    while (!work.empty()) {
        uint32_t start = work.front();
        work.pop_front();
        const BasicBlock &bb = cfg.blockAt(start);
        RegionMask mask = in[start];
        for (const Instruction &inst : bb.insts)
            mask = regionStep(inst, mask);
        for (uint32_t s : bb.succs) {
            if (cfg.hasBlock(s))
                inject(s, mask);
        }
    }
}

} // anonymous namespace

AliasResult
analyzeAliases(const Program &prog, const Cfg &cfg,
               const AbsintResult &ai)
{
    AliasResult out;
    solveRegions(cfg, out);

    for (const auto &[start, bb] : cfg.blocks()) {
        // Record the fork sites even in abstractly unreachable code
        // (the region bits must agree with the task map regardless).
        RegionMask rm = RegionEntry;
        auto rm_it = out.blockRegions.find(start);
        if (rm_it != out.blockRegions.end())
            rm = rm_it->second;

        auto in_it = ai.blockIn.find(start);
        bool reachable =
            in_it != ai.blockIn.end() && in_it->second.reachable;
        AbsState st =
            reachable ? in_it->second : AbsState::entry();

        for (size_t i = 0; i < bb.insts.size(); ++i) {
            const Instruction &inst = bb.insts[i];
            uint32_t pc = bb.pcOf(i);
            if (inst.op == Opcode::Fork) {
                auto idx = static_cast<uint32_t>(inst.imm);
                if (idx + 1 >= 63)
                    out.regionOverflow = true;
                if (idx >= out.forkPcs.size())
                    out.forkPcs.resize(idx + 1, UINT32_MAX);
                out.forkPcs[idx] = pc;
            }
            if (reachable &&
                (isLoad(inst.op) || isStore(inst.op))) {
                MemAccess acc;
                acc.pc = pc;
                acc.isStore = isStore(inst.op);
                acc.addr = absMemAddr(st, inst);
                if (acc.isStore)
                    acc.value = st.reg(inst.rs2);
                acc.block = start;
                acc.regions = rm;
                (acc.isStore ? out.stores : out.loads)
                    .push_back(acc);
            }
            absStep(pc, inst, st, &prog, &ai.stores);
            rm = regionStep(inst, rm);
        }
    }

    for (const MemAccess &s : out.stores) {
        for (unsigned bit = 0; bit < 64; ++bit) {
            if (!(s.regions & (1ull << bit)))
                continue;
            RegionWriteSummary &rw = out.regionWrites[bit];
            rw.span = rw.span.join(s.addr);
            ++rw.storeCount;
            rw.storePcs.push_back(s.pc);
        }
    }
    return out;
}

} // namespace mssp::analysis

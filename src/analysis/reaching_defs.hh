/**
 * @file
 * Reaching definitions over the distiller IR.
 *
 * A forward may-analysis on the generic solver: which definition
 * sites (block, instruction, register) can reach each block entry.
 * Every register also gets an *entry pseudo-definition* representing
 * the value architected state holds when the master (re)starts — a
 * use reached only by its pseudo-def executes before any real def on
 * some path, which is exactly the linter's use-before-def condition.
 *
 * Conservative treatment of indirect control flow (DESIGN.md §3.9):
 * a call terminator is modeled as defining *every* register, because
 * the graph's call-return edge short-circuits the callee (whose jalr
 * ends the graph); without this, values produced inside the callee
 * would appear undefined at the return point.
 */

#ifndef MSSP_ANALYSIS_REACHING_DEFS_HH
#define MSSP_ANALYSIS_REACHING_DEFS_HH

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hh"

namespace mssp
{

class DistillIr;

namespace analysis
{

/** One definition site. */
struct DefSite
{
    /** Block id; -1 for entry pseudo-definitions. */
    int block = -1;
    /** Body index; -1 for a terminator def (call link register or a
     *  modeled call clobber) and for pseudo-definitions. */
    int inst = -1;
    uint8_t reg = 0;
    /** Original PC of the defining instruction (UINT32_MAX for
     *  pseudo-definitions and modeled clobbers). */
    uint32_t origPc = UINT32_MAX;
};

class ReachingDefs
{
  public:
    /** Run the analysis over the alive blocks of @p ir. */
    static ReachingDefs compute(const DistillIr &ir);

    const std::vector<DefSite> &defs() const { return defs_; }

    /** Def-site index of register @p r's entry pseudo-definition. */
    int pseudoDefOf(uint8_t r) const { return r - 1; }

    bool isPseudo(int def_index) const
    {
        return defs_[static_cast<size_t>(def_index)].block < 0;
    }

    /** Does def site @p def_index reach the entry of @p block? */
    bool reachesBlockEntry(int def_index, int block) const;

    /** All def-site indices of @p reg reaching the point just before
     *  body instruction @p inst_index of @p block. */
    std::vector<int> defsReachingUse(const DistillIr &ir, int block,
                                     int inst_index,
                                     uint8_t reg) const;

    unsigned solverSweeps() const { return sweeps_; }

  private:
    std::vector<DefSite> defs_;
    /** Per-block bitset (indexed by def site) at block entry. */
    std::vector<std::vector<uint64_t>> in_;
    /** Def-site indices grouped by register. */
    std::vector<std::vector<int>> by_reg_;
    unsigned sweeps_ = 0;
};

} // namespace analysis
} // namespace mssp

#endif // MSSP_ANALYSIS_REACHING_DEFS_HH

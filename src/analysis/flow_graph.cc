#include "analysis/flow_graph.hh"

#include <algorithm>

#include "cfg/cfg.hh"
#include "distill/ir.hh"
#include "sim/logging.hh"

namespace mssp::analysis
{

std::vector<int>
FlowGraph::rpo() const
{
    std::vector<int> post;
    if (succs.empty())
        return post;
    std::vector<uint8_t> seen(size(), 0);

    struct Frame
    {
        int node;
        size_t nextSucc;
    };
    std::vector<Frame> stack;

    std::vector<int> all_roots{entry};
    all_roots.insert(all_roots.end(), roots.begin(), roots.end());
    for (int root : all_roots) {
        if (seen[static_cast<size_t>(root)])
            continue;
        seen[static_cast<size_t>(root)] = 1;
        stack.push_back({root, 0});
        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto &ss = succs[static_cast<size_t>(f.node)];
            if (f.nextSucc < ss.size()) {
                int s = ss[f.nextSucc++];
                if (!seen[static_cast<size_t>(s)]) {
                    seen[static_cast<size_t>(s)] = 1;
                    stack.push_back({s, 0});
                }
            } else {
                post.push_back(f.node);
                stack.pop_back();
            }
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

FlowGraph
graphOfCfg(const Cfg &cfg, std::vector<uint32_t> &starts)
{
    starts.clear();
    std::vector<int> ids;
    for (const auto &[start, bb] : cfg.blocks())
        starts.push_back(start);

    auto id_of = [&](uint32_t pc) -> int {
        auto it = std::lower_bound(starts.begin(), starts.end(), pc);
        if (it == starts.end() || *it != pc)
            return -1;
        return static_cast<int>(it - starts.begin());
    };

    FlowGraph g(starts.size());
    g.entry = id_of(cfg.entry());
    MSSP_ASSERT(g.entry >= 0);
    for (uint32_t root : cfg.roots()) {
        int id = id_of(root);
        if (id >= 0 && id != g.entry)
            g.roots.push_back(id);
    }
    for (const auto &[start, bb] : cfg.blocks()) {
        int from = id_of(start);
        for (uint32_t s : bb.succs) {
            int to = id_of(s);
            if (to >= 0)
                g.addEdge(from, to);
        }
    }
    return g;
}

FlowGraph
graphOfIr(const DistillIr &ir)
{
    FlowGraph g(ir.blocks().size());
    g.entry = ir.entryBlock();
    for (const IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        for (int s : blk.succIds()) {
            if (ir.block(s).alive)
                g.addEdge(blk.id, s);
        }
    }
    return g;
}

std::vector<int>
computeIdom(const FlowGraph &g)
{
    std::vector<int> idom(g.size(), -1);
    if (g.succs.empty())
        return idom;
    std::vector<int> order = g.rpo();

    // rpoNum[n] = position of n in RPO (lower = earlier).
    std::vector<int> rpo_num(g.size(), -1);
    for (size_t i = 0; i < order.size(); ++i)
        rpo_num[static_cast<size_t>(order[i])] = static_cast<int>(i);

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_num[static_cast<size_t>(a)] >
                   rpo_num[static_cast<size_t>(b)]) {
                a = idom[static_cast<size_t>(a)];
            }
            while (rpo_num[static_cast<size_t>(b)] >
                   rpo_num[static_cast<size_t>(a)]) {
                b = idom[static_cast<size_t>(b)];
            }
        }
        return a;
    };

    idom[static_cast<size_t>(g.entry)] = g.entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int n : order) {
            if (n == g.entry)
                continue;
            int new_idom = -1;
            for (int p : g.preds[static_cast<size_t>(n)]) {
                if (idom[static_cast<size_t>(p)] < 0)
                    continue;   // pred not yet processed / unreachable
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 &&
                idom[static_cast<size_t>(n)] != new_idom) {
                idom[static_cast<size_t>(n)] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

DomTree::DomTree(const FlowGraph &g)
    : idom_(computeIdom(g)), depth_(g.size(), -1)
{
    // Depths via memoized idom walks (the tree is acyclic).
    for (size_t n = 0; n < idom_.size(); ++n) {
        if (idom_[n] < 0 || depth_[n] >= 0)
            continue;
        std::vector<size_t> chain;
        size_t m = n;
        while (depth_[m] < 0 &&
               idom_[m] != static_cast<int>(m)) {
            chain.push_back(m);
            m = static_cast<size_t>(idom_[m]);
        }
        int base = idom_[m] == static_cast<int>(m) ? 0 : depth_[m];
        for (auto it = chain.rbegin(); it != chain.rend(); ++it)
            depth_[*it] = ++base;
        if (idom_[m] == static_cast<int>(m))
            depth_[m] = 0;
    }
}

bool
DomTree::dominates(int a, int b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    while (depth_[static_cast<size_t>(b)] >
           depth_[static_cast<size_t>(a)]) {
        b = idom_[static_cast<size_t>(b)];
    }
    return a == b;
}

SccResult
computeSccs(const FlowGraph &g)
{
    SccResult res;
    res.comp.assign(g.size(), -1);
    if (g.succs.empty())
        return res;

    // Iterative Tarjan.
    std::vector<int> index(g.size(), -1), lowlink(g.size(), 0);
    std::vector<uint8_t> on_stack(g.size(), 0);
    std::vector<int> scc_stack;
    int next_index = 0;

    struct Frame
    {
        int node;
        size_t nextSucc;
    };
    std::vector<Frame> call_stack;

    auto visit = [&](int root) {
        call_stack.push_back({root, 0});
        index[static_cast<size_t>(root)] =
            lowlink[static_cast<size_t>(root)] = next_index++;
        scc_stack.push_back(root);
        on_stack[static_cast<size_t>(root)] = 1;

        while (!call_stack.empty()) {
            Frame &f = call_stack.back();
            auto v = static_cast<size_t>(f.node);
            if (f.nextSucc < g.succs[v].size()) {
                int w = g.succs[v][f.nextSucc++];
                auto wi = static_cast<size_t>(w);
                if (index[wi] < 0) {
                    index[wi] = lowlink[wi] = next_index++;
                    scc_stack.push_back(w);
                    on_stack[wi] = 1;
                    call_stack.push_back({w, 0});
                } else if (on_stack[wi]) {
                    lowlink[v] = std::min(lowlink[v], index[wi]);
                }
            } else {
                if (lowlink[v] == index[v]) {
                    std::vector<int> members;
                    int w;
                    do {
                        w = scc_stack.back();
                        scc_stack.pop_back();
                        on_stack[static_cast<size_t>(w)] = 0;
                        res.comp[static_cast<size_t>(w)] = res.count;
                        members.push_back(w);
                    } while (w != f.node);
                    res.members.push_back(std::move(members));
                    ++res.count;
                }
                int done = f.node;
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    auto p =
                        static_cast<size_t>(call_stack.back().node);
                    lowlink[p] = std::min(
                        lowlink[p], lowlink[static_cast<size_t>(done)]);
                }
            }
        }
    };

    for (int n : g.rpo()) {
        if (index[static_cast<size_t>(n)] < 0)
            visit(n);
    }

    res.cyclic.assign(static_cast<size_t>(res.count), false);
    for (int c = 0; c < res.count; ++c) {
        const auto &members = res.members[static_cast<size_t>(c)];
        if (members.size() > 1) {
            res.cyclic[static_cast<size_t>(c)] = true;
            continue;
        }
        int n = members[0];
        for (int s : g.succs[static_cast<size_t>(n)]) {
            if (s == n)
                res.cyclic[static_cast<size_t>(c)] = true;
        }
    }
    return res;
}

} // namespace mssp::analysis

/**
 * @file
 * computeLiveness(Cfg) and computeIrLiveness(DistillIr), both as thin
 * gen/kill builders over the shared solver (see liveness.hh).
 */

#include "analysis/liveness.hh"

#include "distill/ir.hh"

namespace mssp
{

namespace
{

/** Accumulate one instruction into a block's gen/kill masks. */
void
foldDefUse(RegMask def, RegMask use, RegMask &gen, RegMask &kill)
{
    gen |= use & ~kill;
    kill |= def;
}

} // anonymous namespace

std::map<uint32_t, BlockLiveness>
computeLiveness(const Cfg &cfg)
{
    using namespace analysis;

    std::vector<uint32_t> starts;
    FlowGraph g = graphOfCfg(cfg, starts);
    MaskDomain dom(g.size());

    for (size_t i = 0; i < starts.size(); ++i) {
        const BasicBlock &bb = cfg.blockAt(starts[i]);
        RegMask gen = 0, kill = 0;
        for (const Instruction &inst : bb.insts) {
            RegMask def, use;
            instDefUse(inst, def, use);
            foldDefUse(def, use, gen, kill);
        }
        dom.gen[i] = gen;
        dom.kill[i] = kill;

        switch (bb.term) {
          case TermKind::IndirectJump:
          case TermKind::Fault:
            // Unknown continuation: everything may be read.
            dom.boundaries[i] = AllRegsMask;
            break;
          case TermKind::Halt:
            break;
          default:
            // Successors that are not blocks (jumps into unmapped
            // memory) are exits with unknown reads.
            for (uint32_t s : bb.succs) {
                if (!cfg.hasBlock(s))
                    dom.boundaries[i] = AllRegsMask;
            }
            break;
        }
    }

    auto solved = solveRegLiveness(g, dom);
    std::map<uint32_t, BlockLiveness> live;
    for (size_t i = 0; i < starts.size(); ++i)
        live[starts[i]] = {solved.out[i], solved.in[i]};
    return live;
}

std::vector<BlockLiveness>
computeIrLiveness(const DistillIr &ir)
{
    using namespace analysis;

    FlowGraph g = graphOfIr(ir);
    MaskDomain dom(g.size());

    for (const IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        auto i = static_cast<size_t>(blk.id);
        RegMask gen = 0, kill = 0;
        for (const IrInst &iinst : blk.body) {
            RegMask def, use;
            irInstDefUse(iinst, def, use);
            foldDefUse(def, use, gen, kill);
        }
        // Terminator uses (branch operands, jalr base) and the link
        // register definition of calls.
        if (blk.term == TermKind::CondBranch ||
            blk.term == TermKind::IndirectJump) {
            RegMask def, use;
            instDefUse(blk.termInst, def, use);
            foldDefUse(def, use, gen, kill);
        } else if (blk.term == TermKind::Jump &&
                   blk.termInst.rd != 0) {
            foldDefUse(1u << blk.termInst.rd, 0, gen, kill);
        }
        dom.gen[i] = gen;
        dom.kill[i] = kill;

        switch (blk.term) {
          case TermKind::IndirectJump:
          case TermKind::Fault:
            dom.boundaries[i] = AllRegsMask;
            break;
          case TermKind::Halt:
            break;
          default:
            // graphOfIr drops edges into dead blocks; keep the old
            // conservative treatment (dead successor = all live).
            for (int s : blk.succIds()) {
                if (!ir.block(s).alive)
                    dom.boundaries[i] = AllRegsMask;
            }
            break;
        }
    }

    auto solved = solveRegLiveness(g, dom);
    std::vector<BlockLiveness> live(ir.blocks().size());
    for (const IrBlock &blk : ir.blocks()) {
        if (!blk.alive)
            continue;
        auto i = static_cast<size_t>(blk.id);
        live[i] = {solved.out[i], solved.in[i]};
    }
    return live;
}

} // namespace mssp

/**
 * @file
 * Graph substrate for the dataflow framework.
 *
 * Every analysis in src/analysis/ runs over a FlowGraph: a dense,
 * integer-indexed digraph with a distinguished entry node. Adapters
 * build one from either program representation (the binary-level Cfg
 * or the distiller's DistillIr) so an analysis written once serves the
 * distiller, the linter and the tests alike.
 *
 * On top of the raw graph this header provides the two structural
 * analyses everything else leans on: immediate dominators
 * (Cooper-Harvey-Kennedy over RPO) and strongly connected components
 * (Tarjan), the latter being how the linter finds inescapable loops.
 */

#ifndef MSSP_ANALYSIS_FLOW_GRAPH_HH
#define MSSP_ANALYSIS_FLOW_GRAPH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mssp
{

class Cfg;
class DistillIr;

namespace analysis
{

/** A dense digraph with an entry node (node ids are 0..size-1). */
struct FlowGraph
{
    int entry = 0;
    /** Additional discovery roots (multi-entry graphs, e.g. the
     *  restart points of a distilled image). May repeat the entry. */
    std::vector<int> roots;
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;

    FlowGraph() = default;
    explicit FlowGraph(size_t n) : succs(n), preds(n) {}

    size_t size() const { return succs.size(); }

    void
    addEdge(int from, int to)
    {
        succs[static_cast<size_t>(from)].push_back(to);
        preds[static_cast<size_t>(to)].push_back(from);
    }

    /**
     * Reverse post-order of the nodes reachable from the entry or
     * any extra root. Forward problems converge fastest iterating in
     * this order, backward problems in its reverse.
     */
    std::vector<int> rpo() const;
};

/**
 * Build a FlowGraph over a Cfg. Node i corresponds to @p starts[i]
 * (block-start PCs in ascending order); edges to nonexistent blocks
 * are dropped (the Cfg models them as exits).
 */
FlowGraph graphOfCfg(const Cfg &cfg, std::vector<uint32_t> &starts);

/**
 * Build a FlowGraph over a DistillIr. Node ids equal IR block ids;
 * dead blocks keep their id but get no edges, and edges from alive
 * blocks into dead blocks are dropped (callers that need the
 * conservative "dead successor = anything" treatment handle it in
 * their boundary conditions, as computeIrLiveness does).
 */
FlowGraph graphOfIr(const DistillIr &ir);

/**
 * Immediate dominators (Cooper, Harvey & Kennedy, "A Simple, Fast
 * Dominance Algorithm"). idom[entry] == entry; nodes unreachable from
 * the entry get -1.
 */
std::vector<int> computeIdom(const FlowGraph &g);

/** Dominator tree with O(depth) reflexive dominance queries. */
class DomTree
{
  public:
    explicit DomTree(const FlowGraph &g);

    /** @return true when @p a dominates @p b (reflexively). */
    bool dominates(int a, int b) const;

    /** Immediate dominator of @p n (-1 for unreachable, entry for
     *  the entry itself). */
    int idom(int n) const { return idom_[static_cast<size_t>(n)]; }

    bool reachable(int n) const
    {
        return idom_[static_cast<size_t>(n)] >= 0;
    }

  private:
    std::vector<int> idom_;
    std::vector<int> depth_;
};

/** Strongly connected components (Tarjan). */
struct SccResult
{
    /** Component id per node (-1 when the node has no edges at all
     *  and is unreachable; otherwise 0..count-1). */
    std::vector<int> comp;
    int count = 0;

    /** Members of each component. */
    std::vector<std::vector<int>> members;

    /** True when the component loops (>= 2 nodes, or a self-edge). */
    std::vector<bool> cyclic;
};

/** Compute SCCs over the nodes reachable from the entry. */
SccResult computeSccs(const FlowGraph &g);

} // namespace analysis
} // namespace mssp

#endif // MSSP_ANALYSIS_FLOW_GRAPH_HH

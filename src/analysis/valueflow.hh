/**
 * @file
 * SCCP-style value-flow analysis with store-to-load forwarding.
 *
 * The speculation-safety classifier (analysis/specsafe.hh) answers
 * *whether* a distilled-image load is safe to speculate; this pass
 * answers *what value* it yields. It reruns the interval abstract
 * interpreter (analysis/absint.hh) over the merged original+distilled
 * image extended with a flow-sensitive memory component: for every
 * provably-disambiguated load address (the constant, non-MMIO
 * addresses of ProvablyInvariant/RegionInvariant loads) the abstract
 * state carries the interval of values that memory word can hold
 * *at that program point*. Stores with an exactly known address
 * update the tracked word strongly; stores whose address interval
 * merely overlaps it join their value in weakly; everything else is
 * the ordinary register interval transfer (constant arithmetic
 * delegated to evalAlu, decided branches pruned via the solver's
 * edgeOut hook — DESIGN.md §5.4).
 *
 * Per qualifying load the pass derives a forwarding fact:
 *
 *  - MustValue (proof Proven): the tracked word is one constant at
 *    the load — either no store anywhere in the merged image may
 *    alias it (the invariant-image case) or flow-sensitivity shows
 *    every path to the load leaves the same constant there.
 *  - LikelyValue (proof Likely): the reaching store-set is constant-
 *    valued but not singleton; the fact carries the full feasible
 *    constant set (initial image word joined with every aliasing
 *    store's constant) and the demoting store as counterexample.
 *  - No fact: some aliasing store's value could not be pinned to a
 *    constant, or the feasible set exceeds the report bound.
 *
 * Like specsafe, the analysis runs in two passes: the sequential
 * original program seeds register *and* memory boundary state at
 * every master restart point, so facts survive the loops fork sites
 * sit in. The claims are falsified dynamically: crossval replays the
 * merged image on SEQ and fails the gate on any Proven mismatch
 * (eval/crossval.hh, tests/test_valueflow_fuzz.cpp).
 */

#ifndef MSSP_ANALYSIS_VALUEFLOW_HH
#define MSSP_ANALYSIS_VALUEFLOW_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/specsafe.hh"

namespace mssp::analysis
{

/** One store-to-load forwarding fact for a distilled-image load. */
struct LoadValueFact
{
    uint32_t pc = 0;      ///< distilled PC of the load
    uint32_t addr = 0;    ///< proven constant address it reads
    /** Safety class the fact piggybacks on (never Risky). */
    LoadSpecClass cls = LoadSpecClass::ProvablyInvariant;
    ValueProof proof = ValueProof::Proven;
    /** Predicted value: the single feasible constant (Proven) or the
     *  initial image word (Likely). */
    uint32_t value = 0;
    /** Every constant the word can feasibly hold at the load,
     *  ascending; singleton exactly for Proven facts. */
    std::vector<uint32_t> feasible;
    /** Demoting store for Likely facts (UINT32_MAX otherwise). */
    uint32_t storePc = UINT32_MAX;
    /** Fork regions the load can execute in (analysis/alias.hh). */
    RegionMask regions = RegionEntry;
    /** Proof sketch: which rule fired and from what evidence. */
    std::string detail;
};

/** Region context the speculation planner's cost model consumes. */
struct LoadRegionInfo
{
    RegionMask regions = RegionEntry;
    LoadSpecClass cls = LoadSpecClass::Risky;
};

/** Everything the value-flow pass can say about one image. */
struct ValueFlowResult
{
    /** Forwarding facts, ascending by load PC. */
    std::vector<LoadValueFact> facts;

    /** Loads eligible for forwarding (constant non-MMIO address and
     *  an invariant safety class); facts.size() <= this. */
    size_t loadsConsidered = 0;

    /** Region mask + class of every classified load (planner input:
     *  Risky-load density of the regions a candidate shares). */
    std::map<uint32_t, LoadRegionInfo> loadRegions;

    /** Region-mask in-state per merged-image block leader. */
    std::map<uint32_t, RegionMask> blockRegions;

    size_t provenFacts() const;
    size_t likelyFacts() const;

    /** The fact for the load at @p pc, or null. */
    const LoadValueFact *factAt(uint32_t pc) const;
};

/** Feasible-set bound: loads with more reaching constants than this
 *  get no fact (predicting 1-of-N is hopeless for large N). */
constexpr size_t kMaxFeasibleValues = 8;

/**
 * Run the value-flow analysis over @p orig + @p dist. @p classes is
 * the speculation-safety classification of the same image
 * (classifySpecLoads); only its invariant-class loads are eligible.
 */
ValueFlowResult
analyzeValueFlow(const Program &orig, const DistilledProgram &dist,
                 const std::vector<LoadClassification> &classes);

} // namespace mssp::analysis

#endif // MSSP_ANALYSIS_VALUEFLOW_HH

#include "analysis/verifier.hh"

#include <algorithm>
#include <bit>
#include <set>

#include "analysis/flow_graph.hh"
#include "analysis/liveness.hh"
#include "cfg/cfg.hh"
#include "exec/executor.hh"
#include "sim/logging.hh"

namespace mssp::analysis
{

const char *
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

const char *
lintCheckName(LintCheck check)
{
    switch (check) {
      case LintCheck::DecodeFault: return "decode-fault";
      case LintCheck::BranchTarget: return "branch-target";
      case LintCheck::ForkIndex: return "fork-index";
      case LintCheck::ForkTarget: return "fork-target";
      case LintCheck::RestartMap: return "restart-map";
      case LintCheck::AddrMap: return "addr-map";
      case LintCheck::InescapableLoop: return "inescapable-loop";
      case LintCheck::CheckpointMissing: return "checkpoint-missing";
      case LintCheck::CheckpointUnderApprox:
        return "checkpoint-under-approx";
      case LintCheck::CheckpointOverApprox:
        return "checkpoint-over-approx";
      case LintCheck::UseBeforeDef: return "use-before-def";
      case LintCheck::EditTarget: return "edit-target";
      case LintCheck::EditOutsideProgram:
        return "edit-outside-program";
      case LintCheck::SemanticBranch: return "semantic-branch";
      case LintCheck::SemanticConst: return "semantic-const";
      case LintCheck::SemanticLoad: return "semantic-load";
      case LintCheck::SemanticStore: return "semantic-store";
      case LintCheck::SemanticLiveOut: return "semantic-live-out";
      case LintCheck::SemanticUnreachable:
        return "semantic-unreachable";
      case LintCheck::EditMetadata: return "edit-metadata";
      case LintCheck::SpecSafeMismatch: return "specsafe-mismatch";
      case LintCheck::SpecSafeCoverage: return "specsafe-coverage";
      case LintCheck::SpecPlanMismatch: return "specplan-mismatch";
      case LintCheck::SpecPlanCoverage: return "specplan-coverage";
      case LintCheck::SpecEditMismatch: return "specedit-mismatch";
      case LintCheck::SpecEditCoverage: return "specedit-coverage";
    }
    return "?";
}

namespace
{

/** "ra, sp, a0" for a register mask. */
std::string
maskNames(RegMask mask)
{
    std::string out;
    for (unsigned r = 1; r < NumRegs; ++r) {
        if (mask & (1u << r)) {
            if (!out.empty())
                out += ", ";
            out += regName(r);
        }
    }
    return out;
}

/** Original block containing @p pc, or null. */
const BasicBlock *
blockContaining(const Cfg &cfg, uint32_t pc)
{
    const auto &blocks = cfg.blocks();
    auto it = blocks.upper_bound(pc);
    if (it == blocks.begin())
        return nullptr;
    --it;
    return pc < it->second.endPc() ? &it->second : nullptr;
}

/** Shared state of one verification run. */
struct Verify
{
    const Program &orig;
    const DistilledProgram &dist;
    LintReport rep;

    Cfg origCfg;
    Cfg distCfg;
    std::map<uint32_t, BlockLiveness> origLive;
    std::vector<uint32_t> starts;   ///< distilled block leaders
    FlowGraph graph;                ///< over distCfg, starts[i] <-> i

    Verify(const Program &orig, const DistilledProgram &dist)
        : orig(orig), dist(dist),
          origCfg(Cfg::build(orig, orig.entry()))
    {
        origLive = computeLiveness(origCfg);

        // Discovery roots: layout lowers calls to `loadimm ra; jal
        // r0`, so call continuations are unreachable from the entry
        // in a rebuilt CFG — seed them from the restart and addr
        // maps the image carries.
        std::vector<uint32_t> roots;
        for (const auto &[o, dpc] : dist.entryMap)
            roots.push_back(dpc);
        for (const auto &[o, dpc] : dist.addrMap)
            roots.push_back(dpc);
        distCfg = Cfg::build(dist.prog, dist.prog.entry(), roots);
        graph = graphOfCfg(distCfg, starts);
    }

    void
    add(Severity sev, LintCheck check, uint32_t pc, uint32_t block,
        std::string message)
    {
        Finding f;
        f.severity = sev;
        f.check = check;
        f.pc = pc;
        f.block = block;
        f.message = std::move(message);
        rep.findings.push_back(std::move(f));
    }

    void
    addEdit(Severity sev, LintCheck check, const DistillEdit &e,
            std::string message)
    {
        Finding f;
        f.severity = sev;
        f.check = check;
        f.pc = e.origPc;
        f.hasPass = true;
        f.pass = e.pass;
        f.message = std::move(message);
        rep.findings.push_back(std::move(f));
    }

    /** Graph node of distilled block leader @p pc, or -1. */
    int
    nodeOf(uint32_t pc) const
    {
        auto it = std::lower_bound(starts.begin(), starts.end(), pc);
        if (it == starts.end() || *it != pc)
            return -1;
        return static_cast<int>(it - starts.begin());
    }

    void checkControlFlow();
    void checkForksAndMaps();
    void checkInescapableLoops();
    void checkCheckpoints();
    void checkUseBeforeDef();
    void checkEdits();
    void checkSpecEdits();
};

// Check 1a: every reachable word decodes and every control transfer
// lands on a block of the image.
void
Verify::checkControlFlow()
{
    for (const auto &[start, bb] : distCfg.blocks()) {
        if (bb.term == TermKind::Fault) {
            uint32_t fault_pc =
                bb.insts.empty()
                    ? bb.endPc()
                    : bb.pcOf(bb.insts.size() - 1);
            bool off_image = !dist.prog.hasWord(fault_pc);
            add(Severity::Error, LintCheck::DecodeFault, fault_pc,
                start,
                off_image
                    ? strfmt("control flow reaches 0x%x, which is "
                             "outside the distilled image",
                             fault_pc)
                    : strfmt("reachable word 0x%x at 0x%x does not "
                             "decode",
                             dist.prog.word(fault_pc), fault_pc));
        }
        for (uint32_t s : bb.succs) {
            if (!distCfg.hasBlock(s)) {
                add(Severity::Error, LintCheck::BranchTarget,
                    bb.insts.empty() ? start
                                     : bb.pcOf(bb.insts.size() - 1),
                    start,
                    strfmt("control transfer to 0x%x, which is not a "
                           "block of the distilled image",
                           s));
            }
        }
    }
}

// Check 1b: FORK instructions, the task map and the restart/addr maps
// agree with each other and with the original program.
void
Verify::checkForksAndMaps()
{
    // Every FORK in the image names a valid task whose restart-map
    // entry points back at it.
    for (const auto &[start, bb] : distCfg.blocks()) {
        for (size_t i = 0; i < bb.insts.size(); ++i) {
            const Instruction &inst = bb.insts[i];
            if (inst.op != Opcode::Fork)
                continue;
            uint32_t pc = bb.pcOf(i);
            auto idx = static_cast<uint32_t>(inst.imm);
            if (idx >= dist.taskMap.size()) {
                add(Severity::Error, LintCheck::ForkIndex, pc, start,
                    strfmt("fork index %u exceeds the task map "
                           "(%zu entries)",
                           idx, dist.taskMap.size()));
                continue;
            }
            uint32_t orig_pc = dist.taskMap[idx];
            if (!origCfg.hasBlock(orig_pc)) {
                add(Severity::Error, LintCheck::ForkTarget, pc, start,
                    strfmt("task %u starts at 0x%x, which is not an "
                           "original-program block leader",
                           idx, orig_pc));
                continue;
            }
            auto it = dist.entryMap.find(orig_pc);
            if (it == dist.entryMap.end() || it->second != pc) {
                add(Severity::Error, LintCheck::RestartMap, pc, start,
                    strfmt("restart map does not point at the FORK "
                           "for task %u (original 0x%x)",
                           idx, orig_pc));
            }
        }
    }

    // Every restart-map entry lands on a FORK of the right task.
    for (const auto &[orig_pc, dpc] : dist.entryMap) {
        Instruction inst = decode(dist.prog.word(dpc));
        bool ok = dist.prog.hasWord(dpc) && inst.op == Opcode::Fork &&
                  static_cast<uint32_t>(inst.imm) <
                      dist.taskMap.size() &&
                  dist.taskMap[static_cast<uint32_t>(inst.imm)] ==
                      orig_pc;
        if (!ok) {
            add(Severity::Error, LintCheck::RestartMap, dpc,
                UINT32_MAX,
                strfmt("restart map sends original 0x%x to 0x%x, "
                       "which is not that task's FORK",
                       orig_pc, dpc));
        }
    }

    for (const auto &[orig_pc, dpc] : dist.addrMap) {
        if (!origCfg.hasBlock(orig_pc)) {
            add(Severity::Warning, LintCheck::AddrMap, dpc,
                UINT32_MAX,
                strfmt("addr-map key 0x%x is not an original-program "
                       "block leader",
                       orig_pc));
        }
        if (!dist.prog.hasWord(dpc) || !distCfg.hasBlock(dpc)) {
            add(Severity::Error, LintCheck::AddrMap, dpc, UINT32_MAX,
                strfmt("addr map sends original 0x%x to 0x%x, which "
                       "is not a block of the distilled image",
                       orig_pc, dpc));
        }
    }
}

// Check 1c: a cyclic region with no exit traps the master forever
// (the branch-prune confinement hazard). A FORK inside still spawns
// tasks, so the machine limps along: warning instead of error.
void
Verify::checkInescapableLoops()
{
    SccResult scc = computeSccs(graph);
    for (int c = 0; c < scc.count; ++c) {
        if (!scc.cyclic[static_cast<size_t>(c)])
            continue;
        bool escapes = false;
        bool has_fork = false;
        uint32_t first_pc = UINT32_MAX;
        for (int n : scc.members[static_cast<size_t>(c)]) {
            auto i = static_cast<size_t>(n);
            const BasicBlock &bb = distCfg.blockAt(starts[i]);
            first_pc = std::min(first_pc, bb.start);
            // Halts leave the loop; jalr targets are unknown, assume
            // they may leave; faults are reported by checkControlFlow.
            if (bb.term == TermKind::Halt ||
                bb.term == TermKind::IndirectJump ||
                bb.term == TermKind::Fault) {
                escapes = true;
            }
            for (int s : graph.succs[i]) {
                if (scc.comp[static_cast<size_t>(s)] != c)
                    escapes = true;
            }
            for (const Instruction &inst : bb.insts) {
                if (inst.op == Opcode::Fork)
                    has_fork = true;
            }
        }
        if (escapes)
            continue;
        add(has_fork ? Severity::Warning : Severity::Error,
            LintCheck::InescapableLoop, first_pc, first_pc,
            strfmt("cyclic region at 0x%x has no exit%s", first_pc,
                   has_fork ? " (but forks tasks)"
                            : " and spawns no tasks"));
    }
}

// Check 2: the claimed checkpoint mask of every fork site covers the
// live-in set of the original task starting there.
void
Verify::checkCheckpoints()
{
    for (size_t i = 0; i < dist.taskMap.size(); ++i) {
        uint32_t orig_pc = dist.taskMap[i];
        auto live_it = origLive.find(orig_pc);
        if (live_it == origLive.end())
            continue;   // flagged by checkForksAndMaps already
        RegMask required = live_it->second.liveIn;

        auto ckpt_it = dist.checkpointRegs.find(orig_pc);
        if (ckpt_it == dist.checkpointRegs.end()) {
            add(Severity::Error, LintCheck::CheckpointMissing,
                orig_pc, orig_pc,
                strfmt("fork site 0x%x (task %zu) has no checkpoint "
                       "mask",
                       orig_pc, i));
            continue;
        }
        RegMask claim = ckpt_it->second & ~1u;

        RegMask missing = required & ~claim;
        if (missing) {
            add(Severity::Error, LintCheck::CheckpointUnderApprox,
                orig_pc, orig_pc,
                strfmt("task %zu at 0x%x reads {%s} before writing "
                       "them, but the checkpoint mask omits them",
                       i, orig_pc, maskNames(missing).c_str()));
        }
        RegMask waste = claim & ~required;
        if (waste) {
            add(Severity::Warning, LintCheck::CheckpointOverApprox,
                orig_pc, orig_pc,
                strfmt("task %zu at 0x%x checkpoints %d never-read "
                       "register(s) {%s}: wasted bandwidth",
                       i, orig_pc, std::popcount(waste),
                       maskNames(waste).c_str()));
        }
    }
}

// Check 4: forward "unchecked value" analysis. At each restart point
// the master seeds every register from architected state, but only
// the checkpointed ones are part of the distiller's prediction
// contract — a read of any other register before a write makes the
// master's output depend on unchecked state.
void
Verify::checkUseBeforeDef()
{
    MaskDomain dom(graph.size());

    // Transfer: a write cleans the register. gen stays empty.
    for (size_t i = 0; i < starts.size(); ++i) {
        const BasicBlock &bb = distCfg.blockAt(starts[i]);
        for (const Instruction &inst : bb.insts) {
            RegMask def, use;
            instDefUse(inst, def, use);
            dom.kill[i] |= def;
        }
    }

    // Boundary: at each restart point, everything outside the
    // claimed checkpoint mask is unchecked. A missing mask is
    // already an error; suppress the cascade here.
    for (const auto &[orig_pc, dpc] : dist.entryMap) {
        int n = nodeOf(dpc);
        if (n < 0)
            continue;
        auto it = dist.checkpointRegs.find(orig_pc);
        RegMask claim =
            it != dist.checkpointRegs.end() ? it->second : AllRegsMask;
        dom.boundaries[static_cast<size_t>(n)] |=
            AllRegsMask & ~claim;
    }

    auto solved = solveDataflow(graph, dom, Direction::Forward);

    std::set<std::pair<uint32_t, unsigned>> seen;
    for (size_t i = 0; i < starts.size(); ++i) {
        RegMask unchecked = solved.in[i];
        if (!unchecked)
            continue;
        const BasicBlock &bb = distCfg.blockAt(starts[i]);
        for (size_t k = 0; k < bb.insts.size() && unchecked; ++k) {
            const Instruction &inst = bb.insts[k];
            uint8_t srcs[2];
            unsigned n = sourceRegs(inst, srcs);
            for (unsigned s = 0; s < n; ++s) {
                unsigned r = srcs[s];
                if (!r || !(unchecked & (1u << r)))
                    continue;
                if (!seen.insert({bb.pcOf(k), r}).second)
                    continue;
                add(Severity::Warning, LintCheck::UseBeforeDef,
                    bb.pcOf(k), bb.start,
                    strfmt("register %s is read at 0x%x before any "
                           "write on a path from a restart, but is "
                           "not in that task's checkpoint set",
                           regName(r), bb.pcOf(k)));
            }
            RegMask def, use;
            instDefUse(inst, def, use);
            unchecked &= ~def;
        }
    }
}

// Check 3: replay the edit log against the original binary.
// Approximate passes may only touch the instruction kind they claim;
// semantics-preserving passes may only rewrite pure register-writing
// instructions (so no architected live-out can change).
void
Verify::checkEdits()
{
    for (const DistillEdit &e : dist.report.edits) {
        const char *pname = distillPassName(e.pass);

        const BasicBlock *bb = blockContaining(origCfg, e.origPc);
        if (!bb) {
            addEdit(Severity::Error, LintCheck::EditOutsideProgram, e,
                    strfmt("%s edit at 0x%x lies outside the "
                           "reachable original program",
                           pname, e.origPc));
            continue;
        }
        Instruction inst = decode(orig.word(e.origPc));

        auto bad = [&](const char *want) {
            addEdit(Severity::Error, LintCheck::EditTarget, e,
                    strfmt("%s edit at 0x%x targets %s, not %s",
                           pname, e.origPc, opcodeName(inst.op),
                           want));
        };

        switch (e.pass) {
          case DistillEdit::Pass::BranchPrune:
            if (!isCondBranch(inst.op))
                bad("a conditional branch");
            break;
          case DistillEdit::Pass::UnreachableElim:
            if (!origCfg.hasBlock(e.origPc)) {
                addEdit(Severity::Error, LintCheck::EditTarget, e,
                        strfmt("unreachable edit at 0x%x is not a "
                               "block leader",
                               e.origPc));
            }
            break;
          case DistillEdit::Pass::ConstFold:
            if (e.reg == 0) {
                // Branch fold.
                if (!isCondBranch(inst.op))
                    bad("a conditional branch");
            } else if (!writesReg(inst) || inst.rd != e.reg ||
                       inst.op == Opcode::Jal ||
                       inst.op == Opcode::Jalr) {
                bad(strfmt("a pure write of %s",
                           regName(e.reg))
                        .c_str());
            }
            break;
          case DistillEdit::Pass::Dce:
            // A removed instruction must be effect-free: a pure ALU
            // op, a load or a nop (stores, OUTs and control are
            // never dead).
            {
                uint32_t dummy;
                bool pure = evalAlu(inst.op, 0, 1, dummy) ||
                            inst.op == Opcode::Lw ||
                            inst.op == Opcode::Lui ||
                            inst.op == Opcode::Nop;
                if (!pure || (e.reg != 0 && (!writesReg(inst) ||
                                             inst.rd != e.reg))) {
                    bad("an effect-free instruction");
                }
            }
            break;
          case DistillEdit::Pass::SilentStoreElim:
            if (inst.op != Opcode::Sw)
                bad("a store");
            break;
          case DistillEdit::Pass::ValueSpec:
            if (inst.op != Opcode::Lw || inst.rd != e.reg)
                bad(strfmt("a load into %s", regName(e.reg)).c_str());
            break;
        }
    }
}

// Speculated-edit records (.mdo v5): each must name a real original
// load, its baked constant must still be in the image word(s) it
// points at (a tampered value is exactly what this catches), it must
// have ValueSpec provenance in the edit log, and its policing sites
// must be restart points of the image. De-speculated loads must not
// also be baked.
void
Verify::checkSpecEdits()
{
    for (const SpecEdit &e : dist.specEdits) {
        const BasicBlock *bb = blockContaining(origCfg, e.origPc);
        Instruction oinst =
            bb ? decode(orig.word(e.origPc)) : Instruction{};
        if (!bb || oinst.op != Opcode::Lw || oinst.rd != e.reg) {
            add(Severity::Error, LintCheck::SpecEditMismatch,
                e.origPc, bb ? bb->start : UINT32_MAX,
                strfmt("specedit at 0x%x does not name an original "
                       "load into %s",
                       e.origPc, regName(e.reg)));
            continue;
        }

        // Decode the baked constant out of the image and compare.
        bool ok = dist.prog.hasWord(e.distPc);
        uint32_t baked = 0;
        if (ok) {
            Instruction i1 = decode(dist.prog.word(e.distPc));
            if (i1.op == Opcode::Addi && i1.rs1 == 0 &&
                i1.rd == e.reg) {
                baked = static_cast<uint32_t>(i1.imm);
            } else if (i1.op == Opcode::Lui && i1.rd == e.reg) {
                baked = static_cast<uint32_t>(i1.imm) << 16;
                if (dist.prog.hasWord(e.distPc + 1)) {
                    Instruction i2 =
                        decode(dist.prog.word(e.distPc + 1));
                    if (i2.op == Opcode::Ori && i2.rd == e.reg &&
                        i2.rs1 == e.reg) {
                        baked |= static_cast<uint32_t>(i2.imm) &
                                 0xffffu;
                    }
                }
            } else {
                ok = false;
            }
        }
        if (!ok || baked != e.value) {
            add(Severity::Error, LintCheck::SpecEditMismatch,
                e.distPc, UINT32_MAX,
                ok ? strfmt("specedit for load 0x%x: image "
                            "materializes 0x%x at 0x%x, record says "
                            "0x%x (baked value tampered?)",
                            e.origPc, baked, e.distPc, e.value)
                   : strfmt("specedit for load 0x%x points at 0x%x, "
                            "which does not materialize a constant "
                            "into %s",
                            e.origPc, e.distPc, regName(e.reg)));
        }

        // Provenance: a matching ValueSpec edit must be in the log.
        bool logged = false;
        for (const DistillEdit &le : dist.report.edits) {
            if (le.pass == DistillEdit::Pass::ValueSpec &&
                le.origPc == e.origPc && le.reg == e.reg &&
                le.hasValue && le.value == e.value) {
                logged = true;
                break;
            }
        }
        if (!logged) {
            add(Severity::Error, LintCheck::SpecEditCoverage,
                e.origPc, bb->start,
                strfmt("specedit at 0x%x has no matching value-spec "
                       "entry in the edit log",
                       e.origPc));
        }

        for (uint32_t site : e.policedBy) {
            if (!dist.entryMap.count(site)) {
                add(Severity::Error, LintCheck::SpecEditMismatch,
                    e.origPc, bb->start,
                    strfmt("specedit at 0x%x is policed by 0x%x, "
                           "which is not a restart point of the "
                           "image",
                           e.origPc, site));
            }
        }
    }

    for (uint32_t pc : dist.specDropped) {
        for (const SpecEdit &e : dist.specEdits) {
            if (e.origPc == pc) {
                add(Severity::Error, LintCheck::SpecEditCoverage,
                    pc, UINT32_MAX,
                    strfmt("load 0x%x is both de-speculated "
                           "(specdrop) and baked (specedit)",
                           pc));
            }
        }
    }
}

} // anonymous namespace

LintReport
verifyDistilled(const Program &orig, const DistilledProgram &dist)
{
    Verify v(orig, dist);
    v.checkControlFlow();
    v.checkForksAndMaps();
    v.checkInescapableLoops();
    v.checkCheckpoints();
    v.checkUseBeforeDef();
    v.checkEdits();
    v.checkSpecEdits();
    return std::move(v.rep);
}

size_t
LintReport::errors() const
{
    size_t n = 0;
    for (const Finding &f : findings)
        n += f.severity == Severity::Error;
    return n;
}

size_t
LintReport::warnings() const
{
    return findings.size() - errors();
}

std::string
LintReport::toText() const
{
    std::string out;
    for (const Finding &f : findings) {
        out += strfmt("%s[%s]", severityName(f.severity),
                      lintCheckName(f.check));
        if (f.pc != UINT32_MAX)
            out += strfmt(" pc=0x%x", f.pc);
        if (f.block != UINT32_MAX && f.block != f.pc)
            out += strfmt(" block=0x%x", f.block);
        if (f.hasPass)
            out += strfmt(" pass=%s", distillPassName(f.pass));
        out += ": " + f.message + "\n";
    }
    out += strfmt("%zu error(s), %zu warning(s)\n", errors(),
                  warnings());
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strfmt("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strfmt("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

} // anonymous namespace

std::string
LintReport::toJson() const
{
    // Every deterministic JSON document in the repo names its schema
    // (docs/SCHEMAS.md), including this object when embedded in the
    // specsafe/specplan/semantic reports.
    std::string out = strfmt("{\"schema\": \"mssp-lint-v1\", "
                             "\"errors\": %zu, \"warnings\": %zu, "
                             "\"findings\": [",
                             errors(), warnings());
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            out += ", ";
        out += strfmt("{\"severity\": \"%s\", \"check\": \"%s\", ",
                      severityName(f.severity),
                      lintCheckName(f.check));
        if (f.pc != UINT32_MAX)
            out += strfmt("\"pc\": \"0x%x\", ", f.pc);
        else
            out += "\"pc\": null, ";
        if (f.block != UINT32_MAX)
            out += strfmt("\"block\": \"0x%x\", ", f.block);
        else
            out += "\"block\": null, ";
        if (f.hasPass)
            out += strfmt("\"pass\": \"%s\", ",
                          distillPassName(f.pass));
        else
            out += "\"pass\": null, ";
        out += strfmt("\"message\": \"%s\"}",
                      jsonEscape(f.message).c_str());
    }
    out += "]}\n";
    return out;
}

} // namespace mssp::analysis

/**
 * @file
 * Abstract interpreter implementation (see absint.hh).
 */

#include "analysis/absint.hh"

#include <bit>
#include <deque>

#include "analysis/dataflow.hh"
#include "arch/mmio.hh"
#include "exec/executor.hh"
#include "util/string_utils.hh"

namespace mssp::analysis
{

std::string
AbsVal::toString() const
{
    if (isBottom())
        return "none";
    if (isTop())
        return "unknown";
    if (isConst())
        return strfmt("0x%x", cval());
    return strfmt("[%lld, %lld]", static_cast<long long>(lo),
                  static_cast<long long>(hi));
}

namespace
{

/** Signed a < b over intervals. */
TriState
sltLess(const AbsVal &a, const AbsVal &b)
{
    if (a.hi < b.lo)
        return TriState::True;
    if (a.lo >= b.hi)
        return TriState::False;
    return TriState::Unknown;
}

/**
 * Unsigned a < b. Signed-nonnegative values form the low unsigned
 * half, signed-negative ones the high half; within one half the
 * signed order is the unsigned order.
 */
TriState
ultLess(const AbsVal &a, const AbsVal &b)
{
    bool a_low = a.lo >= 0, a_high = a.hi < 0;
    bool b_low = b.lo >= 0, b_high = b.hi < 0;
    if ((a_low && b_low) || (a_high && b_high))
        return sltLess(a, b);
    if (a_low && b_high)
        return TriState::True;
    if (a_high && b_low)
        return TriState::False;
    return TriState::Unknown;
}

AbsVal
fromTri(TriState t)
{
    switch (t) {
      case TriState::False: return AbsVal::constant(0);
      case TriState::True: return AbsVal::constant(1);
      case TriState::Unknown: break;
    }
    return AbsVal::range(0, 1);
}

/** Abstract ALU transfer. Constant operands delegate to evalAlu so
 *  the abstraction agrees with the executor by construction. */
AbsVal
absAlu(Opcode op, const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();

    // Lui only reads its (always-constant) immediate operand.
    if (op == Opcode::Lui && b.isConst()) {
        uint32_t out;
        evalAlu(op, 0, b.cval(), out);
        return AbsVal::constant(out);
    }
    if (a.isConst() && b.isConst()) {
        uint32_t out;
        if (evalAlu(op, a.cval(), b.cval(), out))
            return AbsVal::constant(out);
        return AbsVal::top();
    }

    switch (op) {
      case Opcode::Add:
      case Opcode::Addi:
        return AbsVal::range(a.lo + b.lo, a.hi + b.hi);
      case Opcode::Sub:
        return AbsVal::range(a.lo - b.hi, a.hi - b.lo);
      case Opcode::And:
      case Opcode::Andi:
        // Masking by a nonnegative value bounds the result by it.
        if (a.lo >= 0 && b.lo >= 0)
            return AbsVal::range(0, std::min(a.hi, b.hi));
        if (a.lo >= 0)
            return AbsVal::range(0, a.hi);
        if (b.lo >= 0)
            return AbsVal::range(0, b.hi);
        return AbsVal::top();
      case Opcode::Or:
      case Opcode::Ori:
      case Opcode::Xor:
      case Opcode::Xori:
        // Nonnegative operands cannot set bits above the highest
        // bit of either bound.
        if (a.lo >= 0 && b.lo >= 0) {
            auto m = static_cast<uint64_t>(std::max(a.hi, b.hi));
            return AbsVal::range(
                0, static_cast<int64_t>(std::bit_ceil(m + 1) - 1));
        }
        return AbsVal::top();
      case Opcode::Sll:
      case Opcode::Slli:
        if (b.isConst()) {
            unsigned s = b.cval() & 31;
            if (s == 0)
                return a;
            if (a.lo >= 0 && (a.hi << s) <= AbsVal::kMax)
                return AbsVal::range(a.lo << s, a.hi << s);
        }
        return AbsVal::top();
      case Opcode::Srl:
      case Opcode::Srli:
        if (b.isConst()) {
            unsigned s = b.cval() & 31;
            if (s == 0)
                return a;
            if (a.lo >= 0)
                return AbsVal::range(a.lo >> s, a.hi >> s);
            // Negative inputs shift in zeros: any result fits
            // [0, 2^(32-s) - 1], which is int32-representable.
            return AbsVal::range(0, static_cast<int64_t>(
                                        0xffffffffull >> s));
        }
        return AbsVal::top();
      case Opcode::Sra:
      case Opcode::Srai:
        if (b.isConst()) {
            unsigned s = b.cval() & 31;
            return AbsVal::range(a.lo >> s, a.hi >> s);
        }
        return AbsVal::top();
      case Opcode::Slt:
      case Opcode::Slti:
        return fromTri(sltLess(a, b));
      case Opcode::Sltu:
      case Opcode::Sltiu:
        return fromTri(ultLess(a, b));
      default:
        // Mul/Div/Rem intervals are not worth the wrap analysis.
        return AbsVal::top();
    }
}

/** Abstract address of a load/store: rs1 + sign-extended imm. */
AbsVal
memAddr(const AbsState &st, const Instruction &inst)
{
    return absAlu(Opcode::Add, st.reg(inst.rs1),
                  AbsVal::constant(static_cast<uint32_t>(inst.imm)));
}

} // anonymous namespace

AbsVal
absMemAddr(const AbsState &st, const Instruction &inst)
{
    return memAddr(st, inst);
}

TriState
absBranch(Opcode op, const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return TriState::Unknown;
    switch (op) {
      case Opcode::Beq:
        if (a.isConst() && b.isConst())
            return a.cval() == b.cval() ? TriState::True
                                        : TriState::False;
        if (a.hi < b.lo || b.hi < a.lo)
            return TriState::False;
        return TriState::Unknown;
      case Opcode::Bne:
        return triNot(absBranch(Opcode::Beq, a, b));
      case Opcode::Blt:
        return sltLess(a, b);
      case Opcode::Bge:
        return triNot(sltLess(a, b));
      case Opcode::Bltu:
        return ultLess(a, b);
      case Opcode::Bgeu:
        return triNot(ultLess(a, b));
      default:
        return TriState::Unknown;
    }
}

void
absStep(uint32_t pc, const Instruction &inst, AbsState &st,
        const Program *image, const StoreSummary *stores)
{
    if (!st.reachable)
        return;
    switch (inst.op) {
      case Opcode::Lw: {
        AbsVal addr = memAddr(st, inst);
        AbsVal v = AbsVal::top();
        // A load from a constant, non-device address no store can
        // reach always sees the initial image (absent words read 0).
        if (addr.isConst() && image && stores &&
            !isMmio(addr.cval()) && !stores->mayWrite(addr.cval())) {
            v = AbsVal::constant(image->word(addr.cval()));
        }
        st.setReg(inst.rd, v);
        return;
      }
      case Opcode::Sw:
      case Opcode::Out:
      case Opcode::Nop:
      case Opcode::Fork:
      case Opcode::Halt:
      case Opcode::Illegal:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return;
      case Opcode::Jal:
      case Opcode::Jalr:
        st.setReg(inst.rd, AbsVal::constant(pc + 1));
        return;
      default: {
        AbsVal a = st.reg(inst.rs1);
        AbsVal b = isRegRegAlu(inst.op)
                       ? st.reg(inst.rs2)
                       : AbsVal::constant(exec_detail::immOperand(
                             inst.op, inst.imm));
        st.setReg(inst.rd, absAlu(inst.op, a, b));
        return;
      }
    }
}

const BasicBlock *
containingBlock(const Cfg &cfg, uint32_t pc)
{
    const auto &blocks = cfg.blocks();
    auto it = blocks.upper_bound(pc);
    if (it == blocks.begin())
        return nullptr;
    --it;
    return pc < it->second.endPc() ? &it->second : nullptr;
}

namespace
{

/** The interval/constant domain over whole basic blocks. */
struct AbsDomain
{
    using Value = AbsState;

    const Cfg &cfg;
    const std::vector<uint32_t> &starts;
    const Program *image;
    const StoreSummary *stores;
    const std::map<uint32_t, AbsState> *rootBoundary;
    std::vector<bool> is_root;

    /** Widening delay: per-node visit count before bounds that are
     *  still moving get widened (mutable: transfer/meet are const). */
    static constexpr unsigned kWidenDelay = 3;
    mutable std::vector<unsigned> visits;

    AbsDomain(const Cfg &cfg, const std::vector<uint32_t> &starts,
              const FlowGraph &g, const Program *image,
              const StoreSummary *stores,
              const std::map<uint32_t, AbsState> *rootBoundary)
        : cfg(cfg), starts(starts), image(image), stores(stores),
          rootBoundary(rootBoundary), is_root(g.size(), false),
          visits(g.size(), 0)
    {
        is_root[static_cast<size_t>(g.entry)] = true;
        for (int r : g.roots)
            is_root[static_cast<size_t>(r)] = true;
    }

    Value top() const { return AbsState{}; }   // bottom: unreachable

    Value
    boundary(int n) const
    {
        if (!is_root[static_cast<size_t>(n)])
            return AbsState{};
        if (rootBoundary) {
            auto it =
                rootBoundary->find(starts[static_cast<size_t>(n)]);
            if (it != rootBoundary->end())
                return it->second;
        }
        return AbsState::entry();
    }

    void
    meet(Value &into, const Value &from) const
    {
        if (!from.reachable)
            return;
        if (!into.reachable) {
            into = from;
            return;
        }
        for (unsigned r = 0; r < NumRegs; ++r)
            into.regs[r] = into.regs[r].join(from.regs[r]);
    }

    /** Kill flow along the untaken side of a decided branch. The
     *  branch writes no register, so the block's out-state carries
     *  the operand values the decision was made from. */
    Value
    edgeOut(int from, int to, const Value &out) const
    {
        if (!out.reachable)
            return out;
        const BasicBlock &bb =
            cfg.blockAt(starts[static_cast<size_t>(from)]);
        if (bb.term != TermKind::CondBranch || bb.insts.empty() ||
            bb.takenTarget == bb.fallthrough) {
            return out;
        }
        const Instruction &br = bb.insts.back();
        TriState d = absBranch(br.op, out.reg(br.rs1),
                               out.reg(br.rs2));
        uint32_t target = starts[static_cast<size_t>(to)];
        if ((d == TriState::True && target == bb.fallthrough) ||
            (d == TriState::False && target == bb.takenTarget)) {
            return AbsState{};   // unreachable along this edge
        }
        return out;
    }

    void
    refineMeet(int n, Value &in, const Value &prev) const
    {
        unsigned &count = visits[static_cast<size_t>(n)];
        if (++count <= kWidenDelay || !prev.reachable ||
            !in.reachable) {
            return;
        }
        for (unsigned r = 0; r < NumRegs; ++r)
            in.regs[r] = prev.regs[r].widen(in.regs[r]);
    }

    Value
    transfer(int n, const Value &in) const
    {
        if (!in.reachable)
            return AbsState{};
        AbsState st = in;
        const BasicBlock &bb =
            cfg.blockAt(starts[static_cast<size_t>(n)]);
        for (size_t i = 0; i < bb.insts.size(); ++i)
            absStep(bb.pcOf(i), bb.insts[i], st, image, stores);
        return st;
    }
};

/** Walk every reachable block once, collecting store sites. */
StoreSummary
summarizeStores(const Cfg &cfg, const std::vector<uint32_t> &starts,
                const std::vector<AbsState> &ins, const Program *image,
                const StoreSummary *stores)
{
    StoreSummary sum;
    for (size_t i = 0; i < starts.size(); ++i) {
        if (!ins[i].reachable)
            continue;
        AbsState st = ins[i];
        const BasicBlock &bb = cfg.blockAt(starts[i]);
        for (size_t k = 0; k < bb.insts.size(); ++k) {
            const Instruction &inst = bb.insts[k];
            if (inst.op == Opcode::Sw) {
                sum.sites.push_back({bb.pcOf(k), memAddr(st, inst),
                                     st.reg(inst.rs2)});
            }
            absStep(bb.pcOf(k), inst, st, image, stores);
        }
    }
    return sum;
}

} // anonymous namespace

AbsintResult
analyzeProgram(const Program &prog, const Cfg &cfg,
               const std::map<uint32_t, AbsState> *rootBoundary)
{
    AbsintResult res;
    std::vector<uint32_t> starts;
    FlowGraph g = graphOfCfg(cfg, starts);

    // Round 1: loads unknown; yields a sound store summary.
    AbsDomain dom1(cfg, starts, g, nullptr, nullptr, rootBoundary);
    auto solved1 = solveDataflow(g, dom1, Direction::Forward);
    res.sweepsRound1 = solved1.sweeps;
    StoreSummary sum1 = summarizeStores(cfg, starts, solved1.in,
                                        nullptr, nullptr);

    // Round 2: refine never-written loads through that summary.
    AbsDomain dom2(cfg, starts, g, &prog, &sum1, rootBoundary);
    auto solved2 = solveDataflow(g, dom2, Direction::Forward);
    res.sweepsRound2 = solved2.sweeps;
    res.stores = summarizeStores(cfg, starts, solved2.in, &prog,
                                 &sum1);

    for (size_t i = 0; i < starts.size(); ++i)
        res.blockIn[starts[i]] = solved2.in[i];

    // Abstract branch outcomes, from a fresh in-block walk.
    for (const auto &[start, bb] : cfg.blocks()) {
        if (bb.term != TermKind::CondBranch || bb.insts.empty())
            continue;
        const AbsState &in = res.blockIn[start];
        if (!in.reachable)
            continue;
        AbsState st = in;
        for (size_t i = 0; i + 1 < bb.insts.size(); ++i)
            absStep(bb.pcOf(i), bb.insts[i], st, &prog, &res.stores);
        const Instruction &br = bb.insts.back();
        res.branchDecision[bb.pcOf(bb.insts.size() - 1)] =
            absBranch(br.op, st.reg(br.rs1), st.reg(br.rs2));
    }

    // Reachability with every *decided* branch edge pruned.
    std::deque<uint32_t> work;
    auto visit = [&](uint32_t start) {
        if (cfg.hasBlock(start) && res.reachable.insert(start).second)
            work.push_back(start);
    };
    visit(cfg.entry());
    for (uint32_t r : cfg.roots())
        visit(r);
    while (!work.empty()) {
        const BasicBlock &bb = cfg.blockAt(work.front());
        work.pop_front();
        if (bb.term == TermKind::CondBranch && !bb.insts.empty()) {
            auto it = res.branchDecision.find(
                bb.pcOf(bb.insts.size() - 1));
            TriState d = it != res.branchDecision.end()
                             ? it->second
                             : TriState::Unknown;
            if (d == TriState::True) {
                visit(bb.takenTarget);
                continue;
            }
            if (d == TriState::False) {
                visit(bb.fallthrough);
                continue;
            }
        }
        for (uint32_t s : bb.succs)
            visit(s);
    }
    return res;
}

AbsState
stateBefore(const AbsintResult &res, const Cfg &cfg,
            const Program &prog, uint32_t pc)
{
    const BasicBlock *bb = containingBlock(cfg, pc);
    if (!bb)
        return AbsState{};
    auto it = res.blockIn.find(bb->start);
    if (it == res.blockIn.end())
        return AbsState{};
    AbsState st = it->second;
    for (size_t i = 0; i < bb->insts.size() && bb->pcOf(i) < pc; ++i)
        absStep(bb->pcOf(i), bb->insts[i], st, &prog, &res.stores);
    return st;
}

} // namespace mssp::analysis

/**
 * @file
 * Speculation planner implementation (see specplan.hh).
 */

#include "analysis/specplan.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "sim/logging.hh"

namespace mssp::analysis
{

namespace
{

std::string
jsonEscapePlan(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strfmt("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strfmt("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

/** "12.345678" — benefitMicro rendered as a fixed-point unit score. */
std::string
fmtBenefit(uint64_t micro)
{
    return strfmt("%llu.%06llu",
                  static_cast<unsigned long long>(micro / 1000000),
                  static_cast<unsigned long long>(micro % 1000000));
}

/**
 * The per-candidate static cost model (DESIGN.md §5.4):
 *
 *   benefit = P * 100 * ratio / (1 + density) / (1 + guards)
 *
 * P = 1 (Proven) or 1/|feasible| (Likely); ratio = original /
 * distilled static instruction count (distillation leverage);
 * density = Risky-load fraction of the classified loads sharing a
 * fork region with the candidate; guards = pruned branches whose
 * block shares a region (each is a potential misprediction that
 * squashes the speculation anyway). Inputs are small integers, so
 * the IEEE double result — and its micro-unit rounding — is
 * deterministic.
 */
uint64_t
benefitOf(const LoadValueFact &f, const DistilledProgram &dist,
          const ValueFlowResult &vf)
{
    double proofW =
        f.proof == ValueProof::Proven
            ? 1.0
            : 1.0 / static_cast<double>(
                        std::max<size_t>(1, f.feasible.size()));

    size_t origInsts = std::max<size_t>(
        1, dist.report.origStaticInsts);
    size_t distInsts = std::max<size_t>(
        1, dist.report.distilledStaticInsts);
    double ratio = static_cast<double>(origInsts) /
                   static_cast<double>(distInsts);

    size_t shared = 0, risky = 0;
    for (const auto &[pc, info] : vf.loadRegions) {
        if (!regionsIntersect(info.regions, f.regions))
            continue;
        shared++;
        risky += info.cls == LoadSpecClass::Risky;
    }
    double density = static_cast<double>(risky) /
                     static_cast<double>(std::max<size_t>(1, shared));

    size_t guards = 0;
    for (const DistillEdit &e : dist.report.edits) {
        if (e.pass != DistillEdit::Pass::BranchPrune)
            continue;
        auto it = dist.addrMap.find(e.regionStart);
        RegionMask mask = RegionAll;
        if (it != dist.addrMap.end()) {
            auto bit = vf.blockRegions.find(it->second);
            if (bit != vf.blockRegions.end())
                mask = bit->second;
        }
        guards += regionsIntersect(mask, f.regions);
    }

    double benefit = proofW * 100.0 * ratio / (1.0 + density) /
                     (1.0 + static_cast<double>(guards));
    return static_cast<uint64_t>(std::llround(benefit * 1e6));
}

} // anonymous namespace

SpecPlanEntry
SpecPlanCandidate::toEntry() const
{
    SpecPlanEntry e;
    e.pc = pc;
    e.proof = proof;
    e.value = value;
    e.benefitMicro = benefitMicro;
    e.feasible = feasible;
    return e;
}

size_t
SpecPlanReport::proven() const
{
    size_t n = 0;
    for (const SpecPlanCandidate &c : candidates)
        n += c.proof == ValueProof::Proven;
    return n;
}

size_t
SpecPlanReport::likely() const
{
    size_t n = 0;
    for (const SpecPlanCandidate &c : candidates)
        n += c.proof == ValueProof::Likely;
    return n;
}

std::vector<SpecPlanCandidate>
planSpeculation(const Program &orig, const DistilledProgram &dist,
                size_t *loadsConsidered)
{
    std::vector<LoadClassification> classes =
        classifySpecLoads(orig, dist);
    ValueFlowResult vf = analyzeValueFlow(orig, dist, classes);
    if (loadsConsidered)
        *loadsConsidered = vf.loadsConsidered;

    std::vector<SpecPlanCandidate> out;
    out.reserve(vf.facts.size());
    for (const LoadValueFact &f : vf.facts) {
        SpecPlanCandidate c;
        c.pc = f.pc;
        c.addr = f.addr;
        c.cls = f.cls;
        c.proof = f.proof;
        c.value = f.value;
        c.feasible = f.feasible;
        c.storePc = f.storePc;
        c.regions = f.regions;
        c.benefitMicro = benefitOf(f, dist, vf);
        c.detail = f.detail;
        out.push_back(std::move(c));
    }
    std::sort(out.begin(), out.end(),
              [](const SpecPlanCandidate &x,
                 const SpecPlanCandidate &y) {
                  if (x.benefitMicro != y.benefitMicro)
                      return x.benefitMicro > y.benefitMicro;
                  return x.pc < y.pc;
              });
    return out;
}

SpecPlanReport
analyzeSpecPlan(const Program &orig, const DistilledProgram &dist)
{
    SpecPlanReport rep;
    rep.candidates =
        planSpeculation(orig, dist, &rep.loadsConsidered);

    auto addFinding = [&rep](LintCheck check, uint32_t pc,
                             std::string message) {
        Finding f;
        f.severity = Severity::Error;
        f.check = check;
        f.pc = pc;
        f.message = std::move(message);
        rep.lint.findings.push_back(std::move(f));
    };

    std::map<uint32_t, const SpecPlanCandidate *> byPc;
    for (const SpecPlanCandidate &c : rep.candidates)
        byPc[c.pc] = &c;

    for (const SpecPlanEntry &e : dist.specPlan) {
        auto it = byPc.find(e.pc);
        if (it == byPc.end()) {
            addFinding(LintCheck::SpecPlanCoverage, e.pc,
                       strfmt("image plans speculation of the load "
                              "at 0x%x, but recomputation yields no "
                              "candidate there (stale metadata)",
                              e.pc));
            continue;
        }
        const SpecPlanCandidate &c = *it->second;
        if (e != c.toEntry()) {
            addFinding(LintCheck::SpecPlanMismatch, e.pc,
                       strfmt("image plans %s value 0x%x (benefit "
                              "%s) for the load at 0x%x, "
                              "recomputation yields %s value 0x%x "
                              "(benefit %s)",
                              valueProofName(e.proof), e.value,
                              fmtBenefit(e.benefitMicro).c_str(),
                              e.pc, valueProofName(c.proof), c.value,
                              fmtBenefit(c.benefitMicro).c_str()));
        }
    }
    std::set<uint32_t> persisted;
    for (const SpecPlanEntry &e : dist.specPlan)
        persisted.insert(e.pc);
    for (const SpecPlanCandidate &c : rep.candidates) {
        if (!persisted.count(c.pc)) {
            addFinding(LintCheck::SpecPlanCoverage, c.pc,
                       strfmt("plan candidate at 0x%x is missing "
                              "from the persisted plan",
                              c.pc));
        }
    }
    // With the PC sets agreeing, the persisted order must be the
    // recomputed rank order (the runtime consumes it as a priority
    // list).
    if (rep.lint.findings.empty() &&
        dist.specPlan.size() == rep.candidates.size()) {
        for (size_t i = 0; i < dist.specPlan.size(); ++i) {
            if (dist.specPlan[i].pc != rep.candidates[i].pc) {
                addFinding(LintCheck::SpecPlanMismatch,
                           dist.specPlan[i].pc,
                           strfmt("persisted plan rank %zu names "
                                  "0x%x, recomputed rank names 0x%x",
                                  i, dist.specPlan[i].pc,
                                  rep.candidates[i].pc));
                break;
            }
        }
    }
    return rep;
}

std::string
SpecPlanReport::toText() const
{
    std::string out;
    for (size_t i = 0; i < candidates.size(); ++i) {
        const SpecPlanCandidate &c = candidates[i];
        out += strfmt("plan #%zu pc=0x%x [%s] class=%s addr=0x%x "
                      "value=0x%x benefit=%s",
                      i, c.pc, valueProofName(c.proof),
                      loadSpecClassName(c.cls), c.addr, c.value,
                      fmtBenefit(c.benefitMicro).c_str());
        if (c.feasible.size() > 1) {
            out += " feasible={";
            for (size_t k = 0; k < c.feasible.size(); ++k)
                out += strfmt("%s0x%x", k ? ", " : "", c.feasible[k]);
            out += "}";
        }
        if (c.storePc != UINT32_MAX)
            out += strfmt(" demoted-by=0x%x", c.storePc);
        out += strfmt(": %s\n", c.detail.c_str());
    }
    out += strfmt("%zu candidate(s): %zu proven, %zu likely (of %zu "
                  "eligible load(s))\n",
                  candidates.size(), proven(), likely(),
                  loadsConsidered);
    return out;
}

std::string
SpecPlanReport::toJson(const std::string &workload) const
{
    std::string out = "{\"schema\": \"mssp-specplan-v1\", ";
    if (workload.empty())
        out += "\"workload\": null, ";
    else
        out += strfmt("\"workload\": \"%s\", ", workload.c_str());
    out += strfmt("\"counts\": {\"candidates\": %zu, \"proven\": "
                  "%zu, \"likely\": %zu, \"considered\": %zu}, ",
                  candidates.size(), proven(), likely(),
                  loadsConsidered);
    out += "\"candidates\": [";
    for (size_t i = 0; i < candidates.size(); ++i) {
        const SpecPlanCandidate &c = candidates[i];
        if (i)
            out += ", ";
        out += strfmt("{\"rank\": %zu, \"pc\": \"0x%x\", \"proof\": "
                      "\"%s\", \"class\": \"%s\", \"addr\": "
                      "\"0x%x\", \"value\": \"0x%x\", "
                      "\"benefitMicro\": %llu, ",
                      i, c.pc, valueProofName(c.proof),
                      loadSpecClassName(c.cls), c.addr, c.value,
                      static_cast<unsigned long long>(
                          c.benefitMicro));
        out += "\"feasible\": [";
        for (size_t k = 0; k < c.feasible.size(); ++k)
            out += strfmt("%s\"0x%x\"", k ? ", " : "", c.feasible[k]);
        out += "], ";
        if (c.storePc != UINT32_MAX)
            out += strfmt("\"storePc\": \"0x%x\", ", c.storePc);
        else
            out += "\"storePc\": null, ";
        out += strfmt("\"detail\": \"%s\"}",
                      jsonEscapePlan(c.detail).c_str());
    }
    // Embed the metadata-validation findings as the report's "lint"
    // object (its trailing newline dropped).
    std::string lj = lint.toJson();
    while (!lj.empty() && lj.back() == '\n')
        lj.pop_back();
    out += "], \"lint\": " + lj + "}\n";
    return out;
}

} // namespace mssp::analysis

/**
 * @file
 * Semantic translation validation of distiller edits.
 *
 * verifyDistilled() (verifier.cc) checks the *structural* contract:
 * every edit names the right kind of instruction. This pass checks
 * the *semantic* one: abstractly execute the original program
 * (analysis/absint.hh) and decide, per recorded edit, whether the
 * superimposition relation "<-" (DESIGN.md §5.1) can be violated.
 *
 * Each edit is classified (DESIGN.md §5.2):
 *
 *  - Proven: no reachable original execution diverges at the edit —
 *    the branch always goes the hard-wired way, the folded constant
 *    is the only abstract value, the value-spec'd word is never
 *    overwritten, the removed register is dead on every path.
 *  - Risky: the abstraction contains a counterexample — an
 *    interfering store, a stale image word, a branch whose operand
 *    ranges admit the other direction on every path, a removed
 *    instruction whose destination is still demanded.
 *  - Unknown: the abstraction is too coarse to decide.
 *
 * Severity policy: Risky edits of *approximate* passes are warnings
 * (MSSP's verify/commit unit recovers at runtime); Risky edits of
 * semantics-preserving passes are errors — unless the divergence is
 * attributable to an earlier speculative edit in the same region
 * (constant folding legitimately propagates value-spec'd constants),
 * in which case the blame stays on the approximate edit and the fold
 * is downgraded to a warning. Region/live-out metadata that fails
 * recomputation is always an error.
 *
 * Dead-code verdicts use two *projected* liveness solutions over the
 * original CFG: the proven projection only prunes branch edges the
 * abstract interpreter decided and only drops uses of proven-constant
 * folds (a sound over-approximation of original demand); the
 * optimistic projection prunes every recorded branch direction and
 * drops every rewritten use (the distilled program's demand mapped
 * onto original PCs). Dead under the former proves the removal; dead
 * only under the latter means divergence requires a mispredicted
 * hard-wired branch (Unknown); live even under the latter means the
 * distilled code still demands the register (error).
 *
 * Finally, every edited region is compared end-to-end: the original
 * block and its distilled counterpart (via the addr map) are
 * abstractly executed from the same entry state, and any recomputed
 * live-out register that is constant on both sides with *different*
 * constants is a proven superimposition violation — this is what
 * catches image corruption that never touched the edit log.
 */

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "analysis/absint.hh"
#include "analysis/dataflow.hh"
#include "analysis/flow_graph.hh"
#include "analysis/liveness.hh"
#include "analysis/verifier.hh"
#include "arch/mmio.hh"
#include "cfg/cfg.hh"
#include "exec/executor.hh"
#include "sim/logging.hh"
#include "util/string_utils.hh"

namespace mssp::analysis
{

const char *
editRiskName(EditRisk risk)
{
    switch (risk) {
      case EditRisk::Proven: return "proven";
      case EditRisk::Risky: return "risky";
      case EditRisk::Unknown: return "unknown";
    }
    return "?";
}

namespace
{

/** Which projected-liveness variant (see file comment). */
enum class Projection : uint8_t
{
    Proven,       ///< sound over-approximation of original demand
    Optimistic,   ///< distilled demand mapped onto original PCs
};

/** Shared state of one semantic validation run. */
struct Sem
{
    const Program &orig;
    const DistilledProgram &dist;

    Cfg origCfg;
    Cfg distCfg;
    std::map<uint32_t, BlockLiveness> origLive;
    AbsintResult ai;

    LintReport rep;
    std::vector<EditVerdict> verdicts;

    // Edit-log indexes, keyed by original PC.
    std::set<uint32_t> removedPcs;           ///< Dce + SilentStoreElim
    std::set<uint32_t> removedBlocks;        ///< UnreachableElim leaders
    std::map<uint32_t, uint32_t> branchEdits;    ///< branch pc -> dir
    std::set<uint32_t> foldPcs;              ///< ConstFold-reg/ValueSpec
    std::set<uint32_t> provenFoldPcs;        ///< subset proven constant
    /** Region leader -> PCs of value-spec edits inside it (the taint
     *  source for downstream constant folds). */
    std::map<uint32_t, std::vector<uint32_t>> specPcsByRegion;

    std::vector<uint32_t> projStarts;        ///< origCfg leaders, asc.

    Sem(const Program &orig, const DistilledProgram &dist)
        : orig(orig), dist(dist),
          origCfg(Cfg::build(orig, orig.entry()))
    {
        origLive = computeLiveness(origCfg);
        ai = analyzeProgram(orig, origCfg);

        std::vector<uint32_t> roots;
        for (const auto &[o, dpc] : dist.entryMap)
            roots.push_back(dpc);
        for (const auto &[o, dpc] : dist.addrMap)
            roots.push_back(dpc);
        distCfg = Cfg::build(dist.prog, dist.prog.entry(), roots);

        for (const auto &[start, bb] : origCfg.blocks())
            projStarts.push_back(start);
    }

    void
    addEdit(Severity sev, LintCheck check, const DistillEdit &e,
            std::string message)
    {
        Finding f;
        f.severity = sev;
        f.check = check;
        f.pc = e.origPc;
        f.block = e.regionStart;
        f.hasPass = true;
        f.pass = e.pass;
        f.message = std::move(message);
        rep.findings.push_back(std::move(f));
    }

    /** Recomputed containing-region leader of @p pc, or UINT32_MAX. */
    uint32_t
    regionOf(uint32_t pc) const
    {
        const BasicBlock *bb = containingBlock(origCfg, pc);
        return bb ? bb->start : UINT32_MAX;
    }

    bool isBranchEdit(const DistillEdit &e) const
    {
        return e.pass == DistillEdit::Pass::BranchPrune ||
               (e.pass == DistillEdit::Pass::ConstFold && e.reg == 0);
    }

    /** True when an earlier value-spec edit in the same region can
     *  have fed this edit's constant (fold taint; see file comment). */
    bool
    taintedBySpec(const DistillEdit &e) const
    {
        auto it = specPcsByRegion.find(regionOf(e.origPc));
        if (it == specPcsByRegion.end())
            return false;
        for (uint32_t pc : it->second) {
            if (pc < e.origPc)
                return true;
        }
        return false;
    }

    void indexEdits();
    void checkMetadata();
    void classifyEdits();
    void classifyDceAndUnreachable();
    void compareRegions();

    void classifyBranch(EditVerdict &v);
    void classifyConstFold(EditVerdict &v);
    void classifyValueSpec(EditVerdict &v);
    void classifySilentStore(EditVerdict &v);

    void projDefUse(uint32_t pc, const Instruction &inst,
                    Projection mode, RegMask &def, RegMask &use) const;
    DataflowResult<MaskDomain> solveProjected(Projection mode) const;
    RegMask liveAfter(const DataflowResult<MaskDomain> &solved,
                      Projection mode, uint32_t pc) const;
};

void
Sem::indexEdits()
{
    verdicts.resize(dist.report.edits.size());
    for (size_t i = 0; i < dist.report.edits.size(); ++i) {
        const DistillEdit &e = dist.report.edits[i];
        verdicts[i].index = i;
        verdicts[i].edit = e;
        switch (e.pass) {
          case DistillEdit::Pass::Dce:
          case DistillEdit::Pass::SilentStoreElim:
            removedPcs.insert(e.origPc);
            break;
          case DistillEdit::Pass::UnreachableElim:
            removedBlocks.insert(e.origPc);
            break;
          case DistillEdit::Pass::BranchPrune:
            branchEdits[e.origPc] = e.value;
            break;
          case DistillEdit::Pass::ConstFold:
            if (e.reg == 0)
                branchEdits[e.origPc] = e.value;
            else
                foldPcs.insert(e.origPc);
            break;
          case DistillEdit::Pass::ValueSpec:
            foldPcs.insert(e.origPc);
            specPcsByRegion[regionOf(e.origPc)].push_back(e.origPc);
            break;
        }
    }
}

// The distiller stamps every edit with its region leader and that
// block's live-out mask; both must survive independent recomputation,
// and hard-wired directions must be honored by the distilled image.
void
Sem::checkMetadata()
{
    for (EditVerdict &v : verdicts) {
        const DistillEdit &e = v.edit;
        const BasicBlock *bb = containingBlock(origCfg, e.origPc);
        if (!bb) {
            addEdit(Severity::Error, LintCheck::EditMetadata, e,
                    strfmt("%s edit at 0x%x lies in no original "
                           "block; region metadata unverifiable",
                           distillPassName(e.pass), e.origPc));
            continue;
        }
        if (e.regionStart != bb->start) {
            addEdit(Severity::Error, LintCheck::EditMetadata, e,
                    strfmt("edit claims region 0x%x, but 0x%x lies "
                           "in block 0x%x",
                           e.regionStart, e.origPc, bb->start));
        }
        auto live_it = origLive.find(bb->start);
        RegMask recomputed = live_it != origLive.end()
                                 ? live_it->second.liveOut
                                 : AllRegsMask;
        if (e.regionStart == bb->start && e.liveOut != recomputed) {
            addEdit(Severity::Error, LintCheck::EditMetadata, e,
                    strfmt("edit claims live-out mask 0x%x for block "
                           "0x%x, recomputation yields 0x%x",
                           e.liveOut, bb->start, recomputed));
        }

        bool needs_value =
            e.pass == DistillEdit::Pass::BranchPrune ||
            e.pass == DistillEdit::Pass::ConstFold ||
            e.pass == DistillEdit::Pass::ValueSpec;
        if (needs_value && !e.hasValue) {
            addEdit(Severity::Error, LintCheck::EditMetadata, e,
                    strfmt("%s edit at 0x%x carries no value/"
                           "direction metadata",
                           distillPassName(e.pass), e.origPc));
            continue;
        }
        if (isBranchEdit(e) && e.value > 1) {
            addEdit(Severity::Error, LintCheck::EditMetadata, e,
                    strfmt("branch edit at 0x%x has direction %u "
                           "(must be 0 or 1)",
                           e.origPc, e.value));
            continue;
        }

        // A hard-wired branch must be honored by the image: the
        // distilled block has to transfer to the distilled copy of
        // the recorded direction's target.
        if (isBranchEdit(e) && e.hasValue &&
            bb->term == TermKind::CondBranch) {
            auto self = dist.addrMap.find(bb->start);
            if (self == dist.addrMap.end() ||
                !distCfg.hasBlock(self->second)) {
                continue;   // block not emitted (removed later)
            }
            uint32_t target =
                e.value ? bb->takenTarget : bb->fallthrough;
            auto tgt = dist.addrMap.find(target);
            if (tgt == dist.addrMap.end()) {
                addEdit(Severity::Error, LintCheck::EditMetadata, e,
                        strfmt("hard-wired direction's target 0x%x "
                               "has no distilled counterpart",
                               target));
                continue;
            }
            // A fully-optimized-away block has an empty emission and
            // shares its distilled address with the very target it
            // falls into; that honors the direction trivially.
            if (self->second == tgt->second)
                continue;
            const BasicBlock &db = distCfg.blockAt(self->second);
            if (std::find(db.succs.begin(), db.succs.end(),
                          tgt->second) == db.succs.end()) {
                addEdit(Severity::Error, LintCheck::EditMetadata, e,
                        strfmt("distilled block 0x%x does not "
                               "transfer to 0x%x, the distilled copy "
                               "of the hard-wired target 0x%x",
                               self->second, tgt->second, target));
            }
        }
    }
}

void
Sem::classifyBranch(EditVerdict &v)
{
    const DistillEdit &e = v.edit;
    Instruction br = decode(orig.word(e.origPc));
    if (!isCondBranch(br.op)) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("0x%x is %s, not a conditional branch",
                          e.origPc, opcodeName(br.op));
        addEdit(Severity::Error, LintCheck::SemanticBranch, e,
                v.detail);
        return;
    }
    AbsState st = stateBefore(ai, origCfg, orig, e.origPc);
    std::string a = st.reg(br.rs1).toString();
    std::string b = st.reg(br.rs2).toString();
    auto it = ai.branchDecision.find(e.origPc);
    TriState d = it != ai.branchDecision.end() ? it->second
                                               : TriState::Unknown;
    const char *wired = e.value ? "taken" : "fall-through";

    if ((e.value == 1 && d == TriState::True) ||
        (e.value == 0 && d == TriState::False)) {
        v.risk = EditRisk::Proven;
        v.detail = strfmt("operands %s, %s decide %s on every "
                          "reachable path",
                          a.c_str(), b.c_str(), wired);
        return;
    }
    if (d != TriState::Unknown) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("hard-wired %s, but operands %s, %s always "
                          "go the other way",
                          wired, a.c_str(), b.c_str());
        Severity sev =
            e.pass == DistillEdit::Pass::BranchPrune ||
                    taintedBySpec(e)
                ? Severity::Warning
                : Severity::Error;
        addEdit(sev, LintCheck::SemanticBranch, e, v.detail);
        return;
    }
    v.risk = EditRisk::Unknown;
    v.detail = strfmt("direction unproven: operand ranges %s, %s "
                      "admit both",
                      a.c_str(), b.c_str());
    // A semantics-preserving branch fold should have been provable
    // unless it propagates speculation; flag the unproven claim.
    if (e.pass == DistillEdit::Pass::ConstFold && !taintedBySpec(e)) {
        addEdit(Severity::Warning, LintCheck::SemanticBranch, e,
                strfmt("const-folded branch claims %s, but %s",
                       wired, v.detail.c_str()));
    }
}

void
Sem::classifyConstFold(EditVerdict &v)
{
    const DistillEdit &e = v.edit;
    AbsState st = stateBefore(ai, origCfg, orig, e.origPc);
    Instruction inst = decode(orig.word(e.origPc));
    absStep(e.origPc, inst, st, &orig, &ai.stores);
    const AbsVal &val = st.reg(e.reg);

    if (val.isConst() && val.cval() == e.value) {
        v.risk = EditRisk::Proven;
        provenFoldPcs.insert(e.origPc);
        v.detail = strfmt("%s provably holds 0x%x after 0x%x",
                          regName(e.reg), e.value, e.origPc);
        return;
    }
    if (!val.contains(e.value)) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("folded %s to 0x%x, but its abstract value "
                          "after 0x%x is %s",
                          regName(e.reg), e.value, e.origPc,
                          val.toString().c_str());
        addEdit(taintedBySpec(e) ? Severity::Warning : Severity::Error,
                LintCheck::SemanticConst, e, v.detail);
        return;
    }
    v.risk = EditRisk::Unknown;
    v.detail = strfmt("abstract value %s does not pin 0x%x",
                      val.toString().c_str(), e.value);
}

void
Sem::classifyValueSpec(EditVerdict &v)
{
    const DistillEdit &e = v.edit;
    AbsState st = stateBefore(ai, origCfg, orig, e.origPc);
    Instruction inst = decode(orig.word(e.origPc));
    AbsVal addr = absMemAddr(st, inst);

    if (!addr.isConst()) {
        v.risk = EditRisk::Unknown;
        v.detail = strfmt("load address unproven: %s",
                          addr.toString().c_str());
        return;
    }
    uint32_t a = addr.cval();
    if (isMmio(a)) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("replaces a device load from 0x%x with a "
                          "constant",
                          a);
        addEdit(Severity::Warning, LintCheck::SemanticLoad, e,
                v.detail);
        return;
    }
    if (const StoreSite *s = ai.stores.interferer(a)) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("store at 0x%x (addr %s, value %s) may "
                          "overwrite 0x%x",
                          s->pc, s->addr.toString().c_str(),
                          s->value.toString().c_str(), a);
        addEdit(Severity::Warning, LintCheck::SemanticLoad, e,
                v.detail);
        return;
    }
    if (orig.word(a) == e.value) {
        v.risk = EditRisk::Proven;
        provenFoldPcs.insert(e.origPc);
        v.detail = strfmt("load at 0x%x always reads never-written "
                          "image word [0x%x] = 0x%x",
                          e.origPc, a, e.value);
        return;
    }
    v.risk = EditRisk::Risky;
    v.detail = strfmt("stale load-constant: image word [0x%x] is "
                      "0x%x, not the baked-in 0x%x",
                      a, orig.word(a), e.value);
    addEdit(Severity::Warning, LintCheck::SemanticLoad, e, v.detail);
}

void
Sem::classifySilentStore(EditVerdict &v)
{
    const DistillEdit &e = v.edit;
    AbsState st = stateBefore(ai, origCfg, orig, e.origPc);
    Instruction inst = decode(orig.word(e.origPc));
    AbsVal addr = absMemAddr(st, inst);
    const AbsVal &val = st.reg(inst.rs2);

    if (!addr.isConst()) {
        v.risk = EditRisk::Unknown;
        v.detail = strfmt("store address unproven: %s",
                          addr.toString().c_str());
        return;
    }
    uint32_t a = addr.cval();
    if (isMmio(a)) {
        v.risk = EditRisk::Risky;
        v.detail = strfmt("elides a device store to 0x%x", a);
        addEdit(Severity::Warning, LintCheck::SemanticStore, e,
                v.detail);
        return;
    }
    if (const StoreSite *s = ai.stores.interferer(a, e.origPc)) {
        v.risk = EditRisk::Unknown;
        v.detail = strfmt("silence unprovable: store at 0x%x (addr "
                          "%s) also writes [0x%x]",
                          s->pc, s->addr.toString().c_str(), a);
        return;
    }
    if (!val.isConst()) {
        v.risk = EditRisk::Unknown;
        v.detail = strfmt("stored value unproven: %s",
                          val.toString().c_str());
        return;
    }
    if (orig.word(a) == val.cval()) {
        v.risk = EditRisk::Proven;
        v.detail = strfmt("always writes 0x%x to [0x%x], which holds "
                          "it initially and has no other writer",
                          val.cval(), a);
        return;
    }
    v.risk = EditRisk::Risky;
    v.detail = strfmt("provably not silent: [0x%x] holds 0x%x "
                      "initially, the store writes 0x%x",
                      a, orig.word(a), val.cval());
    addEdit(Severity::Warning, LintCheck::SemanticStore, e, v.detail);
}

void
Sem::classifyEdits()
{
    for (EditVerdict &v : verdicts) {
        if (!containingBlock(origCfg, v.edit.origPc)) {
            v.risk = EditRisk::Risky;
            v.detail = "edit lies outside the reachable original "
                       "program";
            continue;   // EditMetadata finding already recorded
        }
        switch (v.edit.pass) {
          case DistillEdit::Pass::BranchPrune:
            classifyBranch(v);
            break;
          case DistillEdit::Pass::ConstFold:
            if (v.edit.reg == 0)
                classifyBranch(v);
            else
                classifyConstFold(v);
            break;
          case DistillEdit::Pass::ValueSpec:
            classifyValueSpec(v);
            break;
          case DistillEdit::Pass::SilentStoreElim:
            classifySilentStore(v);
            break;
          case DistillEdit::Pass::Dce:
          case DistillEdit::Pass::UnreachableElim:
            break;   // classifyDceAndUnreachable
        }
    }
}

// Projected def/use of one original instruction (see file comment):
// removed instructions contribute nothing; rewritten ones (constant
// folds, value specs, hard-wired branches) keep their definition but
// lose their uses in the distilled code.
void
Sem::projDefUse(uint32_t pc, const Instruction &inst, Projection mode,
                RegMask &def, RegMask &use) const
{
    def = use = 0;
    if (removedPcs.count(pc))
        return;
    instDefUse(inst, def, use);
    if (branchEdits.count(pc)) {
        if (mode == Projection::Optimistic)
            use = 0;
        return;
    }
    if (foldPcs.count(pc)) {
        if (mode == Projection::Optimistic || provenFoldPcs.count(pc))
            use = 0;
    }
}

DataflowResult<MaskDomain>
Sem::solveProjected(Projection mode) const
{
    FlowGraph g(projStarts.size());
    std::map<uint32_t, int> node;
    for (size_t i = 0; i < projStarts.size(); ++i)
        node[projStarts[i]] = static_cast<int>(i);
    g.entry = node.at(origCfg.entry());
    for (uint32_t r : origCfg.roots())
        g.roots.push_back(node.at(r));

    MaskDomain dom(g.size());
    for (size_t i = 0; i < projStarts.size(); ++i) {
        const BasicBlock &bb = origCfg.blockAt(projStarts[i]);

        // Successor edges, pruned per mode.
        std::vector<uint32_t> succs = bb.succs;
        if (bb.term == TermKind::CondBranch && !bb.insts.empty()) {
            uint32_t term_pc = bb.pcOf(bb.insts.size() - 1);
            if (mode == Projection::Proven) {
                auto it = ai.branchDecision.find(term_pc);
                TriState d = it != ai.branchDecision.end()
                                 ? it->second
                                 : TriState::Unknown;
                if (d == TriState::True)
                    succs = {bb.takenTarget};
                else if (d == TriState::False)
                    succs = {bb.fallthrough};
            } else {
                auto it = branchEdits.find(term_pc);
                if (it != branchEdits.end()) {
                    succs = {it->second ? bb.takenTarget
                                        : bb.fallthrough};
                }
            }
        }
        for (uint32_t s : succs) {
            if (!origCfg.hasBlock(s)) {
                dom.boundaries[i] = AllRegsMask;
                continue;
            }
            if (mode == Projection::Optimistic &&
                removedBlocks.count(s)) {
                continue;   // the distilled image has no such block
            }
            g.addEdge(static_cast<int>(i), node.at(s));
        }

        RegMask gen = 0, kill = 0;
        for (size_t k = 0; k < bb.insts.size(); ++k) {
            RegMask def, use;
            projDefUse(bb.pcOf(k), bb.insts[k], mode, def, use);
            gen |= use & ~kill;
            kill |= def;
        }
        dom.gen[i] = gen;
        dom.kill[i] = kill;

        switch (bb.term) {
          case TermKind::IndirectJump:
          case TermKind::Fault:
            dom.boundaries[i] = AllRegsMask;
            break;
          default:
            break;
        }
    }
    return solveRegLiveness(g, dom);
}

// Live-after mask at @p pc under a solved projection: fold the block
// suffix below @p pc backward from the block's live-out.
RegMask
Sem::liveAfter(const DataflowResult<MaskDomain> &solved,
               Projection mode, uint32_t pc) const
{
    const BasicBlock *bb = containingBlock(origCfg, pc);
    if (!bb)
        return AllRegsMask;
    auto it = std::lower_bound(projStarts.begin(), projStarts.end(),
                               bb->start);
    auto n = static_cast<size_t>(it - projStarts.begin());
    RegMask after = solved.in[n];   // backward: in = live-out
    size_t idx = pc - bb->start;
    for (size_t i = bb->insts.size(); i-- > idx + 1;) {
        RegMask def, use;
        projDefUse(bb->pcOf(i), bb->insts[i], mode, def, use);
        after = (after & ~def) | use;
    }
    return after;
}

void
Sem::classifyDceAndUnreachable()
{
    auto proven_live = solveProjected(Projection::Proven);
    auto opt_live = solveProjected(Projection::Optimistic);

    // Optimistic reachability over the original CFG: follow only the
    // recorded direction of every hard-wired branch, tracking BFS
    // parents for counterexample paths.
    std::map<uint32_t, uint32_t> parent;
    std::deque<uint32_t> work;
    auto visit = [&](uint32_t start, uint32_t from) {
        if (origCfg.hasBlock(start) && !parent.count(start)) {
            parent[start] = from;
            work.push_back(start);
        }
    };
    visit(origCfg.entry(), UINT32_MAX);
    while (!work.empty()) {
        const BasicBlock &bb = origCfg.blockAt(work.front());
        work.pop_front();
        if (bb.term == TermKind::CondBranch && !bb.insts.empty()) {
            auto it = branchEdits.find(bb.pcOf(bb.insts.size() - 1));
            if (it != branchEdits.end()) {
                visit(it->second ? bb.takenTarget : bb.fallthrough,
                      bb.start);
                continue;
            }
        }
        for (uint32_t s : bb.succs)
            visit(s, bb.start);
    }
    auto path_to = [&](uint32_t start) {
        std::string path = strfmt("0x%x", start);
        uint32_t at = start;
        int hops = 0;
        while (parent.count(at) && parent[at] != UINT32_MAX &&
               hops++ < 8) {
            at = parent[at];
            path = strfmt("0x%x -> ", at) + path;
        }
        return path;
    };

    for (EditVerdict &v : verdicts) {
        const DistillEdit &e = v.edit;
        if (e.pass == DistillEdit::Pass::Dce ||
            e.pass == DistillEdit::Pass::SilentStoreElim) {
            if (e.pass == DistillEdit::Pass::SilentStoreElim)
                continue;   // classified by classifySilentStore
            if (!containingBlock(origCfg, e.origPc))
                continue;
            if (e.reg == 0) {
                v.risk = EditRisk::Proven;
                v.detail = "removed instruction writes no "
                           "architected register";
                continue;
            }
            RegMask bit = 1u << e.reg;
            if (!(liveAfter(proven_live, Projection::Proven,
                            e.origPc) &
                  bit)) {
                v.risk = EditRisk::Proven;
                v.detail = strfmt("%s is dead past 0x%x on every "
                                  "original path",
                                  regName(e.reg), e.origPc);
            } else if (!(liveAfter(opt_live, Projection::Optimistic,
                                   e.origPc) &
                         bit)) {
                v.risk = EditRisk::Unknown;
                v.detail = strfmt("%s is live in the original past "
                                  "0x%x, dead under the recorded "
                                  "branch directions",
                                  regName(e.reg), e.origPc);
            } else {
                v.risk = EditRisk::Risky;
                v.detail = strfmt("removed instruction at 0x%x "
                                  "writes %s, which the distilled "
                                  "control flow still demands",
                                  e.origPc, regName(e.reg));
                addEdit(Severity::Error, LintCheck::SemanticLiveOut,
                        e, v.detail);
            }
            continue;
        }
        if (e.pass != DistillEdit::Pass::UnreachableElim)
            continue;
        if (!ai.reachable.count(e.origPc)) {
            v.risk = EditRisk::Proven;
            v.detail = strfmt("block 0x%x is unreachable under "
                              "abstract branch decisions",
                              e.origPc);
        } else if (!parent.count(e.origPc)) {
            v.risk = EditRisk::Unknown;
            v.detail = strfmt("block 0x%x is reachable only through "
                              "a mispredicted hard-wired branch",
                              e.origPc);
        } else {
            v.risk = EditRisk::Risky;
            v.detail = strfmt("removed block 0x%x is still reachable "
                              "under the recorded branch directions "
                              "(%s)",
                              e.origPc, path_to(e.origPc).c_str());
            addEdit(Severity::Error, LintCheck::SemanticUnreachable,
                    e, v.detail);
        }
    }
}

// End-to-end region check: push the same abstract entry state through
// an edited original block and its distilled counterpart; any
// recomputed live-out register constant on both sides with different
// constants is a proven superimposition violation.
void
Sem::compareRegions()
{
    std::set<uint32_t> regions;
    for (const EditVerdict &v : verdicts) {
        uint32_t r = regionOf(v.edit.origPc);
        if (r != UINT32_MAX)
            regions.insert(r);
    }

    for (uint32_t start : regions) {
        auto in_it = ai.blockIn.find(start);
        if (in_it == ai.blockIn.end() || !in_it->second.reachable)
            continue;
        auto am = dist.addrMap.find(start);
        if (am == dist.addrMap.end() ||
            !distCfg.hasBlock(am->second)) {
            continue;   // block not emitted (removed)
        }

        // Registers excused from the comparison: link registers
        // (distilled call lowering materializes the original return
        // address, but jalr links genuinely differ), targets of
        // removed definitions, and targets of non-proven rewrites
        // (their divergence is the *edit's* finding, not the
        // region's).
        RegMask excused = 0;
        for (const EditVerdict &v : verdicts) {
            const DistillEdit &e = v.edit;
            if (regionOf(e.origPc) != start || e.reg == 0)
                continue;
            if (e.pass == DistillEdit::Pass::Dce ||
                v.risk != EditRisk::Proven) {
                excused |= 1u << e.reg;
            }
        }

        AbsState st_o = in_it->second;
        AbsState st_d = in_it->second;
        const BasicBlock &ob = origCfg.blockAt(start);
        for (size_t i = 0; i < ob.insts.size(); ++i) {
            const Instruction &inst = ob.insts[i];
            if ((inst.op == Opcode::Jal || inst.op == Opcode::Jalr) &&
                inst.rd != 0) {
                excused |= 1u << inst.rd;
            }
            absStep(ob.pcOf(i), inst, st_o, &orig, &ai.stores);
        }
        const BasicBlock &db = distCfg.blockAt(am->second);
        for (size_t i = 0; i < db.insts.size(); ++i) {
            const Instruction &inst = db.insts[i];
            if ((inst.op == Opcode::Jal || inst.op == Opcode::Jalr) &&
                inst.rd != 0) {
                excused |= 1u << inst.rd;
            }
            absStep(db.pcOf(i), inst, st_d, &orig, &ai.stores);
        }

        auto live_it = origLive.find(start);
        RegMask live_out = live_it != origLive.end()
                               ? live_it->second.liveOut
                               : AllRegsMask;
        for (unsigned r = 1; r < NumRegs; ++r) {
            if (!(live_out & (1u << r)) || (excused & (1u << r)))
                continue;
            const AbsVal &vo = st_o.reg(r);
            const AbsVal &vd = st_d.reg(r);
            if (vo.isConst() && vd.isConst() &&
                vo.cval() != vd.cval()) {
                Finding f;
                f.severity = Severity::Error;
                f.check = LintCheck::SemanticLiveOut;
                f.pc = am->second;
                f.block = start;
                f.message = strfmt(
                    "live-out %s of region 0x%x diverges: original "
                    "block yields 0x%x, distilled block at 0x%x "
                    "yields 0x%x",
                    regName(r), start, vo.cval(), am->second,
                    vd.cval());
                rep.findings.push_back(std::move(f));
            }
        }
    }
}

} // anonymous namespace

SemanticResult
verifyDistilledSemantic(const Program &orig,
                        const DistilledProgram &dist)
{
    Sem s(orig, dist);
    s.indexEdits();
    s.checkMetadata();
    s.classifyEdits();
    s.classifyDceAndUnreachable();
    s.compareRegions();

    SemanticResult out;
    out.lint = std::move(s.rep);
    out.semantic.verdicts = std::move(s.verdicts);
    return out;
}

size_t
SemanticReport::proven() const
{
    size_t n = 0;
    for (const EditVerdict &v : verdicts)
        n += v.risk == EditRisk::Proven;
    return n;
}

size_t
SemanticReport::risky() const
{
    size_t n = 0;
    for (const EditVerdict &v : verdicts)
        n += v.risk == EditRisk::Risky;
    return n;
}

size_t
SemanticReport::unknown() const
{
    size_t n = 0;
    for (const EditVerdict &v : verdicts)
        n += v.risk == EditRisk::Unknown;
    return n;
}

std::string
SemanticReport::toText() const
{
    std::string out;
    for (const EditVerdict &v : verdicts) {
        out += strfmt("edit %zu %s pc=0x%x", v.index,
                      distillPassName(v.edit.pass), v.edit.origPc);
        if (v.edit.reg)
            out += strfmt(" reg=%s", regName(v.edit.reg));
        out += strfmt(" [%s]: %s\n", editRiskName(v.risk),
                      v.detail.c_str());
    }
    out += strfmt("%zu edit(s): %zu proven, %zu risky, %zu unknown\n",
                  verdicts.size(), proven(), risky(), unknown());
    return out;
}

namespace
{

std::string
jsonEscapeSem(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strfmt("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strfmt("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

} // anonymous namespace

std::string
SemanticResult::toJson() const
{
    std::string base = lint.toJson();
    // lint.toJson() ends with "]}\n"; splice the edits array in.
    while (!base.empty() &&
           (base.back() == '\n' || base.back() == '}')) {
        base.pop_back();
    }
    std::string out = base + ", \"edits\": [";
    for (size_t i = 0; i < semantic.verdicts.size(); ++i) {
        const EditVerdict &v = semantic.verdicts[i];
        if (i)
            out += ", ";
        out += strfmt("{\"index\": %zu, \"pass\": \"%s\", "
                      "\"pc\": \"0x%x\", \"reg\": %u, "
                      "\"risk\": \"%s\", \"detail\": \"%s\"}",
                      v.index, distillPassName(v.edit.pass),
                      v.edit.origPc, v.edit.reg,
                      editRiskName(v.risk),
                      jsonEscapeSem(v.detail).c_str());
    }
    out += "]}\n";
    return out;
}

} // namespace mssp::analysis

/**
 * @file
 * Value-flow analysis implementation (see valueflow.hh).
 */

#include "analysis/valueflow.hh"

#include <algorithm>
#include <set>

#include "analysis/dataflow.hh"
#include "arch/mmio.hh"
#include "sim/logging.hh"

namespace mssp::analysis
{

namespace
{

/**
 * Abstract state of the value-flow domain: the register intervals
 * plus one interval per *tracked* memory word (the constant addresses
 * of invariant-class loads). The mem map carries exactly the tracked
 * key set in every reachable state, so meet and equality align
 * pointwise.
 */
struct VfState
{
    AbsState regs;
    std::map<uint32_t, AbsVal> mem;

    bool operator==(const VfState &) const = default;
};

/**
 * One instruction's effect on a VfState. Loads from a tracked word
 * forward the flow fact; stores update tracked words strongly (exact
 * address) or weakly (overlapping interval); everything else is the
 * plain absint register transfer.
 */
void
vfStep(uint32_t pc, const Instruction &inst, VfState &st,
       const Program *image, const StoreSummary *stores)
{
    if (!st.regs.reachable)
        return;
    switch (inst.op) {
      case Opcode::Lw: {
        AbsVal addr = absMemAddr(st.regs, inst);
        if (addr.isConst()) {
            auto it = st.mem.find(addr.cval());
            if (it != st.mem.end() && !it->second.isBottom()) {
                st.regs.setReg(inst.rd, it->second);
                return;
            }
        }
        absStep(pc, inst, st.regs, image, stores);
        return;
      }
      case Opcode::Sw: {
        AbsVal addr = absMemAddr(st.regs, inst);
        AbsVal val = st.regs.reg(inst.rs2);
        if (addr.isConst()) {
            // Exact address: the store definitely overwrites this
            // word and no other — a strong update.
            auto it = st.mem.find(addr.cval());
            if (it != st.mem.end())
                it->second = val;
            return;
        }
        for (auto &[a, v] : st.mem) {
            if (addr.contains(a))
                v = v.join(val);
        }
        return;
      }
      default:
        absStep(pc, inst, st.regs, image, stores);
        return;
    }
}

/** The value-flow domain over whole basic blocks (the AbsDomain of
 *  absint.cc extended with the tracked-memory component). */
struct VfDomain
{
    using Value = VfState;

    const Cfg &cfg;
    const std::vector<uint32_t> &starts;
    const Program *image;
    const StoreSummary *stores;
    /** Boundary per root block start; roots absent here fall back to
     *  @c fallbackRoot (conservative landing-pad state). */
    const std::map<uint32_t, VfState> *rootBoundary;
    const VfState *fallbackRoot;
    std::vector<bool> is_root;

    static constexpr unsigned kWidenDelay = 3;
    mutable std::vector<unsigned> visits;

    VfDomain(const Cfg &cfg, const std::vector<uint32_t> &starts,
             const FlowGraph &g, const Program *image,
             const StoreSummary *stores,
             const std::map<uint32_t, VfState> *rootBoundary,
             const VfState *fallbackRoot)
        : cfg(cfg), starts(starts), image(image), stores(stores),
          rootBoundary(rootBoundary), fallbackRoot(fallbackRoot),
          is_root(g.size(), false), visits(g.size(), 0)
    {
        is_root[static_cast<size_t>(g.entry)] = true;
        for (int r : g.roots)
            is_root[static_cast<size_t>(r)] = true;
    }

    Value top() const { return VfState{}; }   // unreachable

    Value
    boundary(int n) const
    {
        if (!is_root[static_cast<size_t>(n)])
            return VfState{};
        if (rootBoundary) {
            auto it =
                rootBoundary->find(starts[static_cast<size_t>(n)]);
            if (it != rootBoundary->end())
                return it->second;
        }
        return *fallbackRoot;
    }

    void
    meet(Value &into, const Value &from) const
    {
        if (!from.regs.reachable)
            return;
        if (!into.regs.reachable) {
            into = from;
            return;
        }
        for (unsigned r = 0; r < NumRegs; ++r)
            into.regs.regs[r] = into.regs.regs[r].join(from.regs.regs[r]);
        for (auto &[a, v] : into.mem) {
            auto it = from.mem.find(a);
            if (it != from.mem.end())
                v = v.join(it->second);
        }
    }

    /** Kill flow along the untaken side of a decided branch (same
     *  rule as the plain interval domain, on the register part). */
    Value
    edgeOut(int from, int to, const Value &out) const
    {
        if (!out.regs.reachable)
            return out;
        const BasicBlock &bb =
            cfg.blockAt(starts[static_cast<size_t>(from)]);
        if (bb.term != TermKind::CondBranch || bb.insts.empty() ||
            bb.takenTarget == bb.fallthrough) {
            return out;
        }
        const Instruction &br = bb.insts.back();
        TriState d = absBranch(br.op, out.regs.reg(br.rs1),
                               out.regs.reg(br.rs2));
        uint32_t target = starts[static_cast<size_t>(to)];
        if ((d == TriState::True && target == bb.fallthrough) ||
            (d == TriState::False && target == bb.takenTarget)) {
            return VfState{};   // unreachable along this edge
        }
        return out;
    }

    void
    refineMeet(int n, Value &in, const Value &prev) const
    {
        unsigned &count = visits[static_cast<size_t>(n)];
        if (++count <= kWidenDelay || !prev.regs.reachable ||
            !in.regs.reachable) {
            return;
        }
        for (unsigned r = 0; r < NumRegs; ++r)
            in.regs.regs[r] = prev.regs.regs[r].widen(in.regs.regs[r]);
        for (auto &[a, v] : in.mem) {
            auto it = prev.mem.find(a);
            if (it != prev.mem.end())
                v = it->second.widen(v);
        }
    }

    Value
    transfer(int n, const Value &in) const
    {
        if (!in.regs.reachable)
            return VfState{};
        VfState st = in;
        const BasicBlock &bb =
            cfg.blockAt(starts[static_cast<size_t>(n)]);
        for (size_t i = 0; i < bb.insts.size(); ++i)
            vfStep(bb.pcOf(i), bb.insts[i], st, image, stores);
        return st;
    }
};

/** Value-flow state just before the instruction at @p pc. */
VfState
vfStateBefore(const Cfg &cfg,
              const std::map<uint32_t, VfState> &blockIn,
              const Program *image, const StoreSummary *stores,
              uint32_t pc)
{
    const BasicBlock *bb = containingBlock(cfg, pc);
    if (!bb)
        return VfState{};
    auto it = blockIn.find(bb->start);
    if (it == blockIn.end())
        return VfState{};
    VfState st = it->second;
    for (size_t i = 0; i < bb->insts.size() && bb->pcOf(i) < pc; ++i)
        vfStep(bb->pcOf(i), bb->insts[i], st, image, stores);
    return st;
}

/** Run the value-flow fixpoint over one CFG and hand back the block
 *  in-states keyed by leader PC. */
std::map<uint32_t, VfState>
solveValueFlow(const Program &prog, const Cfg &cfg,
               const StoreSummary &stores,
               const std::map<uint32_t, VfState> &rootBoundary,
               const VfState &fallbackRoot)
{
    std::vector<uint32_t> starts;
    FlowGraph g = graphOfCfg(cfg, starts);
    VfDomain dom(cfg, starts, g, &prog, &stores, &rootBoundary,
                 &fallbackRoot);
    auto solved = solveDataflow(g, dom, Direction::Forward);
    std::map<uint32_t, VfState> blockIn;
    for (size_t i = 0; i < starts.size(); ++i)
        blockIn[starts[i]] = solved.in[i];
    return blockIn;
}

} // anonymous namespace

size_t
ValueFlowResult::provenFacts() const
{
    size_t n = 0;
    for (const LoadValueFact &f : facts)
        n += f.proof == ValueProof::Proven;
    return n;
}

size_t
ValueFlowResult::likelyFacts() const
{
    size_t n = 0;
    for (const LoadValueFact &f : facts)
        n += f.proof == ValueProof::Likely;
    return n;
}

const LoadValueFact *
ValueFlowResult::factAt(uint32_t pc) const
{
    for (const LoadValueFact &f : facts) {
        if (f.pc == pc)
            return &f;
    }
    return nullptr;
}

ValueFlowResult
analyzeValueFlow(const Program &orig, const DistilledProgram &dist,
                 const std::vector<LoadClassification> &classes)
{
    ValueFlowResult res;
    Program merged = mergedImage(orig, dist);

    // Tracked words: the proven-constant, non-device addresses of
    // invariant-class loads. A load that reads *code* in the
    // distilled overlay is excluded — its word differs between the
    // original and merged images, so no one fact is sound for both
    // passes.
    std::set<uint32_t> tracked;
    for (const LoadClassification &c : classes) {
        if (c.cls == LoadSpecClass::Risky || !c.addr.isConst())
            continue;
        uint32_t a = c.addr.cval();
        if (isMmio(a) || dist.prog.image().count(a))
            continue;
        tracked.insert(a);
    }

    // Pass 1: the sequential original program from its true initial
    // state — registers unknown, every tracked word holding its
    // image value. Its in-states over-approximate the architected
    // state (registers *and* memory) at every master restart point,
    // the same bound specsafe derives for registers alone.
    Cfg origCfg = Cfg::build(orig, orig.entry());
    AbsintResult origAi = analyzeProgram(orig, origCfg);

    VfState origEntry;
    origEntry.regs = AbsState::entry();
    for (uint32_t a : tracked)
        origEntry.mem[a] = AbsVal::constant(orig.word(a));
    std::map<uint32_t, VfState> origRoots;
    origRoots[orig.entry()] = origEntry;
    std::map<uint32_t, VfState> origIn = solveValueFlow(
        orig, origCfg, origAi.stores, origRoots, origEntry);

    // Pass 2 roots mirror classifySpecLoads: the original entry (a
    // raw SEQ run of the merged image can fall back into original
    // code) plus every restart point, seeded from pass 1's state at
    // the original PC it restarts from.
    std::vector<uint32_t> roots;
    std::map<uint32_t, AbsState> regBoundary;
    roots.push_back(orig.entry());
    for (const auto &[o, dpc] : dist.entryMap) {
        roots.push_back(dpc);
        AbsState st = stateBefore(origAi, origCfg, orig, o);
        if (st.reachable)
            regBoundary[dpc] = st;
    }
    Cfg cfg = Cfg::build(merged, merged.entry(), roots);
    AbsintResult ai = analyzeProgram(merged, cfg, &regBoundary);
    AliasResult al = analyzeAliases(merged, cfg, ai);

    // The fallback root state covers landing pads with no better
    // bound (the original entry, unreachable restart PCs): any word
    // some merged-image store may write is unknown there.
    VfState fallback;
    fallback.regs = AbsState::entry();
    for (uint32_t a : tracked) {
        fallback.mem[a] = ai.stores.mayWrite(a)
                              ? AbsVal::top()
                              : AbsVal::constant(merged.word(a));
    }
    std::map<uint32_t, VfState> mergedRoots;
    for (const auto &[o, dpc] : dist.entryMap) {
        VfState st;
        auto rit = regBoundary.find(dpc);
        st.regs = rit != regBoundary.end() ? rit->second
                                           : AbsState::entry();
        VfState ost = vfStateBefore(origCfg, origIn, &orig,
                                    &origAi.stores, o);
        st.mem = ost.regs.reachable ? ost.mem : fallback.mem;
        mergedRoots[dpc] = std::move(st);
    }
    std::map<uint32_t, VfState> mergedIn = solveValueFlow(
        merged, cfg, ai.stores, mergedRoots, fallback);

    // Region context for the planner: every classified load's mask
    // (loads the discovery missed are conservatively everywhere).
    std::map<uint32_t, RegionMask> loadMask;
    for (const MemAccess &ld : al.loads)
        loadMask[ld.pc] = ld.regions;
    for (const LoadClassification &c : classes) {
        auto it = loadMask.find(c.pc);
        res.loadRegions[c.pc] = {
            it != loadMask.end() ? it->second : RegionAll, c.cls};
    }
    res.blockRegions = al.blockRegions;

    // Derive one forwarding fact per eligible load.
    for (const LoadClassification &c : classes) {
        if (c.cls == LoadSpecClass::Risky || !c.addr.isConst())
            continue;
        uint32_t a = c.addr.cval();
        if (!tracked.count(a))
            continue;
        res.loadsConsidered++;

        LoadValueFact f;
        f.pc = c.pc;
        f.addr = a;
        f.cls = c.cls;
        f.regions = res.loadRegions[c.pc].regions;

        VfState at = vfStateBefore(cfg, mergedIn, &merged,
                                   &ai.stores, c.pc);
        if (!at.regs.reachable)
            continue;
        AbsVal memv = at.mem.count(a) ? at.mem[a] : AbsVal::top();

        std::vector<const MemAccess *> aliasing =
            al.interferingStores(a);
        if (memv.isConst()) {
            f.proof = ValueProof::Proven;
            f.value = memv.cval();
            f.feasible = {f.value};
            if (aliasing.empty()) {
                f.detail = strfmt("no store in the merged image may "
                                  "write [0x%x]; the load always "
                                  "reads the image word 0x%x",
                                  a, f.value);
            } else {
                f.detail = strfmt("every path to the load leaves "
                                  "0x%x at [0x%x] (flow-sensitive "
                                  "store-to-load forwarding across "
                                  "%zu aliasing store(s))",
                                  f.value, a, aliasing.size());
            }
            res.facts.push_back(std::move(f));
            continue;
        }

        // Feasible-set rule: the initial image word joined with
        // every aliasing store's constant. One unpinnable store
        // value spoils the set.
        std::set<uint32_t> feas;
        feas.insert(merged.word(a));
        const MemAccess *demote = nullptr;
        bool unbounded = false;
        for (const MemAccess *s : aliasing) {
            if (!s->value.isConst()) {
                unbounded = true;
                break;
            }
            feas.insert(s->value.cval());
            if (!demote && s->value.cval() != merged.word(a))
                demote = s;
        }
        if (unbounded || feas.size() > kMaxFeasibleValues)
            continue;
        if (feas.size() == 1) {
            // Every aliasing store rewrites the image word: the set
            // argument proves invariance even where widening blurred
            // the flow-sensitive fact.
            f.proof = ValueProof::Proven;
            f.value = *feas.begin();
            f.feasible = {f.value};
            f.detail = strfmt("every aliasing store provably "
                              "rewrites the image word 0x%x at "
                              "[0x%x]",
                              f.value, a);
            res.facts.push_back(std::move(f));
            continue;
        }
        f.proof = ValueProof::Likely;
        f.value = merged.word(a);
        f.feasible.assign(feas.begin(), feas.end());
        f.storePc = demote ? demote->pc : UINT32_MAX;
        f.detail = strfmt("reaching store-set is constant-valued but "
                          "not singleton: %zu feasible values for "
                          "[0x%x]; store at 0x%x writes 0x%x",
                          feas.size(), a,
                          demote ? demote->pc : UINT32_MAX,
                          demote ? demote->value.cval() : 0);
        res.facts.push_back(std::move(f));
    }

    std::sort(res.facts.begin(), res.facts.end(),
              [](const LoadValueFact &x, const LoadValueFact &y) {
                  return x.pc < y.pc;
              });
    return res;
}

} // namespace mssp::analysis

/**
 * @file
 * Immutable set of fork-site PCs.
 *
 * Slaves test membership once per executed instruction (the fork-site
 * pause check), so contains() must be as close to free as possible: a
 * direct-indexed byte map over the (small, dense) PC range answers in
 * one load. A sorted, deduplicated vector is kept alongside for
 * ascending-PC iteration — the same order std::set gave the code this
 * replaces.
 */

#ifndef MSSP_MSSP_FORK_SITES_HH
#define MSSP_MSSP_FORK_SITES_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mssp
{

/** Sorted immutable PC set with O(1) contains(). */
class ForkSiteSet
{
  public:
    ForkSiteSet() = default;

    explicit ForkSiteSet(std::vector<uint32_t> pcs) : pcs_(std::move(pcs))
    {
        std::sort(pcs_.begin(), pcs_.end());
        pcs_.erase(std::unique(pcs_.begin(), pcs_.end()), pcs_.end());
        // Code addresses are small (word-addressed programs), so in
        // practice every site lands in the byte map and it stays a few
        // KB; pathological PCs past DenseLimit fall back to binary
        // search rather than ballooning the map.
        auto tail = std::lower_bound(pcs_.begin(), pcs_.end(),
                                     DenseLimit);
        tail_start_ = static_cast<size_t>(tail - pcs_.begin());
        if (tail_start_ > 0) {
            is_site_.assign(
                static_cast<size_t>(pcs_[tail_start_ - 1]) + 1, 0);
            for (size_t i = 0; i < tail_start_; ++i)
                is_site_[pcs_[i]] = 1;
        }
    }

    bool
    contains(uint32_t pc) const
    {
        if (pc < DenseLimit)
            return pc < is_site_.size() && is_site_[pc];
        return std::binary_search(pcs_.begin() + tail_start_,
                                  pcs_.end(), pc);
    }

    size_t size() const { return pcs_.size(); }
    bool empty() const { return pcs_.empty(); }

    /** Ascending-PC iteration (matches the former std::set order). */
    std::vector<uint32_t>::const_iterator begin() const
    {
        return pcs_.begin();
    }
    std::vector<uint32_t>::const_iterator end() const
    {
        return pcs_.end();
    }

  private:
    /** PCs at or above this go to the binary-search fallback. */
    static constexpr uint32_t DenseLimit = 1u << 20;

    std::vector<uint32_t> pcs_;
    std::vector<uint8_t> is_site_;   ///< direct-indexed membership
    size_t tail_start_ = 0;          ///< first pcs_ index >= DenseLimit
};

} // namespace mssp

#endif // MSSP_MSSP_FORK_SITES_HH

#include "mssp/baseline.hh"

#include <cmath>

#include "exec/seq_machine.hh"

namespace mssp
{

BaselineResult
runBaseline(const Program &prog, double ipc, uint64_t max_insts)
{
    SeqMachine machine(prog);
    SeqRunResult run = machine.run(max_insts);

    BaselineResult result;
    result.halted = run.halted;
    result.faulted = run.faulted;
    result.insts = machine.instCount();
    result.cycles = static_cast<uint64_t>(
        std::ceil(static_cast<double>(result.insts) /
                  (ipc > 0 ? ipc : 1.0)));
    result.outputs = machine.outputs();
    result.finalPc = machine.state().pc();
    return result;
}

} // namespace mssp

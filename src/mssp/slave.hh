/**
 * @file
 * MSSP slave processors.
 *
 * A slave executes one task of the *original* program. Reads are
 * satisfied, in priority order, from the task's own write buffer, the
 * already-recorded live-ins, the master's checkpoint, and finally
 * architected state (read-through, charged archReadLatency cycles).
 * Every first read of a cell is recorded in the task's live-in set;
 * the verify/commit unit later checks that set against architected
 * state, which is exactly the paper's memoization-style commit test.
 */

#ifndef MSSP_MSSP_SLAVE_HH
#define MSSP_MSSP_SLAVE_HH

#include <cstdint>
#include <memory>
#include <set>

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "exec/context.hh"
#include "exec/executor.hh"
#include "mssp/config.hh"
#include "mssp/task.hh"

namespace mssp
{

/** ExecContext for one task on one slave. */
class TaskContext : public ExecContext
{
  public:
    TaskContext(Task &task, const ArchState &arch,
                Cache *l1 = nullptr)
        : task_(task), arch_(arch), l1_(l1)
    {}

    /** Arch read-throughs performed by the last step (for timing). */
    unsigned archReadsLastStep = 0;
    /** Set when the last step tried to touch device space; all of the
     *  step's writes were suppressed and it must be discarded. */
    bool mmioTouched = false;

    void
    beginStep()
    {
        archReadsLastStep = 0;
        mmioTouched = false;
    }

    uint32_t
    readCell(CellId cell)
    {
        if (auto v = task_.liveOut.get(cell))
            return *v;
        if (auto v = task_.liveIn.get(cell))
            return *v;
        uint32_t value;
        if (task_.checkpoint) {
            if (auto v = task_.checkpoint->get(cell)) {
                value = *v;
                task_.liveIn.set(cell, value);
                return value;
            }
        }
        value = arch_.readCell(cell);
        ++task_.archReads;
        // L1 filter: resident memory lines are free; misses (and all
        // architected register-file reads) pay the read-through.
        bool charged = true;
        if (l1_ && cellKind(cell) == CellKind::Mem)
            charged = !l1_->access(cellIndex(cell));
        if (charged)
            ++archReadsLastStep;
        task_.liveIn.set(cell, value);
        return value;
    }

    uint32_t readReg(unsigned r) override
    {
        return readCell(makeRegCell(r));
    }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        if (mmioTouched)
            return;   // discard the aborted step's register write
        task_.liveOut.set(makeRegCell(r), v);
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        if (isMmio(addr)) {
            mmioTouched = true;
            return 0;   // dummy; the step is discarded
        }
        return readCell(makeMemCell(addr));
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr) || mmioTouched) {
            mmioTouched = true;
            return;
        }
        task_.liveOut.set(makeMemCell(addr), v);
    }
    uint32_t
    fetch(uint32_t pc) override
    {
        // Original code is immutable (no self-modifying code); fetch
        // directly from architected memory without live-in recording.
        return arch_.readMem(pc);
    }
    void
    output(uint16_t port, uint32_t value) override
    {
        task_.outputs.push_back({port, value});
    }

  private:
    Task &task_;
    const ArchState &arch_;
    Cache *l1_;
};

/** One slave processor. */
class SlaveCore
{
  public:
    SlaveCore(int id, const ArchState &arch, const MsspConfig &cfg,
              const std::set<uint32_t> &fork_site_pcs)
        : id_(id), arch_(arch), cfg_(cfg),
          fork_site_pcs_(fork_site_pcs)
    {
        if (cfg.useSlaveL1)
            l1_ = std::make_unique<Cache>(cfg.slaveL1);
    }

    bool idle() const { return task_ == nullptr; }
    Task *task() { return task_; }

    /** Begin executing @p task (it must be freshly spawned). */
    void
    assign(Task *task)
    {
        task_ = task;
        task->slaveId = id_;
        task->pc = task->startPc;
        budget_ = 0.0;
        stall_ = 0;
    }

    /** Drop the current task (squash or commit bookkeeping). */
    void
    release()
    {
        task_ = nullptr;
    }

    /**
     * Advance one cycle. Executes up to slaveIpc instructions,
     * honoring arch-read stalls and fork-site pauses.
     *
     * @return instructions executed this cycle (for stats)
     */
    unsigned tick();

    /** Flash-invalidate the speculative L1 (squash/serialize). */
    void
    invalidateL1()
    {
        if (l1_)
            l1_->invalidateAll();
    }

    /** The private L1 (null when disabled). */
    const Cache *l1() const { return l1_.get(); }

    /** Cycles this slave spent stalled on arch reads (stats). */
    uint64_t archStallCycles() const { return arch_stall_cycles_; }
    /** Cycles spent paused waiting for an end condition (stats). */
    uint64_t pauseCycles() const { return pause_cycles_; }
    /** Cycles spent idle with no task (stats). */
    uint64_t idleCycles() const { return idle_cycles_; }

  private:
    /** Re-check pause/end conditions when new end info arrives. */
    void refreshEndCondition();

    int id_;
    const ArchState &arch_;
    const MsspConfig &cfg_;
    const std::set<uint32_t> &fork_site_pcs_;

    Task *task_ = nullptr;
    std::unique_ptr<Cache> l1_;
    double budget_ = 0.0;
    Cycle stall_ = 0;

    uint64_t arch_stall_cycles_ = 0;
    uint64_t pause_cycles_ = 0;
    uint64_t idle_cycles_ = 0;
};

} // namespace mssp

#endif // MSSP_MSSP_SLAVE_HH

/**
 * @file
 * MSSP slave processors.
 *
 * A slave executes one task of the *original* program. Reads are
 * satisfied, in priority order, from the task's own write buffer, the
 * already-recorded live-ins, the master's checkpoint, and finally
 * architected state (read-through, charged archReadLatency cycles).
 * Every first read of a cell is recorded in the task's live-in set;
 * the verify/commit unit later checks that set against architected
 * state, which is exactly the paper's memoization-style commit test.
 *
 * This is the machine's dominant instruction path, so it runs
 * devirtualized (TaskContext is final), fetches through the shared
 * predecode cache of the original image, and captures live-ins with a
 * single hash probe (StateDelta's lookup/insertAt cursor).
 */

#ifndef MSSP_MSSP_SLAVE_HH
#define MSSP_MSSP_SLAVE_HH

#include <cstdint>
#include <memory>

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "exec/blockjit.hh"
#include "exec/context.hh"
#include "exec/decode_cache.hh"
#include "exec/executor.hh"
#include "mssp/config.hh"
#include "mssp/fork_sites.hh"
#include "mssp/task.hh"

namespace mssp
{

/** ExecContext for one task on one slave. */
class TaskContext final : public ExecContext
{
  public:
    TaskContext(Task &task, const ArchState &arch,
                Cache *l1 = nullptr)
        : task_(task), arch_(arch), l1_(l1)
    {}

    /** Arch read-throughs performed by the last step (for timing). */
    unsigned archReadsLastStep = 0;
    /** Set when the last step tried to touch device space; all of the
     *  step's writes were suppressed and it must be discarded. */
    bool mmioTouched = false;

    void
    beginStep()
    {
        archReadsLastStep = 0;
        mmioTouched = false;
    }

    uint32_t
    readCell(CellId cell)
    {
        if (auto v = task_.liveOut.get(cell))
            return *v;
        // Live-in capture probes once: the lookup cursor doubles as
        // the insert position for the read-through value.
        StateDelta::Cursor c = task_.liveIn.lookup(cell);
        if (c.found)
            return task_.liveIn.valueAt(c);
        if (task_.checkpoint) {
            if (auto v = task_.checkpoint->get(cell)) {
                task_.liveIn.insertAt(c, cell, *v);
                return *v;
            }
        }
        uint32_t value = arch_.readCell(cell);
        ++task_.archReads;
        // L1 filter: resident memory lines are free; misses (and all
        // architected register-file reads) pay the read-through.
        bool charged = true;
        if (l1_ && cellKind(cell) == CellKind::Mem)
            charged = !l1_->access(cellIndex(cell));
        if (charged)
            ++archReadsLastStep;
        task_.liveIn.insertAt(c, cell, value);
        return value;
    }

    uint32_t readReg(unsigned r) override
    {
        // Repeat register reads hit the task's register cache; only
        // the first touch of r runs the full read (and records the
        // live-in). The cached value tracks liveOut/liveIn exactly.
        uint32_t bit = 1u << r;
        if (task_.regValid & bit)
            return task_.regCache[r];
        uint32_t v = readCell(makeRegCell(r));
        task_.regCache[r] = v;
        task_.regValid |= bit;
        return v;
    }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        if (mmioTouched)
            return;   // discard the aborted step's register write
        task_.liveOut.set(makeRegCell(r), v);
        task_.regCache[r] = v;
        task_.regValid |= 1u << r;
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        if (isMmio(addr)) {
            mmioTouched = true;
            return 0;   // dummy; the step is discarded
        }
        return readCell(makeMemCell(addr));
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr) || mmioTouched) {
            mmioTouched = true;
            return;
        }
        task_.liveOut.set(makeMemCell(addr), v);
    }
    uint32_t
    fetch(uint32_t pc) override
    {
        // Original code is immutable (no self-modifying code); fetch
        // directly from architected memory without live-in recording.
        return arch_.readMem(pc);
    }
    void
    output(uint16_t port, uint32_t value) override
    {
        task_.outputs.push_back({port, value});
    }

  private:
    Task &task_;
    const ArchState &arch_;
    Cache *l1_;
};

/** One slave processor. */
class SlaveCore
{
  public:
    SlaveCore(int id, const ArchState &arch, const MsspConfig &cfg,
              const ForkSiteSet &fork_site_pcs, DecodeCache &decode)
        : id_(id), arch_(arch), cfg_(cfg),
          fork_site_pcs_(fork_site_pcs), decode_(decode),
          backend_(resolveHookedBackend(cfg.execBackend))
    {
        if (cfg.useSlaveL1)
            l1_ = std::make_unique<Cache>(cfg.slaveL1);
    }

    bool idle() const { return task_ == nullptr; }
    Task *task() { return task_; }
    int id() const { return id_; }

    /** Begin executing @p task (it must be freshly spawned). */
    void
    assign(Task *task)
    {
        task_ = task;
        task->slaveId = id_;
        task->pc = task->startPc;
        budget_ = 0.0;
        stall_ = 0;
    }

    /** Drop the current task (squash or commit bookkeeping). */
    void
    release()
    {
        task_ = nullptr;
    }

    /**
     * Advance one cycle. Executes up to slaveIpc instructions,
     * honoring arch-read stalls and fork-site pauses.
     *
     * The idle case inlines into the machine's slave loop (most
     * slaves are idle most cycles); the execute path is out of line.
     *
     * @return instructions executed this cycle (for stats)
     */
    unsigned
    tick()
    {
        if (!task_) {
            ++idle_cycles_;
            return 0;
        }
        if (task_->done())
            return 0;   // waiting for the commit unit
        if (stall_ > 0) {
            --stall_;
            ++arch_stall_cycles_;
            return 0;
        }
        if (task_->pausedAtForkSite && !task_->endKnown &&
            !task_->runToHalt) {
            // Still waiting for the master to reveal the end
            // condition; same outcome as tickActive's pause path.
            ++pause_cycles_;
            return 0;
        }
        return tickActive();
    }

    /** Fault-injection surface: freeze this core for @p n extra
     *  cycles, as a stalled or flaky core would (timing-only; the
     *  verify/commit unit never learns the difference). */
    void injectStall(Cycle n) { stall_ += n; }

    /** Flash-invalidate the speculative L1 (squash/serialize). */
    void
    invalidateL1()
    {
        if (l1_)
            l1_->invalidateAll();
    }

    /** The private L1 (null when disabled). */
    const Cache *l1() const { return l1_.get(); }

    /** Cycles this slave spent stalled on arch reads (stats). */
    uint64_t archStallCycles() const { return arch_stall_cycles_; }
    /** Cycles spent paused waiting for an end condition (stats). */
    uint64_t pauseCycles() const { return pause_cycles_; }
    /** Cycles spent idle with no task (stats). */
    uint64_t idleCycles() const { return idle_cycles_; }

  private:
    /** The non-idle part of tick() (inline: once per busy slave per
     *  cycle, and the call sits on the machine's innermost loop). */
    unsigned tickActive();

    /** Re-check pause/end conditions when new end info arrives. */
    void refreshEndCondition();

    /**
     * Per-step obligations of task execution, expressed as an engine
     * hook (exec/backend.hh) so the slice below runs on any tier that
     * honors CapPerStepHook. Ordering mirrors the historical inline
     * loop exactly: MMIO aborts discard the step, halt ends the task
     * with the pc pinned, then arch-read stalls, end-condition
     * arrivals, fork-site pauses and the runaway cap — the last three
     * on the *post-step* pc, and all of them after the instruction
     * retires.
     */
    struct SlaveHook
    {
        SlaveCore &s;
        Task &t;
        TaskContext &ctx;
        /** Attempted steps (retired + MMIO-discarded); budget is
         *  charged per attempt, as the historical loop did. */
        uint64_t attempts = 0;

        bool
        preStep(uint32_t, const Instruction &)
        {
            ctx.beginStep();
            return true;
        }

        StepVerdict
        postStep(uint32_t, StepResult &res)
        {
            ++attempts;
            if (ctx.mmioTouched) {
                // Device access: the step was suppressed. The task
                // ends *before* the access; the machine serializes it.
                t.end = TaskEnd::MmioStop;
                return StepVerdict::Discard;
            }
            ++t.instCount;
            if (res.status == StepStatus::Halted) {
                t.end = TaskEnd::Halted;
                return StepVerdict::Continue;  // engine pins pc, stops
            }
            StepVerdict v = StepVerdict::Continue;
            if (ctx.archReadsLastStep) {
                s.stall_ += static_cast<Cycle>(ctx.archReadsLastStep) *
                            s.cfg_.archReadLatency;
                v = StepVerdict::Stop;
            }
            // Arrival checks: end condition and fork-site pauses.
            // These end the step outright; the runaway cap is only
            // consulted when neither fired (historical break order).
            if (t.endKnown) {
                if (res.nextPc == t.endPc) {
                    ++t.visits;
                    if (t.visits >= t.endVisits) {
                        t.end = TaskEnd::ReachedEnd;
                        return StepVerdict::Stop;
                    }
                }
            } else if (!t.runToHalt &&
                       s.fork_site_pcs_.contains(res.nextPc)) {
                t.pausedAtForkSite = true;
                return StepVerdict::Stop;
            }
            if (t.instCount >= s.cfg_.maxTaskInsts) {
                t.end = TaskEnd::Overrun;
                return StepVerdict::Stop;
            }
            return v;
        }
    };

    int id_;
    const ArchState &arch_;
    const MsspConfig &cfg_;
    const ForkSiteSet &fork_site_pcs_;
    DecodeCache &decode_;   ///< shared cache of the original image

    Task *task_ = nullptr;
    std::unique_ptr<Cache> l1_;
    double budget_ = 0.0;
    Cycle stall_ = 0;

    /** Execution tier for task slices. Slaves carry per-step
     *  obligations (the hook above), so blockjit resolves to
     *  threaded here (resolveHookedBackend). */
    BackendKind backend_;

    uint64_t arch_stall_cycles_ = 0;
    uint64_t pause_cycles_ = 0;
    uint64_t idle_cycles_ = 0;
};

inline void
SlaveCore::refreshEndCondition()
{
    Task &t = *task_;
    if (!t.pausedAtForkSite)
        return;
    if (t.runToHalt) {
        t.pausedAtForkSite = false;
        return;
    }
    if (!t.endKnown)
        return;   // still waiting for the master to fork
    t.pausedAtForkSite = false;
    if (t.pc == t.endPc) {
        ++t.visits;
        if (t.visits >= t.endVisits)
            t.end = TaskEnd::ReachedEnd;
    }
}

inline unsigned
SlaveCore::tickActive()
{
    Task &t = *task_;
    if (t.pausedAtForkSite) {
        refreshEndCondition();
        if (t.pausedAtForkSite || t.done()) {
            if (t.pausedAtForkSite)
                ++pause_cycles_;
            return 0;
        }
    }

    budget_ += cfg_.slaveIpc;
    TaskContext ctx(t, arch_, l1_.get());
    SlaveHook hook{*this, t, ctx};

    // One engine slice, budgeted in *attempted* steps: MMIO-discarded
    // and faulting attempts consume budget without retiring, exactly
    // as the historical per-step loop charged them.
    EngineResult er =
        runOnBackend(backend_, decode_, t.pc,
                     static_cast<uint64_t>(budget_), ctx, nullptr, hook);
    uint64_t attempts =
        hook.attempts + (er.status == StepStatus::Illegal ? 1 : 0);
    budget_ -= static_cast<double>(attempts);
    t.pc = er.pc;
    if (er.status == StepStatus::Illegal)
        t.end = TaskEnd::Faulted;
    return static_cast<unsigned>(er.retired);
}

} // namespace mssp

#endif // MSSP_MSSP_SLAVE_HH

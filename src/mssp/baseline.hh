/**
 * @file
 * The single-processor baseline.
 *
 * MSSP speedups are reported against one processor of the same type as
 * the slaves executing the original program (the paper's baseline was
 * one core of its CMP). Timing model: instructions / ipc cycles; the
 * baseline runs out of its local cache hierarchy, so it pays no
 * read-through latency (see DESIGN.md §2).
 */

#ifndef MSSP_MSSP_BASELINE_HH
#define MSSP_MSSP_BASELINE_HH

#include <cstdint>

#include "asm/program.hh"
#include "exec/context.hh"

namespace mssp
{

/** Result of a baseline run. */
struct BaselineResult
{
    bool halted = false;
    bool faulted = false;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    OutputStream outputs;
    uint32_t finalPc = 0;
};

/**
 * Run @p prog to completion (or @p max_insts) on a single core with
 * the given ipc.
 */
BaselineResult runBaseline(const Program &prog, double ipc,
                           uint64_t max_insts);

} // namespace mssp

#endif // MSSP_MSSP_BASELINE_HH

/**
 * @file
 * The MSSP master processor.
 *
 * The master executes the *distilled* program against its own
 * speculative register file and write buffer, reading through to
 * architected state for anything it has not written. Its only products
 * are predictions: at each taken FORK it snapshots its write-delta as
 * the checkpoint (predicted live-ins) of a new task.
 *
 * Nothing the master does can affect correctness; it can be stopped,
 * squashed and restarted at any fork-site PC (the entry map).
 */

#ifndef MSSP_MSSP_MASTER_HH
#define MSSP_MSSP_MASTER_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "arch/state_delta.hh"
#include "distill/distiller.hh"
#include "exec/context.hh"
#include "exec/executor.hh"

namespace mssp
{

/** What a single master step produced. */
enum class MasterStep : uint8_t
{
    Executed,    ///< ordinary instruction
    WantsFork,   ///< at a FORK that should spawn (caller must approve)
    Halted,
    Faulted,
};

/** The master core. */
class MasterCore : public ExecContext
{
  public:
    MasterCore(const DistilledProgram &dist, const ArchState &arch)
        : dist_(dist), arch_(arch)
    {
        regs_.fill(0);
    }

    /**
     * (Re)start the master at the distilled block for original PC
     * @p orig_pc, seeding registers from architected state.
     *
     * @retval false when orig_pc is not a restart point
     */
    bool restart(uint32_t orig_pc);

    /** Stop executing (squash); restart() re-engages. */
    void stop() { running_ = false; }

    bool running() const { return running_ && !halted_ && !faulted_; }
    bool halted() const { return halted_; }
    bool faulted() const { return faulted_; }

    /**
     * Peek whether the next instruction is a FORK that must actually
     * spawn a task (first fork after restart, or the fork-interval
     * counter expiring). Used by the machine to stall the master when
     * there is no task capacity instead of half-executing the fork.
     */
    bool nextForkWouldSpawn();

    /**
     * Execute one instruction.
     *
     * If the instruction is a FORK: site-arrival counters always
     * update; when the fork must spawn, *fork_out is filled with the
     * original start PC, the end-condition data for the *previous*
     * task and a checkpoint snapshot, and WantsFork is returned.
     */
    struct ForkInfo
    {
        uint32_t origPc = 0;
        uint32_t endVisitsForPrev = 1;
        std::shared_ptr<const StateDelta> checkpoint;
    };
    MasterStep step(ForkInfo *fork_out);

    /** Arrivals required at site i before it spawns (per-site
     *  interval times the machine-wide fork interval). */
    uint32_t requiredArrivals(uint32_t task_map_index) const;

    /** Instructions executed since the last restart. */
    uint64_t instsSinceRestart() const { return insts_since_restart_; }

    /** Total instructions executed (all epochs). */
    uint64_t totalInsts() const { return total_insts_; }

    /** Current write-delta size (checkpoint cost model + tests). */
    size_t deltaSize() const { return delta_.size(); }

    /**
     * Drop delta entries whose value equals current architected state
     * (sound: read-through would return the same value, and younger
     * commits are verified against live-ins anyway). Keeps checkpoint
     * snapshots small; called by the machine after commits.
     */
    void sweepDeltaAgainstArch(size_t max_cells);

    uint32_t pc() const { return pc_; }

    // -- ExecContext ------------------------------------------------------
    uint32_t readReg(unsigned r) override { return regs_[r]; }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        regs_[r] = v;
        delta_.set(makeRegCell(r), v);
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        // The master must never touch non-idempotent device state; a
        // zero prediction is as good as any (verification protects).
        if (isMmio(addr))
            return 0;
        if (auto v = delta_.get(makeMemCell(addr)))
            return *v;
        return arch_.readMem(addr);
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr))
            return;   // device writes are real side effects: drop
        delta_.set(makeMemCell(addr), v);
    }
    uint32_t
    fetch(uint32_t pc) override
    {
        // The distilled image is the master's private I-space.
        return dist_.prog.word(pc);
    }
    void output(uint16_t, uint32_t) override
    {
        // Master outputs are predictions, never observable.
    }

  private:
    const DistilledProgram &dist_;
    const ArchState &arch_;

    std::array<uint32_t, NumRegs> regs_;
    uint32_t pc_ = 0;
    StateDelta delta_;

    bool running_ = false;
    bool halted_ = false;
    bool faulted_ = false;
    bool first_fork_pending_ = false;

    /** Arrivals per fork-site original PC since the last spawn. */
    std::map<uint32_t, uint32_t> site_arrivals_;
    /** Fork-site executions since the last spawn (interval policy). */
    unsigned forks_seen_since_spawn_ = 0;
    unsigned fork_interval_ = 1;

    uint64_t insts_since_restart_ = 0;
    uint64_t total_insts_ = 0;

    friend class MsspMachine;

  public:
    void setForkInterval(unsigned k) { fork_interval_ = k ? k : 1; }
};

} // namespace mssp

#endif // MSSP_MSSP_MASTER_HH

/**
 * @file
 * The MSSP master processor.
 *
 * The master executes the *distilled* program against its own
 * speculative register file and write buffer, reading through to
 * architected state for anything it has not written. Its only products
 * are predictions: at each taken FORK it snapshots its write-delta as
 * the checkpoint (predicted live-ins) of a new task.
 *
 * Nothing the master does can affect correctness; it can be stopped,
 * squashed and restarted at any fork-site PC (the entry map).
 */

#ifndef MSSP_MSSP_MASTER_HH
#define MSSP_MSSP_MASTER_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>
#include <memory>

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "arch/state_delta.hh"
#include "distill/distiller.hh"
#include "exec/backend.hh"
#include "exec/context.hh"
#include "exec/decode_cache.hh"
#include "exec/executor.hh"
#include "sim/logging.hh"

namespace mssp
{

/** What a single master step produced. */
enum class MasterStep : uint8_t
{
    Executed,    ///< ordinary instruction
    WantsFork,   ///< at a FORK that should spawn (caller must approve)
    Halted,
    Faulted,
};

/** The master core. */
class MasterCore final : public ExecContext
{
  public:
    /** @p dist must outlive the core (the predecode cache is keyed by
     *  its immutable image). */
    MasterCore(const DistilledProgram &dist, const ArchState &arch)
        : dist_(dist), arch_(arch)
    {
        regs_.fill(0);
    }

    /**
     * (Re)start the master at the distilled block for original PC
     * @p orig_pc, seeding registers from architected state.
     *
     * @retval false when orig_pc is not a restart point
     */
    bool restart(uint32_t orig_pc);

    /** Stop executing (squash); restart() re-engages. */
    void stop() { running_ = false; }

    bool running() const { return running_ && !halted_ && !faulted_; }
    bool halted() const { return halted_; }
    bool faulted() const { return faulted_; }

    /**
     * Peek whether the next instruction is a FORK that must actually
     * spawn a task (first fork after restart, or the fork-interval
     * counter expiring). Used by the machine to stall the master when
     * there is no task capacity instead of half-executing the fork.
     */
    bool nextForkWouldSpawn();

    /**
     * Execute one instruction.
     *
     * If the instruction is a FORK: site-arrival counters always
     * update; when the fork must spawn, *fork_out is filled with the
     * original start PC, the end-condition data for the *previous*
     * task and a checkpoint snapshot, and WantsFork is returned.
     */
    struct ForkInfo
    {
        uint32_t origPc = 0;
        uint32_t endVisitsForPrev = 1;
        std::shared_ptr<const StateDelta> checkpoint;
    };
    /** Inline: called once per master instruction on the machine's
     *  per-cycle loop; the FORK case is out of line (stepFork). */
    MasterStep
    step(ForkInfo *fork_out)
    {
        MSSP_ASSERT(running());
        const Instruction &inst = decode_.at(pc_);
        if (inst.op == Opcode::Fork)
            return stepFork(inst, fork_out);

        StepResult res = executeDecodedOn(pc_, inst, *this);

        if (res.status == StepStatus::Ok && inst.op == Opcode::Jalr &&
            res.nextPc < DistilledCodeBase &&
            !translateJalr(res)) {
            faulted_ = true;
            return MasterStep::Faulted;
        }

        switch (res.status) {
          case StepStatus::Ok:
            pc_ = res.nextPc;
            ++total_insts_;
            ++insts_since_restart_;
            return MasterStep::Executed;
          case StepStatus::Halted:
            halted_ = true;
            ++total_insts_;
            ++insts_since_restart_;
            return MasterStep::Halted;
          case StepStatus::Illegal:
          default:
            faulted_ = true;
            return MasterStep::Faulted;
        }
    }

    /**
     * Execute up to @p max_steps instructions on the selected
     * execution tier, stopping *in front of* the first FORK (the
     * machine must gate fork capacity before step() executes it).
     * Counters update exactly as per-step execution would.
     *
     * @return Halted/Faulted as step() would; Executed when stopped
     *         at a FORK or by the budget. *executed gets the retired
     *         instruction count.
     */
    MasterStep runSlice(unsigned max_steps, unsigned *executed);

    /** @return true when the next instruction is a FORK (the one
     *  case runSlice cannot make progress on). */
    bool atFork() { return decode_.at(pc_).op == Opcode::Fork; }

    /** Select the execution tier. The master needs per-step hooks
     *  (fork gating, jalr translation), so blockjit resolves to
     *  threaded. */
    void setBackend(BackendKind kind)
    {
        backend_ = resolveHookedBackend(kind);
    }

    /** Arrivals required at site i before it spawns (per-site
     *  interval times the machine-wide fork interval). */
    uint32_t requiredArrivals(uint32_t task_map_index) const;

    /** Instructions executed since the last restart. */
    uint64_t instsSinceRestart() const { return insts_since_restart_; }

    /** Total instructions executed (all epochs). */
    uint64_t totalInsts() const { return total_insts_; }

    /** Current write-delta size (checkpoint cost model + tests):
     *  buffered memory writes plus dirty registers. */
    size_t
    deltaSize() const
    {
        return delta_.size() +
               static_cast<size_t>(__builtin_popcount(dirty_regs_));
    }

    /**
     * Drop delta entries whose value equals current architected state
     * (sound: read-through would return the same value, and younger
     * commits are verified against live-ins anyway). Keeps checkpoint
     * snapshots small; called by the machine after commits.
     */
    void sweepDeltaAgainstArch(size_t max_cells);

    uint32_t pc() const { return pc_; }

    // -- Fault-injection surface (src/fault/) -----------------------------
    // Nothing the master does can affect correctness, so corrupting it
    // is always safe; these exist so campaigns corrupt *exactly* the
    // state a flaky core would, through one auditable door.

    /** Flip bits of register @p r (marks it dirty: the corruption
     *  propagates into the next checkpoint, as real damage would). */
    void
    corruptReg(unsigned r, uint32_t xor_mask)
    {
        if (r == 0 || r >= NumRegs)
            return;
        regs_[r] ^= xor_mask;
        dirty_regs_ |= 1u << r;
    }

    /** Redirect the PC (wild jump within the private I-space). */
    void corruptPc(uint32_t pc) { pc_ = pc; }

    /** Invalidate the predecoded page holding @p pc after the machine
     *  patches a distilled-image word at runtime. */
    void invalidateDecode(uint32_t pc) { decode_.invalidate(pc); }

    // -- ExecContext ------------------------------------------------------
    uint32_t readReg(unsigned r) override { return regs_[r]; }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        // Register writes only flip a dirty bit; the write-delta map
        // holds memory cells. Register cells are materialized from
        // regs_ + dirty_regs_ when a checkpoint is snapshotted.
        regs_[r] = v;
        dirty_regs_ |= 1u << r;
    }
    uint32_t
    readMem(uint32_t addr) override
    {
        // The master must never touch non-idempotent device state; a
        // zero prediction is as good as any (verification protects).
        if (isMmio(addr))
            return 0;
        if (auto v = delta_.get(makeMemCell(addr)))
            return *v;
        return arch_.readMem(addr);
    }
    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr))
            return;   // device writes are real side effects: drop
        delta_.set(makeMemCell(addr), v);
    }
    uint32_t
    fetch(uint32_t pc) override
    {
        // The distilled image is the master's private I-space.
        return dist_.prog.word(pc);
    }
    void output(uint16_t, uint32_t) override
    {
        // Master outputs are predictions, never observable.
    }

  private:
    const DistilledProgram &dist_;
    const ArchState &arch_;
    /** Predecode cache over the distilled image (private I-space). */
    DecodeCache decode_{dist_.prog};

    /** Build the checkpoint snapshot: buffered memory writes plus
     *  every dirty register's current value. */
    std::shared_ptr<const StateDelta> snapshotCheckpoint() const;

    /** The FORK case of step() (arrival counting + spawn decision). */
    MasterStep stepFork(const Instruction &inst, ForkInfo *fork_out);

    /** Map an indirect jump into original code back into the
     *  distilled image. @retval false when there is no mapping. */
    bool translateJalr(StepResult &res);

    /** Engine hook for runSlice: stop in front of FORKs, apply the
     *  jalr translation, and fault (Discard) when it has no mapping —
     *  byte-identical to the per-step step() path. */
    struct SliceHook
    {
        MasterCore &m;
        bool translationFault = false;

        bool preStep(uint32_t, const Instruction &inst)
        {
            return inst.op != Opcode::Fork;
        }

        StepVerdict postStep(uint32_t, StepResult &res)
        {
            if (res.status == StepStatus::Ok &&
                res.inst.op == Opcode::Jalr &&
                res.nextPc < DistilledCodeBase && !m.translateJalr(res)) {
                translationFault = true;
                return StepVerdict::Discard;
            }
            return StepVerdict::Continue;
        }
    };

    std::array<uint32_t, NumRegs> regs_;
    uint32_t pc_ = 0;
    /** Buffered *memory* writes since restart (registers are tracked
     *  by dirty_regs_ and live in regs_). */
    StateDelta delta_;
    /** Bit r set: register r was written since the last restart and
     *  its value differs (conservatively) from architected state. */
    uint32_t dirty_regs_ = 0;

    bool running_ = false;
    bool halted_ = false;
    bool faulted_ = false;
    bool first_fork_pending_ = false;

    /** Arrivals per fork-site original PC since the last spawn. The
     *  handful of live sites makes a linearly-scanned flat vector
     *  cheaper than a node-based map (no allocation per fork). */
    std::vector<std::pair<uint32_t, uint32_t>> site_arrivals_;

    /** Arrival count for @p orig_pc (0 when never seen). */
    uint32_t
    siteArrivals(uint32_t orig_pc) const
    {
        for (const auto &[pc, count] : site_arrivals_) {
            if (pc == orig_pc)
                return count;
        }
        return 0;
    }

    /** Record one arrival at @p orig_pc; returns the new count. */
    uint32_t
    bumpSiteArrivals(uint32_t orig_pc)
    {
        for (auto &[pc, count] : site_arrivals_) {
            if (pc == orig_pc)
                return ++count;
        }
        site_arrivals_.push_back({orig_pc, 1});
        return 1;
    }
    /** Fork-site executions since the last spawn (interval policy). */
    unsigned forks_seen_since_spawn_ = 0;
    unsigned fork_interval_ = 1;

    uint64_t insts_since_restart_ = 0;
    uint64_t total_insts_ = 0;
    BackendKind backend_ = resolveHookedBackend(defaultBackend());

    friend class MsspMachine;

  public:
    void setForkInterval(unsigned k) { fork_interval_ = k ? k : 1; }
};

} // namespace mssp

#endif // MSSP_MSSP_MASTER_HH

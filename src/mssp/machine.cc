#include "mssp/machine.hh"

#include <algorithm>

#include "exec/blockjit.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"
#include "sim/logging.hh"
#include "sim/supervisor.hh"

namespace mssp
{

const char *
toString(StopReason r)
{
    switch (r) {
      case StopReason::Halted:            return "halted";
      case StopReason::Faulted:           return "faulted";
      case StopReason::TimedOut:          return "timed-out";
      case StopReason::WatchdogExhausted: return "watchdog-exhausted";
    }
    return "?";
}

namespace
{

/** Non-speculative execution context: directly on architected state. */
class SeqArchContext final : public ExecContext
{
  public:
    SeqArchContext(ArchState &arch, MmioDevice &device,
                   OutputStream &outputs)
        : arch_(arch), device_(device), outputs_(outputs)
    {}

    uint32_t readReg(unsigned r) override { return arch_.readReg(r); }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        arch_.writeReg(r, v);
    }
    uint32_t
    readMem(uint32_t a) override
    {
        if (isMmio(a))
            return device_.read(a);
        return arch_.readMem(a);
    }
    void
    writeMem(uint32_t a, uint32_t v) override
    {
        if (isMmio(a)) {
            device_.write(a, v, outputs_);
            return;
        }
        arch_.writeMem(a, v);
    }
    uint32_t fetch(uint32_t pc) override { return arch_.readMem(pc); }
    void
    output(uint16_t port, uint32_t value) override
    {
        outputs_.push_back({port, value});
    }

  private:
    ArchState &arch_;
    MmioDevice &device_;
    OutputStream &outputs_;
};

} // anonymous namespace

MsspMachine::MsspMachine(const Program &orig,
                         const DistilledProgram &dist,
                         const MsspConfig &cfg)
    : cfg_(cfg), orig_(orig), dist_(dist), arch_(),
      master_(dist_, arch_), fork_site_pcs_(dist_.taskMap)
{
    arch_.loadProgram(orig_);
    master_.setForkInterval(cfg_.forkInterval);
    master_.setBackend(cfg_.execBackend);
    slaves_.reserve(cfg_.numSlaves);
    for (unsigned i = 0; i < cfg_.numSlaves; ++i) {
        slaves_.emplace_back(static_cast<int>(i), arch_, cfg_,
                             fork_site_pcs_, orig_decode_);
    }
    mode_ = Mode::Restarting;
    restart_at_ = 0;
}

void
MsspMachine::setFaultInjector(FaultInjector *injector)
{
    injector_ = injector;
    if (injector_ && dist_code_addrs_.empty()) {
        // ImagePatch target list: words of the master's private
        // I-space (distilled code), never the original image.
        for (const auto &[addr, word] : dist_.prog.image()) {
            (void)word;
            if (addr >= DistilledCodeBase)
                dist_code_addrs_.push_back(addr);
        }
    }
}

void
MsspMachine::engageMaster()
{
    last_commit_cycle_ = now_;
    if (seq_insts_remaining_ == 0 && force_seq_insts_ == 0 &&
        master_.restart(arch_.pc())) {
        mode_ = Mode::Spec;
        master_budget_ = 0.0;
        master_insts_at_last_fork_ = 0;
    } else {
        mode_ = Mode::Seq;
        seq_budget_ = 0.0;
    }
}

void
MsspMachine::noteEngageFailure()
{
    ++engage_failures_;
    if (engage_failures_ > cfg_.maxEngageFailures) {
        // Speculation keeps failing here: back off to sequential
        // execution for a while (exponential, decayed by commits).
        seq_backoff_ = std::min(
            std::max(seq_backoff_ * 2, cfg_.seqBackoffInsts),
            cfg_.maxSeqBackoffInsts);
        seq_insts_remaining_ = seq_backoff_;
        engage_failures_ = 0;
        ++ctrs_.seqBackoffEvents;
    }
}

void
MsspMachine::noteMasterDead()
{
    ++ctrs_.masterDeadRestarts;
    noteEngageFailure();
    mode_ = Mode::Restarting;
    restart_at_ = now_ + cfg_.squashPenalty;
    last_commit_cycle_ = now_;
}

void
MsspMachine::squash(TaskOutcome reason)
{
    ++ctrs_.squashEvents;
    switch (reason) {
      case TaskOutcome::SquashedLiveIn:
        ++ctrs_.tasksSquashedLiveIn;
        break;
      case TaskOutcome::SquashedWrongPc:
        ++ctrs_.tasksSquashedWrongPc;
        break;
      case TaskOutcome::SquashedOverrun:
        ++ctrs_.tasksSquashedOverrun;
        break;
      case TaskOutcome::SquashedSpurious:
        ++ctrs_.tasksSquashedSpurious;
        break;
      default:
        break;
    }
    // Attribute the squash to the static fork site whose task headed
    // the window — the table the adaptation loop (eval/adapt.hh)
    // feeds back into re-distillation.
    if (!window_.empty()) {
        ForkSiteStat &s = site_stats_[window_.front()->startPc];
        switch (reason) {
          case TaskOutcome::SquashedLiveIn:
            ++s.squashedLiveIn;
            break;
          case TaskOutcome::SquashedWrongPc:
            ++s.squashedWrongPc;
            break;
          default:
            ++s.squashedOther;
            break;
        }
    }
    if (window_.size() > 1)
        ctrs_.tasksSquashedCascade += window_.size() - 1;

    for (auto &slave : slaves_) {
        slave.release();
        slave.invalidateL1();   // speculative lines are discarded
    }
    for (auto &task : window_) {
        ctrs_.wastedSlaveInsts += task->instCount;
        recycleTask(std::move(task));
    }
    window_.clear();
    arrived_.clear();
    spawn_queue_.clear();
    master_.stop();

    noteEngageFailure();
    mode_ = Mode::Restarting;
    restart_at_ = now_ + cfg_.squashPenalty;
    last_commit_cycle_ = now_;
}

void
MsspMachine::serializeSpeculation()
{
    for (auto &slave : slaves_) {
        slave.release();
        slave.invalidateL1();
    }
    for (auto &task : window_) {
        ctrs_.wastedSlaveInsts += task->instCount;
        recycleTask(std::move(task));
    }
    window_.clear();
    arrived_.clear();
    spawn_queue_.clear();
    master_.stop();
    mode_ = Mode::Restarting;
    restart_at_ = now_ + cfg_.squashPenalty;
    last_commit_cycle_ = now_;
    // The device access itself must execute sequentially before the
    // master may be re-engaged (it could sit exactly at a fork site).
    force_seq_insts_ = 1;
    // Note: deliberately no engage-failure accounting — this is
    // planned serialization, not misspeculation.
}

void
MsspMachine::commitFront()
{
    Task &t = *window_.front();
    ++site_stats_[t.startPc].committed;
    if (commit_hook_)
        commit_hook_(t, arch_);
    arch_.apply(t.liveOut);
    bool stays_at_pc = t.end == TaskEnd::Halted ||
                       t.end == TaskEnd::MmioStop;
    arch_.setPc(stays_at_pc ? t.pc : t.endPc);
    arch_.addInstret(t.instCount);
    outputs_.insert(outputs_.end(), t.outputs.begin(),
                    t.outputs.end());

    ++ctrs_.tasksCommitted;
    task_size_dist_.sample(static_cast<double>(t.instCount));
    livein_dist_.sample(static_cast<double>(t.liveIn.size()));
    ctrs_.archReads += t.archReads;
    if (t.end == TaskEnd::Halted)
        halted_ = true;

    recycleTask(std::move(window_.front()));
    window_.pop_front();
    commit_busy_until_ = now_ + cfg_.commitLatency;
    last_commit_cycle_ = now_;
    engage_failures_ = 0;
    consecutive_watchdog_ = 0;
    if (seq_backoff_ > 0) {
        // Speculation is working again: decay. Clamp to 0 below the
        // initial backoff so a recovered machine really is backoff-free
        // (re-engagement via max(2x, seqBackoffInsts) used to pin any
        // once-engaged backoff at the floor forever).
        seq_backoff_ /= 2;
        if (seq_backoff_ < cfg_.seqBackoffInsts)
            seq_backoff_ = 0;
        ++ctrs_.seqBackoffDecays;
    }
    master_.sweepDeltaAgainstArch(cfg_.checkpointSweepCells);
}

void
MsspMachine::tickCommit()
{
    if (now_ < commit_busy_until_ || window_.empty())
        return;
    Task &t = *window_.front();
    if (!t.done())
        return;

    auto squash_with_hook = [&](TaskOutcome reason) {
        if (squash_hook_)
            squash_hook_(t, reason);
        squash(reason);
    };

    if (injector_ && injector_->fire(FaultType::SpuriousSquash)) {
        // Glitched verification hardware: squash a head task that may
        // well have verified. Costs performance, never correctness —
        // squashed work leaves architected state untouched.
        squash_with_hook(TaskOutcome::SquashedSpurious);
        return;
    }

    switch (t.end) {
      case TaskEnd::ReachedEnd:
      case TaskEnd::Halted:
      case TaskEnd::MmioStop: {
        if (t.startPc != arch_.pc()) {
            squash_with_hook(TaskOutcome::SquashedWrongPc);
            return;
        }
        ctrs_.liveInCellsChecked += t.liveIn.size();
        uint64_t mismatches = arch_.countMismatches(t.liveIn);
        if (mismatches) {
            ctrs_.liveInCellsMismatched += mismatches;
            squash_with_hook(TaskOutcome::SquashedLiveIn);
            return;
        }
        bool mmio = t.end == TaskEnd::MmioStop;
        commitFront();
        if (mmio) {
            // The committed prefix brought the architected PC to the
            // device access; execute it (and what follows) in
            // sequential mode — speculation is precluded on
            // non-idempotent state.
            ++ctrs_.mmioSerializations;
            serializeSpeculation();
        }
        return;
      }
      case TaskEnd::Faulted: {
        // A fault with verified inputs is a genuine program fault.
        if (t.startPc == arch_.pc() && arch_.matches(t.liveIn)) {
            faulted_ = true;
            return;
        }
        squash_with_hook(TaskOutcome::SquashedLiveIn);
        return;
      }
      case TaskEnd::Overrun:
        squash_with_hook(TaskOutcome::SquashedOverrun);
        return;
      case TaskEnd::None:
        return;
    }
}

std::unique_ptr<Task>
MsspMachine::allocTask()
{
    if (task_pool_.empty()) {
        auto task = std::make_unique<Task>();
        // Typical tasks record dozens of cells; skip the early
        // grow-probe-reinsert churn in the flat maps.
        task->liveIn.reserve(64);
        task->liveOut.reserve(64);
        return task;
    }
    std::unique_ptr<Task> task = std::move(task_pool_.back());
    task_pool_.pop_back();
    task->reset();
    return task;
}

void
MsspMachine::recycleTask(std::unique_ptr<Task> task)
{
    // Stale contents are harmless: allocTask() resets on reuse (so
    // references held through commit/squash teardown stay readable).
    task_pool_.push_back(std::move(task));
}

void
MsspMachine::tickSpawnDelivery()
{
    while (!arrived_.empty()) {
        auto idle = std::find_if(slaves_.begin(), slaves_.end(),
                                 [](const SlaveCore &s) {
                                     return s.idle();
                                 });
        if (idle == slaves_.end())
            return;
        Task *t = arrived_.front();
        arrived_.pop_front();
        idle->assign(t);
    }
}

void
MsspMachine::injectMasterFaults()
{
    if (injector_->fire(FaultType::MasterRegFlip)) {
        const FaultPlan &p = injector_->plan(FaultType::MasterRegFlip);
        unsigned r = p.target > 0 && p.target < static_cast<int>(NumRegs)
                         ? static_cast<unsigned>(p.target)
                         : 1 + static_cast<unsigned>(
                                   injector_->pick(NumRegs - 1));
        master_.corruptReg(r, injector_->bit32());
    }
    if (!dist_code_addrs_.empty() &&
        injector_->fire(FaultType::MasterPcCorrupt)) {
        uint32_t pc = dist_code_addrs_[injector_->pick(
            dist_code_addrs_.size())];
        master_.corruptPc(pc);
    }
    if (!dist_code_addrs_.empty() &&
        injector_->fire(FaultType::ImagePatch)) {
        // Patch a word of the master's private I-space at runtime and
        // invalidate its predecode page. The original image is never
        // touched: slaves and the Seq fallback stay correct by
        // construction.
        uint32_t addr = dist_code_addrs_[injector_->pick(
            dist_code_addrs_.size())];
        dist_.prog.setWord(addr, injector_->word());
        master_.invalidateDecode(addr);
    }
}

void
MsspMachine::injectSlaveFaults()
{
    for (auto &slave : slaves_) {
        Task *t = slave.task();
        if (!t || t->done())
            continue;
        bool kill = false;
        Cycle stall = injector_->onSlaveTick(slave.id(), &kill);
        if (kill) {
            // The core died mid-task. Its task stays incomplete in
            // the window (no slave will ever pick it up again), so
            // the commit unit stalls on it until the watchdog squash
            // recovers — exactly a hung core's failure mode.
            slave.release();
            continue;
        }
        if (stall > 0)
            slave.injectStall(stall);
    }
}

void
MsspMachine::tickSlaves()
{
    if (injector_)
        injectSlaveFaults();
    for (auto &slave : slaves_) {
        unsigned executed = slave.tick();
        ctrs_.slaveInsts += executed;
        // Free the slave as soon as its task is complete: the task's
        // live-in/live-out data now lives with the verify/commit unit
        // (the window), exactly as in the paper.
        if (Task *t = slave.task(); t && t->done())
            slave.release();
    }
}

void
MsspMachine::tickMaster()
{
    if (mode_ != Mode::Spec || !master_.running())
        return;
    if (injector_)
        injectMasterFaults();
    if (cfg_.masterRunawayInsts > 0 && master_.running() &&
        master_.instsSinceRestart() - master_insts_at_last_fork_ >
            cfg_.masterRunawayInsts) {
        // The master is burning instructions without forking (e.g. a
        // corrupted PC landed it in an infinite non-fork loop). The
        // watchdog cannot see this while older tasks keep committing,
        // so kill the master here; once the window drains, the
        // master-dead path restarts it.
        master_.stop();
        ++ctrs_.masterRunawayKills;
        return;
    }
    master_budget_ += cfg_.masterIpc;

    while (master_budget_ >= 1.0 && master_.running()) {
        if (!master_.atFork()) {
            // Between forks the master runs a whole budget's worth of
            // instructions on the execution tier in one slice; the
            // engine stops in front of the next FORK so the capacity
            // gate below still sees every spawn attempt.
            auto avail = static_cast<unsigned>(master_budget_);
            unsigned executed = 0;
            MasterStep st = master_.runSlice(avail, &executed);
            master_budget_ -= executed;
            ctrs_.masterInsts += executed;
            if (st == MasterStep::Halted) {
                if (Task *prev = youngest(); prev && !prev->endKnown)
                    prev->runToHalt = true;
                return;
            }
            if (st == MasterStep::Faulted)
                return;
            continue;  // in front of a FORK, or budget drained
        }
        // Cheap capacity test first: the fork-site peek only matters
        // when the window is actually full.
        if (window_.size() >= cfg_.maxInFlightTasks &&
            master_.nextForkWouldSpawn()) {
            ++ctrs_.masterStallWindowFull;
            master_budget_ = 0.0;
            return;
        }
        master_budget_ -= 1.0;

        MasterCore::ForkInfo fi;
        MasterStep st = master_.step(&fi);
        if (st != MasterStep::Faulted)
            ++ctrs_.masterInsts;

        switch (st) {
          case MasterStep::WantsFork: {
            master_insts_at_last_fork_ = master_.instsSinceRestart();
            if (Task *prev = youngest(); prev && !prev->endKnown) {
                prev->endKnown = true;
                prev->endPc = fi.origPc;
                prev->endVisits = fi.endVisitsForPrev;
            }
            std::unique_ptr<Task> task = allocTask();
            task->id = next_task_id_++;
            task->startPc = fi.origPc;
            task->checkpoint = fi.checkpoint;
            if (injector_) {
                if (auto bad = injector_->corruptCheckpoint(
                        *fi.checkpoint))
                    task->checkpoint = std::move(bad);
            }
            checkpoint_dist_.sample(
                static_cast<double>(task->checkpoint->size()));
            Task *raw = task.get();
            window_.push_back(std::move(task));
            ++ctrs_.tasksForked;
            ++site_stats_[fi.origPc].forked;
            if (injector_ && injector_->dropSpawn()) {
                // Lost on the interconnect: the task sits in the
                // window forever undelivered; the watchdog squash
                // recovers it.
                break;
            }
            Cycle transit = cfg_.forkLatency;
            if (injector_)
                transit += injector_->spawnDelay();
            spawn_queue_.push_back({now_ + transit, raw});
            break;
          }
          case MasterStep::Halted: {
            if (Task *prev = youngest(); prev && !prev->endKnown)
                prev->runToHalt = true;
            return;
          }
          case MasterStep::Faulted:
            // The distilled program went off the rails; in-flight
            // tasks may still commit, and the watchdog recovers the
            // rest. Correctness is unaffected.
            return;
          case MasterStep::Executed:
            break;
        }
    }
}

void
MsspMachine::tickSeq()
{
    if (mode_ != Mode::Seq)
        return;
    ++ctrs_.seqModeCycles;
    seq_budget_ += cfg_.slaveIpc;
    SeqArchContext ctx(arch_, device_, outputs_);

    // Per-step obligations (instret, backoff countdowns, the
    // re-engage check) ride the engine hook, so sequential fallback
    // runs on the configured tier too (hooked: blockjit resolves to
    // threaded).
    struct SeqHook
    {
        MsspMachine &m;
        bool engage = false;

        bool preStep(uint32_t, const Instruction &) { return true; }

        StepVerdict postStep(uint32_t, StepResult &res)
        {
            m.arch_.addInstret(1);
            ++m.ctrs_.seqModeInsts;
            if (res.status == StepStatus::Halted)
                return StepVerdict::Stop;
            if (m.seq_insts_remaining_ > 0)
                --m.seq_insts_remaining_;
            if (m.force_seq_insts_ > 0)
                --m.force_seq_insts_;
            if (m.seq_insts_remaining_ == 0 &&
                m.force_seq_insts_ == 0 &&
                m.dist_.entryMap.count(res.nextPc)) {
                engage = true;
                return StepVerdict::Stop;
            }
            return StepVerdict::Continue;
        }
    };

    const BackendKind backend = resolveHookedBackend(cfg_.execBackend);
    while (seq_budget_ >= 1.0 && !halted_ && !faulted_) {
        auto avail = static_cast<uint64_t>(seq_budget_);
        SeqHook hook{*this};
        EngineResult er = runOnBackend(backend, orig_decode_,
                                       arch_.pc(), avail, ctx, nullptr,
                                       hook);
        // The budget counts attempts: a faulting one consumed a slot.
        seq_budget_ -= static_cast<double>(
            er.retired + (er.status == StepStatus::Illegal ? 1 : 0));
        arch_.setPc(er.pc);
        if (er.status == StepStatus::Illegal) {
            faulted_ = true;
            return;
        }
        if (er.status == StepStatus::Halted) {
            halted_ = true;
            return;
        }
        if (hook.engage) {
            engageMaster();
            if (mode_ == Mode::Spec)
                return;
        }
    }
}

void
MsspMachine::checkWatchdog()
{
    if (mode_ != Mode::Spec)
        return;
    if (now_ - last_commit_cycle_ > cfg_.watchdogCycles) {
        ++ctrs_.watchdogSquashes;
        ++consecutive_watchdog_;
        bool escalate =
            consecutive_watchdog_ > cfg_.watchdogEscalateAfter;
        squash(TaskOutcome::SquashedOverrun);
        if (escalate && seq_insts_remaining_ == 0) {
            // This many firings without one commit in between means
            // re-trying speculation is burning watchdogCycles per
            // attempt; force the sequential fallback now. (Skipped
            // when squash()'s own engage-failure accounting already
            // scheduled a backoff — no double-doubling.)
            ++ctrs_.watchdogEscalations;
            seq_backoff_ = std::min(
                std::max(seq_backoff_ * 2, cfg_.seqBackoffInsts),
                cfg_.maxSeqBackoffInsts);
            seq_insts_remaining_ = seq_backoff_;
        }
    }
}

MsspResult
MsspMachine::run(uint64_t max_cycles)
{
    // Job supervision (sim/supervisor.hh): polled every 1024 cycles
    // at the top of the cycle loop — a consistent point, so a budget
    // trip throws with all speculative and architected state intact
    // (the machine can be inspected or resumed). Unsupervised runs
    // pay one null test per cycle.
    Supervision *sup = currentSupervision();
    uint64_t sup_exec = 0;
    uint64_t sup_commit = 0;
    if (sup) {
        sup_exec = ctrs_.masterInsts + ctrs_.slaveInsts +
                   ctrs_.seqModeInsts;
        sup_commit = arch_.instret();
    }
    while (now_ < max_cycles && !halted_ && !faulted_) {
        if (sup && (now_ & 1023) == 0) {
            sup->checkOrThrow();
            uint64_t exec = ctrs_.masterInsts + ctrs_.slaveInsts +
                            ctrs_.seqModeInsts;
            uint64_t commit = arch_.instret();
            sup->consume(exec - sup_exec, commit - sup_commit);
            sup_exec = exec;
            sup_commit = commit;
        }
        // Fork delivery (in transit for forkLatency cycles; FIFO by
        // construction since the latency is fixed).
        while (!spawn_queue_.empty() && spawn_queue_.front().due <= now_) {
            arrived_.push_back(spawn_queue_.front().task);
            spawn_queue_.pop_front();
        }
        if (mode_ == Mode::Restarting && now_ >= restart_at_)
            engageMaster();
        // Per-cycle units are guarded here so the common cases (empty
        // window, head task still running, idle delivery queue) cost
        // a branch, not a call (this loop runs once per cycle).
        if (!window_.empty() && now_ >= commit_busy_until_ &&
            window_.front()->done()) {
            tickCommit();
            if (halted_ || faulted_)
                break;
        }
        if (!arrived_.empty())
            tickSpawnDelivery();
        tickSlaves();
        if (mode_ == Mode::Spec) {
            tickMaster();
            if (!master_.running() && window_.empty() &&
                spawn_queue_.empty() && arrived_.empty()) {
                // Dead master (halted/faulted/runaway-killed), empty
                // pipeline: nothing can ever commit, so restart now
                // instead of sitting out the watchdog. Counts as an
                // engage failure — a master that dies right after
                // every restart must escalate into Seq backoff, not
                // spin restart/die forever.
                noteMasterDead();
            } else {
                checkWatchdog();
            }
        } else if (mode_ == Mode::Seq) {
            tickSeq();
        }
        ++now_;
    }

    for (const auto &slave : slaves_) {
        if (const Cache *l1 = slave.l1()) {
            ctrs_.l1Hits += l1->hits();
            ctrs_.l1Misses += l1->misses();
        }
        ctrs_.slaveArchStallCycles += slave.archStallCycles();
        ctrs_.slavePauseCycles += slave.pauseCycles();
        ctrs_.slaveIdleCycles += slave.idleCycles();
    }

    MsspResult result;
    result.halted = halted_;
    result.faulted = faulted_;
    result.timedOut = !halted_ && !faulted_;
    if (halted_) {
        result.stopReason = StopReason::Halted;
    } else if (faulted_) {
        result.stopReason = StopReason::Faulted;
    } else if (consecutive_watchdog_ > cfg_.watchdogEscalateAfter) {
        // Ran out the clock mid watchdog storm: the cycle budget, not
        // the recovery machinery, was exhausted.
        result.stopReason = StopReason::WatchdogExhausted;
    } else {
        result.stopReason = StopReason::TimedOut;
    }
    result.cycles = now_;
    result.committedInsts = arch_.instret();
    result.outputs = outputs_;
    result.siteStats = site_stats_;
    return result;
}

double
MsspMachine::meanTaskSize() const
{
    return task_size_dist_.mean();
}

void
MsspMachine::dumpStats(std::ostream &os) const
{
    const MsspCounters &c = ctrs_;
    auto row = [&](const char *name, uint64_t v, const char *desc) {
        os << strfmt("mssp.%-28s %12llu  # %s\n", name,
                     static_cast<unsigned long long>(v), desc);
    };
    row("tasksForked", c.tasksForked, "tasks spawned by the master");
    row("tasksCommitted", c.tasksCommitted, "tasks committed");
    row("tasksSquashedLiveIn", c.tasksSquashedLiveIn,
        "head squashes: live-in mismatch");
    row("tasksSquashedWrongPc", c.tasksSquashedWrongPc,
        "head squashes: start-PC mismatch");
    row("tasksSquashedOverrun", c.tasksSquashedOverrun,
        "head squashes: runaway task");
    row("tasksSquashedCascade", c.tasksSquashedCascade,
        "younger tasks discarded on squash");
    row("squashEvents", c.squashEvents, "squash events");
    row("watchdogSquashes", c.watchdogSquashes,
        "squashes forced by the watchdog");
    row("masterInsts", c.masterInsts,
        "distilled instructions executed");
    row("slaveInsts", c.slaveInsts,
        "original instructions executed on slaves");
    row("wastedSlaveInsts", c.wastedSlaveInsts,
        "slave instructions discarded by squashes");
    row("seqModeInsts", c.seqModeInsts,
        "instructions executed in sequential fallback");
    row("seqModeCycles", c.seqModeCycles,
        "cycles spent in sequential fallback");
    row("masterStallWindowFull", c.masterStallWindowFull,
        "cycles the master stalled on a full task window");
    row("liveInCellsChecked", c.liveInCellsChecked,
        "live-in cells verified at commit");
    row("liveInCellsMismatched", c.liveInCellsMismatched,
        "live-in cells that mismatched");
    row("archReads", c.archReads,
        "slave reads satisfied from architected state");
    row("seqBackoffEvents", c.seqBackoffEvents,
        "sequential-backoff episodes");
    row("seqBackoffDecays", c.seqBackoffDecays,
        "commits that decayed an active backoff");
    row("tasksSquashedSpurious", c.tasksSquashedSpurious,
        "head squashes: injected spurious squash");
    row("watchdogEscalations", c.watchdogEscalations,
        "watchdog firings escalated to Seq mode");
    row("masterRunawayKills", c.masterRunawayKills,
        "masters stopped by the runaway kill-switch");
    row("masterDeadRestarts", c.masterDeadRestarts,
        "fast restarts of a dead master");
    row("mmioSerializations", c.mmioSerializations,
        "device accesses serialized non-speculatively");
    row("l1Hits", c.l1Hits, "slave L1 hits on read-throughs");
    row("l1Misses", c.l1Misses, "slave L1 misses on read-throughs");
    if (injector_)
        injector_->dump(os);
    stats_root_.dump(os);
}

RecoveryReport
MsspMachine::recoveryReport() const
{
    RecoveryReport r;
    r.squashEvents = ctrs_.squashEvents;
    r.watchdogSquashes = ctrs_.watchdogSquashes;
    r.watchdogEscalations = ctrs_.watchdogEscalations;
    r.masterRunawayKills = ctrs_.masterRunawayKills;
    r.masterDeadRestarts = ctrs_.masterDeadRestarts;
    r.spuriousSquashes = ctrs_.tasksSquashedSpurious;
    r.seqBackoffEvents = ctrs_.seqBackoffEvents;
    r.seqBackoffDecays = ctrs_.seqBackoffDecays;
    r.currentSeqBackoff = seq_backoff_;
    r.seqModeInsts = ctrs_.seqModeInsts;
    r.faultsInjected =
        injector_ ? injector_->counters().total() : 0;
    return r;
}

std::string
RecoveryReport::toString() const
{
    std::string s;
    auto row = [&](const char *name, uint64_t v) {
        s += strfmt("  %-22s %llu\n", name,
                    static_cast<unsigned long long>(v));
    };
    row("squashEvents", squashEvents);
    row("watchdogSquashes", watchdogSquashes);
    row("watchdogEscalations", watchdogEscalations);
    row("masterRunawayKills", masterRunawayKills);
    row("masterDeadRestarts", masterDeadRestarts);
    row("spuriousSquashes", spuriousSquashes);
    row("seqBackoffEvents", seqBackoffEvents);
    row("seqBackoffDecays", seqBackoffDecays);
    row("currentSeqBackoff", currentSeqBackoff);
    row("seqModeInsts", seqModeInsts);
    row("faultsInjected", faultsInjected);
    return s;
}

} // namespace mssp

#include "mssp/config.hh"

#include "sim/logging.hh"

namespace mssp
{

std::string
MsspConfig::toString() const
{
    std::string s;
    auto row = [&](const char *name, const std::string &value,
                   const char *desc) {
        s += strfmt("  %-22s %-10s %s\n", name, value.c_str(), desc);
    };
    row("numSlaves", strfmt("%u", numSlaves), "slave processors");
    row("maxInFlightTasks", strfmt("%u", maxInFlightTasks),
        "task window");
    row("forkLatency", strfmt("%llu",
        static_cast<unsigned long long>(forkLatency)),
        "cycles, checkpoint transfer master->slave");
    row("commitLatency", strfmt("%llu",
        static_cast<unsigned long long>(commitLatency)),
        "cycles, verify/commit occupancy per task");
    row("squashPenalty", strfmt("%llu",
        static_cast<unsigned long long>(squashPenalty)),
        "cycles, squash + master restart");
    row("archReadLatency", strfmt("%llu",
        static_cast<unsigned long long>(archReadLatency)),
        "cycles, slave read-through to L2");
    row("slaveL1", useSlaveL1
            ? strfmt("%ux%ux%u", slaveL1.sets, slaveL1.ways,
                     slaveL1.lineWords)
            : std::string("off"),
        "speculative L1 (sets x ways x words/line)");
    row("masterIpc", strfmt("%.2f", masterIpc), "master issue rate");
    row("slaveIpc", strfmt("%.2f", slaveIpc),
        "slave / baseline issue rate");
    row("forkInterval", strfmt("%u", forkInterval),
        "fork every k-th fork-site visit");
    row("maxTaskInsts", strfmt("%llu",
        static_cast<unsigned long long>(maxTaskInsts)),
        "speculative-task runaway cap");
    row("watchdogCycles", strfmt("%llu",
        static_cast<unsigned long long>(watchdogCycles)),
        "no-commit watchdog");
    row("watchdogEscalateAfter", strfmt("%u", watchdogEscalateAfter),
        "consecutive firings before Seq escalation");
    row("masterRunawayInsts", strfmt("%llu",
        static_cast<unsigned long long>(masterRunawayInsts)),
        "master insts since last fork before kill");
    return s;
}

} // namespace mssp

/**
 * @file
 * MSSP machine configuration (the paper's Table 1 analogue).
 */

#ifndef MSSP_MSSP_CONFIG_HH
#define MSSP_MSSP_CONFIG_HH

#include <cstdint>
#include <string>

#include "exec/backend.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"

namespace mssp
{

/** All timing and policy knobs of the simulated MSSP machine. */
struct MsspConfig
{
    /** Number of slave processors. */
    unsigned numSlaves = 8;

    /** Execution tier for every core (exec/backend.hh). Per-step
     *  obligations (fork gating, MMIO aborts, IPC budgets) resolve
     *  blockjit down to threaded on the cores that need them; the
     *  architectural result is backend-invariant either way
     *  (tests/test_backend_fuzz.cpp). */
    BackendKind execBackend = defaultBackend();

    /** Maximum in-flight (uncommitted) tasks, including running. */
    unsigned maxInFlightTasks = 16;

    /** Cycles for a checkpoint to travel master -> slave. */
    Cycle forkLatency = 8;

    /** Verify/commit unit occupancy per committed task. */
    Cycle commitLatency = 8;

    /** Cycles to squash and restart the master from arch state. */
    Cycle squashPenalty = 16;

    /** Slave read-through latency to architected (L2) state. */
    Cycle archReadLatency = 2;

    /** Model a private L1 on each slave: memory read-throughs that
     *  hit a resident line are free; misses pay archReadLatency. The
     *  L1 holds speculative lines and is flash-invalidated whenever
     *  speculative state is discarded, as in the paper. */
    bool useSlaveL1 = true;
    CacheConfig slaveL1;

    /** Instructions per cycle of the master / slaves / baseline. */
    double masterIpc = 1.0;
    double slaveIpc = 1.0;

    /** Fork every k-th fork-site visit (task merging, >= 1). */
    unsigned forkInterval = 1;

    /** Speculative-task runaway cap (instructions). */
    uint64_t maxTaskInsts = 4000;

    /** Squash if no commit progress for this many cycles. */
    Cycle watchdogCycles = 20000;

    /**
     * After this many *consecutive* watchdog squashes (no commit in
     * between), the watchdog escalates: it forces a sequential-backoff
     * burst immediately instead of letting the master retry. Bounds
     * squash storms from masters that run but never produce a
     * verifiable task (a fault-campaign lesson; §6 of DESIGN.md).
     */
    unsigned watchdogEscalateAfter = 3;

    /**
     * Master runaway kill-switch: stop the master once it has executed
     * this many instructions since its last spawned fork. The watchdog
     * cannot catch this case while older tasks are still committing
     * (every commit resets it), so a corrupted master could otherwise
     * spin forever without forking. 0 disables.
     */
    uint64_t masterRunawayInsts = 100000;

    /** Consecutive failed master engagements before the machine backs
     *  off to sequential execution for a while. */
    unsigned maxEngageFailures = 4;

    /** Initial sequential-backoff length (instructions); doubles on
     *  repeated failure bursts, halves on every commit. */
    uint64_t seqBackoffInsts = 2048;

    /** Upper bound on the sequential backoff. */
    uint64_t maxSeqBackoffInsts = 1 << 20;

    /** Sweep the master write-delta against architected state when it
     *  grows beyond this many cells (keeps checkpoints small). */
    size_t checkpointSweepCells = 4096;

    std::string toString() const;
};

} // namespace mssp

#endif // MSSP_MSSP_CONFIG_HH

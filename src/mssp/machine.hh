/**
 * @file
 * The MSSP machine: master + slaves + verify/commit unit + recovery.
 *
 * Execution alternates between two modes, mirroring the paper's
 * dual-mode design:
 *
 *  - Spec: the master runs the distilled program and forks tasks;
 *    slaves execute them; the commit unit verifies and commits them in
 *    order. A verification failure squashes all speculative state
 *    (architected state is untouched) and restarts the master from the
 *    architected PC.
 *  - Seq: when the master cannot be (re)engaged — the architected PC
 *    is not a restart point, or speculation keeps failing — the
 *    machine executes the original program directly against
 *    architected state, re-engaging the master at the next fork-site
 *    PC it passes. This guarantees forward progress regardless of what
 *    the distilled program does.
 *
 * The first task the master forks after any (re)start begins exactly
 * at the architected PC with an empty checkpoint, so its live-ins are
 * read straight from architected state and it always verifies: that
 * task *is* the paper's non-speculative recovery task.
 */

#ifndef MSSP_MSSP_MACHINE_HH
#define MSSP_MSSP_MACHINE_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "arch/arch_state.hh"
#include "asm/program.hh"
#include "distill/distiller.hh"
#include "exec/context.hh"
#include "exec/decode_cache.hh"
#include "mssp/config.hh"
#include "mssp/fork_sites.hh"
#include "mssp/master.hh"
#include "mssp/slave.hh"
#include "mssp/task.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace mssp
{

class FaultInjector;

/** Why a run ended (one authoritative reason, not three bools). */
enum class StopReason : uint8_t
{
    Halted,              ///< program ran to completion
    Faulted,             ///< program genuinely faulted
    TimedOut,            ///< hit the cycle limit while making progress
    WatchdogExhausted,   ///< hit the cycle limit mid watchdog storm
};

/** "halted" / "faulted" / "timed-out" / "watchdog-exhausted". */
const char *toString(StopReason r);

/**
 * Per-fork-site engage/squash attribution. Keyed by the *original*
 * fork-site PC (the task's startPc); squashes charge the site whose
 * task headed the window when verification failed. This is the
 * feedback signal the online adaptation loop (eval/adapt.hh) turns
 * into de-speculation decisions.
 */
struct ForkSiteStat
{
    uint64_t forked = 0;          ///< tasks spawned at this site
    uint64_t committed = 0;       ///< tasks verified and committed
    uint64_t squashedLiveIn = 0;  ///< live-in mismatches
    uint64_t squashedWrongPc = 0; ///< start-PC mismatches
    uint64_t squashedOther = 0;   ///< overrun / spurious / watchdog

    uint64_t
    squashed() const
    {
        return squashedLiveIn + squashedWrongPc + squashedOther;
    }

    /** Squash fraction of verification attempts (0 when none). */
    double
    squashRate() const
    {
        uint64_t attempts = committed + squashed();
        return attempts ? static_cast<double>(squashed()) /
                              static_cast<double>(attempts)
                        : 0.0;
    }
};

/** Result of an MSSP run. */
struct MsspResult
{
    bool halted = false;     ///< program ran to completion
    bool faulted = false;    ///< program genuinely faulted
    bool timedOut = false;   ///< hit the cycle limit
    StopReason stopReason = StopReason::TimedOut;
    uint64_t cycles = 0;
    uint64_t committedInsts = 0;
    OutputStream outputs;
    /** Original fork-site PC -> engage/squash attribution. */
    std::map<uint32_t, ForkSiteStat> siteStats;
};

/** Aggregated machine statistics (also exposed as a stats::Group). */
struct MsspCounters
{
    uint64_t tasksForked = 0;
    uint64_t tasksCommitted = 0;
    uint64_t tasksSquashedLiveIn = 0;
    uint64_t tasksSquashedWrongPc = 0;
    uint64_t tasksSquashedOverrun = 0;
    uint64_t tasksSquashedCascade = 0;
    uint64_t squashEvents = 0;
    uint64_t watchdogSquashes = 0;
    uint64_t masterInsts = 0;
    uint64_t slaveInsts = 0;         ///< executed, incl. wasted
    uint64_t wastedSlaveInsts = 0;   ///< from squashed tasks
    uint64_t seqModeInsts = 0;
    uint64_t seqModeCycles = 0;
    uint64_t masterStallWindowFull = 0;
    uint64_t liveInCellsChecked = 0;
    uint64_t liveInCellsMismatched = 0;
    uint64_t archReads = 0;
    uint64_t seqBackoffEvents = 0;
    /** Commits that decayed an active sequential backoff. */
    uint64_t seqBackoffDecays = 0;
    /** Verifying head tasks squashed by fault injection. */
    uint64_t tasksSquashedSpurious = 0;
    /** Watchdog firings that escalated straight to Seq mode. */
    uint64_t watchdogEscalations = 0;
    /** Masters stopped by the runaway kill-switch. */
    uint64_t masterRunawayKills = 0;
    /** Fast restarts of a dead master with an empty pipeline (no
     *  watchdog wait). */
    uint64_t masterDeadRestarts = 0;
    /** Tasks that stopped at a device access and were serialized. */
    uint64_t mmioSerializations = 0;
    /** Slave L1 filter statistics (0 when the L1 is disabled). */
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    /** Aggregate slave cycle breakdown (sums over all slaves). */
    uint64_t slaveArchStallCycles = 0;
    uint64_t slavePauseCycles = 0;
    uint64_t slaveIdleCycles = 0;
};

/**
 * The recovery story of one run in one structure: how often each
 * defense fired and where the machine's backoff state ended up.
 * Campaigns embed this per run; dumpStats prints the same numbers.
 */
struct RecoveryReport
{
    uint64_t squashEvents = 0;
    uint64_t watchdogSquashes = 0;
    uint64_t watchdogEscalations = 0;
    uint64_t masterRunawayKills = 0;
    uint64_t masterDeadRestarts = 0;
    uint64_t spuriousSquashes = 0;
    uint64_t seqBackoffEvents = 0;
    uint64_t seqBackoffDecays = 0;
    uint64_t currentSeqBackoff = 0;   ///< 0 = fully recovered
    uint64_t seqModeInsts = 0;
    uint64_t faultsInjected = 0;      ///< 0 when no injector attached

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/** The full MSSP chip-multiprocessor model. */
class MsspMachine
{
  public:
    /**
     * @param orig the original program (loaded into architected state)
     * @param dist its distilled companion
     * @param cfg  machine configuration
     */
    MsspMachine(const Program &orig, const DistilledProgram &dist,
                const MsspConfig &cfg);

    /**
     * Run until the program halts/faults or @p max_cycles elapse.
     *
     * When a Supervision is installed on the calling thread
     * (sim/supervisor.hh), the loop polls it every 1024 cycles and
     * throws StatusError on a budget trip or cancellation — always
     * between cycles, so the machine stays consistent and resumable.
     * Executed work is charged as master + slave + seq-mode
     * instructions; retired work as architected instret.
     */
    MsspResult run(uint64_t max_cycles);

    const ArchState &arch() const { return arch_; }
    const MsspConfig &config() const { return cfg_; }
    /** Current simulation time (valid inside hooks). */
    Cycle now() const { return now_; }
    const MsspCounters &counters() const { return ctrs_; }
    const OutputStream &outputs() const { return outputs_; }

    /** Mean committed task size in instructions. */
    double meanTaskSize() const;

    /** Dump a gem5-style statistics table. */
    void dumpStats(std::ostream &os) const;

    /** Recovery/backoff counters in one structure (see above). */
    RecoveryReport recoveryReport() const;

    /**
     * Attach a fault injector (nullptr detaches). Non-owning; the
     * injector must outlive the run. Every consultation site is
     * guarded by this single pointer check, so a detached machine
     * pays one predictable branch per hook — see the BM_MsspMachine
     * A/B in EXPERIMENTS.md.
     */
    void setFaultInjector(FaultInjector *injector);

    /** Current sequential-backoff length (tests/diagnostics). */
    uint64_t currentSeqBackoff() const { return seq_backoff_; }

    /** Committed-task observer hook (used by the task-safety tests):
     *  called with each task right before its live-outs commit. */
    using CommitHook = std::function<void(const Task &,
                                          const ArchState &)>;
    void setCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }

    /** Head-squash observer hook (diagnostics and tests): called with
     *  the offending task and the squash reason. */
    using SquashHook = std::function<void(const Task &, TaskOutcome)>;
    void setSquashHook(SquashHook hook) { squash_hook_ = std::move(hook); }

  private:
    enum class Mode : uint8_t { Spec, Seq, Restarting };

    void tickCommit();
    void tickSpawnDelivery();
    void tickSlaves();
    void tickMaster();
    void tickSeq();
    void checkWatchdog();

    void squash(TaskOutcome reason);
    void engageMaster();
    void commitFront();
    /** Count a failed engagement; escalate to Seq backoff past the
     *  limit (shared by squash() and the master-dead fast path). */
    void noteEngageFailure();
    /** Master dead (faulted/killed/halted-without-final-task) with an
     *  empty pipeline: restart now instead of waiting for the
     *  watchdog to notice the silence. */
    void noteMasterDead();
    /** Fault hooks (only reached with an injector attached). */
    void injectMasterFaults();
    void injectSlaveFaults();
    /** Get a fresh (or recycled) task shell. */
    std::unique_ptr<Task> allocTask();
    /** Return a retired task shell to the pool. */
    void recycleTask(std::unique_ptr<Task> task);
    /** Drop speculative state to serialize a device access; unlike
     *  squash(), this is planned work, not a failure. */
    void serializeSpeculation();

    /** The youngest (most recently forked) in-flight task. */
    Task *youngest() { return window_.empty() ? nullptr
                                              : window_.back().get(); }

    // -- Construction-ordered members (arch before master!) -------------
    MsspConfig cfg_;
    Program orig_;
    DistilledProgram dist_;
    ArchState arch_;
    MmioDevice device_;
    MasterCore master_;
    /** Predecode cache of the original image, shared by all slaves
     *  and the sequential fallback (code is immutable). */
    DecodeCache orig_decode_{orig_};
    ForkSiteSet fork_site_pcs_;
    /** Slaves live by value: tickSlaves walks them every cycle. */
    std::vector<SlaveCore> slaves_;

    std::deque<std::unique_ptr<Task>> window_;   ///< fork order
    std::deque<Task *> arrived_;   ///< spawned, awaiting a slave

    /** An in-flight fork: the task reaches a slave at cycle @c due. */
    struct PendingSpawn
    {
        Cycle due;
        Task *task;
    };
    /** Forked tasks in transit (FIFO: fork order, fixed latency).
     *  Replaces a generic event queue on the once-per-fork path.
     *  Injected SpawnDelay faults can make a head entry due later
     *  than its successors; delivery then head-of-line blocks, like
     *  a congested interconnect would. */
    std::deque<PendingSpawn> spawn_queue_;

    /** Retired Task shells for reuse (their maps keep capacity). */
    std::vector<std::unique_ptr<Task>> task_pool_;

    Mode mode_ = Mode::Restarting;
    Cycle restart_at_ = 0;
    Cycle now_ = 0;
    Cycle commit_busy_until_ = 0;
    Cycle last_commit_cycle_ = 0;
    unsigned engage_failures_ = 0;
    /** Watchdog firings since the last commit (escalation trigger). */
    unsigned consecutive_watchdog_ = 0;
    /** Master inst count at its last spawned fork (runaway switch). */
    uint64_t master_insts_at_last_fork_ = 0;
    /** Current sequential-backoff length (0 = no backoff active). */
    uint64_t seq_backoff_ = 0;
    /** Instructions left to execute sequentially before the machine
     *  may try to re-engage the master. */
    uint64_t seq_insts_remaining_ = 0;
    /** Minimum sequential steps after a device serialization (ensures
     *  the device access itself executes even when it sits exactly at
     *  a fork site). */
    uint64_t force_seq_insts_ = 0;

    double master_budget_ = 0.0;
    double seq_budget_ = 0.0;

    bool halted_ = false;
    bool faulted_ = false;
    uint64_t next_task_id_ = 1;

    OutputStream outputs_;
    MsspCounters ctrs_;
    /** Per-fork-site engage/squash attribution (MsspResult). */
    std::map<uint32_t, ForkSiteStat> site_stats_;
    CommitHook commit_hook_;
    SquashHook squash_hook_;
    /** Fault injector (null = no hooks fire; see setFaultInjector). */
    FaultInjector *injector_ = nullptr;
    /** Patchable distilled-code addresses (built on injector attach;
     *  ImagePatch targets). */
    std::vector<uint32_t> dist_code_addrs_;

    // Statistics (mirrors of ctrs_ for table dumping).
    mutable stats::Group stats_root_{"mssp"};
    stats::Distribution task_size_dist_{&stats_root_, "taskSize",
        "committed task size (insts)", 0, 2000, 20};
    stats::Distribution checkpoint_dist_{&stats_root_, "checkpointCells",
        "checkpoint size at fork (cells)", 0, 4096, 16};
    stats::Distribution livein_dist_{&stats_root_, "liveInCells",
        "live-in set size at commit (cells)", 0, 512, 16};
};

} // namespace mssp

#endif // MSSP_MSSP_MACHINE_HH

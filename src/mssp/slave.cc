#include "mssp/slave.hh"

namespace mssp
{

void
SlaveCore::refreshEndCondition()
{
    Task &t = *task_;
    if (!t.pausedAtForkSite)
        return;
    if (t.runToHalt) {
        t.pausedAtForkSite = false;
        return;
    }
    if (!t.endKnown)
        return;   // still waiting for the master to fork
    t.pausedAtForkSite = false;
    if (t.pc == t.endPc) {
        ++t.visits;
        if (t.visits >= t.endVisits)
            t.end = TaskEnd::ReachedEnd;
    }
}

unsigned
SlaveCore::tick()
{
    if (!task_) {
        ++idle_cycles_;
        return 0;
    }
    Task &t = *task_;
    if (t.done())
        return 0;   // waiting for the commit unit

    if (stall_ > 0) {
        --stall_;
        ++arch_stall_cycles_;
        return 0;
    }
    if (t.pausedAtForkSite) {
        refreshEndCondition();
        if (t.pausedAtForkSite || t.done()) {
            if (t.pausedAtForkSite)
                ++pause_cycles_;
            return 0;
        }
    }

    budget_ += cfg_.slaveIpc;
    unsigned executed = 0;
    TaskContext ctx(t, arch_, l1_.get());

    while (budget_ >= 1.0 && !t.done() && !t.pausedAtForkSite &&
           stall_ == 0) {
        budget_ -= 1.0;
        ctx.beginStep();
        StepResult res = stepAt(t.pc, ctx);

        if (ctx.mmioTouched) {
            // Device access: the step was suppressed. The task ends
            // *before* the access; the machine will serialize it.
            t.end = TaskEnd::MmioStop;
            break;
        }
        if (res.status == StepStatus::Illegal) {
            t.end = TaskEnd::Faulted;
            break;
        }
        ++t.instCount;
        ++executed;
        if (res.status == StepStatus::Halted) {
            t.end = TaskEnd::Halted;
            break;
        }

        t.pc = res.nextPc;
        if (ctx.archReadsLastStep) {
            stall_ += static_cast<Cycle>(ctx.archReadsLastStep) *
                      cfg_.archReadLatency;
        }

        // Arrival checks: end condition and fork-site pauses.
        if (t.endKnown) {
            if (t.pc == t.endPc) {
                ++t.visits;
                if (t.visits >= t.endVisits) {
                    t.end = TaskEnd::ReachedEnd;
                    break;
                }
            }
        } else if (!t.runToHalt && fork_site_pcs_.count(t.pc)) {
            t.pausedAtForkSite = true;
            break;
        }

        if (t.instCount >= cfg_.maxTaskInsts) {
            t.end = TaskEnd::Overrun;
            break;
        }
    }
    return executed;
}

} // namespace mssp

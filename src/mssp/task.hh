/**
 * @file
 * MSSP tasks.
 *
 * A task is the unit of speculative work: a segment of the *original*
 * program, started at a master-predicted PC with master-predicted
 * live-in values, executed on a slave, and committed (or discarded) by
 * the verify/commit unit. This realizes the formal model's
 * 4-tuple <S_in, n, S_out, k> plus the bookkeeping a real machine
 * needs (end condition, outputs, attribution).
 */

#ifndef MSSP_MSSP_TASK_HH
#define MSSP_MSSP_TASK_HH

#include <array>
#include <cstdint>
#include <memory>

#include "arch/state_delta.hh"
#include "exec/context.hh"
#include "isa/isa.hh"

namespace mssp
{

/** Why a task stopped executing. */
enum class TaskEnd : uint8_t
{
    None,         ///< still running (or paused)
    ReachedEnd,   ///< hit its end PC the required number of times
    Halted,       ///< executed HALT
    Faulted,      ///< illegal instruction
    Overrun,      ///< exceeded the runaway cap
    MmioStop,     ///< stopped *before* a device access (non-idempotent
                  ///  state must not be touched speculatively)
};

/** Commit-time outcome (for stats). */
enum class TaskOutcome : uint8_t
{
    Committed,
    SquashedLiveIn,    ///< live-in values mismatched architected state
    SquashedWrongPc,   ///< start PC mismatched architected PC
    SquashedOverrun,
    SquashedCascade,   ///< discarded because an older task squashed
    SquashedSpurious,  ///< fault-injected squash of a verifying task
};

/** One speculative task. */
struct Task
{
    uint64_t id = 0;

    /** Predicted start PC in the original program. */
    uint32_t startPc = 0;

    // -- End condition (set when the master forks the next task) ------
    bool endKnown = false;
    /** Original PC at which the task ends... */
    uint32_t endPc = 0;
    /** ...on this arrival count (visit counting, DESIGN.md §1). */
    uint32_t endVisits = 1;
    /** When true, ignore fork-site pauses and run to HALT (the master
     *  halted cleanly, so this is the program's final task). */
    bool runToHalt = false;

    /** Master-predicted live-ins (diff against architected state). */
    std::shared_ptr<const StateDelta> checkpoint;

    /** Values actually consumed, recorded at first read. */
    StateDelta liveIn;
    /** Values produced (local write buffer). */
    StateDelta liveOut;
    /** Buffered program outputs, released at commit. */
    OutputStream outputs;

    // -- Execution state ------------------------------------------------
    uint32_t pc = 0;
    uint32_t visits = 0;        ///< arrivals at endPc so far
    uint64_t instCount = 0;
    TaskEnd end = TaskEnd::None;
    /** Waiting at a fork-site PC until the end condition is known. */
    bool pausedAtForkSite = false;
    int slaveId = -1;

    /** Number of reads that went through to architected state. */
    uint64_t archReads = 0;

    // -- Register fast path (pure optimization) -------------------------
    /** When bit r of regValid is set, regCache[r] holds the value the
     *  task currently observes for register r (its live-out if it has
     *  written r, otherwise its recorded live-in). Lets the slave skip
     *  the delta-map probes on repeat register accesses; the
     *  authoritative record stays in liveIn/liveOut. */
    std::array<uint32_t, NumRegs> regCache{};
    uint32_t regValid = 0;

    bool
    done() const
    {
        return end != TaskEnd::None;
    }

    /**
     * Return the task to its freshly-constructed state, keeping the
     * flat maps' (and output buffer's) allocated capacity so recycled
     * tasks skip the early grow-rehash churn entirely.
     */
    void
    reset()
    {
        id = 0;
        startPc = 0;
        endKnown = false;
        endPc = 0;
        endVisits = 1;
        runToHalt = false;
        checkpoint.reset();
        liveIn.clear();
        liveOut.clear();
        outputs.clear();
        pc = 0;
        visits = 0;
        instCount = 0;
        end = TaskEnd::None;
        pausedAtForkSite = false;
        slaveId = -1;
        archReads = 0;
        regValid = 0;   // regCache is guarded by regValid bits
    }
};

} // namespace mssp

#endif // MSSP_MSSP_TASK_HH

#include "mssp/master.hh"

#include "sim/logging.hh"

namespace mssp
{

bool
MasterCore::restart(uint32_t orig_pc)
{
    uint32_t dist_pc = dist_.distilledPcFor(orig_pc);
    if (dist_pc == UINT32_MAX)
        return false;
    pc_ = dist_pc;
    for (unsigned r = 0; r < NumRegs; ++r)
        regs_[r] = arch_.readReg(r);
    delta_.clear();
    site_arrivals_.clear();
    forks_seen_since_spawn_ = 0;
    insts_since_restart_ = 0;
    running_ = true;
    halted_ = false;
    faulted_ = false;
    first_fork_pending_ = true;
    return true;
}

bool
MasterCore::nextForkWouldSpawn()
{
    if (!running())
        return false;
    Instruction inst = decode(fetch(pc_));
    if (inst.op != Opcode::Fork)
        return false;
    if (first_fork_pending_)
        return true;
    auto idx = static_cast<uint32_t>(inst.imm);
    if (idx >= dist_.taskMap.size())
        return false;   // corrupt fork: step() will fault
    uint32_t orig_pc = dist_.taskMap[idx];
    uint32_t required = requiredArrivals(idx);
    auto it = site_arrivals_.find(orig_pc);
    uint32_t arrivals = it == site_arrivals_.end() ? 0 : it->second;
    return arrivals + 1 >= required;
}

uint32_t
MasterCore::requiredArrivals(uint32_t task_map_index) const
{
    uint32_t site_interval =
        task_map_index < dist_.taskIntervals.size()
            ? dist_.taskIntervals[task_map_index]
            : 1;
    if (site_interval == 0)
        site_interval = 1;
    return site_interval * fork_interval_;
}

MasterStep
MasterCore::step(ForkInfo *fork_out)
{
    MSSP_ASSERT(running());
    Instruction inst = decode(fetch(pc_));

    if (inst.op == Opcode::Fork) {
        auto idx = static_cast<uint32_t>(inst.imm);
        if (idx >= dist_.taskMap.size()) {
            // Corrupt distilled program; the master just faults.
            faulted_ = true;
            return MasterStep::Faulted;
        }
        uint32_t orig_pc = dist_.taskMap[idx];
        uint32_t arrivals = ++site_arrivals_[orig_pc];
        ++forks_seen_since_spawn_;

        bool spawn = first_fork_pending_ ||
                     arrivals >= requiredArrivals(idx);
        ++total_insts_;
        ++insts_since_restart_;
        pc_ += 1;

        if (!spawn)
            return MasterStep::Executed;

        MSSP_ASSERT(fork_out != nullptr);
        fork_out->origPc = orig_pc;
        fork_out->endVisitsForPrev = arrivals;
        fork_out->checkpoint =
            std::make_shared<const StateDelta>(delta_);
        site_arrivals_.clear();
        forks_seen_since_spawn_ = 0;
        first_fork_pending_ = false;
        return MasterStep::WantsFork;
    }

    StepResult res = executeDecoded(pc_, inst, *this);

    // Indirect jumps may target *original* code addresses (a return
    // address seeded from architected state after a restart, or
    // reloaded from a committed stack slot): translate through the
    // distiller's address map, as a dynamic binary translator would.
    if (res.status == StepStatus::Ok && inst.op == Opcode::Jalr &&
        res.nextPc < DistilledCodeBase) {
        auto it = dist_.addrMap.find(res.nextPc);
        if (it == dist_.addrMap.end()) {
            faulted_ = true;
            return MasterStep::Faulted;
        }
        res.nextPc = it->second;
    }

    switch (res.status) {
      case StepStatus::Ok:
        pc_ = res.nextPc;
        ++total_insts_;
        ++insts_since_restart_;
        return MasterStep::Executed;
      case StepStatus::Halted:
        halted_ = true;
        ++total_insts_;
        ++insts_since_restart_;
        return MasterStep::Halted;
      case StepStatus::Illegal:
      default:
        faulted_ = true;
        return MasterStep::Faulted;
    }
}

void
MasterCore::sweepDeltaAgainstArch(size_t max_cells)
{
    if (delta_.size() <= max_cells)
        return;
    std::vector<CellId> drop;
    for (const auto &[cell, value] : delta_) {
        if (arch_.readCell(cell) == value)
            drop.push_back(cell);
    }
    for (CellId cell : drop) {
        // Register cells stay cached in regs_, which is fine: the
        // value equals architected state by construction.
        delta_.erase(cell);
    }
}

} // namespace mssp

#include "mssp/master.hh"

#include "exec/blockjit.hh"
#include "sim/logging.hh"

namespace mssp
{

MasterStep
MasterCore::runSlice(unsigned max_steps, unsigned *executed)
{
    MSSP_ASSERT(running());
    SliceHook hook{*this};
    EngineResult er = runOnBackend(backend_, decode_, pc_, max_steps,
                                   *this, nullptr, hook);
    pc_ = er.pc;
    total_insts_ += er.retired;
    insts_since_restart_ += er.retired;
    *executed = static_cast<unsigned>(er.retired);
    if (hook.translationFault || er.status == StepStatus::Illegal) {
        faulted_ = true;
        return MasterStep::Faulted;
    }
    if (er.status == StepStatus::Halted) {
        halted_ = true;
        return MasterStep::Halted;
    }
    return MasterStep::Executed;  // in front of a FORK, or budget out
}

bool
MasterCore::restart(uint32_t orig_pc)
{
    uint32_t dist_pc = dist_.distilledPcFor(orig_pc);
    if (dist_pc == UINT32_MAX)
        return false;
    pc_ = dist_pc;
    for (unsigned r = 0; r < NumRegs; ++r)
        regs_[r] = arch_.readReg(r);
    delta_.clear();
    dirty_regs_ = 0;
    site_arrivals_.clear();
    forks_seen_since_spawn_ = 0;
    insts_since_restart_ = 0;
    running_ = true;
    halted_ = false;
    faulted_ = false;
    first_fork_pending_ = true;
    return true;
}

bool
MasterCore::nextForkWouldSpawn()
{
    if (!running())
        return false;
    const Instruction &inst = decode_.at(pc_);
    if (inst.op != Opcode::Fork)
        return false;
    if (first_fork_pending_)
        return true;
    auto idx = static_cast<uint32_t>(inst.imm);
    if (idx >= dist_.taskMap.size())
        return false;   // corrupt fork: step() will fault
    uint32_t orig_pc = dist_.taskMap[idx];
    uint32_t required = requiredArrivals(idx);
    return siteArrivals(orig_pc) + 1 >= required;
}

uint32_t
MasterCore::requiredArrivals(uint32_t task_map_index) const
{
    uint32_t site_interval =
        task_map_index < dist_.taskIntervals.size()
            ? dist_.taskIntervals[task_map_index]
            : 1;
    if (site_interval == 0)
        site_interval = 1;
    return site_interval * fork_interval_;
}

MasterStep
MasterCore::stepFork(const Instruction &inst, ForkInfo *fork_out)
{
    auto idx = static_cast<uint32_t>(inst.imm);
    if (idx >= dist_.taskMap.size()) {
        // Corrupt distilled program; the master just faults.
        faulted_ = true;
        return MasterStep::Faulted;
    }
    uint32_t orig_pc = dist_.taskMap[idx];
    uint32_t arrivals = bumpSiteArrivals(orig_pc);
    ++forks_seen_since_spawn_;

    bool spawn = first_fork_pending_ ||
                 arrivals >= requiredArrivals(idx);
    ++total_insts_;
    ++insts_since_restart_;
    pc_ += 1;

    if (!spawn)
        return MasterStep::Executed;

    MSSP_ASSERT(fork_out != nullptr);
    fork_out->origPc = orig_pc;
    fork_out->endVisitsForPrev = arrivals;
    fork_out->checkpoint = snapshotCheckpoint();
    site_arrivals_.clear();
    forks_seen_since_spawn_ = 0;
    first_fork_pending_ = false;
    return MasterStep::WantsFork;
}

bool
MasterCore::translateJalr(StepResult &res)
{
    // Indirect jumps may target *original* code addresses (a return
    // address seeded from architected state after a restart, or
    // reloaded from a committed stack slot): translate through the
    // distiller's address map, as a dynamic binary translator would.
    auto it = dist_.addrMap.find(res.nextPc);
    if (it == dist_.addrMap.end())
        return false;
    res.nextPc = it->second;
    return true;
}

std::shared_ptr<const StateDelta>
MasterCore::snapshotCheckpoint() const
{
    auto ckpt = std::make_shared<StateDelta>(delta_);
    uint32_t dirty = dirty_regs_;
    while (dirty) {
        unsigned r = static_cast<unsigned>(__builtin_ctz(dirty));
        dirty &= dirty - 1;
        ckpt->set(makeRegCell(r), regs_[r]);
    }
    return ckpt;
}

void
MasterCore::sweepDeltaAgainstArch(size_t max_cells)
{
    if (deltaSize() <= max_cells)
        return;
    // Registers: clearing the dirty bit is sound because regs_ keeps
    // the value, which equals architected state by construction.
    uint32_t dirty = dirty_regs_;
    while (dirty) {
        unsigned r = static_cast<unsigned>(__builtin_ctz(dirty));
        dirty &= dirty - 1;
        if (arch_.readReg(r) == regs_[r])
            dirty_regs_ &= ~(1u << r);
    }
    std::vector<CellId> drop;
    for (const auto &[cell, value] : delta_) {
        if (arch_.readCell(cell) == value)
            drop.push_back(cell);
    }
    for (CellId cell : drop)
        delta_.erase(cell);
}

} // namespace mssp

/**
 * @file
 * Fork-site selection.
 *
 * MSSP task boundaries are FORK instructions placed in the distilled
 * program; each fork site corresponds to a PC in the original program
 * (usually a hot loop header). Site selection balances task size: the
 * expected task length is totalInsts / Σ visits(site), and the paper's
 * sweet spot is tasks of a few hundred instructions (E5 reproduces the
 * sensitivity).
 */

#ifndef MSSP_PROFILE_FORK_SELECT_HH
#define MSSP_PROFILE_FORK_SELECT_HH

#include <cstdint>
#include <vector>

#include "cfg/cfg.hh"
#include "profile/profile_data.hh"

namespace mssp
{

/** Selection tuning knobs. */
struct ForkSelectOptions
{
    /** Desired mean task size in original-program instructions. */
    uint64_t targetTaskSize = 150;
    /** Sites visited fewer times than this are ignored. */
    uint64_t minVisits = 4;
    /** Hard cap on the number of selected sites. */
    size_t maxSites = 64;
};

/** Result of fork-site selection. */
struct ForkSelection
{
    /** Selected original-program PCs, ascending. */
    std::vector<uint32_t> sites;
    /** Per-site fork interval (fork every k-th visit), parallel to
     *  sites: inner loops get large intervals, outer loops small, so
     *  expected task size is uniform across program phases. */
    std::vector<uint32_t> intervals;
    /** Expected mean task size implied by the selection. */
    double expectedTaskSize = 0.0;
};

/**
 * Choose fork sites from @p cfg's loop headers using @p profile.
 * Every sufficiently hot header is selected; task size is controlled
 * by per-site fork intervals rather than by dropping sites, so each
 * program phase has a boundary source. Falls back to the hottest
 * block leaders when no loop header qualifies.
 */
ForkSelection selectForkSites(const Cfg &cfg,
                              const ProfileData &profile,
                              const ForkSelectOptions &opts);

} // namespace mssp

#endif // MSSP_PROFILE_FORK_SELECT_HH

/**
 * @file
 * The profiling executor.
 *
 * Runs a program sequentially (training input) while recording the
 * profile the distiller consumes. Implemented as its own ExecContext
 * so that per-access observations (loaded values, silent stores) are
 * captured without burdening the hot SEQ/slave execution paths.
 */

#ifndef MSSP_PROFILE_PROFILER_HH
#define MSSP_PROFILE_PROFILER_HH

#include <cstdint>

#include "asm/program.hh"
#include "exec/backend.hh"
#include "profile/profile_data.hh"

namespace mssp
{

/**
 * Execute @p prog for up to @p max_insts instructions, collecting a
 * ProfileData. The run is purely observational: program semantics are
 * identical to SEQ. Observation needs a per-step hook, so @p backend
 * resolves through resolveHookedBackend (blockjit profiles on the
 * threaded tier); the profile is backend-invariant.
 */
ProfileData profileProgram(const Program &prog, uint64_t max_insts,
                           BackendKind backend = defaultBackend());

} // namespace mssp

#endif // MSSP_PROFILE_PROFILER_HH

#include "profile/profiler.hh"

#include "arch/arch_state.hh"
#include "arch/mmio.hh"
#include "exec/blockjit.hh"
#include "exec/context.hh"
#include "exec/decode_cache.hh"
#include "exec/executor.hh"

namespace mssp
{

namespace
{

/** ExecContext that records memory observations for one step. */
class ProfilingContext final : public ExecContext
{
  public:
    explicit ProfilingContext(ArchState &state) : state_(state) {}

    // Per-step observations, reset before each instruction.
    bool sawLoad = false;
    uint32_t loadValue = 0;
    uint32_t loadAddr = 0;
    bool sawStore = false;
    bool storeSilent = false;
    std::unordered_set<uint32_t> *writtenAddrs = nullptr;

    void
    beginStep()
    {
        sawLoad = false;
        sawStore = false;
        storeSilent = false;
    }

    uint32_t readReg(unsigned r) override { return state_.readReg(r); }
    void
    writeReg(unsigned r, uint32_t v) override
    {
        state_.writeReg(r, v);
    }

    uint32_t
    readMem(uint32_t addr) override
    {
        if (isMmio(addr)) {
            // Device reads are real (training runs the program for
            // real) but are never profiled as speculation candidates.
            return device_.read(addr);
        }
        uint32_t v = state_.readMem(addr);
        sawLoad = true;
        loadValue = v;
        loadAddr = addr;
        return v;
    }

    void
    writeMem(uint32_t addr, uint32_t v) override
    {
        if (isMmio(addr)) {
            OutputStream sink;
            device_.write(addr, v, sink);
            return;
        }
        sawStore = true;
        storeSilent = state_.readMem(addr) == v;
        if (writtenAddrs)
            writtenAddrs->insert(addr);
        state_.writeMem(addr, v);
    }

    uint32_t fetch(uint32_t pc) override { return state_.readMem(pc); }

    void output(uint16_t, uint32_t) override {}

  private:
    ArchState &state_;
    MmioDevice device_;
};

/** Per-step observation recording, as an engine hook. */
struct ProfileHook
{
    ProfilingContext &ctx;
    ProfileData &data;

    bool
    preStep(uint32_t, const Instruction &)
    {
        ctx.beginStep();
        return true;
    }

    StepVerdict
    postStep(uint32_t pc, StepResult &res)
    {
        ++data.pcCount[pc];
        ++data.totalInsts;

        if (isCondBranch(res.inst.op)) {
            auto &bp = data.branches[pc];
            ++bp.total;
            if (res.branchTaken)
                ++bp.taken;
        }
        if (ctx.sawLoad && res.inst.op == Opcode::Lw) {
            auto &lp = data.loads[pc];
            if (lp.count == 0) {
                lp.firstValue = ctx.loadValue;
                lp.firstAddr = ctx.loadAddr;
            }
            ++lp.count;
            if (ctx.loadValue == lp.firstValue)
                ++lp.sameAsFirst;
            if (ctx.loadAddr == lp.firstAddr)
                ++lp.sameAddr;
        }
        if (ctx.sawStore) {
            auto &sp = data.stores[pc];
            ++sp.count;
            if (ctx.storeSilent)
                ++sp.silent;
        }

        if (res.status == StepStatus::Halted)
            data.ranToCompletion = true;
        return StepVerdict::Continue;
    }
};

} // anonymous namespace

ProfileData
profileProgram(const Program &prog, uint64_t max_insts,
               BackendKind backend)
{
    ArchState state;
    state.loadProgram(prog);
    ProfilingContext ctx(state);
    DecodeCache decode(prog);
    ProfileData data;
    ctx.writtenAddrs = &data.writtenAddrs;

    ProfileHook hook{ctx, data};
    runOnBackend(resolveHookedBackend(backend), decode, state.pc(),
                 max_insts, ctx, nullptr, hook);
    return data;
}

} // namespace mssp

/**
 * @file
 * Profile data gathered from a training run.
 *
 * The distiller is profile-guided, exactly as in the paper: branch
 * biases drive branch pruning, execution counts drive cold-code
 * decisions and fork-site selection, load-value invariance drives
 * (optional) value speculation, and silent-store ratios drive
 * (optional) store elimination.
 */

#ifndef MSSP_PROFILE_PROFILE_DATA_HH
#define MSSP_PROFILE_PROFILE_DATA_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace mssp
{

/** Taken/total counts of one conditional branch site. */
struct BranchProfile
{
    uint64_t taken = 0;
    uint64_t total = 0;

    /** Fraction of executions that were taken (0.5 when never run). */
    double
    bias() const
    {
        return total ? static_cast<double>(taken) /
                           static_cast<double>(total)
                     : 0.5;
    }
};

/** Value/address-invariance profile of one load site. */
struct LoadProfile
{
    uint64_t count = 0;
    uint32_t firstValue = 0;
    uint64_t sameAsFirst = 0;
    uint32_t firstAddr = 0;
    uint64_t sameAddr = 0;

    /** Fraction of executions that loaded firstValue. */
    double
    invariance() const
    {
        return count ? static_cast<double>(sameAsFirst) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /** Fraction of executions that read firstAddr. */
    double
    addrInvariance() const
    {
        return count ? static_cast<double>(sameAddr) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Silent-store profile of one store site. */
struct StoreProfile
{
    uint64_t count = 0;
    uint64_t silent = 0;   ///< stores that wrote the value already there

    double
    silentRatio() const
    {
        return count ? static_cast<double>(silent) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Aggregate training-run profile. */
class ProfileData
{
  public:
    std::unordered_map<uint32_t, uint64_t> pcCount;
    std::unordered_map<uint32_t, BranchProfile> branches;
    std::unordered_map<uint32_t, LoadProfile> loads;
    std::unordered_map<uint32_t, StoreProfile> stores;
    /** Every word address written at least once during training. */
    std::unordered_set<uint32_t> writtenAddrs;
    uint64_t totalInsts = 0;
    bool ranToCompletion = false;

    bool
    wasWritten(uint32_t addr) const
    {
        return writtenAddrs.count(addr) != 0;
    }

    uint64_t
    countAt(uint32_t pc) const
    {
        auto it = pcCount.find(pc);
        return it == pcCount.end() ? 0 : it->second;
    }

    const BranchProfile *
    branchAt(uint32_t pc) const
    {
        auto it = branches.find(pc);
        return it == branches.end() ? nullptr : &it->second;
    }

    const LoadProfile *
    loadAt(uint32_t pc) const
    {
        auto it = loads.find(pc);
        return it == loads.end() ? nullptr : &it->second;
    }

    const StoreProfile *
    storeAt(uint32_t pc) const
    {
        auto it = stores.find(pc);
        return it == stores.end() ? nullptr : &it->second;
    }
};

} // namespace mssp

#endif // MSSP_PROFILE_PROFILE_DATA_HH

#include "profile/fork_select.hh"

#include <algorithm>
#include <cmath>

namespace mssp
{

namespace
{

struct Candidate
{
    uint32_t pc;
    uint64_t visits;
};

} // anonymous namespace

ForkSelection
selectForkSites(const Cfg &cfg, const ProfileData &profile,
                const ForkSelectOptions &opts)
{
    ForkSelection sel;
    if (profile.totalInsts == 0)
        return sel;

    double total = static_cast<double>(profile.totalInsts);
    double target = static_cast<double>(
        std::max<uint64_t>(opts.targetTaskSize, 1));

    std::vector<Candidate> candidates;
    for (uint32_t header : cfg.loopHeaders()) {
        uint64_t visits = profile.countAt(header);
        if (visits < opts.minVisits)
            continue;
        candidates.push_back({header, visits});
    }

    // Straight-line fallback: use hot block leaders.
    if (candidates.empty()) {
        for (const auto &[start, bb] : cfg.blocks()) {
            uint64_t visits = profile.countAt(start);
            if (visits < opts.minVisits)
                continue;
            candidates.push_back({start, visits});
        }
    }
    if (candidates.empty())
        return sel;

    // Every hot header becomes a site (so every program phase has a
    // task-boundary source); per-site fork intervals equalize the
    // expected task size. If over the cap, keep the hottest.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.visits != b.visits)
                      return a.visits > b.visits;
                  return a.pc < b.pc;
              });
    if (candidates.size() > opts.maxSites)
        candidates.resize(opts.maxSites);
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.pc < b.pc;
              });

    for (const Candidate &c : candidates) {
        double region = total / static_cast<double>(c.visits);
        auto interval = static_cast<uint32_t>(
            std::lround(std::max(1.0, target / region)));
        sel.sites.push_back(c.pc);
        sel.intervals.push_back(interval);
    }
    sel.expectedTaskSize = target;
    return sel;
}

} // namespace mssp

#include "workloads/micro.hh"

#include "workloads/wl_common.hh"

namespace mssp
{

namespace
{

/** Build ref/train variants by scaling the size parameter. */
Workload
makePair(const char *name, const char *desc,
         std::string (*gen)(uint32_t, uint64_t), uint32_t size)
{
    Workload w;
    w.name = name;
    w.description = desc;
    w.refSource = gen(size, 0xACE1);
    w.trainSource = gen(size / 2 + 3, 0xBEE2);
    return w;
}

std::string
fibSource(uint32_t steps, uint64_t)
{
    return strfmt(
        "    li s0, %u\n"
        "    li t0, 0\n"            // fib(i)
        "    li t1, 1\n"            // fib(i+1)
        "fib:\n"
        "    add t2, t0, t1\n"
        "    mv t0, t1\n"
        "    mv t1, t2\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, fib\n"
        "    out t0, 1\n"
        "    halt\n",
        steps);
}

std::string
sieveSource(uint32_t limit, uint64_t)
{
    return strfmt(
        "    .equ LIMIT, %u\n"
        "    la s2, flags\n"
        "    li s0, 2\n"            // candidate
        "    li s5, 0\n"            // prime count
        "outer:\n"
        "    add t0, s2, s0\n"
        "    lw t1, 0(t0)\n"
        "    bnez t1, composite\n"
        "    addi s5, s5, 1\n"      // s0 is prime
        "    add t2, s0, s0\n"      // first multiple
        "mark:\n"
        "    li t3, LIMIT\n"
        "    bge t2, t3, composite\n"
        "    add t4, s2, t2\n"
        "    li t5, 1\n"
        "    sw t5, 0(t4)\n"
        "    add t2, t2, s0\n"
        "    j mark\n"
        "composite:\n"
        "    addi s0, s0, 1\n"
        "    li t3, LIMIT\n"
        "    blt s0, t3, outer\n"
        "    out s5, 1\n"
        "    halt\n"
        ".org 0x8000\n"
        "flags: .space %u\n",
        limit, limit + 2);
}

std::string
matmulSource(uint32_t reps, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t Dim = 8;
    std::vector<uint32_t> a = wl::randomWords(rng, Dim * Dim, 64);
    std::vector<uint32_t> b = wl::randomWords(rng, Dim * Dim, 64);

    std::string src = strfmt(
        "    .equ DIM, %u\n"
        "    li s0, %u\n"           // repetitions
        "    la s2, mata\n"
        "    la s3, matb\n"
        "    la s4, matc\n"
        "    li s5, 0\n"            // checksum
        "rep:\n"
        "    li t0, 0\n"            // i
        "rowi:\n"
        "    li t1, 0\n"            // j
        "colj:\n"
        "    li t2, 0\n"            // k
        "    li t3, 0\n"            // acc
        "dot:\n"
        "    li a0, DIM\n"
        "    mul a1, t0, a0\n"
        "    add a1, a1, t2\n"
        "    add a1, s2, a1\n"
        "    lw a2, 0(a1)\n"        // A[i][k]
        "    mul a3, t2, a0\n"
        "    add a3, a3, t1\n"
        "    add a3, s3, a3\n"
        "    lw a4, 0(a3)\n"        // B[k][j]
        "    mul a5, a2, a4\n"
        "    add t3, t3, a5\n"
        "    addi t2, t2, 1\n"
        "    li a0, DIM\n"
        "    blt t2, a0, dot\n"
        "    li a0, DIM\n"
        "    mul a1, t0, a0\n"
        "    add a1, a1, t1\n"
        "    add a1, s4, a1\n"
        "    sw t3, 0(a1)\n"        // C[i][j]
        "    add s5, s5, t3\n"
        "    addi t1, t1, 1\n"
        "    li a0, DIM\n"
        "    blt t1, a0, colj\n"
        "    addi t0, t0, 1\n"
        "    li a0, DIM\n"
        "    blt t0, a0, rowi\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, rep\n"
        "    out s5, 1\n"
        "    halt\n"
        ".org 0x8000\nmata:\n",
        Dim, reps);
    src += wl::wordBlock(a);
    src += ".org 0x8100\nmatb:\n";
    src += wl::wordBlock(b);
    src += ".org 0x8200\nmatc: .space 64\n";
    return src;
}

std::string
qsortSource(uint32_t elems, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> data = wl::randomWords(rng, elems, 1 << 16);

    std::string src = strfmt(
        "    .equ N, %u\n"
        "    li sp, 0xf00000\n"     // word-addressed stack top
        "    la s2, arr\n"
        "    li a0, 0\n"
        "    li a1, N\n"
        "    addi a1, a1, -1\n"
        "    call qsort\n"
        // Verify sortedness and emit a position-weighted checksum.
        "    li t0, 1\n"
        "    li s5, 0\n"
        "    lw s6, 0(s2)\n"
        "vrfy:\n"
        "    li t1, N\n"
        "    bge t0, t1, vdone\n"
        "    add t2, s2, t0\n"
        "    lw t3, 0(t2)\n"
        "    bgeu t3, s6, inorder\n"
        "    out zero, 9\n"         // sorted-order violation marker
        "inorder:\n"
        "    mv s6, t3\n"
        "    mul t4, t3, t0\n"
        "    add s5, s5, t4\n"
        "    addi t0, t0, 1\n"
        "    j vrfy\n"
        "vdone:\n"
        "    out s5, 1\n"
        "    halt\n"
        // --- recursive quicksort: qsort(a0 = lo, a1 = hi) ----------
        "qsort:\n"
        "    bge a0, a1, qret\n"
        "    subi sp, sp, 3\n"
        "    sw ra, 0(sp)\n"
        "    sw a0, 1(sp)\n"
        "    sw a1, 2(sp)\n"
        // Lomuto partition, pivot = arr[hi].
        "    add t0, s2, a1\n"
        "    lw t1, 0(t0)\n"        // pivot
        "    mv t2, a0\n"           // i
        "    mv t3, a0\n"           // j
        "part:\n"
        "    bge t3, a1, pdone\n"
        "    add t4, s2, t3\n"
        "    lw t5, 0(t4)\n"
        "    bgeu t5, t1, pskip\n"
        "    add t6, s2, t2\n"
        "    lw a2, 0(t6)\n"
        "    sw t5, 0(t6)\n"
        "    sw a2, 0(t4)\n"
        "    addi t2, t2, 1\n"
        "pskip:\n"
        "    addi t3, t3, 1\n"
        "    j part\n"
        "pdone:\n"
        "    add t4, s2, t2\n"      // swap arr[i], arr[hi]
        "    lw t5, 0(t4)\n"
        "    add t6, s2, a1\n"
        "    lw a2, 0(t6)\n"
        "    sw a2, 0(t4)\n"
        "    sw t5, 0(t6)\n"
        "    sw t2, 1(sp)\n"        // frame slot 1 := pivot index
        // Left recursion: qsort(lo, i-1). a0 still holds lo.
        "    mv a1, t2\n"
        "    subi a1, a1, 1\n"
        "    call qsort\n"
        // Right recursion: qsort(i+1, hi) from the frame.
        "    lw t2, 1(sp)\n"
        "    addi a0, t2, 1\n"
        "    lw a1, 2(sp)\n"
        "    call qsort\n"
        "    lw ra, 0(sp)\n"
        "    addi sp, sp, 3\n"
        "qret:\n"
        "    ret\n",
        elems);
    src += ".org 0x8000\narr:\n";
    src += wl::wordBlock(data);
    return src;
}

std::string
crcSource(uint32_t words, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> data = wl::randomWords(rng, words,
                                                 0xffffffffu);
    std::string src = strfmt(
        "    .equ N, %u\n"
        "    la s2, data\n"
        "    li s0, 0\n"            // index
        "    li s5, -1\n"           // crc register
        "    li s7, 0xEDB88320\n"   // reflected polynomial
        "word:\n"
        "    add t0, s2, s0\n"
        "    lw t1, 0(t0)\n"
        "    xor s5, s5, t1\n"
        "    li t2, 32\n"
        "bit:\n"
        "    andi t3, s5, 1\n"
        "    srli s5, s5, 1\n"
        "    beqz t3, nopoly\n"
        "    xor s5, s5, s7\n"
        "nopoly:\n"
        "    addi t2, t2, -1\n"
        "    bnez t2, bit\n"
        "    addi s0, s0, 1\n"
        "    li t4, N\n"
        "    blt s0, t4, word\n"
        "    xori t5, s5, 0xffff\n"
        "    out t5, 1\n"
        "    out s5, 2\n"
        "    halt\n"
        ".org 0x8000\ndata:\n",
        words);
    src += wl::wordBlock(data);
    return src;
}

std::string
bsearchSource(uint32_t queries, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t TableSize = 512;
    std::vector<uint32_t> table(TableSize);
    uint32_t v = 0;
    for (auto &x : table) {
        v += 1 + static_cast<uint32_t>(rng.below(50));
        x = v;
    }
    std::vector<uint32_t> keys(queries);
    for (auto &k : keys)
        k = table[rng.below(TableSize)] + (rng.chance(0.5) ? 0 : 1);

    std::string src = strfmt(
        "    .equ Q, %u\n"
        "    .equ TS, %u\n"
        "    la s2, table\n"
        "    la s3, keys\n"
        "    li s0, 0\n"            // query index
        "    li s5, 0\n"            // hit count
        "    li s6, 0\n"            // probe count
        "query:\n"
        "    add t0, s3, s0\n"
        "    lw t1, 0(t0)\n"        // key
        "    li t2, 0\n"            // lo
        "    li t3, TS\n"           // hi (exclusive)
        "probe:\n"
        "    bge t2, t3, miss\n"
        "    add t4, t2, t3\n"
        "    srli t4, t4, 1\n"      // mid
        "    add t5, s2, t4\n"
        "    lw t6, 0(t5)\n"
        "    addi s6, s6, 1\n"
        "    beq t6, t1, hit\n"
        "    bltu t6, t1, golo\n"
        "    mv t3, t4\n"           // hi = mid
        "    j probe\n"
        "golo:\n"
        "    addi t2, t4, 1\n"      // lo = mid + 1
        "    j probe\n"
        "hit:\n"
        "    addi s5, s5, 1\n"
        "miss:\n"
        "    addi s0, s0, 1\n"
        "    li t6, Q\n"
        "    blt s0, t6, query\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x8000\ntable:\n",
        queries, TableSize);
    src += wl::wordBlock(table);
    src += ".org 0x9000\nkeys:\n";
    src += wl::wordBlock(keys);
    return src;
}

} // anonymous namespace

Workload
microFib(uint32_t steps)
{
    return makePair("fib", "iterative fibonacci", fibSource, steps);
}

Workload
microSieve(uint32_t limit)
{
    return makePair("sieve", "sieve of Eratosthenes", sieveSource,
                    limit);
}

Workload
microMatmul(uint32_t reps)
{
    return makePair("matmul", "8x8 integer matrix multiply",
                    matmulSource, reps);
}

Workload
microQsort(uint32_t elems)
{
    return makePair("qsort", "recursive quicksort", qsortSource,
                    elems);
}

Workload
microCrc(uint32_t words)
{
    return makePair("crc", "bitwise CRC-32", crcSource, words);
}

Workload
microBsearch(uint32_t queries)
{
    return makePair("bsearch", "binary search batch", bsearchSource,
                    queries);
}

std::vector<Workload>
microWorkloads()
{
    return {microFib(),  microSieve(),   microMatmul(),
            microQsort(), microCrc(),    microBsearch()};
}

} // namespace mssp

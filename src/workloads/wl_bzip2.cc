/**
 * @file
 * bzip2 analogue: run-length coding followed by block sorting passes.
 * Character: two phases with different branch structure — an RLE scan
 * with a run-continue branch, then bubble passes whose swap branch
 * converges from 50/50 toward not-taken as blocks get sorted.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t n, uint32_t sort_passes, uint64_t seed)
{
    Rng rng(seed);
    // Runs of symbols: RLE-friendly.
    std::vector<uint32_t> block;
    block.reserve(n);
    while (block.size() < n) {
        uint32_t sym = static_cast<uint32_t>(rng.below(64));
        uint32_t run = 1 + static_cast<uint32_t>(rng.below(6));
        for (uint32_t i = 0; i < run && block.size() < n; ++i)
            block.push_back(sym);
    }

    std::string src;
    src +=
        "    la s2, block\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // N
        "    li s5, 0\n"              // rle checksum
        "    li s6, 0\n"              // run count
        // ---- Phase 1: RLE scan --------------------------------------
        "    li s1, 1\n"              // i
        "    lw t1, 0(s2)\n"          // current symbol
        "    li t2, 1\n";             // run length
    src += wl::fatInit();
    src += "rle:\n";
    src += wl::fatBody("r", "s1");
    src +=
        "    add t0, s2, s1\n"
        "    lw t3, 0(t0)\n"
        "    bne t3, t1, runend\n"    // run-continue is common
        "    addi t2, t2, 1\n"
        "    j rlenext\n"
        "runend:\n"
        "    mul t4, t1, t2\n"
        "    add s5, s5, t4\n"
        "    addi s6, s6, 1\n"
        "    mv t1, t3\n"
        "    li t2, 1\n"
        "rlenext:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, rle\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        // ---- Phase 2: bubble passes over the block -------------------
        "    lw s7, 1(s4)\n"          // passes
        "sortpass:\n"
        "    li s1, 0\n"
        "    addi s3, s0, -1\n"
        "inner:\n";
    src += wl::fatBody("i", "s1");
    src += strfmt(
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"
        "    lw t2, 1(t0)\n"
        "    bge t2, t1, nosw\n"      // converges toward taken
        "    sw t2, 0(t0)\n"
        "    sw t1, 1(t0)\n"
        "nosw:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s3, inner\n"
        "    addi s7, s7, -1\n"
        "    bnez s7, sortpass\n"
        // ---- Checksum of the (partially) sorted block ----------------
        "    li s1, 0\n"
        "    li s5, 0\n"
        "cksum:\n"
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"
        "    slli t2, s5, 1\n"
        "    xor s5, t2, t1\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, cksum\n"
        "    out s5, 3\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u, %u\n",
        n, sort_passes);
    src += wl::fatData();
    src += ".org 0x8000\nblock:\n";
    src += wl::wordBlock(block);
    return src;
}

} // anonymous namespace

Workload
wlBzip2(double scale)
{
    Workload w;
    w.name = "bzip2";
    w.description = "run-length coding + block sort";
    w.refSource = source(wl::scaled(scale, 2600, 64),
                         wl::scaled(scale, 24, 2), 0xB219);
    w.trainSource = source(wl::scaled(scale, 1000, 32),
                           wl::scaled(scale, 8, 2), 0x2222);
    return w;
}

} // namespace mssp

/**
 * @file
 * Random structured-program generator.
 *
 * Produces terminating-by-construction μRISC programs with nested
 * counted loops, array loads/stores, a read-only per-phase parameter
 * table (fixed-address loads no store can touch), biased rare
 * branches, helper calls and periodic OUT checksums. Used by the
 * fuzz/property tests (SEQ-vs-MSSP equivalence over program
 * families), the speculation-safety fuzz gate and the adversarial
 * refinement suite.
 */

#ifndef MSSP_WORKLOADS_RANDOM_PROGRAM_HH
#define MSSP_WORKLOADS_RANDOM_PROGRAM_HH

#include <cstdint>
#include <string>

namespace mssp
{

/** Generator tuning. */
struct RandomProgramOptions
{
    unsigned minPhases = 2;
    unsigned maxPhases = 4;
    unsigned minIters = 16;
    unsigned maxIters = 120;
    unsigned minBodyOps = 3;
    unsigned maxBodyOps = 10;
    unsigned dataWords = 128;      ///< power of two
    bool allowCalls = true;
    bool allowStores = true;
    bool allowRareBranches = true;
    /** Give every phase a read-only parameter word loaded at a fixed
     *  address each iteration. No store can reach the table, so the
     *  loads are value-invariant by construction — the non-vacuity
     *  anchor for the speculation-safety fuzz gate (specsafe.hh). */
    bool paramTable = true;
    /** Sprinkle non-idempotent device reads/writes into phase bodies
     *  (exercises the MMIO serialization path). */
    bool allowMmio = false;
};

/**
 * Generate a deterministic random program for @p seed.
 * The same seed always yields the same source.
 */
std::string randomProgramSource(uint64_t seed,
                                const RandomProgramOptions &opts = {});

} // namespace mssp

#endif // MSSP_WORKLOADS_RANDOM_PROGRAM_HH

#include "workloads/workloads.hh"

#include "sim/logging.hh"

namespace mssp
{

std::vector<Workload>
specAnalogues(double scale)
{
    return {
        wlGzip(scale),   wlVpr(scale),    wlGcc(scale),
        wlMcf(scale),    wlCrafty(scale), wlParser(scale),
        wlEon(scale),    wlPerlbmk(scale), wlGap(scale),
        wlVortex(scale), wlBzip2(scale),  wlTwolf(scale),
    };
}

Workload
workloadByName(const std::string &name, double scale)
{
    for (auto &w : specAnalogues(scale)) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mssp

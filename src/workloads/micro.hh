/**
 * @file
 * Micro-workloads: six classic kernels (fibonacci, sieve, matrix
 * multiply, recursive quicksort, CRC, binary search) written in
 * μRISC assembly. They complement the SPECint analogues as quick
 * regression workloads, documentation-grade examples of the ISA, and
 * MSSP stress cases (quicksort exercises true recursion, so task
 * live-ins include stack state).
 */

#ifndef MSSP_WORKLOADS_MICRO_HH
#define MSSP_WORKLOADS_MICRO_HH

#include "workloads/workloads.hh"

namespace mssp
{

Workload microFib(uint32_t steps = 2000);
Workload microSieve(uint32_t limit = 2000);
Workload microMatmul(uint32_t reps = 40);
Workload microQsort(uint32_t elems = 180);
Workload microCrc(uint32_t words = 1500);
Workload microBsearch(uint32_t queries = 800);

/** All six micro-workloads at default sizes. */
std::vector<Workload> microWorkloads();

} // namespace mssp

#endif // MSSP_WORKLOADS_MICRO_HH

/**
 * @file
 * parser analogue: a finite-state tokenizer over a character-class
 * stream. Character: a skewed multi-way branch per input symbol, a
 * small state machine in registers, rare expensive escape handling.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    // Character classes: 0 letter (70%), 1 space (20%), 2 digit (7%),
    // 3 punctuation (3%, expensive path).
    std::vector<uint32_t> text(n);
    for (auto &c : text) {
        double u = rng.uniform();
        c = u < 0.70 ? 0 : u < 0.90 ? 1 : u < 0.97 ? 2 : 3;
    }

    std::string src;
    src +=
        "    la s2, text\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"           // N
        "    li s1, 0\n"               // i
        "    li s5, 0\n"               // state
        "    li s6, 0\n"               // token count
        "    li s7, 0\n";              // checksum
    src += wl::fatInit();
    src += "scan:\n";
    src += wl::fatBody("p", "s1");
    src += strfmt(
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"           // class
        "    beqz t1, cl_letter\n"     // 70% taken
        "    li t2, 1\n"
        "    beq t1, t2, cl_space\n"
        "    li t2, 2\n"
        "    beq t1, t2, cl_digit\n"
        // punctuation: expensive escape handling (rare).
        "    li t3, 6\n"
        "esc:\n"
        "    slli t4, s7, 1\n"
        "    xor s7, t4, t1\n"
        "    addi t3, t3, -1\n"
        "    bnez t3, esc\n"
        "    li s5, 0\n"
        "    j next\n"
        "cl_letter:\n"
        "    bnez s5, in_word\n"       // continuing a word
        "    addi s6, s6, 1\n"         // new token
        "in_word:\n"
        "    li s5, 1\n"
        "    addi s7, s7, 13\n"
        "    j next\n"
        "cl_space:\n"
        "    li s5, 0\n"
        "    j next\n"
        "cl_digit:\n"
        "    li s5, 2\n"
        "    slli t4, s7, 1\n"
        "    add s7, t4, t1\n"
        "next:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, scan\n"
        "    out s6, 1\n"
        "    out s7, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n",
        n);
    src += wl::fatData();
    src += ".org 0x8000\ntext:\n";
    src += wl::wordBlock(text);
    return src;
}

} // anonymous namespace

Workload
wlParser(double scale)
{
    Workload w;
    w.name = "parser";
    w.description = "finite-state tokenizer";
    w.refSource = source(wl::scaled(scale, 16000, 64), 0x9A55);
    w.trainSource = source(wl::scaled(scale, 6000, 32), 0x3A3A);
    return w;
}

} // namespace mssp

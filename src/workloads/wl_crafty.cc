/**
 * @file
 * crafty analogue: bitboard move generation. Character: a bit-
 * extraction inner loop (isolate LSB, clear, evaluate) over a stream
 * of position masks, with a rare "special square" branch.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t positions, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> boards(positions);
    for (auto &b : boards)
        b = static_cast<uint32_t>(rng.next());   // dense masks

    std::string src;
    src +=
        "    la s2, boards\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // positions
        "    li s1, 0\n"              // index
        "    li s5, 0\n"              // eval checksum
        "    li s6, 0\n"              // move count
        "    li s7, 0x00010000\n";    // the special square
    src += wl::fatInit();
    src +=
        "pos:\n"
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"          // board mask
        "bits:\n"
        "    beqz t1, posdone\n";
    src += wl::fatBody("c", "s6");
    src += strfmt(
        "    sub t2, zero, t1\n"
        "    and t3, t1, t2\n"        // isolate LSB
        "    xor t1, t1, t3\n"        // clear it
        "    addi s6, s6, 1\n"
        "    add s5, s5, t3\n"
        "    bne t3, s7, plain\n"     // rare: special square
        "    slli t4, s5, 2\n"        // extra evaluation
        "    xor s5, s5, t4\n"
        "    addi s5, s5, 99\n"
        "plain:\n"
        "    srli t4, t3, 3\n"
        "    xor s5, s5, t4\n"
        "    j bits\n"
        "posdone:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, pos\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n",
        positions);
    src += wl::fatData();
    src += ".org 0x8000\nboards:\n";
    src += wl::wordBlock(boards);
    return src;
}

} // anonymous namespace

Workload
wlCrafty(double scale)
{
    Workload w;
    w.name = "crafty";
    w.description = "bitboard move generation";
    w.refSource = source(wl::scaled(scale, 1700, 32), 0xB0A2D);
    w.trainSource = source(wl::scaled(scale, 600, 16), 0xCAFE);
    return w;
}

} // namespace mssp

/**
 * @file
 * perlbmk analogue: string pattern matching. Character: an outer scan
 * loop whose first-character probe is heavily mismatch-biased, with a
 * short nested full-compare loop on probe hits.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t PatLen = 8;
    std::vector<uint32_t> pattern(PatLen);
    for (auto &c : pattern)
        c = static_cast<uint32_t>(rng.below(26));
    std::vector<uint32_t> text(n);
    for (auto &c : text)
        c = static_cast<uint32_t>(rng.below(26));
    // Plant the pattern every ~500 symbols so matches exist.
    for (uint32_t at = 100; at + PatLen < n; at += 500) {
        for (uint32_t k = 0; k < PatLen; ++k)
            text[at + k] = pattern[k];
    }

    std::string src;
    src +=
        "    la s2, text\n"
        "    la s3, pattern\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // N - PatLen
        "    li s1, 0\n"              // i
        "    li s5, 0\n"              // match count
        "    li s6, 0\n"              // checksum
        "    lw s7, 0(s3)\n";         // pat[0]
    src += wl::fatInit();
    src += "scan:\n";
    src += wl::fatBody("m", "s1");
    src += strfmt(
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"
        "    add s6, s6, t1\n"
        "    bne t1, s7, miss\n"      // heavily biased taken
        "    li t2, 1\n"              // full compare
        "cmp:\n"
        "    add t3, s2, s1\n"
        "    add t3, t3, t2\n"
        "    lw t4, 0(t3)\n"
        "    add t5, s3, t2\n"
        "    lw t6, 0(t5)\n"
        "    bne t4, t6, miss\n"
        "    addi t2, t2, 1\n"
        "    li t3, %u\n"
        "    blt t2, t3, cmp\n"
        "    addi s5, s5, 1\n"        // full match
        "    slli t4, s5, 5\n"
        "    xor s6, s6, t4\n"
        "miss:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, scan\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n"
        ".org 0x7800\n"
        "pattern:\n",
        PatLen, n - PatLen);
    src += wl::wordBlock(pattern);
    src += wl::fatData();
    src += ".org 0x8000\ntext:\n";
    src += wl::wordBlock(text);
    return src;
}

} // anonymous namespace

Workload
wlPerlbmk(double scale)
{
    Workload w;
    w.name = "perlbmk";
    w.description = "string pattern matching";
    w.refSource = source(wl::scaled(scale, 22000, 128), 0x9E71);
    w.trainSource = source(wl::scaled(scale, 8000, 64), 0x9E72);
    return w;
}

} // namespace mssp

/**
 * @file
 * twolf analogue: standard-cell placement on a grid. Character: an
 * annealing move loop that evaluates a 4-neighborhood (several
 * dependent loads with wraparound index arithmetic) and accepts
 * improvements rarely.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t moves, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t Grid = 256;    // 16x16 cells, mask 255
    std::vector<uint32_t> grid = wl::randomWords(rng, Grid, 4096);

    std::string src;
    src +=
        "    la s2, grid\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // moves
        "    li s1, 99991\n"          // LCG state
        "    li s5, 0\n"              // total cost
        "    li s6, 0\n"              // accepted moves
        "    li s7, 69069\n";
    src += wl::fatInit();
    src += "move:\n";
    src += wl::fatBody("t", "s0");
    src += strfmt(
        "    mul s1, s1, s7\n"
        "    addi s1, s1, 12345\n"
        "    srli t0, s1, 10\n"
        "    andi t0, t0, 255\n"      // cell c
        // 4-neighborhood with wraparound (+-1, +-16).
        "    addi t1, t0, 1\n"
        "    andi t1, t1, 255\n"
        "    addi t2, t0, -1\n"
        "    andi t2, t2, 255\n"
        "    addi t3, t0, 16\n"
        "    andi t3, t3, 255\n"
        "    addi t4, t0, -16\n"
        "    andi t4, t4, 255\n"
        "    add t5, s2, t0\n"
        "    lw a0, 0(t5)\n"          // v(c)
        "    add t6, s2, t1\n"
        "    lw a1, 0(t6)\n"
        "    add t6, s2, t2\n"
        "    lw a2, 0(t6)\n"
        "    add t6, s2, t3\n"
        "    lw a3, 0(t6)\n"
        "    add t6, s2, t4\n"
        "    lw a4, 0(t6)\n"
        "    add a5, a1, a2\n"
        "    add a5, a5, a3\n"
        "    add a5, a5, a4\n"
        "    srli a5, a5, 2\n"        // neighborhood mean
        "    sub a6, a0, a5\n"        // divergence
        "    add s5, s5, a6\n"
        "    li a7, 900\n"
        "    blt a6, a7, rejectm\n"   // biased taken: keep placement
        "    sw a5, 0(t5)\n"          // rare: smooth the cell
        "    addi s6, s6, 1\n"
        "rejectm:\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, move\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n",
        moves);
    src += wl::fatData();
    src += ".org 0x8000\ngrid:\n";
    src += wl::wordBlock(grid);
    return src;
}

} // anonymous namespace

Workload
wlTwolf(double scale)
{
    Workload w;
    w.name = "twolf";
    w.description = "grid placement cost annealing";
    w.refSource = source(wl::scaled(scale, 9500, 64), 0x2017);
    w.trainSource = source(wl::scaled(scale, 3400, 32), 0x2018);
    return w;
}

} // namespace mssp

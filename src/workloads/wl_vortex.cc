/**
 * @file
 * vortex analogue: an object-database of hash-table operations.
 * Character: a lookup/insert op stream over chained buckets, probe
 * loops that usually terminate on the first node, rare chain walks.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t ops, uint64_t seed)
{
    Rng rng(seed);
    // Op stream: key in low bits, op in bit 20 (1 = insert).
    std::vector<uint32_t> stream(ops);
    for (auto &op : stream) {
        uint32_t key = static_cast<uint32_t>(rng.below(4096));
        bool insert = rng.chance(0.25);
        op = key | (insert ? (1u << 20) : 0);
    }

    std::string src;
    src +=
        "    la s2, stream\n"
        "    la s3, buckets\n"        // 512 head indices (0 = empty)
        "    la s8, pool\n"           // node pool: {key, next} pairs
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // ops
        "    li s1, 0\n"              // op index
        "    li s6, 1\n"              // next free node (1-based)
        "    li s5, 0\n"              // hit counter
        "    li s7, 0\n";             // checksum
    src += wl::fatInit();
    src += "op:\n";
    src += wl::fatBody("x", "s1");
    src += strfmt(
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"          // op word
        "    li t2, 0xfffff\n"
        "    and t2, t1, t2\n"        // key
        "    andi t3, t2, 511\n"      // bucket
        "    add t3, s3, t3\n"
        "    lw t4, 0(t3)\n"          // head node (1-based, 0 empty)
        "probe:\n"
        "    beqz t4, notfound\n"
        "    addi t5, t4, -1\n"
        "    slli t5, t5, 1\n"
        "    add t5, s8, t5\n"
        "    lw t6, 0(t5)\n"          // node key
        "    beq t6, t2, found\n"
        "    lw t4, 1(t5)\n"          // next
        "    j probe\n"
        "found:\n"
        "    addi s5, s5, 1\n"
        "    add s7, s7, t2\n"
        "    j opdone\n"
        "notfound:\n"
        "    srli t6, t1, 20\n"
        "    beqz t6, opdone\n"       // lookup miss: nothing to do
        "    lw t4, 0(t3)\n"          // insert at head
        "    addi t5, s6, -1\n"
        "    slli t5, t5, 1\n"
        "    add t5, s8, t5\n"
        "    sw t2, 0(t5)\n"          // node.key = key
        "    sw t4, 1(t5)\n"          // node.next = old head
        "    sw s6, 0(t3)\n"          // bucket head = new node
        "    addi s6, s6, 1\n"
        "    xor s7, s7, t2\n"
        "opdone:\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, op\n"
        "    out s5, 1\n"
        "    out s7, 2\n"
        "    out s6, 3\n"
        "    halt\n"
        ".org 0x6000\n"
        "params: .word %u\n"
        ".org 0x6800\n"
        "buckets: .space 512\n"
        ".org 0x7000\n"
        "pool: .space 8192\n",
        ops);
    src += wl::fatData();
    src += ".org 0x9800\nstream:\n";
    src += wl::wordBlock(stream);
    return src;
}

} // anonymous namespace

Workload
wlVortex(double scale)
{
    Workload w;
    w.name = "vortex";
    w.description = "hash-table database operations";
    w.refSource = source(wl::scaled(scale, 3400, 64), 0x40E7);
    w.trainSource = source(wl::scaled(scale, 1200, 32), 0x40E8);
    return w;
}

} // namespace mssp

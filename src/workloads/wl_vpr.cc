/**
 * @file
 * vpr analogue: simulated-annealing placement. Character: one hot
 * accept/reject loop, heavily reject-biased branch, random-access
 * working set, occasional stores on accept.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t iters, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t Cells = 256;   // mask 255
    std::vector<uint32_t> cells = wl::randomWords(rng, Cells, 1024);

    std::string src;
    src +=
        "    la s2, cells\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"            // iterations
        "    li s1, 12345\n"            // LCG state
        "    li s5, 0\n"                // cost accumulator
        "    li s6, 0\n"                // accepted swaps
        "    li s7, 1103515245\n";
    src += wl::fatInit();
    src += "anneal:\n";
    src += wl::fatBody("v", "s0");
    src += strfmt(
        "    mul s1, s1, s7\n"
        "    addi s1, s1, 12345\n"
        "    srli t1, s1, 8\n"
        "    andi t1, t1, 255\n"        // i
        "    mul s1, s1, s7\n"
        "    addi s1, s1, 12345\n"
        "    srli t2, s1, 8\n"
        "    andi t2, t2, 255\n"        // j
        "    add t3, s2, t1\n"
        "    lw t4, 0(t3)\n"            // c[i]
        "    add t5, s2, t2\n"
        "    lw t6, 0(t5)\n"            // c[j]
        "    sub a0, t4, t6\n"
        "    sub a1, t1, t2\n"
        "    mul a2, a0, a1\n"          // delta
        "    add s5, s5, a2\n"
        "    li a3, -200000\n"
        "    bge a2, a3, reject\n"      // heavily biased taken
        "    sw t6, 0(t3)\n"            // accept: swap
        "    sw t4, 0(t5)\n"
        "    addi s6, s6, 1\n"
        "reject:\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, anneal\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n",
        iters);
    src += wl::fatData();
    src += ".org 0x8000\ncells:\n";
    src += wl::wordBlock(cells);
    return src;
}

} // anonymous namespace

Workload
wlVpr(double scale)
{
    Workload w;
    w.name = "vpr";
    w.description = "annealing place-and-route accept loop";
    w.refSource = source(wl::scaled(scale, 14000, 64), 0xF00D);
    w.trainSource = source(wl::scaled(scale, 5000, 32), 0xBEEF);
    return w;
}

} // namespace mssp

/**
 * @file
 * mcf analogue: network-simplex-style pointer chasing. Character:
 * serial dependent loads over a linked node structure, large-ish
 * working set, a rare store on a cost threshold.
 */

#include <numeric>

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t nodes, uint32_t passes, uint64_t seed)
{
    Rng rng(seed);
    // Random single-cycle permutation (next pointers) with costs.
    std::vector<uint32_t> perm(nodes);
    std::iota(perm.begin(), perm.end(), 0);
    for (uint32_t i = nodes - 1; i > 0; --i) {
        auto j = static_cast<uint32_t>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
    // next[perm[k]] = perm[k+1]: one big cycle.
    std::vector<uint32_t> layout(2 * nodes);
    for (uint32_t k = 0; k < nodes; ++k) {
        uint32_t from = perm[k];
        uint32_t to = perm[(k + 1) % nodes];
        layout[2 * from] = to;
        layout[2 * from + 1] =
            static_cast<uint32_t>(rng.below(512)) + 1;
    }

    std::string src;
    src +=
        "    la s2, nodes\n"
        "    la s4, params\n"
        "    lw s3, 0(s4)\n"            // passes
        "    li s5, 0\n";               // cost accumulator
    src += wl::fatInit();
    src +=
        "pass:\n"
        "    li s0, 0\n"                // current node
        "    lw s6, 1(s4)\n"            // hops per pass
        "hop:\n";
    src += wl::fatBody("h", "s6");
    src += strfmt(
        "    slli t0, s0, 1\n"
        "    add t0, s2, t0\n"
        "    lw s0, 0(t0)\n"            // follow next pointer
        "    lw t1, 1(t0)\n"            // edge cost
        "    add s5, s5, t1\n"
        "    andi t2, s5, 1023\n"
        "    bnez t2, nohit\n"          // biased taken
        "    addi t3, t1, 3\n"          // rare: rebalance the edge
        "    sw t3, 1(t0)\n"
        "nohit:\n"
        "    addi s6, s6, -1\n"
        "    bnez s6, hop\n"
        "    addi s3, s3, -1\n"
        "    bnez s3, pass\n"
        "    out s5, 1\n"
        "    out s0, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u, %u\n",
        passes, nodes);
    src += wl::fatData();
    src += ".org 0x8000\nnodes:\n";
    src += wl::wordBlock(layout);
    return src;
}

} // anonymous namespace

Workload
wlMcf(double scale)
{
    Workload w;
    w.name = "mcf";
    w.description = "linked-list network pointer chasing";
    w.refSource = source(1024, wl::scaled(scale, 26, 2), 0x5CA1E);
    w.trainSource = source(1024, wl::scaled(scale, 9, 2), 0x7A21);
    return w;
}

} // namespace mssp

/**
 * @file
 * The workload suite: 12 synthetic analogues of SPEC CPU2000 INT.
 *
 * The paper evaluated MSSP on SPECint2000 Alpha binaries, which are
 * not redistributable (and our substrate is μRISC); each kernel here
 * reproduces the *control- and data-flow character* that makes its
 * namesake interesting for MSSP — branch bias structure, working-set
 * behaviour, loop nesting, call density (DESIGN.md §2).
 *
 * Every workload provides a ref source (evaluation input) and a train
 * source (profiling input): identical code, different embedded data,
 * mirroring SPEC's train/ref arrangement. All workloads emit checksum
 * OUTs, making output equivalence a strong oracle.
 */

#ifndef MSSP_WORKLOADS_WORKLOADS_HH
#define MSSP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

namespace mssp
{

/** One benchmark: name + ref/train assembly sources. */
struct Workload
{
    std::string name;
    std::string description;
    std::string refSource;
    std::string trainSource;
};

/**
 * All 12 SPECint-2000 analogues.
 *
 * @param scale size multiplier (1.0 = default evaluation size; tests
 *              use smaller scales). Dynamic instruction counts scale
 *              roughly linearly.
 */
std::vector<Workload> specAnalogues(double scale = 1.0);

/** Look up one analogue by name ("gzip", "mcf", ...). */
Workload workloadByName(const std::string &name, double scale = 1.0);

// Individual generators --------------------------------------------------
Workload wlGzip(double scale);     ///< LZ-style hash-match compression
Workload wlVpr(double scale);      ///< annealing place-and-route accept loop
Workload wlGcc(double scale);      ///< worklist dataflow over an array CFG
Workload wlMcf(double scale);      ///< linked-list network pointer chasing
Workload wlCrafty(double scale);   ///< bitboard move generation
Workload wlParser(double scale);   ///< finite-state tokenizer
Workload wlEon(double scale);      ///< fixed-point ray marching
Workload wlPerlbmk(double scale);  ///< string pattern matching
Workload wlGap(double scale);      ///< multi-word bignum arithmetic
Workload wlVortex(double scale);   ///< hash-table database operations
Workload wlBzip2(double scale);    ///< run-length coding + block sort
Workload wlTwolf(double scale);    ///< grid placement cost annealing

} // namespace mssp

#endif // MSSP_WORKLOADS_WORKLOADS_HH

/**
 * @file
 * eon analogue: fixed-point ray marching. Character: almost pure ALU
 * (very little memory traffic), a rare reflection branch — the kind
 * of program distillation can barely shorten, keeping the suite's
 * distillability spread realistic.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t rays, uint64_t seed)
{
    Rng rng(seed);
    // Per-ray initial positions/directions (fixed point, 8.8).
    std::vector<uint32_t> origins(2 * rays);
    for (auto &v : origins)
        v = static_cast<uint32_t>(rng.below(1 << 12));

    std::string src;
    src += strfmt(
        "    la s2, origins\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // rays
        "    li s1, 0\n"
        "    li s5, 0\n"              // accumulated radiance
        "ray:\n"
        "    slli t0, s1, 1\n"
        "    add t0, s2, t0\n"
        "    lw t1, 0(t0)\n"          // x
        "    lw t2, 1(t0)\n"          // y
        "    li t3, 37\n"             // dx
        "    li t4, 23\n"             // dy
        "    li a0, 48\n"             // march steps
        "march:\n"
        "    add t1, t1, t3\n"
        "    add t2, t2, t4\n"
        "    andi t1, t1, 0x3fff\n"
        "    andi t2, t2, 0x3fff\n"
        "    mul a1, t1, t1\n"
        "    mul a2, t2, t2\n"
        "    add a3, a1, a2\n"
        "    srli a3, a3, 8\n"        // dist^2 >> 8
        "    li a4, 900\n"
        "    bge a3, a4, nomiss\n"    // biased taken: no hit
        "    sub t3, zero, t3\n"      // rare: reflect
        "    addi t4, t4, 7\n"
        "    addi s5, s5, 64\n"
        "nomiss:\n"
        "    srli a5, a3, 6\n"
        "    add s5, s5, a5\n"
        "    addi a0, a0, -1\n"
        "    bnez a0, march\n"
        "    addi s1, s1, 1\n"
        "    blt s1, s0, ray\n"
        "    out s5, 1\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n"
        ".org 0x8000\n"
        "origins:\n",
        rays);
    src += wl::wordBlock(origins);
    return src;
}

} // anonymous namespace

Workload
wlEon(double scale)
{
    Workload w;
    w.name = "eon";
    w.description = "fixed-point ray marching";
    w.refSource = source(wl::scaled(scale, 420, 16), 0xE01);
    w.trainSource = source(wl::scaled(scale, 150, 8), 0xE02);
    return w;
}

} // namespace mssp

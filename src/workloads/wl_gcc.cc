/**
 * @file
 * gcc analogue: worklist dataflow analysis over an array-encoded CFG.
 * Character: a pop/compute/push worklist loop whose "value changed"
 * branch starts hot and converges to strongly not-taken — the profile
 * structure optimizing compilers exhibit.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t pops, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t Nodes = 256;
    // Each node: two successors; meet = AND of successor values, so
    // values converge monotonically toward zero.
    std::vector<uint32_t> edges(2 * Nodes);
    for (auto &e : edges)
        e = static_cast<uint32_t>(rng.below(Nodes));
    std::vector<uint32_t> vals = wl::randomWords(rng, Nodes,
                                                 0xffffffffu);
    std::vector<uint32_t> queue(Nodes);
    for (uint32_t i = 0; i < Nodes; ++i)
        queue[i] = i;

    std::string src;
    src +=
        "    la s2, edges\n"
        "    la s3, vals\n"
        "    la s4, params\n"
        "    la s8, wq\n"
        "    lw s0, 0(s4)\n"          // pop budget
        "    li s5, 0\n"              // head
        "    lw s6, 1(s4)\n"          // tail (preseeded queue)
        "    li s7, 0\n";             // checksum
    src += wl::fatInit();
    src += "work:\n";
    src += wl::fatBody("w", "s0");
    src += strfmt(
        "    andi t0, s5, 1023\n"
        "    add t0, s8, t0\n"
        "    lw t1, 0(t0)\n"          // node
        "    addi s5, s5, 1\n"
        "    slli t2, t1, 1\n"
        "    add t2, s2, t2\n"
        "    lw t3, 0(t2)\n"          // succ a
        "    lw t4, 1(t2)\n"          // succ b
        "    add a0, s3, t3\n"
        "    lw a1, 0(a0)\n"
        "    add a2, s3, t4\n"
        "    lw a3, 0(a2)\n"
        "    and a4, a1, a3\n"        // meet
        "    add a5, s3, t1\n"
        "    lw a6, 0(a5)\n"
        "    beq a4, a6, nochange\n"  // converges to strongly taken
        "    sw a4, 0(a5)\n"
        "    andi t5, s6, 1023\n"     // push both successors
        "    add t5, s8, t5\n"
        "    sw t3, 0(t5)\n"
        "    addi s6, s6, 1\n"
        "    andi t5, s6, 1023\n"
        "    add t5, s8, t5\n"
        "    sw t4, 0(t5)\n"
        "    addi s6, s6, 1\n"
        "    add s7, s7, a4\n"
        "nochange:\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, work\n"
        "    out s7, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x6000\n"
        "params: .word %u, %u\n",
        pops, Nodes);
    src += wl::fatData();
    src += ".org 0x6800\nwq:\n";
    src += wl::wordBlock(queue);
    src += ".space 800\n";            // queue capacity headroom
    src += ".org 0x7800\nedges:\n";
    src += wl::wordBlock(edges);
    src += ".org 0x8800\nvals:\n";
    src += wl::wordBlock(vals);
    return src;
}

} // anonymous namespace

Workload
wlGcc(double scale)
{
    Workload w;
    w.name = "gcc";
    w.description = "worklist dataflow over an array CFG";
    w.refSource = source(wl::scaled(scale, 13000, 64), 0xCC0FFEE);
    w.trainSource = source(wl::scaled(scale, 5000, 32), 0xC0DE);
    return w;
}

} // namespace mssp

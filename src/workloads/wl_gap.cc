/**
 * @file
 * gap analogue: multi-word (bignum) arithmetic. Character: carry-
 * chain loops over 16-word numbers, a rare normalization branch, and
 * a function call in the hot path.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t rounds, uint64_t seed)
{
    Rng rng(seed);
    constexpr uint32_t Limbs = 16;
    // 16.16-style limbs kept below 2^16 so carries are explicit.
    std::vector<uint32_t> a = wl::randomWords(rng, Limbs, 1 << 16);
    std::vector<uint32_t> b = wl::randomWords(rng, Limbs, 1 << 16);

    std::string src;
    src +=
        "    la s2, numa\n"
        "    la s3, numb\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // rounds
        "    li s5, 0\n";             // checksum
    src += wl::fatInit();
    src += strfmt(
        "round:\n"
        "    call bigadd\n"
        "    andi t0, s5, 255\n"
        "    bnez t0, noscale\n"      // biased taken
        "    li t1, 0\n"              // rare: halve every limb
        "shrink:\n"
        "    add t2, s2, t1\n"
        "    lw t3, 0(t2)\n"
        "    srli t3, t3, 1\n"
        "    sw t3, 0(t2)\n"
        "    addi t1, t1, 1\n"
        "    li t4, %u\n"
        "    blt t1, t4, shrink\n"
        "noscale:\n"
        "    addi s0, s0, -1\n"
        "    bnez s0, round\n"
        "    out s5, 1\n"
        "    halt\n"
        // a += b with carry propagation; limbs stay < 2^16.
        "bigadd:\n"
        "    li a0, 0\n"              // limb index
        "    li a1, 0\n"              // carry
        "addlimb:\n",
        Limbs);
    src += wl::fatBody("b", "a0");
    src += strfmt(
        "    add t0, s2, a0\n"
        "    lw t1, 0(t0)\n"
        "    add t2, s3, a0\n"
        "    lw t3, 0(t2)\n"
        "    add t4, t1, t3\n"
        "    add t4, t4, a1\n"
        "    srli a1, t4, 16\n"       // carry out
        "    andi t4, t4, 0xffff\n"
        "    sw t4, 0(t0)\n"
        "    add s5, s5, t4\n"
        "    addi a0, a0, 1\n"
        "    li t5, %u\n"
        "    blt a0, t5, addlimb\n"
        "    ret\n"
        ".org 0x7000\n"
        "params: .word %u\n",
        Limbs, rounds);
    src += wl::fatData();
    src += ".org 0x7800\nnuma:\n";
    src += wl::wordBlock(a);
    src += ".org 0x7900\nnumb:\n";
    src += wl::wordBlock(b);
    return src;
}

} // anonymous namespace

Workload
wlGap(double scale)
{
    Workload w;
    w.name = "gap";
    w.description = "multi-word bignum arithmetic";
    w.refSource = source(wl::scaled(scale, 1500, 32), 0x6A9);
    w.trainSource = source(wl::scaled(scale, 550, 16), 0x6AA);
    return w;
}

} // namespace mssp

#include "workloads/random_program.hh"

#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mssp
{

namespace
{

/** Registers the generator is allowed to clobber freely. */
const char *kPool[] = {"t0", "t1", "t2", "t3", "t4", "t5"};
constexpr unsigned kPoolSize = 6;

const char *
pick(Rng &rng)
{
    return kPool[rng.below(kPoolSize)];
}

/** Emit one random ALU op over the register pool into @p out. */
void
emitAluOp(Rng &rng, std::string &out, const char *acc)
{
    static const char *ops[] = {"add", "sub", "xor", "and", "or",
                                "mul", "slt", "sltu", "sll", "srl"};
    const char *op = ops[rng.below(10)];
    const char *a = pick(rng);
    const char *b = pick(rng);
    // Shift amounts must stay small: mask the operand first.
    if (op[0] == 's' && (op[1] == 'l' || op[1] == 'r')) {
        out += strfmt("    andi %s, %s, 7\n", b, b);
    }
    out += strfmt("    %s %s, %s, %s\n", op, pick(rng), a, b);
    out += strfmt("    add %s, %s, %s\n", acc, acc, a);
}

} // anonymous namespace

std::string
randomProgramSource(uint64_t seed, const RandomProgramOptions &opts)
{
    Rng rng(seed);
    MSSP_ASSERT((opts.dataWords & (opts.dataWords - 1)) == 0);
    uint32_t mask = opts.dataWords - 1;

    std::string src;
    src += "; random program, seed " + std::to_string(seed) + "\n";

    unsigned phases = static_cast<unsigned>(
        rng.range(opts.minPhases, opts.maxPhases));
    bool use_call = opts.allowCalls && rng.chance(0.7);

    // s0 = loop counter, s1 = accumulator/checksum, s2 = data base,
    // s3 = phase-local scratch index.
    src += "    la s2, data\n";
    src += "    li s1, 1\n";

    for (unsigned ph = 0; ph < phases; ++ph) {
        unsigned iters = static_cast<unsigned>(
            rng.range(opts.minIters, opts.maxIters));
        unsigned body_ops = static_cast<unsigned>(
            rng.range(opts.minBodyOps, opts.maxBodyOps));

        src += strfmt("    li s0, %u\n", iters);
        src += strfmt("    li s3, %u\n",
                      static_cast<unsigned>(rng.below(opts.dataWords)));
        src += strfmt("phase%u:\n", ph);

        // Seed the pool from the array so values vary.
        src += strfmt("    andi s3, s3, %u\n", mask);
        src += "    add t0, s2, s3\n";
        src += "    lw t1, 0(t0)\n";

        if (opts.paramTable) {
            // Fold in the phase parameter, reloaded from its fixed
            // read-only slot every iteration.
            src += "    la t6, params\n";
            src += strfmt("    lw t4, %u(t6)\n", ph);
            src += "    add s1, s1, t4\n";
        }

        for (unsigned i = 0; i < body_ops; ++i) {
            if (opts.allowMmio && rng.chance(0.08)) {
                // A rare device access: read the non-idempotent
                // counter or emit an observable device write.
                src += "    lui t5, 0xffff\n";
                if (rng.chance(0.5)) {
                    src += "    lw t4, 0(t5)\n";
                    src += "    add s1, s1, t4\n";
                } else {
                    src += "    sw s1, 8(t5)\n";
                }
                continue;
            }
            switch (rng.below(6)) {
              case 0:
              case 1:
              case 2:
                emitAluOp(rng, src, "s1");
                break;
              case 3: {
                // Array load with masked index.
                const char *idx = pick(rng);
                src += strfmt("    andi %s, %s, %u\n", idx, idx, mask);
                src += strfmt("    add t5, s2, %s\n", idx);
                src += strfmt("    lw %s, 0(t5)\n", pick(rng));
                break;
              }
              case 4: {
                if (!opts.allowStores) {
                    emitAluOp(rng, src, "s1");
                    break;
                }
                const char *idx = pick(rng);
                src += strfmt("    andi %s, %s, %u\n", idx, idx, mask);
                src += strfmt("    add t5, s2, %s\n", idx);
                src += strfmt("    sw s1, 0(t5)\n");
                break;
              }
              default: {
                if (!opts.allowRareBranches) {
                    emitAluOp(rng, src, "s1");
                    break;
                }
                // A biased branch: fires when s0 % P == 0.
                unsigned prime = 31 + 2 * static_cast<unsigned>(
                    rng.below(20));
                src += strfmt("    li t5, %u\n", prime);
                src += "    rem t5, s0, t5\n";
                src += strfmt("    bnez t5, ph%u_skip%u\n", ph, i);
                src += strfmt("    addi s1, s1, %d\n",
                              static_cast<int>(rng.range(1, 99)));
                src += strfmt("ph%u_skip%u:\n", ph, i);
                break;
              }
            }
        }

        if (use_call && rng.chance(0.5)) {
            src += "    mv a0, s1\n";
            src += "    call mixer\n";
            src += "    mv s1, a0\n";
        }

        src += "    addi s3, s3, 1\n";
        src += "    addi s0, s0, -1\n";
        src += strfmt("    bnez s0, phase%u\n", ph);
        src += strfmt("    out s1, %u\n", ph + 1);
    }

    src += "    out s1, 0\n";
    src += "    halt\n";

    if (use_call) {
        src += "mixer:\n";
        src += "    slli t6, a0, 3\n";
        src += "    xor a0, a0, t6\n";
        src += "    srli t6, a0, 7\n";
        src += "    add a0, a0, t6\n";
        src += "    ret\n";
    }

    src += ".org 0x8000\ndata:\n";
    for (unsigned i = 0; i < opts.dataWords; ++i) {
        src += strfmt(".word %u\n",
                      static_cast<uint32_t>(rng.below(1u << 16)));
    }
    if (opts.paramTable) {
        // Right past the array, out of reach of its masked stores.
        src += "params:\n";
        for (unsigned ph = 0; ph < phases; ++ph) {
            src += strfmt(".word %u\n",
                          static_cast<uint32_t>(rng.below(1u << 16)));
        }
    }
    return src;
}

} // namespace mssp

/**
 * @file
 * gzip analogue: LZ-style compression with a hash-chain match search.
 * Character: medium-biased match branches, small hash-table working
 * set, one hot loop with a short nested match-length loop.
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

std::string
source(uint32_t n, uint64_t seed)
{
    Rng rng(seed);
    // Compressible input: runs of repeated symbols over a small
    // alphabet, so matches are found but misses stay common.
    std::vector<uint32_t> input;
    input.reserve(n);
    while (input.size() < n) {
        uint32_t sym = static_cast<uint32_t>(rng.below(48));
        uint32_t run = 1 + static_cast<uint32_t>(rng.below(4));
        for (uint32_t i = 0; i < run && input.size() < n; ++i)
            input.push_back(sym);
    }

    std::string src;
    src +=
        "    la s2, input\n"
        "    la s3, htab\n"
        "    la s4, params\n"
        "    lw s0, 0(s4)\n"          // N
        "    li s1, 0\n"              // i
        "    li s5, 0\n"              // checksum
        "    li s6, 0\n";             // total match length
    src += wl::fatInit();
    src += "main:\n";
    src += wl::fatBody("g", "s1");
    src += strfmt(
        "    add t0, s2, s1\n"
        "    lw t1, 0(t0)\n"          // in[i]
        "    lw t2, 1(t0)\n"          // in[i+1]
        "    li t3, 31\n"
        "    mul t3, t1, t3\n"
        "    add t3, t3, t2\n"
        "    andi t3, t3, 255\n"      // h
        "    add t4, s3, t3\n"
        "    lw t5, 0(t4)\n"          // cand+1
        "    addi t6, s1, 1\n"
        "    sw t6, 0(t4)\n"          // htab[h] = i+1
        "    add s5, s5, t1\n"        // literal checksum
        "    beqz t5, nomatch\n"
        "    addi t5, t5, -1\n"       // cand
        "    add t6, s2, t5\n"
        "    lw t6, 0(t6)\n"
        "    bne t6, t1, nomatch\n"   // first-symbol probe
        "    li a0, 0\n"              // match length
        "mlen:\n"
        "    add t0, s2, s1\n"
        "    add t0, t0, a0\n"
        "    lw t1, 0(t0)\n"
        "    add t2, s2, t5\n"
        "    add t2, t2, a0\n"
        "    lw t2, 0(t2)\n"
        "    bne t1, t2, mdone\n"
        "    addi a0, a0, 1\n"
        "    li t3, 8\n"
        "    blt a0, t3, mlen\n"
        "mdone:\n"
        "    add s6, s6, a0\n"
        "    slli t3, a0, 4\n"
        "    xor s5, s5, t3\n"
        "nomatch:\n"
        "    addi s1, s1, 1\n"
        "    lw t0, 0(s4)\n"
        "    addi t0, t0, -9\n"
        "    blt s1, t0, main\n"
        "    out s5, 1\n"
        "    out s6, 2\n"
        "    halt\n"
        ".org 0x7000\n"
        "params: .word %u\n"
        ".org 0x7800\n"
        "htab: .space 256\n",
        n);
    src += wl::fatData();
    src += ".org 0x8000\ninput:\n";
    src += wl::wordBlock(input);
    return src;
}

} // anonymous namespace

Workload
wlGzip(double scale)
{
    Workload w;
    w.name = "gzip";
    w.description = "LZ-style hash-match compression";
    w.refSource = source(wl::scaled(scale, 9000, 64), 0xA11CE);
    w.trainSource = source(wl::scaled(scale, 3000, 32), 0x7EA1);
    return w;
}

} // namespace mssp

/**
 * @file
 * Internal helpers shared by the workload generators.
 */

#ifndef MSSP_WORKLOADS_WL_COMMON_HH
#define MSSP_WORKLOADS_WL_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mssp::wl
{

/** Emit a .word data block (8 values per line). */
inline std::string
wordBlock(const std::vector<uint32_t> &values)
{
    std::string out;
    for (size_t i = 0; i < values.size(); ++i) {
        if (i % 8 == 0)
            out += ".word ";
        out += std::to_string(values[i]);
        out += (i % 8 == 7 || i + 1 == values.size()) ? "\n" : ", ";
    }
    return out;
}

/** Random vector of n values in [0, bound). */
inline std::vector<uint32_t>
randomWords(Rng &rng, size_t n, uint32_t bound)
{
    std::vector<uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.below(bound));
    return v;
}

/** Scale helper: max(lo, round(base * scale)). */
inline uint32_t
scaled(double scale, uint32_t base, uint32_t lo = 8)
{
    auto v = static_cast<uint32_t>(static_cast<double>(base) * scale);
    return v < lo ? lo : v;
}

/**
 * Hot-loop "fat": the per-iteration overhead real programs carry and
 * the paper's distiller removes — a bounds assertion (never fires), a
 * debug-mode guard (flag is invariant zero) and a status-word store
 * (always silent). Together they are the honest distillation headroom
 * of the workload suite: branch pruning + DCE deletes the assertion
 * and debug guard, and the paper-preset memory speculation removes
 * the status store.
 *
 * Contract: registers t8, t9 and s9 are reserved for fat; the kernel
 * must call fatInit() once before its hot loop, include fatBody()
 * inside the loop (tag must be unique per call site; idx_reg is any
 * register holding a value < 2^31), and append fatData() to its data
 * section.
 */
inline std::string
fatInit()
{
    return "    la s9, fatdata\n";
}

inline std::string
fatBody(const std::string &tag, const char *idx_reg)
{
    return strfmt(
        "    lw t8, 0(s9)\n"             // bounds limit (invariant)
        "    bltu %s, t8, fat_ok_%s\n"   // assertion: always passes
        "    addi t9, zero, 1\n"         // never executed
        "    sw t9, 3(s9)\n"
        "fat_ok_%s:\n"
        "    lw t9, 1(s9)\n"             // debug flag (invariant 0)
        "    beqz t9, fat_nodbg_%s\n"
        "    slli t9, t9, 2\n"           // never executed: trace
        "    sw t9, 3(s9)\n"
        "fat_nodbg_%s:\n"
        "    lw t8, 2(s9)\n"             // status template (invariant)
        "    sw t8, 3(s9)\n",            // silent status store
        idx_reg, tag.c_str(), tag.c_str(), tag.c_str(), tag.c_str());
}

inline std::string
fatData()
{
    // limit, debug flag, status template, status word (preset to the
    // template so the status store is silent from the first write).
    return ".org 0x5f00\nfatdata: .word 0x7fffffff, 0, 7, 7\n";
}

} // namespace mssp::wl

#endif // MSSP_WORKLOADS_WL_COMMON_HH

/**
 * @file
 * A small gem5-flavored statistics package.
 *
 * Statistics are registered with a Group (which may nest) and dumped
 * as an aligned text table. Supported kinds: Scalar (a counter),
 * Average (mean over samples), Distribution (bucketed histogram over a
 * fixed range with underflow/overflow), and Formula (a derived value
 * computed at dump time).
 */

#ifndef MSSP_STATS_STATS_HH
#define MSSP_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace mssp::stats
{

class Group;

/** Base class for all statistics; handles name/description plumbing. */
class Info
{
  public:
    Info(Group *parent, std::string name, std::string desc);
    virtual ~Info() = default;

    Info(const Info &) = delete;
    Info &operator=(const Info &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Append formatted rows for this stat to @p rows. */
    virtual void
    format(const std::string &prefix,
           std::vector<std::array<std::string, 3>> &rows) const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple additive counter. */
class Scalar : public Info
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(uint64_t v) { value_ += v; return *this; }
    void set(uint64_t v) { value_ = v; }

    uint64_t value() const { return value_; }

    void format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows)
                const override;
    void reset() override { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average : public Info
{
  public:
    Average(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {}

    void sample(double v);

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows)
                const override;
    void reset() override;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Bucketed histogram over [lo, hi) with fixed-width buckets. */
class Distribution : public Info
{
  public:
    Distribution(Group *parent, std::string name, std::string desc,
                 double lo, double hi, size_t buckets);

    void sample(double v);

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    uint64_t bucketCount(size_t i) const { return buckets_.at(i); }
    uint64_t underflows() const { return underflow_; }
    uint64_t overflows() const { return overflow_; }
    size_t numBuckets() const { return buckets_.size(); }

    void format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows)
                const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** A value computed at dump time from other statistics. */
class Formula : public Info
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Info(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {}

    double value() const { return fn_ ? fn_() : 0.0; }

    void format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows)
                const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics; groups nest to form a hierarchy
 * whose dotted path prefixes stat names in the dump.
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Dump all stats under this group as an aligned table. */
    void dump(std::ostream &os) const;

    /** Reset all stats under this group. */
    void resetAll();

    /** @internal Registration hooks. */
    void addStat(Info *stat) { stats_.push_back(stat); }
    void addChild(Group *g) { children_.push_back(g); }
    void removeChild(Group *g);

  private:
    void collect(const std::string &prefix,
                 std::vector<std::array<std::string, 3>> &rows) const;

    std::string name_;
    Group *parent_;
    std::vector<Info *> stats_;
    std::vector<Group *> children_;
};

} // namespace mssp::stats

#endif // MSSP_STATS_STATS_HH

#include "stats/stats.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/logging.hh"
#include "util/string_utils.hh"

namespace mssp::stats
{

Info::Info(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    MSSP_ASSERT(parent != nullptr);
    parent->addStat(this);
}

void
Scalar::format(const std::string &prefix,
               std::vector<std::array<std::string, 3>> &rows) const
{
    rows.push_back({prefix + name(), strfmt("%llu",
        static_cast<unsigned long long>(value_)), desc()});
}

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows) const
{
    rows.push_back({prefix + name(),
        strfmt("%.3f (n=%llu, min=%.1f, max=%.1f)", mean(),
               static_cast<unsigned long long>(count_), min(), max()),
        desc()});
}

void
Average::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Distribution::Distribution(Group *parent, std::string name,
                           std::string desc, double lo, double hi,
                           size_t buckets)
    : Info(parent, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    MSSP_ASSERT(hi > lo && buckets > 0);
}

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<size_t>((v - lo_) / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

void
Distribution::format(const std::string &prefix,
                     std::vector<std::array<std::string, 3>> &rows) const
{
    rows.push_back({prefix + name(),
        strfmt("mean=%.2f n=%llu", mean(),
               static_cast<unsigned long long>(count_)),
        desc()});
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double b_lo = lo_ + width_ * static_cast<double>(i);
        rows.push_back({prefix + name() +
            strfmt("::[%g,%g)", b_lo, b_lo + width_),
            strfmt("%llu", static_cast<unsigned long long>(buckets_[i])),
            ""});
    }
    if (underflow_) {
        rows.push_back({prefix + name() + "::underflow",
            strfmt("%llu", static_cast<unsigned long long>(underflow_)),
            ""});
    }
    if (overflow_) {
        rows.push_back({prefix + name() + "::overflow",
            strfmt("%llu", static_cast<unsigned long long>(overflow_)),
            ""});
    }
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

void
Formula::format(const std::string &prefix,
                std::vector<std::array<std::string, 3>> &rows) const
{
    double v = value();
    std::string text = std::isfinite(v) ? strfmt("%.4f", v) : "nan";
    rows.push_back({prefix + name(), text, desc()});
}

Group::Group(std::string name, Group *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    children_.erase(std::remove(children_.begin(), children_.end(), g),
                    children_.end());
}

void
Group::collect(const std::string &prefix,
               std::vector<std::array<std::string, 3>> &rows) const
{
    std::string here = prefix.empty() ? name_ + "."
                                      : prefix + name_ + ".";
    for (const auto *s : stats_)
        s->format(here, rows);
    for (const auto *g : children_)
        g->collect(here, rows);
}

void
Group::dump(std::ostream &os) const
{
    std::vector<std::array<std::string, 3>> rows;
    collect("", rows);
    size_t w0 = 0, w1 = 0;
    for (const auto &r : rows) {
        w0 = std::max(w0, r[0].size());
        w1 = std::max(w1, r[1].size());
    }
    for (const auto &r : rows) {
        os << padRight(r[0], w0 + 2) << padRight(r[1], w1 + 2);
        if (!r[2].empty())
            os << "# " << r[2];
        os << '\n';
    }
}

void
Group::resetAll()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *g : children_)
        g->resetAll();
}

} // namespace mssp::stats

/**
 * @file
 * mssp-suite: the whole evaluation as one sharded job graph.
 *
 * One invocation runs, for every registry workload, the full chain
 * the repo's individual tools cover piecemeal:
 *
 *   distill   assemble + profile + distill (core/pipeline.hh)
 *   lint      structural verification (analysis/verifier.hh)
 *   semantic  translation validation of every distiller edit
 *   specsafe  load speculation-safety classes + metadata validation
 *   specplan  value-flow plan candidates + SEQ-replay hit rates
 *   run       full MSSP machine vs the sequential baseline
 *   speculate value-speculating distiller + squash-feedback
 *             adaptation (eval/adapt.hh): the converged image is
 *             linted, its baked constants replayed against SEQ, and
 *             the machine re-run on it vs the same oracle
 *   crossval  static risk vs dynamic divergence-squash consistency,
 *             plus the ProvablyInvariant value-change and Proven
 *             prediction-mismatch gates
 *   campaign  the fault-injection sweep against the SEQ oracle
 *
 * The job graph has two sharded phases (sim/parallel.hh). Phase one
 * runs one job per workload: the pipeline stages above through
 * crossval, then seeds the campaign's SeqOracleCache from the
 * already-prepared pipeline. Phase two is the campaign cell sweep
 * (workload x fault type x intensity), sharded over the same pool
 * and reusing those oracles — no workload is ever prepared twice.
 *
 * Both phases run *supervised* (sim/supervisor.hh): every job gets a
 * per-attempt budget and N-strikes retry, and a job that exhausts its
 * attempts is quarantined — its structured Status lands in the report
 * and every healthy result still merges. Host chaos (fault/
 * hostchaos.hh) injects deterministic stalls/throws/cancels through
 * the same seam for the CI chaos job.
 *
 * The report is one deterministic JSON document (schema
 * mssp-suite-v5): per-run seeds derive from canonical job indices
 * and results merge in canonical order, so `--jobs N` output is
 * byte-identical to `--jobs 1` (wall-clock deadline trips excepted —
 * see JobBudget). CI runs the suite on every push with all 12
 * workloads and diffs a serial rerun against it (docs/CI.md).
 */

#ifndef MSSP_EVAL_SUITE_HH
#define MSSP_EVAL_SUITE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiment.hh"
#include "fault/campaign.hh"

namespace mssp
{

/** What to run (defaults reproduce the CI suite job). */
struct SuiteOptions
{
    /** Workload names; empty = all registry analogues. */
    std::vector<std::string> workloads;
    double scale = 0.05;     ///< workload scale (see specAnalogues)
    uint64_t seed = 1;       ///< campaign seed (per-run seeds derive)
    unsigned jobs = 1;       ///< host threads (CLIs default to hw)
    /** Campaign intensity multipliers (see CampaignOptions). */
    std::vector<double> intensities{1.0, 10.0};
    uint64_t campaignMaxCycles = 0;   ///< 0 = derive from oracle
    uint64_t runMaxCycles = 400000000ull;   ///< MSSP run cycle cap
    /** Supervision for both phases: retry shape, per-attempt job
     *  budget, and host-chaos plan (seed 0 = chaos off). */
    RetryPolicy retry{/*maxAttempts=*/3};
    JobBudget jobBudget;
    HostChaosPlan chaos;
};

/** Everything phase one measures for one workload. */
struct SuiteWorkloadResult
{
    std::string name;

    // lint (structural verification)
    size_t lintErrors = 0;
    size_t lintWarnings = 0;

    // semantic translation validation
    size_t edits = 0;
    size_t proven = 0;
    size_t risky = 0;
    size_t unknown = 0;
    size_t semanticErrors = 0;

    // specsafe load classification (analysis/specsafe.hh)
    size_t specLoads = 0;
    size_t specProvablyInvariant = 0;
    size_t specRegionInvariant = 0;
    size_t specRisky = 0;
    size_t specErrors = 0;        ///< metadata-validation findings
    uint64_t specViolations = 0;  ///< PI loads that changed value

    // specplan value prediction (analysis/specplan.hh)
    size_t planCandidates = 0;
    size_t planProven = 0;
    size_t planLikely = 0;
    size_t planErrors = 0;  ///< plan-metadata findings (errors)
    uint64_t planProvenMismatches = 0;  ///< Proven misses (gate: 0)
    uint64_t planLikelyObservations = 0;
    uint64_t planLikelyHits = 0;

    // MSSP run vs baseline
    WorkloadRun run;

    // speculation: adapted value-speculating distillation
    // (distill/speculate.cc + eval/adapt.hh, .mdo v5)
    size_t specBaked = 0;          ///< specedits in converged image
    size_t specBakedProven = 0;    ///< of those, Proven
    size_t specAdaptIterations = 0;
    bool specAdaptConverged = false;
    size_t specDespeculated = 0;   ///< cumulative excluded loads
    size_t specImageLintErrors = 0; ///< all validators, spec image
    uint64_t specEditMismatches = 0; ///< baked vs SEQ replay (gate: 0)
    WorkloadRun specRun;           ///< speculated image vs baseline

    // crossval: all-proven workloads must not squash on divergence
    uint64_t divergenceSquashes = 0;
    bool consistent = false;

    bool
    ok() const
    {
        return lintErrors == 0 && semanticErrors == 0 &&
               specErrors == 0 && specViolations == 0 &&
               planErrors == 0 && planProvenMismatches == 0 &&
               run.ok && consistent && specAdaptConverged &&
               specImageLintErrors == 0 && specEditMismatches == 0 &&
               specRun.ok;
    }
};

/** The whole evaluation. */
struct SuiteReport
{
    SuiteOptions options;            ///< as resolved (lists filled in)
    /** Healthy phase-one results only, canonical order (quarantined
     *  workloads are in evalQuarantine instead). */
    std::vector<SuiteWorkloadResult> workloads;
    /** Phase-one jobs that failed every attempt. */
    QuarantineReport evalQuarantine;
    CampaignReport campaign;

    /** Workloads failing any phase-one gate. */
    size_t evalFailures() const;

    /** Quarantined jobs across both phases. */
    size_t
    quarantinedTotal() const
    {
        return evalQuarantine.size() + campaign.quarantined();
    }

    /** True when every stage of every workload passed: lint,
     *  semantic and specsafe clean, run equivalent, crossval
     *  consistent, campaign invariants held, every fault type
     *  fired, and nothing was quarantined. */
    bool ok() const;

    /** Deterministic JSON document (schema mssp-suite-v5; embeds the
     *  campaign's mssp-faultcamp-v2 object under "campaign"). */
    std::string toJson() const;

    /** Human-readable result tables. */
    std::string summary() const;
};

/** Run the whole suite. @p log (optional) receives progress lines. */
SuiteReport runSuite(const SuiteOptions &opts,
                     std::ostream *log = nullptr);

} // namespace mssp

#endif // MSSP_EVAL_SUITE_HH

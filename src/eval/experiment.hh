/**
 * @file
 * The evaluation harness shared by all bench binaries (one binary per
 * table/figure, DESIGN.md §4). Runs a workload through the full
 * pipeline (profile -> distill -> MSSP vs baseline), verifies output
 * equivalence, and returns every metric the figures plot.
 */

#ifndef MSSP_EVAL_EXPERIMENT_HH
#define MSSP_EVAL_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "mssp/config.hh"
#include "mssp/machine.hh"
#include "workloads/workloads.hh"

namespace mssp
{

/** Everything measured for one (workload, configuration) point. */
struct WorkloadRun
{
    std::string name;
    bool ok = false;            ///< halted + output-equivalent to SEQ
    StopReason stopReason = StopReason::TimedOut;   ///< why it ended

    uint64_t seqInsts = 0;      ///< original dynamic instructions
    uint64_t baselineCycles = 0;
    uint64_t msspCycles = 0;
    double speedup = 0.0;       ///< baselineCycles / msspCycles

    uint64_t masterInsts = 0;
    /** Master dynamic path / original dynamic path (E1; lower is a
     *  stronger distillation). */
    double distillRatio = 0.0;

    double meanTaskSize = 0.0;
    MsspCounters counters;
    DistillReport report;
};

/**
 * Run one workload end to end.
 *
 * @param wl    the workload (ref + train sources)
 * @param cfg   machine configuration
 * @param dopts distiller options
 * @param max_cycles MSSP cycle cap (a run that hits it reports !ok)
 */
WorkloadRun runWorkload(const Workload &wl, const MsspConfig &cfg,
                        const DistillerOptions &dopts = {},
                        uint64_t max_cycles = 400000000ull);

/** Same, reusing an already-prepared pipeline (for sweeps). */
WorkloadRun runPrepared(const std::string &name,
                        const PreparedWorkload &prepared,
                        const MsspConfig &cfg,
                        uint64_t max_cycles = 400000000ull);

// -- Sharded sweeps (sim/parallel.hh) -------------------------------------

/**
 * Parse the one flag every bench/eval binary takes: `--jobs N` (host
 * threads for the sweep; default hardware concurrency, 1 = exact
 * serial path). Unknown arguments print a usage line naming @p tool
 * and exit(2).
 */
unsigned benchJobs(int argc, char **argv, const char *tool);

/**
 * Run the full pipeline (assemble -> profile -> distill) for every
 * workload, sharded across @p jobs host threads. Results come back
 * indexed like @p workloads regardless of job count, and each
 * prepare is independent, so the tables built from them are
 * byte-identical to a serial sweep.
 */
std::vector<PreparedWorkload>
prepareAll(const std::vector<Workload> &workloads,
           const DistillerOptions &dopts, unsigned jobs);

// -- Table formatting -----------------------------------------------------

/** A printable table with aligned columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with a title banner, aligned columns and a rule. */
    std::string render(const std::string &title) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a vector (0 if empty). */
double geomean(const std::vector<double> &values);

/** "%.2f" helper. */
std::string fmt2(double v);

/** "%.1f%%" helper. */
std::string fmtPct(double v);

} // namespace mssp

#endif // MSSP_EVAL_EXPERIMENT_HH

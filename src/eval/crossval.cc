#include "eval/crossval.hh"

#include <functional>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "eval/experiment.hh"
#include "sim/parallel.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

namespace mssp
{

bool
CrossValReport::allConsistent() const
{
    for (const CrossValRow &r : rows) {
        if (!r.consistent)
            return false;
    }
    return true;
}

std::string
CrossValReport::toText() const
{
    Table t({"workload", "ok", "edits", "proven", "risky", "unknown",
             "sem-err", "div-squash", "consistent"});
    for (const CrossValRow &r : rows) {
        t.addRow({r.name, r.ok ? "yes" : "NO",
                  strfmt("%zu", r.edits), strfmt("%zu", r.proven),
                  strfmt("%zu", r.risky), strfmt("%zu", r.unknown),
                  strfmt("%zu", r.semanticErrors),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     r.divergenceSquashes)),
                  r.consistent ? "yes" : "NO"});
    }
    return t.render("static risk vs. dynamic misspeculation");
}

CrossValReport
crossValidate(double scale, const MsspConfig &cfg,
              uint64_t max_cycles, unsigned jobs)
{
    std::vector<Workload> workloads = specAnalogues(scale);
    std::vector<std::function<CrossValRow()>> work;
    work.reserve(workloads.size());
    for (const Workload &wl : workloads) {
        work.push_back([&wl, &cfg, max_cycles] {
            CrossValRow row;
            row.name = wl.name;

            PreparedWorkload prepared =
                prepare(assemble(wl.refSource),
                        assemble(wl.trainSource),
                        DistillerOptions::paperPreset());

            analysis::SemanticResult sem =
                analysis::verifyDistilledSemantic(prepared.orig,
                                                  prepared.dist);
            row.edits = sem.semantic.verdicts.size();
            row.proven = sem.semantic.proven();
            row.risky = sem.semantic.risky();
            row.unknown = sem.semantic.unknown();
            row.semanticErrors = sem.lint.errors();

            WorkloadRun run =
                runPrepared(wl.name, prepared, cfg, max_cycles);
            row.ok = run.ok;
            row.divergenceSquashes =
                run.counters.tasksSquashedLiveIn +
                run.counters.tasksSquashedWrongPc;

            // The validator's claim is one-directional: a workload
            // whose edits are all Proven must not squash on
            // divergence. The converse (risky edits must squash) does
            // not hold — static analysis over-approximates dynamic
            // behaviour.
            bool all_proven = row.proven == row.edits;
            row.consistent =
                run.ok && (!all_proven || row.divergenceSquashes == 0);
            return row;
        });
    }
    CrossValReport rep;
    rep.rows = runSharded<CrossValRow>(jobs, std::move(work));
    return rep;
}

} // namespace mssp

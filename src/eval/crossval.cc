#include "eval/crossval.hh"

#include <functional>
#include <map>
#include <optional>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "eval/experiment.hh"
#include "exec/seq_machine.hh"
#include "sim/parallel.hh"
#include "util/string_utils.hh"
#include "workloads/workloads.hh"

namespace mssp
{

namespace
{

/** Watches the SEQ replay and records, per tracked static load PC,
 *  the last value read — flagging any change. */
class InvariantLoadWatcher : public SeqMachine::Observer
{
  public:
    InvariantLoadWatcher(
        SeqMachine &machine,
        const std::vector<analysis::LoadClassification> &loads)
        : machine_(machine)
    {
        for (const analysis::LoadClassification &c : loads) {
            if (c.cls == LoadSpecClass::ProvablyInvariant)
                last_[c.pc] = std::nullopt;
        }
    }

    size_t checkedLoads() const { return last_.size(); }

    void
    onStep(uint32_t pc, const StepResult &res) override
    {
        if (!isLoad(res.inst.op))
            return;
        auto it = last_.find(pc);
        if (it == last_.end())
            return;
        // onStep fires post-instruction: the loaded value sits in rd.
        // A load into r0 leaves no trace there, but also cannot have
        // clobbered rs1, so the address still reconstructs exactly
        // (ProvablyInvariant loads are never MMIO, so re-reading
        // memory is side-effect free).
        uint32_t value;
        if (res.inst.rd != 0) {
            value = machine_.readReg(res.inst.rd);
        } else {
            uint32_t addr =
                machine_.readReg(res.inst.rs1) + res.inst.imm;
            value = machine_.state().readMem(addr);
        }
        result.observations++;
        if (it->second && *it->second != value) {
            result.valueChanges++;
            if (result.firstViolation.empty()) {
                result.firstViolation = strfmt(
                    "load at 0x%x read 0x%x, previously 0x%x", pc,
                    value, *it->second);
            }
        }
        it->second = value;
    }

    SpecSafeDynamicResult result;

  private:
    SeqMachine &machine_;
    std::map<uint32_t, std::optional<uint32_t>> last_;
};

/** Watches the SEQ replay and scores every plan candidate's value
 *  prediction against the value its load actually reads. */
class PlanPredictionWatcher : public SeqMachine::Observer
{
  public:
    PlanPredictionWatcher(
        SeqMachine &machine,
        const std::vector<analysis::SpecPlanCandidate> &candidates)
        : machine_(machine)
    {
        result.candidates.reserve(candidates.size());
        for (const analysis::SpecPlanCandidate &c : candidates) {
            index_[c.pc] = result.candidates.size();
            result.candidates.push_back(
                {c.pc, c.proof, c.value, 0, 0});
        }
    }

    void
    onStep(uint32_t pc, const StepResult &res) override
    {
        if (!isLoad(res.inst.op))
            return;
        auto it = index_.find(pc);
        if (it == index_.end())
            return;
        // Same post-instruction read as InvariantLoadWatcher: rd
        // holds the value; an r0 load leaves rs1 intact, so the
        // address reconstructs (candidate loads are never MMIO, so
        // re-reading is side-effect free).
        uint32_t value;
        if (res.inst.rd != 0) {
            value = machine_.readReg(res.inst.rd);
        } else {
            uint32_t addr =
                machine_.readReg(res.inst.rs1) + res.inst.imm;
            value = machine_.state().readMem(addr);
        }
        SpecPlanCandidateDyn &dyn = result.candidates[it->second];
        dyn.observations++;
        bool hit = value == dyn.predicted;
        if (hit)
            dyn.hits++;
        if (dyn.proof == ValueProof::Proven) {
            if (!hit) {
                result.provenMismatches++;
                if (result.firstViolation.empty()) {
                    result.firstViolation = strfmt(
                        "proven candidate at 0x%x read 0x%x, "
                        "predicted 0x%x",
                        pc, value, dyn.predicted);
                }
            }
        } else {
            result.likelyObservations++;
            if (hit)
                result.likelyHits++;
        }
    }

    SpecPlanDynamicResult result;

  private:
    SeqMachine &machine_;
    std::map<uint32_t, size_t> index_;
};

/** Watches a SEQ replay of the *original* program and scores every
 *  baked specedit's constant against the value its load reads. */
class SpecEditWatcher : public SeqMachine::Observer
{
  public:
    SpecEditWatcher(SeqMachine &machine,
                    const std::vector<SpecEdit> &edits)
        : machine_(machine)
    {
        for (const SpecEdit &e : edits)
            tracked_[e.origPc] = {e.proof, e.value};
        result.checkedEdits = tracked_.size();
    }

    void
    onStep(uint32_t pc, const StepResult &res) override
    {
        if (!isLoad(res.inst.op))
            return;
        auto it = tracked_.find(pc);
        if (it == tracked_.end())
            return;
        // Post-instruction read, as in the other watchers: rd holds
        // the value; an r0 load leaves rs1 intact, so the address
        // reconstructs (baked loads are never MMIO).
        uint32_t value;
        if (res.inst.rd != 0) {
            value = machine_.readReg(res.inst.rd);
        } else {
            uint32_t addr =
                machine_.readReg(res.inst.rs1) + res.inst.imm;
            value = machine_.state().readMem(addr);
        }
        result.observations++;
        bool hit = value == it->second.second;
        if (it->second.first == ValueProof::Proven) {
            if (!hit) {
                result.provenMismatches++;
                if (result.firstViolation.empty()) {
                    result.firstViolation = strfmt(
                        "baked load at 0x%x read 0x%x, image bakes "
                        "0x%x",
                        pc, value, it->second.second);
                }
            }
        } else {
            result.likelyObservations++;
            if (hit)
                result.likelyHits++;
        }
    }

    SpecEditDynamicResult result;

  private:
    SeqMachine &machine_;
    std::map<uint32_t, std::pair<ValueProof, uint32_t>> tracked_;
};

} // anonymous namespace

SpecEditDynamicResult
validateSpecEditsDynamic(const Program &orig,
                         const DistilledProgram &dist,
                         uint64_t max_insts)
{
    // The *original* program is the ground truth the baked constants
    // claim to reproduce — replay it, not the merged image.
    SeqMachine machine(orig);
    SpecEditWatcher watcher(machine, dist.specEdits);
    machine.setObserver(&watcher);
    machine.run(max_insts);
    return watcher.result;
}

SpecPlanDynamicResult
validateSpecPlanDynamic(
    const Program &orig, const DistilledProgram &dist,
    const std::vector<analysis::SpecPlanCandidate> &candidates,
    uint64_t max_insts)
{
    SeqMachine machine(analysis::mergedImage(orig, dist));
    PlanPredictionWatcher watcher(machine, candidates);
    machine.setObserver(&watcher);
    // Same bounded-window contract as validateSpecSafeDynamic: the
    // replay need not halt cleanly, the budget bounds it either way.
    machine.run(max_insts);
    return watcher.result;
}

SpecSafeDynamicResult
validateSpecSafeDynamic(
    const Program &orig, const DistilledProgram &dist,
    const std::vector<analysis::LoadClassification> &loads,
    uint64_t max_insts)
{
    SeqMachine machine(analysis::mergedImage(orig, dist));
    InvariantLoadWatcher watcher(machine, loads);
    machine.setObserver(&watcher);
    // The distilled program is an approximation; its raw SEQ replay
    // need not halt cleanly (it may fault or spin) — the instruction
    // budget bounds the observation window either way.
    machine.run(max_insts);
    watcher.result.checkedLoads = watcher.checkedLoads();
    return watcher.result;
}

bool
CrossValReport::allConsistent() const
{
    for (const CrossValRow &r : rows) {
        if (!r.consistent)
            return false;
    }
    return true;
}

std::string
CrossValReport::toText() const
{
    Table t({"workload", "ok", "edits", "proven", "risky", "unknown",
             "sem-err", "div-squash", "loads PI/RI/R", "spec-err",
             "pi-chg", "plan P/L", "plan-err", "pv-miss", "l-hit",
             "consistent"});
    for (const CrossValRow &r : rows) {
        std::string lhit = "-";
        if (r.planLikelyObservations) {
            lhit = strfmt(
                "%.0f%%",
                100.0 * static_cast<double>(r.planLikelyHits) /
                    static_cast<double>(r.planLikelyObservations));
        }
        t.addRow({r.name, r.ok ? "yes" : "NO",
                  strfmt("%zu", r.edits), strfmt("%zu", r.proven),
                  strfmt("%zu", r.risky), strfmt("%zu", r.unknown),
                  strfmt("%zu", r.semanticErrors),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     r.divergenceSquashes)),
                  strfmt("%zu/%zu/%zu", r.specProvablyInvariant,
                         r.specRegionInvariant, r.specRisky),
                  strfmt("%zu", r.specErrors),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     r.provInvariantValueChanges)),
                  strfmt("%zu/%zu", r.planProven, r.planLikely),
                  strfmt("%zu", r.planErrors),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     r.planProvenMismatches)),
                  lhit, r.consistent ? "yes" : "NO"});
    }
    return t.render("static risk vs. dynamic misspeculation");
}

CrossValReport
crossValidate(double scale, const MsspConfig &cfg,
              uint64_t max_cycles, unsigned jobs)
{
    std::vector<Workload> workloads = specAnalogues(scale);
    std::vector<std::function<CrossValRow()>> work;
    work.reserve(workloads.size());
    for (const Workload &wl : workloads) {
        work.push_back([&wl, &cfg, max_cycles] {
            CrossValRow row;
            row.name = wl.name;

            PreparedWorkload prepared =
                prepare(assemble(wl.refSource),
                        assemble(wl.trainSource),
                        DistillerOptions::paperPreset());

            analysis::SemanticResult sem =
                analysis::verifyDistilledSemantic(prepared.orig,
                                                  prepared.dist);
            row.edits = sem.semantic.verdicts.size();
            row.proven = sem.semantic.proven();
            row.risky = sem.semantic.risky();
            row.unknown = sem.semantic.unknown();
            row.semanticErrors = sem.lint.errors();

            analysis::SpecSafeReport spec =
                analysis::analyzeSpecSafe(prepared.orig,
                                          prepared.dist);
            row.specLoads = spec.loads.size();
            row.specProvablyInvariant = spec.provablyInvariant();
            row.specRegionInvariant = spec.regionInvariant();
            row.specRisky = spec.risky();
            row.specErrors = spec.lint.errors();

            WorkloadRun run =
                runPrepared(wl.name, prepared, cfg, max_cycles);
            row.ok = run.ok;
            row.divergenceSquashes =
                run.counters.tasksSquashedLiveIn +
                run.counters.tasksSquashedWrongPc;

            SpecSafeDynamicResult dyn = validateSpecSafeDynamic(
                prepared.orig, prepared.dist, spec.loads);
            row.provInvariantValueChanges = dyn.valueChanges;

            analysis::SpecPlanReport plan =
                analysis::analyzeSpecPlan(prepared.orig,
                                          prepared.dist);
            row.planCandidates = plan.candidates.size();
            row.planProven = plan.proven();
            row.planLikely = plan.likely();
            row.planErrors = plan.lint.errors();

            SpecPlanDynamicResult pdyn = validateSpecPlanDynamic(
                prepared.orig, prepared.dist, plan.candidates);
            row.planProvenMismatches = pdyn.provenMismatches;
            row.planLikelyObservations = pdyn.likelyObservations;
            row.planLikelyHits = pdyn.likelyHits;

            // The validator's claim is one-directional: a workload
            // whose edits are all Proven must not squash on
            // divergence. The converse (risky edits must squash) does
            // not hold — static analysis over-approximates dynamic
            // behaviour. The specsafe claim is absolute: a
            // ProvablyInvariant load that changed value means the
            // alias analysis is wrong, full stop. So is the plan's:
            // a Proven candidate reading anything but its predicted
            // value means the value-flow analysis is wrong.
            bool all_proven = row.proven == row.edits;
            row.consistent =
                run.ok && (!all_proven || row.divergenceSquashes == 0)
                && row.specErrors == 0
                && row.provInvariantValueChanges == 0
                && row.planErrors == 0
                && row.planProvenMismatches == 0;
            return row;
        });
    }
    CrossValReport rep;
    rep.rows = runSharded<CrossValRow>(jobs, std::move(work));
    return rep;
}

} // namespace mssp

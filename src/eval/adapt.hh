/**
 * @file
 * Online adaptation: squash feedback -> re-distillation.
 *
 * The value-speculating distiller (distill/speculate.cc) bakes
 * statically predicted load values into the master's code;
 * MsspMachine already recovers from a wrong prediction by squashing
 * the verify task at the offending fork site. This loop closes the
 * feedback path the paper sketches: run the speculated image, read
 * the per-fork-site squash/engage table out of MsspResult, and
 * *de-speculate* every baked load policed by a site whose squash
 * rate exceeds the threshold — then distill again with those loads
 * excluded, until an iteration de-speculates nothing (convergence)
 * or the iteration bound trips.
 *
 * Determinism: the loop is a pure function of its inputs — the
 * machine is cycle-deterministic, fault injection is seeded, and
 * every iteration's distillation is byte-deterministic — so two runs
 * produce identical images, iteration logs and convergence verdicts.
 * mssp-distill --adapt N and the mssp-suite speculation stage both
 * drive this API.
 */

#ifndef MSSP_EVAL_ADAPT_HH
#define MSSP_EVAL_ADAPT_HH

#include <cstdint>
#include <vector>

#include "distill/distiller.hh"
#include "fault/fault.hh"
#include "mssp/config.hh"
#include "profile/profile_data.hh"

namespace mssp
{

/** Knobs of the adaptation loop. */
struct AdaptOptions
{
    /** Distill→run→de-speculate iterations before giving up. */
    unsigned maxIters = 4;
    /** A site de-speculates its policed edits when its squash
     *  fraction of verification attempts exceeds this. */
    double squashRateThreshold = 0.5;
    /** Sites with fewer forked tasks than this are left alone (too
     *  little evidence). */
    uint64_t minEngagements = 4;
    /** Cycle budget of each feedback run. */
    uint64_t runMaxCycles = 400000000ull;
    /** Machine configuration of the feedback runs. */
    MsspConfig machine;
    /** Speculation knobs (despeculated seeds the exclusion set). */
    SpeculateOptions speculate;
    /** Fault plans armed during feedback runs (empty = none). A
     *  fresh injector is constructed per iteration, so runs stay
     *  deterministic. */
    std::vector<FaultPlan> faults;
};

/** One distill→run→de-speculate iteration. */
struct AdaptIteration
{
    uint32_t generation = 0;    ///< image generation this iter ran
    size_t baked = 0;           ///< specedits in that image
    uint64_t squashEvents = 0;  ///< squashes observed in the run
    bool halted = false;        ///< run completed
    /** Loads de-speculated *by* this iteration (ascending). */
    std::vector<uint32_t> despeculated;
};

/** What the loop converged (or gave up) on. */
struct AdaptResult
{
    /** The last image distilled (converged: the stable image). */
    DistilledProgram dist;
    std::vector<AdaptIteration> iterations;
    /** True when the final iteration de-speculated nothing. */
    bool converged = false;
    /** Cumulative de-speculated load PCs (ascending). */
    std::vector<uint32_t> despeculated;
};

/**
 * Run the adaptation loop: distillSpeculated(), execute on the MSSP
 * machine, attribute squashes through each edit's policedBy sites,
 * exclude the edits of over-threshold sites and repeat. Bounded by
 * @p aopts.maxIters; deterministic for deterministic inputs.
 */
AdaptResult adaptSpeculation(const Program &orig,
                             const ProfileData &profile,
                             const DistillerOptions &dopts,
                             const AdaptOptions &aopts);

} // namespace mssp

#endif // MSSP_EVAL_ADAPT_HH
